//! Property-based tests for the resource-manager optimizers.

use proptest::prelude::*;
use triad_arch::{CoreSize, DvfsGrid, Setting};
use triad_rm::{local_optimize, optimize_partition, EnergyCurve, IntervalModel, RmKind};

fn curve_strategy(n: usize) -> impl Strategy<Value = Vec<EnergyCurve>> {
    prop::collection::vec(
        prop::collection::vec(
            prop_oneof![9 => (0.01f64..10.0), 1 => Just(f64::INFINITY)],
            15,
        )
        .prop_map(|energy| EnergyCurve { min_w: 2, energy }),
        n..=n,
    )
}

fn brute_force(curves: &[EnergyCurve], total: usize) -> Option<f64> {
    fn rec(curves: &[EnergyCurve], i: usize, left: usize, acc: f64, best: &mut Option<f64>) {
        if i == curves.len() {
            if left == 0 && acc.is_finite() {
                *best = Some(best.map_or(acc, |b: f64| b.min(acc)));
            }
            return;
        }
        let c = &curves[i];
        for w in c.min_w..=c.max_w().min(left) {
            rec(curves, i + 1, left - w, acc + c.at(w), best);
        }
    }
    let mut best = None;
    rec(curves, 0, total, 0.0, &mut best);
    best
}

proptest! {
    /// The recursive curve reduction is exactly optimal.
    #[test]
    fn global_optimizer_is_optimal(curves in curve_strategy(3)) {
        let total = 24;
        let fast = optimize_partition(&curves, total);
        let slow = brute_force(&curves, total);
        match (fast, slow) {
            (Some((ws, e, _)), Some(eb)) => {
                prop_assert!((e - eb).abs() < 1e-9);
                prop_assert_eq!(ws.iter().sum::<usize>(), total);
                let realized: f64 =
                    ws.iter().enumerate().map(|(i, &w)| curves[i].at(w)).sum();
                prop_assert!((realized - e).abs() < 1e-9);
            }
            (None, None) => {}
            (f, s) => prop_assert!(false, "disagreement: {f:?} vs {s:?}"),
        }
    }
}

/// A randomized-but-lawful model for local-optimizer properties.
struct RandModel {
    grid: DvfsGrid,
    mem: Vec<f64>,
    compute_scale: f64,
}

impl IntervalModel for RandModel {
    fn predict(&self, s: Setting) -> (f64, f64) {
        let f = self.grid.point(s.vf).freq_hz;
        let v = self.grid.point(s.vf).volt;
        let t = self.compute_scale / f * 4.0 / s.core.dispatch_width() as f64
            + self.mem[s.ways - 2];
        let p = [1.4, 2.8, 5.5][s.core.index()] * v * v * (f / 2.0e9) + 0.5 * v;
        (t, p * t)
    }
}

proptest! {
    /// Every local plan is feasible (meets the predicted QoS budget) and the
    /// baseline allocation always stays feasible.
    #[test]
    fn local_plans_respect_qos(
        mem in prop::collection::vec(1.0e-11f64..5e-10, 15),
        compute in 0.3f64..3.0,
    ) {
        // Make the memory curve monotone non-increasing in ways.
        let mut mem = mem;
        mem.sort_by(|a, b| b.total_cmp(a));
        let grid = DvfsGrid::table1();
        let model = RandModel { grid: grid.clone(), mem, compute_scale: compute };
        let baseline = Setting::new(CoreSize::M, grid.baseline, 8);
        let (t_base, _) = model.predict(baseline);
        for kind in RmKind::ALL {
            let plan = local_optimize(&model, kind, baseline, &grid, 2..=16, 1.0);
            prop_assert!(plan.energy_at(8).is_finite(), "{kind}");
            for w in 2..=16 {
                if let Some(s) = plan.setting_at(w) {
                    let (t, e) = model.predict(s);
                    prop_assert!(t <= t_base * (1.0 + 1e-12), "{kind} w={w}");
                    prop_assert!((e - plan.energy_at(w)).abs() < 1e-15);
                    prop_assert_eq!(s.ways, w);
                }
            }
        }
    }

    /// RM3's search space contains RM2's, which contains RM1's settings:
    /// plans can only improve along the hierarchy.
    #[test]
    fn controller_hierarchy_dominates(
        mem in prop::collection::vec(1.0e-11f64..5e-10, 15),
    ) {
        let mut mem = mem;
        mem.sort_by(|a, b| b.total_cmp(a));
        let grid = DvfsGrid::table1();
        let model = RandModel { grid: grid.clone(), mem, compute_scale: 1.0 };
        let baseline = Setting::new(CoreSize::M, grid.baseline, 8);
        let p1 = local_optimize(&model, RmKind::Rm1, baseline, &grid, 2..=16, 1.0);
        let p2 = local_optimize(&model, RmKind::Rm2, baseline, &grid, 2..=16, 1.0);
        let p3 = local_optimize(&model, RmKind::Rm3, baseline, &grid, 2..=16, 1.0);
        let p3f = local_optimize(&model, RmKind::Rm3Full, baseline, &grid, 2..=16, 1.0);
        for w in 2..=16 {
            prop_assert!(p2.energy_at(w) <= p1.energy_at(w) + 1e-18);
            prop_assert!(p3.energy_at(w) <= p2.energy_at(w) + 1e-18);
            prop_assert!(p3f.energy_at(w) <= p3.energy_at(w) + 1e-18);
        }
    }
}
