//! Deterministic fault injection at named sites (std-only `fail` stand-in).
//!
//! Long campaigns must survive torn writes, vanished files and poisoned
//! specs; proving that requires *injecting* those faults reproducibly. A
//! [`FailPoint`] is a named site compiled into a real IO or compute seam
//! (store persist, journal append, workload materialization, per-row
//! simulation). By default every site is **inert**: [`FailPoint::fire`]
//! is one relaxed atomic load plus a predictable branch — the same
//! discipline as `triad-telemetry`, and gated the same way (≤1% of the
//! `db_build`/`rm_overhead` hot loops) so sites can sit on warm paths.
//!
//! Sites are armed either programmatically ([`configure`]) or through the
//! `TRIAD_FAILPOINTS` environment variable (read once, by an explicit
//! [`init_from_env`] call from the binary's entry point — libraries never
//! consult the environment behind a caller's back):
//!
//! ```text
//! TRIAD_FAILPOINTS="db_store.persist.write=every(2);campaign.row=once:panic"
//! ```
//!
//! Each clause is `site=trigger[:action]`:
//!
//! * triggers — `always`, `once`, `every(N)` (the Nth, 2Nth, … hits),
//!   `prob(P)` / `prob(P,SEED)` (independent draws from a per-site
//!   xoshiro256++ stream seeded with `SEED`, default 0 — the same
//!   deterministic PRNG the trace generators use, so a fault schedule
//!   replays exactly);
//! * actions — `error` (default: the site reports an injected failure
//!   through its normal error path), `panic` (the site panics, exercising
//!   the campaign's `catch_unwind` quarantine), `abort` (the whole
//!   process dies on the spot — a deterministic `kill -9` for
//!   crash-recovery tests).
//!
//! Armed-path bookkeeping lives behind one global mutex: fault injection
//! is a test/debug regime, so contention there is irrelevant; only the
//! inert path is performance-critical.

use crate::rand::{rngs::StdRng, RandomValue, SeedableRng};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// What an armed site injects when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Report an injected failure through the site's error path.
    Error,
    /// Panic at the site (quarantine-path testing).
    Panic,
    /// Abort the process immediately (crash-recovery testing).
    Abort,
}

/// When an armed site injects its fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Every hit.
    Always,
    /// The first hit only.
    Once,
    /// Hits `n`, `2n`, `3n`, … (1-based).
    EveryNth(u64),
    /// Each hit independently with probability `p`, drawn from a per-site
    /// deterministic stream seeded with `seed`.
    Prob { p: f64, seed: u64 },
}

struct Site {
    name: String,
    trigger: Trigger,
    kind: FaultKind,
    hits: u64,
    fired: u64,
    rng: StdRng,
}

impl Site {
    fn evaluate(&mut self) -> Option<FaultKind> {
        self.hits += 1;
        let fire = match self.trigger {
            Trigger::Always => true,
            Trigger::Once => self.hits == 1,
            Trigger::EveryNth(n) => self.hits.is_multiple_of(n.max(1)),
            Trigger::Prob { p, .. } => f64::from_rng(&mut self.rng) < p,
        };
        if fire {
            self.fired += 1;
            TOTAL_FIRED.fetch_add(1, Ordering::Relaxed);
            Some(self.kind)
        } else {
            None
        }
    }
}

/// Number of armed sites; the inert fast path is `ARMED == 0`.
static ARMED: AtomicUsize = AtomicUsize::new(0);
/// Total faults injected process-wide (all sites, all kinds).
static TOTAL_FIRED: AtomicU64 = AtomicU64::new(0);
static SITES: Mutex<Vec<Site>> = Mutex::new(Vec::new());

fn lock_sites() -> std::sync::MutexGuard<'static, Vec<Site>> {
    SITES.lock().unwrap_or_else(|e| e.into_inner())
}

/// A named fault-injection site. Declare as a `static` next to the seam
/// it guards; the name is the handle [`configure`] and `TRIAD_FAILPOINTS`
/// arm it by.
pub struct FailPoint {
    name: &'static str,
}

impl FailPoint {
    /// A site named `name` (dotted lowercase by convention, e.g.
    /// `"db_store.persist.rename"`).
    pub const fn new(name: &'static str) -> FailPoint {
        FailPoint { name }
    }

    /// The site's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Evaluate the site: `None` (by far the common case — one relaxed
    /// load and a branch when nothing is armed), or the fault to inject.
    ///
    /// `Abort` never returns: the process dies here, after an explanatory
    /// line on stderr, exactly as a `kill -9` would mid-operation.
    #[inline]
    pub fn fire(&self) -> Option<FaultKind> {
        if ARMED.load(Ordering::Relaxed) == 0 {
            return None;
        }
        self.fire_armed()
    }

    #[cold]
    fn fire_armed(&self) -> Option<FaultKind> {
        let kind = {
            let mut sites = lock_sites();
            let site = sites.iter_mut().find(|s| s.name == self.name)?;
            site.evaluate()?
        };
        if kind == FaultKind::Abort {
            eprintln!("failpoint {}: injected abort", self.name);
            std::process::abort();
        }
        Some(kind)
    }

    /// Evaluate the site against a `Result`-shaped seam: `Ok(())` when
    /// inert or the trigger does not fire, `Err` describing the injected
    /// fault for [`FaultKind::Error`], a panic for [`FaultKind::Panic`].
    #[inline]
    pub fn check(&self) -> Result<(), String> {
        match self.fire() {
            None => Ok(()),
            Some(FaultKind::Error) => Err(format!("failpoint {}: injected error", self.name)),
            Some(FaultKind::Panic | FaultKind::Abort) => {
                panic!("failpoint {}: injected panic", self.name)
            }
        }
    }

    /// [`FailPoint::check`] mapped onto `std::io::Error` for filesystem
    /// seams.
    #[inline]
    pub fn check_io(&self) -> std::io::Result<()> {
        self.check().map_err(std::io::Error::other)
    }
}

/// Arm `site` with an explicit trigger and action. Reconfiguring an
/// already-armed site replaces its trigger and resets its hit counters.
pub fn configure(site: &str, trigger: Trigger, kind: FaultKind) {
    let seed = match trigger {
        Trigger::Prob { seed, .. } => seed,
        _ => 0,
    };
    let mut sites = lock_sites();
    sites.retain(|s| s.name != site);
    sites.push(Site {
        name: site.to_string(),
        trigger,
        kind,
        hits: 0,
        fired: 0,
        rng: StdRng::seed_from_u64(seed),
    });
    ARMED.store(sites.len(), Ordering::Relaxed);
}

/// Disarm one site (no-op if it was not armed).
pub fn clear(site: &str) {
    let mut sites = lock_sites();
    sites.retain(|s| s.name != site);
    ARMED.store(sites.len(), Ordering::Relaxed);
}

/// Disarm every site. Tests that arm failpoints must call this on every
/// exit path (the registry is process-global).
pub fn clear_all() {
    let mut sites = lock_sites();
    sites.clear();
    ARMED.store(0, Ordering::Relaxed);
}

/// Number of times `site` has injected a fault so far.
pub fn fired(site: &str) -> u64 {
    lock_sites().iter().find(|s| s.name == site).map(|s| s.fired).unwrap_or(0)
}

/// Total faults injected process-wide since start.
pub fn total_fired() -> u64 {
    TOTAL_FIRED.load(Ordering::Relaxed)
}

/// Parse and arm a full `TRIAD_FAILPOINTS`-syntax configuration string:
/// semicolon-separated `site=trigger[:action]` clauses (see the module
/// docs). Empty clauses are ignored, so trailing semicolons are fine.
pub fn configure_str(config: &str) -> Result<(), String> {
    for clause in config.split(';') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        let (site, spec) = clause
            .split_once('=')
            .ok_or_else(|| format!("failpoint clause {clause:?}: expected site=trigger"))?;
        let site = site.trim();
        if site.is_empty() {
            return Err(format!("failpoint clause {clause:?}: empty site name"));
        }
        let (trigger_s, kind_s) = match spec.split_once(':') {
            Some((t, k)) => (t.trim(), Some(k.trim())),
            None => (spec.trim(), None),
        };
        let trigger = parse_trigger(trigger_s)
            .ok_or_else(|| format!("failpoint {site}: unknown trigger {trigger_s:?}"))?;
        let kind = match kind_s {
            None | Some("error") => FaultKind::Error,
            Some("panic") => FaultKind::Panic,
            Some("abort") => FaultKind::Abort,
            Some(other) => {
                return Err(format!(
                    "failpoint {site}: unknown action {other:?} (error, panic, abort)"
                ))
            }
        };
        configure(site, trigger, kind);
    }
    Ok(())
}

fn parse_trigger(s: &str) -> Option<Trigger> {
    if s == "always" {
        return Some(Trigger::Always);
    }
    if s == "once" {
        return Some(Trigger::Once);
    }
    if let Some(args) = s.strip_prefix("every(").and_then(|r| r.strip_suffix(')')) {
        let n: u64 = args.trim().parse().ok()?;
        if n == 0 {
            return None;
        }
        return Some(Trigger::EveryNth(n));
    }
    if let Some(args) = s.strip_prefix("prob(").and_then(|r| r.strip_suffix(')')) {
        let mut parts = args.splitn(2, ',');
        let p: f64 = parts.next()?.trim().parse().ok()?;
        if !(0.0..=1.0).contains(&p) {
            return None;
        }
        let seed: u64 = match parts.next() {
            Some(s) => s.trim().parse().ok()?,
            None => 0,
        };
        return Some(Trigger::Prob { p, seed });
    }
    None
}

/// Arm sites from the `TRIAD_FAILPOINTS` environment variable, if set.
/// Called once from binary entry points (`triad-bench`); libraries and
/// tests use [`configure`]/[`configure_str`] directly.
pub fn init_from_env() -> Result<(), String> {
    match std::env::var("TRIAD_FAILPOINTS") {
        Ok(v) if !v.trim().is_empty() => {
            configure_str(&v).map_err(|e| format!("TRIAD_FAILPOINTS: {e}"))
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; every test serializes on this.
    static GUARD: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        let g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        clear_all();
        g
    }

    static INERT: FailPoint = FailPoint::new("test.inert");
    static NTH: FailPoint = FailPoint::new("test.nth");
    static PROB: FailPoint = FailPoint::new("test.prob");
    static ONCE: FailPoint = FailPoint::new("test.once");

    #[test]
    fn inert_site_never_fires() {
        let _g = locked();
        for _ in 0..1000 {
            assert_eq!(INERT.fire(), None);
        }
        assert!(INERT.check().is_ok());
        assert_eq!(fired("test.inert"), 0);
    }

    #[test]
    fn unarmed_site_stays_inert_while_another_is_armed() {
        let _g = locked();
        configure("test.nth", Trigger::Always, FaultKind::Error);
        assert_eq!(INERT.fire(), None, "arming one site must not affect others");
        assert_eq!(NTH.fire(), Some(FaultKind::Error));
        clear_all();
    }

    #[test]
    fn every_nth_fires_deterministically() {
        let _g = locked();
        configure("test.nth", Trigger::EveryNth(3), FaultKind::Error);
        let pattern: Vec<bool> = (0..9).map(|_| NTH.fire().is_some()).collect();
        assert_eq!(
            pattern,
            [false, false, true, false, false, true, false, false, true],
            "every(3) fires on hits 3, 6, 9"
        );
        assert_eq!(fired("test.nth"), 3);
        clear_all();
    }

    #[test]
    fn once_fires_exactly_once() {
        let _g = locked();
        configure("test.once", Trigger::Once, FaultKind::Error);
        let fires: usize = (0..10).filter(|_| ONCE.fire().is_some()).count();
        assert_eq!(fires, 1);
        assert_eq!(fired("test.once"), 1);
        clear_all();
    }

    #[test]
    fn prob_schedule_replays_for_equal_seeds_and_differs_across_seeds() {
        let _g = locked();
        let draw = |seed: u64| -> Vec<bool> {
            configure("test.prob", Trigger::Prob { p: 0.5, seed }, FaultKind::Error);
            (0..64).map(|_| PROB.fire().is_some()).collect()
        };
        let a = draw(7);
        let b = draw(7);
        let c = draw(8);
        assert_eq!(a, b, "equal seeds must replay the same fault schedule");
        assert_ne!(a, c, "distinct seeds must explore distinct schedules");
        let hits = a.iter().filter(|&&f| f).count();
        assert!((8..=56).contains(&hits), "p=0.5 over 64 draws fired {hits} times");
        clear_all();
    }

    #[test]
    fn reconfigure_resets_counters() {
        let _g = locked();
        configure("test.nth", Trigger::EveryNth(2), FaultKind::Error);
        NTH.fire();
        NTH.fire();
        assert_eq!(fired("test.nth"), 1);
        configure("test.nth", Trigger::EveryNth(2), FaultKind::Error);
        assert_eq!(fired("test.nth"), 0, "reconfiguring restarts the schedule");
        assert_eq!(NTH.fire(), None, "hit 1 of the fresh schedule");
        clear_all();
    }

    #[test]
    fn check_maps_error_kind_to_err() {
        let _g = locked();
        configure("test.nth", Trigger::Always, FaultKind::Error);
        let e = NTH.check().unwrap_err();
        assert!(e.contains("test.nth"), "error names the site: {e}");
        let io = NTH.check_io().unwrap_err();
        assert!(io.to_string().contains("injected"), "{io}");
        clear_all();
    }

    #[test]
    #[should_panic(expected = "failpoint test.nth: injected panic")]
    fn check_panics_on_panic_kind() {
        // Deliberately does not hold the guard across the panic; arming is
        // atomic and `clear` in other tests tolerates concurrent arms.
        {
            let _g = locked();
        }
        configure("test.nth", Trigger::Always, FaultKind::Panic);
        let _ = NTH.check();
    }

    #[test]
    fn configure_str_parses_the_env_syntax() {
        let _g = locked();
        configure_str("test.nth = every(2) ; test.prob=prob(0.25, 9):panic; test.once=once:abort;")
            .unwrap();
        let sites = lock_sites();
        assert_eq!(sites.len(), 3);
        let by_name = |n: &str| sites.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("test.nth").trigger, Trigger::EveryNth(2));
        assert_eq!(by_name("test.nth").kind, FaultKind::Error);
        assert_eq!(by_name("test.prob").trigger, Trigger::Prob { p: 0.25, seed: 9 });
        assert_eq!(by_name("test.prob").kind, FaultKind::Panic);
        assert_eq!(by_name("test.once").trigger, Trigger::Once);
        assert_eq!(by_name("test.once").kind, FaultKind::Abort);
        drop(sites);
        clear_all();
    }

    #[test]
    fn configure_str_rejects_malformed_clauses() {
        let _g = locked();
        for bad in [
            "no-equals",
            "=every(2)",
            "s=every(0)",
            "s=every(x)",
            "s=prob(1.5)",
            "s=prob(0.5):explode",
            "s=sometimes",
        ] {
            assert!(configure_str(bad).is_err(), "{bad:?} must be rejected");
        }
        clear_all();
    }
}
