//! Deterministic pseudo-random numbers (std-only `rand` stand-in).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, well
//! distributed, and identical on every platform, which is what the
//! synthetic trace generators and workload samplers need. The API mirrors
//! the subset of the `rand` crate the workspace uses so call sites read
//! idiomatically: `StdRng::seed_from_u64(s)`, `rng.random::<f64>()`,
//! `rng.random_bool(p)`, `rng.random_range(lo..hi)`.

pub mod rngs {
    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        pub(crate) fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

use rngs::StdRng;

/// Construction from a 64-bit seed (the only seeding mode the workspace
/// uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full 256-bit state, as
        // recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

/// Types [`RngExt::random`] can produce.
pub trait RandomValue {
    fn from_rng(rng: &mut StdRng) -> Self;
}

impl RandomValue for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn from_rng(rng: &mut StdRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RandomValue for u64 {
    #[inline]
    fn from_rng(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl RandomValue for bool {
    #[inline]
    fn from_rng(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types [`RngExt::random_range`] can sample.
pub trait UniformInt: Copy {
    fn to_u64(self) -> u64;
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// Range forms accepted by [`RngExt::random_range`], normalized to
/// inclusive `[lo, hi]` bounds.
pub trait UniformRange<T> {
    fn bounds(self) -> (T, T);
}

impl<T: UniformInt> UniformRange<T> for std::ops::Range<T> {
    #[inline]
    fn bounds(self) -> (T, T) {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "empty range");
        (T::from_u64(lo), T::from_u64(hi - 1))
    }
}

impl<T: UniformInt> UniformRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn bounds(self) -> (T, T) {
        let (lo, hi) = self.into_inner();
        assert!(lo.to_u64() <= hi.to_u64(), "empty range");
        (lo, hi)
    }
}

/// Sampling methods, mirroring the `rand` crate's method names.
pub trait RngExt {
    /// A uniformly random value of `T`.
    fn random<T: RandomValue>(&mut self) -> T;

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool;

    /// Uniform integer in the given range.
    fn random_range<T: UniformInt, R: UniformRange<T>>(&mut self, range: R) -> T;
}

impl RngExt for StdRng {
    #[inline]
    fn random<T: RandomValue>(&mut self) -> T {
        T::from_rng(self)
    }

    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.random::<f64>() < p
    }

    #[inline]
    fn random_range<T: UniformInt, R: UniformRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.bounds();
        let (lo, hi) = (lo.to_u64(), hi.to_u64());
        let span = hi.wrapping_sub(lo).wrapping_add(1); // 0 means the full u64 domain
        if span == 0 {
            return T::from_u64(self.next_u64());
        }
        // Debiased multiply-shift rejection (Lemire): exact uniformity and
        // fast for the small spans the workspace samples. The rejection
        // threshold `(2^64 - span) % span` is itself `< span`, so any draw
        // with `low >= span` is accepted without evaluating the modulo —
        // same accept/reject decisions, but the 64-bit division (the single
        // most expensive operation in trace generation) runs only with
        // probability `span / 2^64`.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            let low = m as u64;
            if low >= span || low >= span.wrapping_neg() % span {
                return T::from_u64(lo + (m >> 64) as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_is_unit_interval_and_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2_000 {
            let x = rng.random_range(3u32..=9);
            assert!((3..=9).contains(&x));
            seen_lo |= x == 3;
            seen_hi |= x == 9;
            let y = rng.random_range(0usize..5);
            assert!(y < 5);
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        let mut rng = StdRng::seed_from_u64(12);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        let mut rng = StdRng::seed_from_u64(13);
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
