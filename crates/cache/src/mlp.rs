//! Leading-miss (MLP) monitor — the paper's hardware contribution (§III-C,
//! Fig. 4).
//!
//! The total number of LLC misses is a poor predictor of memory stall time
//! because overlapping misses cost roughly one memory latency per *group*.
//! Only the **leading miss** (LM) of each group should be counted
//! [Su'14, Miftakhutdinov'12]. No prior online mechanism estimated leading
//! misses across *different core sizes and LLC allocations*; this monitor
//! does, with one small counter per (core size, way allocation):
//!
//! Every LLC load carries a 10-bit **instruction index** (its position in a
//! wrapping window of 4 × max-ROB = 1024 instructions). For each core size
//! `c` and allocation `w`, a load that the ATD predicts to *miss at `w`* is
//! classified on arrival:
//!
//! 1. if its wrapped distance to the last LM is ≥ ROB(c), the ROB could not
//!    have held both → new **LM**;
//! 2. else, if it arrives *out of order* — its distance is smaller than the
//!    last overlapping load's distance — it is assumed data-dependent on the
//!    last LM (a dependent load is delayed by its producer's miss, letting
//!    younger independent loads overtake it) → new **LM**;
//! 3. otherwise it **overlaps** (OV) with the last LM.
//!
//! The per-counter state is exactly the paper's: the LM count, the index of
//! the last LM and the distance of the last OV (~47 bits per counter; 48
//! counters ≈ 300 B per core, §III-E).

use crate::atd::COLD;
use triad_arch::core_size::{CoreSize, INSTRUCTION_INDEX_BITS, INSTRUCTION_INDEX_WINDOW};

/// Decision taken for one predicted-miss load (exposed for tests/tracing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LmDecision {
    /// Counted as a new leading miss.
    Lead,
    /// Counted as overlapping with the last leading miss.
    Overlap,
}

/// Sentinel for "no value" in the index/distance registers.
const NONE: u32 = u32::MAX;

/// Per-(core-size, allocation) counter state (Fig. 4's three registers) —
/// the scalar reference model. The monitor itself stores the same
/// registers struct-of-arrays (see [`MlpMonitor`]); this form backs the
/// worked-example unit tests and the SoA-equivalence property test.
#[derive(Debug, Clone, Copy)]
#[cfg_attr(not(test), allow(dead_code))]
struct Counter {
    last_lm_idx: u32,
    last_ov_dist: u32,
    lm: u64,
    ov: u64,
}

#[cfg_attr(not(test), allow(dead_code))]
impl Counter {
    const fn new() -> Self {
        Counter { last_lm_idx: NONE, last_ov_dist: NONE, lm: 0, ov: 0 }
    }

    #[inline]
    fn classify(&mut self, idx: u32, rob: u32) -> LmDecision {
        let mask = INSTRUCTION_INDEX_WINDOW - 1;
        if self.last_lm_idx == NONE {
            return self.lead(idx);
        }
        let d = idx.wrapping_sub(self.last_lm_idx) & mask;
        if d >= rob {
            self.lead(idx)
        } else if self.last_ov_dist != NONE && d < self.last_ov_dist {
            // Out-of-order arrival ⇒ assumed dependent on the last LM.
            self.lead(idx)
        } else {
            self.ov += 1;
            self.last_ov_dist = d;
            LmDecision::Overlap
        }
    }

    #[inline]
    fn lead(&mut self, idx: u32) -> LmDecision {
        self.lm += 1;
        self.last_lm_idx = idx;
        self.last_ov_dist = NONE;
        LmDecision::Lead
    }
}

/// The full monitor for one core: one counter per core size per
/// way allocation.
///
/// Register state is held struct-of-arrays and each load's classification
/// runs as a branch-free select sweep over one core size's contiguous way
/// slots: a deep (cold) miss touches all `CoreSize::COUNT × n_ways`
/// counters, which as 45 data-dependent branches dominated the monitored
/// grid pass's feed phase. In select form the sweep vectorizes (u32
/// registers, u32 counts — the hardware's 27-bit counters cannot wrap in
/// an interval) and is decision-identical to the scalar `Counter`
/// reference (test-only), which a property test asserts.
#[derive(Debug, Clone)]
pub struct MlpMonitor {
    min_ways: usize,
    n_ways: usize,
    /// Fig. 4's three registers plus the OV count, each
    /// `CoreSize::COUNT × n_ways` long, core-size-major.
    last_lm_idx: Vec<u32>,
    last_ov_dist: Vec<u32>,
    lm: Vec<u32>,
    ov: Vec<u32>,
}

impl MlpMonitor {
    /// Monitor for allocations `min_ways..=max_ways` (Table I: 2..=16 →
    /// 3 × 15 = 45 counters; the paper's §III-E rounds to 48).
    pub fn new(min_ways: usize, max_ways: usize) -> Self {
        assert!(min_ways >= 1 && max_ways >= min_ways);
        let n_ways = max_ways - min_ways + 1;
        let n = CoreSize::COUNT * n_ways;
        MlpMonitor {
            min_ways,
            n_ways,
            last_lm_idx: vec![NONE; n],
            last_ov_dist: vec![NONE; n],
            lm: vec![0; n],
            ov: vec![0; n],
        }
    }

    /// The Table I monitor (2..=16 ways).
    pub fn table1() -> Self {
        Self::new(2, 16)
    }

    #[inline]
    fn slot(&self, c: CoreSize, w: usize) -> usize {
        debug_assert!(w >= self.min_ways && w < self.min_ways + self.n_ways);
        c.index() * self.n_ways + (w - self.min_ways)
    }

    /// Feed one LLC **load** in arrival order.
    ///
    /// * `inst_index` — program-order index of the load (truncated to the
    ///   10-bit hardware window internally);
    /// * `stack_dist` — ATD stack distance, or [`crate::atd::COLD`] when the
    ///   load misses every tracked position.
    ///
    /// The load is classified for every `(c, w)` whose allocation it is
    /// predicted to miss (`stack_dist ≥ w`).
    #[inline]
    pub fn on_llc_load(&mut self, inst_index: u64, stack_dist: u8) {
        let idx = (inst_index as u32) & (INSTRUCTION_INDEX_WINDOW - 1);
        // The largest allocation this load still misses.
        let upper = if stack_dist == COLD {
            self.min_ways + self.n_ways - 1
        } else {
            (stack_dist as usize).min(self.min_ways + self.n_ways - 1)
        };
        if stack_dist != COLD && (stack_dist as usize) < self.min_ways {
            return; // hits even the smallest allocation: never a miss
        }
        let mask = INSTRUCTION_INDEX_WINDOW - 1;
        let span = upper - self.min_ways + 1;
        for c in CoreSize::ALL {
            let rob = c.rob();
            let base = c.index() * self.n_ways;
            let ll = &mut self.last_lm_idx[base..base + span];
            let lo = &mut self.last_ov_dist[base..base + span];
            let lm = &mut self.lm[base..base + span];
            let ov = &mut self.ov[base..base + span];
            for s in 0..span {
                let d = idx.wrapping_sub(ll[s]) & mask;
                // Fig. 4's decision tree, flattened: first-ever miss, the
                // ROB cannot hold both, or out-of-order arrival (assumed
                // dependent on the last LM) ⇒ new leading miss.
                let lead = ll[s] == NONE || d >= rob || (lo[s] != NONE && d < lo[s]);
                lm[s] += lead as u32;
                ov[s] += !lead as u32;
                ll[s] = if lead { idx } else { ll[s] };
                lo[s] = if lead { NONE } else { d };
            }
        }
    }

    /// Leading-miss count for `(c, w)`.
    pub fn lm_count(&self, c: CoreSize, w: usize) -> u64 {
        self.lm[self.slot(c, w)] as u64
    }

    /// Overlapping-miss count for `(c, w)` (diagnostic).
    pub fn ov_count(&self, c: CoreSize, w: usize) -> u64 {
        self.ov[self.slot(c, w)] as u64
    }

    /// Total predicted misses observed for `(c, w)` (LM + OV). Identical
    /// across core sizes by construction.
    pub fn miss_count(&self, c: CoreSize, w: usize) -> u64 {
        let s = self.slot(c, w);
        (self.lm[s] + self.ov[s]) as u64
    }

    /// Estimated MLP for `(c, w)`: misses per leading miss (≥ 1); 1.0 when
    /// no misses were observed.
    pub fn mlp(&self, c: CoreSize, w: usize) -> f64 {
        let s = self.slot(c, w);
        let (lm, ov) = (self.lm[s], self.ov[s]);
        if lm == 0 {
            1.0
        } else {
            (lm + ov) as f64 / lm as f64
        }
    }

    /// Dense LM matrix `[core size][way slot]` for database storage.
    pub fn lm_matrix(&self) -> Vec<Vec<u64>> {
        CoreSize::ALL
            .iter()
            .map(|&c| {
                (self.min_ways..self.min_ways + self.n_ways).map(|w| self.lm_count(c, w)).collect()
            })
            .collect()
    }

    /// Reset all counters and registers (per-interval readout).
    pub fn reset(&mut self) {
        self.last_lm_idx.fill(NONE);
        self.last_ov_dist.fill(NONE);
        self.lm.fill(0);
        self.ov.fill(0);
    }

    /// Smallest tracked allocation.
    pub fn min_ways(&self) -> usize {
        self.min_ways
    }

    /// Number of tracked allocations.
    pub fn n_ways(&self) -> usize {
        self.n_ways
    }

    /// Hardware storage estimate in bits, per the §III-E accounting: a
    /// 27-bit LM count plus the 10-bit last-LM-index and 10-bit last-OV
    /// -distance registers per counter.
    pub fn storage_bits(&self) -> usize {
        self.lm.len() * (27 + 2 * INSTRUCTION_INDEX_BITS as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example of Fig. 4, verbatim: loads arrive at the ATD in
    /// the order LD1 (idx 5), LD3 (idx 33), LD2 (idx 20), LD4 (idx 90), all
    /// predicted to miss allocation `w`.
    ///
    /// * S core (ROB 64): LD1 → first LM; LD3 → D=28 < 64 ⇒ OV;
    ///   LD2 → D=15 < 64 but 15 < 28 ⇒ dependent ⇒ LM; LD4 → D=70 > 64 ⇒ LM.
    ///   Three leading misses.
    /// * M core (ROB 128): same first three decisions; LD4 → D=70 < 128
    ///   with no prior OV ⇒ OV. Two leading misses.
    #[test]
    fn figure4_worked_example() {
        let mut mon = MlpMonitor::table1();
        for idx in [5u64, 33, 20, 90] {
            mon.on_llc_load(idx, COLD);
        }
        for w in 2..=16 {
            assert_eq!(mon.lm_count(CoreSize::S, w), 3, "S core, w={w}");
            assert_eq!(mon.lm_count(CoreSize::M, w), 2, "M core, w={w}");
            // L core (ROB 256) behaves like M here.
            assert_eq!(mon.lm_count(CoreSize::L, w), 2, "L core, w={w}");
        }
        assert_eq!(mon.ov_count(CoreSize::S, 8), 1);
        assert_eq!(mon.ov_count(CoreSize::M, 8), 2);
    }

    /// Step-by-step register evolution of the S-core counter from Fig. 4.
    #[test]
    fn figure4_decision_sequence() {
        let mut ctr = Counter::new();
        let rob = CoreSize::S.rob();
        assert_eq!(ctr.classify(5, rob), LmDecision::Lead); // first LM
        assert_eq!(ctr.classify(33, rob), LmDecision::Overlap); // D=28
        assert_eq!(ctr.last_ov_dist, 28);
        assert_eq!(ctr.classify(20, rob), LmDecision::Lead); // D=15 < 28
        assert_eq!(ctr.last_lm_idx, 20);
        assert_eq!(ctr.last_ov_dist, NONE);
        assert_eq!(ctr.classify(90, rob), LmDecision::Lead); // D=70 ≥ 64
        assert_eq!(ctr.lm, 3);
        assert_eq!(ctr.ov, 1);
    }

    /// The select-form SoA sweep must be decision-identical to the scalar
    /// [`Counter`] reference for every (core size, allocation) under a
    /// pseudo-random mix of deep, shallow and ignored loads.
    #[test]
    fn soa_sweep_matches_scalar_counters() {
        let mut mon = MlpMonitor::table1();
        let mut refs = vec![Counter::new(); CoreSize::COUNT * 15];
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..4000 {
            // SplitMix-style scramble: index and stack distance streams.
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let idx = (x >> 16) & 0x3ff;
            let dist = match (x >> 40) % 4 {
                0 => COLD,
                1 => (x >> 50) as u8 % 18, // shallow-to-deep spread
                2 => 1,                    // below min_ways: ignored
                _ => 16,
            };
            mon.on_llc_load(idx, dist);
            // Reference: the original per-counter branchy walk.
            if dist == COLD || dist as usize >= 2 {
                let upper = if dist == COLD { 16 } else { (dist as usize).min(16) };
                for c in CoreSize::ALL {
                    for w in 2..=upper {
                        refs[c.index() * 15 + (w - 2)].classify(idx as u32 & 0x3ff, c.rob());
                    }
                }
            }
        }
        for c in CoreSize::ALL {
            for w in 2..=16 {
                let r = &refs[c.index() * 15 + (w - 2)];
                assert_eq!(mon.lm_count(c, w), r.lm, "{c} w={w} lm");
                assert_eq!(mon.ov_count(c, w), r.ov, "{c} w={w} ov");
            }
        }
    }

    #[test]
    fn larger_core_never_counts_more_leading_misses() {
        // In-order arrivals: a bigger ROB can only merge more misses.
        let mut mon = MlpMonitor::table1();
        let mut idx = 0u64;
        for step in [10u64, 40, 90, 17, 33, 200, 5, 70, 120, 61] {
            idx += step;
            mon.on_llc_load(idx, COLD);
        }
        for w in 2..=16 {
            let s = mon.lm_count(CoreSize::S, w);
            let m = mon.lm_count(CoreSize::M, w);
            let l = mon.lm_count(CoreSize::L, w);
            assert!(s >= m && m >= l, "w={w}: S={s} M={m} L={l}");
        }
    }

    #[test]
    fn hit_at_small_allocation_only_counts_for_smaller_ways() {
        let mut mon = MlpMonitor::table1();
        // Stack distance 5: misses w ∈ {2..=5}, hits w ∈ {6..=16}.
        mon.on_llc_load(0, 5);
        for w in 2..=5 {
            assert_eq!(mon.miss_count(CoreSize::M, w), 1, "w={w}");
        }
        for w in 6..=16 {
            assert_eq!(mon.miss_count(CoreSize::M, w), 0, "w={w}");
        }
    }

    #[test]
    fn dist_below_min_ways_is_ignored() {
        let mut mon = MlpMonitor::table1();
        mon.on_llc_load(0, 1); // hits even the 2-way allocation
        for w in 2..=16 {
            assert_eq!(mon.miss_count(CoreSize::L, w), 0);
        }
    }

    #[test]
    fn wrapping_distance_is_modular() {
        let mut mon = MlpMonitor::table1();
        // Last LM at window index 1000; next load at program index 1054
        // (window index 30): wrapped distance (30 − 1000) mod 1024 = 54.
        mon.on_llc_load(1000, COLD); // LM
        mon.on_llc_load(1054, COLD); // D=54 < 64 ⇒ OV on S
        assert_eq!(mon.lm_count(CoreSize::S, 8), 1);
        assert_eq!(mon.ov_count(CoreSize::S, 8), 1);
    }

    #[test]
    fn serial_arrivals_far_apart_are_all_leading() {
        let mut mon = MlpMonitor::table1();
        for i in 0..50u64 {
            mon.on_llc_load(i * 300, COLD); // 300 ≥ every ROB
        }
        for c in CoreSize::ALL {
            assert_eq!(mon.lm_count(c, 8), 50, "{c}");
            assert!((mon.mlp(c, 8) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn dense_independent_arrivals_give_high_mlp_on_big_cores() {
        let mut mon = MlpMonitor::table1();
        for i in 0..512u64 {
            mon.on_llc_load(i * 8, COLD); // 8 instructions apart, in order
        }
        let s = mon.mlp(CoreSize::S, 8);
        let l = mon.mlp(CoreSize::L, 8);
        assert!(l > s, "L core must extract more MLP: S={s}, L={l}");
        assert!(l >= 2.0);
    }

    #[test]
    fn mlp_defaults_to_one_without_misses() {
        let mon = MlpMonitor::table1();
        assert_eq!(mon.mlp(CoreSize::M, 8), 1.0);
    }

    #[test]
    fn reset_clears_counts_and_registers() {
        let mut mon = MlpMonitor::table1();
        mon.on_llc_load(5, COLD);
        mon.on_llc_load(12, COLD);
        mon.reset();
        assert_eq!(mon.lm_count(CoreSize::S, 8), 0);
        // After reset the next load is a fresh "first LM".
        mon.on_llc_load(13, COLD);
        assert_eq!(mon.lm_count(CoreSize::S, 8), 1);
        assert_eq!(mon.ov_count(CoreSize::S, 8), 0);
    }

    #[test]
    fn storage_is_under_300_bytes_per_core() {
        // §III-E: 3 sizes × 15–16 allocations ≈ 48 counters of ~47 bits
        // ⇒ < 300 bytes.
        let mon = MlpMonitor::table1();
        assert!(mon.storage_bits() <= 300 * 8, "{} bits", mon.storage_bits());
    }

    #[test]
    fn lm_matrix_shape_and_content() {
        let mut mon = MlpMonitor::table1();
        mon.on_llc_load(0, COLD);
        mon.on_llc_load(500, COLD);
        let m = mon.lm_matrix();
        assert_eq!(m.len(), 3);
        assert_eq!(m[0].len(), 15);
        for (ci, row) in m.iter().enumerate() {
            for (wi, &v) in row.iter().enumerate() {
                let c = CoreSize::from_index(ci).unwrap();
                assert_eq!(v, mon.lm_count(c, wi + 2));
            }
        }
    }
}
