//! Wall-clock measurement for the `harness = false` benches.
//!
//! Replaces the criterion dependency with the 5 % of it the workspace
//! needs: warm up, run a fixed wall-clock budget, report mean time per
//! iteration (and derived throughput). When `TRIAD_BENCH_JSON` names a
//! file, every measurement is also appended there as one JSON object per
//! line (JSON Lines — append-safe across the several bench binaries CI
//! runs into the same file, then uploads as a workflow artifact).

use crate::json::Json;
use std::hint::black_box;
use std::io::Write;
use std::time::{Duration, Instant};

/// Result of one measured benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Mean seconds per iteration.
    pub secs_per_iter: f64,
    /// Iterations executed in the measurement window.
    pub iters: u64,
}

impl Measurement {
    /// Iterations per second.
    pub fn per_sec(&self) -> f64 {
        1.0 / self.secs_per_iter
    }

    /// Human-readable time per iteration.
    pub fn display_time(&self) -> String {
        let s = self.secs_per_iter;
        if s >= 1.0 {
            format!("{s:.3} s")
        } else if s >= 1e-3 {
            format!("{:.3} ms", s * 1e3)
        } else if s >= 1e-6 {
            format!("{:.3} us", s * 1e6)
        } else {
            format!("{:.1} ns", s * 1e9)
        }
    }
}

/// Measure `f` for roughly `budget` of wall-clock time after a short
/// warm-up, and print `label: <time>/iter` plus optional element
/// throughput.
pub fn bench(
    label: &str,
    elements_per_iter: Option<u64>,
    budget: Duration,
    mut f: impl FnMut(),
) -> Measurement {
    // Warm-up: run a few iterations or 10% of the budget, whichever first.
    let warmup_end = Instant::now() + budget / 10;
    for _ in 0..3 {
        f();
        if Instant::now() >= warmup_end {
            break;
        }
    }

    let start = Instant::now();
    let end = start + budget;
    let mut iters = 0u64;
    while Instant::now() < end || iters == 0 {
        f();
        black_box(());
        iters += 1;
    }
    let secs_per_iter = start.elapsed().as_secs_f64() / iters as f64;
    let m = Measurement { secs_per_iter, iters };
    match elements_per_iter {
        Some(n) => println!(
            "{label:<40} {:>12}/iter  {:>14.0} elem/s",
            m.display_time(),
            n as f64 * m.per_sec()
        ),
        None => println!("{label:<40} {:>12}/iter", m.display_time()),
    }
    append_json_record(label, elements_per_iter, &m);
    m
}

/// Append the measurement to the `TRIAD_BENCH_JSON` file (one JSON object
/// per line), if that variable is set. Failures to write are reported but
/// never fail the bench — the gates, not the record, are the contract.
fn append_json_record(label: &str, elements_per_iter: Option<u64>, m: &Measurement) {
    let Ok(path) = std::env::var("TRIAD_BENCH_JSON") else {
        return;
    };
    if let Err(e) = append_json_record_to(&path, label, elements_per_iter, m) {
        eprintln!("warning: could not append bench record to {path}: {e}");
    }
}

/// [`append_json_record`] against an explicit path (testable; the env
/// wrapper adds only the variable lookup). Each record carries the
/// host/context fields from [`host_context`], so artifacts collected from
/// several machines stay machine-attributable.
fn append_json_record_to(
    path: &str,
    label: &str,
    elements_per_iter: Option<u64>,
    m: &Measurement,
) -> std::io::Result<()> {
    let mut rec =
        Json::obj().set("label", label).set("secs_per_iter", m.secs_per_iter).set("iters", m.iters);
    if let Some(n) = elements_per_iter {
        rec = rec.set("elements_per_iter", n);
    }
    let host = host_context();
    rec = rec
        .set("hostname", host.hostname.as_str())
        .set("cores", host.cores)
        .set("target_features", host.target_features.as_str())
        .set("git_rev", host.git_rev.as_str());
    // One line, one write: `O_APPEND` makes a single `write_all` of a
    // complete line atomic enough that the several bench binaries CI runs
    // into one file cannot interleave bytes mid-record.
    let mut line = rec.to_string_compact();
    line.push('\n');
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()))
}

/// Machine attribution recorded with every bench JSON record.
#[derive(Debug, Clone)]
pub struct HostContext {
    /// `$HOSTNAME`, `/etc/hostname`, or `unknown`.
    pub hostname: String,
    /// Available hardware parallelism.
    pub cores: u64,
    /// Compile-time SIMD target features (the visible effect of the
    /// workspace's `-C target-cpu=native` pin), e.g. `avx2+fma`.
    pub target_features: String,
    /// `git rev-parse --short HEAD` (or `$GITHUB_SHA`), best-effort.
    pub git_rev: String,
}

/// The host/context fields stamped into bench records, computed once per
/// process (the git lookup shells out).
pub fn host_context() -> &'static HostContext {
    static CTX: std::sync::OnceLock<HostContext> = std::sync::OnceLock::new();
    CTX.get_or_init(|| HostContext {
        hostname: std::env::var("HOSTNAME")
            .ok()
            .filter(|h| !h.is_empty())
            .or_else(|| {
                std::fs::read_to_string("/etc/hostname")
                    .ok()
                    .map(|s| s.trim().to_string())
                    .filter(|h| !h.is_empty())
            })
            .unwrap_or_else(|| "unknown".into()),
        cores: std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1),
        target_features: {
            let feats: Vec<&str> = [
                ("avx512f", cfg!(target_feature = "avx512f")),
                ("avx2", cfg!(target_feature = "avx2")),
                ("avx", cfg!(target_feature = "avx")),
                ("fma", cfg!(target_feature = "fma")),
                ("sse4.2", cfg!(target_feature = "sse4.2")),
                ("neon", cfg!(target_feature = "neon")),
            ]
            .iter()
            .filter(|&&(_, on)| on)
            .map(|&(name, _)| name)
            .collect();
            if feats.is_empty() {
                "baseline".into()
            } else {
                feats.join("+")
            }
        },
        git_rev: std::env::var("GITHUB_SHA")
            .ok()
            .filter(|s| !s.is_empty())
            .or_else(|| {
                std::process::Command::new("git")
                    .args(["rev-parse", "--short", "HEAD"])
                    .output()
                    .ok()
                    .filter(|o| o.status.success())
                    .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
                    .filter(|s| !s.is_empty())
            })
            .unwrap_or_else(|| "unknown".into()),
    })
}

/// Measurement budget from the `TRIAD_BENCH_BUDGET_MS` environment
/// variable (CI smoke runs shrink it), or `default` when unset/invalid.
pub fn budget_from_env(default: Duration) -> Duration {
    match std::env::var("TRIAD_BENCH_BUDGET_MS").ok().and_then(|v| v.parse::<u64>().ok()) {
        Some(ms) => Duration::from_millis(ms.max(1)),
        None => default,
    }
}

/// Hard-assert threshold for the lockstep-vs-scalar speedup gates: the
/// full claim (≥2×) needs a full measurement window; short smoke budgets
/// (<1 s, e.g. CI's 250 ms) get a conservative 1.5× so a noisy shared
/// runner cannot flake the gate while real perf rot still fails it.
pub fn speedup_gate(budget: Duration) -> f64 {
    if budget < Duration::from_secs(1) {
        1.5
    } else {
        2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_sane() {
        let m = bench("noop", None, Duration::from_millis(20), || {
            black_box(1 + 1);
        });
        assert!(m.iters > 0);
        assert!(m.secs_per_iter > 0.0);
        assert!(m.secs_per_iter < 0.1);
    }

    fn temp_jsonl(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("triad-bench-test-{}-{tag}.jsonl", std::process::id()))
    }

    #[test]
    fn json_records_append_with_host_context() {
        let path = temp_jsonl("append");
        let _ = std::fs::remove_file(&path);
        let m = Measurement { secs_per_iter: 1e-3, iters: 42 };
        append_json_record_to(path.to_str().unwrap(), "first", None, &m).unwrap();
        append_json_record_to(path.to_str().unwrap(), "second", Some(7), &m).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "each call appends exactly one line");
        for (line, label) in lines.iter().zip(["first", "second"]) {
            let rec = crate::json::parse(line).expect("every record is valid JSON");
            assert_eq!(rec.get("label"), Some(&Json::Str(label.into())));
            assert_eq!(rec.get("iters"), Some(&Json::Int(42)));
            for key in ["secs_per_iter", "hostname", "cores", "target_features", "git_rev"] {
                assert!(rec.get(key).is_some(), "{key} field missing from {line}");
            }
        }
        let second = crate::json::parse(lines[1]).unwrap();
        assert_eq!(second.get("elements_per_iter"), Some(&Json::Int(7)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_record_path_is_not_fatal() {
        let m = Measurement { secs_per_iter: 1e-3, iters: 1 };
        let bad = "/nonexistent-triad-dir/sub/bench.jsonl";
        assert!(append_json_record_to(bad, "doomed", None, &m).is_err());
        // The env-driven wrapper downgrades that error to a warning: a
        // bench under a bad TRIAD_BENCH_JSON must still measure and return.
        std::env::set_var("TRIAD_BENCH_JSON", bad);
        let m = bench("bad-path", None, Duration::from_millis(5), || {
            black_box(1 + 1);
        });
        std::env::remove_var("TRIAD_BENCH_JSON");
        assert!(m.iters > 0);
    }

    #[test]
    fn concurrent_appends_do_not_interleave() {
        let path = temp_jsonl("concurrent");
        let _ = std::fs::remove_file(&path);
        let threads = 8;
        let per_thread = 50;
        std::thread::scope(|s| {
            for t in 0..threads {
                let path = &path;
                s.spawn(move || {
                    let m = Measurement { secs_per_iter: 1e-6 * t as f64, iters: t as u64 };
                    for i in 0..per_thread {
                        append_json_record_to(
                            path.to_str().unwrap(),
                            &format!("t{t}-{i}"),
                            Some(i as u64),
                            &m,
                        )
                        .unwrap();
                    }
                });
            }
        });
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), threads * per_thread, "no record lost or split");
        for line in lines {
            crate::json::parse(line)
                .unwrap_or_else(|e| panic!("interleaved/corrupt record {line:?}: {e:?}"));
        }
        let _ = std::fs::remove_file(&path);
    }
}
