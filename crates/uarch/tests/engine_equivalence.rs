//! Engine-equivalence property tests: the lockstep batched path must be
//! **bit-identical** to the legacy single-configuration path for every
//! lane — over randomized phases, all core sizes, both database fit
//! frequencies, with and without the MLP monitor attached.

use triad_arch::{CacheGeometry, CoreSize};
use triad_cache::{classify_warm, MlpMonitor};
use triad_trace::{AccessPattern, MemRegion, PhaseSpec};
use triad_uarch::{simulate, simulate_with_monitor, LaneSpec, TimingConfig, TimingEngine};
use triad_util::rand::rngs::StdRng;
use triad_util::rand::{RngExt, SeedableRng};

const W_MIN: usize = 2;
const W_MAX: usize = 16;

/// Bitwise equality of two results (f64s compared by bit pattern, so this
/// is stricter than `PartialEq` — byte-identical artifacts require it).
fn assert_bits_eq(a: &triad_uarch::TimingResult, b: &triad_uarch::TimingResult, ctx: &str) {
    let ints = |r: &triad_uarch::TimingResult| {
        (r.insts, r.cycles, r.dram_loads, r.dram_stores, r.true_leading_misses)
    };
    let floats = |r: &triad_uarch::TimingResult| {
        [r.time_s, r.t0_s, r.t_branch_s, r.t_cache_s, r.tmem_s, r.mlp, r.ipc, r.util]
            .map(f64::to_bits)
    };
    assert_eq!(ints(a), ints(b), "{ctx}: counter mismatch");
    assert_eq!(floats(a), floats(b), "{ctx}: float bit-pattern mismatch");
}

fn random_spec(rng: &mut StdRng) -> (PhaseSpec, u64) {
    let r = |rng: &mut StdRng, lo: f64, hi: f64| lo + rng.random::<f64>() * (hi - lo);
    let spec = PhaseSpec {
        tag: 4,
        load_frac: r(rng, 0.05, 0.35),
        store_frac: r(rng, 0.0, 0.12),
        branch_frac: r(rng, 0.0, 0.2),
        longop_frac: r(rng, 0.0, 0.25),
        mispredict_rate: r(rng, 0.0, 0.08),
        dep_mean: r(rng, 2.0, 14.0),
        dep2_prob: 0.3,
        chase_frac: r(rng, 0.0, 0.9),
        burst: r(rng, 1.0, 24.0),
        addr_dep: r(rng, 0.0, 1.0),
        regions: vec![
            MemRegion::reuse_kib(8, 0.5),
            MemRegion::reuse_kib(rng.random_range(32u64..256), 0.3),
            MemRegion {
                blocks: rng.random_range(16u64..1 << 20),
                weight: 0.2,
                pattern: AccessPattern::Uniform,
            },
        ],
    };
    (spec, rng.random::<u64>())
}

/// Batched lockstep vs legacy per-configuration calls, no monitor: every
/// lane's `TimingResult` is bit-identical, across randomized phases, all
/// core sizes and both fit frequencies.
#[test]
fn batched_matches_legacy_single_config() {
    let geom = CacheGeometry::table1_scaled(4, 16);
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    let mut engine = TimingEngine::new();
    for trial in 0..6 {
        let (spec, seed) = random_spec(&mut rng);
        let t = spec.generate(12_000, seed);
        let ct = classify_warm(&t, &geom, 4_000);
        let detailed = &t.insts[4_000..];
        for c in CoreSize::ALL {
            for freq in [1.0e9, 3.25e9] {
                let batched = engine.simulate_ways(detailed, &ct, c, freq, W_MIN..=W_MAX);
                assert_eq!(batched.len(), W_MAX - W_MIN + 1);
                for (k, w) in (W_MIN..=W_MAX).enumerate() {
                    let legacy = simulate(detailed, &ct, &TimingConfig::table1(c, freq, w));
                    assert_bits_eq(
                        &batched[k],
                        &legacy,
                        &format!("trial {trial} {c} f={freq:.2e} w={w}"),
                    );
                }
            }
        }
    }
}

/// With monitors attached: lane `k`'s monitor must end in exactly the
/// state a standalone `simulate_with_monitor` at that allocation leaves —
/// compared over every (core size, way) counter the monitor tracks.
#[test]
fn batched_monitors_match_legacy_monitors() {
    let geom = CacheGeometry::table1_scaled(4, 16);
    let mut rng = StdRng::seed_from_u64(0x0A17);
    let mut engine = TimingEngine::new();
    for trial in 0..3 {
        let (spec, seed) = random_spec(&mut rng);
        let t = spec.generate(12_000, seed);
        let ct = classify_warm(&t, &geom, 4_000);
        let detailed = &t.insts[4_000..];
        for c in CoreSize::ALL {
            let mut mons: Vec<MlpMonitor> = (W_MIN..=W_MAX).map(|_| MlpMonitor::table1()).collect();
            let cfg = TimingConfig::table1(c, 1.0e9, W_MIN);
            let batched =
                engine.simulate_ways_with_monitors(detailed, &ct, &cfg, W_MIN..=W_MAX, &mut mons);
            for (k, w) in (W_MIN..=W_MAX).enumerate() {
                let mut legacy_mon = MlpMonitor::table1();
                let legacy = simulate_with_monitor(
                    detailed,
                    &ct,
                    &TimingConfig::table1(c, 1.0e9, w),
                    &mut legacy_mon,
                );
                assert_bits_eq(&batched[k], &legacy, &format!("trial {trial} {c} w={w}"));
                for tc in CoreSize::ALL {
                    for tw in W_MIN..=W_MAX {
                        assert_eq!(
                            mons[k].lm_count(tc, tw),
                            legacy_mon.lm_count(tc, tw),
                            "trial {trial} {c} w={w}: lm({tc},{tw})"
                        );
                        assert_eq!(
                            mons[k].ov_count(tc, tw),
                            legacy_mon.ov_count(tc, tw),
                            "trial {trial} {c} w={w}: ov({tc},{tw})"
                        );
                    }
                }
            }
        }
    }
}

/// The phase-database build's actual lane plan — one fused pass over 30
/// mixed-frequency lanes (both fit frequencies interleaved per way) —
/// must match the two-pass formulation it replaced (a monitored
/// lo-frequency sweep plus an unmonitored hi-frequency sweep)
/// bit-for-bit, monitors included.
#[test]
fn fused_mixed_frequency_lanes_match_two_pass() {
    let geom = CacheGeometry::table1_scaled(4, 16);
    let (lo, hi) = (1.0e9, 3.25e9);
    let mut rng = StdRng::seed_from_u64(0xF0_5ED);
    let mut fused_engine = TimingEngine::new();
    let mut two_pass_engine = TimingEngine::new();
    let lanes: Vec<LaneSpec> = (W_MIN..=W_MAX)
        .flat_map(|w| [LaneSpec { ways: w, freq_hz: lo, monitor: true }, LaneSpec::new(w, hi)])
        .collect();
    for trial in 0..3 {
        let (spec, seed) = random_spec(&mut rng);
        let t = spec.generate(12_000, seed);
        let ct = classify_warm(&t, &geom, 4_000);
        let detailed = &t.insts[4_000..];
        for c in CoreSize::ALL {
            let cfg = TimingConfig::table1(c, lo, W_MIN);
            let mut fused_mons: Vec<MlpMonitor> =
                (W_MIN..=W_MAX).map(|_| MlpMonitor::table1()).collect();
            let fused = fused_engine.simulate_lanes(detailed, &ct, &cfg, &lanes, &mut fused_mons);

            let mut tp_mons: Vec<MlpMonitor> =
                (W_MIN..=W_MAX).map(|_| MlpMonitor::table1()).collect();
            let pass_lo = two_pass_engine.simulate_ways_with_monitors(
                detailed,
                &ct,
                &cfg,
                W_MIN..=W_MAX,
                &mut tp_mons,
            );
            let pass_hi = two_pass_engine.simulate_ways(detailed, &ct, c, hi, W_MIN..=W_MAX);

            for (k, w) in (W_MIN..=W_MAX).enumerate() {
                let ctx = format!("trial {trial} {c} w={w}");
                assert_bits_eq(&fused[2 * k], &pass_lo[k], &format!("{ctx} lo"));
                assert_bits_eq(&fused[2 * k + 1], &pass_hi[k], &format!("{ctx} hi"));
                for tc in CoreSize::ALL {
                    for tw in W_MIN..=W_MAX {
                        assert_eq!(
                            fused_mons[k].lm_count(tc, tw),
                            tp_mons[k].lm_count(tc, tw),
                            "{ctx}: lm({tc},{tw})"
                        );
                        assert_eq!(
                            fused_mons[k].ov_count(tc, tw),
                            tp_mons[k].ov_count(tc, tw),
                            "{ctx}: ov({tc},{tw})"
                        );
                    }
                }
            }
        }
    }
}

/// Way-equivalence lane deduplication at its extremes: a pure streaming
/// phase (every LLC access misses at every allocation — all ways collapse
/// within a frequency) and a cache-resident phase (no DRAM traffic at all
/// — every lane collapses to one representative). Cloned lanes must still
/// reproduce the standalone model bit-for-bit.
#[test]
fn dedup_extremes_match_legacy() {
    let geom = CacheGeometry::table1_scaled(4, 16);
    let base = random_spec(&mut StdRng::seed_from_u64(0xDE_D0)).0;
    let streaming = PhaseSpec { regions: vec![MemRegion::stream_mib(64, 1.0)], ..base.clone() };
    let resident = PhaseSpec { regions: vec![MemRegion::reuse_kib(8, 1.0)], ..base };
    let mut engine = TimingEngine::new();
    let mut undeduped = TimingEngine::new();
    undeduped.disable_lane_dedup(true);
    for (label, spec) in [("streaming", &streaming), ("resident", &resident)] {
        let t = spec.generate(12_000, 0x5EED);
        let ct = classify_warm(&t, &geom, 4_000);
        let detailed = &t.insts[4_000..];
        for c in [CoreSize::S, CoreSize::L] {
            for freq in [1.0e9, 3.25e9] {
                let batched = engine.simulate_ways(detailed, &ct, c, freq, W_MIN..=W_MAX);
                let brute = undeduped.simulate_ways(detailed, &ct, c, freq, W_MIN..=W_MAX);
                for (k, w) in (W_MIN..=W_MAX).enumerate() {
                    let legacy = simulate(detailed, &ct, &TimingConfig::table1(c, freq, w));
                    assert_bits_eq(
                        &batched[k],
                        &legacy,
                        &format!("{label} {c} f={freq:.2e} w={w}"),
                    );
                    assert_bits_eq(
                        &batched[k],
                        &brute[k],
                        &format!("{label} {c} f={freq:.2e} w={w} dedup-vs-brute"),
                    );
                }
            }
        }
    }
}

/// The closed-form DRAM fast path (SoA lane block + packed ring cells)
/// against the scalar-queue compatibility loop, across the DRAM regimes
/// that exercise both arms of the closed form: a streaming phase
/// (channel saturated — completions ride the arithmetic progression), a
/// cache-resident phase (unsaturated — the queue never backs up), and
/// randomized mixed phases. Every lane's result and every monitor
/// counter must be bit-identical.
#[test]
fn dram_fast_path_matches_scalar_queue() {
    let geom = CacheGeometry::table1_scaled(4, 16);
    let mut rng = StdRng::seed_from_u64(0xD3A2);
    let base = random_spec(&mut rng).0;
    let saturated = PhaseSpec {
        load_frac: 0.45,
        chase_frac: 0.0,
        regions: vec![MemRegion::stream_mib(64, 1.0)],
        ..base.clone()
    };
    let unsaturated = PhaseSpec { regions: vec![MemRegion::reuse_kib(8, 1.0)], ..base.clone() };
    let mixed_a = random_spec(&mut rng).0;
    let mixed_b = random_spec(&mut rng).0;
    let (lo, hi) = (1.0e9, 3.25e9);
    let lanes: Vec<LaneSpec> = (W_MIN..=W_MAX)
        .flat_map(|w| [LaneSpec { ways: w, freq_hz: lo, monitor: true }, LaneSpec::new(w, hi)])
        .collect();
    let mut fast = TimingEngine::new();
    let mut scalar = TimingEngine::new();
    scalar.disable_dram_fast_path(true);
    for (label, spec) in [
        ("saturated", &saturated),
        ("unsaturated", &unsaturated),
        ("mixed_a", &mixed_a),
        ("mixed_b", &mixed_b),
    ] {
        let t = spec.generate(12_000, 0xFA57);
        let ct = classify_warm(&t, &geom, 4_000);
        let detailed = &t.insts[4_000..];
        for c in CoreSize::ALL {
            let cfg = TimingConfig::table1(c, lo, W_MIN);
            let nmon = W_MAX - W_MIN + 1;
            let mut fast_mons: Vec<MlpMonitor> = (0..nmon).map(|_| MlpMonitor::table1()).collect();
            let mut scal_mons: Vec<MlpMonitor> = (0..nmon).map(|_| MlpMonitor::table1()).collect();
            let a = fast.simulate_lanes(detailed, &ct, &cfg, &lanes, &mut fast_mons);
            let b = scalar.simulate_lanes(detailed, &ct, &cfg, &lanes, &mut scal_mons);
            for (k, (x, y)) in a.iter().zip(&b).enumerate() {
                assert_bits_eq(x, y, &format!("{label} {c} lane {k} fast-vs-scalar"));
            }
            for (k, (fm, sm)) in fast_mons.iter().zip(&scal_mons).enumerate() {
                for tc in CoreSize::ALL {
                    for tw in W_MIN..=W_MAX {
                        assert_eq!(
                            fm.lm_count(tc, tw),
                            sm.lm_count(tc, tw),
                            "{label} {c} mon {k}: lm({tc},{tw})"
                        );
                        assert_eq!(
                            fm.ov_count(tc, tw),
                            sm.ov_count(tc, tw),
                            "{label} {c} mon {k}: ov({tc},{tw})"
                        );
                    }
                }
            }
        }
    }
}

/// The narrow (u32-cell) and wide (u64-cell) ring representations are the
/// same algorithm at different storage widths: forcing the wide path on a
/// trace that fits narrow cells must change nothing.
#[test]
fn wide_cells_match_narrow_cells() {
    let geom = CacheGeometry::table1_scaled(4, 16);
    let mut rng = StdRng::seed_from_u64(0x3264);
    let (spec, seed) = random_spec(&mut rng);
    let t = spec.generate(12_000, seed);
    let ct = classify_warm(&t, &geom, 4_000);
    let detailed = &t.insts[4_000..];
    let mut narrow = TimingEngine::new();
    let mut wide = TimingEngine::new();
    wide.force_wide_cycles(true);
    for c in CoreSize::ALL {
        for freq in [1.0e9, 3.25e9] {
            let a = narrow.simulate_ways(detailed, &ct, c, freq, W_MIN..=W_MAX);
            let b = wide.simulate_ways(detailed, &ct, c, freq, W_MIN..=W_MAX);
            for (x, y) in a.iter().zip(&b) {
                assert_bits_eq(x, y, &format!("{c} f={freq:.2e} narrow-vs-wide"));
            }
        }
    }
}

/// Scratch reuse must not leak state between calls: interleaving
/// different traces, cores and frequencies through one engine gives the
/// same results as fresh engines.
#[test]
fn engine_reuse_is_stateless_across_calls() {
    let geom = CacheGeometry::table1_scaled(4, 16);
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let (spec_a, seed_a) = random_spec(&mut rng);
    let (spec_b, seed_b) = random_spec(&mut rng);
    let ta = spec_a.generate(9_000, seed_a);
    let tb = spec_b.generate(5_000, seed_b);
    let cta = classify_warm(&ta, &geom, 3_000);
    let ctb = classify_warm(&tb, &geom, 1_000);
    let da = &ta.insts[3_000..];
    let db = &tb.insts[1_000..];

    let mut shared = TimingEngine::new();
    // Big core first so later smaller-ROB calls run inside stale scratch.
    let first = shared.simulate_ways(da, &cta, CoreSize::L, 3.25e9, W_MIN..=W_MAX);
    let b_scalar = shared.simulate(db, &ctb, &TimingConfig::table1(CoreSize::S, 2.0e9, 5));
    let again = shared.simulate_ways(da, &cta, CoreSize::L, 3.25e9, W_MIN..=W_MAX);
    for (x, y) in first.iter().zip(&again) {
        assert_bits_eq(x, y, "repeat batched call");
    }
    let fresh = simulate(db, &ctb, &TimingConfig::table1(CoreSize::S, 2.0e9, 5));
    assert_bits_eq(&b_scalar, &fresh, "scalar after batched");
    // Partial way ranges agree with the full sweep's matching lanes.
    let sub = shared.simulate_ways(da, &cta, CoreSize::L, 3.25e9, 6..=9);
    for (k, w) in (6..=9).enumerate() {
        assert_bits_eq(&sub[k], &first[w - W_MIN], "partial range lane");
    }
}
