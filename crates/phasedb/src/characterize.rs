//! Application characterization — the paper's §IV-C classification criteria.
//!
//! * **Cache Sensitive (CS)**: MPKI varies by more than 20 % when the LLC
//!   allocation changes by ±50 % around the 8-way baseline (i.e. at 4 or 12
//!   ways), *and* the baseline MPKI is at least 0.2.
//! * **Parallelism Sensitive (PS)**: the MLP variation from the S to the L
//!   core (at baseline allocation and VF) exceeds 30 % of the M core's MLP,
//!   *and* the MLP on the L core is at least 2.
//!
//! Running these criteria over the database must reproduce Table II — that
//! is the calibration contract of the application library, enforced by an
//! integration test.

use crate::record::{cw, AppDbEntry};
use triad_trace::Category;

/// Derived characterization of one application.
#[derive(Debug, Clone)]
pub struct AppCharacterization {
    /// Benchmark name.
    pub name: &'static str,
    /// Category the library was calibrated to (Table II).
    pub expected: Category,
    /// Category derived from the database via the §IV-C criteria.
    pub derived: Category,
    /// MPKI at 4 / 8 / 12 ways (M core, baseline VF).
    pub mpki: [f64; 3],
    /// Ground-truth MLP on the S / M / L cores (8 ways, baseline VF).
    pub mlp: [f64; 3],
    /// Cache-sensitivity verdict.
    pub cache_sensitive: bool,
    /// Parallelism-sensitivity verdict.
    pub parallelism_sensitive: bool,
}

/// Apply the §IV-C criteria to one application's database entry.
pub fn characterize_app(entry: &AppDbEntry) -> AppCharacterization {
    let mpki4 = entry.weighted(|r| r.misses_pi(4)) * 1000.0;
    let mpki8 = entry.weighted(|r| r.misses_pi(8)) * 1000.0;
    let mpki12 = entry.weighted(|r| r.misses_pi(12)) * 1000.0;
    let cache_sensitive =
        mpki8 >= 0.2 && ((mpki4 - mpki8).abs().max((mpki12 - mpki8).abs())) > 0.2 * mpki8;

    let mlp = |c: triad_arch::CoreSize| entry.weighted(|r| r.true_mlp[cw(c, 8)]);
    let (mlp_s, mlp_m, mlp_l) =
        (mlp(triad_arch::CoreSize::S), mlp(triad_arch::CoreSize::M), mlp(triad_arch::CoreSize::L));
    let parallelism_sensitive = mlp_l >= 2.0 && (mlp_l - mlp_s) > 0.3 * mlp_m;

    let derived = match (cache_sensitive, parallelism_sensitive) {
        (true, true) => Category::CsPs,
        (true, false) => Category::CsPi,
        (false, true) => Category::CiPs,
        (false, false) => Category::CiPi,
    };
    AppCharacterization {
        name: entry.spec.name,
        expected: entry.spec.category,
        derived,
        mpki: [mpki4, mpki8, mpki12],
        mlp: [mlp_s, mlp_m, mlp_l],
        cache_sensitive,
        parallelism_sensitive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_apps, DbConfig};
    use triad_trace::suite;

    /// Spot-check one application per category with the fast configuration.
    /// The full 27-application census runs as an integration test with the
    /// default configuration.
    #[test]
    fn archetypes_classify_correctly() {
        let names = ["mcf", "xalancbmk", "libquantum", "povray"];
        let apps: Vec<_> = suite().into_iter().filter(|a| names.contains(&a.name)).collect();
        let db = build_apps(&apps, &DbConfig::fast());
        for e in &db.apps {
            let c = characterize_app(e);
            assert_eq!(c.derived, c.expected, "{}: mpki {:?} mlp {:?}", c.name, c.mpki, c.mlp);
        }
    }
}
