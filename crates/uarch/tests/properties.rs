//! Property-based tests for the out-of-order timing model.

use proptest::prelude::*;
use triad_arch::{CacheGeometry, CoreSize};
use triad_cache::classify;
use triad_trace::{MemRegion, PhaseSpec};
use triad_uarch::{simulate, TimingConfig};

fn spec_strategy() -> impl Strategy<Value = (PhaseSpec, u64)> {
    (
        0.05f64..0.35,  // load
        0.0f64..0.12,   // store
        0.0f64..0.2,    // branch
        0.0f64..0.25,   // longop
        0.0f64..0.08,   // mispredict
        2.0f64..14.0,   // dep mean
        0.0f64..0.9,    // chase
        1.0f64..24.0,   // burst
        0.0f64..1.0,    // addr_dep
        16u64..4096,    // region blocks
        any::<u64>(),   // seed
    )
        .prop_map(|(l, st, b, lo, mp, dep, ch, burst, ad, blocks, seed)| {
            (
                PhaseSpec {
                    tag: 3,
                    load_frac: l,
                    store_frac: st,
                    branch_frac: b,
                    longop_frac: lo,
                    mispredict_rate: mp,
                    dep_mean: dep,
                    dep2_prob: 0.3,
                    chase_frac: ch,
                    burst,
                    addr_dep: ad,
                    regions: vec![
                        MemRegion::reuse_kib(8, 0.6),
                        MemRegion { blocks, weight: 0.4, pattern: triad_trace::AccessPattern::Uniform },
                    ],
                },
                seed,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Structural invariants that must hold for any workload: IPC within
    /// the dispatch width, decomposition sums to total, more ways never
    /// slower, larger cores never slower, lower frequency never faster.
    #[test]
    fn timing_model_invariants((spec, seed) in spec_strategy()) {
        let geom = CacheGeometry::table1_scaled(4, 16);
        let t = spec.generate(8_000, seed);
        let ct = classify(&t, &geom);

        let mut prev_core_time = f64::INFINITY;
        for c in CoreSize::ALL {
            let r = simulate(&t.insts, &ct, &TimingConfig::table1(c, 2.0e9, 8));
            prop_assert!(r.ipc <= c.dispatch_width() as f64 + 1e-9);
            let sum = r.t0_s + r.t_branch_s + r.t_cache_s + r.tmem_s;
            prop_assert!((sum - r.time_s).abs() < 1e-12);
            prop_assert!(r.true_leading_misses <= r.dram_loads);
            prop_assert!(r.mlp >= 1.0 - 1e-12);
            // Bigger cores never slower (small tolerance for queueing noise).
            prop_assert!(r.time_s <= prev_core_time * 1.02, "{c}");
            prev_core_time = r.time_s;
        }

        let mut prev_way_time = f64::INFINITY;
        for w in [2usize, 6, 10, 16] {
            let r = simulate(&t.insts, &ct, &TimingConfig::table1(CoreSize::M, 2.0e9, w));
            prop_assert!(r.time_s <= prev_way_time * 1.001, "w={w}");
            prev_way_time = r.time_s;
        }

        let lo = simulate(&t.insts, &ct, &TimingConfig::table1(CoreSize::M, 1.0e9, 8));
        let hi = simulate(&t.insts, &ct, &TimingConfig::table1(CoreSize::M, 3.25e9, 8));
        prop_assert!(hi.time_s <= lo.time_s);
        // And frequency cannot speed memory up more than 3.25x overall.
        prop_assert!(lo.time_s / hi.time_s <= 3.25 + 1e-9);
    }
}
