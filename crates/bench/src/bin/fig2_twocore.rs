//! Thin wrapper: `triad-bench --experiment fig2` (Fig. 2 — two-core scenario savings, perfect models).
fn main() -> std::process::ExitCode {
    triad_bench::cli::main_with(Some("fig2"))
}
