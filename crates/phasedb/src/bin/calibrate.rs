//! Calibration report: run the paper's §IV-C classification criteria over
//! the whole application suite and compare against Table II. This is the
//! tool used to calibrate (and re-verify) the synthetic application
//! library; `tests/table2_census.rs` enforces the same contract in CI.
//!
//! The database resolves through the shared content-addressed store
//! (`--rebuild` forces a fresh build), so re-running the census after a
//! calibration tweak only pays for the build when the suite actually
//! changed — a changed suite re-keys the artifact automatically.
use triad_phasedb::{characterize_app, DbConfig, DbStore};

fn main() {
    let force = std::env::args().any(|a| a == "--rebuild");
    let t0 = std::time::Instant::now();
    let resolved =
        DbStore::default_cache().force_rebuild(force).resolve_suite(&DbConfig::default());
    eprintln!(
        "db {} in {:.3}s ({})",
        if resolved.outcome.is_hit() { "loaded" } else { "built" },
        t0.elapsed().as_secs_f64(),
        resolved.path.display()
    );
    let db = resolved.db;
    let mut ok = 0;
    println!(
        "{:<11} {:>7} {:>7} {:>7}  {:>5} {:>5} {:>5}  {:<6} {:<6} match",
        "app", "mpki4", "mpki8", "mpki12", "mlpS", "mlpM", "mlpL", "expect", "derive"
    );
    for e in &db.apps {
        let c = characterize_app(e);
        let m = c.derived == c.expected;
        if m {
            ok += 1;
        }
        println!(
            "{:<11} {:>7.2} {:>7.2} {:>7.2}  {:>5.2} {:>5.2} {:>5.2}  {:<6} {:<6} {}",
            c.name,
            c.mpki[0],
            c.mpki[1],
            c.mpki[2],
            c.mlp[0],
            c.mlp[1],
            c.mlp[2],
            c.expected.label(),
            c.derived.label(),
            if m { "ok" } else { "MISMATCH" }
        );
    }
    println!("{ok}/27 match Table II");
}
