//! The per-core resource setting tuple `(c, f, w)` managed by the RM.

use crate::core_size::CoreSize;
use crate::dvfs::VfIndex;

/// One core's resource assignment: core size `c`, DVFS point `f` (as an
/// index into the system's [`crate::DvfsGrid`]) and LLC way allocation `w`.
///
/// This is the unit the resource manager reasons about: the local optimizer
/// produces, for every `w`, the energy-minimal `(c, f)` meeting QoS, and the
/// global optimizer picks one `Setting` per core subject to `Σ w = A`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Setting {
    /// Core micro-architecture size.
    pub core: CoreSize,
    /// Index of the VF operating point in the DVFS grid.
    pub vf: VfIndex,
    /// Number of LLC ways allocated to this core.
    pub ways: usize,
}

impl Setting {
    /// Construct a setting.
    pub const fn new(core: CoreSize, vf: VfIndex, ways: usize) -> Self {
        Setting { core, vf, ways }
    }

    /// Dense linear index over the full configuration space, for database
    /// storage: `((c × n_vf) + vf) × n_way_slots + (ways − min_ways)`.
    #[inline]
    pub fn dense_index(&self, n_vf: usize, min_ways: usize, n_ways: usize) -> usize {
        debug_assert!(self.vf < n_vf);
        debug_assert!(self.ways >= min_ways && self.ways < min_ways + n_ways);
        (self.core.index() * n_vf + self.vf) * n_ways + (self.ways - min_ways)
    }
}

impl std::fmt::Display for Setting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, vf{}, {}w)", self.core, self.vf, self.ways)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_index_is_bijective() {
        let n_vf = 10;
        let min_ways = 2;
        let n_ways = 15;
        let mut seen = vec![false; CoreSize::COUNT * n_vf * n_ways];
        for c in CoreSize::ALL {
            for vf in 0..n_vf {
                for w in min_ways..min_ways + n_ways {
                    let s = Setting::new(c, vf, w);
                    let i = s.dense_index(n_vf, min_ways, n_ways);
                    assert!(!seen[i], "collision at {s}");
                    seen[i] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn display_is_compact() {
        let s = Setting::new(CoreSize::L, 4, 8);
        assert_eq!(s.to_string(), "(L, vf4, 8w)");
    }
}
