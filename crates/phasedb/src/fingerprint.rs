//! Content fingerprint of a database's build inputs.
//!
//! The store keys artifacts by a digest of everything the build output is a
//! pure function of: the [`DbConfig`] (minus its `threads` knob — builds
//! are thread-count invariant by construction), the complete application
//! suite definition (every phase parameter, region and sequence entry),
//! and the code-relevant shape constants (`NC`/`NW`/`W_MIN`/`W_MAX`).
//! Change any of them and the digest — and therefore the cache key —
//! changes; keep them fixed and the digest is stable across processes,
//! platforms and releases.
//!
//! Values are fed through [`Fingerprint`]'s canonical type-tagged byte
//! encoding, never through `Debug` formatting (whose output is not a
//! stability guarantee).
//!
//! The digest deliberately does **not** cover the simulator *code*: editing
//! the timing model without bumping [`FINGERPRINT_DOMAIN`] leaves old
//! artifacts valid. Bump the domain version on any semantic change to the
//! build pipeline, or force a rebuild with `--db-rebuild`.

use crate::build::DbConfig;
use crate::record::{NC, NW, W_MAX, W_MIN};
use triad_trace::{AccessPattern, AppSpec, Category, MemRegion, PhaseSpec};
use triad_util::hash::Fingerprint;

/// Domain-separation label: schema name + encoding version. Bumping it
/// invalidates every previously persisted artifact.
pub const FINGERPRINT_DOMAIN: &str = "triad-phasedb-fingerprint/v1";

fn feed_config(f: &mut Fingerprint, cfg: &DbConfig) {
    f.str("config");
    f.usize(cfg.scale);
    f.usize(cfg.warmup);
    f.usize(cfg.detail);
    f.u64(cfg.seed);
    f.f64(cfg.fit_lo_hz);
    f.f64(cfg.fit_hi_hz);
    // `cfg.threads` is intentionally absent: parallelism never changes the
    // built database (see `build_is_deterministic_across_thread_counts`).
}

fn feed_region(f: &mut Fingerprint, r: &MemRegion) {
    f.u64(r.blocks);
    f.f64(r.weight);
    f.u64(match r.pattern {
        AccessPattern::Uniform => 0,
        AccessPattern::Sweep => 1,
    });
}

fn feed_phase(f: &mut Fingerprint, p: &PhaseSpec) {
    f.str("phase");
    f.u64(p.tag);
    f.f64(p.load_frac);
    f.f64(p.store_frac);
    f.f64(p.branch_frac);
    f.f64(p.longop_frac);
    f.f64(p.mispredict_rate);
    f.f64(p.dep_mean);
    f.f64(p.dep2_prob);
    f.f64(p.chase_frac);
    f.f64(p.burst);
    f.f64(p.addr_dep);
    f.usize(p.regions.len());
    for r in &p.regions {
        feed_region(f, r);
    }
}

fn feed_app(f: &mut Fingerprint, app: &AppSpec) {
    f.str("app");
    f.str(app.name);
    f.u64(match app.category {
        Category::CsPs => 0,
        Category::CsPi => 1,
        Category::CiPs => 2,
        Category::CiPi => 3,
    });
    f.usize(app.phases.len());
    for p in &app.phases {
        feed_phase(f, p);
    }
    f.usize(app.sequence.len());
    for &s in &app.sequence {
        f.usize(s);
    }
}

/// The content-address of the database `build_apps(apps, cfg)` produces:
/// 64 lowercase hex characters.
pub fn db_fingerprint(apps: &[AppSpec], cfg: &DbConfig) -> String {
    let mut f = Fingerprint::new(FINGERPRINT_DOMAIN);
    f.usize(NC);
    f.usize(NW);
    f.usize(W_MIN);
    f.usize(W_MAX);
    feed_config(&mut f, cfg);
    f.usize(apps.len());
    for app in apps {
        feed_app(&mut f, app);
    }
    f.hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_apps() -> Vec<AppSpec> {
        triad_trace::suite().into_iter().filter(|a| ["mcf", "povray"].contains(&a.name)).collect()
    }

    #[test]
    fn digest_is_stable_within_and_across_runs() {
        let apps = fixture_apps();
        let cfg = DbConfig::fast();
        let a = db_fingerprint(&apps, &cfg);
        let b = db_fingerprint(&apps, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert!(a.bytes().all(|c| c.is_ascii_hexdigit()));
        // Golden digest over a hand-built fixture: fails iff the canonical
        // encoding itself changes (which must be a deliberate
        // FINGERPRINT_DOMAIN bump), proving cross-run/cross-process
        // stability. The real suite is intentionally not pinned here — its
        // calibration may evolve, and the store re-keys automatically.
        let golden_cfg = DbConfig {
            scale: 1,
            warmup: 2,
            detail: 3,
            seed: 4,
            fit_lo_hz: 5.0,
            fit_hi_hz: 6.0,
            threads: 0,
        };
        assert_eq!(
            db_fingerprint(&[], &golden_cfg),
            "15b675324db7db21290c0d79964efc3a725b165775a24407aadb2b88848afc7e",
        );
    }

    #[test]
    fn every_config_field_alters_the_digest_except_threads() {
        let apps = fixture_apps();
        let base = DbConfig::fast();
        let digest = |cfg: &DbConfig| db_fingerprint(&apps, cfg);
        let d0 = digest(&base);

        let mutations: Vec<(&str, DbConfig)> = vec![
            ("scale", DbConfig { scale: base.scale + 1, ..base }),
            ("warmup", DbConfig { warmup: base.warmup + 1, ..base }),
            ("detail", DbConfig { detail: base.detail + 1, ..base }),
            ("seed", DbConfig { seed: base.seed ^ 1, ..base }),
            ("fit_lo_hz", DbConfig { fit_lo_hz: base.fit_lo_hz * 1.0000001, ..base }),
            ("fit_hi_hz", DbConfig { fit_hi_hz: base.fit_hi_hz * 1.0000001, ..base }),
        ];
        for (name, cfg) in &mutations {
            assert_ne!(d0, digest(cfg), "changing {name} must change the digest");
        }
        // All mutations are pairwise distinct, too.
        let mut all: Vec<String> = mutations.iter().map(|(_, c)| digest(c)).collect();
        all.push(d0.clone());
        all.sort();
        all.dedup();
        assert_eq!(all.len(), mutations.len() + 1);

        // Threads do not affect the built database, so they must not
        // affect the key (otherwise warm caches would fragment per host).
        assert_eq!(d0, digest(&DbConfig { threads: 7, ..base }));
    }

    #[test]
    fn suite_definition_changes_alter_the_digest() {
        let apps = fixture_apps();
        let cfg = DbConfig::fast();
        let d0 = db_fingerprint(&apps, &cfg);

        // App list: order matters, subsets differ.
        let mut reversed = apps.clone();
        reversed.reverse();
        assert_ne!(d0, db_fingerprint(&reversed, &cfg));
        assert_ne!(d0, db_fingerprint(&apps[..1], &cfg));

        // Single phase-parameter change.
        let mut tweaked = apps.clone();
        tweaked[0].phases[0].chase_frac += 1e-9;
        assert_ne!(d0, db_fingerprint(&tweaked, &cfg));

        // Single region change.
        let mut tweaked = apps.clone();
        tweaked[0].phases[0].regions[0].weight += 1e-9;
        assert_ne!(d0, db_fingerprint(&tweaked, &cfg));

        // Sequence change (same phases, different interval order).
        let mut tweaked = apps.clone();
        let seq_len = tweaked[0].sequence.len();
        tweaked[0].sequence.swap(0, seq_len - 1);
        if tweaked[0].sequence != apps[0].sequence {
            assert_ne!(d0, db_fingerprint(&tweaked, &cfg));
        }
    }
}
