//! The one-pass out-of-order timing model.

use triad_arch::CoreSize;
use triad_cache::{ClassifiedTrace, MlpMonitor};
use triad_mem::DramParams;

/// Configuration of one timing run.
#[derive(Debug, Clone, Copy)]
pub struct TimingConfig {
    /// Core size under simulation.
    pub core: CoreSize,
    /// Core clock frequency in Hz.
    pub freq_hz: f64,
    /// LLC way allocation (decides which LLC accesses go to DRAM).
    pub ways: usize,
    /// L1D hit latency, cycles.
    pub lat_l1: u32,
    /// L2 hit latency, cycles.
    pub lat_l2: u32,
    /// LLC hit latency, cycles.
    pub lat_llc: u32,
    /// Long-latency arithmetic latency, cycles.
    pub lat_longop: u32,
    /// Front-end refill penalty after a mispredicted branch, cycles.
    pub mispredict_penalty: u32,
    /// DRAM parameters.
    pub dram: DramParams,
}

impl TimingConfig {
    /// Table I-flavored latencies for a core/frequency/allocation triple.
    pub fn table1(core: CoreSize, freq_hz: f64, ways: usize) -> Self {
        TimingConfig {
            core,
            freq_hz,
            ways,
            lat_l1: 3,
            lat_l2: 12,
            lat_llc: 30,
            lat_longop: 4,
            mispredict_penalty: 12,
            dram: DramParams::table1(),
        }
    }
}

/// Observables produced by one timing run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimingResult {
    /// Instructions simulated.
    pub insts: u64,
    /// Total cycles until the last instruction retires.
    pub cycles: u64,
    /// Wall-clock time, seconds (`cycles / freq`).
    pub time_s: f64,
    /// Width-scalable compute time (Eq. 1's `T0`), seconds.
    pub t0_s: f64,
    /// Branch-misprediction stall time, seconds (part of `T1`).
    pub t_branch_s: f64,
    /// L2/LLC-hit stall time, seconds (part of `T1`).
    pub t_cache_s: f64,
    /// DRAM stall time (Eq. 1's `Tmem`), seconds.
    pub tmem_s: f64,
    /// Loads serviced by DRAM.
    pub dram_loads: u64,
    /// Stores whose fill reached DRAM.
    pub dram_stores: u64,
    /// Ground-truth leading misses (loads whose DRAM access began with no
    /// other load miss outstanding).
    pub true_leading_misses: u64,
    /// Average MLP: DRAM loads per leading miss (1.0 when no misses).
    pub mlp: f64,
    /// Retired instructions per cycle.
    pub ipc: f64,
    /// Pipeline utilization: `ipc / D(c)` — drives the dynamic-power model.
    pub util: f64,
}

impl TimingResult {
    /// `T1 = T_BP + T_Cache` from Eq. 1.
    pub fn t1_s(&self) -> f64 {
        self.t_branch_s + self.t_cache_s
    }

    /// Total DRAM line transfers (loads + store fills).
    pub fn dram_accesses(&self) -> u64 {
        self.dram_loads + self.dram_stores
    }
}

/// Simulate `trace` (classified as `ct`) under `cfg`.
///
/// `trace` must be the *detailed* portion matching `ct` (i.e. generated with
/// the same warmup split passed to `classify_warm`).
///
/// Thin wrapper over a fresh single-lane [`crate::TimingEngine`]; callers
/// that simulate many intervals or allocations should hold an engine and
/// reuse its scratch (or batch allocations with
/// [`crate::TimingEngine::simulate_ways`]).
pub fn simulate(
    trace: &[triad_trace::Inst],
    ct: &ClassifiedTrace,
    cfg: &TimingConfig,
) -> TimingResult {
    crate::TimingEngine::new().simulate(trace, ct, cfg)
}

/// [`simulate`], additionally feeding every LLC **load** (in LLC arrival
/// order, with its program-order instruction index and ATD stack distance)
/// into the proposed MLP monitor — emulating the Fig. 4 hardware attached
/// to a core running at this configuration.
pub fn simulate_with_monitor(
    trace: &[triad_trace::Inst],
    ct: &ClassifiedTrace,
    cfg: &TimingConfig,
    monitor: &mut MlpMonitor,
) -> TimingResult {
    crate::TimingEngine::new().simulate_with_monitor(trace, ct, cfg, monitor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_arch::CacheGeometry;
    use triad_cache::classify;
    use triad_trace::{AccessPattern, Inst, MemRegion, PhaseSpec, Trace};

    fn geom() -> CacheGeometry {
        CacheGeometry::table1_scaled(4, 16)
    }

    fn run(trace: &Trace, core: CoreSize, freq: f64, ways: usize) -> TimingResult {
        let ct = classify(trace, &geom());
        simulate(&trace.insts, &ct, &TimingConfig::table1(core, freq, ways))
    }

    fn compute_spec(dep_mean: f64) -> PhaseSpec {
        PhaseSpec {
            tag: 77,
            load_frac: 0.0,
            store_frac: 0.0,
            branch_frac: 0.0,
            longop_frac: 0.0,
            mispredict_rate: 0.0,
            dep_mean,
            dep2_prob: 0.0,
            chase_frac: 0.0,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![],
        }
    }

    #[test]
    fn independent_alu_stream_reaches_full_width() {
        // dep distances far beyond the window → IPC ≈ D(c).
        let t = compute_spec(512.0).generate(40_000, 1);
        for c in CoreSize::ALL {
            let r = run(&t, c, 2.0e9, 8);
            let d = c.dispatch_width() as f64;
            assert!(r.ipc > 0.9 * d, "{c}: ipc {} vs width {d}", r.ipc);
            assert!(r.ipc <= d + 1e-9);
        }
    }

    #[test]
    fn serial_chain_is_width_independent() {
        // Every instruction depends on the previous one: IPC ≈ 1 (latency 1)
        // regardless of core size.
        let mut insts = vec![Inst::alu()];
        for _ in 1..20_000 {
            insts.push(Inst { dep1: 1, ..Inst::alu() });
        }
        let t = Trace { insts };
        let s = run(&t, CoreSize::S, 2.0e9, 8);
        let l = run(&t, CoreSize::L, 2.0e9, 8);
        assert!((s.ipc - 1.0).abs() < 0.05, "S ipc {}", s.ipc);
        assert!((l.ipc - 1.0).abs() < 0.05, "L ipc {}", l.ipc);
    }

    #[test]
    fn time_scales_inversely_with_frequency_for_compute() {
        let t = compute_spec(16.0).generate(30_000, 2);
        let t1 = run(&t, CoreSize::M, 1.0e9, 8);
        let t2 = run(&t, CoreSize::M, 2.0e9, 8);
        assert_eq!(t1.cycles, t2.cycles, "compute cycles are f-independent");
        assert!((t1.time_s / t2.time_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn memory_time_does_not_scale_with_frequency() {
        // DRAM-bound: doubling f must not halve time.
        let spec = PhaseSpec {
            tag: 9,
            load_frac: 0.35,
            store_frac: 0.0,
            branch_frac: 0.0,
            longop_frac: 0.0,
            mispredict_rate: 0.0,
            dep_mean: 8.0,
            dep2_prob: 0.0,
            chase_frac: 0.9,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![MemRegion {
                blocks: 1 << 22,
                weight: 1.0,
                pattern: AccessPattern::Uniform,
            }],
        };
        let t = spec.generate(30_000, 3);
        let lo = run(&t, CoreSize::M, 1.0e9, 2);
        let hi = run(&t, CoreSize::M, 3.25e9, 2);
        let speedup = lo.time_s / hi.time_s;
        assert!(speedup < 1.6, "memory-bound speedup should be far below 3.25x: {speedup}");
        assert!(hi.tmem_s > 0.5 * hi.time_s, "run must be memory-dominated");
    }

    #[test]
    fn chase_loads_serialize_misses() {
        let mk = |chase: f64, tag: u64| PhaseSpec {
            tag,
            load_frac: 0.35,
            store_frac: 0.0,
            branch_frac: 0.0,
            longop_frac: 0.0,
            mispredict_rate: 0.0,
            dep_mean: 8.0,
            dep2_prob: 0.0,
            chase_frac: chase,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![MemRegion {
                blocks: 1 << 22,
                weight: 1.0,
                pattern: AccessPattern::Uniform,
            }],
        };
        let chasing = mk(0.95, 1).generate(30_000, 4);
        let indep = mk(0.0, 1).generate(30_000, 4);
        let rc = run(&chasing, CoreSize::L, 2.0e9, 2);
        let ri = run(&indep, CoreSize::L, 2.0e9, 2);
        assert!(rc.mlp < 1.6, "chase MLP should be near 1: {}", rc.mlp);
        assert!(ri.mlp > 3.0 * rc.mlp, "independent MLP {} vs chase {}", ri.mlp, rc.mlp);
        assert!(ri.time_s < rc.time_s, "overlap must speed execution up");
    }

    #[test]
    fn mlp_grows_with_core_size_for_independent_misses() {
        let spec = PhaseSpec {
            tag: 10,
            load_frac: 0.30,
            store_frac: 0.10,
            branch_frac: 0.0,
            longop_frac: 0.0,
            mispredict_rate: 0.0,
            dep_mean: 12.0,
            dep2_prob: 0.0,
            chase_frac: 0.0,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![
                MemRegion { blocks: 128, weight: 0.75, pattern: AccessPattern::Uniform },
                MemRegion { blocks: 1 << 22, weight: 0.25, pattern: AccessPattern::Uniform },
            ],
        };
        let t = spec.generate(40_000, 5);
        let s = run(&t, CoreSize::S, 2.0e9, 8);
        let m = run(&t, CoreSize::M, 2.0e9, 8);
        let l = run(&t, CoreSize::L, 2.0e9, 8);
        assert!(s.mlp < m.mlp && m.mlp < l.mlp, "S={} M={} L={}", s.mlp, m.mlp, l.mlp);
        assert!(l.mlp >= 2.0, "L must reach MLP ≥ 2: {}", l.mlp);
        assert!(l.time_s < s.time_s, "more MLP must shorten execution");
    }

    #[test]
    fn more_ways_never_slow_execution() {
        let spec = PhaseSpec {
            tag: 11,
            load_frac: 0.3,
            store_frac: 0.1,
            branch_frac: 0.1,
            longop_frac: 0.05,
            mispredict_rate: 0.02,
            dep_mean: 7.0,
            dep2_prob: 0.2,
            chase_frac: 0.3,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![
                MemRegion::reuse_kib(8, 0.6),
                MemRegion::reuse_kib(192, 0.4), // knee inside the range (scaled)
            ],
        };
        let t = spec.generate(40_000, 6);
        let ct = classify(&t, &geom());
        let mut prev = f64::INFINITY;
        for w in [2usize, 4, 8, 12, 16] {
            let r = simulate(&t.insts, &ct, &TimingConfig::table1(CoreSize::M, 2.0e9, w));
            assert!(r.time_s <= prev * 1.001, "w={w}: {} vs {}", r.time_s, prev);
            prev = r.time_s;
        }
    }

    #[test]
    fn mispredicts_cost_time_and_are_attributed_to_branches() {
        let mk = |mr: f64| PhaseSpec {
            tag: 12,
            load_frac: 0.0,
            store_frac: 0.0,
            branch_frac: 0.25,
            longop_frac: 0.0,
            mispredict_rate: mr,
            dep_mean: 12.0,
            dep2_prob: 0.0,
            chase_frac: 0.0,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![],
        };
        let clean = mk(0.0).generate(30_000, 7);
        let dirty = mk(0.10).generate(30_000, 7);
        let rc = run(&clean, CoreSize::M, 2.0e9, 8);
        let rd = run(&dirty, CoreSize::M, 2.0e9, 8);
        assert!(rd.time_s > rc.time_s * 1.2, "{} vs {}", rd.time_s, rc.time_s);
        assert!(rd.t_branch_s > 0.0);
        assert!(rc.t_branch_s <= rc.time_s * 0.01);
    }

    #[test]
    fn decomposition_sums_to_total() {
        let spec = PhaseSpec {
            tag: 13,
            load_frac: 0.3,
            store_frac: 0.1,
            branch_frac: 0.15,
            longop_frac: 0.1,
            mispredict_rate: 0.03,
            dep_mean: 6.0,
            dep2_prob: 0.3,
            chase_frac: 0.2,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![MemRegion::reuse_kib(8, 0.5), MemRegion::reuse_kib(256, 0.5)],
        };
        let t = spec.generate(30_000, 8);
        let r = run(&t, CoreSize::M, 2.0e9, 8);
        let sum = r.t0_s + r.t_branch_s + r.t_cache_s + r.tmem_s;
        assert!((sum - r.time_s).abs() < 1e-12, "{sum} vs {}", r.time_s);
        assert!(r.t0_s > 0.0);
    }

    #[test]
    fn lsq_bounds_inflight_memory_ops() {
        // All loads, all independent DRAM misses: the S core's 10-entry LSQ
        // caps MLP near 10 even though its 64-entry ROB could hold more.
        let spec = PhaseSpec {
            tag: 14,
            load_frac: 1.0,
            store_frac: 0.0,
            branch_frac: 0.0,
            longop_frac: 0.0,
            mispredict_rate: 0.0,
            dep_mean: 512.0,
            dep2_prob: 0.0,
            chase_frac: 0.0,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![MemRegion {
                blocks: 1 << 22,
                weight: 1.0,
                pattern: AccessPattern::Uniform,
            }],
        };
        let t = spec.generate(20_000, 9);
        let r = run(&t, CoreSize::S, 2.0e9, 8);
        assert!(r.mlp <= 10.5, "S LSQ is 10 entries: MLP {}", r.mlp);
    }

    #[test]
    fn monitor_receives_llc_loads() {
        let spec = PhaseSpec {
            tag: 15,
            load_frac: 0.4,
            store_frac: 0.0,
            branch_frac: 0.0,
            longop_frac: 0.0,
            mispredict_rate: 0.0,
            dep_mean: 10.0,
            dep2_prob: 0.0,
            chase_frac: 0.0,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![MemRegion {
                blocks: 1 << 22,
                weight: 1.0,
                pattern: AccessPattern::Uniform,
            }],
        };
        let t = spec.generate(10_000, 10);
        let ct = classify(&t, &geom());
        let mut mon = MlpMonitor::table1();
        let r = simulate_with_monitor(
            &t.insts,
            &ct,
            &TimingConfig::table1(CoreSize::M, 2.0e9, 8),
            &mut mon,
        );
        // Every DRAM load is also an ATD-predicted miss at w=8 here (the
        // region never hits), so the monitor's miss count matches.
        assert_eq!(mon.miss_count(CoreSize::M, 8), r.dram_loads);
        assert!(mon.lm_count(CoreSize::M, 8) > 0);
        // The heuristic should land in the right ballpark of true MLP.
        let est = mon.mlp(CoreSize::M, 8);
        assert!(est / r.mlp < 3.0 && r.mlp / est < 3.0, "est {est} vs true {}", r.mlp);
    }

    #[test]
    fn empty_trace_is_a_noop() {
        let t = Trace::default();
        let ct = classify(&t, &geom());
        let r = simulate(&t.insts, &ct, &TimingConfig::table1(CoreSize::M, 2.0e9, 8));
        assert_eq!(r.insts, 0);
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn deterministic_runs() {
        let t = compute_spec(8.0).generate(5000, 11);
        let a = run(&t, CoreSize::M, 2.0e9, 8);
        let b = run(&t, CoreSize::M, 2.0e9, 8);
        assert_eq!(a, b);
    }
}
