//! §III-E measurement: cost of one full RM invocation (local optimization +
//! global curve reduction) versus core count and controller.
//!
//! Run with `cargo bench -p triad-bench --bench rm_overhead`.

use std::hint::black_box;
use std::time::Duration;
use triad_arch::{DvfsGrid, Setting, SystemConfig};
use triad_rm::{local_optimize, plan_system, IntervalModel, RmKind};
use triad_util::bench::bench;

/// A cheap synthetic model so the bench measures the optimizer itself.
struct Synth {
    grid: DvfsGrid,
}

impl IntervalModel for Synth {
    fn predict(&self, s: Setting) -> (f64, f64) {
        let f = self.grid.point(s.vf).freq_hz;
        let v = self.grid.point(s.vf).volt;
        let t = 1.2e-9 * 2.0e9 / f
            + (17.0 - s.ways as f64) * 2.0e-11
            + 4.0e-10 / s.core.dispatch_width() as f64;
        (t, (2.8 * v * v * (f / 2.0e9) + 0.6) * t)
    }
}

fn main() {
    println!("rm_invocation: one full local+global RM pass");
    for n_cores in [2usize, 4, 8] {
        let sys = SystemConfig::table1(n_cores);
        let model = Synth { grid: sys.dvfs.clone() };
        let b = sys.baseline_setting();
        for rm in [RmKind::Rm1, RmKind::Rm2, RmKind::Rm3] {
            bench(
                &format!("rm_invocation/{}/{n_cores}cores", rm.label()),
                None,
                Duration::from_millis(300),
                || {
                    let plans: Vec<_> = (0..n_cores)
                        .map(|_| local_optimize(&model, rm, b, &sys.dvfs, sys.way_range(), 1.0))
                        .collect();
                    black_box(plan_system(&plans, sys.total_ways(), b));
                },
            );
        }
    }
}
