//! # triad-cache — cache hierarchy, ATD, and the leading-miss MLP monitor
//!
//! This crate implements the memory-hierarchy substrate of the paper:
//!
//! * [`lru::SetAssocCache`] — a set-associative, true-LRU cache used for the
//!   private L1D and L2 levels (Table I geometry);
//! * [`atd::Atd`] — the Auxiliary Tag Directory [Qureshi & Patt, MICRO'06]:
//!   per-set LRU stacks over the *maximum* per-core LLC allocation that
//!   produce, in a single pass, the LLC stack distance of every access —
//!   and therefore the miss count for **every** possible way allocation
//!   simultaneously (for true LRU, an access hits a `w`-way cache iff its
//!   stack distance is `< w`);
//! * [`hierarchy::classify`] — the one-pass L1D→L2→LLC filter that reduces a
//!   phase trace to a compact per-memory-access classification consumed by
//!   the timing model;
//! * [`mlp::MlpMonitor`] — **the paper's hardware contribution (Fig. 4)**:
//!   per-(core-size, way-allocation) leading-miss counters that estimate MLP
//!   for every core size and LLC allocation from the arrival-ordered LLC
//!   load stream and a 10-bit instruction index.
//!
//! Way partitioning note: the Table I LLC has `8 × n_cores` ways and
//! `4096` sets regardless of core count, and each core's lines are confined
//! to its allocated ways. Under LRU-within-partition, a core's hit/miss
//! behavior depends only on its own allocation `w` and its own access
//! stream, so per-core LLC behavior is exactly a `4096-set × w-way` cache —
//! which is what the ATD stack distances encode.

pub mod atd;
pub mod hierarchy;
pub mod lru;
pub mod mlp;

pub use atd::Atd;
pub use hierarchy::{
    classify, classify_warm, generate_classify, is_llc_code, llc_stack_dist_of, service_level_of,
    AccessClass, ClassifiedTrace,
};
pub use lru::SetAssocCache;
pub use mlp::MlpMonitor;
