//! `build_phase` runs the grid through the lockstep batched engine; this
//! test pins it bit-identically to the legacy formulation — one
//! independent `simulate` / `simulate_with_monitor` call per
//! (core, frequency, allocation) grid point — so the phase-database
//! artifacts (and everything downstream: campaign rows, goldens, store
//! digests) cannot drift.

use triad_arch::{CacheGeometry, CoreSize};
use triad_cache::{classify_warm, MlpMonitor};
use triad_phasedb::{build_phase, cw, DbConfig, MonitorStats, PhaseRecord, NC, NW, W_MAX, W_MIN};
use triad_trace::PhaseSpec;
use triad_uarch::{simulate, simulate_with_monitor, TimingConfig};

/// The pre-engine `build_phase`: 2 × NC × NW independent trace passes.
fn legacy_build_phase(spec: &PhaseSpec, cfg: &DbConfig) -> PhaseRecord {
    let scaled = spec.scaled(cfg.scale as u64);
    let geom = CacheGeometry::table1_scaled(4, cfg.scale);
    let trace = scaled.generate(cfg.warmup + cfg.detail, cfg.seed);
    let ct = classify_warm(&trace, &geom, cfg.warmup);
    let detailed = &trace.insts[cfg.warmup..];
    let n = detailed.len() as f64;

    let miss_curve_pi: Vec<f64> =
        (1..=geom.max_ways_per_core).map(|w| ct.llc_misses(w) as f64 / n).collect();
    let mut load_hist = vec![0u64; geom.max_ways_per_core + 1];
    for (i, inst) in detailed.iter().enumerate() {
        if inst.kind == triad_trace::InstKind::Load && ct.is_llc_access(i) {
            let code = ct.code(i);
            let slot = if code <= 15 { code as usize } else { geom.max_ways_per_core };
            load_hist[slot] += 1;
        }
    }
    let load_miss_curve_pi: Vec<f64> = (1..=geom.max_ways_per_core)
        .map(|w| load_hist[w..].iter().sum::<u64>() as f64 / n)
        .collect();
    let llc_acc_pi = ct.llc_accesses as f64 / n;
    let wb_frac = ct.store_frac_at_llc;

    let mut a_cpi = vec![0.0; NC * NW];
    let mut b_spi = vec![0.0; NC * NW];
    let mut true_mlp = vec![1.0; NC * NW];
    let mut monitor: Vec<MonitorStats> = Vec::with_capacity(NC * NW);

    for c in CoreSize::ALL {
        for w in W_MIN..=W_MAX {
            let mut mon = MlpMonitor::table1();
            let lo = simulate_with_monitor(
                detailed,
                &ct,
                &TimingConfig::table1(c, cfg.fit_lo_hz, w),
                &mut mon,
            );
            let hi = simulate(detailed, &ct, &TimingConfig::table1(c, cfg.fit_hi_hz, w));

            let t_lo = lo.time_s / n;
            let t_hi = hi.time_s / n;
            let inv = 1.0 / cfg.fit_lo_hz - 1.0 / cfg.fit_hi_hz;
            let a = ((t_lo - t_hi) / inv).max(0.0);
            let b = (t_lo - a / cfg.fit_lo_hz).max(0.0);
            let i = cw(c, w);
            a_cpi[i] = a;
            b_spi[i] = b;
            true_mlp[i] = lo.mlp;

            let lm_pi: Vec<f64> = CoreSize::ALL
                .iter()
                .flat_map(|&tc| (W_MIN..=W_MAX).map(move |tw| (tc, tw)))
                .map(|(tc, tw)| mon.lm_count(tc, tw) as f64 / n)
                .collect();
            monitor.push(MonitorStats {
                c0_cpi: lo.t0_s * cfg.fit_lo_hz / n,
                c_branch_cpi: lo.t_branch_s * cfg.fit_lo_hz / n,
                c_cache_cpi: lo.t_cache_s * cfg.fit_lo_hz / n,
                tmem_spi: lo.tmem_s / n,
                mlp_avg: lo.mlp,
                lm_pi,
                ma_pi: miss_curve_pi[w - 1] * (1.0 + wb_frac),
            });
        }
    }

    PhaseRecord {
        a_cpi,
        b_spi,
        monitor,
        miss_curve_pi,
        load_miss_curve_pi,
        llc_acc_pi,
        wb_frac,
        true_mlp,
    }
}

fn assert_f64_slices_bits_eq(a: &[f64], b: &[f64], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}[{i}]: {x} vs {y}");
    }
}

fn assert_records_bits_eq(a: &PhaseRecord, b: &PhaseRecord, ctx: &str) {
    assert_f64_slices_bits_eq(&a.a_cpi, &b.a_cpi, &format!("{ctx}: a_cpi"));
    assert_f64_slices_bits_eq(&a.b_spi, &b.b_spi, &format!("{ctx}: b_spi"));
    assert_f64_slices_bits_eq(&a.true_mlp, &b.true_mlp, &format!("{ctx}: true_mlp"));
    assert_f64_slices_bits_eq(&a.miss_curve_pi, &b.miss_curve_pi, &format!("{ctx}: miss_curve"));
    assert_f64_slices_bits_eq(
        &a.load_miss_curve_pi,
        &b.load_miss_curve_pi,
        &format!("{ctx}: load_miss_curve"),
    );
    assert_eq!(a.llc_acc_pi.to_bits(), b.llc_acc_pi.to_bits(), "{ctx}: llc_acc_pi");
    assert_eq!(a.wb_frac.to_bits(), b.wb_frac.to_bits(), "{ctx}: wb_frac");
    assert_eq!(a.monitor.len(), b.monitor.len(), "{ctx}: monitor count");
    for (i, (ma, mb)) in a.monitor.iter().zip(&b.monitor).enumerate() {
        let c = format!("{ctx}: monitor[{i}]");
        assert_eq!(ma.c0_cpi.to_bits(), mb.c0_cpi.to_bits(), "{c}: c0_cpi");
        assert_eq!(ma.c_branch_cpi.to_bits(), mb.c_branch_cpi.to_bits(), "{c}: c_branch_cpi");
        assert_eq!(ma.c_cache_cpi.to_bits(), mb.c_cache_cpi.to_bits(), "{c}: c_cache_cpi");
        assert_eq!(ma.tmem_spi.to_bits(), mb.tmem_spi.to_bits(), "{c}: tmem_spi");
        assert_eq!(ma.mlp_avg.to_bits(), mb.mlp_avg.to_bits(), "{c}: mlp_avg");
        assert_eq!(ma.ma_pi.to_bits(), mb.ma_pi.to_bits(), "{c}: ma_pi");
        assert_f64_slices_bits_eq(&ma.lm_pi, &mb.lm_pi, &format!("{c}: lm_pi"));
    }
}

/// The batched `build_phase` reproduces the legacy per-grid-point build
/// bit-for-bit, `MonitorStats` included, for archetypes across the Table II
/// spectrum (memory-bound, streaming, compute-bound).
#[test]
fn build_phase_matches_legacy_grid_bit_exactly() {
    let cfg = DbConfig::fast();
    for name in ["mcf", "libquantum", "povray"] {
        let app = triad_trace::suite().into_iter().find(|a| a.name == name).unwrap();
        let spec = &app.phases[0];
        let batched = build_phase(spec, &cfg);
        let legacy = legacy_build_phase(spec, &cfg);
        assert_records_bits_eq(&batched, &legacy, name);
    }
}
