//! Substrate throughput benches: cache classification, the out-of-order
//! timing model, the ATD+MLP monitor and the global curve reduction.
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use triad_arch::{CacheGeometry, CoreSize};
use triad_cache::{classify, Atd, MlpMonitor};
use triad_rm::{optimize_partition, EnergyCurve};
use triad_trace::{MemRegion, PhaseSpec};
use triad_uarch::{simulate, TimingConfig};

fn spec() -> PhaseSpec {
    PhaseSpec {
        tag: 1,
        load_frac: 0.24,
        store_frac: 0.06,
        branch_frac: 0.12,
        longop_frac: 0.10,
        mispredict_rate: 0.02,
        dep_mean: 8.0,
        dep2_prob: 0.3,
        chase_frac: 0.1,
        burst: 1.0,
        addr_dep: 0.2,
        regions: vec![MemRegion::reuse_kib(8, 0.7), MemRegion::reuse_kib(200, 0.3)],
    }
}

fn bench_classify(c: &mut Criterion) {
    let t = spec().generate(64_000, 1);
    let geom = CacheGeometry::table1_scaled(4, 16);
    let mut g = c.benchmark_group("classify");
    g.throughput(Throughput::Elements(t.len() as u64));
    g.bench_function("l1_l2_atd_pass", |b| b.iter(|| black_box(classify(&t, &geom))));
    g.finish();
}

fn bench_timing(c: &mut Criterion) {
    let t = spec().generate(64_000, 1);
    let geom = CacheGeometry::table1_scaled(4, 16);
    let ct = classify(&t, &geom);
    let mut g = c.benchmark_group("timing");
    g.throughput(Throughput::Elements(t.len() as u64));
    for core in CoreSize::ALL {
        g.bench_function(format!("ooo_model_{core}"), |b| {
            b.iter(|| {
                black_box(simulate(&t.insts, &ct, &TimingConfig::table1(core, 2.0e9, 8)))
            })
        });
    }
    g.finish();
}

fn bench_monitors(c: &mut Criterion) {
    let mut g = c.benchmark_group("monitors");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("atd_access", |b| {
        let mut atd = Atd::table1();
        let mut x = 0u64;
        b.iter(|| {
            for _ in 0..10_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                black_box(atd.access((x >> 16) & 0xFFFF_FFC0));
            }
        })
    });
    g.bench_function("mlp_monitor_load", |b| {
        let mut mon = MlpMonitor::table1();
        let mut x = 0u64;
        b.iter(|| {
            for i in 0..10_000u64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                mon.on_llc_load(i * 7, (x % 20) as u8);
            }
        })
    });
    g.finish();
}

fn bench_global(c: &mut Criterion) {
    let mut g = c.benchmark_group("global_optimizer");
    for n in [2usize, 4, 8, 16] {
        let curves: Vec<EnergyCurve> = (0..n)
            .map(|i| EnergyCurve {
                min_w: 2,
                energy: (0..15).map(|w| ((w + i) % 7) as f64 + 0.1).collect(),
            })
            .collect();
        g.bench_function(format!("reduce_{n}_cores"), |b| {
            b.iter(|| black_box(optimize_partition(&curves, 8 * n)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_classify, bench_timing, bench_monitors, bench_global);
criterion_main!(benches);
