//! Thin wrapper: `triad-bench --experiment table1` (Table I — baseline configuration).
fn main() -> std::process::ExitCode {
    triad_bench::cli::main_with(Some("table1"))
}
