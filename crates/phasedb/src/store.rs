//! Content-addressed, persistent phase-database store.
//!
//! Building the 27-app [`PhaseDb`] is the dominant cost of every campaign
//! (minutes of detailed simulation); loading the persisted artifact is
//! milliseconds. [`DbStore`] is the one resolution path every layer goes
//! through instead of calling [`build_apps`] directly:
//!
//! * the cache key is [`db_fingerprint`] — a digest of the [`DbConfig`],
//!   the complete suite definition, and the database shape constants — so
//!   any input change re-keys the artifact and stale hits are impossible;
//! * on **hit** the artifact is parsed and shape-validated; any
//!   deserialization failure (truncation, corruption, schema drift) falls
//!   back to a rebuild that overwrites the bad file;
//! * on **miss** the database is built, then written atomically
//!   (unique tempfile + `rename` in the cache directory), so concurrent
//!   campaigns racing on the same key can never observe a torn file — the
//!   last writer wins with bit-identical content.

use crate::build::{build_apps, DbConfig};
use crate::fingerprint::db_fingerprint;
use crate::record::PhaseDb;
use crate::serde::{db_from_json, db_to_json};
use std::path::{Path, PathBuf};
use triad_telemetry::{Counter, SpanName};
use triad_trace::AppSpec;
use triad_util::failpoint::FailPoint;
use triad_util::json::parse;

static RESOLVE_SPAN: SpanName = SpanName::new("db_store.resolve");
static BUILD_SPAN: SpanName = SpanName::new("db_store.build");
static HITS: Counter = Counter::new("db_store.hit");
static MISSES: Counter = Counter::new("db_store.miss");
static CORRUPT_REBUILDS: Counter = Counter::new("db_store.corrupt_rebuilt");
static FORCED_REBUILDS: Counter = Counter::new("db_store.forced_rebuild");
static PERSIST_RETRIES: Counter = Counter::new("db_store.persist_retry");

/// Injected-fault site on the artifact read (a load error degrades to a
/// rebuild, never a failure).
pub static LOAD_FP: FailPoint = FailPoint::new("db_store.load");
/// Injected-fault site on the tempfile write half of [`DbStore::resolve`]'s
/// persist.
pub static PERSIST_WRITE_FP: FailPoint = FailPoint::new("db_store.persist.write");
/// Injected-fault site **between** the tempfile write and the `rename` —
/// the crash seam atomic persistence exists for. `error` faults exercise
/// the bounded-retry path; `abort` kills the process with the tempfile on
/// disk and the published artifact untouched.
pub static PERSIST_RENAME_FP: FailPoint = FailPoint::new("db_store.persist.rename");

/// Transient-persist retry budget: attempts (first try included) with
/// deterministic 1/2 ms backoff, mirroring the journal's discipline.
const PERSIST_ATTEMPTS: u32 = 3;

/// How a [`DbStore::resolve`] call obtained its database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// Loaded from a valid cached artifact.
    Hit,
    /// No artifact existed; built and persisted.
    Miss,
    /// An artifact existed but failed to deserialize; rebuilt and replaced.
    CorruptRebuilt,
    /// `force_rebuild` was set; built and persisted unconditionally.
    ForcedRebuild,
}

impl StoreOutcome {
    /// Whether the database came from disk rather than a build.
    pub fn is_hit(self) -> bool {
        self == StoreOutcome::Hit
    }
}

/// A resolved database plus its provenance.
#[derive(Debug, Clone)]
pub struct Resolved {
    /// The database, loaded or freshly built.
    pub db: PhaseDb,
    /// How it was obtained.
    pub outcome: StoreOutcome,
    /// The content fingerprint (the cache key).
    pub fingerprint: String,
    /// The artifact path for this key (present even if persisting failed).
    pub path: PathBuf,
}

/// Content-addressed store rooted at one cache directory.
#[derive(Debug, Clone)]
pub struct DbStore {
    dir: PathBuf,
    force_rebuild: bool,
}

impl DbStore {
    /// A store rooted at `dir` (created lazily on first write).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DbStore { dir: dir.into(), force_rebuild: false }
    }

    /// The default store: `$TRIAD_DB_CACHE` if set, else `target/phasedb/`
    /// under the enclosing cargo workspace (found by walking up from the
    /// current directory to the nearest `Cargo.lock`), else `target/phasedb`
    /// relative to the current directory.
    pub fn default_cache() -> Self {
        Self::new(default_cache_dir())
    }

    /// Ignore cached artifacts and rebuild (the rebuilt database is still
    /// persisted, refreshing the cache).
    pub fn force_rebuild(mut self, on: bool) -> Self {
        self.force_rebuild = on;
        self
    }

    /// The cache directory this store resolves into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The artifact path for a given content fingerprint.
    pub fn path_for(&self, fingerprint: &str) -> PathBuf {
        self.dir.join(format!("{fingerprint}.json"))
    }

    /// Resolve the database for `(apps, cfg)`: load the cached artifact if
    /// one exists and deserializes cleanly, otherwise build and persist.
    ///
    /// Persisting is best-effort — an unwritable cache directory degrades
    /// to building every time (with a warning), never to failure.
    pub fn resolve(&self, apps: &[AppSpec], cfg: &DbConfig) -> Resolved {
        let _span = RESOLVE_SPAN.enter();
        let fingerprint = db_fingerprint(apps, cfg);
        let path = self.path_for(&fingerprint);

        let mut outcome =
            if self.force_rebuild { StoreOutcome::ForcedRebuild } else { StoreOutcome::Miss };
        if !self.force_rebuild {
            match LOAD_FP.check_io().and_then(|()| std::fs::read_to_string(&path)) {
                Ok(text) => {
                    match parse(&text)
                        .map_err(|e| e.to_string())
                        .and_then(|doc| db_from_json(&doc, apps))
                    {
                        Ok(db) => {
                            HITS.incr();
                            return Resolved { db, outcome: StoreOutcome::Hit, fingerprint, path };
                        }
                        Err(e) => {
                            eprintln!(
                                "phasedb cache: discarding corrupt artifact {}: {e}",
                                path.display()
                            );
                            outcome = StoreOutcome::CorruptRebuilt;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    eprintln!("phasedb cache: cannot read {}: {e}; rebuilding", path.display());
                    outcome = StoreOutcome::CorruptRebuilt;
                }
            }
        }

        match outcome {
            StoreOutcome::Miss => MISSES.incr(),
            StoreOutcome::CorruptRebuilt => CORRUPT_REBUILDS.incr(),
            StoreOutcome::ForcedRebuild => FORCED_REBUILDS.incr(),
            StoreOutcome::Hit => unreachable!("hits return early"),
        }
        let db = {
            let _build = BUILD_SPAN.enter();
            build_apps(apps, cfg)
        };
        if let Err(e) = self.persist(&db, &fingerprint, cfg, &path) {
            eprintln!("phasedb cache: could not persist {}: {e}", path.display());
        }
        Resolved { db, outcome, fingerprint, path }
    }

    /// Resolve the full 27-application suite database.
    pub fn resolve_suite(&self, cfg: &DbConfig) -> Resolved {
        self.resolve(&triad_trace::suite(), cfg)
    }

    /// Atomically write the artifact: serialize to a writer-unique
    /// tempfile in the cache directory, then `rename` onto the final path
    /// (atomic within one filesystem), so readers only ever see complete
    /// files. The tempfile name carries both the process id and a
    /// process-global counter: concurrent resolves of the same key from
    /// parallel threads (test runners do this) must not share a tempfile,
    /// or one writer's truncation could tear the other's in-flight bytes.
    ///
    /// Transient write/rename failures get the same bounded deterministic
    /// retry as journal appends; a crash anywhere in the sequence leaves
    /// the published artifact either absent or complete, never torn
    /// (readers rebuild on absence, and leftover tempfiles are inert under
    /// fresh writer-unique names).
    fn persist(
        &self,
        db: &PhaseDb,
        fingerprint: &str,
        cfg: &DbConfig,
        path: &Path,
    ) -> std::io::Result<()> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static WRITER_SEQ: AtomicU64 = AtomicU64::new(0);
        std::fs::create_dir_all(&self.dir)?;
        let seq = WRITER_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!("{fingerprint}.tmp.{}.{seq}", std::process::id()));
        let text = db_to_json(db, fingerprint, cfg).to_string_compact();
        let mut last_err = None;
        for attempt in 0..PERSIST_ATTEMPTS {
            if attempt > 0 {
                PERSIST_RETRIES.incr();
                std::thread::sleep(std::time::Duration::from_millis(1 << (attempt - 1)));
            }
            let result = PERSIST_WRITE_FP
                .check_io()
                .and_then(|()| std::fs::write(&tmp, &text))
                .and_then(|()| PERSIST_RENAME_FP.check_io())
                .and_then(|()| std::fs::rename(&tmp, path));
            match result {
                Ok(()) => return Ok(()),
                Err(e) => last_err = Some(e),
            }
        }
        let _ = std::fs::remove_file(&tmp);
        Err(last_err.expect("retry loop ran"))
    }
}

/// Default cache directory resolution (see [`DbStore::default_cache`]).
fn default_cache_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("TRIAD_DB_CACHE") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join("target").join("phasedb");
        }
        if !dir.pop() {
            return PathBuf::from("target").join("phasedb");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_apps() -> Vec<AppSpec> {
        triad_trace::suite().into_iter().filter(|a| a.name == "libquantum").collect()
    }

    fn temp_store(tag: &str) -> DbStore {
        let dir = std::env::temp_dir()
            .join(format!("triad-phasedb-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        DbStore::new(dir)
    }

    #[test]
    fn miss_then_hit_with_identical_content() {
        let store = temp_store("hit");
        let apps = test_apps();
        let cfg = DbConfig::fast();

        let r1 = store.resolve(&apps, &cfg);
        assert_eq!(r1.outcome, StoreOutcome::Miss);
        assert!(r1.path.exists(), "miss must persist the artifact");

        let r2 = store.resolve(&apps, &cfg);
        assert_eq!(r2.outcome, StoreOutcome::Hit);
        assert_eq!(r1.fingerprint, r2.fingerprint);
        for (a, b) in r1.db.apps.iter().zip(&r2.db.apps) {
            for (x, y) in a.records.iter().zip(&b.records) {
                assert_eq!(x.a_cpi, y.a_cpi);
                assert_eq!(x.b_spi, y.b_spi);
                assert_eq!(x.miss_curve_pi, y.miss_curve_pi);
            }
        }
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn different_configs_key_different_artifacts() {
        let store = temp_store("keys");
        let apps = test_apps();
        let fast = DbConfig::fast();
        let tweaked = DbConfig { seed: fast.seed ^ 1, ..fast };
        let r1 = store.resolve(&apps, &fast);
        let r2 = store.resolve(&apps, &tweaked);
        assert_ne!(r1.fingerprint, r2.fingerprint);
        assert_ne!(r1.path, r2.path);
        // Both artifacts coexist; both now hit.
        assert!(store.resolve(&apps, &fast).outcome.is_hit());
        assert!(store.resolve(&apps, &tweaked).outcome.is_hit());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn force_rebuild_skips_the_cache_but_refreshes_it() {
        let store = temp_store("force");
        let apps = test_apps();
        let cfg = DbConfig::fast();
        store.resolve(&apps, &cfg);
        let r = store.clone().force_rebuild(true).resolve(&apps, &cfg);
        assert_eq!(r.outcome, StoreOutcome::ForcedRebuild);
        // The refreshed artifact still hits afterwards.
        assert!(store.resolve(&apps, &cfg).outcome.is_hit());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn no_tempfiles_left_behind() {
        let store = temp_store("tmp");
        let apps = test_apps();
        store.resolve(&apps, &DbConfig::fast());
        let leftovers: Vec<_> = std::fs::read_dir(store.dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "tempfiles must be renamed away: {leftovers:?}");
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
