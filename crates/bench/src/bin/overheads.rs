//! Thin wrapper: `triad-bench --experiment overheads` (§III-E — RM algorithm overheads).
fn main() -> std::process::ExitCode {
    triad_bench::cli::main_with(Some("overheads"))
}
