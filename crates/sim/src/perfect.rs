//! The perfect interval model: ground-truth database lookups.
//!
//! Fig. 2 and the light-green bars of Fig. 9 assume "perfect assumptions
//! regarding modeling accuracy": the RM is given the *actual* time and
//! energy of the upcoming interval at every candidate setting — i.e. the
//! phase of interval `i+1` is known and its database record is queried
//! directly. Comparing the online models against this bound isolates the
//! cost of modeling error.

use triad_arch::{DvfsGrid, Setting};
use triad_energy::EnergyBackend;
use triad_phasedb::PhaseRecord;
use triad_rm::IntervalModel;

/// Ground-truth predictor for one core's next interval.
pub struct PerfectModel<'a> {
    /// The record of the phase the next interval will execute.
    pub next: &'a PhaseRecord,
    /// DVFS grid.
    pub grid: &'a DvfsGrid,
    /// Energy backend the ground-truth joules are computed under.
    pub energy: &'a dyn EnergyBackend,
}

impl<'a> IntervalModel for PerfectModel<'a> {
    fn predict(&self, s: Setting) -> (f64, f64) {
        let vf = self.grid.point(s.vf);
        (
            self.next.tpi(s.core, vf.freq_hz, s.ways),
            self.next.energy_pi(s.core, vf, s.ways, self.energy),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_phasedb::{build_apps, DbConfig};

    #[test]
    fn perfect_model_matches_db_ground_truth() {
        let apps: Vec<_> =
            triad_trace::suite().into_iter().filter(|a| a.name == "povray").collect();
        let db = build_apps(&apps, &DbConfig::fast());
        let rec = &db.apps[0].records[0];
        let grid = DvfsGrid::table1();
        let em = triad_energy::EnergyModel::default_model();
        let m = PerfectModel { next: rec, grid: &grid, energy: &em };
        for w in [2usize, 8, 16] {
            for vf in [0usize, 4, 9] {
                for c in triad_arch::CoreSize::ALL {
                    let s = Setting::new(c, vf, w);
                    let (t, e) = m.predict(s);
                    assert_eq!(t, rec.tpi(c, grid.point(vf).freq_hz, w));
                    assert_eq!(e, rec.energy_pi(c, grid.point(vf), w, &em));
                }
            }
        }
    }
}
