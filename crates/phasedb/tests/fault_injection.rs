//! Crash-seam tests for the content-addressed store, driven by the
//! `triad-util` failpoint subsystem. These live in their own test binary
//! (own process): the failpoint registry and telemetry totals are
//! process-global, and the store's unit tests must never observe an armed
//! site.

use std::sync::Mutex;
use triad_phasedb::{DbConfig, DbStore, StoreOutcome};
use triad_trace::AppSpec;
use triad_util::failpoint::{self, FaultKind, Trigger};

/// Failpoints and telemetry are process-global; every test serializes on
/// this and starts from a disarmed registry.
static GUARD: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    let g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::clear_all();
    g
}

fn test_apps() -> Vec<AppSpec> {
    triad_trace::suite().into_iter().filter(|a| a.name == "libquantum").collect()
}

fn temp_store(tag: &str) -> DbStore {
    let dir =
        std::env::temp_dir().join(format!("triad-phasedb-fault-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    DbStore::new(dir)
}

#[test]
fn injected_load_fault_degrades_to_a_clean_rebuild() {
    let _g = locked();
    let store = temp_store("load");
    let apps = test_apps();
    let cfg = DbConfig::fast();
    let warm = store.resolve(&apps, &cfg);
    assert_eq!(warm.outcome, StoreOutcome::Miss);

    // An unreadable artifact is indistinguishable from a corrupt one:
    // the store rebuilds and republishes rather than failing.
    failpoint::configure("db_store.load", Trigger::Once, FaultKind::Error);
    let faulted = store.resolve(&apps, &cfg);
    assert_eq!(faulted.outcome, StoreOutcome::CorruptRebuilt);
    assert_eq!(faulted.fingerprint, warm.fingerprint);
    failpoint::clear_all();

    // The republished artifact serves hits again.
    assert!(store.resolve(&apps, &cfg).outcome.is_hit());
    let _ = std::fs::remove_dir_all(store.dir());
}

#[test]
fn transient_persist_faults_are_retried_and_counted() {
    let _g = locked();
    triad_telemetry::enable(triad_telemetry::METRICS);
    triad_telemetry::reset();
    let store = temp_store("retry");
    let apps = test_apps();
    let cfg = DbConfig::fast();

    // First write attempt faults; the bounded retry publishes on the
    // second. The resolve itself still reports a plain miss.
    failpoint::configure("db_store.persist.write", Trigger::Once, FaultKind::Error);
    let r = store.resolve(&apps, &cfg);
    failpoint::clear_all();
    assert_eq!(r.outcome, StoreOutcome::Miss);
    assert!(r.path.exists(), "retry must have published the artifact");
    assert!(store.resolve(&apps, &cfg).outcome.is_hit());

    let snap = triad_telemetry::snapshot();
    assert_eq!(snap.counter("db_store.persist_retry"), 1);
    triad_telemetry::disable_all();
    let _ = std::fs::remove_dir_all(store.dir());
}

#[test]
fn crash_between_tempfile_and_rename_never_tears_the_artifact() {
    let _g = locked();
    triad_telemetry::enable(triad_telemetry::METRICS);
    triad_telemetry::reset();
    let store = temp_store("rename");
    let apps = test_apps();
    let cfg = DbConfig::fast();

    // Publish a good artifact, then force a rebuild whose persist dies at
    // the crash seam (tempfile written, rename never happens) on every
    // attempt. The published artifact must stay the old, complete one.
    let first = store.resolve(&apps, &cfg);
    let published = std::fs::read_to_string(&first.path).unwrap();
    failpoint::configure("db_store.persist.rename", Trigger::Always, FaultKind::Error);
    let crashed = store.clone().force_rebuild(true).resolve(&apps, &cfg);
    failpoint::clear_all();
    assert_eq!(crashed.outcome, StoreOutcome::ForcedRebuild);
    assert_eq!(
        std::fs::read_to_string(&first.path).unwrap(),
        published,
        "a persist crash must leave the old artifact untouched"
    );

    // The store still serves the old artifact afterwards...
    let served = store.resolve(&apps, &cfg);
    assert_eq!(served.outcome, StoreOutcome::Hit);

    // ...and with no artifact at all, the same crash degrades to
    // rebuild-every-time, never to failure.
    let fresh = temp_store("rename-fresh");
    failpoint::configure("db_store.persist.rename", Trigger::Always, FaultKind::Error);
    let r1 = fresh.resolve(&apps, &cfg);
    let r2 = fresh.resolve(&apps, &cfg);
    failpoint::clear_all();
    assert_eq!(r1.outcome, StoreOutcome::Miss);
    assert_eq!(r2.outcome, StoreOutcome::Miss, "unpublished artifact rebuilds cleanly");
    assert_eq!(r1.fingerprint, r2.fingerprint);

    let snap = triad_telemetry::snapshot();
    assert!(
        snap.counter("db_store.persist_retry") >= 2,
        "every failed attempt past the first is a counted retry"
    );
    triad_telemetry::disable_all();
    let _ = std::fs::remove_dir_all(store.dir());
    let _ = std::fs::remove_dir_all(fresh.dir());
}
