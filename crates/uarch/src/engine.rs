//! The reusable lockstep timing engine.
//!
//! [`TimingEngine`] executes the same out-of-order model as the original
//! `simulate` free function — and is proven byte-identical to it by
//! property tests and the campaign/phase-db goldens — but restructures the
//! inner loop around two observations:
//!
//! 1. **ROB-bounded ring buffers.** The original implementation kept five
//!    trace-length arrays (`dispatch`/`issue`/`complete`/`retire`/`class`)
//!    alive for the whole pass. Every backward read the model performs is
//!    bounded by the reorder buffer:
//!
//!    * `retire[i − rob]` and `class[i − rob]` — distance exactly `rob`;
//!    * `issue[i − rs]` — `rs < rob` for every core size;
//!    * `retire[i − 1]` / `retire[i − width]` — `width < rob`;
//!    * `complete[i − d]` for a dependence distance `d` and
//!      `complete[oldest]` for the LSQ head — *not* structurally bounded,
//!      but provably **non-binding** beyond the ROB:
//!
//!      For `j ≤ i − rob`: `complete[j] ≤ retire[j]` (retirement waits for
//!      completion, `retire[i] = max(complete[i], …)`) and `retire` is
//!      monotone in program order (`retire[i] ≥ retire[i−1]`), so
//!      `complete[j] ≤ retire[i − rob]`. The dispatch stage already forces
//!      `dispatch[i] ≥ retire[i − rob]` (the ROB-occupancy constraint, and
//!      `i ≥ rob` whenever such a `j` exists), hence
//!      `complete[j] ≤ retire[i − rob] ≤ dispatch[i] < dispatch[i] + 1 ≤
//!      start`. A dependence older than the ROB can therefore never move
//!      the issue cycle, and an LSQ head older than the ROB can never
//!      exceed the dispatch candidate that the ROB constraint already set —
//!      in both cases the model's strict `>` comparisons leave cycle *and*
//!      stall-attribution class untouched, so skipping the read is exact.
//!      (Debug builds assert `retire[i − rob] ≤ dispatch[i]` and retire
//!      monotonicity, the two legs of the proof.)
//!
//!    Each array therefore shrinks to a power-of-two ring of `rob` entries
//!    (`dispatch` disappears outright: it is only read in the iteration
//!    that writes it). The scratch drops from five trace-length vectors —
//!    megabytes per call, reallocated every call — to a few KiB that live
//!    inside the engine and are reused across calls.
//!
//! 2. **Lockstep way batching.** For a fixed core size and frequency, runs
//!    at different LLC way allocations share everything that is expensive
//!    to fetch — the trace itself, its classification codes, dependence
//!    decoding, branch and LSQ bookkeeping — and differ only in per-way
//!    cycle arithmetic. [`TimingEngine::simulate_ways`] advances all
//!    requested allocations through the trace in **one pass**: per-way
//!    `u64` cycle lanes (SoA, lane-major within each ring slot), one
//!    [`DramQueue`] per lane, shared instruction decode. The phase-database
//!    build that previously walked the same trace 15× per (core,
//!    frequency) now touches it once.

use std::ops::RangeInclusive;

use crate::model::{TimingConfig, TimingResult};
use triad_arch::{CoreParams, CoreSize};
use triad_cache::{is_llc_code, llc_stack_dist_of, service_level_of, ClassifiedTrace, MlpMonitor};
use triad_mem::DramQueue;
use triad_trace::{Inst, InstKind};

/// Reason the completion of an instruction was late (stall attribution).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Class {
    Compute,
    Branch,
    CacheHit,
    Dram,
}

/// Completion path of one instruction, decoded once and shared across
/// lanes. Lanes run in ascending way order, so the allocations a given
/// stack distance misses are exactly a *prefix* of the lane list — the
/// per-lane service-level decision collapses to one shared
/// `partition_point` instead of `nl` data-dependent branches.
#[derive(Clone, Copy)]
enum Path {
    /// Same fixed latency and class on every lane (non-mem, L1, L2, or an
    /// LLC access that hits every simulated allocation).
    Fixed(u64, Class),
    /// LLC access that misses every allocation (cold/evicted).
    AllDram,
    /// LLC access with stack distance `d`: lanes `< split` (ways ≤ d) go
    /// to DRAM, lanes `≥ split` hit the LLC.
    Split(usize),
}

/// Per-way-allocation simulation state (one SoA lane).
struct Lane {
    dram: DramQueue,
    cycle_of_group: u64,
    dispatched_in_group: usize,
    branch_resume: u64,
    dram_loads: u64,
    dram_stores: u64,
    true_lm: u64,
    lm_end: u64,
    c_branch: u64,
    c_cache: u64,
    c_dram: u64,
    last_retire: u64,
}

impl Lane {
    fn new(cfg: &TimingConfig) -> Self {
        Lane {
            dram: DramQueue::new(cfg.dram, cfg.freq_hz),
            cycle_of_group: 0,
            dispatched_in_group: 0,
            branch_resume: 0,
            dram_loads: 0,
            dram_stores: 0,
            true_lm: 0,
            lm_end: 0,
            c_branch: 0,
            c_cache: 0,
            c_dram: 0,
            last_retire: 0,
        }
    }
}

/// One (ring slot, lane) entry: the per-instruction cycles the model reads
/// back later, interleaved so a slot access touches one cache line instead
/// of four parallel arrays.
#[derive(Clone, Copy)]
struct Cell {
    issue: u64,
    complete: u64,
    retire: u64,
    class: Class,
}

const EMPTY_CELL: Cell = Cell { issue: 0, complete: 0, retire: 0, class: Class::Compute };

/// A reusable out-of-order timing engine: holds all scratch state across
/// calls and simulates one or many LLC way allocations per trace pass.
///
/// The free functions [`crate::simulate`] / [`crate::simulate_with_monitor`]
/// are thin wrappers over a fresh single-lane engine and remain
/// byte-identical to the pre-engine implementation.
#[derive(Default)]
pub struct TimingEngine {
    /// Per-instruction cycle ring, `cap × lanes` (lane-major within each
    /// slot).
    cells: Vec<Cell>,
    /// Memory-op ordinal ring for the LSQ constraint (way-independent,
    /// shared across lanes): the youngest `lsq` memory-op indices.
    memops: Vec<u32>,
    /// Per-lane LLC loads in (issue-cycle, program-index, stack-code) form;
    /// populated only when monitors are attached.
    llc_loads: Vec<Vec<(u64, u32, u8)>>,
    /// Lane states for the current call.
    lanes: Vec<Lane>,
    /// Way-list scratch for the range-based entry points.
    ways_buf: Vec<usize>,
}

impl TimingEngine {
    /// A fresh engine with no scratch allocated yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulate `trace` (classified as `ct`) under `cfg` — the single-lane
    /// path, byte-identical to [`crate::simulate`].
    pub fn simulate(
        &mut self,
        trace: &[Inst],
        ct: &ClassifiedTrace,
        cfg: &TimingConfig,
    ) -> TimingResult {
        self.fill_single(cfg);
        self.run(trace, ct, cfg, 1, None)[0]
    }

    /// [`TimingEngine::simulate`], feeding every LLC load (in LLC arrival
    /// order) into `monitor` — byte-identical to
    /// [`crate::simulate_with_monitor`].
    pub fn simulate_with_monitor(
        &mut self,
        trace: &[Inst],
        ct: &ClassifiedTrace,
        cfg: &TimingConfig,
        monitor: &mut MlpMonitor,
    ) -> TimingResult {
        self.fill_single(cfg);
        self.run(trace, ct, cfg, 1, Some(std::slice::from_mut(monitor)))[0]
    }

    /// Lockstep batched mode: simulate every allocation in `ways` at the
    /// Table I latencies for `(core, freq_hz)` in **one trace pass**,
    /// returning one [`TimingResult`] per allocation in range order. Each
    /// result is bit-identical to a standalone [`crate::simulate`] at that
    /// allocation.
    pub fn simulate_ways(
        &mut self,
        trace: &[Inst],
        ct: &ClassifiedTrace,
        core: CoreSize,
        freq_hz: f64,
        ways: RangeInclusive<usize>,
    ) -> Vec<TimingResult> {
        let cfg = TimingConfig::table1(core, freq_hz, *ways.start());
        self.simulate_ways_cfg(trace, ct, &cfg, ways)
    }

    /// [`TimingEngine::simulate_ways`] with explicit (non-Table I)
    /// latencies: `cfg.ways` is overridden per lane by `ways`.
    pub fn simulate_ways_cfg(
        &mut self,
        trace: &[Inst],
        ct: &ClassifiedTrace,
        cfg: &TimingConfig,
        ways: RangeInclusive<usize>,
    ) -> Vec<TimingResult> {
        let nl = self.fill_ways(ways);
        self.run(trace, ct, cfg, nl, None)
    }

    /// Batched mode with one [`MlpMonitor`] per way lane: lane `k` feeds
    /// `monitors[k]` with its own arrival-ordered LLC load stream, exactly
    /// as a standalone [`crate::simulate_with_monitor`] at that allocation
    /// would.
    pub fn simulate_ways_with_monitors(
        &mut self,
        trace: &[Inst],
        ct: &ClassifiedTrace,
        cfg: &TimingConfig,
        ways: RangeInclusive<usize>,
        monitors: &mut [MlpMonitor],
    ) -> Vec<TimingResult> {
        let nl = self.fill_ways(ways);
        assert_eq!(monitors.len(), nl, "one monitor per way lane");
        self.run(trace, ct, cfg, nl, Some(monitors))
    }

    /// Expand a way range into the lane scratch; returns the lane count.
    fn fill_ways(&mut self, ways: RangeInclusive<usize>) -> usize {
        self.ways_buf.clear();
        self.ways_buf.extend(ways);
        assert!(!self.ways_buf.is_empty(), "empty way range");
        self.ways_buf.len()
    }

    /// Single-lane way scratch for the scalar entry points.
    fn fill_single(&mut self, cfg: &TimingConfig) {
        self.ways_buf.clear();
        self.ways_buf.push(cfg.ways);
    }

    /// One DRAM access on one lane: LLC lookup, then the contention queue.
    #[inline(always)]
    fn dram_access(lane: &mut Lane, start: u64, lat_llc: u64, is_load: bool) -> (u64, Class) {
        let arrival = start + lat_llc;
        let done = lane.dram.request(arrival);
        if is_load {
            lane.dram_loads += 1;
            if arrival >= lane.lm_end {
                lane.true_lm += 1;
                lane.lm_end = done;
            }
            (done, Class::Dram)
        } else {
            // Stores retire from the store buffer; the fill only consumes
            // DRAM bandwidth.
            lane.dram_stores += 1;
            (start + 1, Class::Compute)
        }
    }

    /// The lockstep inner loop over `nl` lanes. With `nl == 1` this is
    /// exactly the original scalar model (the lane loop collapses); with
    /// more lanes, instruction decode, dependence and LSQ bookkeeping are
    /// shared and only the cycle arithmetic runs per way.
    fn run(
        &mut self,
        trace: &[Inst],
        ct: &ClassifiedTrace,
        cfg: &TimingConfig,
        nl: usize,
        monitors: Option<&mut [MlpMonitor]>,
    ) -> Vec<TimingResult> {
        let n = trace.len();
        assert_eq!(n, ct.len(), "trace and classification must align");
        if n == 0 {
            return vec![TimingResult::default(); nl];
        }
        let CoreParams { issue_width, rob, rs, lsq } = cfg.core.params();
        let width = issue_width as usize;
        let rob = rob as usize;
        let rs = rs as usize;
        let lsq = lsq as usize;
        // The ring bound (module docs) needs every structural read distance
        // within the ROB.
        assert!(width <= rob && rs <= rob && lsq <= rob, "ring bound: RS/LSQ/width within ROB");

        let cap = rob.next_power_of_two();
        let mask = cap - 1;
        let lcap = lsq.next_power_of_two();
        let lmask = lcap - 1;

        // (Re)size scratch. Stale values from previous calls are never
        // read: every ring read at instruction `i` targets an index in
        // `[i − rob, i − 1]`, all written earlier in this pass.
        self.cells.resize(cap * nl, EMPTY_CELL);
        self.memops.resize(lcap, 0);
        // Ascending way order is what lets the per-instruction service-level
        // decision collapse to a prefix split (see [`Path`]).
        debug_assert!(self.ways_buf.windows(2).all(|p| p[0] < p[1]), "ways must ascend");
        self.lanes.clear();
        for _ in 0..nl {
            self.lanes.push(Lane::new(cfg));
        }
        let collect_llc = monitors.is_some();
        while self.llc_loads.len() < nl {
            self.llc_loads.push(Vec::new());
        }
        if collect_llc {
            // Upper bound: `ct.llc_accesses` counts LLC loads *and* stores,
            // while only loads are collected — no reallocation, slight
            // over-reservation.
            for lv in self.llc_loads.iter_mut().take(nl) {
                lv.clear();
                lv.reserve(ct.llc_accesses as usize);
            }
        }

        let codes = ct.codes();
        let cells = &mut self.cells;
        let memops = &mut self.memops;
        let lanes = &mut self.lanes;
        let llc = &mut self.llc_loads;
        let ws = &self.ways_buf;
        let lat_l1 = cfg.lat_l1 as u64;
        let lat_l2 = cfg.lat_l2 as u64;
        let lat_llc = cfg.lat_llc as u64;
        let lat_longop = cfg.lat_longop as u64;
        let penalty = cfg.mispredict_penalty as u64;
        let mut m = 0usize; // memory ops pushed so far

        for (i, inst) in trace.iter().enumerate() {
            // ---- shared decode (once per instruction, not per way) ----
            let code = codes[i];
            let kind = inst.kind;
            let is_mem = kind.is_mem();
            let slot = (i & mask) * nl;
            let rob_slot = if i >= rob { Some(((i - rob) & mask) * nl) } else { None };
            let rs_slot = if i >= rs { Some(((i - rs) & mask) * nl) } else { None };
            // LSQ head: the lsq-th-youngest memory op, if it can still bind
            // (older than the ROB ⇒ provably non-binding, module docs).
            let lsq_slot = if is_mem && m >= lsq {
                let oldest = memops[(m - lsq) & lmask] as usize;
                if i - oldest < rob {
                    Some((oldest & mask) * nl)
                } else {
                    None
                }
            } else {
                None
            };
            if is_mem {
                memops[m & lmask] = i as u32;
                m += 1;
            }
            // Producers before the detailed window (dep distance > i)
            // completed during warmup; producers older than the ROB are
            // non-binding (module docs). Both impose no constraint.
            let d1 = inst.dep1 as usize;
            let d2 = inst.dep2 as usize;
            let dep1_slot =
                if d1 > 0 && d1 <= i && d1 < rob { Some(((i - d1) & mask) * nl) } else { None };
            let dep2_slot =
                if d2 > 0 && d2 <= i && d2 < rob { Some(((i - d2) & mask) * nl) } else { None };
            let mispredict = kind == InstKind::Branch && inst.mispredict;
            let ret1_slot = if i >= 1 { Some(((i - 1) & mask) * nl) } else { None };
            let retw_slot = if i >= width { Some(((i - width) & mask) * nl) } else { None };
            let is_load = kind == InstKind::Load;
            let collect_load = collect_llc && is_load && is_llc_code(code);
            // Completion path, shared across lanes (see [`Path`]): the
            // service level at the *smallest* allocation decides the shape,
            // and for tracked stack distances the DRAM lanes are the prefix
            // with `ways ≤ dist`.
            let path = match kind {
                InstKind::Alu | InstKind::Branch => Path::Fixed(1, Class::Compute),
                InstKind::LongOp => Path::Fixed(lat_longop, Class::Compute),
                InstKind::Load | InstKind::Store => match service_level_of(code, ws[0]) {
                    1 => Path::Fixed(lat_l1, Class::Compute),
                    2 => Path::Fixed(lat_l2, Class::CacheHit),
                    3 => Path::Fixed(lat_llc, Class::CacheHit),
                    _ => {
                        if code <= 15 {
                            let split = ws.partition_point(|&w| w <= code as usize);
                            if split == nl {
                                Path::AllDram
                            } else {
                                Path::Split(split)
                            }
                        } else {
                            Path::AllDram
                        }
                    }
                },
            };

            for (k, lane) in lanes.iter_mut().enumerate() {
                // ---- dispatch ----
                let mut cand = lane.cycle_of_group;
                let mut reason = Class::Compute;
                if lane.branch_resume > cand {
                    cand = lane.branch_resume;
                    reason = Class::Branch;
                }
                if let Some(rb) = rob_slot {
                    let cell = &cells[rb + k];
                    if cell.retire > cand {
                        cand = cell.retire;
                        reason = cell.class; // blocked on the ROB head's class
                    }
                }
                if let Some(rsb) = rs_slot {
                    let lim = cells[rsb + k].issue;
                    if lim > cand {
                        cand = lim;
                        reason = Class::Compute; // scheduler pressure is core-sized
                    }
                }
                if let Some(ob) = lsq_slot {
                    let cell = &cells[ob + k];
                    if cell.complete > cand {
                        cand = cell.complete;
                        reason = cell.class;
                    }
                }
                if cand > lane.cycle_of_group {
                    lane.cycle_of_group = cand;
                    lane.dispatched_in_group = 0;
                } else if lane.dispatched_in_group >= width {
                    lane.cycle_of_group += 1;
                    lane.dispatched_in_group = 0;
                }
                let dispatch = lane.cycle_of_group;
                lane.dispatched_in_group += 1;
                // Record what stalled this instruction's *dispatch* so pure
                // front-end (branch) starvation is attributable at retire.
                let dispatch_reason = reason;
                // First leg of the ring-bound proof: the ROB constraint
                // pins dispatch at or after the ROB head's retirement.
                if let Some(rb) = rob_slot {
                    debug_assert!(cells[rb + k].retire <= dispatch, "ROB bound violated");
                }

                // ---- issue (operand readiness) ----
                let mut start = dispatch + 1;
                if let Some(db) = dep1_slot {
                    start = start.max(cells[db + k].complete);
                }
                if let Some(db) = dep2_slot {
                    start = start.max(cells[db + k].complete);
                }

                // ---- complete ----
                let (fin, cls) = match path {
                    Path::Fixed(lat, c) => (start + lat, c),
                    Path::AllDram => Self::dram_access(lane, start, lat_llc, is_load),
                    Path::Split(split) => {
                        if k < split {
                            Self::dram_access(lane, start, lat_llc, is_load)
                        } else {
                            (start + lat_llc, Class::CacheHit)
                        }
                    }
                };
                // Loads that reach the LLC (hit or miss) probe the ATD.
                if collect_load {
                    llc[k].push((start, i as u32, code));
                }
                let final_class = if cls == Class::Compute && dispatch_reason == Class::Branch {
                    Class::Branch
                } else {
                    cls
                };

                // ---- branch redirect ----
                if mispredict {
                    lane.branch_resume = fin + penalty;
                }

                // ---- retire (in order, `width` per cycle) + fused stall
                // attribution: the retire delay beyond the structural
                // in-order slot `base` is charged to the delaying class
                // (this replaces the former second O(n) sweep — `base` is
                // exactly what that sweep recomputed).
                let mut base = 0u64;
                if let Some(rb) = ret1_slot {
                    base = cells[rb + k].retire;
                }
                if let Some(rb) = retw_slot {
                    base = base.max(cells[rb + k].retire + 1);
                }
                let r = fin.max(base);
                // Second leg of the ring-bound proof: retire is monotone.
                debug_assert!(r >= lane.last_retire, "retire must be monotone");
                lane.last_retire = r;
                cells[slot + k] =
                    Cell { issue: start, complete: fin, retire: r, class: final_class };
                let gap = r - base;
                if gap > 0 {
                    match final_class {
                        Class::Dram => lane.c_dram += gap,
                        Class::CacheHit => lane.c_cache += gap,
                        Class::Branch => lane.c_branch += gap,
                        Class::Compute => {}
                    }
                }
            }
        }

        // Feed the MLP monitors in LLC arrival order, one per lane.
        if let Some(mons) = monitors {
            assert_eq!(mons.len(), nl, "one monitor per way lane");
            for (k, mon) in mons.iter_mut().enumerate() {
                let lv = &mut llc[k];
                lv.sort_by_key(|&(t, idx, _)| (t, idx));
                for &(_, idx, code) in lv.iter() {
                    mon.on_llc_load(idx as u64, llc_stack_dist_of(code));
                }
            }
        }

        lanes
            .iter()
            .map(|lane| {
                let cycles = lane.last_retire.max(1);
                let to_s = |c: u64| c as f64 / cfg.freq_hz;
                let time_s = to_s(cycles);
                let t_branch_s = to_s(lane.c_branch);
                let t_cache_s = to_s(lane.c_cache);
                let tmem_s = to_s(lane.c_dram);
                let t0_s = (time_s - t_branch_s - t_cache_s - tmem_s).max(0.0);
                let ipc = n as f64 / cycles as f64;
                TimingResult {
                    insts: n as u64,
                    cycles,
                    time_s,
                    t0_s,
                    t_branch_s,
                    t_cache_s,
                    tmem_s,
                    dram_loads: lane.dram_loads,
                    dram_stores: lane.dram_stores,
                    true_leading_misses: lane.true_lm,
                    mlp: if lane.true_lm > 0 {
                        lane.dram_loads as f64 / lane.true_lm as f64
                    } else {
                        1.0
                    },
                    ipc,
                    util: ipc / width as f64,
                }
            })
            .collect()
    }
}
