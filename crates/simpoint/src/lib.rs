//! # triad-simpoint — SimPoint-style phase analysis
//!
//! The paper's methodology (§IV-A) uses SimPoint [Sherwood et al., 2002] to
//! reduce each benchmark to a small set of representative program phases:
//! every 100M-instruction interval is summarized by a basic-block vector
//! (BBV), the BBVs are clustered with k-means, each cluster becomes a
//! *phase* with a representative interval and a weight, and the per-interval
//! cluster labels form the *phase trace* replayed by the RM simulator.
//!
//! This crate implements that pipeline: seeded k-means++ over BBVs with BIC
//! (Bayesian information criterion)-style selection of `k`, producing a
//! [`PhaseAnalysis`] with labels, weights and representatives.
//!
//! It is deliberately independent of `triad-trace`: any `&[Vec<f64>]` of
//! interval feature vectors can be analyzed, which is also how the unit
//! tests validate clustering quality on synthetic mixtures.

use triad_util::rand::rngs::StdRng;
use triad_util::rand::{RngExt, SeedableRng};

/// Result of clustering one application's interval BBVs.
#[derive(Debug, Clone)]
pub struct PhaseAnalysis {
    /// Cluster (phase) label of each interval.
    pub labels: Vec<usize>,
    /// Index of the representative interval (closest to centroid) per phase.
    pub representatives: Vec<usize>,
    /// Fraction of intervals in each phase; sums to 1.
    pub weights: Vec<f64>,
    /// Final centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Total within-cluster sum of squared distances.
    pub wcss: f64,
}

impl PhaseAnalysis {
    /// Number of phases found.
    pub fn n_phases(&self) -> usize {
        self.centroids.len()
    }
}

/// Squared Euclidean distance.
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// One run of Lloyd's algorithm with k-means++ seeding.
///
/// Returns `None` when the inputs cannot support `k` clusters (empty input,
/// `k = 0`, or fewer distinct points than `k`).
pub fn kmeans(points: &[Vec<f64>], k: usize, seed: u64) -> Option<PhaseAnalysis> {
    let n = points.len();
    if n == 0 || k == 0 || k > n {
        return None;
    }
    let dim = points[0].len();
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..n)].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| dist2(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        if total <= 0.0 {
            // Fewer distinct points than requested clusters.
            return None;
        }
        let mut target = rng.random::<f64>() * total;
        let mut pick = n - 1;
        for (i, &d) in d2.iter().enumerate() {
            if target <= d {
                pick = i;
                break;
            }
            target -= d;
        }
        centroids.push(points[pick].clone());
        for (i, p) in points.iter().enumerate() {
            let nd = dist2(p, centroids.last().unwrap());
            if nd < d2[i] {
                d2[i] = nd;
            }
        }
    }

    // Lloyd iterations.
    let mut labels = vec![0usize; n];
    for _ in 0..100 {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let (mut best, mut bd) = (0usize, f64::INFINITY);
            for (c, cent) in centroids.iter().enumerate() {
                let d = dist2(p, cent);
                if d < bd {
                    bd = d;
                    best = c;
                }
            }
            if labels[i] != best {
                labels[i] = best;
                changed = true;
            }
        }
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            counts[labels[i]] += 1;
            for (s, &x) in sums[labels[i]].iter_mut().zip(p) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in &mut sums[c] {
                    *s /= counts[c] as f64;
                }
                centroids[c] = sums[c].clone();
            }
        }
        if !changed {
            break;
        }
    }

    // Drop empty clusters (k can exceed the data's natural structure).
    let mut used: Vec<usize> = labels.clone();
    used.sort_unstable();
    used.dedup();
    let remap: Vec<Option<usize>> = (0..k).map(|c| used.iter().position(|&u| u == c)).collect();
    let centroids: Vec<Vec<f64>> = used.iter().map(|&c| centroids[c].clone()).collect();
    let labels: Vec<usize> = labels.iter().map(|&l| remap[l].unwrap()).collect();
    let k = centroids.len();

    // Representatives, weights, WCSS.
    let mut weights = vec![0.0; k];
    let mut reps = vec![0usize; k];
    let mut rep_d = vec![f64::INFINITY; k];
    let mut wcss = 0.0;
    for (i, p) in points.iter().enumerate() {
        let c = labels[i];
        let d = dist2(p, &centroids[c]);
        wcss += d;
        weights[c] += 1.0;
        if d < rep_d[c] {
            rep_d[c] = d;
            reps[c] = i;
        }
    }
    for w in &mut weights {
        *w /= n as f64;
    }
    Some(PhaseAnalysis { labels, representatives: reps, weights, centroids, wcss })
}

/// SimPoint-style model selection: run [`kmeans`] for `k = 1..=max_k` and
/// keep the smallest `k` that explains at least `threshold` (SimPoint's BIC
/// rule uses 0.9) of the single-cluster dispersion, i.e.
/// `WCSS_k ≤ (1 − threshold) · WCSS_1`.
///
/// When no `k ≤ max_k` reaches the threshold the data has no strong phase
/// structure and a single phase is returned — which is what SimPoint's
/// score-based rule degenerates to on structureless streams.
pub fn analyze(points: &[Vec<f64>], max_k: usize, seed: u64) -> PhaseAnalysis {
    analyze_with_threshold(points, max_k, seed, 0.9)
}

/// [`analyze`] with an explicit explained-dispersion threshold in `(0, 1]`.
pub fn analyze_with_threshold(
    points: &[Vec<f64>],
    max_k: usize,
    seed: u64,
    threshold: f64,
) -> PhaseAnalysis {
    assert!(!points.is_empty(), "cannot analyze an empty interval stream");
    assert!((0.0..=1.0).contains(&threshold));
    let k1 = kmeans(points, 1, seed.wrapping_add(1)).expect("k = 1 always succeeds");
    if k1.wcss <= 0.0 {
        return k1; // All intervals identical: one phase.
    }
    let budget = (1.0 - threshold) * k1.wcss;
    for k in 2..=max_k.min(points.len()) {
        match kmeans(points, k, seed.wrapping_add(k as u64)) {
            Some(a) if a.wcss <= budget => return a,
            Some(_) => continue,
            None => break, // fewer distinct points than k; larger k won't help
        }
    }
    k1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs in 4-D.
    fn blobs(n_per: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers =
            [vec![0.0, 0.0, 0.0, 0.0], vec![5.0, 5.0, 0.0, 0.0], vec![0.0, 5.0, 5.0, 5.0]];
        let mut pts = Vec::new();
        let mut truth = Vec::new();
        for (ci, c) in centers.iter().enumerate() {
            for _ in 0..n_per {
                pts.push(c.iter().map(|&x| x + rng.random::<f64>() * 0.5).collect());
                truth.push(ci);
            }
        }
        (pts, truth)
    }

    #[test]
    fn kmeans_recovers_blobs() {
        let (pts, truth) = blobs(40, 1);
        let a = kmeans(&pts, 3, 42).unwrap();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                assert_eq!(
                    truth[i] == truth[j],
                    a.labels[i] == a.labels[j],
                    "pair ({i},{j}) mislabeled"
                );
            }
        }
    }

    #[test]
    fn weights_sum_to_one_and_match_counts() {
        let (pts, _) = blobs(30, 2);
        let a = kmeans(&pts, 3, 7).unwrap();
        let s: f64 = a.weights.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        for w in &a.weights {
            assert!((w - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn representatives_carry_their_own_label() {
        let (pts, _) = blobs(25, 3);
        let a = kmeans(&pts, 3, 9).unwrap();
        for (c, &r) in a.representatives.iter().enumerate() {
            assert_eq!(a.labels[r], c);
        }
    }

    #[test]
    fn analyze_selects_the_natural_k() {
        let (pts, _) = blobs(40, 4);
        let a = analyze(&pts, 8, 11);
        assert_eq!(a.n_phases(), 3, "BIC should select 3 clusters");
    }

    #[test]
    fn single_cluster_data_selects_k1() {
        let mut rng = StdRng::seed_from_u64(5);
        let pts: Vec<Vec<f64>> =
            (0..100).map(|_| (0..4).map(|_| rng.random::<f64>() * 0.01).collect()).collect();
        let a = analyze(&pts, 6, 3);
        assert_eq!(a.n_phases(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let (pts, _) = blobs(20, 6);
        let a = kmeans(&pts, 3, 5).unwrap();
        let b = kmeans(&pts, 3, 5).unwrap();
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.representatives, b.representatives);
    }

    #[test]
    fn k_larger_than_points_is_rejected() {
        let pts = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert!(kmeans(&pts, 3, 1).is_none());
        assert!(kmeans(&pts, 0, 1).is_none());
        assert!(kmeans(&[], 1, 1).is_none());
    }

    #[test]
    fn duplicate_points_collapse_clusters() {
        let pts: Vec<Vec<f64>> = (0..50).map(|_| vec![1.0, 1.0]).collect();
        let a = analyze(&pts, 4, 2);
        assert_eq!(a.n_phases(), 1);
        assert!(a.wcss < 1e-18);
    }

    #[test]
    fn wcss_decreases_with_k() {
        let (pts, _) = blobs(30, 8);
        let w1 = kmeans(&pts, 1, 3).unwrap().wcss;
        let w3 = kmeans(&pts, 3, 3).unwrap().wcss;
        assert!(w3 < w1 * 0.2, "k=3 should slash WCSS on 3 blobs: {w3} vs {w1}");
    }

    #[test]
    fn recovers_bbv_style_phases() {
        // Mimic the triad-trace BBV emitter: signatures + small noise.
        let mut rng = StdRng::seed_from_u64(10);
        let sig_a: Vec<f64> = (0..16).map(|_| rng.random::<f64>()).collect();
        let sig_b: Vec<f64> = (0..16).map(|_| rng.random::<f64>() + 0.8).collect();
        let seq = [0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 1];
        let pts: Vec<Vec<f64>> = seq
            .iter()
            .map(|&p| {
                let s = if p == 0 { &sig_a } else { &sig_b };
                s.iter().map(|&x| x * (1.0 + 0.02 * rng.random::<f64>())).collect()
            })
            .collect();
        let a = analyze(&pts, 6, 3);
        assert_eq!(a.n_phases(), 2);
        for (i, &p) in seq.iter().enumerate() {
            for (j, &q) in seq.iter().enumerate() {
                assert_eq!(p == q, a.labels[i] == a.labels[j], "({i},{j})");
            }
        }
    }

    #[test]
    fn labels_are_compact() {
        let (pts, _) = blobs(15, 12);
        let a = kmeans(&pts, 3, 4).unwrap();
        let mut seen: Vec<usize> = a.labels.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, (0..a.n_phases()).collect::<Vec<_>>());
    }
}
