//! The campaign layer's determinism contract: the same specs against the
//! same database yield **byte-identical** JSON reports across repeated
//! runs and across worker-thread counts — the guard that the parallel
//! executor introduces no scheduling-dependent reductions — and the
//! database build itself is reproducible, so whole campaigns replay
//! bit-exactly from their (spec, seed) description.

use triad::phasedb::{build_apps, DbConfig, PhaseDb};
use triad::rm::{ModelKind, RmKind};
use triad::sim::engine::SimModel;
use triad::sim::{Campaign, ExperimentSpec};

fn db() -> PhaseDb {
    let names = ["mcf", "libquantum", "povray", "gcc"];
    let apps: Vec<_> =
        triad::trace::suite().into_iter().filter(|a| names.contains(&a.name)).collect();
    build_apps(&apps, &DbConfig::fast())
}

fn specs() -> Vec<ExperimentSpec> {
    let mut specs =
        vec![ExperimentSpec::new("idle", &["mcf", "povray"]).rm(None).target_intervals(6).seed(7)];
    for rm in RmKind::ALL {
        specs.push(
            ExperimentSpec::new(format!("{rm}/online",), &["mcf", "povray"])
                .rm(Some(rm))
                .model(SimModel::Online(ModelKind::Model3))
                .target_intervals(6)
                .seed(7),
        );
        specs.push(
            ExperimentSpec::new(format!("{rm}/perfect"), &["libquantum", "gcc"])
                .rm(Some(rm))
                .perfect()
                .target_intervals(6)
                .seed(7),
        );
    }
    specs
}

#[test]
fn same_spec_and_seed_yield_byte_identical_json() {
    let db = db();
    let first = Campaign::report(&Campaign::new(specs()).run(&db)).to_string_pretty();
    let second = Campaign::report(&Campaign::new(specs()).run(&db)).to_string_pretty();
    assert_eq!(first, second, "repeated runs must serialize byte-identically");

    // And the thread count must not leak into the results either.
    for threads in [1usize, 2, 3] {
        let run =
            Campaign::report(&Campaign::new(specs()).threads(threads).run(&db)).to_string_pretty();
        assert_eq!(first, run, "threads={threads} must match the default run");
    }
}

#[test]
fn database_build_is_reproducible_end_to_end() {
    // Rebuilding the database from the same specs reproduces the same
    // campaign bytes: the full pipeline (trace gen → cache classification
    // → timing model → campaign) is deterministic.
    let a = Campaign::report(&Campaign::new(specs()).run(&db())).to_string_pretty();
    let b = Campaign::report(&Campaign::new(specs()).run(&db())).to_string_pretty();
    assert_eq!(a, b);
}
