//! Thin wrapper: `triad-bench --experiment fig1` (Fig. 1 — category-mix probabilities and scenarios).
fn main() -> std::process::ExitCode {
    triad_bench::cli::main_with(Some("fig1"))
}
