//! Keyed min-index structure for the engine's earliest-finisher selection.
//!
//! Every loop turn the engine must find the core with the smallest
//! time-to-finish. A linear scan is O(n) per turn — fine at 8 cores,
//! quadratic-in-total at the cluster scale the ROADMAP targets (hundreds
//! of cores × millions of turns). [`FinishQueue`] is a tournament
//! (winner) tree over a fixed index range: updating one key is O(log n),
//! reading the minimum is O(1), and ties resolve to the **lowest index**
//! — the same winner `Iterator::min_by` (first minimal element) picks, so
//! swapping the scan for the queue is behavior-identical.
//!
//! The current engine still refreshes every occupied key each turn,
//! because advancing every core each turn (with its per-turn energy
//! proration) is what the bit-exact goldens pin down — the win today is
//! the O(1) min selection, and the sparse O(log n) update path is what
//! the cluster-scale layer needs to inherit.

/// A fixed-capacity winner tree mapping `index -> f64 key`, answering
/// "which index holds the smallest key" in O(1) with O(log n) updates.
///
/// Vacant slots are modeled as `INFINITY` keys; [`FinishQueue::min`]
/// returns `None` when every slot is vacant. Ties break to the lowest
/// index.
#[derive(Debug, Clone)]
pub struct FinishQueue {
    /// Number of real slots.
    n: usize,
    /// Leaf capacity: `n` rounded up to a power of two.
    base: usize,
    /// Winner indices, heap layout: `win[1]` is the overall winner,
    /// `win[base + i]` is leaf `i`. Index 0 unused.
    win: Vec<u32>,
    /// Current key per leaf (`INFINITY` beyond `n` or when cleared).
    key: Vec<f64>,
}

impl FinishQueue {
    /// A queue over slots `0..n`, all initially vacant (`INFINITY`).
    pub fn new(n: usize) -> Self {
        let base = n.next_power_of_two().max(1);
        let mut win = vec![0u32; 2 * base];
        for i in 0..base {
            win[base + i] = i as u32;
        }
        // Fill interior matches bottom-up; all keys tie at INFINITY, so
        // every match resolves to the lower index.
        let mut q = FinishQueue { n, base, win, key: vec![f64::INFINITY; base] };
        for i in (1..base).rev() {
            q.win[i] = q.winner(q.win[2 * i], q.win[2 * i + 1]);
        }
        q
    }

    /// The match winner: first (lower-index) minimal key, matching the
    /// `min_by` semantics of the linear scan this structure replaces.
    fn winner(&self, l: u32, r: u32) -> u32 {
        if self.key[l as usize].total_cmp(&self.key[r as usize]) != std::cmp::Ordering::Greater {
            l
        } else {
            r
        }
    }

    /// Set slot `i`'s key and replay its O(log n) matches up the tree.
    pub fn set(&mut self, i: usize, k: f64) {
        debug_assert!(i < self.n, "slot {i} out of range (n = {})", self.n);
        self.key[i] = k;
        let mut node = (self.base + i) / 2;
        while node >= 1 {
            self.win[node] = self.winner(self.win[2 * node], self.win[2 * node + 1]);
            node /= 2;
        }
    }

    /// Mark slot `i` vacant (its key becomes `INFINITY`).
    pub fn clear(&mut self, i: usize) {
        self.set(i, f64::INFINITY);
    }

    /// The occupied slot with the smallest key (lowest index on ties),
    /// or `None` when every slot is vacant.
    pub fn min(&self) -> Option<(usize, f64)> {
        let w = self.win[1] as usize;
        let k = self.key[w];
        if k.is_infinite() && k > 0.0 {
            return None;
        }
        Some((w, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_util::rand::rngs::StdRng;
    use triad_util::rand::{RngExt, SeedableRng};

    /// The linear scan the queue replaces, `min_by`-style (first minimal).
    fn reference_min(keys: &[f64]) -> Option<(usize, f64)> {
        keys.iter()
            .enumerate()
            .filter(|(_, k)| k.is_finite())
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, &k)| (i, k))
    }

    #[test]
    fn empty_and_single() {
        let q = FinishQueue::new(0);
        assert_eq!(q.min(), None);
        let mut q = FinishQueue::new(1);
        assert_eq!(q.min(), None);
        q.set(0, 3.5);
        assert_eq!(q.min(), Some((0, 3.5)));
        q.clear(0);
        assert_eq!(q.min(), None);
    }

    #[test]
    fn ties_break_to_lowest_index() {
        for n in [2usize, 3, 5, 8] {
            let mut q = FinishQueue::new(n);
            for i in 0..n {
                q.set(i, 1.0);
            }
            assert_eq!(q.min(), Some((0, 1.0)), "n = {n}");
            q.clear(0);
            assert_eq!(q.min(), Some((1, 1.0)), "n = {n}");
            // Re-occupying slot 0 with the same key must win again.
            q.set(0, 1.0);
            assert_eq!(q.min(), Some((0, 1.0)), "n = {n}");
        }
    }

    #[test]
    fn random_updates_match_linear_scan() {
        let mut rng = StdRng::seed_from_u64(2020);
        for n in [1usize, 2, 3, 4, 7, 8, 13, 64] {
            let mut q = FinishQueue::new(n);
            let mut keys = vec![f64::INFINITY; n];
            for _ in 0..500 {
                let i = rng.random_range(0..n as u64) as usize;
                if rng.random_bool(0.2) {
                    q.clear(i);
                    keys[i] = f64::INFINITY;
                } else {
                    // Coarse values force frequent exact ties.
                    let k = (rng.random_range(0..8u64) as f64) * 0.25;
                    q.set(i, k);
                    keys[i] = k;
                }
                assert_eq!(q.min(), reference_min(&keys), "n = {n}");
            }
        }
    }
}
