//! The workload subsystem's determinism guard: every generator kind
//! materializes **byte-identical** `triad-workload/v1` JSON for a fixed
//! seed — including when the materialization happens concurrently on any
//! number of worker threads — and distinct seeds produce distinct traces.

use triad_util::par;
use triad_workload::{ArrivalProcess, Scenario, Stage, WorkloadSpec};

/// One spec of every generator kind, parameterized by seed.
fn kinds(seed: u64) -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::Steady { n_cores: 4, scenario: None, seed },
        WorkloadSpec::Steady { n_cores: 4, scenario: Some(Scenario::S1), seed },
        WorkloadSpec::Phased {
            n_cores: 4,
            seed,
            stages: vec![
                Stage { scenario: Some(Scenario::S1), intervals: 12 },
                Stage { scenario: None, intervals: 12 },
                Stage { scenario: Some(Scenario::S3), intervals: 12 },
            ],
        },
        WorkloadSpec::Bursty {
            n_cores: 4,
            seed,
            arrival: ArrivalProcess::Poisson { mean_gap: 2.5 },
            mean_service: 8,
            horizon: 96,
            scenario: None,
        },
        WorkloadSpec::Bursty {
            n_cores: 4,
            seed,
            arrival: ArrivalProcess::Mmpp { mean_gap: [12.0, 1.5], mean_dwell: [24.0, 12.0] },
            mean_service: 8,
            horizon: 96,
            scenario: Some(Scenario::S2),
        },
        WorkloadSpec::Churn {
            n_cores: 4,
            seed,
            period: 6,
            horizon: 72,
            scenario: None,
            pool: Vec::new(),
        },
        WorkloadSpec::Scaled { n_cores: 4, seed, copies: 2, segment: 8 },
    ]
}

fn trace_json(spec: &WorkloadSpec) -> String {
    spec.materialize().expect("spec materializes").to_json().to_string_pretty()
}

#[test]
fn fixed_seed_yields_byte_identical_traces_at_any_thread_count() {
    let specs = kinds(2020);
    let reference: Vec<String> = specs.iter().map(trace_json).collect();
    for threads in [1usize, 2, 4, 0] {
        // Materialize the whole batch concurrently: worker scheduling must
        // not leak into the bytes (all randomness is seeded per spec).
        let concurrent = par::par_map(&specs, threads, trace_json);
        assert_eq!(concurrent, reference, "threads={threads}");
    }
    // And fingerprints are stable with the bytes.
    let fp: Vec<String> = specs.iter().map(|s| s.materialize().unwrap().fingerprint()).collect();
    let fp2: Vec<String> = specs.iter().map(|s| s.materialize().unwrap().fingerprint()).collect();
    assert_eq!(fp, fp2);
}

#[test]
fn distinct_seeds_yield_distinct_traces() {
    for (a, b) in kinds(1).iter().zip(&kinds(2)) {
        assert_eq!(a.label(), b.label());
        assert_ne!(
            trace_json(a),
            trace_json(b),
            "{}: seeds 1 and 2 must generate different traces",
            a.label()
        );
        assert_ne!(a.materialize().unwrap().fingerprint(), b.materialize().unwrap().fingerprint());
    }
}
