//! Substrate throughput benches: cache classification, the out-of-order
//! timing model, the ATD+MLP monitor and the global curve reduction.
//!
//! Run with `cargo bench -p triad-bench --bench substrate`.

use std::hint::black_box;
use std::time::Duration;
use triad_arch::{CacheGeometry, CoreSize};
use triad_cache::{classify, Atd, MlpMonitor};
use triad_rm::{optimize_partition, EnergyCurve};
use triad_trace::{MemRegion, PhaseSpec};
use triad_uarch::{TimingConfig, TimingEngine};
use triad_util::bench::bench;

const BUDGET: Duration = Duration::from_millis(400);

fn spec() -> PhaseSpec {
    PhaseSpec {
        tag: 1,
        load_frac: 0.24,
        store_frac: 0.06,
        branch_frac: 0.12,
        longop_frac: 0.10,
        mispredict_rate: 0.02,
        dep_mean: 8.0,
        dep2_prob: 0.3,
        chase_frac: 0.1,
        burst: 1.0,
        addr_dep: 0.2,
        regions: vec![MemRegion::reuse_kib(8, 0.7), MemRegion::reuse_kib(200, 0.3)],
    }
}

fn bench_classify() {
    let t = spec().generate(64_000, 1);
    let geom = CacheGeometry::table1_scaled(4, 16);
    bench("classify/l1_l2_atd_pass", Some(t.len() as u64), BUDGET, || {
        black_box(classify(&t, &geom));
    });
}

fn bench_timing() {
    let t = spec().generate(64_000, 1);
    let geom = CacheGeometry::table1_scaled(4, 16);
    let ct = classify(&t, &geom);
    let mut engine = TimingEngine::new();
    for core in CoreSize::ALL {
        bench(&format!("timing/ooo_model_{core}"), Some(t.len() as u64), BUDGET, || {
            black_box(engine.simulate(&t.insts, &ct, &TimingConfig::table1(core, 2.0e9, 8)));
        });
        // The lockstep grid unit: all 15 allocations in one trace pass.
        bench(
            &format!("timing/ooo_lockstep_ways_{core}"),
            Some(15 * t.len() as u64),
            BUDGET,
            || {
                black_box(engine.simulate_ways(&t.insts, &ct, core, 2.0e9, 2..=16));
            },
        );
    }
}

fn bench_monitors() {
    // Monitors constructed outside the timed closure: the measurement is
    // steady-state access throughput, not allocation/cold-start cost.
    let mut atd = Atd::table1();
    let mut x = 0u64;
    bench("monitors/atd_access", Some(10_000), BUDGET, || {
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(atd.access((x >> 16) & 0xFFFF_FFC0));
        }
    });
    let mut mon = MlpMonitor::table1();
    let mut x = 0u64;
    let mut i = 0u64;
    bench("monitors/mlp_monitor_load", Some(10_000), BUDGET, || {
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            mon.on_llc_load(i * 7, (x % 20) as u8);
            i += 1;
        }
    });
}

fn bench_global() {
    for n in [2usize, 4, 8, 16] {
        let curves: Vec<EnergyCurve> = (0..n)
            .map(|i| EnergyCurve {
                min_w: 2,
                energy: (0..15).map(|w| ((w + i) % 7) as f64 + 0.1).collect(),
            })
            .collect();
        bench(&format!("global_optimizer/reduce_{n}_cores"), None, BUDGET, || {
            black_box(optimize_partition(&curves, 8 * n));
        });
    }
}

fn main() {
    bench_classify();
    bench_timing();
    bench_monitors();
    bench_global();
}
