//! SimPoint-pipeline integration: the k-means clusterer must recover each
//! application's designed phase structure from its noisy interval BBVs.

use triad::simpoint::analyze;
use triad::trace::{bbv::interval_bbvs, suite};

#[test]
fn simpoint_recovers_designed_phases_for_every_app() {
    for app in suite() {
        let bbvs = interval_bbvs(&app, 0.02, 11);
        let analysis = analyze(&bbvs, 6, 3);
        assert_eq!(
            analysis.n_phases(),
            app.phases.len(),
            "{}: expected {} phases",
            app.name,
            app.phases.len()
        );
        // Labels must be consistent with the designed sequence (same
        // partition, up to renaming).
        for i in 0..app.sequence.len() {
            for j in (i + 1)..app.sequence.len() {
                assert_eq!(
                    app.sequence[i] == app.sequence[j],
                    analysis.labels[i] == analysis.labels[j],
                    "{}: intervals {i},{j} partition mismatch",
                    app.name
                );
            }
        }
        let wsum: f64 = analysis.weights.iter().sum();
        assert!((wsum - 1.0).abs() < 1e-9);
    }
}
