//! The online analytical performance and energy models (Eq. 1–5).
//!
//! All quantities are per instruction: with a fixed interval length the QoS
//! comparison (Eq. 3) and the energy objective are invariant to the
//! normalization.

use crate::local::IntervalModel;
use triad_arch::{CoreSize, DvfsGrid, Setting};
use triad_energy::EnergyBackend;
use triad_phasedb::{cw, MonitorStats};

/// Which memory-time estimator the performance model uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// `Tmem = misses(w) × L_mem` — no MLP correction at all.
    Model1,
    /// `Tmem = misses(w) / MLP_i × L_mem` — the constant measured-MLP
    /// assumption of the prior-art RM (Nejat et al., IPDPS 2019).
    Model2,
    /// `Tmem = LM_i(c, w) × L_mem` — the proposed per-(core size,
    /// allocation) leading-miss estimates from the ATD extension (Fig. 4).
    Model3,
}

impl ModelKind {
    /// All online models, in paper order.
    pub const ALL: [ModelKind; 3] = [ModelKind::Model1, ModelKind::Model2, ModelKind::Model3];

    /// Display label ("Model1"…).
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Model1 => "Model1",
            ModelKind::Model2 => "Model2",
            ModelKind::Model3 => "Model3",
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Everything the RM is allowed to observe about one core after an interval
/// executed at `current`: the hardware performance counters, the ATD
/// curves, the proposed monitor's LM matrix, and a power sample.
#[derive(Debug, Clone)]
pub struct Observation<'a> {
    /// Monitor statistics collected at the current `(c, w)` setting.
    pub stats: &'a MonitorStats,
    /// ATD miss curve (misses/instruction for `w = 1..=16`, loads+stores).
    pub miss_curve_pi: &'a [f64],
    /// Load-only miss curve (same indexing).
    pub load_miss_curve_pi: &'a [f64],
    /// The setting the interval executed at.
    pub current: Setting,
    /// Sampled core dynamic power over the interval, watts (§III-D: total
    /// measured core power minus the offline static table).
    pub sampled_dyn_w: f64,
}

/// The paper's analytical model (Eq. 1–5) over one core's observation.
pub struct OnlineModel<'a> {
    /// The observation driving the prediction.
    pub obs: Observation<'a>,
    /// Memory-time estimator flavor.
    pub kind: ModelKind,
    /// DVFS grid (maps `VfIndex` to voltage/frequency).
    pub grid: &'a DvfsGrid,
    /// Offline power tables (static power per size/VF; dynamic capacitance
    /// ratios between sizes) — any [`EnergyBackend`].
    pub energy: &'a dyn EnergyBackend,
    /// Main-memory access latency `L_mem` (Eq. 2), seconds.
    pub lmem_s: f64,
}

impl<'a> OnlineModel<'a> {
    /// Predicted memory stall time per instruction at `(c, w)` (Eq. 2).
    pub fn tmem_pi(&self, c: CoreSize, w: usize) -> f64 {
        let load_misses = self.obs.load_miss_curve_pi[w - 1];
        match self.kind {
            ModelKind::Model1 => load_misses * self.lmem_s,
            ModelKind::Model2 => load_misses / self.obs.stats.mlp_avg.max(1.0) * self.lmem_s,
            ModelKind::Model3 => self.obs.stats.lm_pi[cw(c, w)] * self.lmem_s,
        }
    }

    /// Eq. 1: predicted execution time per instruction at `s`.
    ///
    /// `T = (T0·D_i/D(c) + T1) · f_i/f + Tmem(c, w)`, evaluated here in the
    /// equivalent cycle-counter form `(c0·D_i/D(c) + c_br + c_cache)/f`.
    pub fn time_pi(&self, s: Setting) -> f64 {
        let st = self.obs.stats;
        let d_ratio =
            self.obs.current.core.dispatch_width() as f64 / s.core.dispatch_width() as f64;
        let f = self.grid.point(s.vf).freq_hz;
        (st.c0_cpi * d_ratio + st.c_branch_cpi + st.c_cache_cpi) / f + self.tmem_pi(s.core, s.ways)
    }

    /// Eq. 4–5: predicted energy per instruction at `s`.
    ///
    /// Dynamic power is extrapolated from the sampled value via the offline
    /// capacitance ratio between core sizes and `V²f` scaling (we include
    /// the frequency factor the physics requires; at equal frequency it
    /// reduces to the paper's `V²/V*²`). Static power comes from the
    /// offline table. Memory energy is `(MA + ΔM(w)) · e_mem`.
    pub fn energy_pi(&self, s: Setting) -> f64 {
        let cur_vf = self.grid.point(self.obs.current.vf);
        let vf = self.grid.point(s.vf);
        let cap_ratio = self.energy.dyn_ratio(s.core, self.obs.current.core);
        let p_dyn = self.obs.sampled_dyn_w * cap_ratio * (vf.volt * vf.volt * vf.freq_hz)
            / (cur_vf.volt * cur_vf.volt * cur_vf.freq_hz);
        let p_static = self.energy.core_static_power(s.core, vf);
        let t = self.time_pi(s);
        let dm =
            self.obs.miss_curve_pi[s.ways - 1] - self.obs.miss_curve_pi[self.obs.current.ways - 1];
        let e_mem = (self.obs.stats.ma_pi + dm) * self.energy.dram_energy_per_access_j();
        (p_dyn + p_static) * t + e_mem.max(0.0)
    }
}

impl<'a> IntervalModel for OnlineModel<'a> {
    fn predict(&self, s: Setting) -> (f64, f64) {
        (self.time_pi(s), self.energy_pi(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_energy::EnergyModel;
    use triad_phasedb::{NC, NW};

    fn stats() -> MonitorStats {
        MonitorStats {
            c0_cpi: 0.4,
            c_branch_cpi: 0.05,
            c_cache_cpi: 0.10,
            tmem_spi: 1.0e-9,
            mlp_avg: 4.0,
            lm_pi: vec![0.002; NC * NW],
            ma_pi: 0.01,
        }
    }

    fn curves() -> (Vec<f64>, Vec<f64>) {
        // misses halve from w=1 to w=16.
        let total: Vec<f64> = (0..16).map(|i| 0.02 - 0.001 * i as f64).collect();
        let loads: Vec<f64> = total.iter().map(|x| x * 0.8).collect();
        (total, loads)
    }

    fn harness<'a>(
        stats: &'a MonitorStats,
        total: &'a [f64],
        loads: &'a [f64],
        grid: &'a DvfsGrid,
        em: &'a EnergyModel,
        kind: ModelKind,
    ) -> OnlineModel<'a> {
        OnlineModel {
            obs: Observation {
                stats,
                miss_curve_pi: total,
                load_miss_curve_pi: loads,
                current: Setting::new(CoreSize::M, grid.baseline, 8),
                sampled_dyn_w: 2.0,
            },
            kind,
            grid,
            energy: em,
            lmem_s: 100e-9,
        }
    }

    #[test]
    fn eq1_hand_computed() {
        let grid = DvfsGrid::table1();
        let em = EnergyModel::default_model();
        let (total, loads) = curves();
        let st = stats();
        let m = harness(&st, &total, &loads, &grid, &em, ModelKind::Model2);
        // At baseline (M, 2 GHz, 8w): T = (0.4 + 0.05 + 0.10)/2e9 + loads(8)/4·100ns.
        let t = m.time_pi(Setting::new(CoreSize::M, grid.baseline, 8));
        let expected = 0.55 / 2.0e9 + (0.013 * 0.8) / 4.0 * 100e-9;
        assert!((t - expected).abs() < 1e-15, "{t} vs {expected}");
    }

    #[test]
    fn width_ratio_scales_only_t0() {
        let grid = DvfsGrid::table1();
        let em = EnergyModel::default_model();
        let (total, loads) = curves();
        let st = stats();
        let m = harness(&st, &total, &loads, &grid, &em, ModelKind::Model2);
        let t_m = m.time_pi(Setting::new(CoreSize::M, grid.baseline, 8));
        let t_l = m.time_pi(Setting::new(CoreSize::L, grid.baseline, 8));
        // L halves the c0 component only (D_i/D(c) = 4/8).
        let delta = t_m - t_l;
        assert!((delta - 0.5 * 0.4 / 2.0e9).abs() < 1e-15);
    }

    #[test]
    fn frequency_scales_compute_not_memory() {
        let grid = DvfsGrid::table1();
        let em = EnergyModel::default_model();
        let (total, loads) = curves();
        let st = stats();
        let m = harness(&st, &total, &loads, &grid, &em, ModelKind::Model3);
        let s_lo = Setting::new(CoreSize::M, 0, 8);
        let s_hi = Setting::new(CoreSize::M, 9, 8);
        let t_lo = m.time_pi(s_lo);
        let t_hi = m.time_pi(s_hi);
        let mem = m.tmem_pi(CoreSize::M, 8);
        // Compute parts scale exactly with 1/f; memory part is constant.
        let c_lo = t_lo - mem;
        let c_hi = t_hi - mem;
        assert!((c_lo / c_hi - 3.25).abs() < 1e-9);
    }

    #[test]
    fn model_ordering_on_memory_time() {
        // Model1 (MLP=1) must predict the largest memory time; Model3 uses
        // the LM matrix directly.
        let grid = DvfsGrid::table1();
        let em = EnergyModel::default_model();
        let (total, loads) = curves();
        let st = stats();
        let m1 = harness(&st, &total, &loads, &grid, &em, ModelKind::Model1);
        let m2 = harness(&st, &total, &loads, &grid, &em, ModelKind::Model2);
        let m3 = harness(&st, &total, &loads, &grid, &em, ModelKind::Model3);
        let t1 = m1.tmem_pi(CoreSize::M, 8);
        let t2 = m2.tmem_pi(CoreSize::M, 8);
        let t3 = m3.tmem_pi(CoreSize::M, 8);
        assert!(t1 > t2, "Model1 {t1} must exceed Model2 {t2}");
        assert!((t1 / t2 - 4.0).abs() < 1e-9, "Model2 divides by MLP=4");
        assert!((t3 - 0.002 * 100e-9).abs() < 1e-15);
    }

    #[test]
    fn model3_memory_time_varies_with_core_size() {
        let grid = DvfsGrid::table1();
        let em = EnergyModel::default_model();
        let (total, loads) = curves();
        let mut st = stats();
        // L core overlaps twice as well as S at w=8.
        st.lm_pi[cw(CoreSize::S, 8)] = 0.004;
        st.lm_pi[cw(CoreSize::L, 8)] = 0.002;
        let m = harness(&st, &total, &loads, &grid, &em, ModelKind::Model3);
        assert!(m.tmem_pi(CoreSize::S, 8) > m.tmem_pi(CoreSize::L, 8));
        // Model2 cannot see this.
        let m2 = harness(&st, &total, &loads, &grid, &em, ModelKind::Model2);
        assert_eq!(m2.tmem_pi(CoreSize::S, 8), m2.tmem_pi(CoreSize::L, 8));
    }

    #[test]
    fn energy_grows_quadratically_with_vf_for_compute() {
        let grid = DvfsGrid::table1();
        let em = EnergyModel::default_model();
        // No memory at all: pure compute.
        let total = vec![0.0; 16];
        let loads = vec![0.0; 16];
        let mut st = stats();
        st.ma_pi = 0.0;
        st.lm_pi = vec![0.0; NC * NW];
        let m = harness(&st, &total, &loads, &grid, &em, ModelKind::Model3);
        let e_lo = m.energy_pi(Setting::new(CoreSize::M, 0, 8));
        let e_hi = m.energy_pi(Setting::new(CoreSize::M, 9, 8));
        // Energy/instruction for pure compute ∝ V² (f cancels against time).
        let v_lo = grid.point(0).volt;
        let v_hi = grid.point(9).volt;
        let dyn_ratio = (v_hi / v_lo).powi(2);
        assert!(e_hi > e_lo, "higher VF must cost energy: {e_lo} vs {e_hi}");
        // The dynamic component must scale by exactly V² (static dilutes it).
        assert!(e_hi / e_lo < dyn_ratio, "static share must dilute the V² growth");
    }

    #[test]
    fn energy_accounts_for_extra_misses() {
        let grid = DvfsGrid::table1();
        let em = EnergyModel::default_model();
        let (total, loads) = curves();
        let st = stats();
        let m = harness(&st, &total, &loads, &grid, &em, ModelKind::Model3);
        let e8 = m.energy_pi(Setting::new(CoreSize::M, grid.baseline, 8));
        let e2 = m.energy_pi(Setting::new(CoreSize::M, grid.baseline, 2));
        // Fewer ways ⇒ more misses ⇒ ΔM > 0 ⇒ more memory energy (time is
        // also slightly longer via Model3's LM, but lm_pi is flat here).
        let dm = (total[1] - total[7]) * em.dram_energy_per_access_j;
        assert!(e2 > e8);
        assert!((e2 - e8 - dm).abs() < 1e-15, "{}", e2 - e8);
    }
}
