//! Out-of-order timing-model inner-loop cost per simulated RM interval.
//!
//! The ROADMAP's hot-path item: database builds are dominated by the
//! out-of-order timing model — every phase runs it over the whole
//! (core size × frequency × ways) grid, and each run replays one detailed
//! interval (the scaled 100M-instruction window). This bench measures both
//! engine modes for a memory-bound and a compute-bound phase:
//!
//! * **scalar** — one [`TimingEngine::simulate`] call per interval (the
//!   legacy unit; ns/instruction),
//! * **batched** — one [`TimingEngine::simulate_ways`] lockstep pass over
//!   the full 15-allocation ways grid (ns per instruction·grid-point), and
//! * **fused** — one [`TimingEngine::simulate_lanes`] pass over the
//!   database build's 30-lane mixed-frequency plan, versus the two
//!   single-frequency passes it replaced.
//!
//! Run with `cargo bench -p triad-bench --bench timing_model`; set
//! `TRIAD_BENCH_BUDGET_MS` to shrink the measurement window (CI smoke).

use std::hint::black_box;
use std::time::Duration;
use triad_arch::{CacheGeometry, CoreSize};
use triad_cache::classify_warm;
use triad_phasedb::{DbConfig, W_MAX, W_MIN};
use triad_uarch::{LaneSpec, TimingConfig, TimingEngine};
use triad_util::bench::{bench, budget_from_env, speedup_gate};

/// PR 4 baseline (reference dev box, 2026-07-28, release build): the
/// pre-engine scalar inner loop retired ~35 ns/instruction — and paid that
/// for *each* of the 15 way allocations of a grid sweep.
const PR4_BASELINE_NS_PER_INST: f64 = 35.0;

/// Recorded with the lockstep engine (same box, 2026-07-28): scalar
/// single-allocation cost. Not asserted tightly — hardware varies — but a
/// >50× regression fails.
const SCALAR_BASELINE_NS_PER_INST: f64 = 30.0;

/// Recorded with the lockstep engine (same box, 2026-07-28): batched cost
/// per instruction·grid-point over the 15-way sweep — ~3× under the PR 4
/// per-allocation number because the trace, its classification codes and
/// the dependence decode are touched once instead of 15×.
const BATCHED_BASELINE_NS_PER_GRID_INST: f64 = 10.5;

/// Recorded with the fused mixed-frequency engine (same box, 2026-08-07):
/// the 30-lane pass costs ~11.5 ns/(inst·lane) on the memory-bound
/// archetype (nothing dedups) and ~1.3 ns/(inst·lane) on the streaming
/// archetype (way-equivalent lanes collapse to one representative).
const FUSED_BASELINE_NS_PER_LANE_INST: f64 = 11.5;

fn main() {
    let cfg = DbConfig::default_config();
    let geom = CacheGeometry::table1_scaled(4, cfg.scale);
    let budget = budget_from_env(Duration::from_secs(2));
    let nw = (W_MIN..=W_MAX).count() as f64;

    let mut worst_scalar = 0.0f64;
    let mut worst_batched = 0.0f64;
    let mut worst_fused = 0.0f64;
    let mut worst_ratio = f64::INFINITY;
    let mut engine = TimingEngine::new();
    for name in ["mcf", "povray"] {
        let app = triad_trace::suite().into_iter().find(|a| a.name == name).unwrap();
        let phase = app.phases[0].scaled(cfg.scale as u64);
        let trace = phase.generate(cfg.warmup + cfg.detail, cfg.seed);
        let ct = classify_warm(&trace, &geom, cfg.warmup);
        let detailed = &trace.insts[cfg.warmup..];
        let n = detailed.len() as f64;

        // The paper's baseline operating point: medium core, 2 GHz, 8 ways.
        let tc = TimingConfig::table1(CoreSize::M, 2.0e9, 8);
        let m = bench(
            &format!("timing_model/scalar_{name}"),
            Some(detailed.len() as u64),
            budget,
            || {
                black_box(engine.simulate(detailed, &ct, &tc));
            },
        );
        let scalar_ns = m.secs_per_iter * 1e9 / n;

        // The grid-sweep unit: all 15 allocations in one lockstep pass.
        let m = bench(
            &format!("timing_model/batched_ways_{name}"),
            Some((n * nw) as u64),
            budget,
            || {
                black_box(engine.simulate_ways(detailed, &ct, CoreSize::M, 2.0e9, W_MIN..=W_MAX));
            },
        );
        let batched_ns = m.secs_per_iter * 1e9 / (n * nw);
        let ratio = scalar_ns / batched_ns;
        println!(
            "timing_model/{name:<10} scalar {scalar_ns:>6.1} ns/inst   batched {batched_ns:>6.1} \
             ns/(inst*way)   lockstep speedup {ratio:>5.2}x"
        );

        // The db build's fused unit: both fit frequencies as one 30-lane
        // pass, against the two single-frequency passes it replaced.
        let lanes: Vec<LaneSpec> = (W_MIN..=W_MAX)
            .flat_map(|w| [LaneSpec::new(w, cfg.fit_lo_hz), LaneSpec::new(w, cfg.fit_hi_hz)])
            .collect();
        let lane_cfg = TimingConfig::table1(CoreSize::M, cfg.fit_lo_hz, W_MIN);
        let two_pass = bench(
            &format!("timing_model/two_pass_2f_{name}"),
            Some((n * nw * 2.0) as u64),
            budget,
            || {
                black_box(engine.simulate_ways(
                    detailed,
                    &ct,
                    CoreSize::M,
                    cfg.fit_lo_hz,
                    W_MIN..=W_MAX,
                ));
                black_box(engine.simulate_ways(
                    detailed,
                    &ct,
                    CoreSize::M,
                    cfg.fit_hi_hz,
                    W_MIN..=W_MAX,
                ));
            },
        );
        let fused = bench(
            &format!("timing_model/fused_2f_{name}"),
            Some((n * nw * 2.0) as u64),
            budget,
            || {
                black_box(engine.simulate_lanes(detailed, &ct, &lane_cfg, &lanes, &mut []));
            },
        );
        let fused_ns = fused.secs_per_iter * 1e9 / (n * nw * 2.0);
        let fused_ratio = two_pass.secs_per_iter / fused.secs_per_iter;
        println!(
            "timing_model/{name:<10} fused 30-lane {fused_ns:>6.1} ns/(inst*lane)   \
             fused-over-two-pass {fused_ratio:>5.2}x"
        );
        worst_scalar = worst_scalar.max(scalar_ns);
        worst_batched = worst_batched.max(batched_ns);
        worst_fused = worst_fused.max(fused_ns);
        worst_ratio = worst_ratio.min(ratio);
    }
    println!(
        "timing_model/baseline   PR4 {PR4_BASELINE_NS_PER_INST:.1} ns/inst per allocation -> \
         scalar {SCALAR_BASELINE_NS_PER_INST:.1} ns/inst + batched \
         {BATCHED_BASELINE_NS_PER_GRID_INST:.1} ns/(inst*way) (recorded 2026-07-28) -> \
         fused {FUSED_BASELINE_NS_PER_LANE_INST:.1} ns/(inst*lane) (recorded 2026-08-07)"
    );

    // Hard gates. The lockstep claim is machine-relative (both sides
    // measured in this process), so it holds on slow CI runners too —
    // short smoke budgets get a noise-tolerant threshold; the absolute
    // guards only catch catastrophic (>50x) regressions.
    let gate = speedup_gate(budget);
    assert!(
        worst_ratio >= gate,
        "lockstep batching must sweep the ways grid >={gate}x faster than scalar calls \
         (got {worst_ratio:.2}x)"
    );
    assert!(
        worst_scalar < SCALAR_BASELINE_NS_PER_INST * 50.0,
        "scalar inner loop regressed catastrophically: {worst_scalar:.1} ns/inst \
         vs recorded {SCALAR_BASELINE_NS_PER_INST:.1}"
    );
    assert!(
        worst_batched < BATCHED_BASELINE_NS_PER_GRID_INST * 50.0,
        "batched inner loop regressed catastrophically: {worst_batched:.1} ns/(inst*way) \
         vs recorded {BATCHED_BASELINE_NS_PER_GRID_INST:.1}"
    );
    assert!(
        worst_fused < FUSED_BASELINE_NS_PER_LANE_INST * 50.0,
        "fused mixed-frequency pass regressed catastrophically: {worst_fused:.1} ns/(inst*lane) \
         vs recorded {FUSED_BASELINE_NS_PER_LANE_INST:.1}"
    );
}
