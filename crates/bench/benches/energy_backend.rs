//! Per-interval power-evaluation cost under each energy backend.
//!
//! Every RM invocation evaluates core power across the candidate
//! `(c, vf, util)` space, so backend lookup cost sits on the hot path the
//! ROADMAP's profiling item tracks. This bench measures one "interval's
//! worth" of accounting — a full sweep of the setting grid plus the DRAM
//! and uncore terms — per backend, and asserts the table backend's
//! interpolated lookups stay within 3× of the parametric closed form.
//! Run with `cargo bench -p triad-bench --bench energy_backend`.

use std::hint::black_box;
use std::time::Duration;
use triad_arch::{CoreSize, DvfsGrid};
use triad_energy::{EnergyBackend, EnergyModel, ScaledBackend, TableBackend, TechNode};
use triad_util::bench::bench;

/// One interval's accounting: power over the whole candidate grid, plus
/// the memory-side terms the simulator charges per interval.
fn interval_accounting(em: &dyn EnergyBackend, grid: &DvfsGrid, utils: &[f64]) -> f64 {
    let mut acc = 0.0;
    for c in CoreSize::ALL {
        for (_, vf) in grid.iter() {
            for &u in utils {
                acc += em.core_power(c, vf, u);
            }
        }
    }
    acc + em.dram_energy(1_000) + em.uncore_energy(8, 1e-3)
}

fn main() {
    let grid = DvfsGrid::table1();
    let utils: Vec<f64> = (0..8).map(|i| i as f64 / 7.0).collect();
    let evals = (CoreSize::COUNT * grid.len() * utils.len()) as u64;

    let parametric = EnergyModel::default_model();
    let table = TableBackend::sampled_from(&parametric, grid.points(), "bench");
    let scaled = ScaledBackend::new(parametric, TechNode::by_name("14nm").unwrap());

    let backends: [(&str, &dyn EnergyBackend); 3] =
        [("mcpat", &parametric), ("table", &table), ("scaled_14nm", &scaled)];

    let budget = Duration::from_secs(2);
    let mut per_iter = Vec::new();
    for (name, em) in backends {
        let m =
            bench(&format!("energy_backend/interval_power_{name}"), Some(evals), budget, || {
                black_box(interval_accounting(em, &grid, &utils));
            });
        per_iter.push((name, m.secs_per_iter));
    }

    let parametric_s = per_iter[0].1;
    let table_s = per_iter[1].1;
    let ratio = table_s / parametric_s;
    println!("energy_backend/table_vs_parametric       {ratio:>12.2}x");
    assert!(
        ratio <= 3.0,
        "table-backend interval accounting must stay within 3x of the parametric \
         closed form (got {ratio:.2}x)"
    );
}
