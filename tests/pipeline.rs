//! End-to-end integration: trace generation → detailed simulation →
//! database → RM controllers → interval simulation, across crates.

use triad::phasedb::{build_apps, DbConfig};
use triad::rm::{ModelKind, RmKind};
use triad::sim::engine::{SimConfig, SimModel, Simulator};

fn db(names: &[&str]) -> triad::phasedb::PhaseDb {
    let apps: Vec<_> =
        triad::trace::suite().into_iter().filter(|a| names.contains(&a.name)).collect();
    assert_eq!(apps.len(), names.len(), "unknown application in {names:?}");
    build_apps(&apps, &DbConfig::fast())
}

fn quick(mut cfg: SimConfig) -> SimConfig {
    cfg.target_intervals = 8;
    cfg
}

#[test]
fn perfect_rm3_saves_energy_without_violations_end_to_end() {
    let names = ["mcf", "povray"];
    let db = db(&names);
    let idle = Simulator::new(&db, 2, quick(SimConfig::idle())).run(&names);
    let rm3 = Simulator::new(&db, 2, quick(SimConfig::perfect(RmKind::Rm3))).run(&names);
    assert!(rm3.savings_vs(&idle) > 0.0);
    assert_eq!(rm3.qos_violations, 0);
}

#[test]
fn controller_hierarchy_holds_under_perfect_model() {
    let names = ["libquantum", "mcf"];
    let db = db(&names);
    let idle = Simulator::new(&db, 2, quick(SimConfig::idle())).run(&names);
    let mut last = f64::NEG_INFINITY;
    for rm in [RmKind::Rm1, RmKind::Rm2, RmKind::Rm3] {
        let r = Simulator::new(&db, 2, quick(SimConfig::perfect(rm))).run(&names);
        let s = r.savings_vs(&idle);
        assert!(s >= last - 0.01, "{rm}: {s} must not fall below {last}");
        last = s;
    }
}

#[test]
fn online_models_run_all_controllers_on_four_cores() {
    let names = ["mcf", "libquantum", "gcc", "povray"];
    let db = db(&names);
    let idle = Simulator::new(&db, 4, quick(SimConfig::idle())).run(&names);
    for mk in ModelKind::ALL {
        let cfg = quick(SimConfig::evaluation(RmKind::Rm3, SimModel::Online(mk)));
        let r = Simulator::new(&db, 4, cfg).run(&names);
        assert!(r.rm_invocations > 0, "{mk}");
        assert!(
            r.savings_vs(&idle) > -0.10,
            "{mk} should not waste more than 10%: {}",
            r.savings_vs(&idle)
        );
    }
}

#[test]
fn simulation_is_deterministic_across_runs() {
    let names = ["gcc", "libquantum"];
    let db = db(&names);
    let cfg = quick(SimConfig::evaluation(RmKind::Rm3, SimModel::Online(ModelKind::Model3)));
    let a = Simulator::new(&db, 2, cfg.clone()).run(&names);
    let b = Simulator::new(&db, 2, cfg).run(&names);
    assert_eq!(a.total_energy_j, b.total_energy_j);
    assert_eq!(a.rm_ops, b.rm_ops);
}

#[test]
fn rm3full_downsizing_rarely_beats_rm3() {
    // The paper's §II remark: allowing the smallest core size adds little.
    // (Rm3Full may still differ; it must at least run and respect QoS
    // under the perfect model.)
    let names = ["povray", "gamess"];
    let db = db(&names);
    let r = Simulator::new(&db, 2, quick(SimConfig::perfect(RmKind::Rm3Full))).run(&names);
    assert_eq!(r.qos_violations, 0);
}
