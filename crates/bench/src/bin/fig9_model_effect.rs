//! Fig. 9: RM3 energy savings under Model1/Model2/Model3 versus the
//! perfect-model bound.
use triad_bench::{db, pct};
use triad_sim::experiments::fig9;

fn main() {
    let db = db();
    for n_cores in [4usize, 8] {
        println!("FIG. 9 ({n_cores}-core): RM3 savings by performance model");
        println!("==========================================================");
        println!("{:<11} {:<11} {:>8} {:>8} {:>8} {:>8}", "workload", "scenario", "Model1", "Model2", "Model3", "perfect");
        let rows = fig9(db, n_cores, 2020);
        let mut avg = [0.0f64; 4];
        for r in &rows {
            println!(
                "{:<11} {:<11} {:>8} {:>8} {:>8} {:>8}",
                r.workload.name,
                r.workload.scenario.label(),
                pct(r.savings[0]),
                pct(r.savings[1]),
                pct(r.savings[2]),
                pct(r.savings[3])
            );
            for i in 0..4 {
                avg[i] += r.savings[i] / rows.len() as f64;
            }
        }
        println!(
            "{:<23} {:>8} {:>8} {:>8} {:>8}",
            "average", pct(avg[0]), pct(avg[1]), pct(avg[2]), pct(avg[3])
        );
        println!("paper shape: Model3 lands closest to the perfect bound\n");
    }
}
