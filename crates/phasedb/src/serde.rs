//! Canonical JSON serialization of the phase database.
//!
//! The persisted artifact must replay campaigns **bit-exactly**: a database
//! loaded from disk has to produce byte-identical campaign reports to the
//! one that was built in-process. Every float therefore goes through the
//! canonical writer's shortest-round-trip encoding (exact for all finite
//! `f64`), and the rare non-finite value — the INFINITY sentinel that marks
//! infeasible curve entries downstream — is encoded as the strings
//! `"inf"`/`"-inf"`/`"nan"` because JSON itself has no such literals and
//! the canonical writer would otherwise collapse them to `null`.
//!
//! Application *specs* are stored by name only and re-attached from the
//! caller's spec list on load: the [`crate::db_fingerprint`] store key
//! already covers every spec parameter, so a cache file can never be
//! attached to specs it was not built from.

use crate::build::DbConfig;
use crate::record::{AppDbEntry, MonitorStats, PhaseDb, PhaseRecord, NC, NW, W_MAX};
use triad_trace::AppSpec;
use triad_util::json::Json;

/// Schema tag stored in (and required of) every persisted database.
pub const DB_SCHEMA: &str = "triad-phasedb/v1";

/// Encode one `f64`, preserving non-finite values via string sentinels.
fn enc_f64(x: f64) -> Json {
    if x.is_finite() {
        Json::Num(x)
    } else if x.is_nan() {
        Json::Str("nan".into())
    } else if x > 0.0 {
        Json::Str("inf".into())
    } else {
        Json::Str("-inf".into())
    }
}

/// Decode an [`enc_f64`] value.
fn dec_f64(j: &Json) -> Result<f64, String> {
    match j {
        Json::Num(x) => Ok(*x),
        Json::Int(i) => Ok(*i as f64),
        Json::Str(s) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" => Ok(f64::NAN),
            other => Err(format!("expected a number, found string {other:?}")),
        },
        other => Err(format!("expected a number, found {other:?}")),
    }
}

fn enc_f64_vec(xs: &[f64]) -> Json {
    Json::Arr(xs.iter().map(|&x| enc_f64(x)).collect())
}

fn dec_f64_vec(j: &Json, what: &str, expect_len: usize) -> Result<Vec<f64>, String> {
    let Json::Arr(items) = j else { return Err(format!("{what}: expected an array")) };
    if items.len() != expect_len {
        return Err(format!("{what}: expected {expect_len} entries, found {}", items.len()));
    }
    items.iter().map(dec_f64).collect::<Result<_, _>>().map_err(|e| format!("{what}: {e}"))
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn f64_field(obj: &Json, key: &str) -> Result<f64, String> {
    dec_f64(field(obj, key)?).map_err(|e| format!("{key}: {e}"))
}

impl MonitorStats {
    /// Canonical JSON form.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("c0_cpi", enc_f64(self.c0_cpi))
            .set("c_branch_cpi", enc_f64(self.c_branch_cpi))
            .set("c_cache_cpi", enc_f64(self.c_cache_cpi))
            .set("tmem_spi", enc_f64(self.tmem_spi))
            .set("mlp_avg", enc_f64(self.mlp_avg))
            .set("lm_pi", enc_f64_vec(&self.lm_pi))
            .set("ma_pi", enc_f64(self.ma_pi))
    }

    /// Inverse of [`MonitorStats::to_json`].
    pub fn from_json(j: &Json) -> Result<MonitorStats, String> {
        Ok(MonitorStats {
            c0_cpi: f64_field(j, "c0_cpi")?,
            c_branch_cpi: f64_field(j, "c_branch_cpi")?,
            c_cache_cpi: f64_field(j, "c_cache_cpi")?,
            tmem_spi: f64_field(j, "tmem_spi")?,
            mlp_avg: f64_field(j, "mlp_avg")?,
            lm_pi: dec_f64_vec(field(j, "lm_pi")?, "lm_pi", NC * NW)?,
            ma_pi: f64_field(j, "ma_pi")?,
        })
    }
}

impl PhaseRecord {
    /// Canonical JSON form.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("a_cpi", enc_f64_vec(&self.a_cpi))
            .set("b_spi", enc_f64_vec(&self.b_spi))
            .set("monitor", Json::Arr(self.monitor.iter().map(MonitorStats::to_json).collect()))
            .set("miss_curve_pi", enc_f64_vec(&self.miss_curve_pi))
            .set("load_miss_curve_pi", enc_f64_vec(&self.load_miss_curve_pi))
            .set("llc_acc_pi", enc_f64(self.llc_acc_pi))
            .set("wb_frac", enc_f64(self.wb_frac))
            .set("true_mlp", enc_f64_vec(&self.true_mlp))
    }

    /// Inverse of [`PhaseRecord::to_json`], with shape validation
    /// (per-configuration matrices must be `NC × NW`, miss curves must
    /// cover ways `1..=W_MAX`).
    pub fn from_json(j: &Json) -> Result<PhaseRecord, String> {
        let Json::Arr(mon) = field(j, "monitor")? else {
            return Err("monitor: expected an array".into());
        };
        if mon.len() != NC * NW {
            return Err(format!("monitor: expected {} entries, found {}", NC * NW, mon.len()));
        }
        Ok(PhaseRecord {
            a_cpi: dec_f64_vec(field(j, "a_cpi")?, "a_cpi", NC * NW)?,
            b_spi: dec_f64_vec(field(j, "b_spi")?, "b_spi", NC * NW)?,
            monitor: mon.iter().map(MonitorStats::from_json).collect::<Result<_, _>>()?,
            miss_curve_pi: dec_f64_vec(field(j, "miss_curve_pi")?, "miss_curve_pi", W_MAX)?,
            load_miss_curve_pi: dec_f64_vec(
                field(j, "load_miss_curve_pi")?,
                "load_miss_curve_pi",
                W_MAX,
            )?,
            llc_acc_pi: f64_field(j, "llc_acc_pi")?,
            wb_frac: f64_field(j, "wb_frac")?,
            true_mlp: dec_f64_vec(field(j, "true_mlp")?, "true_mlp", NC * NW)?,
        })
    }
}

impl AppDbEntry {
    /// Canonical JSON form (the spec is stored by name; see module docs).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("name", self.spec.name)
            .set("records", Json::Arr(self.records.iter().map(PhaseRecord::to_json).collect()))
    }

    /// Inverse of [`AppDbEntry::to_json`], re-attaching `spec`.
    pub fn from_json(j: &Json, spec: &AppSpec) -> Result<AppDbEntry, String> {
        let Json::Str(name) = field(j, "name")? else {
            return Err("name: expected a string".into());
        };
        if name != spec.name {
            return Err(format!("app order mismatch: stored {name:?}, expected {:?}", spec.name));
        }
        let Json::Arr(recs) = field(j, "records")? else {
            return Err("records: expected an array".into());
        };
        if recs.len() != spec.phases.len() {
            return Err(format!(
                "{name}: expected {} phase records, found {}",
                spec.phases.len(),
                recs.len()
            ));
        }
        Ok(AppDbEntry {
            spec: spec.clone(),
            records: recs
                .iter()
                .map(PhaseRecord::from_json)
                .collect::<Result<_, _>>()
                .map_err(|e| format!("{name}: {e}"))?,
        })
    }
}

/// Encode a database (plus its provenance: store fingerprint and build
/// configuration) as one canonical JSON document.
pub fn db_to_json(db: &PhaseDb, fingerprint: &str, cfg: &DbConfig) -> Json {
    Json::obj()
        .set("schema", DB_SCHEMA)
        .set("fingerprint", fingerprint)
        .set(
            "config",
            Json::obj()
                .set("scale", cfg.scale)
                .set("warmup", cfg.warmup)
                .set("detail", cfg.detail)
                // Stringified: the JSON integer type is i64 and the seed is
                // a full-range u64 (provenance only, never decoded).
                .set("seed", cfg.seed.to_string())
                .set("fit_lo_hz", enc_f64(cfg.fit_lo_hz))
                .set("fit_hi_hz", enc_f64(cfg.fit_hi_hz)),
        )
        .set("apps", Json::Arr(db.apps.iter().map(AppDbEntry::to_json).collect()))
}

/// Decode a database document, re-attaching the given application specs
/// (which must match the stored app list in name and order — the store key
/// guarantees this for cache hits; anything else is treated as corruption).
pub fn db_from_json(doc: &Json, apps: &[AppSpec]) -> Result<PhaseDb, String> {
    match field(doc, "schema")? {
        Json::Str(s) if s == DB_SCHEMA => {}
        other => return Err(format!("unsupported schema {other:?}, expected {DB_SCHEMA:?}")),
    }
    let Json::Arr(stored) = field(doc, "apps")? else {
        return Err("apps: expected an array".into());
    };
    if stored.len() != apps.len() {
        return Err(format!("expected {} apps, found {}", apps.len(), stored.len()));
    }
    let entries = stored
        .iter()
        .zip(apps)
        .map(|(j, spec)| AppDbEntry::from_json(j, spec))
        .collect::<Result<_, _>>()?;
    Ok(PhaseDb { apps: entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_apps;
    use triad_util::json::parse;

    fn tiny_db() -> (Vec<AppSpec>, PhaseDb) {
        let apps: Vec<AppSpec> =
            triad_trace::suite().into_iter().filter(|a| a.name == "povray").collect();
        let db = build_apps(&apps, &DbConfig::fast());
        (apps, db)
    }

    fn assert_db_eq(a: &PhaseDb, b: &PhaseDb) {
        assert_eq!(a.apps.len(), b.apps.len());
        for (x, y) in a.apps.iter().zip(&b.apps) {
            assert_eq!(x.spec.name, y.spec.name);
            assert_eq!(x.records.len(), y.records.len());
            for (r, s) in x.records.iter().zip(&y.records) {
                assert_eq!(r.a_cpi, s.a_cpi);
                assert_eq!(r.b_spi, s.b_spi);
                assert_eq!(r.miss_curve_pi, s.miss_curve_pi);
                assert_eq!(r.load_miss_curve_pi, s.load_miss_curve_pi);
                assert_eq!(r.llc_acc_pi, s.llc_acc_pi);
                assert_eq!(r.wb_frac, s.wb_frac);
                assert_eq!(r.true_mlp, s.true_mlp);
                for (m, n) in r.monitor.iter().zip(&s.monitor) {
                    assert_eq!(m.c0_cpi, n.c0_cpi);
                    assert_eq!(m.c_branch_cpi, n.c_branch_cpi);
                    assert_eq!(m.c_cache_cpi, n.c_cache_cpi);
                    assert_eq!(m.tmem_spi, n.tmem_spi);
                    assert_eq!(m.mlp_avg, n.mlp_avg);
                    assert_eq!(m.lm_pi, n.lm_pi);
                    assert_eq!(m.ma_pi, n.ma_pi);
                }
            }
        }
    }

    #[test]
    fn database_roundtrips_bit_exactly_through_text() {
        let (apps, db) = tiny_db();
        let cfg = DbConfig::fast();
        let text = db_to_json(&db, "fp", &cfg).to_string_compact();
        let back = db_from_json(&parse(&text).unwrap(), &apps).unwrap();
        assert_db_eq(&db, &back);
        // And the re-encoding is byte-identical (canonical form is a
        // fixed point).
        assert_eq!(db_to_json(&back, "fp", &cfg).to_string_compact(), text);
    }

    #[test]
    fn infinity_sentinel_survives_roundtrip() {
        let (apps, mut db) = tiny_db();
        // Infeasible-entry sentinel, as downstream energy curves use it.
        db.apps[0].records[0].a_cpi[0] = f64::INFINITY;
        db.apps[0].records[0].b_spi[1] = f64::NEG_INFINITY;
        let text = db_to_json(&db, "fp", &DbConfig::fast()).to_string_compact();
        let back = db_from_json(&parse(&text).unwrap(), &apps).unwrap();
        assert_eq!(back.apps[0].records[0].a_cpi[0], f64::INFINITY);
        assert_eq!(back.apps[0].records[0].b_spi[1], f64::NEG_INFINITY);
    }

    #[test]
    fn shape_violations_are_rejected() {
        let (apps, db) = tiny_db();
        let cfg = DbConfig::fast();

        let mut doc = db_to_json(&db, "fp", &cfg);
        // Wrong schema.
        if let Json::Obj(fields) = &mut doc {
            fields[0].1 = Json::Str("bogus/v0".into());
        }
        assert!(db_from_json(&doc, &apps).is_err());

        // Truncated miss curve.
        let mut bad = db.clone();
        bad.apps[0].records[0].miss_curve_pi.pop();
        assert!(db_from_json(&db_to_json(&bad, "fp", &cfg), &apps).is_err());

        // App-name mismatch.
        let other: Vec<AppSpec> =
            triad_trace::suite().into_iter().filter(|a| a.name == "mcf").collect();
        assert!(db_from_json(&db_to_json(&db, "fp", &cfg), &other).is_err());
    }
}
