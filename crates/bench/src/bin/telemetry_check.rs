//! CI telemetry-artifact validation: check that a `--telemetry` metrics
//! report and a `--chrome-trace` event file are well-formed.
//!
//! * the metrics report must parse with [`triad_util::json::parse`],
//!   carry `schema: "triad-telemetry/v1"` and have non-empty `counters`;
//! * the chrome trace must parse, carry a `traceEvents` array, and every
//!   event must either be a complete `"X"` event with numeric `ts`/`dur`
//!   or a `"B"`/`"E"` pair balanced per `(pid, tid, name)`.
//!
//! Usage: `telemetry_check <metrics.json> <chrome-trace.json>`

use std::collections::HashMap;
use std::process::ExitCode;
use triad_util::json::{parse, Json};

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: invalid JSON: {e:?}"))
}

fn check_metrics(path: &str) -> Result<usize, String> {
    let doc = load(path)?;
    match doc.get("schema") {
        Some(Json::Str(s)) if s == "triad-telemetry/v1" => {}
        other => return Err(format!("{path}: schema must be triad-telemetry/v1, got {other:?}")),
    }
    let Some(Json::Obj(counters)) = doc.get("counters") else {
        return Err(format!("{path}: counters object missing"));
    };
    if counters.is_empty() {
        return Err(format!("{path}: no counters recorded — instrumentation did not run"));
    }
    for key in ["histograms", "spans", "record_ops"] {
        if doc.get(key).is_none() {
            return Err(format!("{path}: {key} field missing"));
        }
    }
    Ok(counters.len())
}

fn check_chrome_trace(path: &str) -> Result<usize, String> {
    let doc = load(path)?;
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        return Err(format!("{path}: traceEvents array missing"));
    };
    if events.is_empty() {
        return Err(format!("{path}: no trace events captured — spans did not record"));
    }
    // B/E events must balance per (pid, tid, name); X events are complete.
    let mut depth: HashMap<(String, String, String), i64> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        let ph = match e.get("ph") {
            Some(Json::Str(s)) => s.as_str(),
            other => return Err(format!("{path}: event {i}: ph must be a string, got {other:?}")),
        };
        let numeric = |key: &str| -> Result<(), String> {
            match e.get(key) {
                Some(Json::Num(x)) if x.is_finite() && *x >= 0.0 => Ok(()),
                Some(Json::Int(x)) if *x >= 0 => Ok(()),
                other => Err(format!("{path}: event {i}: {key} must be ≥ 0, got {other:?}")),
            }
        };
        let key = || -> (String, String, String) {
            let s = |k: &str| e.get(k).map(|v| v.to_string_compact()).unwrap_or_default();
            (s("pid"), s("tid"), s("name"))
        };
        match ph {
            "X" => {
                numeric("ts")?;
                numeric("dur")?;
            }
            "B" => {
                numeric("ts")?;
                *depth.entry(key()).or_insert(0) += 1;
            }
            "E" => {
                numeric("ts")?;
                let d = depth.entry(key()).or_insert(0);
                *d -= 1;
                if *d < 0 {
                    return Err(format!("{path}: event {i}: E without matching B"));
                }
            }
            other => return Err(format!("{path}: event {i}: unsupported ph {other:?}")),
        }
    }
    if let Some((k, _)) = depth.iter().find(|(_, &d)| d != 0) {
        return Err(format!("{path}: unbalanced B/E events for {k:?}"));
    }
    Ok(events.len())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [metrics, trace] = args.as_slice() else {
        eprintln!("usage: telemetry_check <metrics.json> <chrome-trace.json>");
        return ExitCode::FAILURE;
    };
    match (check_metrics(metrics), check_chrome_trace(trace)) {
        (Ok(nc), Ok(ne)) => {
            println!("telemetry_check: {nc} counters in {metrics}, {ne} events in {trace}: OK");
            ExitCode::SUCCESS
        }
        (m, t) => {
            for r in [m.map(|_| ()), t.map(|_| ())] {
                if let Err(e) = r {
                    eprintln!("telemetry_check: {e}");
                }
            }
            ExitCode::FAILURE
        }
    }
}
