//! Regression test for presenter row alignment: when a spec list
//! contains duplicate specs and only one copy quarantines — exactly what
//! a `once`/`every(N)`-trigger failpoint produces — [`run_campaign`] must
//! pair the surviving rows with the right spec slots. The alignment is
//! positional (the outcome names the spec index of every quarantined
//! entry); matching quarantined entries by spec *equality* would mark the
//! first equal copy as lost and shift the completed duplicate's row into
//! a later slot, pairing rows with the wrong workloads.

use triad_bench::reports::{run_campaign, RunOptions};
use triad_phasedb::{DbConfig, DbStore, PhaseDb};
use triad_sim::ExperimentSpec;
use triad_util::failpoint::{self, FaultKind, Trigger};

fn small_db() -> PhaseDb {
    let names = ["mcf", "povray"];
    let apps: Vec<_> =
        triad_trace::suite().into_iter().filter(|a| names.contains(&a.name)).collect();
    DbStore::default_cache().resolve(&apps, &DbConfig::fast()).db
}

#[test]
fn a_quarantined_duplicate_spec_does_not_shift_row_alignment() {
    let db = small_db();
    let dup = ExperimentSpec::new("dup", &["mcf", "povray"]).perfect().target_intervals(6);
    let other =
        ExperimentSpec::new("other", &["mcf", "povray"]).alpha(1.25).perfect().target_intervals(6);
    let specs = vec![dup.clone(), other, dup];

    // Serial execution + every(3): the *second* copy of the duplicate
    // spec (slot 2) — and only it — panics and quarantines.
    failpoint::configure("campaign.row", Trigger::EveryNth(3), FaultKind::Panic);
    let run = run_campaign(&db, specs, &RunOptions { threads: 1, ..RunOptions::default() });
    failpoint::clear_all();

    assert_eq!((run.rows.len(), run.quarantined.len()), (2, 1));
    let names: Vec<Option<&str>> =
        run.aligned.iter().map(|s| s.as_ref().map(|r| r.spec.name.as_str())).collect();
    assert_eq!(
        names,
        [Some("dup"), Some("other"), None],
        "the completed first copy must keep its slot; only the faulted copy is None"
    );
}
