//! Instruction records and traces.
//!
//! A [`Trace`] is the unit of detailed simulation: a deterministic sequence
//! of abstract instructions representing one program phase. The timing model
//! (`triad-uarch`) interprets the dependency and kind fields; the cache model
//! (`triad-cache`) interprets the address field of memory operations.

/// Functional class of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstKind {
    /// Single-cycle integer ALU operation.
    Alu,
    /// Long-latency arithmetic (FP/mul/div); executes in a few cycles.
    LongOp,
    /// Memory load. `addr` is the accessed block address.
    Load,
    /// Memory store. `addr` is the accessed block address.
    Store,
    /// Conditional branch. `mispredict` marks the (rare) mispredicted ones.
    Branch,
}

impl InstKind {
    /// True for loads and stores.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, InstKind::Load | InstKind::Store)
    }
}

/// One abstract dynamic instruction.
///
/// Dependencies are encoded as *backwards distances*: `dep1 = 3` means "this
/// instruction consumes the result of the instruction three positions
/// earlier". Distance 0 means "no dependency". This compact encoding keeps a
/// trace cache-friendly (24 B/instruction) while letting the timing model
/// resolve producers with a single indexed load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inst {
    /// Block-aligned byte address for memory operations; 0 otherwise.
    pub addr: u64,
    /// Backwards distance to the first producer (0 = none).
    pub dep1: u32,
    /// Backwards distance to the second producer (0 = none).
    pub dep2: u32,
    /// Functional class.
    pub kind: InstKind,
    /// For branches: whether the branch is mispredicted.
    pub mispredict: bool,
    /// For loads: whether the address depends on the producer load (pointer
    /// chase). Chase loads cannot overlap with their producer, which is what
    /// makes an application parallelism-*insensitive* despite being
    /// memory-intensive.
    pub chase: bool,
}

impl Inst {
    /// A dependency-free single-cycle ALU op (useful in tests).
    pub const fn alu() -> Self {
        Inst { addr: 0, dep1: 0, dep2: 0, kind: InstKind::Alu, mispredict: false, chase: false }
    }
}

/// A generated instruction sequence for one program phase.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The dynamic instruction stream.
    pub insts: Vec<Inst>,
}

impl Trace {
    /// Number of instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when the trace holds no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Count of instructions matching `kind`.
    pub fn count_kind(&self, kind: InstKind) -> usize {
        self.insts.iter().filter(|i| i.kind == kind).count()
    }

    /// Fraction of instructions that are memory operations.
    pub fn mem_fraction(&self) -> f64 {
        self.insts.iter().filter(|i| i.kind.is_mem()).count() as f64 / self.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inst_is_compact() {
        // The detailed simulator iterates millions of these; keep them small.
        assert!(std::mem::size_of::<Inst>() <= 24);
    }

    #[test]
    fn kind_classification() {
        assert!(InstKind::Load.is_mem());
        assert!(InstKind::Store.is_mem());
        assert!(!InstKind::Alu.is_mem());
        assert!(!InstKind::Branch.is_mem());
        assert!(!InstKind::LongOp.is_mem());
    }

    #[test]
    fn trace_counting() {
        let mut t = Trace::default();
        t.insts.push(Inst::alu());
        t.insts.push(Inst { kind: InstKind::Load, addr: 64, ..Inst::alu() });
        t.insts.push(Inst { kind: InstKind::Branch, ..Inst::alu() });
        assert_eq!(t.len(), 3);
        assert_eq!(t.count_kind(InstKind::Load), 1);
        assert!((t.mem_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.mem_fraction(), 0.0);
    }
}
