//! End-to-end phase-database build cost — the grid sweep `build_phase`
//! pays per phase, tracked separately from the single-interval
//! `timing_model` unit so the db-build trajectory has its own baseline.
//!
//! Three measurements per phase archetype:
//!
//! * `build_phase` — the real thing: trace generation + classification +
//!   the 2-frequency × 3-core lockstep grid (reported as ns per
//!   grid-point·instruction and ms per phase);
//! * `legacy_grid` — the PR 4 formulation of the simulation part: one
//!   independent engine call per (core, frequency, allocation) grid point,
//!   monitors attached exactly where `build_phase` attaches them;
//! * `batched_grid` — the same grid through the lockstep engine.
//!
//! The legacy/batched ratio is the asserted speedup (machine-relative, so
//! it holds on slow CI runners); the absolute constants only guard against
//! catastrophic regressions. Run with
//! `cargo bench -p triad-bench --bench db_build`; set
//! `TRIAD_BENCH_BUDGET_MS` to shrink the window (CI smoke).

use std::hint::black_box;
use std::time::Duration;
use triad_arch::{CacheGeometry, CoreSize};
use triad_cache::{classify_warm, MlpMonitor};
use triad_phasedb::{build_phase, DbConfig, NC, NW, W_MAX, W_MIN};
use triad_uarch::{TimingConfig, TimingEngine};
use triad_util::bench::{bench, budget_from_env, speedup_gate};

/// Recorded on the reference dev box (2026-07-28, release build) with the
/// lockstep engine: `build_phase` end-to-end cost per grid-point
/// instruction for the fast (32K-instruction-detail) configuration. The
/// PR 4 code paid ~44 ns here (0.482 s cold for the 3-app fast subset in
/// `db_store`, now ~0.23 s). Only a >50× regression fails.
const BUILD_BASELINE_NS_PER_GRID_INST: f64 = 18.0;

fn main() {
    let cfg = DbConfig::fast();
    let geom = CacheGeometry::table1_scaled(4, cfg.scale);
    let budget = budget_from_env(Duration::from_secs(2));
    let grid_points = (2 * NC * NW) as f64; // 2 fit frequencies x 3 cores x 15 ways
    let grid_insts = grid_points * cfg.detail as f64;

    let mut worst_build = 0.0f64;
    let mut worst_ratio = f64::INFINITY;
    for name in ["mcf", "povray"] {
        let app = triad_trace::suite().into_iter().find(|a| a.name == name).unwrap();
        let spec = app.phases[0].clone();

        // (1) The real build_phase, end to end.
        let m = bench(&format!("db_build/build_phase_{name}"), None, budget, || {
            black_box(build_phase(&spec, &cfg));
        });
        let build_ns = m.secs_per_iter * 1e9 / grid_insts;
        println!(
            "db_build/build_phase_{name:<18} {:>8.2} ms/phase  {build_ns:>6.1} ns/(grid-point inst)",
            m.secs_per_iter * 1e3
        );
        worst_build = worst_build.max(build_ns);

        // (2) & (3): the simulation grid alone, legacy vs lockstep, over
        // the identical classified trace.
        let scaled = spec.scaled(cfg.scale as u64);
        let trace = scaled.generate(cfg.warmup + cfg.detail, cfg.seed);
        let ct = classify_warm(&trace, &geom, cfg.warmup);
        let detailed = &trace.insts[cfg.warmup..];
        let mut engine = TimingEngine::new();

        let legacy = bench(&format!("db_build/legacy_grid_{name}"), None, budget, || {
            for c in CoreSize::ALL {
                for w in W_MIN..=W_MAX {
                    let mut mon = MlpMonitor::table1();
                    black_box(engine.simulate_with_monitor(
                        detailed,
                        &ct,
                        &TimingConfig::table1(c, cfg.fit_lo_hz, w),
                        &mut mon,
                    ));
                    black_box(engine.simulate(
                        detailed,
                        &ct,
                        &TimingConfig::table1(c, cfg.fit_hi_hz, w),
                    ));
                }
            }
        });
        let batched = bench(&format!("db_build/batched_grid_{name}"), None, budget, || {
            for c in CoreSize::ALL {
                let mut mons: Vec<MlpMonitor> =
                    (W_MIN..=W_MAX).map(|_| MlpMonitor::table1()).collect();
                let lo_cfg = TimingConfig::table1(c, cfg.fit_lo_hz, W_MIN);
                black_box(engine.simulate_ways_with_monitors(
                    detailed,
                    &ct,
                    &lo_cfg,
                    W_MIN..=W_MAX,
                    &mut mons,
                ));
                black_box(engine.simulate_ways(detailed, &ct, c, cfg.fit_hi_hz, W_MIN..=W_MAX));
            }
        });
        let ratio = legacy.secs_per_iter / batched.secs_per_iter;
        println!("db_build/grid_speedup_{name:<17} {ratio:>8.2}x lockstep over legacy");
        worst_ratio = worst_ratio.min(ratio);
    }
    println!(
        "db_build/baseline                        {BUILD_BASELINE_NS_PER_GRID_INST:>8.1} \
         ns/(grid-point inst) (recorded 2026-07-28; PR 4 code: ~44)"
    );

    let gate = speedup_gate(budget);
    assert!(
        worst_ratio >= gate,
        "the lockstep grid must be >={gate}x faster than per-grid-point calls \
         (got {worst_ratio:.2}x)"
    );
    assert!(
        worst_build < BUILD_BASELINE_NS_PER_GRID_INST * 50.0,
        "build_phase regressed catastrophically: {worst_build:.1} ns/(grid-point inst) \
         vs recorded {BUILD_BASELINE_NS_PER_GRID_INST:.1}"
    );
}
