//! Randomized property tests for the cache substrate, driven by the
//! deterministic workspace PRNG (failures reproduce bit-exactly from the
//! printed trial number).

use triad_arch::CoreSize;
use triad_cache::{atd::COLD, Atd, MlpMonitor, SetAssocCache};
use triad_util::rand::rngs::StdRng;
use triad_util::rand::{RngExt, SeedableRng};

/// The load-bearing ATD property: for every address stream and every
/// allocation w, the ATD's stack-distance prediction must agree with a
/// real w-way LRU cache of the same set count (LRU inclusion).
#[test]
fn atd_predicts_every_lru_cache() {
    let mut rng = StdRng::seed_from_u64(0xA7D);
    for trial in 0..60 {
        let ways = 1 + trial % 7;
        let len = 1 + rng.random_range(0usize..400);
        let addrs: Vec<u64> = (0..len).map(|_| rng.random_range(0u64..512)).collect();
        let sets = 8;
        let mut atd = Atd::new(sets, 8);
        let mut cache = SetAssocCache::new(sets, ways);
        let mut direct_misses = 0u64;
        for &a in &addrs {
            let addr = a * 64;
            let d = atd.access(addr);
            let hit = cache.access(addr);
            assert_eq!(hit, d != COLD && (d as usize) < ways, "trial {trial}");
            if !hit {
                direct_misses += 1;
            }
        }
        assert_eq!(atd.miss_count(ways), direct_misses, "trial {trial}");
    }
}

/// Miss curves are monotone non-increasing in the allocation, and the
/// access total is conserved.
#[test]
fn miss_curve_monotone() {
    let mut rng = StdRng::seed_from_u64(0xCA53);
    for trial in 0..40 {
        let len = 1 + rng.random_range(0usize..600);
        let addrs: Vec<u64> = (0..len).map(|_| rng.random_range(0u64..4096)).collect();
        let mut atd = Atd::new(16, 16);
        for &a in &addrs {
            atd.access(a * 64);
        }
        let curve = atd.miss_curve();
        for w in curve.windows(2) {
            assert!(w[0] >= w[1], "trial {trial}");
        }
        assert_eq!(atd.accesses(), addrs.len() as u64, "trial {trial}");
    }
}

/// The MLP monitor never counts more leading misses than misses, and a
/// larger core never sees more leading misses on in-order feeds.
#[test]
fn monitor_lm_bounds() {
    let mut rng = StdRng::seed_from_u64(0x111);
    for trial in 0..40 {
        let n = 1 + rng.random_range(0usize..200);
        let mut mon = MlpMonitor::table1();
        let mut idx = 0u64;
        for _ in 0..n {
            idx += rng.random_range(1u64..400);
            let d = rng.random_range(0u8..18);
            let dist = if d >= 16 { COLD } else { d };
            mon.on_llc_load(idx, dist);
        }
        for w in 2..=16 {
            let misses = mon.miss_count(CoreSize::M, w);
            for c in CoreSize::ALL {
                assert!(mon.lm_count(c, w) <= misses, "trial {trial} w={w}");
                assert!(mon.lm_count(c, w) + mon.ov_count(c, w) == misses, "trial {trial} w={w}");
                assert!(mon.mlp(c, w) >= 1.0, "trial {trial} w={w}");
            }
            // In-order arrivals: monotone in core size.
            assert!(mon.lm_count(CoreSize::S, w) >= mon.lm_count(CoreSize::M, w), "trial {trial}");
            assert!(mon.lm_count(CoreSize::M, w) >= mon.lm_count(CoreSize::L, w), "trial {trial}");
        }
    }
}

/// Cache behavior is purely functional in the access stream.
#[test]
fn cache_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(0xDE7);
    for _ in 0..20 {
        let len = 1 + rng.random_range(0usize..300);
        let addrs: Vec<u64> = (0..len).map(|_| rng.random_range(0u64..1024)).collect();
        let run = || {
            let mut c = SetAssocCache::new(16, 4);
            addrs.iter().map(|&a| c.access(a * 64)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
