//! # triad-uarch — mechanistic out-of-order core timing model
//!
//! The paper's detailed simulations use Sniper 7.2 with its "ROB"
//! (instruction-window-centric mechanistic) core model [Carlson et al., ACM
//! TACO 2014]. This crate implements the same modeling class: a one-pass,
//! trace-driven out-of-order timing model that resolves, per instruction,
//!
//! * **dispatch** — in order, `D(c)` per cycle, stalling on ROB fullness,
//!   scheduler (RS) fullness, LSQ fullness and branch-redirect refills;
//! * **issue** — when all producers (from the trace's dependency edges) have
//!   completed; pointer-chase loads therefore serialize behind the load
//!   that produces their address;
//! * **completion** — after the functional/memory latency; DRAM requests go
//!   through the [`triad_mem::DramQueue`] contention model;
//! * **retirement** — in order, `D(c)` per cycle.
//!
//! Besides total cycles, the model produces exactly the observables the
//! paper's RM consumes (§III-C/D):
//!
//! * the Eq. 1 time decomposition — `T0` (dispatch-width-scalable compute),
//!   `T1` (branch + cache-hit stalls) and `Tmem` (DRAM stalls) — via
//!   retire-slot gap attribution;
//! * the **true** leading-miss count and average MLP (ground truth that the
//!   ATD heuristic of `triad-cache` approximates);
//! * the arrival-ordered LLC load stream, which can be fed straight into an
//!   [`triad_cache::MlpMonitor`] to emulate the proposed hardware.
//!
//! The implementation lives in the reusable [`engine::TimingEngine`]:
//! ROB-bounded ring buffers (stored as `u32` cells when a proven cycle
//! bound fits) instead of trace-length scratch, plus a **lockstep batched
//! mode** that advances arbitrary [`engine::LaneSpec`] lanes — any mix of
//! LLC way allocations *and* clock frequencies — in one trace pass; the
//! phase-database build runs one 30-lane pass per core size. The
//! [`simulate`]/[`simulate_with_monitor`] free functions are thin
//! single-lane wrappers kept byte-identical to the original model.

pub mod engine;
pub mod model;

pub use engine::{LaneSpec, TimingEngine};
pub use model::{simulate, simulate_with_monitor, TimingConfig, TimingResult};
