//! Telemetry is a pure sidecar: campaign rows and persisted phase-db
//! artifacts are **byte-identical** with telemetry off, on, and across
//! thread counts; counter totals, histogram statistics and span counts are
//! thread-count invariant (wall-clock durations are exempt); and the
//! chrome trace export is a parseable set of complete `"X"` events.
//!
//! Everything lives in one `#[test]` because the telemetry registry and
//! aggregate are process-global — parallel test functions in this binary
//! would race on `enable`/`reset`.

use triad::phasedb::{DbConfig, DbStore};
use triad::sim::{Campaign, ExperimentSpec};
use triad::trace::AppSpec;
use triad_telemetry as tel;
use triad_util::json::Json;

fn apps() -> Vec<AppSpec> {
    let names = ["mcf", "povray"];
    triad::trace::suite().into_iter().filter(|a| names.contains(&a.name)).collect()
}

fn campaign() -> Campaign {
    Campaign::new(vec![
        ExperimentSpec::new("idle", &["mcf", "povray"]).rm(None).target_intervals(6),
        ExperimentSpec::new("rm3", &["mcf", "povray"]).target_intervals(6),
        ExperimentSpec::new("rm3-perfect", &["mcf", "povray"]).perfect().target_intervals(6),
    ])
}

fn store_bytes(tag: &str) -> Vec<u8> {
    let dir = std::env::temp_dir().join(format!("triad-telemetry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let resolved = DbStore::new(&dir).resolve(&apps(), &DbConfig::fast());
    let bytes = std::fs::read(&resolved.path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

#[test]
fn telemetry_is_a_pure_sidecar() {
    // Reference: everything off. (Fresh process — telemetry starts off.)
    let reference_artifact = store_bytes("off");
    let db = triad::phasedb::build_apps(&apps(), &DbConfig::fast());
    let reference = Campaign::report(&campaign().run(&db)).to_string_pretty();

    // Metrics on: rows stay byte-identical, and the persisted artifact
    // (the pinned-SHA golden's byte stream) does too.
    tel::enable(tel::METRICS);
    tel::reset();
    let rows_on = Campaign::report(&campaign().threads(1).run(&db)).to_string_pretty();
    assert_eq!(rows_on, reference, "campaign rows must not change when telemetry is on");
    assert_eq!(
        store_bytes("on"),
        reference_artifact,
        "phase-db artifact bytes must not change when telemetry is on"
    );
    let snap1 = tel::snapshot();

    // The instrumentation actually ran: a few load-bearing totals.
    assert_eq!(snap1.counter("campaign.rows"), 3);
    assert!(snap1.counter("sim.rm_invocations") > 0, "RM invocations uncounted");
    assert!(
        snap1.counter("sim.memo_hits") + snap1.counter("sim.memo_misses") > 0,
        "decision-memo traffic uncounted"
    );
    assert!(snap1.span("sim.run").is_some(), "sim.run span never entered");
    assert!(snap1.histogram("sim.replan_dirty_nodes").is_some(), "dirty-path histogram empty");

    // Thread-count invariance: identical totals at 4 worker threads.
    // (store_bytes above contributed db_store counters to snap1; replay
    // exactly the campaign at both thread counts for the comparison.)
    tel::reset();
    let rows_t1 = campaign().threads(1).run(&db);
    let t1 = tel::snapshot();
    tel::reset();
    let rows_t4 = campaign().threads(4).run(&db);
    let t4 = tel::snapshot();
    assert_eq!(
        Campaign::report(&rows_t1).to_string_pretty(),
        Campaign::report(&rows_t4).to_string_pretty(),
        "rows must be thread-count invariant"
    );
    assert_eq!(t1.counters, t4.counters, "counter totals must be thread-count invariant");
    assert_eq!(t1.histograms, t4.histograms, "histogram stats must be thread-count invariant");
    let span_counts = |s: &tel::Snapshot| -> Vec<(String, u64)> {
        s.spans.iter().map(|(n, st)| (n.clone(), st.count)).collect()
    };
    assert_eq!(span_counts(&t1), span_counts(&t4), "span counts must be thread-count invariant");
    assert_eq!(t1.record_ops, t4.record_ops, "record_ops must be thread-count invariant");

    // Chrome trace: complete "X" events that round-trip through the
    // canonical JSON parser.
    tel::enable(tel::METRICS | tel::TRACE);
    tel::reset();
    let _ = tel::take_chrome_trace(); // drain anything from before
    let rows_traced = Campaign::report(&campaign().threads(2).run(&db)).to_string_pretty();
    assert_eq!(rows_traced, reference, "campaign rows must not change when tracing is on");
    let trace = tel::take_chrome_trace();
    let reparsed = triad_util::json::parse(&trace.to_string_pretty()).unwrap();
    let Some(Json::Arr(events)) = reparsed.get("traceEvents") else {
        panic!("traceEvents array missing from chrome trace");
    };
    assert!(!events.is_empty(), "no trace events captured");
    for e in events {
        assert_eq!(e.get("ph"), Some(&Json::Str("X".into())), "only complete events: {e:?}");
        assert!(e.get("ts").is_some() && e.get("dur").is_some() && e.get("name").is_some());
    }
    // The metrics report parses and carries the schema tag.
    let report = triad_util::json::parse(&tel::snapshot().to_json().to_string_pretty()).unwrap();
    assert_eq!(report.get("schema"), Some(&Json::Str("triad-telemetry/v1".into())));

    tel::disable_all();
}
