//! The `triad-bench` command line: one driver for every experiment.
//!
//! ```text
//! triad-bench --experiment fig6 --cores 8 --json out.json
//! triad-bench --experiment fig2 --compare-serial
//! triad-bench --experiment custom --apps mcf,povray,gcc,libquantum --rm rm3 --model model2
//! ```
//!
//! Adding a scenario is a spec, not a binary: `custom` assembles an
//! [`ExperimentSpec`] straight from the flags. The per-figure binaries are
//! kept as wrappers that pre-select `--experiment` and forward the rest.

use crate::reports::{self, RunOptions};
use crate::resolve_db;
use triad_energy::EnergyBackendConfig;
use triad_phasedb::{DbConfig, DbStore};
use triad_sim::campaign::{parse_model, parse_rm, ExperimentSpec};
use triad_workload::WorkloadSpec;

const USAGE: &str = "\
triad-bench — campaign-driven experiment harness

USAGE:
    triad-bench --experiment <NAME> [OPTIONS]

EXPERIMENTS:
    table1, table2, fig1, fig2, fig6, fig7, fig8, fig9, overheads, custom,
    energy-sweep (rerun one workload across every energy backend),
    workload-sweep (RM3 on every dynamic-workload kind per scenario),
    churn (per-core multiprogramming with mid-run app replacement)

OPTIONS:
    -e, --experiment <NAME>   which experiment to run (required)
        --cores <N>           core count (fig6/fig9: default '4 and 8'; fig7/fig8: default 4)
        --seed <N>            workload-generation seed [default: 2020]
        --json <PATH>         write the machine-readable report to PATH
        --threads <N>         campaign worker threads (0 = all cores) [default: 0]
        --compare-serial      also run the campaign serially and report the speedup
        --intervals <N>       override the simulated horizon (RM intervals per app)
        --fast                fast database (noisier stats) and a short horizon
        --db-cache <DIR>      phase-database cache directory
                              [default: $TRIAD_DB_CACHE or <workspace>/target/phasedb]
        --db-rebuild          ignore any cached database and rebuild (refreshes the cache)
        --energy-backend <B>  energy accounting backend: mcpat | table:<path> | scaled:<node>
                              (nodes: 32nm, 22nm, 14nm, 7nm) [default: mcpat]
        --energy-table <PATH> shorthand for --energy-backend table:<PATH>; for energy-sweep,
                              the measured table to sweep (default: a table sampled from mcpat)
        --apps <A,B,..>       custom/energy-sweep: one application per core;
                              churn: the app pool replacements draw from
        --workload <PATH>     custom: run a dynamic workload spec (JSON, see the
                              README \"Workloads\" section) instead of --apps
        --rm <KIND>           custom: idle | rm1 | rm2 | rm3 | rm3full [default: rm3]
        --model <M>           custom: perfect | model1 | model2 | model3 [default: model3]
        --alpha <X>           custom: QoS slack factor [default: 1.0]
        --no-overheads        custom: do not charge transition/RM overheads
        --journal <PATH>      append every completed campaign row to a durable JSON-Lines
                              journal at PATH (truncated first unless --resume)
        --resume              resume from an existing --journal: rows already recorded
                              are loaded back instead of re-simulated
        --failpoints <SPEC>   arm deterministic fault-injection sites, e.g.
                              \"db_store.load=once;campaign.row=every(3):panic\"
                              (also read from $TRIAD_FAILPOINTS; see the README)
        --telemetry <PATH>    write a triad-telemetry/v1 metrics report (canonical JSON)
                              to PATH; the stdout/--json report is unaffected
        --chrome-trace <PATH> write a Chrome-trace-event JSON (open in Perfetto or
                              chrome://tracing) of stage spans to PATH
        --progress            print per-row campaign completion lines to stderr
    -h, --help                print this help
";

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct Args {
    pub experiment: String,
    pub cores: Option<usize>,
    pub seed: u64,
    pub json: Option<String>,
    pub threads: usize,
    pub compare_serial: bool,
    pub intervals: Option<usize>,
    pub fast: bool,
    pub db_cache: Option<String>,
    pub db_rebuild: bool,
    pub energy_backend: Option<String>,
    pub energy_table: Option<String>,
    pub apps: Vec<String>,
    pub workload: Option<String>,
    pub rm: String,
    pub model: String,
    pub alpha: f64,
    pub no_overheads: bool,
    pub journal: Option<String>,
    pub resume: bool,
    pub failpoints: Option<String>,
    pub telemetry: Option<String>,
    pub chrome_trace: Option<String>,
    pub progress: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            experiment: String::new(),
            cores: None,
            seed: 2020,
            json: None,
            threads: 0,
            compare_serial: false,
            intervals: None,
            fast: false,
            db_cache: None,
            db_rebuild: false,
            energy_backend: None,
            energy_table: None,
            apps: Vec::new(),
            workload: None,
            rm: "rm3".into(),
            model: "model3".into(),
            alpha: 1.0,
            no_overheads: false,
            journal: None,
            resume: false,
            failpoints: None,
            telemetry: None,
            chrome_trace: None,
            progress: false,
        }
    }
}

/// Parse flags (no `std::env` access, so wrappers can inject).
pub fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter().peekable();
    let value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                 flag: &str|
     -> Result<String, String> {
        it.next().cloned().ok_or_else(|| format!("{flag} expects a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "-e" | "--experiment" => args.experiment = value(&mut it, a)?,
            "--cores" => {
                args.cores = Some(value(&mut it, a)?.parse().map_err(|e| format!("--cores: {e}"))?)
            }
            "--seed" => {
                args.seed = value(&mut it, a)?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--json" => args.json = Some(value(&mut it, a)?),
            "--threads" => {
                args.threads = value(&mut it, a)?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--compare-serial" => args.compare_serial = true,
            "--intervals" => {
                args.intervals =
                    Some(value(&mut it, a)?.parse().map_err(|e| format!("--intervals: {e}"))?)
            }
            "--fast" => args.fast = true,
            "--db-cache" => args.db_cache = Some(value(&mut it, a)?),
            "--db-rebuild" => args.db_rebuild = true,
            "--energy-backend" => args.energy_backend = Some(value(&mut it, a)?),
            "--energy-table" => args.energy_table = Some(value(&mut it, a)?),
            "--apps" => {
                args.apps = value(&mut it, a)?.split(',').map(|s| s.trim().to_string()).collect()
            }
            "--workload" => args.workload = Some(value(&mut it, a)?),
            "--rm" => args.rm = value(&mut it, a)?,
            "--model" => args.model = value(&mut it, a)?,
            "--alpha" => {
                args.alpha = value(&mut it, a)?.parse().map_err(|e| format!("--alpha: {e}"))?
            }
            "--no-overheads" => args.no_overheads = true,
            "--journal" => args.journal = Some(value(&mut it, a)?),
            "--resume" => args.resume = true,
            "--failpoints" => args.failpoints = Some(value(&mut it, a)?),
            "--telemetry" => args.telemetry = Some(value(&mut it, a)?),
            "--chrome-trace" => args.chrome_trace = Some(value(&mut it, a)?),
            "--progress" => args.progress = true,
            "-h" | "--help" => {
                args.experiment = "help".into();
                return Ok(args);
            }
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    if args.experiment.is_empty() {
        return Err(format!("--experiment is required\n\n{USAGE}"));
    }
    Ok(args)
}

/// Run a parsed command line; returns the process exit code.
pub fn run(args: &Args) -> Result<(), String> {
    if args.experiment == "help" {
        println!("{USAGE}");
        return Ok(());
    }
    // Arm fault-injection sites first: $TRIAD_FAILPOINTS, then the
    // (higher-precedence, later-configured) --failpoints flag. A bad spec
    // is a user-input error — clean message, no backtrace.
    triad_util::failpoint::init_from_env().map_err(|e| format!("TRIAD_FAILPOINTS: {e}"))?;
    if let Some(spec) = &args.failpoints {
        triad_util::failpoint::configure_str(spec).map_err(|e| format!("--failpoints: {e}"))?;
    }
    if args.resume && args.journal.is_none() {
        return Err("--resume requires --journal <PATH>".into());
    }
    // Create/validate the journal before paying for anything expensive;
    // without --resume the file is truncated so the run starts fresh.
    if let Some(path) = &args.journal {
        let p = std::path::Path::new(path);
        if let Some(parent) = p.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).map_err(|e| format!("--journal {path}: {e}"))?;
        }
        if !args.resume {
            std::fs::write(p, "").map_err(|e| format!("--journal {path}: {e}"))?;
        }
    }
    // Resolve the energy-backend selection (--energy-table is shorthand for
    // --energy-backend table:<path>) and fail fast — before paying for the
    // database — when the table file or technology node is bad.
    let energy_cfg: Option<EnergyBackendConfig> = match (&args.energy_backend, &args.energy_table) {
        (Some(b), t) => {
            let cfg = EnergyBackendConfig::parse(b).ok_or_else(|| {
                format!(
                    "unknown --energy-backend {b} (expected mcpat, table:<path> or scaled:<node>)"
                )
            })?;
            if let Some(t) = t {
                if cfg != (EnergyBackendConfig::Table { path: t.clone() }) {
                    return Err(format!("--energy-backend {b} conflicts with --energy-table {t}"));
                }
            }
            Some(cfg)
        }
        (None, Some(t)) => Some(EnergyBackendConfig::Table { path: t.clone() }),
        (None, None) => None,
    };
    if let Some(cfg) = &energy_cfg {
        cfg.build().map_err(|e| format!("--energy-backend {}: {e}", cfg.label()))?;
    }
    // Telemetry is a sidecar: recording is off unless an export path asks
    // for it, and the canonical stdout/--json rows never contain it.
    let mut telemetry_flags = 0u8;
    if args.telemetry.is_some() {
        telemetry_flags |= triad_telemetry::METRICS;
    }
    if args.chrome_trace.is_some() {
        telemetry_flags |= triad_telemetry::METRICS | triad_telemetry::TRACE;
    }
    if telemetry_flags != 0 {
        triad_telemetry::enable(telemetry_flags);
    }
    let run_opts = RunOptions {
        threads: args.threads,
        compare_serial: args.compare_serial,
        intervals: args.intervals.or(if args.fast { Some(32) } else { None }),
        energy: energy_cfg.clone(),
        progress: args.progress,
        journal: args.journal.clone(),
    };
    const EXPERIMENTS: [&str; 13] = [
        "table1",
        "table2",
        "fig1",
        "fig2",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "overheads",
        "custom",
        "energy-sweep",
        "workload-sweep",
        "churn",
    ];
    if !EXPERIMENTS.contains(&args.experiment.as_str()) {
        return Err(format!("unknown experiment {}\n\n{USAGE}", args.experiment));
    }
    // Validate everything cheap *before* paying for the database build.
    // The sweep owns backend selection — it reruns the same specs under
    // every backend — so an explicit non-table --energy-backend would be
    // silently ignored; reject it instead. --energy-table (or its
    // table:<path> spelling) chooses the sweep's measured-table leg.
    let sweep_table: Option<String> = match (&args.experiment[..], &energy_cfg) {
        ("energy-sweep", None) => None,
        ("energy-sweep", Some(EnergyBackendConfig::Table { path })) => Some(path.clone()),
        ("energy-sweep", Some(other)) => {
            return Err(format!(
                "energy-sweep runs every backend; --energy-backend {} would have no \
                 effect (use --energy-table to choose the measured-table leg)",
                other.label()
            ))
        }
        _ => None,
    };
    let sweep_apps: Vec<String> = if args.apps.is_empty() {
        // The 3-app fast subset (the db_store bench's subset): small enough
        // for CI smoke runs, mixed enough to exercise every backend path.
        vec!["mcf".into(), "libquantum".into(), "povray".into()]
    } else {
        args.apps.clone()
    };
    // A dynamic workload spec file replaces --apps for `custom`; validate
    // it (parse + materialize) before paying for the database.
    let workload_spec: Option<WorkloadSpec> = match &args.workload {
        Some(path) => {
            if args.experiment != "custom" {
                return Err(format!(
                    "--workload only applies to the custom experiment \
                     (the {} preset generates its own workloads)",
                    args.experiment
                ));
            }
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("--workload {path}: {e}"))?;
            let json = triad_util::json::parse(&text)
                .map_err(|e| format!("--workload {path}: invalid JSON: {e:?}"))?;
            let spec =
                WorkloadSpec::from_json(&json).map_err(|e| format!("--workload {path}: {e}"))?;
            spec.materialize().map_err(|e| format!("--workload {path}: {e}"))?;
            Some(spec)
        }
        None => None,
    };
    if args.experiment == "custom" && workload_spec.is_some() && !args.apps.is_empty() {
        return Err("--workload and --apps conflict for custom: the workload spec \
             defines the applications (put an explicit list in a static spec)"
            .to_string());
    }
    let check_apps = |apps: &[String]| -> Result<(), String> {
        match apps.iter().find(|n| triad_trace::by_name(n).is_none()) {
            Some(bad) => {
                let known: Vec<&str> = triad_trace::suite().iter().map(|a| a.name).collect();
                Err(format!("unknown application {bad}; the suite contains: {}", known.join(", ")))
            }
            None => Ok(()),
        }
    };
    // The workload presets generate §IV-C mixes, so they need an even
    // system width — except churn over an explicit pool, which samples
    // per core. Fail here, before paying for the database.
    if matches!(args.experiment.as_str(), "workload-sweep" | "churn") {
        let n = args.cores.unwrap_or(4);
        let needs_even = args.experiment == "workload-sweep" || args.apps.is_empty();
        if needs_even && (n < 2 || !n.is_multiple_of(2)) {
            return Err(format!(
                "--experiment {} generates §IV-C mixes and needs an even --cores ≥ 2 \
                 (got {n}); churn with an explicit --apps pool accepts any width",
                args.experiment
            ));
        }
        if n == 0 {
            return Err("--cores must be at least 1".into());
        }
        // The churn preset accepts --apps as an optional replacement pool.
        check_apps(&args.apps)?;
    }
    let needs_apps = match args.experiment.as_str() {
        "custom" => workload_spec.is_none(),
        "energy-sweep" => true,
        _ => false,
    };
    let needs_rm_model = matches!(args.experiment.as_str(), "custom" | "energy-sweep");
    let custom_rm_model = if needs_rm_model {
        if needs_apps {
            let apps = if args.experiment == "custom" { &args.apps } else { &sweep_apps };
            if apps.len() < 2 {
                return Err(format!(
                    "{} experiments need --apps with at least two names",
                    args.experiment
                ));
            }
            check_apps(apps)?;
        }
        let rm = parse_rm(&args.rm).ok_or_else(|| format!("unknown --rm {}", args.rm))?;
        let model =
            parse_model(&args.model).ok_or_else(|| format!("unknown --model {}", args.model))?;
        Some((rm, model))
    } else {
        None
    };
    let db_cfg = if args.fast { DbConfig::fast() } else { DbConfig::default() };
    let store = match &args.db_cache {
        Some(dir) => DbStore::new(dir),
        None => DbStore::default_cache(),
    }
    .force_rebuild(args.db_rebuild);
    let needs_db = !matches!(args.experiment.as_str(), "table1" | "fig1");
    let db = if needs_db { Some(resolve_db(&db_cfg, &store)) } else { None };
    let db = db.as_ref();

    let both = [4usize, 8];
    let core_list = |args: &Args| args.cores.map(|c| vec![c]).unwrap_or_else(|| both.to_vec());
    let doc = match args.experiment.as_str() {
        "table1" => reports::table1(),
        "table2" => reports::table2(db.unwrap()),
        "fig1" => reports::fig1(),
        "fig2" => reports::fig2(db.unwrap(), &run_opts),
        "fig6" => reports::fig6(db.unwrap(), &core_list(args), args.seed, &run_opts),
        "fig7" => reports::fig7(db.unwrap(), args.cores.unwrap_or(4), &run_opts),
        "fig8" => reports::fig8(db.unwrap(), args.cores.unwrap_or(4), &run_opts),
        "fig9" => reports::fig9(db.unwrap(), &core_list(args), args.seed, &run_opts),
        "overheads" => reports::overheads(db.unwrap(), args.seed, &run_opts),
        "energy-sweep" => {
            let names: Vec<&str> = sweep_apps.iter().map(String::as_str).collect();
            let sweep_opts = RunOptions { energy: None, ..run_opts.clone() };
            reports::energy_sweep(
                db.unwrap(),
                &names,
                args.seed,
                sweep_table.as_deref(),
                &sweep_opts,
            )
        }
        "workload-sweep" => {
            reports::workload_sweep(db.unwrap(), args.cores.unwrap_or(4), args.seed, &run_opts)
        }
        "churn" => {
            reports::churn(db.unwrap(), args.cores.unwrap_or(4), args.seed, &args.apps, &run_opts)
        }
        "custom" => {
            let (rm, model) = custom_rm_model.expect("validated above");
            match &workload_spec {
                Some(wl) => {
                    let spec = ExperimentSpec::for_workload_spec(
                        format!("custom/{}", wl.label()),
                        wl.clone(),
                    )
                    .expect("workload validated above")
                    .rm(rm)
                    .model(model)
                    .alpha(args.alpha)
                    .overheads(!args.no_overheads)
                    .seed(args.seed);
                    reports::workload_report(db.unwrap(), spec, wl, &run_opts)
                }
                None => {
                    let names: Vec<&str> = args.apps.iter().map(String::as_str).collect();
                    let spec =
                        ExperimentSpec::new(format!("custom/{}", args.apps.join("+")), &names)
                            .rm(rm)
                            .model(model)
                            .alpha(args.alpha)
                            .overheads(!args.no_overheads)
                            .seed(args.seed);
                    reports::custom(db.unwrap(), spec, &run_opts)
                }
            }
        }
        _ => unreachable!("experiment name validated against EXPERIMENTS above"),
    };

    if let Some(path) = &args.json {
        std::fs::write(path, doc.to_string_pretty()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("report written to {path}");
    }
    if let Some(path) = &args.telemetry {
        let report = triad_telemetry::snapshot().to_json().to_string_pretty();
        std::fs::write(path, report).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("telemetry metrics written to {path}");
    }
    if let Some(path) = &args.chrome_trace {
        let trace = triad_telemetry::take_chrome_trace().to_string_pretty();
        std::fs::write(path, trace).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("chrome trace written to {path} (load in Perfetto or chrome://tracing)");
    }
    // Quarantined rows mean the report is incomplete: every output above
    // has been written (the surviving rows and the error rows are all in
    // the JSON), but the run as a whole did not succeed.
    let quarantined = quarantined_rows(&doc);
    if quarantined > 0 {
        return Err(format!(
            "{quarantined} spec(s) quarantined; the campaign report carries their error rows"
        ));
    }
    Ok(())
}

/// Count quarantined error rows anywhere in a report document (campaign
/// reports nest at different depths per experiment).
fn quarantined_rows(doc: &triad_util::json::Json) -> usize {
    use triad_util::json::Json;
    match doc {
        Json::Obj(fields) => fields
            .iter()
            .map(|(k, v)| {
                let own = match (k.as_str(), v) {
                    ("quarantined", Json::Arr(rows)) => rows.len(),
                    _ => 0,
                };
                own + quarantined_rows(v)
            })
            .sum(),
        Json::Arr(items) => items.iter().map(quarantined_rows).sum(),
        _ => 0,
    }
}

/// Entry point shared by `triad-bench` and the per-figure wrappers: the
/// wrapper passes its fixed experiment name, the driver passes `None`.
pub fn main_with(fixed_experiment: Option<&str>) -> std::process::ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if let Some(e) = fixed_experiment {
        argv.splice(0..0, ["--experiment".to_string(), e.to_string()]);
    }
    match parse_args(&argv).and_then(|a| run(&a)) {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::ExitCode::FAILURE
        }
    }
}
