//! Local optimization: per-core energy curves `E(w)`, `f*(w)` and `c*(w)`.
//!
//! For every candidate allocation `w`, the local optimizer finds the
//! minimal-energy `(c, f)` pair that satisfies QoS (Eq. 3) against the
//! predicted baseline time, scanning frequencies bottom-up so that `f*` is
//! the *minimum* feasible frequency per core size (§III-A). The controller
//! kind decides which core sizes and frequencies may be touched.

use crate::qos::qos_ok;
use triad_arch::{CoreSize, DvfsGrid, Setting};

/// A predictor of next-interval behavior at an arbitrary setting.
///
/// Implemented by [`crate::OnlineModel`] (the paper's Eq. 1–5) and by the
/// simulator's *perfect* model (ground-truth database lookups). Both carry
/// a `&dyn triad_energy::EnergyBackend`, so the energy side of every
/// prediction — and therefore every plan the optimizers below produce —
/// follows whichever backend the experiment spec selected.
pub trait IntervalModel {
    /// Predicted `(seconds, joules)` per instruction at `s`.
    fn predict(&self, s: Setting) -> (f64, f64);
}

/// Which resources the controller may manage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RmKind {
    /// LLC partitioning only (baseline `c` and `f` pinned).
    Rm1,
    /// LLC partitioning coordinated with per-core DVFS (prior art).
    Rm2,
    /// LLC + DVFS + core-size adaptation (the proposed scheme). Following
    /// the paper's §II finding that "there are only few cases where
    /// selecting the smallest core size leads to considerable energy
    /// saving", the search space is {baseline, larger} core sizes.
    Rm3,
    /// RM3 with the full core-size space including down-sizing to S — the
    /// ablation the paper's §II remark refers to.
    Rm3Full,
}

impl RmKind {
    /// The paper's three controllers, in paper order.
    pub const ALL: [RmKind; 3] = [RmKind::Rm1, RmKind::Rm2, RmKind::Rm3];

    /// Display label ("RM1"…).
    pub fn label(self) -> &'static str {
        match self {
            RmKind::Rm1 => "RM1",
            RmKind::Rm2 => "RM2",
            RmKind::Rm3 => "RM3",
            RmKind::Rm3Full => "RM3-full",
        }
    }

    /// Core sizes this controller may select.
    pub fn core_choices(self, baseline: CoreSize) -> Vec<CoreSize> {
        let (buf, n) = self.core_choice_array(baseline);
        buf[..n].to_vec()
    }

    /// [`RmKind::core_choices`] without the allocation: the choices in a
    /// fixed-capacity array plus the live count, in the same order.
    pub fn core_choice_array(self, baseline: CoreSize) -> ([CoreSize; CoreSize::COUNT], usize) {
        let mut buf = [baseline; CoreSize::COUNT];
        let mut n = 0;
        match self {
            RmKind::Rm1 | RmKind::Rm2 => n = 1,
            RmKind::Rm3 => {
                for c in CoreSize::ALL {
                    if c >= baseline {
                        buf[n] = c;
                        n += 1;
                    }
                }
            }
            RmKind::Rm3Full => {
                buf = CoreSize::ALL;
                n = CoreSize::COUNT;
            }
        }
        (buf, n)
    }
}

impl std::fmt::Display for RmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The local optimizer's product for one core: an energy curve over `w`
/// plus the `(c, f)` choice behind every point.
#[derive(Debug, Clone)]
pub struct LocalPlan {
    /// Smallest allocation in the domain.
    pub min_w: usize,
    /// Predicted energy per instruction for each `w` (`INFINITY` =
    /// infeasible under QoS).
    pub energy: Vec<f64>,
    /// The chosen setting per `w` (aligned with `energy`).
    pub setting: Vec<Option<Setting>>,
    /// Model evaluations performed (the §III-E algorithm-overhead proxy).
    pub ops: u64,
}

impl LocalPlan {
    /// Energy at allocation `w`.
    pub fn energy_at(&self, w: usize) -> f64 {
        self.energy[w - self.min_w]
    }

    /// Chosen setting at allocation `w`.
    pub fn setting_at(&self, w: usize) -> Option<Setting> {
        self.setting[w - self.min_w]
    }

    /// The plan of a core with no usable statistics (it never completed an
    /// interval, or sits vacant): feasible only at the baseline allocation,
    /// at zero predicted energy, with no model evaluations behind it. One
    /// such plan serves every statistics-less core of a run — the contents
    /// never vary — so callers construct it once and share it.
    pub fn pinned(way_range: std::ops::RangeInclusive<usize>, baseline: Setting) -> LocalPlan {
        let min_w = *way_range.start();
        let n = way_range.end() - min_w + 1;
        assert!(way_range.contains(&baseline.ways), "baseline allocation must be in the domain");
        let mut energy = vec![f64::INFINITY; n];
        let mut setting = vec![None; n];
        energy[baseline.ways - min_w] = 0.0;
        setting[baseline.ways - min_w] = Some(baseline);
        LocalPlan { min_w, energy, setting, ops: 0 }
    }
}

/// Run the local optimization for one core.
///
/// * `model` — predictor for the upcoming interval;
/// * `kind` — controller (decides the `c`/`f` search space);
/// * `baseline` — the QoS reference setting (Table I baseline);
/// * `way_range` — candidate allocations (Table I: 2..=16, tighter on
///   2-core systems);
/// * `alpha` — QoS slack (Eq. 3; 1.0 in the paper).
pub fn local_optimize(
    model: &dyn IntervalModel,
    kind: RmKind,
    baseline: Setting,
    grid: &DvfsGrid,
    way_range: std::ops::RangeInclusive<usize>,
    alpha: f64,
) -> LocalPlan {
    let min_w = *way_range.start();
    let n = way_range.end() - min_w + 1;
    let mut out =
        LocalPlan { min_w, energy: vec![f64::INFINITY; n], setting: vec![None; n], ops: 0 };
    local_optimize_into(model, kind, baseline, grid, way_range, alpha, &mut out);
    out
}

/// [`local_optimize`] into a caller-owned plan, so a steady-state RM
/// invocation performs no heap allocation: `out`'s buffers are reused
/// (they must already span `way_range`) and every field is overwritten.
/// Results are bit-identical to [`local_optimize`] — same models queried
/// in the same order, same `ops` count.
pub fn local_optimize_into(
    model: &dyn IntervalModel,
    kind: RmKind,
    baseline: Setting,
    grid: &DvfsGrid,
    way_range: std::ops::RangeInclusive<usize>,
    alpha: f64,
    out: &mut LocalPlan,
) {
    let mut ops: u64 = 0;
    // Predicted baseline time is the QoS budget (Eq. 3 uses the *model* for
    // both sides, so model bias partially cancels).
    let (t_base, _) = model.predict(baseline);
    ops += 1;

    let min_w = *way_range.start();
    let n = way_range.end() - min_w + 1;
    assert_eq!(out.energy.len(), n, "plan buffers must span the way range");
    assert_eq!(out.setting.len(), n);
    out.min_w = min_w;
    let energy = &mut out.energy;
    let setting = &mut out.setting;

    let (choices, n_choices) = kind.core_choice_array(baseline.core);
    for w in way_range {
        let mut best_e = f64::INFINITY;
        let mut best_s = None;
        for &c in &choices[..n_choices] {
            match kind {
                RmKind::Rm1 => {
                    // Fixed baseline VF: only feasibility and energy.
                    let s = Setting::new(c, baseline.vf, w);
                    let (t, e) = model.predict(s);
                    ops += 1;
                    if qos_ok(t, t_base, alpha) && e < best_e {
                        best_e = e;
                        best_s = Some(s);
                    }
                }
                RmKind::Rm2 | RmKind::Rm3 | RmKind::Rm3Full => {
                    // Minimal feasible frequency for this (c, w).
                    for (vf, _) in grid.iter() {
                        let s = Setting::new(c, vf, w);
                        let (t, e) = model.predict(s);
                        ops += 1;
                        if qos_ok(t, t_base, alpha) {
                            if e < best_e {
                                best_e = e;
                                best_s = Some(s);
                            }
                            break; // f*(c, w) found: higher f only costs energy
                        }
                    }
                }
            }
        }
        energy[w - min_w] = best_e;
        setting[w - min_w] = best_s;
    }
    out.ops = ops;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic model: time improves with ways, frequency and core size;
    /// energy grows with V²f and core size.
    struct Toy {
        grid: DvfsGrid,
        /// memory seconds/instruction per w (index w-2)
        mem: Vec<f64>,
    }

    impl IntervalModel for Toy {
        fn predict(&self, s: Setting) -> (f64, f64) {
            let f = self.grid.point(s.vf).freq_hz;
            let v = self.grid.point(s.vf).volt;
            let compute = 0.5 / s.core.dispatch_width() as f64 * 4.0 / f * 1e9 / 1e9;
            let t = compute + self.mem[s.ways - 2];
            let p_dyn = [1.1, 2.2, 4.3][s.core.index()] * v * v * (f / 2.0e9);
            let p_static = [0.3, 0.6, 1.25][s.core.index()] * v;
            (t, (p_dyn + p_static) * t)
        }
    }

    fn toy() -> Toy {
        Toy {
            grid: DvfsGrid::table1(),
            mem: (0..15).map(|i| (2.0 - 0.1 * i as f64) * 1e-10).collect(),
        }
    }

    fn baseline(grid: &DvfsGrid) -> Setting {
        Setting::new(CoreSize::M, grid.baseline, 8)
    }

    #[test]
    fn baseline_allocation_is_always_feasible() {
        let t = toy();
        let b = baseline(&t.grid);
        for kind in RmKind::ALL {
            let plan = local_optimize(&t, kind, b, &t.grid, 2..=16, 1.0);
            assert!(
                plan.energy_at(8).is_finite(),
                "{kind}: baseline w must be feasible (baseline itself qualifies)"
            );
            let s = plan.setting_at(8).unwrap();
            let (tt, _) = t.predict(s);
            let (tb, _) = t.predict(b);
            assert!(tt <= tb + 1e-15);
        }
    }

    #[test]
    fn rm1_never_touches_core_or_frequency() {
        let t = toy();
        let b = baseline(&t.grid);
        let plan = local_optimize(&t, RmKind::Rm1, b, &t.grid, 2..=16, 1.0);
        for w in 2..=16 {
            if let Some(s) = plan.setting_at(w) {
                assert_eq!(s.core, b.core);
                assert_eq!(s.vf, b.vf);
                assert_eq!(s.ways, w);
            }
        }
    }

    #[test]
    fn rm2_lowers_frequency_when_ways_increase() {
        // With more ways, memory time shrinks, so a lower f still meets QoS
        // and saves energy.
        let t = toy();
        let b = baseline(&t.grid);
        let plan = local_optimize(&t, RmKind::Rm2, b, &t.grid, 2..=16, 1.0);
        let f8 = plan.setting_at(8).unwrap().vf;
        let f16 = plan.setting_at(16).unwrap().vf;
        assert!(f16 <= f8, "more cache ⇒ lower f*: {f16} vs {f8}");
        assert!(plan.energy_at(16) <= plan.energy_at(8));
        // And fewer ways require a higher frequency.
        let f2 = plan.setting_at(2).unwrap().vf;
        assert!(f2 >= f8);
    }

    #[test]
    fn rm3_exploits_bigger_cores_at_lower_frequency() {
        let t = toy();
        let b = baseline(&t.grid);
        let p2 = local_optimize(&t, RmKind::Rm2, b, &t.grid, 2..=16, 1.0);
        let p3 = local_optimize(&t, RmKind::Rm3, b, &t.grid, 2..=16, 1.0);
        for w in 2..=16 {
            assert!(
                p3.energy_at(w) <= p2.energy_at(w) + 1e-18,
                "RM3's search space contains RM2's: w={w}"
            );
        }
        // In this toy, the L core at a low VF beats M pushed high: RM3
        // should pick a larger core somewhere.
        let picked_l =
            (2..=16).any(|w| p3.setting_at(w).map(|s| s.core == CoreSize::L).unwrap_or(false));
        assert!(picked_l, "RM3 should exploit the wide core");
    }

    #[test]
    fn infeasible_points_are_infinite() {
        // A model in which small allocations can never meet QoS.
        struct Harsh {
            grid: DvfsGrid,
        }
        impl IntervalModel for Harsh {
            fn predict(&self, s: Setting) -> (f64, f64) {
                let t = if s.ways < 8 { 1.0 } else { 1e-9 };
                (t, 1.0)
            }
        }
        let h = Harsh { grid: DvfsGrid::table1() };
        let b = Setting::new(CoreSize::M, h.grid.baseline, 8);
        let plan = local_optimize(&h, RmKind::Rm2, b, &h.grid, 2..=16, 1.0);
        for w in 2..=7 {
            assert!(plan.energy_at(w).is_infinite(), "w={w}");
            assert!(plan.setting_at(w).is_none());
        }
        for w in 8..=16 {
            assert!(plan.energy_at(w).is_finite(), "w={w}");
        }
    }

    #[test]
    fn relaxing_alpha_never_increases_energy() {
        let t = toy();
        let b = baseline(&t.grid);
        let tight = local_optimize(&t, RmKind::Rm3, b, &t.grid, 2..=16, 1.0);
        let loose = local_optimize(&t, RmKind::Rm3, b, &t.grid, 2..=16, 1.2);
        for w in 2..=16 {
            assert!(loose.energy_at(w) <= tight.energy_at(w) + 1e-18, "w={w}");
        }
    }

    #[test]
    fn op_counts_grow_with_controller_scope() {
        let t = toy();
        let b = baseline(&t.grid);
        let o1 = local_optimize(&t, RmKind::Rm1, b, &t.grid, 2..=16, 1.0).ops;
        let o2 = local_optimize(&t, RmKind::Rm2, b, &t.grid, 2..=16, 1.0).ops;
        let o3 = local_optimize(&t, RmKind::Rm3, b, &t.grid, 2..=16, 1.0).ops;
        assert!(o1 < o2, "{o1} {o2}");
        assert!(o2 < o3, "{o2} {o3}");
    }

    #[test]
    fn frequency_scan_picks_minimum_feasible() {
        let t = toy();
        let b = baseline(&t.grid);
        let plan = local_optimize(&t, RmKind::Rm2, b, &t.grid, 2..=16, 1.0);
        for w in 2..=16 {
            if let Some(s) = plan.setting_at(w) {
                // Every lower frequency must violate QoS.
                let (tb, _) = t.predict(b);
                for vf in 0..s.vf {
                    let (tt, _) = t.predict(Setting::new(s.core, vf, w));
                    assert!(tt > tb, "w={w}, vf={vf} should be infeasible");
                }
            }
        }
    }
}
