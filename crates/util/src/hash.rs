//! SHA-256 and a canonical fingerprint builder.
//!
//! The phase-database store keys artifacts by a content digest of their
//! build inputs. Hash stability across processes, platforms and releases is
//! therefore load-bearing: [`Fingerprint`] feeds every value through a
//! fixed, type-tagged, little-endian byte encoding (never `Debug` strings,
//! whose format is unstable) into a std-only SHA-256.

/// Streaming SHA-256 (FIPS 180-4).
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().expect("64-byte split"));
            data = rest;
        }
        // Either the buffer is empty here, or `data` is (the partial-fill
        // branch above consumed it) — so appending is always in bounds.
        self.buf[self.buf_len..self.buf_len + data.len()].copy_from_slice(data);
        self.buf_len += data.len();
    }

    /// Finish and return the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Length block bypasses `update` so `total_len` stays untouched.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// Lowercase hex encoding.
pub fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
    }
    s
}

/// A canonical, injective fingerprint builder over typed values.
///
/// Every feed writes a one-byte type tag followed by a fixed-width
/// little-endian payload (strings and byte slices are length-prefixed), so
/// two different value sequences can never produce the same byte stream —
/// `("ab", "c")` and `("a", "bc")` hash differently, as do `1u64` and
/// `1.0f64`. Floats are hashed by IEEE-754 bit pattern, so `-0.0` and
/// `0.0` are distinct inputs.
pub struct Fingerprint {
    h: Sha256,
}

impl Fingerprint {
    /// Start a fingerprint under a domain-separation label (e.g. a schema
    /// version string): bumping the label invalidates every old digest.
    pub fn new(domain: &str) -> Self {
        let mut f = Fingerprint { h: Sha256::new() };
        f.str(domain);
        f
    }

    fn tagged(&mut self, tag: u8, payload: &[u8]) {
        self.h.update(&[tag]);
        self.h.update(payload);
    }

    /// Feed an unsigned 64-bit value.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.tagged(b'u', &v.to_le_bytes());
        self
    }

    /// Feed a `usize` (widened to 64 bits for cross-platform stability).
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Feed an `f64` by bit pattern.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.tagged(b'f', &v.to_bits().to_le_bytes());
        self
    }

    /// Feed a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.tagged(b's', &(s.len() as u64).to_le_bytes());
        self.h.update(s.as_bytes());
        self
    }

    /// Feed a length-prefixed byte slice.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.tagged(b'b', &(b.len() as u64).to_le_bytes());
        self.h.update(b);
        self
    }

    /// Finish, returning the digest as 64 lowercase hex characters.
    pub fn hex(self) -> String {
        hex(&self.h.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sha_hex(data: &[u8]) -> String {
        let mut h = Sha256::new();
        h.update(data);
        hex(&h.finalize())
    }

    #[test]
    fn fips_test_vectors() {
        assert_eq!(
            sha_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn chunked_updates_match_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut h = Sha256::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(hex(&h.finalize()), sha_hex(&data));
    }

    #[test]
    fn million_a_vector() {
        let mut h = Sha256::new();
        let block = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&block);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn fingerprint_is_injective_on_boundaries() {
        let mut a = Fingerprint::new("t");
        a.str("ab").str("c");
        let mut b = Fingerprint::new("t");
        b.str("a").str("bc");
        assert_ne!(a.hex(), b.hex(), "string boundaries must be part of the encoding");

        let mut a = Fingerprint::new("t");
        a.u64(1);
        let mut b = Fingerprint::new("t");
        b.f64(f64::from_bits(1));
        assert_ne!(a.hex(), b.hex(), "type tags must separate equal payloads");
    }

    #[test]
    fn fingerprint_distinguishes_float_bit_patterns() {
        let mut a = Fingerprint::new("t");
        a.f64(0.0);
        let mut b = Fingerprint::new("t");
        b.f64(-0.0);
        assert_ne!(a.hex(), b.hex());
    }

    #[test]
    fn domain_separates() {
        let mut a = Fingerprint::new("v1");
        a.u64(7);
        let mut b = Fingerprint::new("v2");
        b.u64(7);
        assert_ne!(a.hex(), b.hex());
    }
}
