//! Set-associative cache with true LRU replacement.
//!
//! Used directly for the private L1D and L2 levels, and as the per-allocation
//! reference model the ATD is validated against in tests.

/// A set-associative, true-LRU cache over 64-byte blocks.
///
/// Tags within a set are stored in recency order (index 0 = MRU), so an
/// access is a linear scan plus a prefix rotation — optimal for the small
/// associativities of Table I (≤ 16).
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    /// `sets × ways` tags in recency order per set; `u64::MAX` = invalid.
    tags: Vec<u64>,
    set_shift: u32,
    set_mask: u64,
}

/// Sentinel for an empty way.
const INVALID: u64 = u64::MAX;

impl SetAssocCache {
    /// Create a cache with `sets` sets (power of two) and `ways` ways.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways >= 1);
        SetAssocCache {
            sets,
            ways,
            tags: vec![INVALID; sets * ways],
            set_shift: 6, // 64-byte blocks
            set_mask: (sets - 1) as u64,
        }
    }

    /// Create a cache from a capacity in bytes and an associativity,
    /// assuming 64-byte blocks (Table I).
    pub fn with_capacity(capacity_bytes: usize, ways: usize) -> Self {
        let sets = capacity_bytes / (ways * 64);
        Self::new(sets, ways)
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Access `addr` (byte address); returns `true` on hit. Misses allocate
    /// (write-allocate for stores is the caller's policy — Table I caches
    /// allocate on both loads and stores).
    pub fn access(&mut self, addr: u64) -> bool {
        self.access_block(addr >> self.set_shift)
    }

    /// [`SetAssocCache::access`] by 64-byte block index (`addr >> 6`).
    /// Lets a caller probing several levels compute the shift once.
    #[inline]
    pub fn access_block(&mut self, block: u64) -> bool {
        let set = (block & self.set_mask) as usize;
        let tag = block;
        let base = set * self.ways;
        let slice = &mut self.tags[base..base + self.ways];
        if let Some(pos) = slice.iter().position(|&t| t == tag) {
            // Move to MRU.
            slice[..=pos].rotate_right(1);
            slice[0] = tag;
            true
        } else {
            slice.rotate_right(1);
            slice[0] = tag;
            false
        }
    }

    /// Invalidate all lines.
    pub fn clear(&mut self) {
        self.tags.fill(INVALID);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = SetAssocCache::new(2, 2);
        assert!(!c.access(0));
        assert!(c.access(0));
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 1 set, 2 ways. Access A, B, A, C: C evicts B (LRU), not A.
        let mut c = SetAssocCache::new(1, 2);
        let (a, b, x) = (0u64, 64, 128);
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a));
        assert!(!c.access(x)); // evicts b
        assert!(c.access(a));
        assert!(!c.access(b)); // b was evicted
    }

    #[test]
    fn set_indexing_separates_conflicts() {
        // 2 sets: addresses 0 and 64 go to different sets and never conflict.
        let mut c = SetAssocCache::new(2, 1);
        assert!(!c.access(0));
        assert!(!c.access(64));
        assert!(c.access(0));
        assert!(c.access(64));
        // 0 and 128 share set 0 with 1 way: they thrash.
        assert!(!c.access(128));
        assert!(!c.access(0));
    }

    #[test]
    fn same_block_offsets_map_to_same_line() {
        let mut c = SetAssocCache::new(4, 2);
        assert!(!c.access(100)); // block 1
        assert!(c.access(64)); // same block
        assert!(c.access(127)); // same block
    }

    #[test]
    fn with_capacity_table1_l2() {
        let c = SetAssocCache::with_capacity(256 * 1024, 8);
        assert_eq!(c.sets(), 512);
        assert_eq!(c.ways(), 8);
    }

    #[test]
    fn clear_invalidates() {
        let mut c = SetAssocCache::new(2, 2);
        c.access(0);
        assert!(c.access(0));
        c.clear();
        assert!(!c.access(0));
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup() {
        let mut c = SetAssocCache::with_capacity(8 * 1024, 4);
        let blocks: Vec<u64> = (0..128).map(|i| i * 64).collect(); // 8 KB
        for &b in &blocks {
            c.access(b);
        }
        for &b in &blocks {
            assert!(c.access(b), "block {b} should be resident");
        }
    }

    #[test]
    fn working_set_beyond_capacity_misses_under_sequential_lru() {
        // Sequential cyclic access over 2× capacity: LRU always misses.
        let mut c = SetAssocCache::with_capacity(4 * 1024, 4);
        let blocks: Vec<u64> = (0..128).map(|i| i * 64).collect(); // 8 KB
        for _ in 0..3 {
            for &b in &blocks {
                assert!(!c.access(b), "cyclic sequential over 2x capacity never hits");
            }
        }
    }
}
