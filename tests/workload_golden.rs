//! The workload subsystem's workspace-level contract:
//!
//! 1. a **steady §IV-C `WorkloadSpec`** reproduces the pre-refactor
//!    campaign rows byte-identically — against the same pre-refactor
//!    golden the energy-backend seam is held to — modulo the new
//!    `"workload_fingerprint"` metadata field (and the older
//!    `"energy_backend"` one);
//! 2. a workload-spec'd campaign and its plain-apps equivalent serialize
//!    **byte-identically with no stripping at all** (same trace, same
//!    fingerprint);
//! 3. the `churn` and `workload-sweep` presets run end-to-end through the
//!    `triad-bench` report layer and record a workload fingerprint, a
//!    savings figure and a QoS-violation rate in every row.

use triad::sim::{Campaign, ExperimentSpec};
use triad::workload::WorkloadSpec;
use triad_bench::reports::{self, RunOptions};
use triad_util::json::Json;

/// Byte-exact pre-refactor campaign report (captured from the seed code
/// before either the energy-backend or the workload subsystem existed).
const GOLDEN: &str = include_str!("golden/campaign_default.json");

fn db() -> triad::phasedb::PhaseDb {
    let names = ["mcf", "povray"];
    let apps: Vec<_> =
        triad::trace::suite().into_iter().filter(|a| names.contains(&a.name)).collect();
    triad::phasedb::build_apps(&apps, &triad::phasedb::DbConfig::fast())
}

/// The golden spec list, re-expressed through the workload subsystem: the
/// same steady mcf+povray mix, carried as a `WorkloadSpec` instead of a
/// plain app list.
fn golden_specs_via_workload() -> Vec<ExperimentSpec> {
    let steady = || WorkloadSpec::Static { apps: vec!["mcf".into(), "povray".into()] };
    let base = |name: &str| {
        ExperimentSpec::for_workload_spec(name, steady())
            .expect("static workloads materialize")
            .target_intervals(6)
            .seed(7)
    };
    vec![
        base("golden/idle").rm(None),
        base("golden/rm3-perfect").perfect(),
        base("golden/rm3-model3"),
    ]
}

/// The same specs as plain app lists (the pre-subsystem form).
fn golden_specs_plain() -> Vec<ExperimentSpec> {
    let base =
        |name: &str| ExperimentSpec::new(name, &["mcf", "povray"]).target_intervals(6).seed(7);
    vec![
        base("golden/idle").rm(None),
        base("golden/rm3-perfect").perfect(),
        base("golden/rm3-model3"),
    ]
}

/// Drop the post-refactor metadata lines so the rest of the report can be
/// compared byte-for-byte against the pre-refactor bytes.
fn strip_metadata_lines(report: &str) -> String {
    report
        .lines()
        .filter(|l| {
            let l = l.trim_start();
            !l.starts_with("\"energy_backend\"") && !l.starts_with("\"workload_fingerprint\"")
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

#[test]
fn steady_workload_spec_reproduces_pre_refactor_rows_byte_identically() {
    let db = db();
    let via_workload =
        Campaign::report(&Campaign::new(golden_specs_via_workload()).run(&db)).to_string_pretty();
    // Every row records the workload fingerprint (same trace → same hash).
    assert_eq!(via_workload.matches("\"workload_fingerprint\"").count(), 3);
    let fp = WorkloadSpec::Static { apps: vec!["mcf".into(), "povray".into()] }
        .materialize()
        .unwrap()
        .fingerprint();
    assert_eq!(via_workload.matches(fp.as_str()).count(), 3);
    // Modulo the two metadata lines, the bytes are the pre-refactor bytes.
    assert_eq!(
        strip_metadata_lines(&via_workload),
        GOLDEN,
        "a steady §IV-C WorkloadSpec must reproduce pre-refactor campaign rows \
         byte-identically modulo the workload-fingerprint metadata"
    );
    // And the plain-apps path produces the *same* bytes with no stripping:
    // a static app list and its explicit workload spec are the same trace.
    let plain = Campaign::report(&Campaign::new(golden_specs_plain()).run(&db)).to_string_pretty();
    assert_eq!(via_workload, plain);
}

fn rows_of(doc: &Json) -> &[Json] {
    match doc.get("rows") {
        Some(Json::Arr(rows)) => rows,
        other => panic!("report must carry a rows array, got {other:?}"),
    }
}

fn assert_workload_rows_well_formed(doc: &Json) {
    let rows = rows_of(doc);
    assert!(!rows.is_empty());
    for row in rows {
        match row.get("workload_fingerprint") {
            Some(Json::Str(fp)) => assert_eq!(fp.len(), 64, "sha-256 hex fingerprint"),
            other => panic!("row missing workload_fingerprint: {other:?}"),
        }
        for key in ["savings", "violation_rate"] {
            match row.get(key) {
                Some(Json::Num(x)) => assert!(x.is_finite(), "{key} must be finite"),
                Some(Json::Int(_)) => {}
                other => panic!("row missing {key}: {other:?}"),
            }
        }
        assert!(row.get("scenario").is_some(), "rows are scenario-labeled");
    }
}

#[test]
fn churn_preset_runs_end_to_end_on_a_two_app_pool() {
    let db = db();
    let opts = RunOptions { intervals: Some(8), ..RunOptions::default() };
    let pool = vec!["mcf".to_string(), "povray".to_string()];
    let doc = reports::churn(&db, 2, 2020, &pool, &opts);
    assert_eq!(doc.get("experiment"), Some(&Json::from("churn")));
    assert_workload_rows_well_formed(&doc);
    match doc.get("arrivals") {
        Some(Json::Int(n)) => assert!(*n > 0, "churn must observe arrivals"),
        other => panic!("churn report missing arrivals: {other:?}"),
    }
}

#[test]
fn workload_sweep_preset_runs_end_to_end() {
    // The sweep samples census-wide apps; resolve the full suite through
    // the shared fast-config store (built once, reused by later tests).
    let db = triad::phasedb::DbStore::default_cache()
        .resolve(&triad::trace::suite(), &triad::phasedb::DbConfig::fast())
        .db;
    let opts = RunOptions { intervals: Some(6), ..RunOptions::default() };
    let doc = reports::workload_sweep(&db, 2, 2020, &opts);
    assert_eq!(doc.get("experiment"), Some(&Json::from("workload-sweep")));
    assert_workload_rows_well_formed(&doc);
    // Per-scenario means are reported for every scenario.
    match doc.get("scenario_means") {
        Some(Json::Arr(means)) => assert_eq!(means.len(), 4),
        other => panic!("sweep report missing scenario_means: {other:?}"),
    }
    // Every generator kind appears.
    let rows = rows_of(&doc);
    for kind in ["steady", "phased", "bursty", "churn", "scaled"] {
        assert!(
            rows.iter().any(|r| r.get("kind") == Some(&Json::from(kind))),
            "sweep must cover the {kind} generator"
        );
    }
}
