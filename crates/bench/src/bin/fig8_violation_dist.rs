//! Thin wrapper: `triad-bench --experiment fig8` (Fig. 8 — violation-magnitude distribution).
fn main() -> std::process::ExitCode {
    triad_bench::cli::main_with(Some("fig8"))
}
