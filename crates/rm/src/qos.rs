//! QoS predicate (Eq. 3) and violation magnitude (Eq. 6).

/// Eq. 3: a target satisfies QoS iff its predicted time does not exceed
/// `α ×` the predicted baseline time. The paper fixes `α = 1`.
#[inline]
pub fn qos_ok(t_target: f64, t_base: f64, alpha: f64) -> bool {
    t_target <= t_base * alpha
}

/// Eq. 6: the relative violation magnitude, defined over *actual* times:
/// `(T_act(target) − T_act(base)) / T_act(base)`.
#[inline]
pub fn violation_magnitude(t_act_target: f64, t_act_base: f64) -> f64 {
    (t_act_target - t_act_base) / t_act_base
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq3_boundary_is_inclusive() {
        assert!(qos_ok(1.0, 1.0, 1.0));
        assert!(!qos_ok(1.0 + 1e-9, 1.0, 1.0));
        assert!(qos_ok(1.09, 1.0, 1.1));
    }

    #[test]
    fn eq6_magnitude() {
        assert!((violation_magnitude(1.2, 1.0) - 0.2).abs() < 1e-12);
        assert!(violation_magnitude(0.9, 1.0) < 0.0);
    }
}
