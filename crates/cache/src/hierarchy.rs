//! One-pass private-hierarchy filter: L1D → L2 → LLC classification.
//!
//! The detailed simulator needs, for every memory instruction, the level
//! that services it. Levels L1D and L2 are fixed (Table I), while the LLC
//! outcome depends on the way allocation `w` — so instead of a boolean, LLC
//! accesses are annotated with their ATD **stack distance**: the access hits
//! a `w`-way allocation iff `dist < w`. One classification pass therefore
//! serves timing simulations at *all* allocations.
//!
//! Instruction fetches are assumed to hit the L1I (the synthetic traces
//! model data behavior; SPEC CPU2006 I-side MPKI is negligible for the
//! applications of Table II).

use crate::atd::{Atd, COLD};
use crate::lru::SetAssocCache;
use triad_arch::CacheGeometry;
use triad_trace::{InstKind, Trace};

/// Classification of one memory access (compact `u8` encoding inside
/// [`ClassifiedTrace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// Not a memory instruction.
    NotMem,
    /// Serviced by the private L1D.
    L1Hit,
    /// Serviced by the private L2.
    L2Hit,
    /// Reached the LLC with the given stack distance; hits iff `dist < w`.
    Llc { dist: u8 },
    /// Reached the LLC and missed every tracked position (cold/evicted):
    /// a DRAM access for any allocation.
    LlcCold,
}

/// Compact per-instruction access classification for one phase trace.
#[derive(Debug, Clone)]
pub struct ClassifiedTrace {
    /// One code per instruction (`CODE_*` encoding; non-memory = NOT_MEM).
    codes: Vec<u8>,
    /// ATD state after the pass (hit histogram + miss count = miss curves).
    pub atd: Atd,
    /// L1D hits.
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// Accesses that reached the LLC (ATD accesses).
    pub llc_accesses: u64,
    /// Fraction of LLC accesses that were stores (used to estimate
    /// writeback traffic: dirty lines evicted back to DRAM).
    pub store_frac_at_llc: f64,
}

const NOT_MEM: u8 = 250;
const CODE_L1: u8 = 251;
const CODE_L2: u8 = 252;
const CODE_COLD: u8 = 253;
// 0..=15: LLC stack distance.

/// Service-level latency class of a raw classification code under
/// allocation `w`: 0 = not mem, 1 = L1, 2 = L2, 3 = LLC hit, 4 = DRAM.
///
/// Batch-friendly form of [`ClassifiedTrace::service_level`]: the lockstep
/// timing engine fetches one code per instruction from
/// [`ClassifiedTrace::codes`] and decodes it for every way allocation
/// without re-touching the classification array.
#[inline]
pub fn service_level_of(code: u8, w: usize) -> u8 {
    match code {
        NOT_MEM => 0,
        CODE_L1 => 1,
        CODE_L2 => 2,
        CODE_COLD => 4,
        d if (d as usize) < w => 3,
        _ => 4,
    }
}

/// Does a raw classification code denote an LLC access (hit or miss at any
/// allocation)? Batch-friendly form of [`ClassifiedTrace::is_llc_access`].
#[inline]
pub fn is_llc_code(code: u8) -> bool {
    code <= 15 || code == CODE_COLD
}

/// ATD stack distance a raw LLC-access code carries for the MLP monitor:
/// the distance itself for tracked positions, [`COLD`] otherwise.
#[inline]
pub fn llc_stack_dist_of(code: u8) -> u8 {
    if code <= 15 {
        code
    } else {
        COLD
    }
}

impl ClassifiedTrace {
    /// Decode the classification of instruction `i`.
    pub fn class(&self, i: usize) -> AccessClass {
        match self.codes[i] {
            NOT_MEM => AccessClass::NotMem,
            CODE_L1 => AccessClass::L1Hit,
            CODE_L2 => AccessClass::L2Hit,
            CODE_COLD => AccessClass::LlcCold,
            d => AccessClass::Llc { dist: d },
        }
    }

    /// Raw code for instruction `i` (hot path for the timing model).
    #[inline]
    pub fn code(&self, i: usize) -> u8 {
        self.codes[i]
    }

    /// Raw per-instruction codes (`CODE_*` encoding). The batched timing
    /// engine reads this slice once per trace pass instead of calling
    /// [`ClassifiedTrace::code`] per (instruction, way) pair.
    #[inline]
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Does instruction `i` reach DRAM under allocation `w`?
    #[inline]
    pub fn is_dram(&self, i: usize, w: usize) -> bool {
        let c = self.codes[i];
        c == CODE_COLD || (c <= 15 && c as usize >= w)
    }

    /// Does instruction `i` access the LLC (hit or miss)?
    #[inline]
    pub fn is_llc_access(&self, i: usize) -> bool {
        is_llc_code(self.codes[i])
    }

    /// Service-level latency class under allocation `w`:
    /// 0 = not mem, 1 = L1, 2 = L2, 3 = LLC hit, 4 = DRAM.
    #[inline]
    pub fn service_level(&self, i: usize, w: usize) -> u8 {
        service_level_of(self.codes[i], w)
    }

    /// LLC miss count for allocation `w` (from the ATD histogram).
    pub fn llc_misses(&self, w: usize) -> u64 {
        self.atd.miss_count(w)
    }

    /// Estimated DRAM writeback count at allocation `w`: dirty-line
    /// evictions approximated as the store share of LLC misses.
    pub fn writebacks(&self, w: usize) -> u64 {
        (self.llc_misses(w) as f64 * self.store_frac_at_llc).round() as u64
    }

    /// Number of instructions in the classified trace.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the trace was empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }
}

/// Run the one-pass hierarchy filter over a phase trace.
pub fn classify(trace: &Trace, geom: &CacheGeometry) -> ClassifiedTrace {
    classify_warm(trace, geom, 0)
}

/// [`classify`] with a warm-up prefix, mirroring the paper's 100M-warmup +
/// 100M-detailed simulation windows (§IV-A): the first `warmup`
/// instructions update cache and directory state but produce no codes or
/// counters. The returned [`ClassifiedTrace`] covers only
/// `trace.insts[warmup..]`, indexed from 0.
pub fn classify_warm(trace: &Trace, geom: &CacheGeometry, warmup: usize) -> ClassifiedTrace {
    assert!(warmup <= trace.len(), "warmup longer than trace");
    let mut l1 = SetAssocCache::with_capacity(geom.l1d.capacity_bytes, geom.l1d.ways);
    let mut l2 = SetAssocCache::with_capacity(geom.l2.capacity_bytes, geom.l2.ways);
    let mut atd = Atd::new(geom.llc.sets(), geom.max_ways_per_core);
    for inst in &trace.insts[..warmup] {
        if inst.kind.is_mem() && !l1.access(inst.addr) && !l2.access(inst.addr) {
            atd.access(inst.addr);
        }
    }
    atd.reset_counters();

    let detailed = &trace.insts[warmup..];
    let mut codes = vec![NOT_MEM; detailed.len()];
    let (mut l1_hits, mut l2_hits, mut llc_accesses, mut llc_stores) = (0u64, 0u64, 0u64, 0u64);
    for (i, inst) in detailed.iter().enumerate() {
        if !inst.kind.is_mem() {
            continue;
        }
        if l1.access(inst.addr) {
            codes[i] = CODE_L1;
            l1_hits += 1;
        } else if l2.access(inst.addr) {
            codes[i] = CODE_L2;
            l2_hits += 1;
        } else {
            let d = atd.access(inst.addr);
            llc_accesses += 1;
            if inst.kind == InstKind::Store {
                llc_stores += 1;
            }
            codes[i] = if d == COLD { CODE_COLD } else { d };
        }
    }
    let store_frac_at_llc =
        if llc_accesses > 0 { llc_stores as f64 / llc_accesses as f64 } else { 0.0 };
    ClassifiedTrace { codes, atd, l1_hits, l2_hits, llc_accesses, store_frac_at_llc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_trace::{Inst, InstKind, MemRegion, PhaseSpec};

    fn geom() -> CacheGeometry {
        CacheGeometry::table1(4)
    }

    fn load(addr: u64) -> Inst {
        Inst { addr, kind: InstKind::Load, ..Inst::alu() }
    }

    #[test]
    fn tiny_working_set_hits_l1() {
        // 8 blocks reused heavily: everything after warmup hits L1.
        let mut insts = Vec::new();
        for r in 0..100 {
            for b in 0..8u64 {
                let _ = r;
                insts.push(load(b * 64));
            }
        }
        let ct = classify(&Trace { insts }, &geom());
        assert_eq!(ct.llc_accesses, 8); // cold only
        assert!(ct.l1_hits >= 8 * 99);
    }

    #[test]
    fn l2_sized_working_set_hits_l2() {
        // 128 KiB (2048 blocks) round-robin: too big for 32 KiB L1,
        // fits 256 KiB L2.
        let mut insts = Vec::new();
        for _ in 0..20 {
            for b in 0..2048u64 {
                insts.push(load(b * 64));
            }
        }
        let ct = classify(&Trace { insts }, &geom());
        // After the cold pass, all accesses hit L2 (sequential LRU over 2x
        // the L1 capacity always misses L1).
        assert_eq!(ct.llc_accesses, 2048);
        assert!(ct.l2_hits >= 2048 * 19);
        assert_eq!(ct.l1_hits, 0);
    }

    #[test]
    fn llc_distance_drives_dram_decision() {
        // Scaled setup (÷16), as used by the detailed simulator: the 3 MB
        // region becomes 192 KiB against 16 KiB ways, preserving the knee
        // between w=8 and w=16.
        let geom = CacheGeometry::table1_scaled(4, 16);
        let spec = PhaseSpec {
            tag: 5,
            load_frac: 1.0,
            store_frac: 0.0,
            branch_frac: 0.0,
            longop_frac: 0.0,
            mispredict_rate: 0.0,
            dep_mean: 8.0,
            dep2_prob: 0.0,
            chase_frac: 0.0,
            burst: 1.0,
            addr_dep: 0.0,
            // 3 MB uniform region: knee between w=8 (2MB) and w=16 (4MB).
            regions: vec![MemRegion::reuse_kib(3 * 1024, 1.0)],
        }
        .scaled(16);
        let t = spec.generate(120_000, 3);
        let ct = classify_warm(&t, &geom, 40_000);
        let m2 = ct.llc_misses(2);
        let m8 = ct.llc_misses(8);
        let m16 = ct.llc_misses(16);
        assert!(m2 > m8, "fewer ways must miss more: {m2} vs {m8}");
        assert!(m8 > m16 * 2, "3MB set should mostly fit at 16 ways: {m8} vs {m16}");
        // Per-instruction consistency with the curve.
        let mut count8 = 0u64;
        for i in 0..ct.len() {
            if ct.is_dram(i, 8) {
                count8 += 1;
            }
        }
        assert_eq!(count8, m8);
    }

    #[test]
    fn warmup_removes_cold_misses_for_resident_sets() {
        // A 64 KiB region fits 4 LLC ways at scale ÷16 (4 KiB each... it
        // fits at w≥4): after warmup, w=16 misses should be near zero while
        // an unwarmed pass pays the full cold-miss bill.
        let geom = CacheGeometry::table1_scaled(4, 16);
        let spec = PhaseSpec {
            tag: 7,
            load_frac: 1.0,
            store_frac: 0.0,
            branch_frac: 0.0,
            longop_frac: 0.0,
            mispredict_rate: 0.0,
            dep_mean: 8.0,
            dep2_prob: 0.0,
            chase_frac: 0.0,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![MemRegion::reuse_kib(64, 1.0)],
        };
        let t = spec.generate(60_000, 4);
        let cold = classify(&t, &geom);
        let warm = classify_warm(&t, &geom, 30_000);
        assert!(
            warm.llc_misses(16) * 10 < cold.llc_misses(16).max(1),
            "warmup should eliminate cold misses: {} vs {}",
            warm.llc_misses(16),
            cold.llc_misses(16)
        );
    }

    #[test]
    fn service_levels_are_consistent() {
        let spec = PhaseSpec {
            tag: 6,
            load_frac: 0.4,
            store_frac: 0.1,
            branch_frac: 0.1,
            longop_frac: 0.1,
            mispredict_rate: 0.01,
            dep_mean: 6.0,
            dep2_prob: 0.2,
            chase_frac: 0.1,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![MemRegion::reuse_kib(64, 0.6), MemRegion::reuse_kib(2048, 0.4)],
        };
        let t = spec.generate(50_000, 9);
        let ct = classify(&t, &geom());
        for i in 0..ct.len() {
            let lvl4 = ct.service_level(i, 4);
            let lvl16 = ct.service_level(i, 16);
            // More ways can only move DRAM accesses to LLC hits.
            if lvl4 == 3 {
                assert_eq!(lvl16, 3);
            }
            if lvl16 == 4 {
                assert_eq!(lvl4, 4);
            }
            // Non-mem stays non-mem; private levels are w-independent.
            if lvl4 <= 2 {
                assert_eq!(lvl4, lvl16);
            }
        }
    }

    #[test]
    fn store_frac_reflects_mix() {
        let mut insts = Vec::new();
        for b in 0..4096u64 {
            // Alternate loads and stores over a large one-shot region: all
            // reach the LLC (cold in L1/L2).
            let kind = if b % 2 == 0 { InstKind::Load } else { InstKind::Store };
            insts.push(Inst { addr: b * 64, kind, ..Inst::alu() });
        }
        let ct = classify(&Trace { insts }, &geom());
        assert!((ct.store_frac_at_llc - 0.5).abs() < 0.05);
        assert_eq!(ct.writebacks(8), ct.llc_misses(8) / 2);
    }

    #[test]
    fn non_mem_instructions_are_not_classified() {
        let t = Trace { insts: vec![Inst::alu(); 100] };
        let ct = classify(&t, &geom());
        assert_eq!(ct.llc_accesses, 0);
        for i in 0..100 {
            assert_eq!(ct.class(i), AccessClass::NotMem);
            assert_eq!(ct.service_level(i, 8), 0);
            assert!(!ct.is_dram(i, 2));
        }
    }
}
