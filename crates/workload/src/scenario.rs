//! Workload scenarios (Fig. 1) and the §IV-C steady-mix generator.
//!
//! Fig. 1 analyzes all mixes of two application categories. Each ordered
//! cell `(A, B)` has probability `n_A · n_B / 27²` (from the Table II
//! census), and the cells group into four scenarios:
//!
//! * **S1** — the proposed RM3 beats prior art (RM2): the mix pairs cache
//!   sensitivity with parallelism sensitivity (any mix containing a CS-PS
//!   application, or CS-PI together with CI-PS). Collective weight 47 %.
//! * **S2** — RM2 and RM3 comparable: cache-sensitive mixes without any
//!   parallelism sensitivity ({CS-PI, CS-PI} and {CS-PI, CI-PI}). 22.1 %.
//! * **S3** — only RM3 effective: cache-insensitive mixes with at least one
//!   parallelism-sensitive application. 22.1 %.
//! * **S4** — nothing helps: {CI-PI, CI-PI}. 8.8 %.
//!
//! §IV-C extends each two-category cell to 4- and 8-core workloads: the
//! first half of the cores draws applications from category `A`, the second
//! half from `B`, with `random.choice` semantics (uniform with
//! replacement).

use triad_trace::{by_category, suite, Category};
use triad_util::rand::rngs::StdRng;
use triad_util::rand::{RngExt, SeedableRng};

/// The four workload scenarios of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scenario {
    /// RM3 expected to beat RM2.
    S1,
    /// RM2 ≈ RM3.
    S2,
    /// Only RM3 effective.
    S3,
    /// Limited/no savings for every RM.
    S4,
}

impl Scenario {
    /// All scenarios in order.
    pub const ALL: [Scenario; 4] = [Scenario::S1, Scenario::S2, Scenario::S3, Scenario::S4];

    /// The paper's scenario weights (§V-A): 47 / 22.1 / 22.1 / 8.8 %.
    pub fn weight(self) -> f64 {
        match self {
            Scenario::S1 => 0.47,
            Scenario::S2 => 0.221,
            Scenario::S3 => 0.221,
            Scenario::S4 => 0.088,
        }
    }

    /// Display label ("Scenario 1"…).
    pub fn label(self) -> &'static str {
        match self {
            Scenario::S1 => "Scenario 1",
            Scenario::S2 => "Scenario 2",
            Scenario::S3 => "Scenario 3",
            Scenario::S4 => "Scenario 4",
        }
    }

    /// Short machine-readable label ("S1"…), the form workload-spec JSON
    /// uses.
    pub fn short(self) -> &'static str {
        match self {
            Scenario::S1 => "S1",
            Scenario::S2 => "S2",
            Scenario::S3 => "S3",
            Scenario::S4 => "S4",
        }
    }

    /// Inverse of [`Scenario::short`] (case-insensitive).
    pub fn from_short(s: &str) -> Option<Scenario> {
        match s.to_ascii_uppercase().as_str() {
            "S1" => Some(Scenario::S1),
            "S2" => Some(Scenario::S2),
            "S3" => Some(Scenario::S3),
            "S4" => Some(Scenario::S4),
            _ => None,
        }
    }

    /// A representative `(first half, second half)` category pair used to
    /// *generate* workloads of this scenario (§IV-C: for S1 the second half
    /// is CS-PS; CS-PI is also allowed when the first half is CI-PS).
    pub fn generator_pairs(self) -> Vec<(Category, Category)> {
        use Category::*;
        match self {
            Scenario::S1 => {
                vec![(CsPs, CsPs), (CsPi, CsPs), (CiPs, CsPs), (CiPi, CsPs), (CiPs, CsPi)]
            }
            Scenario::S2 => vec![(CsPi, CsPi), (CiPi, CsPi)],
            Scenario::S3 => vec![(CiPs, CiPs), (CiPi, CiPs)],
            Scenario::S4 => vec![(CiPi, CiPi)],
        }
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Fig. 1 cell classification for an unordered category pair.
pub fn scenario_of_pair(a: Category, b: Category) -> Scenario {
    let cs = a.cache_sensitive() || b.cache_sensitive();
    let ps = a.parallelism_sensitive() || b.parallelism_sensitive();
    match (cs, ps) {
        (true, true) => Scenario::S1,
        (true, false) => Scenario::S2,
        (false, true) => Scenario::S3,
        (false, false) => Scenario::S4,
    }
}

/// Probability of the ordered category cell `(a, b)`: `n_a · n_b / 27²`
/// (Fig. 1's per-cell numbers, e.g. 8.8 % for CI-PI × CI-PI).
pub fn cell_probability(a: Category, b: Category) -> f64 {
    let count = |c: Category| suite().iter().filter(|x| x.category == c).count() as f64;
    count(a) * count(b) / (27.0 * 27.0)
}

/// Collective probability of a scenario over all ordered cells — must
/// reproduce the 47 / 22.1 / 22.1 / 8.8 % weights.
pub fn scenario_probability(s: Scenario) -> f64 {
    let mut p = 0.0;
    for a in Category::ALL {
        for b in Category::ALL {
            if scenario_of_pair(a, b) == s {
                p += cell_probability(a, b);
            }
        }
    }
    p
}

/// A generated multiprogrammed workload: one application name per core.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name, e.g. "4Core-W7".
    pub name: String,
    /// Scenario it was generated for.
    pub scenario: Scenario,
    /// Application names, one per core.
    pub apps: Vec<&'static str>,
}

/// Sample one §IV-C mix: a category pair — drawn uniformly from the
/// scenario's admissible [`Scenario::generator_pairs`] when given, else
/// census-weighted (the category of a uniformly random application per
/// half, which reproduces Fig. 1's `n_A · n_B / 27²` cell probabilities) —
/// then one application per core uniformly **with replacement** from the
/// half's category pool. Returns the apps and the realized scenario.
pub fn sample_mix(
    n_cores: usize,
    scenario: Option<Scenario>,
    rng: &mut StdRng,
) -> (Vec<&'static str>, Scenario) {
    assert!(n_cores >= 2 && n_cores.is_multiple_of(2), "§IV-C mixes need an even core count");
    let (ca, cb) = match scenario {
        Some(s) => {
            let pairs = s.generator_pairs();
            pairs[rng.random_range(0..pairs.len())]
        }
        None => {
            let census = suite();
            let a = census[rng.random_range(0..census.len())].category;
            let b = census[rng.random_range(0..census.len())].category;
            (a, b)
        }
    };
    let pool_a = by_category(ca);
    let pool_b = by_category(cb);
    let mut apps = Vec::with_capacity(n_cores);
    for _ in 0..n_cores / 2 {
        apps.push(pool_a[rng.random_range(0..pool_a.len())].name);
    }
    for _ in 0..n_cores / 2 {
        apps.push(pool_b[rng.random_range(0..pool_b.len())].name);
    }
    (apps, scenario_of_pair(ca, cb))
}

/// Generate `per_scenario` workloads of `n_cores` cores for every scenario
/// (§IV-C): the first half of the cores draws from the pair's first
/// category, the second half from the second, uniformly with replacement
/// (Python `random.choice`), cycling over the scenario's admissible
/// category pairs. Workload numbering follows the paper: W1.. for S1, then
/// S2, S3, S4.
pub fn generate_workloads(n_cores: usize, per_scenario: usize, seed: u64) -> Vec<Workload> {
    assert!(n_cores >= 2 && n_cores.is_multiple_of(2));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut wnum = 1;
    for s in Scenario::ALL {
        let pairs = s.generator_pairs();
        for k in 0..per_scenario {
            let (ca, cb) = pairs[k % pairs.len()];
            let pool_a = by_category(ca);
            let pool_b = by_category(cb);
            let mut apps = Vec::with_capacity(n_cores);
            for _ in 0..n_cores / 2 {
                apps.push(pool_a[rng.random_range(0..pool_a.len())].name);
            }
            for _ in 0..n_cores / 2 {
                apps.push(pool_b[rng.random_range(0..pool_b.len())].name);
            }
            out.push(Workload { name: format!("{n_cores}Core-W{wnum}"), scenario: s, apps });
            wnum += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use Category::*;

    #[test]
    fn fig1_cell_probabilities() {
        // The numbers printed in Fig. 1 (upper triangle).
        assert!((cell_probability(CiPi, CiPi) - 8.0 * 8.0 / 729.0).abs() < 1e-12);
        assert!((cell_probability(CiPi, CiPs) - 8.0 * 7.0 / 729.0).abs() < 1e-12);
        assert!((cell_probability(CiPi, CsPs) - 8.0 * 5.0 / 729.0).abs() < 1e-12);
        assert!((cell_probability(CsPs, CsPs) - 25.0 / 729.0).abs() < 1e-12);
        // Fig. 1 prints 8.8%, 7.7%, 5.5%, 3.4%:
        assert!((cell_probability(CiPi, CiPi) * 100.0 - 8.8).abs() < 0.05);
        assert!((cell_probability(CiPi, CiPs) * 100.0 - 7.7).abs() < 0.05);
        assert!((cell_probability(CiPi, CsPs) * 100.0 - 5.5).abs() < 0.05);
        assert!((cell_probability(CsPs, CsPs) * 100.0 - 3.4).abs() < 0.05);
    }

    #[test]
    fn scenario_weights_match_paper() {
        assert!((scenario_probability(Scenario::S1) * 100.0 - 47.0).abs() < 0.15);
        assert!((scenario_probability(Scenario::S2) * 100.0 - 22.1).abs() < 0.1);
        assert!((scenario_probability(Scenario::S3) * 100.0 - 22.1).abs() < 0.1);
        assert!((scenario_probability(Scenario::S4) * 100.0 - 8.8).abs() < 0.1);
        let total: f64 = Scenario::ALL.iter().map(|&s| scenario_probability(s)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scenario_classification_matches_fig1() {
        // S1: any mix with CS-PS, plus CS-PI with CI-PS.
        assert_eq!(scenario_of_pair(CsPs, CsPs), Scenario::S1);
        assert_eq!(scenario_of_pair(CiPi, CsPs), Scenario::S1);
        assert_eq!(scenario_of_pair(CsPi, CiPs), Scenario::S1);
        // S2: cache-sensitive, no parallelism sensitivity.
        assert_eq!(scenario_of_pair(CsPi, CsPi), Scenario::S2);
        assert_eq!(scenario_of_pair(CsPi, CiPi), Scenario::S2);
        // S3: cache-insensitive with parallelism sensitivity.
        assert_eq!(scenario_of_pair(CiPs, CiPs), Scenario::S3);
        assert_eq!(scenario_of_pair(CiPs, CiPi), Scenario::S3);
        // S4: nothing to trade.
        assert_eq!(scenario_of_pair(CiPi, CiPi), Scenario::S4);
    }

    #[test]
    fn generated_workloads_respect_the_recipe() {
        for n in [2usize, 4, 8] {
            let ws = generate_workloads(n, 6, 1);
            assert_eq!(ws.len(), 24);
            for w in &ws {
                assert_eq!(w.apps.len(), n);
                let cats: Vec<Category> = w
                    .apps
                    .iter()
                    .map(|name| triad_trace::by_name(name).unwrap().category)
                    .collect();
                // Each half must be drawn from a single category, and the
                // unordered pair must classify into the workload's scenario.
                let a = cats[0];
                let b = cats[n / 2];
                assert!(cats[..n / 2].iter().all(|&c| c == a), "{:?}", w);
                assert!(cats[n / 2..].iter().all(|&c| c == b), "{:?}", w);
                assert_eq!(scenario_of_pair(a, b), w.scenario, "{:?}", w);
            }
        }
    }

    #[test]
    fn workload_names_follow_paper_numbering() {
        let ws = generate_workloads(4, 6, 2);
        assert_eq!(ws[0].name, "4Core-W1");
        assert_eq!(ws[23].name, "4Core-W24");
        // W1..W6 are Scenario 1; W19..W24 are Scenario 4 (paper: 4Core-W21
        // and 8Core-W20/W22/W24 are discussed as Scenario 4).
        assert_eq!(ws[5].scenario, Scenario::S1);
        assert_eq!(ws[6].scenario, Scenario::S2);
        assert_eq!(ws[18].scenario, Scenario::S4);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_workloads(4, 6, 9);
        let b = generate_workloads(4, 6, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.apps, y.apps);
        }
    }

    #[test]
    fn sampled_mix_halves_stay_in_category_and_realize_the_scenario() {
        use triad_util::rand::rngs::StdRng;
        use triad_util::rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        for seed_round in 0..50u64 {
            let scenario = Scenario::ALL[(seed_round % 4) as usize];
            let (apps, realized) = sample_mix(4, Some(scenario), &mut rng);
            assert_eq!(realized, scenario);
            let cats: Vec<Category> =
                apps.iter().map(|n| triad_trace::by_name(n).unwrap().category).collect();
            assert!(cats[..2].iter().all(|&c| c == cats[0]));
            assert!(cats[2..].iter().all(|&c| c == cats[2]));
            assert_eq!(scenario_of_pair(cats[0], cats[2]), scenario);
        }
    }
}
