//! Experiment drivers for the paper's result figures (Figs. 2, 6, 9).
//!
//! Each figure is expressed as a [`Campaign`] of declarative
//! [`ExperimentSpec`]s and executed in parallel: idle references are
//! memoized per workload, and all (workload × controller × model) cells of
//! a figure run concurrently.

use crate::campaign::{Campaign, CampaignRow, ExperimentSpec};
use crate::engine::SimModel;
use triad_phasedb::PhaseDb;
use triad_rm::{ModelKind, RmKind};
use triad_workload::{generate_workloads, Scenario, Workload};

/// Energy savings of the three controllers on one workload.
#[derive(Debug, Clone)]
pub struct RmComparison {
    /// The workload evaluated.
    pub workload: Workload,
    /// Savings (fraction of idle-RM energy) for RM1, RM2, RM3.
    pub savings: [f64; 3],
    /// Observed QoS-violation rate per RM (violating intervals / checked).
    pub violation_rate: [f64; 3],
}

/// The model each controller uses in the realistic (Fig. 6) runs: the
/// prior-art controllers RM1/RM2 ship with the constant-MLP model
/// (Model2 — [Nejat et al., IPDPS 2019]); the proposed RM3 uses Model3.
pub fn default_model_for(rm: RmKind) -> SimModel {
    match rm {
        RmKind::Rm1 | RmKind::Rm2 => SimModel::Online(ModelKind::Model2),
        RmKind::Rm3 | RmKind::Rm3Full => SimModel::Online(ModelKind::Model3),
    }
}

/// The specs of one RM1/RM2/RM3 comparison row (Fig. 2/6 cell).
pub fn comparison_specs(
    wl: &Workload,
    perfect: bool,
    overheads: bool,
    seed: u64,
) -> Vec<ExperimentSpec> {
    RmKind::ALL
        .iter()
        .map(|&rm| {
            let model = if perfect { SimModel::Perfect } else { default_model_for(rm) };
            ExperimentSpec::for_workload(wl, Some(rm)).model(model).overheads(overheads).seed(seed)
        })
        .collect()
}

/// Fold three campaign rows (RM1/RM2/RM3, in order) into one comparison.
pub fn fold_comparison(wl: &Workload, rows: &[CampaignRow]) -> RmComparison {
    let mut savings = [0.0; 3];
    let mut viol = [0.0; 3];
    for (i, row) in rows.iter().enumerate() {
        savings[i] = row.savings;
        viol[i] = row.violation_rate;
    }
    RmComparison { workload: wl.clone(), savings, violation_rate: viol }
}

/// Fold campaign rows produced from per-workload [`comparison_specs`]
/// back into comparisons — the one place that knows the rows arrive in
/// `RmKind::ALL`-sized chunks per workload.
pub fn fold_comparisons(workloads: &[Workload], rows: &[CampaignRow]) -> Vec<RmComparison> {
    assert_eq!(rows.len(), workloads.len() * RmKind::ALL.len());
    workloads
        .iter()
        .zip(rows.chunks(RmKind::ALL.len()))
        .map(|(wl, chunk)| fold_comparison(wl, chunk))
        .collect()
}

/// Compare RM1/RM2/RM3 against the idle RM on many workloads — one
/// parallel campaign with per-workload memoized idle references.
pub fn compare_rms_many(
    db: &PhaseDb,
    workloads: &[Workload],
    perfect: bool,
    overheads: bool,
    seed: u64,
) -> Vec<RmComparison> {
    let specs: Vec<ExperimentSpec> =
        workloads.iter().flat_map(|wl| comparison_specs(wl, perfect, overheads, seed)).collect();
    let rows = Campaign::new(specs).run(db);
    fold_comparisons(workloads, &rows)
}

/// Compare RM1/RM2/RM3 on one workload against the idle RM.
pub fn compare_rms(db: &PhaseDb, wl: &Workload, perfect: bool, overheads: bool) -> RmComparison {
    compare_rms_many(db, std::slice::from_ref(wl), perfect, overheads, 0)
        .pop()
        .expect("one workload in, one comparison out")
}

/// Fig. 2: two-core workloads, one per scenario, with perfect models and no
/// overheads.
///
/// Representative pairs (first × second half category per §II):
/// S1 = libquantum + mcf (CI-PS × CS-PS), S2 = xalancbmk + povray (CS-PI × CI-PI),
/// S3 = libquantum + bwaves (CI-PS × CI-PS), S4 = povray + gamess
/// (CI-PI × CI-PI).
pub fn fig2(db: &PhaseDb) -> Vec<RmComparison> {
    compare_rms_many(db, &fig2_workloads(), true, false, 0)
}

/// The four representative two-core workloads of Fig. 2.
pub fn fig2_workloads() -> Vec<Workload> {
    let cases = [
        (Scenario::S1, ["libquantum", "mcf"]),
        (Scenario::S2, ["xalancbmk", "povray"]),
        (Scenario::S3, ["libquantum", "bwaves"]),
        (Scenario::S4, ["povray", "gamess"]),
    ];
    cases
        .iter()
        .map(|(s, apps)| Workload {
            name: format!("2Core-{}", s.label()),
            scenario: *s,
            apps: apps.to_vec(),
        })
        .collect()
}

/// Fig. 6: six workloads per scenario at `n_cores` (4 or 8 in the paper),
/// realistic models and overheads, RM1/RM2/RM3.
pub fn fig6(db: &PhaseDb, n_cores: usize, seed: u64) -> Vec<RmComparison> {
    compare_rms_many(db, &generate_workloads(n_cores, 6, seed), false, true, seed)
}

/// Scenario-weighted and plain averages over a set of comparisons
/// (the paper weights scenarios by 47/22.1/22.1/8.8 %).
pub fn averages(rows: &[RmComparison]) -> (Vec<f64>, Vec<f64>) {
    let mut weighted = vec![0.0; 3];
    let mut plain = vec![0.0; 3];
    for rm in 0..3 {
        let mut wsum = 0.0;
        for s in Scenario::ALL {
            let in_s: Vec<f64> =
                rows.iter().filter(|r| r.workload.scenario == s).map(|r| r.savings[rm]).collect();
            if !in_s.is_empty() {
                let mean = in_s.iter().sum::<f64>() / in_s.len() as f64;
                weighted[rm] += s.weight() * mean;
                wsum += s.weight();
            }
        }
        if wsum > 0.0 {
            weighted[rm] /= wsum;
        }
        plain[rm] = rows.iter().map(|r| r.savings[rm]).sum::<f64>() / rows.len().max(1) as f64;
    }
    (weighted, plain)
}

/// Per-scenario mean savings per RM.
pub fn scenario_means(rows: &[RmComparison]) -> Vec<(Scenario, [f64; 3])> {
    Scenario::ALL
        .iter()
        .map(|&s| {
            let in_s: Vec<&RmComparison> =
                rows.iter().filter(|r| r.workload.scenario == s).collect();
            let mut m = [0.0; 3];
            for (rm, slot) in m.iter_mut().enumerate() {
                *slot = in_s.iter().map(|r| r.savings[rm]).sum::<f64>() / in_s.len().max(1) as f64;
            }
            (s, m)
        })
        .collect()
}

/// One workload's RM3 savings under every model (Fig. 9).
#[derive(Debug, Clone)]
pub struct ModelComparison {
    /// The workload evaluated.
    pub workload: Workload,
    /// Savings under Model1, Model2, Model3, and the perfect model.
    pub savings: [f64; 4],
}

/// Fig. 9: RM3 with Model1/Model2/Model3 versus the perfect-model bound, on
/// the same workloads as Fig. 6 (overheads included; the perfect bound also
/// predicts the next phase exactly).
pub fn fig9(db: &PhaseDb, n_cores: usize, seed: u64) -> Vec<ModelComparison> {
    let workloads = generate_workloads(n_cores, 6, seed);
    let rows = Campaign::new(fig9_specs(&workloads, seed)).run(db);
    fold_model_comparisons(&workloads, &rows)
}

/// The model ladder Fig. 9 sweeps, in figure order.
pub const FIG9_MODELS: [SimModel; 4] = [
    SimModel::Online(ModelKind::Model1),
    SimModel::Online(ModelKind::Model2),
    SimModel::Online(ModelKind::Model3),
    SimModel::Perfect,
];

/// The RM3-under-every-model specs for a set of workloads (Fig. 9 cells).
pub fn fig9_specs(workloads: &[Workload], seed: u64) -> Vec<ExperimentSpec> {
    workloads
        .iter()
        .flat_map(|wl| {
            FIG9_MODELS.iter().map(|&model| {
                ExperimentSpec::for_workload(wl, Some(RmKind::Rm3)).model(model).seed(seed)
            })
        })
        .collect()
}

/// Fold campaign rows produced from [`fig9_specs`] back into per-workload
/// model comparisons.
pub fn fold_model_comparisons(
    workloads: &[Workload],
    rows: &[CampaignRow],
) -> Vec<ModelComparison> {
    workloads
        .iter()
        .zip(rows.chunks(FIG9_MODELS.len()))
        .map(|(wl, chunk)| {
            let mut savings = [0.0; 4];
            for (i, row) in chunk.iter().enumerate() {
                savings[i] = row.savings;
            }
            ModelComparison { workload: wl.clone(), savings }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_phasedb::{DbConfig, DbStore};

    /// Resolved through the shared workspace store (see
    /// `campaign::tests::small_db`): warm test runs skip the build.
    fn db() -> PhaseDb {
        let names = [
            "mcf",
            "sphinx3",
            "gcc",
            "hmmer",
            "xalancbmk",
            "libquantum",
            "bwaves",
            "povray",
            "gamess",
        ];
        let apps: Vec<_> =
            triad_trace::suite().into_iter().filter(|a| names.contains(&a.name)).collect();
        DbStore::default_cache().resolve(&apps, &DbConfig::fast()).db
    }

    #[test]
    fn fig2_shapes_hold() {
        let db = db();
        let rows = fig2(&db);
        assert_eq!(rows.len(), 4);
        let s1 = &rows[0].savings;
        let s2 = &rows[1].savings;
        let s3 = &rows[2].savings;
        let s4 = &rows[3].savings;
        // Scenario 1: RM3 clearly above RM2.
        assert!(s1[2] > s1[1] + 0.01, "S1: RM3 {} vs RM2 {}", s1[2], s1[1]);
        // Scenario 2: RM2 and RM3 comparable.
        assert!((s2[2] - s2[1]).abs() < 0.05, "S2: RM3 {} vs RM2 {}", s2[2], s2[1]);
        // Scenario 3: only RM3 effective.
        assert!(s3[2] > 0.03, "S3: RM3 must save: {}", s3[2]);
        assert!(s3[1] < s3[2] * 0.5, "S3: RM2 {} must trail RM3 {}", s3[1], s3[2]);
        // Scenario 4: nobody saves much.
        assert!(s4[2].abs() < 0.04, "S4: RM3 should be ineffective: {}", s4[2]);
    }

    #[test]
    fn averages_are_convex_combinations() {
        let db = db();
        let rows = fig2(&db);
        let (weighted, plain) = averages(&rows);
        for rm in 0..3 {
            let lo = rows.iter().map(|r| r.savings[rm]).fold(f64::INFINITY, f64::min);
            let hi = rows.iter().map(|r| r.savings[rm]).fold(f64::NEG_INFINITY, f64::max);
            assert!(weighted[rm] >= lo - 1e-12 && weighted[rm] <= hi + 1e-12);
            assert!(plain[rm] >= lo - 1e-12 && plain[rm] <= hi + 1e-12);
        }
    }
}
