//! Basic-block-vector (BBV) emission for SimPoint-style phase analysis.
//!
//! SimPoint characterizes each execution interval by the frequency vector of
//! the basic blocks it executes, then clusters intervals into phases. Our
//! synthetic applications do not have literal basic blocks, so each
//! [`PhaseSpec`] deterministically induces a *signature* vector — a proxy for
//! the block-frequency profile that code executing that phase would produce —
//! and every interval emits its phase's signature perturbed by small
//! measurement noise. The `triad-simpoint` clusterer then has to recover the
//! phase structure exactly as SimPoint would, without being told the labels.

use crate::apps::AppSpec;
use crate::phase::PhaseSpec;
use triad_util::rand::rngs::StdRng;
use triad_util::rand::{RngExt, SeedableRng};

/// Dimensionality of the (projected) basic-block vectors. SimPoint projects
/// raw BBVs down to ~15 dimensions; we use 16.
pub const BBV_DIM: usize = 16;

/// The deterministic signature vector of a phase: a non-negative,
/// L1-normalized pseudo-random profile seeded by the phase tag.
pub fn signature(phase: &PhaseSpec) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(phase.tag.wrapping_mul(0xD134_2543_DE82_EF95));
    let mut v: Vec<f64> = (0..BBV_DIM).map(|_| rng.random::<f64>()).collect();
    // Fold the instruction mix into the first dimensions so that behaviorally
    // different phases are geometrically separated even under tag collisions.
    v[0] += phase.load_frac * 2.0;
    v[1] += phase.store_frac * 2.0;
    v[2] += phase.branch_frac * 2.0;
    v[3] += phase.longop_frac * 2.0;
    let s: f64 = v.iter().sum();
    for x in &mut v {
        *x /= s;
    }
    v
}

/// Per-interval BBVs for a full application run: interval `i` emits the
/// signature of `app.sequence[i]` plus bounded multiplicative noise
/// (re-normalized), seeded by `seed` and the interval index.
pub fn interval_bbvs(app: &AppSpec, noise: f64, seed: u64) -> Vec<Vec<f64>> {
    let sigs: Vec<Vec<f64>> = app.phases.iter().map(signature).collect();
    app.sequence
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let mut rng = StdRng::seed_from_u64(
                seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ p as u64,
            );
            let mut v: Vec<f64> = sigs[p]
                .iter()
                .map(|&x| x * (1.0 + noise * (rng.random::<f64>() * 2.0 - 1.0)))
                .collect();
            let s: f64 = v.iter().sum();
            for x in &mut v {
                *x /= s;
            }
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::suite;

    #[test]
    fn signatures_are_normalized_and_deterministic() {
        for app in suite().iter().take(4) {
            for p in &app.phases {
                let a = signature(p);
                let b = signature(p);
                assert_eq!(a, b);
                let s: f64 = a.iter().sum();
                assert!((s - 1.0).abs() < 1e-12);
                assert!(a.iter().all(|&x| x >= 0.0));
            }
        }
    }

    #[test]
    fn distinct_phases_have_distant_signatures() {
        let app = suite().into_iter().find(|a| a.phases.len() >= 2).unwrap();
        let a = signature(&app.phases[0]);
        let b = signature(&app.phases[1]);
        let dist: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(dist > 0.05, "signatures too close: L1 distance {dist}");
    }

    #[test]
    fn interval_bbvs_follow_the_sequence() {
        let app = suite().into_iter().find(|a| a.phases.len() >= 2).unwrap();
        let bbvs = interval_bbvs(&app, 0.02, 7);
        assert_eq!(bbvs.len(), app.n_intervals());
        let sigs: Vec<Vec<f64>> = app.phases.iter().map(signature).collect();
        for (i, bbv) in bbvs.iter().enumerate() {
            // The noisy BBV must be closest to its own phase signature.
            let d =
                |s: &Vec<f64>| -> f64 { s.iter().zip(bbv).map(|(x, y)| (x - y) * (x - y)).sum() };
            let own = d(&sigs[app.sequence[i]]);
            for (p, s) in sigs.iter().enumerate() {
                if p != app.sequence[i] {
                    assert!(own < d(s), "interval {i} closer to foreign phase {p}");
                }
            }
        }
    }

    #[test]
    fn zero_noise_reproduces_signatures() {
        let app = suite().into_iter().next().unwrap();
        let bbvs = interval_bbvs(&app, 0.0, 1);
        let sigs: Vec<Vec<f64>> = app.phases.iter().map(signature).collect();
        for (i, bbv) in bbvs.iter().enumerate() {
            for (x, y) in bbv.iter().zip(&sigs[app.sequence[i]]) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }
}
