//! Thin wrapper: `triad-bench --experiment table2` (Table II — derived application categories).
fn main() -> std::process::ExitCode {
    triad_bench::cli::main_with(Some("table2"))
}
