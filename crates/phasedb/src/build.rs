//! Parallel database construction.

use crate::record::{cw, AppDbEntry, MonitorStats, PhaseDb, PhaseRecord, NC, NW, W_MAX, W_MIN};
use triad_arch::{CacheGeometry, CoreSize};
use triad_cache::{generate_classify, MlpMonitor};
use triad_telemetry::{Counter, Histogram, SpanName};
use triad_trace::{AppSpec, Inst, PhaseSpec};
use triad_uarch::{LaneSpec, TimingConfig, TimingEngine};

static BUILD_APPS_SPAN: SpanName = SpanName::new("phasedb.build_apps");
static GENERATE_CLASSIFY_SPAN: SpanName = SpanName::new("phasedb.generate_classify");
static GRID_SPAN: SpanName = SpanName::new("phasedb.grid");
static PHASES_TOTAL: Counter = Counter::new("phasedb.phases_total");
static PHASE_REPS: Counter = Counter::new("phasedb.phase_reps");
static CLASS_SIZE: Histogram = Histogram::new("phasedb.decode_share_class_size");

/// Database build parameters.
#[derive(Debug, Clone, Copy)]
pub struct DbConfig {
    /// Capacity scale factor between the paper's caches/working sets and
    /// the simulated ones (see `CacheGeometry::table1_scaled`).
    pub scale: usize,
    /// Warm-up instructions per phase (state only, no counters) — the
    /// paper's 100M-warmup window, scaled.
    pub warmup: usize,
    /// Detailed instructions per phase — the paper's 100M detailed window,
    /// scaled.
    pub detail: usize,
    /// Trace-generation seed.
    pub seed: u64,
    /// Lower fit frequency (also the monitor-statistics run), Hz.
    pub fit_lo_hz: f64,
    /// Upper fit frequency, Hz.
    pub fit_hi_hz: f64,
    /// Worker threads; 0 = available parallelism.
    pub threads: usize,
}

impl DbConfig {
    /// Full-quality configuration used by the experiment harness.
    pub const fn default_config() -> Self {
        DbConfig {
            scale: 16,
            warmup: 400_000,
            detail: 64_000,
            seed: 0xC0FFEE,
            fit_lo_hz: 1.0e9,
            fit_hi_hz: 3.25e9,
            threads: 0,
        }
    }

    /// Reduced configuration for unit tests (several times faster, noisier
    /// stats). The full warm-up is kept: a cold LLC inflates the flat part
    /// of every miss curve, which washes out the relative cache-sensitivity
    /// margins the Table II archetypes are calibrated to.
    pub const fn fast() -> Self {
        DbConfig { detail: 32_000, ..Self::default_config() }
    }
}

impl Default for DbConfig {
    fn default() -> Self {
        Self::default_config()
    }
}

/// Build the database for the full 27-application suite.
pub fn build_suite(cfg: &DbConfig) -> PhaseDb {
    build_apps(&triad_trace::suite(), cfg)
}

/// Build the database for an arbitrary set of applications.
///
/// Phases are processed in parallel with scoped worker threads; the result
/// is deterministic regardless of scheduling.
///
/// Phases whose generation inputs are bit-identical — equal
/// [`PhaseSpec::decode_key`] after region scaling, under one build
/// configuration — are decoded, classified and simulated **once** per
/// equivalence class; the finished [`PhaseRecord`] (fit coefficients,
/// miss curves and per-configuration [`MonitorStats`] alike) is a pure
/// function of those inputs, so every other member of the class reuses it
/// verbatim. The stock 27-app suite gives every phase a unique `tag`
/// (mixed into the RNG seed), so classes there are singletons and this is
/// a no-op; suites that repeat phase specs across apps — ablations,
/// sweeps over `DbConfig`, synthetic workloads — skip the duplicate
/// decode+simulate entirely.
pub fn build_apps(apps: &[AppSpec], cfg: &DbConfig) -> PhaseDb {
    build_apps_impl(apps, cfg, true)
}

/// [`build_apps`] with cross-phase sharing disabled: every phase is
/// decoded and simulated independently even when its generation inputs
/// match another's. Bench comparators use this to price the sharing
/// layer; results are bit-identical to [`build_apps`].
#[doc(hidden)]
pub fn build_apps_unshared(apps: &[AppSpec], cfg: &DbConfig) -> PhaseDb {
    build_apps_impl(apps, cfg, false)
}

fn build_apps_impl(apps: &[AppSpec], cfg: &DbConfig, share: bool) -> PhaseDb {
    let _span = BUILD_APPS_SPAN.enter();
    // Flatten (app, phase) tasks, then collapse tasks with identical
    // generation inputs onto one representative per equivalence class.
    // The class key extends the spec's decode key with every `DbConfig`
    // field the record depends on (`threads` only affects scheduling).
    let mut class_of: Vec<usize> = Vec::new();
    let mut reps: Vec<(usize, usize)> = Vec::new();
    let mut seen: std::collections::HashMap<Vec<u64>, usize> = std::collections::HashMap::new();
    for (ai, app) in apps.iter().enumerate() {
        for pi in 0..app.phases.len() {
            let cid = if share {
                let mut key = app.phases[pi].scaled(cfg.scale as u64).decode_key();
                key.extend([
                    cfg.scale as u64,
                    cfg.warmup as u64,
                    cfg.detail as u64,
                    cfg.seed,
                    cfg.fit_lo_hz.to_bits(),
                    cfg.fit_hi_hz.to_bits(),
                ]);
                *seen.entry(key).or_insert_with(|| {
                    reps.push((ai, pi));
                    reps.len() - 1
                })
            } else {
                reps.push((ai, pi));
                reps.len() - 1
            };
            class_of.push(cid);
        }
    }
    PHASES_TOTAL.add(class_of.len() as u64);
    PHASE_REPS.add(reps.len() as u64);
    if triad_telemetry::metrics_on() {
        let mut sizes = vec![0u64; reps.len()];
        for &cid in &class_of {
            sizes[cid] += 1;
        }
        for size in sizes {
            CLASS_SIZE.observe(size);
        }
    }
    // Each worker thread owns one [`PhaseScratch`] — the timing engine's
    // ring buffers, the monitor set and the detailed-trace buffer — reused
    // across every representative the worker claims instead of reallocated
    // per phase. The scratch carries no state between phases (monitors are
    // reset, buffers overwritten), so results stay deterministic across
    // thread counts (asserted by tests).
    let uniq = triad_util::par::par_map_with(
        &reps,
        cfg.threads,
        PhaseScratch::new,
        |scratch, &(ai, pi)| build_phase_with(&apps[ai].phases[pi], cfg, scratch),
    );
    let mut flat = class_of.iter().map(|&cid| uniq[cid].clone());
    let mut out = Vec::with_capacity(apps.len());
    for app in apps {
        let records: Vec<PhaseRecord> =
            (0..app.phases.len()).map(|_| flat.next().unwrap()).collect();
        out.push(AppDbEntry { spec: app.clone(), records });
    }
    PhaseDb { apps: out }
}

/// Reusable per-worker scratch for [`build_phase_with`]: the timing
/// engine's ring buffers, one [`MlpMonitor`] per way allocation and the
/// detailed-trace buffer. Holding one of these per worker thread removes
/// every per-phase allocation from the build's steady state.
pub struct PhaseScratch {
    engine: TimingEngine,
    mons: Vec<MlpMonitor>,
    detailed: Vec<Inst>,
}

impl PhaseScratch {
    /// Fresh scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        PhaseScratch {
            engine: TimingEngine::new(),
            mons: (W_MIN..=W_MAX).map(|_| MlpMonitor::table1()).collect(),
            detailed: Vec::new(),
        }
    }
}

impl Default for PhaseScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Detailed simulation of one phase over the whole configuration space.
pub fn build_phase(spec: &PhaseSpec, cfg: &DbConfig) -> PhaseRecord {
    build_phase_with(spec, cfg, &mut PhaseScratch::new())
}

/// [`build_phase`] against caller-owned scratch — the single-decode
/// pipeline:
///
/// 1. trace generation and hierarchy classification are fused into one
///    streaming pass ([`generate_classify`]) that never materializes the
///    warmup instructions and fills the load-only miss histogram en route;
/// 2. each core size runs **one** 2·NW-lane lockstep pass covering every
///    way allocation at *both* fit frequencies (lanes interleaved
///    `(w, f_lo), (w, f_hi)` — ways stay non-decreasing), instead of two
///    NW-lane passes — 3 trace decodes per phase, down from 6 (and from 90
///    scalar passes before the lockstep engine).
pub fn build_phase_with(
    spec: &PhaseSpec,
    cfg: &DbConfig,
    scratch: &mut PhaseScratch,
) -> PhaseRecord {
    let scaled = spec.scaled(cfg.scale as u64);
    let geom = CacheGeometry::table1_scaled(4, cfg.scale);
    let front = GENERATE_CLASSIFY_SPAN.enter();
    let ct =
        generate_classify(&scaled, &geom, cfg.warmup, cfg.detail, cfg.seed, &mut scratch.detailed);
    drop(front);
    let detailed = scratch.detailed.as_slice();
    let n = detailed.len() as f64;

    let miss_curve_pi: Vec<f64> =
        (1..=geom.max_ways_per_core).map(|w| ct.llc_misses(w) as f64 / n).collect();
    // Load-only miss curve, for the stall-time models (Eq. 2 counts loads);
    // the histogram was filled during classification.
    let load_miss_curve_pi: Vec<f64> =
        (1..=geom.max_ways_per_core).map(|w| ct.llc_load_misses(w) as f64 / n).collect();
    let llc_acc_pi = ct.llc_accesses as f64 / n;
    let wb_frac = ct.store_frac_at_llc;

    let mut a_cpi = vec![0.0; NC * NW];
    let mut b_spi = vec![0.0; NC * NW];
    let mut true_mlp = vec![1.0; NC * NW];
    let mut monitor: Vec<MonitorStats> = Vec::with_capacity(NC * NW);

    // Lane plan shared by all core sizes: both fit frequencies fused into
    // one pass, monitors attached to the low-frequency lanes (cycle-domain
    // monitor state is frequency-independent; `lo` is the designated
    // statistics run).
    let lanes: Vec<LaneSpec> = (W_MIN..=W_MAX)
        .flat_map(|w| {
            [
                LaneSpec { ways: w, freq_hz: cfg.fit_lo_hz, monitor: true },
                LaneSpec { ways: w, freq_hz: cfg.fit_hi_hz, monitor: false },
            ]
        })
        .collect();
    for c in CoreSize::ALL {
        let _grid = GRID_SPAN.enter();
        for mon in &mut scratch.mons {
            mon.reset();
        }
        let base_cfg = TimingConfig::table1(c, cfg.fit_lo_hz, W_MIN);
        let results =
            scratch.engine.simulate_lanes(detailed, &ct, &base_cfg, &lanes, &mut scratch.mons);

        for (k, w) in (W_MIN..=W_MAX).enumerate() {
            let (lo, hi, mon) = (&results[2 * k], &results[2 * k + 1], &scratch.mons[k]);
            // Fit T(f) = A/f + B per instruction through both points.
            let t_lo = lo.time_s / n;
            let t_hi = hi.time_s / n;
            let inv = 1.0 / cfg.fit_lo_hz - 1.0 / cfg.fit_hi_hz;
            let a = ((t_lo - t_hi) / inv).max(0.0);
            let b = (t_lo - a / cfg.fit_lo_hz).max(0.0);
            let i = cw(c, w);
            a_cpi[i] = a;
            b_spi[i] = b;
            true_mlp[i] = lo.mlp;

            // Monitor statistics from the low-frequency run: cycle-domain
            // counters are frequency-independent; Tmem is stored in seconds.
            let lm_pi: Vec<f64> = CoreSize::ALL
                .iter()
                .flat_map(|&tc| (W_MIN..=W_MAX).map(move |tw| (tc, tw)))
                .map(|(tc, tw)| mon.lm_count(tc, tw) as f64 / n)
                .collect();
            monitor.push(MonitorStats {
                c0_cpi: lo.t0_s * cfg.fit_lo_hz / n,
                c_branch_cpi: lo.t_branch_s * cfg.fit_lo_hz / n,
                c_cache_cpi: lo.t_cache_s * cfg.fit_lo_hz / n,
                tmem_spi: lo.tmem_s / n,
                mlp_avg: lo.mlp,
                lm_pi,
                ma_pi: miss_curve_pi[w - 1] * (1.0 + wb_frac),
            });
        }
    }

    PhaseRecord {
        a_cpi,
        b_spi,
        monitor,
        miss_curve_pi,
        load_miss_curve_pi,
        llc_acc_pi,
        wb_frac,
        true_mlp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_arch::DvfsGrid;
    use triad_energy::EnergyModel;

    fn small_db() -> PhaseDb {
        let apps: Vec<AppSpec> = triad_trace::suite()
            .into_iter()
            .filter(|a| ["mcf", "libquantum", "povray"].contains(&a.name))
            .collect();
        build_apps(&apps, &DbConfig::fast())
    }

    #[test]
    fn db_structure_matches_apps() {
        let db = small_db();
        assert_eq!(db.apps.len(), 3);
        for e in &db.apps {
            assert_eq!(e.records.len(), e.spec.phases.len());
            for r in &e.records {
                assert_eq!(r.a_cpi.len(), NC * NW);
                assert_eq!(r.monitor.len(), NC * NW);
                assert_eq!(r.miss_curve_pi.len(), 16);
            }
        }
    }

    #[test]
    fn time_decreases_with_frequency_and_ways() {
        let db = small_db();
        let r = &db.app("mcf").unwrap().records[0];
        for c in CoreSize::ALL {
            for w in [2usize, 8, 16] {
                let t1 = r.tpi(c, 1.0e9, w);
                let t2 = r.tpi(c, 2.0e9, w);
                let t3 = r.tpi(c, 3.25e9, w);
                assert!(t1 >= t2 && t2 >= t3, "{c} w={w}: {t1} {t2} {t3}");
            }
            // mcf is cache sensitive: 16 ways strictly beat 2.
            assert!(r.tpi(c, 2.0e9, 16) < r.tpi(c, 2.0e9, 2), "{c}");
        }
    }

    #[test]
    fn bigger_cores_are_never_slower() {
        let db = small_db();
        for e in &db.apps {
            for r in &e.records {
                for w in [2usize, 8, 16] {
                    let ts = r.tpi(CoreSize::S, 2.0e9, w);
                    let tm = r.tpi(CoreSize::M, 2.0e9, w);
                    let tl = r.tpi(CoreSize::L, 2.0e9, w);
                    // Allow 2% tolerance for simulation noise.
                    assert!(tm <= ts * 1.02, "{}: S {ts} vs M {tm}", e.spec.name);
                    assert!(tl <= tm * 1.02, "{}: M {tm} vs L {tl}", e.spec.name);
                }
            }
        }
    }

    #[test]
    fn miss_curves_are_monotone() {
        let db = small_db();
        for e in &db.apps {
            for r in &e.records {
                for w in 1..16 {
                    assert!(
                        r.miss_curve_pi[w - 1] >= r.miss_curve_pi[w] - 1e-12,
                        "{} w={w}",
                        e.spec.name
                    );
                }
            }
        }
    }

    #[test]
    fn monitor_lm_bounded_by_misses() {
        // Leading misses can never exceed total (load) misses, which are
        // bounded by the miss curve.
        let db = small_db();
        for e in &db.apps {
            for r in &e.records {
                for c in CoreSize::ALL {
                    let m = r.monitor_at(c, 8);
                    for tc in CoreSize::ALL {
                        for tw in W_MIN..=W_MAX {
                            let lm = m.lm_pi[cw(tc, tw)];
                            assert!(
                                lm <= r.misses_pi(tw) + 1e-12,
                                "{}: lm {lm} > misses {}",
                                e.spec.name,
                                r.misses_pi(tw)
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn energy_is_positive_and_scales_with_voltage() {
        let db = small_db();
        let em = EnergyModel::default_model();
        let grid = DvfsGrid::table1();
        let r = &db.app("povray").unwrap().records[0];
        let lo = r.energy_pi(CoreSize::M, grid.point(0), 8, &em);
        let hi = r.energy_pi(CoreSize::M, grid.point(9), 8, &em);
        assert!(lo > 0.0);
        // povray is compute-bound: high VF burns more energy per instruction
        // (quadratic power growth dominates the linear time reduction).
        assert!(hi > lo, "lo {lo} hi {hi}");
    }

    #[test]
    fn build_is_deterministic_across_thread_counts() {
        let apps: Vec<AppSpec> =
            triad_trace::suite().into_iter().filter(|a| a.name == "gcc").collect();
        let mut c1 = DbConfig::fast();
        c1.threads = 1;
        let mut c2 = DbConfig::fast();
        c2.threads = 2;
        let d1 = build_apps(&apps, &c1);
        let d2 = build_apps(&apps, &c2);
        for (r1, r2) in d1.apps[0].records.iter().zip(&d2.apps[0].records) {
            assert_eq!(r1.a_cpi, r2.a_cpi);
            assert_eq!(r1.b_spi, r2.b_spi);
            assert_eq!(r1.miss_curve_pi, r2.miss_curve_pi);
        }
    }

    /// Cross-phase decode sharing must be invisible in the output: a suite
    /// that repeats one spec (within an app and across apps) must build to
    /// the same bits shared and unshared — fit coefficients, miss curves
    /// and every per-configuration [`MonitorStats`] field. The stock suite
    /// never duplicates specs (tags are unique), so this constructs the
    /// duplication explicitly.
    #[test]
    fn decode_sharing_is_bit_exact_including_monitors() {
        let suite = triad_trace::suite();
        let mcf = suite.iter().find(|a| a.name == "mcf").unwrap();
        let pov = suite.iter().find(|a| a.name == "povray").unwrap();
        let dup = mcf.phases[0].clone();
        let apps = vec![
            AppSpec {
                name: "dup-intra",
                category: mcf.category,
                phases: vec![dup.clone(), pov.phases[0].clone(), dup.clone()],
                sequence: vec![0, 1, 2, 0],
            },
            AppSpec {
                name: "dup-inter",
                category: mcf.category,
                phases: vec![dup.clone()],
                sequence: vec![0],
            },
        ];
        let cfg = DbConfig::fast();
        let shared = build_apps(&apps, &cfg);
        let unshared = build_apps_unshared(&apps, &cfg);
        for (es, eu) in shared.apps.iter().zip(&unshared.apps) {
            for (rs, ru) in es.records.iter().zip(&eu.records) {
                assert_eq!(rs.a_cpi, ru.a_cpi);
                assert_eq!(rs.b_spi, ru.b_spi);
                assert_eq!(rs.miss_curve_pi, ru.miss_curve_pi);
                assert_eq!(rs.load_miss_curve_pi, ru.load_miss_curve_pi);
                assert_eq!(rs.llc_acc_pi, ru.llc_acc_pi);
                assert_eq!(rs.wb_frac, ru.wb_frac);
                assert_eq!(rs.true_mlp, ru.true_mlp);
                for (ms, mu) in rs.monitor.iter().zip(&ru.monitor) {
                    assert_eq!(ms.c0_cpi, mu.c0_cpi);
                    assert_eq!(ms.c_branch_cpi, mu.c_branch_cpi);
                    assert_eq!(ms.c_cache_cpi, mu.c_cache_cpi);
                    assert_eq!(ms.tmem_spi, mu.tmem_spi);
                    assert_eq!(ms.mlp_avg, mu.mlp_avg);
                    assert_eq!(ms.lm_pi, mu.lm_pi);
                    assert_eq!(ms.ma_pi, mu.ma_pi);
                }
            }
        }
        // All copies of the duplicated spec resolve to the same record.
        let a = &shared.apps[0].records[0];
        let b = &shared.apps[0].records[2];
        let c = &shared.apps[1].records[0];
        assert_eq!(a.a_cpi, b.a_cpi);
        assert_eq!(a.a_cpi, c.a_cpi);
        // ...and the distinct spec does not (the classes really differ).
        assert_ne!(a.a_cpi, shared.apps[0].records[1].a_cpi);
    }

    #[test]
    fn streaming_app_is_cache_insensitive_in_db() {
        let db = small_db();
        let e = db.app("libquantum").unwrap();
        let m4 = e.weighted(|r| r.misses_pi(4));
        let m8 = e.weighted(|r| r.misses_pi(8));
        let m12 = e.weighted(|r| r.misses_pi(12));
        let dev = ((m4 - m8).abs()).max((m12 - m8).abs());
        assert!(dev < 0.2 * m8, "libquantum must be flat: {m4} {m8} {m12}");
        assert!(m8 * 1000.0 > 0.2, "but memory-active");
    }
}
