//! The calibration contract: running the paper's §IV-C classification
//! criteria over the full default-quality database must reproduce
//! Table II exactly (5 CS-PS, 7 CS-PI, 7 CI-PS, 8 CI-PI, same members).
//!
//! This is the most expensive integration test (full 27-app database).

use triad::phasedb::{build_suite, characterize_app, DbConfig};

#[test]
fn full_suite_reproduces_table2() {
    let db = build_suite(&DbConfig::default());
    let mut mismatches = Vec::new();
    for e in &db.apps {
        let c = characterize_app(e);
        if c.derived != c.expected {
            mismatches.push(format!(
                "{}: expected {}, derived {} (mpki {:?}, mlp {:?})",
                c.name, c.expected, c.derived, c.mpki, c.mlp
            ));
        }
    }
    assert!(mismatches.is_empty(), "Table II mismatches:\n{}", mismatches.join("\n"));
}
