//! CI bench-baseline comparison: diff a `bench-results.json` (JSON Lines,
//! appended by the gated benches when `TRIAD_BENCH_JSON` is set) against
//! the recorded baselines in `crates/bench/bench-baselines.json` and fail
//! on regression.
//!
//! Absolute iteration times are machine-dependent — a shared CI runner is
//! several times slower than the reference dev box and varies run to run —
//! so every tracked quantity is a **ratio** of two measurements taken in
//! the same bench process: the optimized path over its frozen in-process
//! comparator (fused grid over scalar-DRAM grid, tabled generator over
//! chained draws, ...). Runner speed cancels in the ratio; what remains is
//! exactly the relative win each PR claimed. A tracked ratio more than the
//! baseline file's `tolerance` (1.25 = 25%) worse than its recorded
//! dev-box value fails the step.
//!
//! Usage: `bench_check <bench-results.jsonl> [<baselines.json>]`
//! (baselines default to `crates/bench/bench-baselines.json`).

use std::collections::HashMap;
use std::process::ExitCode;
use triad_util::json::{parse, Json};

fn num(j: &Json) -> Option<f64> {
    match j {
        Json::Num(x) => Some(*x),
        Json::Int(i) => Some(*i as f64),
        _ => None,
    }
}

fn str_of(j: &Json) -> Option<&str> {
    match j {
        Json::Str(s) => Some(s),
        _ => None,
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let results_path = args.next().unwrap_or_else(|| "bench-results.json".into());
    let baselines_path = args.next().unwrap_or_else(|| "crates/bench/bench-baselines.json".into());

    let results = match std::fs::read_to_string(&results_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_check: cannot read {results_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // JSON Lines; last occurrence of a label wins (benches may be rerun
    // into the same file).
    let mut secs: HashMap<String, f64> = HashMap::new();
    for (ln, line) in results.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = match parse(line) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("bench_check: {results_path}:{}: bad record: {e:?}", ln + 1);
                return ExitCode::FAILURE;
            }
        };
        let (Some(label), Some(s)) =
            (rec.get("label").and_then(str_of), rec.get("secs_per_iter").and_then(num))
        else {
            eprintln!("bench_check: {results_path}:{}: missing label/secs_per_iter", ln + 1);
            return ExitCode::FAILURE;
        };
        secs.insert(label.to_string(), s);
    }

    let baselines = match std::fs::read_to_string(&baselines_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_check: cannot read {baselines_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match parse(&baselines) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench_check: {baselines_path}: bad JSON: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    let tolerance = doc.get("tolerance").and_then(num).unwrap_or(1.25);
    let Some(Json::Arr(ratios)) = doc.get("ratios") else {
        eprintln!("bench_check: {baselines_path}: missing `ratios` array");
        return ExitCode::FAILURE;
    };

    let mut failures = 0u32;
    for entry in ratios {
        let (Some(tracked), Some(reference), Some(baseline)) = (
            entry.get("tracked").and_then(str_of),
            entry.get("reference").and_then(str_of),
            entry.get("baseline").and_then(num),
        ) else {
            eprintln!("bench_check: {baselines_path}: entry needs tracked/reference/baseline");
            return ExitCode::FAILURE;
        };
        let (Some(&t), Some(&r)) = (secs.get(tracked), secs.get(reference)) else {
            eprintln!("bench_check: FAIL {tracked} / {reference}: measurement missing from {results_path}");
            failures += 1;
            continue;
        };
        let cur = t / r;
        let rel = cur / baseline;
        let ok = cur <= baseline * tolerance;
        println!(
            "bench_check: {} {tracked} / {reference}: ratio {cur:.3} vs baseline {baseline:.3} \
             ({:+.1}%, limit +{:.0}%)",
            if ok { "ok  " } else { "FAIL" },
            (rel - 1.0) * 100.0,
            (tolerance - 1.0) * 100.0
        );
        failures += !ok as u32;
    }
    if failures > 0 {
        eprintln!(
            "bench_check: {failures} tracked ratio(s) regressed beyond the baseline tolerance"
        );
        return ExitCode::FAILURE;
    }
    println!("bench_check: all {} tracked ratios within tolerance", ratios.len());
    ExitCode::SUCCESS
}
