//! Cold-build versus warm-load phase-database acquisition.
//!
//! The store's reason to exist is turning a minutes-scale detailed
//! simulation into a milliseconds-scale load: this bench tracks that ratio
//! in the perf trajectory. Run with
//! `cargo bench -p triad-bench --bench db_store`.

use std::hint::black_box;
use std::time::{Duration, Instant};
use triad_phasedb::{DbConfig, DbStore};
use triad_trace::AppSpec;
use triad_util::bench::bench;

fn subset() -> Vec<AppSpec> {
    let names = ["mcf", "libquantum", "povray"];
    triad_trace::suite().into_iter().filter(|a| names.contains(&a.name)).collect()
}

fn main() {
    let dir = std::env::temp_dir().join(format!("triad-db-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = DbStore::new(&dir);
    let apps = subset();
    let cfg = DbConfig::fast();

    // Cold: force-rebuild resolves pay the full detailed simulation (plus
    // the atomic persist). One measured pass is plenty — each iteration is
    // seconds.
    let cold_store = store.clone().force_rebuild(true);
    let t0 = Instant::now();
    black_box(cold_store.resolve(&apps, &cfg));
    let cold_s = t0.elapsed().as_secs_f64();
    println!("db_store/cold_build_3apps                {cold_s:>12.3} s/iter");

    // Warm: every resolve parses and validates the persisted artifact.
    let m = bench("db_store/warm_load_3apps", None, Duration::from_secs(2), || {
        black_box(store.resolve(&apps, &cfg));
    });

    let speedup = cold_s / m.secs_per_iter;
    println!("db_store/warm_vs_cold_speedup            {speedup:>12.1}x");
    // PR 6 cut the cold build ~2x (single-decode lockstep grid, fused
    // front end) and PR 8 another ~25% (closed-form DRAM fast path, tabled
    // generator draws), which shrinks this ratio even though both sides
    // got faster in absolute terms — the gate tracks the store's continued
    // usefulness, not the cold path's slowness. At 0.1 s cold / ~24 ms
    // warm the honest floor is 3x; if the cold path ever gets cheap enough
    // to drop below that, the store itself is up for review.
    assert!(speedup >= 3.0, "warm load must be >=3x faster than a cold build (got {speedup:.1}x)");

    let _ = std::fs::remove_dir_all(&dir);
}
