//! Database record types and query interface.

use triad_arch::{CoreSize, VfPoint};
use triad_energy::EnergyBackend;
use triad_trace::AppSpec;

/// Smallest per-core LLC allocation stored (Table I: 2 ways).
pub const W_MIN: usize = 2;
/// Largest per-core LLC allocation stored (Table I: 16 ways).
pub const W_MAX: usize = 16;
/// Number of stored way allocations (15).
pub const NW: usize = W_MAX - W_MIN + 1;
/// Number of core sizes (3).
pub const NC: usize = CoreSize::COUNT;

/// Index into the `[c][w]` matrices.
#[inline]
pub fn cw(c: CoreSize, w: usize) -> usize {
    debug_assert!((W_MIN..=W_MAX).contains(&w));
    c.index() * NW + (w - W_MIN)
}

/// The statistics the online RM observes when its core runs one interval at
/// a given `(c, w)` setting: hardware performance counters plus the ATD and
/// the proposed MLP-monitor readouts. All values are normalized per
/// instruction so any interval length can be reconstructed.
#[derive(Debug, Clone)]
pub struct MonitorStats {
    /// Width-scalable compute cycles per instruction (Eq. 1's `T0 · f`).
    pub c0_cpi: f64,
    /// Branch-stall cycles per instruction.
    pub c_branch_cpi: f64,
    /// Cache-hit-stall cycles per instruction.
    pub c_cache_cpi: f64,
    /// DRAM stall seconds per instruction (Eq. 1's `Tmem`, frequency-
    /// independent).
    pub tmem_spi: f64,
    /// Measured average MLP over the interval (true overlap, as a hardware
    /// counter would report) — Model2's constant-MLP input.
    pub mlp_avg: f64,
    /// The proposed monitor's leading-miss estimates per instruction for
    /// every *(target core size, target allocation)* — Model3's input.
    /// Indexed by [`cw`].
    pub lm_pi: Vec<f64>,
    /// DRAM accesses per instruction at the *current* allocation (reads +
    /// store fills + writebacks) — Eq. 5's `MA`.
    pub ma_pi: f64,
}

/// Everything the database knows about one program phase.
#[derive(Debug, Clone)]
pub struct PhaseRecord {
    /// Ground-truth core cycles per instruction (`A` in `T = A/f + B`),
    /// indexed by [`cw`].
    pub a_cpi: Vec<f64>,
    /// Ground-truth frequency-independent seconds per instruction (`B`),
    /// indexed by [`cw`].
    pub b_spi: Vec<f64>,
    /// Monitor statistics as observed at each `(c, w)` current setting,
    /// indexed by [`cw`].
    pub monitor: Vec<MonitorStats>,
    /// ATD miss curve: LLC misses per instruction for allocations
    /// `w = 1..=16` (index `w − 1`). Loads and stores.
    pub miss_curve_pi: Vec<f64>,
    /// Load-only miss curve (same indexing): what the leading-loads theory
    /// says memory *stall* predictions should be based on — stores retire
    /// from the store buffer without stalling.
    pub load_miss_curve_pi: Vec<f64>,
    /// LLC accesses (loads + stores reaching the LLC) per instruction.
    pub llc_acc_pi: f64,
    /// Estimated fraction of misses that also cause a dirty writeback.
    pub wb_frac: f64,
    /// Ground-truth average MLP per `(c, w)` (diagnostics and Table II
    /// classification), indexed by [`cw`].
    pub true_mlp: Vec<f64>,
}

impl PhaseRecord {
    /// Ground-truth execution seconds per instruction at `(c, f, w)`.
    #[inline]
    pub fn tpi(&self, c: CoreSize, freq_hz: f64, w: usize) -> f64 {
        let i = cw(c, w);
        self.a_cpi[i] / freq_hz + self.b_spi[i]
    }

    /// Ground-truth IPC at `(c, f, w)`.
    pub fn ipc(&self, c: CoreSize, freq_hz: f64, w: usize) -> f64 {
        1.0 / (self.tpi(c, freq_hz, w) * freq_hz)
    }

    /// Ground-truth pipeline utilization (IPC over dispatch width).
    pub fn util(&self, c: CoreSize, freq_hz: f64, w: usize) -> f64 {
        self.ipc(c, freq_hz, w) / c.dispatch_width() as f64
    }

    /// LLC misses per instruction at allocation `w`.
    #[inline]
    pub fn misses_pi(&self, w: usize) -> f64 {
        self.miss_curve_pi[w - 1]
    }

    /// DRAM line transfers per instruction at allocation `w` (misses plus
    /// writebacks).
    #[inline]
    pub fn dram_accesses_pi(&self, w: usize) -> f64 {
        self.misses_pi(w) * (1.0 + self.wb_frac)
    }

    /// Ground-truth energy per instruction at `(c, vf, w)` under `em`:
    /// core power (with true utilization) over the true time, plus DRAM
    /// access energy. The record itself stores only microarchitectural
    /// ground truth — timing, utilization and access counts — so the same
    /// database serves every energy backend (and the store fingerprint is
    /// backend-independent).
    pub fn energy_pi(&self, c: CoreSize, vf: VfPoint, w: usize, em: &dyn EnergyBackend) -> f64 {
        let t = self.tpi(c, vf.freq_hz, w);
        let util = self.util(c, vf.freq_hz, w);
        em.core_power(c, vf, util) * t + em.dram_energy(1) * self.dram_accesses_pi(w)
    }

    /// Monitor statistics observed when running at `(c, w)`.
    #[inline]
    pub fn monitor_at(&self, c: CoreSize, w: usize) -> &MonitorStats {
        &self.monitor[cw(c, w)]
    }
}

/// One application's database entry: its spec plus one record per phase.
#[derive(Debug, Clone)]
pub struct AppDbEntry {
    /// The application model (phases, sequence, category).
    pub spec: AppSpec,
    /// One record per `spec.phases` entry.
    pub records: Vec<PhaseRecord>,
}

impl AppDbEntry {
    /// Weighted average of `f(record)` over the phase weights — the
    /// SimPoint-style whole-program estimate.
    pub fn weighted<F: Fn(&PhaseRecord) -> f64>(&self, f: F) -> f64 {
        self.spec.phase_weights().iter().zip(&self.records).map(|(w, r)| w * f(r)).sum()
    }
}

/// The full detailed-simulation database.
#[derive(Debug, Clone)]
pub struct PhaseDb {
    /// One entry per application, in build order.
    pub apps: Vec<AppDbEntry>,
}

impl PhaseDb {
    /// Look up an application by name.
    pub fn app(&self, name: &str) -> Option<&AppDbEntry> {
        self.apps.iter().find(|a| a.spec.name == name)
    }

    /// Look up an application by name, also returning its stable index in
    /// build order — a compact identity for callers that key caches by
    /// application (e.g. the simulator's RM decision memo).
    pub fn app_entry(&self, name: &str) -> Option<(usize, &AppDbEntry)> {
        self.apps.iter().enumerate().find(|(_, a)| a.spec.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cw_indexing_is_dense_and_bijective() {
        let mut seen = [false; NC * NW];
        for c in CoreSize::ALL {
            for w in W_MIN..=W_MAX {
                let i = cw(c, w);
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn tpi_fit_evaluates_correctly() {
        let mut r = PhaseRecord {
            a_cpi: vec![0.0; NC * NW],
            b_spi: vec![0.0; NC * NW],
            monitor: vec![],
            miss_curve_pi: vec![0.0; 16],
            load_miss_curve_pi: vec![0.0; 16],
            llc_acc_pi: 0.0,
            wb_frac: 0.25,
            true_mlp: vec![1.0; NC * NW],
        };
        let i = cw(CoreSize::M, 8);
        r.a_cpi[i] = 0.5; // cycles per instruction
        r.b_spi[i] = 1e-10; // seconds per instruction of memory time
        let t1 = r.tpi(CoreSize::M, 1.0e9, 8);
        let t2 = r.tpi(CoreSize::M, 2.0e9, 8);
        assert!((t1 - (0.5e-9 + 1e-10)).abs() < 1e-18);
        assert!((t2 - (0.25e-9 + 1e-10)).abs() < 1e-18);
        // IPC at 2 GHz: 1 / (tpi × f).
        assert!((r.ipc(CoreSize::M, 2.0e9, 8) - 1.0 / 0.7).abs() < 1e-9);
    }

    #[test]
    fn dram_accesses_include_writebacks() {
        let mut r = PhaseRecord {
            a_cpi: vec![0.0; NC * NW],
            b_spi: vec![0.0; NC * NW],
            monitor: vec![],
            miss_curve_pi: vec![0.0; 16],
            load_miss_curve_pi: vec![0.0; 16],
            llc_acc_pi: 0.1,
            wb_frac: 0.5,
            true_mlp: vec![1.0; NC * NW],
        };
        r.miss_curve_pi[7] = 0.01; // w=8
        assert!((r.dram_accesses_pi(8) - 0.015).abs() < 1e-15);
    }
}
