//! Whole-system configuration: core count, baseline setting, QoS slack and
//! RM invocation interval.

use crate::core_size::CoreSize;
use crate::dvfs::DvfsGrid;
use crate::geometry::CacheGeometry;
use crate::setting::Setting;

/// Identifier of a core (and of the application pinned to it — the paper's
/// workloads are multiprogrammed with one application per core).
pub type CoreId = usize;

/// QoS slack factor `α` from Eq. 3. The paper fixes it to 1 (no slack):
/// a target setting satisfies QoS iff its predicted execution time does not
/// exceed the predicted baseline time.
pub const QOS_ALPHA: f64 = 1.0;

/// Paper's RM invocation interval: 100 M instructions (§III-A).
pub const INTERVAL_INSTRUCTIONS: u64 = 100_000_000;

/// Static description of the managed multi-core system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of cores (the paper evaluates 2, 4 and 8).
    pub n_cores: usize,
    /// Per-core DVFS grid.
    pub dvfs: DvfsGrid,
    /// Cache geometry (scales with `n_cores`).
    pub geometry: CacheGeometry,
    /// QoS slack factor `α` (Eq. 3); 1.0 in the paper.
    pub alpha: f64,
    /// RM invocation interval in instructions.
    pub interval_insts: u64,
}

impl SystemConfig {
    /// The paper's Table I system with `n_cores` cores.
    pub fn table1(n_cores: usize) -> Self {
        assert!(n_cores >= 2, "the partitioning problem needs at least two cores");
        SystemConfig {
            n_cores,
            dvfs: DvfsGrid::table1(),
            geometry: CacheGeometry::table1(n_cores),
            alpha: QOS_ALPHA,
            interval_insts: INTERVAL_INSTRUCTIONS,
        }
    }

    /// The baseline setting every core starts from and QoS is defined
    /// against: M-size core, 2 GHz / 1 V, 8 LLC ways (even distribution).
    pub fn baseline_setting(&self) -> Setting {
        Setting::new(CoreSize::BASELINE, self.dvfs.baseline, self.geometry.baseline_ways_per_core)
    }

    /// Inclusive per-core LLC way-allocation domain for this system.
    pub fn way_range(&self) -> std::ops::RangeInclusive<usize> {
        self.geometry.per_core_way_range(self.n_cores)
    }

    /// Number of per-core way-allocation choices.
    pub fn n_way_choices(&self) -> usize {
        self.geometry.allocations_per_core(self.n_cores)
    }

    /// Total LLC associativity `A` (the global constraint `Σ w_j = A`).
    pub fn total_ways(&self) -> usize {
        self.geometry.total_llc_ways()
    }

    /// Size of the per-core configuration space `|c| × |f| × |w|` assessed by
    /// the local optimizer each interval.
    pub fn config_space_per_core(&self) -> usize {
        CoreSize::COUNT * self.dvfs.len() * self.n_way_choices()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_setting_matches_table1() {
        let sys = SystemConfig::table1(4);
        let b = sys.baseline_setting();
        assert_eq!(b.core, CoreSize::M);
        assert_eq!(b.ways, 8);
        assert!((sys.dvfs.point(b.vf).freq_hz - 2.0e9).abs() < 1.0);
    }

    #[test]
    fn even_baseline_distribution_is_feasible() {
        for n in [2usize, 4, 8] {
            let sys = SystemConfig::table1(n);
            let b = sys.baseline_setting();
            // n cores × 8 ways each = total associativity.
            assert_eq!(b.ways * n, sys.total_ways());
            assert!(sys.way_range().contains(&b.ways));
        }
    }

    #[test]
    fn config_space_sizes() {
        // 4-core: 3 sizes × 10 VF × 15 ways = 450 candidate settings/core.
        let sys = SystemConfig::table1(4);
        assert_eq!(sys.config_space_per_core(), 3 * 10 * 15);
        // 2-core: ways limited to 2..=14 → 13 choices.
        let sys2 = SystemConfig::table1(2);
        assert_eq!(sys2.config_space_per_core(), 3 * 10 * 13);
    }

    #[test]
    #[should_panic(expected = "at least two cores")]
    fn rejects_single_core() {
        let _ = SystemConfig::table1(1);
    }

    #[test]
    fn interval_is_100m_instructions() {
        assert_eq!(SystemConfig::table1(2).interval_insts, 100_000_000);
    }
}
