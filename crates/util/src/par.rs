//! Order-preserving parallel map over scoped threads.
//!
//! The phase-database build and the campaign executor both need the same
//! shape of parallelism: N independent, CPU-bound tasks whose results must
//! come back *in input order* so downstream output is deterministic
//! regardless of scheduling. Worker threads pull task indices from a shared
//! atomic counter (simple work stealing), write results into their own
//! slots, and the caller reassembles the ordered vector.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolve a thread-count request: `0` means available parallelism,
/// capped by the task count.
pub fn resolve_threads(requested: usize, n_tasks: usize) -> usize {
    let hw = if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        requested
    };
    hw.clamp(1, n_tasks.max(1))
}

/// Apply `f` to every item in parallel on `threads` workers (0 = available
/// parallelism) and return results in input order.
///
/// Panics in `f` propagate to the caller once all workers have stopped.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, threads, |_, item| f(item))
}

/// [`par_map`] variant with per-worker scratch state: each worker thread
/// calls `init()` once and threads the resulting value through every task
/// it claims. Results still come back in input order, and because tasks
/// are pure functions of `(scratch, item)` with scratch reset/overwritten
/// per task by convention, the output is deterministic regardless of which
/// worker claims which task — the phase-database build asserts this across
/// thread counts.
pub fn par_map_with<T, R, S, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = resolve_threads(threads, n);
    if threads == 1 {
        let mut scratch = init();
        return items.iter().map(|t| f(&mut scratch, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut scratch = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(&mut scratch, &items[i]);
                    *slots[i].lock().unwrap() = Some(r);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker completed every claimed task"))
        .collect()
}

/// [`par_map`] variant that also hands `f` the item's index.
pub fn par_map_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = resolve_threads(threads, n);
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker completed every claimed task"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 7, 0] {
            let out = par_map(&items, threads, |&x| x * x);
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn runs_every_task_exactly_once() {
        let count = AtomicU64::new(0);
        let items: Vec<u32> = (0..57).collect();
        let out = par_map(&items, 4, |&x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 57);
        assert_eq!(count.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = par_map(&Vec::<u32>::new(), 4, |&x| x);
        assert!(out.is_empty());
        let out: Vec<u32> = par_map_with(&Vec::<u32>::new(), 4, || 0u64, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn scratch_variant_preserves_order_and_reuses_state() {
        let items: Vec<usize> = (0..200).collect();
        for threads in [1, 2, 5, 0] {
            // Scratch counts tasks this worker ran; the result must not
            // depend on it (determinism convention), only prove reuse.
            let out = par_map_with(
                &items,
                threads,
                || 0usize,
                |seen, &x| {
                    *seen += 1;
                    assert!(*seen <= items.len());
                    x * 3
                },
            );
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn thread_resolution() {
        assert_eq!(resolve_threads(3, 100), 3);
        assert_eq!(resolve_threads(8, 2), 2);
        assert!(resolve_threads(0, 100) >= 1);
        assert_eq!(resolve_threads(5, 0), 1);
    }
}
