//! The measured-power table backend: per-(core size, V/f) lookup with
//! linear interpolation in frequency.
//!
//! Where the parametric [`EnergyModel`] *derives* power
//! from `V²f` scaling laws, this backend *reads* it from a table of measured
//! operating points — the approach of measurement-driven energy studies
//! (e.g. Díaz Álvarez et al., per-access energy tables), and the natural
//! container for numbers taken from a power rail, a vendor datasheet or a
//! different McPAT run. Each core size carries a list of
//! `(freq_hz, dyn_w, static_w)` samples; queries interpolate linearly
//! between the two bracketing samples and clamp outside the measured range.
//! The measured dynamic power is the *full-utilization* draw at that
//! operating point (voltage effects are baked into the sample), scaled at
//! query time by the same clock-gating activity factor the parametric model
//! uses.
//!
//! Tables persist as canonical JSON (schema [`TABLE_SCHEMA`]) written and
//! parsed by `triad-util`'s canonical writer/parser, so a table file
//! round-trips bit-exactly and campaign reports referencing one stay
//! reproducible.

use crate::{EnergyBackend, EnergyModel, REF_FREQ_HZ};
use triad_arch::{CoreSize, VfPoint};
use triad_util::failpoint::FailPoint;
use triad_util::json::{parse, Json};

/// Schema tag required of every persisted table file.
pub const TABLE_SCHEMA: &str = "triad-energy-table/v1";

/// Injected-fault site at the top of [`TableBackend::load`] — exercises
/// the campaign's energy-backend quarantine path without deleting table
/// files.
pub static TABLE_LOAD_FP: FailPoint = FailPoint::new("energy.table_load");

/// One measured operating point of one core size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TablePoint {
    /// Core clock frequency of the sample, Hz.
    pub freq_hz: f64,
    /// Measured dynamic power at full utilization, watts.
    pub dyn_w: f64,
    /// Measured static (leakage) power, watts.
    pub static_w: f64,
}

/// A measured-power energy backend.
#[derive(Debug, Clone, PartialEq)]
pub struct TableBackend {
    /// Identity recorded in reports (`"table:<origin>"`).
    pub origin: String,
    /// Measured samples per core size (indexed by [`CoreSize::index`]),
    /// each sorted by ascending frequency.
    pub points: [Vec<TablePoint>; 3],
    /// Fraction of dynamic power that is utilization-independent.
    pub dyn_floor: f64,
    /// Energy per DRAM line transfer, joules.
    pub dram_energy_per_access_j: f64,
    /// Uncore power per core, watts.
    pub uncore_w_per_core: f64,
}

/// Linear interpolation of `f(freq)` over sorted samples, clamped to the
/// measured range.
fn interp(points: &[TablePoint], freq_hz: f64, f: impl Fn(&TablePoint) -> f64) -> f64 {
    debug_assert!(!points.is_empty());
    if freq_hz <= points[0].freq_hz {
        return f(&points[0]);
    }
    if let Some(last) = points.last() {
        if freq_hz >= last.freq_hz {
            return f(last);
        }
    }
    // points is sorted and freq is strictly inside the range here.
    let hi = points.iter().position(|p| p.freq_hz >= freq_hz).unwrap();
    let (a, b) = (&points[hi - 1], &points[hi]);
    let t = (freq_hz - a.freq_hz) / (b.freq_hz - a.freq_hz);
    f(a) + t * (f(b) - f(a))
}

impl TableBackend {
    /// Validate invariants: at least one finite, nonnegative sample per
    /// size, strictly ascending in frequency, with nondecreasing dynamic
    /// and static power — the [`EnergyBackend`] contract requires
    /// `core_power` monotone in the operating point, and per-component
    /// monotonicity is the checkable sufficient condition for a table.
    pub fn validate(&self) -> Result<(), String> {
        for c in CoreSize::ALL {
            let pts = &self.points[c.index()];
            if pts.is_empty() {
                return Err(format!("table: no samples for core size {c:?}"));
            }
            for p in pts {
                let ok = p.freq_hz.is_finite()
                    && p.freq_hz > 0.0
                    && p.dyn_w.is_finite()
                    && p.dyn_w >= 0.0
                    && p.static_w.is_finite()
                    && p.static_w >= 0.0;
                if !ok {
                    return Err(format!("table: invalid sample {p:?} for core size {c:?}"));
                }
            }
            for w in pts.windows(2) {
                if w[1].freq_hz <= w[0].freq_hz {
                    return Err(format!(
                        "table: samples for core size {c:?} must be strictly ascending in \
                         frequency ({} Hz then {} Hz)",
                        w[0].freq_hz, w[1].freq_hz
                    ));
                }
                if w[1].dyn_w < w[0].dyn_w || w[1].static_w < w[0].static_w {
                    return Err(format!(
                        "table: power for core size {c:?} must be nondecreasing in frequency \
                         (raising V/f never reduces draw), but {:?} is followed by {:?}",
                        w[0], w[1]
                    ));
                }
            }
        }
        if !(self.dyn_floor.is_finite() && (0.0..=1.0).contains(&self.dyn_floor)) {
            return Err(format!("table: dyn_floor {} must lie in [0, 1]", self.dyn_floor));
        }
        for (name, v) in [
            ("dram_energy_per_access_j", self.dram_energy_per_access_j),
            ("uncore_w_per_core", self.uncore_w_per_core),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("table: {name} {v} must be finite and nonnegative"));
            }
        }
        Ok(())
    }

    /// Sample a parametric model at the given operating points — a
    /// synthetic "measurement campaign" against the McPAT-style model,
    /// useful as a sweep reference and as a template for real tables.
    pub fn sampled_from(model: &EnergyModel, grid: &[VfPoint], origin: impl Into<String>) -> Self {
        let sample = |c: CoreSize| -> Vec<TablePoint> {
            grid.iter()
                .map(|&vf| TablePoint {
                    freq_hz: vf.freq_hz,
                    dyn_w: model.core_dynamic_power(c, vf, 1.0),
                    static_w: model.core_static_power(c, vf),
                })
                .collect()
        };
        TableBackend {
            origin: origin.into(),
            points: [sample(CoreSize::S), sample(CoreSize::M), sample(CoreSize::L)],
            dyn_floor: model.dyn_floor,
            dram_energy_per_access_j: model.dram_energy_per_access_j,
            uncore_w_per_core: model.uncore_w_per_core,
        }
    }

    /// Canonical JSON form (the file format `--energy-table` reads).
    pub fn to_json(&self) -> Json {
        let size = |c: CoreSize| {
            Json::Arr(
                self.points[c.index()]
                    .iter()
                    .map(|p| {
                        Json::obj()
                            .set("freq_hz", p.freq_hz)
                            .set("dyn_w", p.dyn_w)
                            .set("static_w", p.static_w)
                    })
                    .collect(),
            )
        };
        Json::obj()
            .set("schema", TABLE_SCHEMA)
            .set("dyn_floor", self.dyn_floor)
            .set("dram_energy_per_access_j", self.dram_energy_per_access_j)
            .set("uncore_w_per_core", self.uncore_w_per_core)
            .set(
                "points",
                Json::obj()
                    .set("S", size(CoreSize::S))
                    .set("M", size(CoreSize::M))
                    .set("L", size(CoreSize::L)),
            )
    }

    /// Inverse of [`TableBackend::to_json`], with full validation.
    /// `origin` becomes the backend's report identity.
    pub fn from_json(j: &Json, origin: impl Into<String>) -> Result<TableBackend, String> {
        match j.get("schema") {
            Some(Json::Str(s)) if s == TABLE_SCHEMA => {}
            other => {
                return Err(format!("table: expected schema {TABLE_SCHEMA:?}, found {other:?}"))
            }
        }
        let num = |key: &str| -> Result<f64, String> {
            match j.get(key) {
                Some(Json::Num(x)) => Ok(*x),
                Some(Json::Int(i)) => Ok(*i as f64),
                _ => Err(format!("table: missing numeric field {key:?}")),
            }
        };
        let points_obj = j.get("points").ok_or("table: missing field \"points\"")?;
        let size = |key: &str| -> Result<Vec<TablePoint>, String> {
            let Some(Json::Arr(items)) = points_obj.get(key) else {
                return Err(format!("table: points.{key} must be an array"));
            };
            items
                .iter()
                .map(|item| {
                    let field = |k: &str| match item.get(k) {
                        Some(Json::Num(x)) => Ok(*x),
                        Some(Json::Int(i)) => Ok(*i as f64),
                        _ => Err(format!("table: points.{key} entry missing numeric {k:?}")),
                    };
                    Ok(TablePoint {
                        freq_hz: field("freq_hz")?,
                        dyn_w: field("dyn_w")?,
                        static_w: field("static_w")?,
                    })
                })
                .collect()
        };
        let t = TableBackend {
            origin: origin.into(),
            points: [size("S")?, size("M")?, size("L")?],
            dyn_floor: num("dyn_floor")?,
            dram_energy_per_access_j: num("dram_energy_per_access_j")?,
            uncore_w_per_core: num("uncore_w_per_core")?,
        };
        t.validate()?;
        Ok(t)
    }

    /// Load a table from a canonical JSON file; the path becomes the
    /// backend's report identity.
    pub fn load(path: &str) -> Result<TableBackend, String> {
        TABLE_LOAD_FP.check()?;
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading energy table {path}: {e}"))?;
        let doc = parse(&text).map_err(|e| format!("parsing energy table {path}: {e}"))?;
        Self::from_json(&doc, path)
    }

    /// Write the table to a canonical JSON file.
    pub fn save(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_json().to_string_pretty())
            .map_err(|e| format!("writing energy table {path}: {e}"))
    }
}

impl EnergyBackend for TableBackend {
    fn label(&self) -> String {
        format!("table:{}", self.origin)
    }

    fn core_dynamic_power(&self, c: CoreSize, vf: VfPoint, util: f64) -> f64 {
        let full = interp(&self.points[c.index()], vf.freq_hz, |p| p.dyn_w);
        let activity = self.dyn_floor + (1.0 - self.dyn_floor) * util.clamp(0.0, 1.0);
        full * activity
    }

    fn core_static_power(&self, c: CoreSize, vf: VfPoint) -> f64 {
        interp(&self.points[c.index()], vf.freq_hz, |p| p.static_w)
    }

    fn dram_energy_per_access_j(&self) -> f64 {
        self.dram_energy_per_access_j
    }

    fn uncore_w_per_core(&self) -> f64 {
        self.uncore_w_per_core
    }

    fn dyn_ratio(&self, target: CoreSize, current: CoreSize) -> f64 {
        let at_ref = |c: CoreSize| interp(&self.points[c.index()], REF_FREQ_HZ, |p| p.dyn_w);
        at_ref(target) / at_ref(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_arch::DvfsGrid;

    fn sampled() -> TableBackend {
        let grid = DvfsGrid::table1();
        TableBackend::sampled_from(&EnergyModel::default_model(), grid.points(), "test")
    }

    #[test]
    fn sampled_table_matches_parametric_at_grid_points() {
        let t = sampled();
        let m = EnergyModel::default_model();
        let grid = DvfsGrid::table1();
        for c in CoreSize::ALL {
            for (_, vf) in grid.iter() {
                for util in [0.0, 0.4, 1.0] {
                    let a = t.core_dynamic_power(c, vf, util);
                    let b = m.core_dynamic_power(c, vf, util);
                    assert!((a - b).abs() < 1e-12, "{c:?} {vf:?} {util}: {a} vs {b}");
                }
                let a = t.core_static_power(c, vf);
                let b = m.core_static_power(c, vf);
                assert!((a - b).abs() < 1e-12);
            }
        }
        assert_eq!(t.dyn_ratio(CoreSize::L, CoreSize::M), 5.50 / 2.80);
    }

    #[test]
    fn interpolation_is_between_neighbors_and_clamped_outside() {
        let t = sampled();
        let grid = DvfsGrid::table1();
        let mid = VfPoint { freq_hz: 2.125e9, volt: DvfsGrid::voltage_for(2.125e9) };
        let p = t.core_dynamic_power(CoreSize::M, mid, 1.0);
        let lo = t.core_dynamic_power(CoreSize::M, grid.point(4), 1.0);
        let hi = t.core_dynamic_power(CoreSize::M, grid.point(5), 1.0);
        assert!(p > lo && p < hi, "{lo} < {p} < {hi}");
        // Outside the measured range the nearest sample wins.
        let below = VfPoint { freq_hz: 0.1e9, volt: 0.7 };
        let above = VfPoint { freq_hz: 9.9e9, volt: 1.5 };
        assert_eq!(t.core_dynamic_power(CoreSize::M, below, 1.0), t.points[1][0].dyn_w);
        assert_eq!(t.core_static_power(CoreSize::M, above), t.points[1].last().unwrap().static_w);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let t = sampled();
        let text = t.to_json().to_string_pretty();
        let back = TableBackend::from_json(&parse(&text).unwrap(), "test").unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn save_and_load_round_trip() {
        let t = sampled();
        let path = std::env::temp_dir()
            .join(format!("triad-energy-table-test-{}.json", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        t.save(&path).unwrap();
        let back = TableBackend::load(&path).unwrap();
        assert_eq!(t.points, back.points);
        assert_eq!(back.origin, path);
        assert!(back.label().starts_with("table:"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn validation_rejects_malformed_tables() {
        let mut t = sampled();
        t.points[0].clear();
        assert!(t.validate().is_err(), "empty size must fail");

        let mut t = sampled();
        t.points[1].swap(0, 1);
        assert!(t.validate().is_err(), "unsorted samples must fail");

        let mut t = sampled();
        t.points[1][5].dyn_w = t.points[1][4].dyn_w * 0.5;
        assert!(t.validate().is_err(), "power dipping at higher frequency must fail");

        let mut t = sampled();
        t.points[2][0].dyn_w = -1.0;
        assert!(t.validate().is_err(), "negative power must fail");

        let mut t = sampled();
        t.dyn_floor = 1.5;
        assert!(t.validate().is_err(), "dyn_floor > 1 must fail");
    }

    #[test]
    fn single_sample_tables_are_flat() {
        let mut t = sampled();
        for pts in &mut t.points {
            pts.truncate(1);
        }
        t.validate().unwrap();
        let grid = DvfsGrid::table1();
        let a = t.core_static_power(CoreSize::S, grid.point(0));
        let b = t.core_static_power(CoreSize::S, grid.point(9));
        assert_eq!(a, b);
    }
}
