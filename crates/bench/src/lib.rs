//! # triad-bench — experiment harness regenerating every table and figure
//!
//! One binary per table/figure of the paper (run with
//! `cargo run --release -p triad-bench --bin <name>`):
//!
//! | binary               | reproduces |
//! |----------------------|------------|
//! | `table1_config`      | Table I — baseline configuration |
//! | `table2_categories`  | Table II — application categories via the §IV-C criteria |
//! | `fig1_tradeoffs`     | Fig. 1 — category-mix probabilities and scenarios |
//! | `fig2_twocore`       | Fig. 2 — two-core scenario savings (perfect models) |
//! | `fig6_energy`        | Fig. 6 — RM1/RM2/RM3 savings on 4- and 8-core workloads |
//! | `fig7_qos`           | Fig. 7 — QoS-violation probability / expected value / σ |
//! | `fig8_violation_dist`| Fig. 8 — violation-magnitude distribution |
//! | `fig9_model_effect`  | Fig. 9 — RM3 savings under Model1/2/3 vs perfect |
//! | `overheads`          | §III-E — RM algorithm operation counts and runtime |
//!
//! Criterion benches (`cargo bench -p triad-bench`): the RM-invocation cost
//! versus core count (the §III-E instruction-count measurement) and the
//! substrate throughputs (cache classification, timing simulation, ATD+MLP
//! monitor, global optimizer).
//!
//! The shared [`db()`] helper builds (and memoizes per process) the full
//! detailed-simulation database.

use std::sync::OnceLock;
use triad_phasedb::{build_suite, DbConfig, PhaseDb};

/// Build (once per process) the full-suite phase database.
pub fn db() -> &'static PhaseDb {
    static DB: OnceLock<PhaseDb> = OnceLock::new();
    DB.get_or_init(|| {
        eprintln!("building the detailed-simulation database (all 27 apps)...");
        let t = std::time::Instant::now();
        let db = build_suite(&DbConfig::default());
        eprintln!("database ready in {:.1}s", t.elapsed().as_secs_f64());
        db
    })
}

/// Format a savings fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", 100.0 * x)
}
