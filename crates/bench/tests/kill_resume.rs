//! End-to-end crash-safety test against the real `triad-bench` binary:
//! a run is killed deterministically mid-campaign by an abort failpoint,
//! resumed from its journal, and must reproduce the uninterrupted report
//! byte for byte. A second leg quarantines one spec via an injected
//! panic, checks the nonzero exit, and reconverges on resume.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_triad-bench");

/// The shared workspace phase-db cache: warm after any prior test/bench
/// run, built once (fast config, 3 apps) otherwise.
fn db_cache() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/phasedb")
}

fn work_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("triad-kill-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// An energy-sweep invocation: 5 specs (one per backend), serial so the
/// journal append order — and therefore the abort point — is exact.
fn bench(dir: &Path, extra: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(BIN);
    cmd.current_dir(dir)
        .args([
            "--experiment",
            "energy-sweep",
            "--fast",
            "--intervals",
            "6",
            "--threads",
            "1",
            "--db-cache",
            db_cache().to_str().unwrap(),
        ])
        .args(extra);
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("spawning triad-bench")
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// A churn invocation over the 2-app pool: one dynamic-workload spec
/// whose presenter consumes the `SimResult` fields the report row JSON
/// omits (arrivals, departures, vacancy energy).
fn churn_bench(dir: &Path, extra: &[&str]) -> Output {
    let mut cmd = Command::new(BIN);
    cmd.current_dir(dir)
        .args([
            "--experiment",
            "churn",
            "--apps",
            "mcf,povray",
            "--cores",
            "2",
            "--fast",
            "--intervals",
            "6",
            "--threads",
            "1",
            "--db-cache",
            db_cache().to_str().unwrap(),
        ])
        .args(extra);
    cmd.output().expect("spawning triad-bench")
}

#[test]
fn killed_runs_resume_to_byte_identical_reports() {
    let dir = work_dir("sweep");

    // Uninterrupted baseline (no journal).
    let base = bench(&dir, &["--json", "base.json"], &[]);
    assert!(base.status.success(), "baseline failed: {}", String::from_utf8_lossy(&base.stderr));
    let base_json = read(&dir.join("base.json"));

    // Leg 1 — deterministic kill: abort after the third durable journal
    // append (2 of 5 specs still unrecorded), then resume without faults.
    let killed = bench(
        &dir,
        &["--journal", "kill.jsonl", "--json", "kill.json"],
        &[("TRIAD_FAILPOINTS", "journal.appended=every(3):abort")],
    );
    assert!(!killed.status.success(), "the abort failpoint must kill the run");
    let journal = read(&dir.join("kill.jsonl"));
    assert_eq!(journal.lines().count(), 3, "exactly three rows were durably journaled");

    let resumed = bench(
        &dir,
        &[
            "--journal",
            "kill.jsonl",
            "--resume",
            "--json",
            "resumed.json",
            "--telemetry",
            "tel.json",
        ],
        &[],
    );
    assert!(
        resumed.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        read(&dir.join("resumed.json")),
        base_json,
        "resumed report must be byte-identical to the uninterrupted run"
    );
    let tel = read(&dir.join("tel.json"));
    assert!(tel.contains("\"campaign.rows_resumed\": 3"), "telemetry: {tel}");
    assert!(tel.contains("\"campaign.rows_simulated\": 2"), "telemetry: {tel}");
    assert!(tel.contains("\"journal.records_loaded\": 3"), "telemetry: {tel}");

    // Leg 2 — quarantine: one injected row panic. The run completes the
    // other four rows, reports the error row, and exits nonzero with a
    // clean one-line diagnostic (no panic spew on stderr).
    let quarantined = bench(
        &dir,
        &[
            "--failpoints",
            "campaign.row=once:panic",
            "--journal",
            "quarantine.jsonl",
            "--json",
            "quarantine.json",
        ],
        &[],
    );
    assert_eq!(quarantined.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&quarantined.stderr);
    assert!(stderr.contains("1 spec(s) quarantined"), "stderr: {stderr}");
    let q_json = read(&dir.join("quarantine.json"));
    assert!(q_json.contains("\"quarantined\""), "report must carry the error row");
    assert!(q_json.contains("row_panic"), "report must carry the typed error kind");

    let reconverged = bench(
        &dir,
        &["--journal", "quarantine.jsonl", "--resume", "--json", "reconverged.json"],
        &[],
    );
    assert!(
        reconverged.status.success(),
        "reconverge failed: {}",
        String::from_utf8_lossy(&reconverged.stderr)
    );
    assert_eq!(
        read(&dir.join("reconverged.json")),
        base_json,
        "post-quarantine resume must reconverge on the uninterrupted report"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Churn leg: the preset's console table, sanity asserts and row JSON all
/// consume `arrivals`/`vacancy_energy_j` — fields the report rows omit
/// but the journal records carry. A run resumed wholly from its journal
/// must restore them (a zeroed resume would trip the preset's
/// nonzero-arrivals floor and change the row JSON).
#[test]
fn churn_resume_restores_the_fields_presenters_consume() {
    let dir = work_dir("churn");

    let base = churn_bench(&dir, &["--json", "base.json"]);
    assert!(base.status.success(), "baseline failed: {}", String::from_utf8_lossy(&base.stderr));
    let base_json = read(&dir.join("base.json"));

    let journaled = churn_bench(&dir, &["--journal", "churn.jsonl", "--json", "run.json"]);
    assert!(
        journaled.status.success(),
        "journaled run failed: {}",
        String::from_utf8_lossy(&journaled.stderr)
    );
    assert_eq!(read(&dir.join("run.json")), base_json, "journaling must not change the report");

    let resumed = churn_bench(
        &dir,
        &[
            "--journal",
            "churn.jsonl",
            "--resume",
            "--json",
            "resumed.json",
            "--telemetry",
            "tel.json",
        ],
    );
    assert!(
        resumed.status.success(),
        "churn resume failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        read(&dir.join("resumed.json")),
        base_json,
        "resumed churn report must be byte-identical to the uninterrupted run"
    );
    let tel = read(&dir.join("tel.json"));
    assert!(tel.contains("\"campaign.rows_resumed\": 1"), "telemetry: {tel}");
    // Zero-valued counters are omitted from the report: nothing simulated.
    assert!(!tel.contains("campaign.rows_simulated"), "telemetry: {tel}");

    let _ = std::fs::remove_dir_all(&dir);
}
