//! Per-core DVFS operating points (Table I) and transition overheads (§III-E).
//!
//! Table I specifies a per-core DVFS domain with a 1.0–3.25 GHz frequency
//! range and a 0.8–1.25 V voltage range; the baseline point is 2 GHz / 1 V.
//! We discretize the range into 0.25 GHz steps (10 operating points), with a
//! linear V(f) map that hits all three anchor points from the table:
//! `V(1.0 GHz) = 0.8 V`, `V(2.0 GHz) = 1.0 V`, `V(3.25 GHz) = 1.25 V`.
//!
//! Switching the VF point of a core costs time and energy; §III-E adopts the
//! Samsung Exynos 4210 measurements of 15 µs and 3 µJ per transition.

/// Time to complete one per-core VF transition, in seconds (15 µs, §III-E).
pub const DVFS_TRANSITION_TIME_S: f64 = 15e-6;

/// Energy consumed by one per-core VF transition, in joules (3 µJ, §III-E).
pub const DVFS_TRANSITION_ENERGY_J: f64 = 3e-6;

/// Index of an operating point within a [`DvfsGrid`].
pub type VfIndex = usize;

/// A single voltage/frequency operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VfPoint {
    /// Core clock frequency in Hz.
    pub freq_hz: f64,
    /// Supply voltage in volts.
    pub volt: f64,
}

impl VfPoint {
    /// Frequency in GHz (convenience for reports).
    #[inline]
    pub fn freq_ghz(&self) -> f64 {
        self.freq_hz / 1e9
    }
}

/// The discrete per-core DVFS operating-point grid.
///
/// Points are ordered by ascending frequency; `grid.point(grid.baseline)` is
/// the 2 GHz / 1 V baseline from Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsGrid {
    points: Vec<VfPoint>,
    /// Index of the baseline (2 GHz) point.
    pub baseline: VfIndex,
}

impl DvfsGrid {
    /// Frequency step between adjacent grid points, in Hz.
    pub const STEP_HZ: f64 = 0.25e9;
    /// Lowest grid frequency, in Hz (Table I: 1 GHz).
    pub const MIN_HZ: f64 = 1.0e9;
    /// Highest grid frequency, in Hz (Table I: 3.25 GHz).
    pub const MAX_HZ: f64 = 3.25e9;

    /// The Table I grid: 1.00, 1.25, …, 3.25 GHz (10 points).
    pub fn table1() -> Self {
        let mut points = Vec::new();
        let mut baseline = 0;
        let steps = ((Self::MAX_HZ - Self::MIN_HZ) / Self::STEP_HZ).round() as usize;
        for i in 0..=steps {
            let f = Self::MIN_HZ + i as f64 * Self::STEP_HZ;
            if (f - 2.0e9).abs() < 1.0 {
                baseline = points.len();
            }
            points.push(VfPoint { freq_hz: f, volt: Self::voltage_for(f) });
        }
        DvfsGrid { points, baseline }
    }

    /// The linear V(f) map anchored on Table I:
    /// `V = 0.8 + 0.2 · (f[GHz] − 1.0)` volts.
    #[inline]
    pub fn voltage_for(freq_hz: f64) -> f64 {
        0.8 + 0.2 * (freq_hz / 1e9 - 1.0)
    }

    /// Number of operating points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the grid holds no operating points (never for `table1`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The operating point at `idx`. Panics if out of range.
    #[inline]
    pub fn point(&self, idx: VfIndex) -> VfPoint {
        self.points[idx]
    }

    /// The baseline operating point (2 GHz / 1 V).
    #[inline]
    pub fn baseline_point(&self) -> VfPoint {
        self.points[self.baseline]
    }

    /// All operating points in ascending-frequency order.
    #[inline]
    pub fn points(&self) -> &[VfPoint] {
        &self.points
    }

    /// Iterate `(index, point)` pairs in ascending-frequency order.
    pub fn iter(&self) -> impl Iterator<Item = (VfIndex, VfPoint)> + '_ {
        self.points.iter().copied().enumerate()
    }

    /// Index of the slowest grid point whose frequency is ≥ `freq_hz`,
    /// or `None` if even the fastest point is below it.
    pub fn ceil_index(&self, freq_hz: f64) -> Option<VfIndex> {
        self.points.iter().position(|p| p.freq_hz >= freq_hz)
    }
}

impl Default for DvfsGrid {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_grid_has_ten_points() {
        let g = DvfsGrid::table1();
        assert_eq!(g.len(), 10);
        assert!((g.point(0).freq_hz - 1.0e9).abs() < 1.0);
        assert!((g.point(9).freq_hz - 3.25e9).abs() < 1.0);
    }

    #[test]
    fn baseline_is_2ghz_1v() {
        let g = DvfsGrid::table1();
        let b = g.baseline_point();
        assert!((b.freq_hz - 2.0e9).abs() < 1.0);
        assert!((b.volt - 1.0).abs() < 1e-12);
    }

    #[test]
    fn voltage_map_hits_table1_anchors() {
        assert!((DvfsGrid::voltage_for(1.0e9) - 0.8).abs() < 1e-12);
        assert!((DvfsGrid::voltage_for(2.0e9) - 1.0).abs() < 1e-12);
        assert!((DvfsGrid::voltage_for(3.25e9) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn grid_is_sorted_and_voltage_monotone() {
        let g = DvfsGrid::table1();
        for w in g.points().windows(2) {
            assert!(w[0].freq_hz < w[1].freq_hz);
            assert!(w[0].volt < w[1].volt);
        }
    }

    #[test]
    fn ceil_index_picks_slowest_satisfying_point() {
        let g = DvfsGrid::table1();
        assert_eq!(g.ceil_index(0.5e9), Some(0));
        assert_eq!(g.ceil_index(1.0e9), Some(0));
        assert_eq!(g.ceil_index(1.01e9), Some(1));
        assert_eq!(g.ceil_index(2.0e9), Some(g.baseline));
        assert_eq!(g.ceil_index(3.25e9), Some(9));
        assert_eq!(g.ceil_index(3.26e9), None);
    }

    #[test]
    fn freq_ghz_conversion() {
        let p = VfPoint { freq_hz: 2.5e9, volt: 1.1 };
        assert!((p.freq_ghz() - 2.5).abs() < 1e-12);
    }
}
