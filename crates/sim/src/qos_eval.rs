//! QoS-violation evaluation (§IV-D2, Figs. 7–8).
//!
//! A target setting chosen for interval `i+1` *violates* QoS when the model
//! predicted it would meet the baseline time but the actual execution
//! exceeds it:
//!
//! 1. actual:    `T_act(target) > T_act(base)`;
//! 2. predicted: `T_pred(target) ≤ T_pred(base)`;
//! 3. the target was selected by the RM — approximated, as in the paper, by
//!    uniform selection probability over targets.
//!
//! The evaluation iterates over all phases of all applications (weighted by
//! the SimPoint phase weights), all current settings (which determine the
//! monitor statistics the model reads) and all target settings, and
//! reports the violation probability, the expected violation magnitude
//! (Eq. 6), its standard deviation and the magnitude histogram (Fig. 8).
//!
//! Predictions of the online models do not depend on the current VF point
//! (cycle counters are frequency-invariant and Eq. 2 is frequency-free), so
//! the current-setting space is `(c, w)`; targets span the full
//! `(c, f, w)` grid.

use triad_arch::{CoreSize, Setting, SystemConfig};
use triad_energy::{EnergyBackend, EnergyModel};
use triad_mem::DramParams;
use triad_phasedb::{PhaseDb, W_MAX, W_MIN};
use triad_rm::{IntervalModel, ModelKind, Observation, OnlineModel};
use triad_workload::WorkloadTrace;

/// Aggregated violation statistics for one model.
#[derive(Debug, Clone)]
pub struct QosEvaluation {
    /// Probability that a (phase, current, target) triple is a violation.
    pub probability: f64,
    /// Expected violation magnitude (Eq. 6) over violating triples.
    pub expected_violation: f64,
    /// Standard deviation of the violation magnitude.
    pub std_violation: f64,
    /// Weighted histogram of violation magnitudes; bin `k` covers
    /// `[k·bin_width, (k+1)·bin_width)`.
    pub histogram: Vec<f64>,
    /// Histogram bin width (relative violation units).
    pub bin_width: f64,
}

impl QosEvaluation {
    /// Histogram normalized so the largest bin equals 1 (Fig. 8's y-axis is
    /// normalized to the maximum across models; apply that externally).
    pub fn histogram_max(&self) -> f64 {
        self.histogram.iter().copied().fold(0.0, f64::max)
    }
}

/// Number of histogram bins (up to 50 % violation at 2.5 % steps).
const N_BINS: usize = 20;
/// Histogram bin width.
const BIN_WIDTH: f64 = 0.025;

/// Evaluate one model over the whole database under the default
/// (McPAT-parametric) energy backend.
pub fn evaluate_model(db: &PhaseDb, kind: ModelKind, sys: &SystemConfig) -> QosEvaluation {
    evaluate_model_with(db, kind, sys, &EnergyModel::default_model())
}

/// Evaluate one model under an explicit energy backend. The violation
/// *probability* is a pure timing property, but which targets the RM
/// "would select" is checked through the same model object a real run
/// builds, so the backend is threaded for faithfulness (and so sweeps can
/// report it as row provenance).
pub fn evaluate_model_with(
    db: &PhaseDb,
    kind: ModelKind,
    sys: &SystemConfig,
    em: &dyn EnergyBackend,
) -> QosEvaluation {
    let app_w = 1.0 / db.apps.len() as f64;
    evaluate_model_weighted(db, kind, sys, em, &vec![app_w; db.apps.len()])
}

/// Evaluate one model with the application weights a [`WorkloadTrace`]
/// implies: each application counts in proportion to the global intervals
/// it occupies in the trace (churn replacements and vacancy windows shrink
/// an application's share; applications absent from the trace contribute
/// nothing). This is the Fig. 7/8 evaluation "stepped through" a dynamic
/// workload instead of the uniform whole-suite average.
pub fn evaluate_model_on_trace(
    db: &PhaseDb,
    trace: &WorkloadTrace,
    kind: ModelKind,
    sys: &SystemConfig,
    em: &dyn EnergyBackend,
) -> QosEvaluation {
    evaluate_model_weighted(db, kind, sys, em, &trace_app_weights(db, trace))
}

/// Per-database-entry weights implied by a trace's scheduled occupancy
/// (normalized to sum 1 over the applications the database knows).
pub fn trace_app_weights(db: &PhaseDb, trace: &WorkloadTrace) -> Vec<f64> {
    let durations = trace.app_durations();
    let mut weights: Vec<f64> = db
        .apps
        .iter()
        .map(|e| {
            durations
                .iter()
                .find(|(name, _)| name.as_str() == e.spec.name)
                .map(|(_, d)| *d as f64)
                .unwrap_or(0.0)
        })
        .collect();
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "trace references no application present in the database");
    for w in &mut weights {
        *w /= total;
    }
    weights
}

/// The shared evaluation core: iterate phases × current × target settings
/// with an explicit per-application weight vector (aligned with
/// `db.apps`, summing to 1).
fn evaluate_model_weighted(
    db: &PhaseDb,
    kind: ModelKind,
    sys: &SystemConfig,
    em: &dyn EnergyBackend,
    app_weights: &[f64],
) -> QosEvaluation {
    let lmem = DramParams::table1().base_latency_s;
    let baseline = sys.baseline_setting();
    let bvf = sys.dvfs.point(baseline.vf);

    let mut total_w = 0.0f64;
    let mut viol_w = 0.0f64;
    let mut sum = 0.0f64;
    let mut sum2 = 0.0f64;
    let mut histogram = vec![0.0f64; N_BINS];

    for (entry, &app_w) in db.apps.iter().zip(app_weights) {
        if app_w == 0.0 {
            continue;
        }
        let weights = entry.spec.phase_weights();
        for (rec, &pw) in entry.records.iter().zip(&weights) {
            let t_act_base = rec.tpi(baseline.core, bvf.freq_hz, baseline.ways);
            // Current settings: (c, w); uniform probability.
            let n_cur = (CoreSize::COUNT * (W_MAX - W_MIN + 1)) as f64;
            for cur_c in CoreSize::ALL {
                for cur_w in W_MIN..=W_MAX {
                    let cur = Setting::new(cur_c, baseline.vf, cur_w);
                    let model = OnlineModel {
                        obs: Observation {
                            stats: rec.monitor_at(cur_c, cur_w),
                            miss_curve_pi: &rec.miss_curve_pi,
                            load_miss_curve_pi: &rec.load_miss_curve_pi,
                            current: cur,
                            sampled_dyn_w: 1.0,
                        },
                        kind,
                        grid: &sys.dvfs,
                        energy: em,
                        lmem_s: lmem,
                    };
                    let (t_pred_base, _) = model.predict(baseline);
                    // Targets: full (c, f, w) grid; uniform probability.
                    let n_tgt = (CoreSize::COUNT * sys.dvfs.len() * (W_MAX - W_MIN + 1)) as f64;
                    let w_triple = app_w * pw / (n_cur * n_tgt);
                    for tc in CoreSize::ALL {
                        for tf in 0..sys.dvfs.len() {
                            for tw in W_MIN..=W_MAX {
                                let tgt = Setting::new(tc, tf, tw);
                                total_w += w_triple;
                                let (t_pred, _) = model.predict(tgt);
                                if t_pred > t_pred_base {
                                    continue; // the RM would not select it
                                }
                                let tvf = sys.dvfs.point(tf);
                                let t_act = rec.tpi(tc, tvf.freq_hz, tw);
                                if t_act > t_act_base {
                                    let v = (t_act - t_act_base) / t_act_base;
                                    viol_w += w_triple;
                                    sum += w_triple * v;
                                    sum2 += w_triple * v * v;
                                    let bin = ((v / BIN_WIDTH) as usize).min(N_BINS - 1);
                                    histogram[bin] += w_triple;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    let probability = viol_w / total_w;
    let (expected, std) = if viol_w > 0.0 {
        let mean = sum / viol_w;
        let var = (sum2 / viol_w - mean * mean).max(0.0);
        (mean, var.sqrt())
    } else {
        (0.0, 0.0)
    };
    QosEvaluation {
        probability,
        expected_violation: expected,
        std_violation: std,
        histogram,
        bin_width: BIN_WIDTH,
    }
}

/// Evaluate all three online models (Fig. 7).
pub fn evaluate_models(db: &PhaseDb, sys: &SystemConfig) -> Vec<(ModelKind, QosEvaluation)> {
    ModelKind::ALL.iter().map(|&k| (k, evaluate_model(db, k, sys))).collect()
}

/// Evaluate all three online models under an explicit energy backend.
pub fn evaluate_models_with(
    db: &PhaseDb,
    sys: &SystemConfig,
    em: &dyn EnergyBackend,
) -> Vec<(ModelKind, QosEvaluation)> {
    ModelKind::ALL.iter().map(|&k| (k, evaluate_model_with(db, k, sys, em))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_phasedb::{build_apps, DbConfig};

    fn db() -> PhaseDb {
        let names = ["mcf", "libquantum", "gcc", "povray"];
        let apps: Vec<_> =
            triad_trace::suite().into_iter().filter(|a| names.contains(&a.name)).collect();
        build_apps(&apps, &DbConfig::fast())
    }

    #[test]
    fn model3_dominates_on_probability_and_tail() {
        let db = db();
        let sys = SystemConfig::table1(4);
        let evals = evaluate_models(&db, &sys);
        let p: Vec<f64> = evals.iter().map(|(_, e)| e.probability).collect();
        // The paper's headline (Fig. 7): Model3 < Model2 < Model1.
        assert!(p[2] < p[1], "Model3 {} must beat Model2 {}", p[2], p[1]);
        assert!(p[2] < p[0], "Model3 {} must beat Model1 {}", p[2], p[0]);
        for (_, e) in &evals {
            assert!(e.probability >= 0.0 && e.probability <= 1.0);
            assert!(e.expected_violation >= 0.0);
        }
    }

    #[test]
    fn histogram_mass_matches_probability() {
        let db = db();
        let sys = SystemConfig::table1(4);
        let e = evaluate_model(&db, ModelKind::Model2, &sys);
        let mass: f64 = e.histogram.iter().sum();
        assert!((mass - e.probability).abs() < 1e-9);
    }

    #[test]
    fn trace_weights_reflect_scheduled_occupancy() {
        use triad_workload::{EventKind, TraceEvent};
        let db = db();
        // A steady trace over a subset weights those apps equally and the
        // rest zero.
        let steady = WorkloadTrace::steady(&["mcf", "gcc"]);
        let w = trace_app_weights(&db, &steady);
        assert_eq!(w.len(), db.apps.len());
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for (e, &x) in db.apps.iter().zip(&w) {
            let expect = if ["mcf", "gcc"].contains(&e.spec.name) { 0.5 } else { 0.0 };
            assert_eq!(x, expect, "{}", e.spec.name);
        }
        // A churn trace weights by occupied intervals: mcf holds core 0 for
        // the whole 20-interval horizon, gcc/povray split core 1 12/8.
        let churny = WorkloadTrace {
            n_cores: 2,
            horizon: Some(20),
            events: vec![
                TraceEvent {
                    at: 0,
                    core: 0,
                    kind: EventKind::Arrive { app: "mcf".into(), phase_offset: 0 },
                },
                TraceEvent {
                    at: 0,
                    core: 1,
                    kind: EventKind::Arrive { app: "gcc".into(), phase_offset: 0 },
                },
                TraceEvent {
                    at: 12,
                    core: 1,
                    kind: EventKind::Arrive { app: "povray".into(), phase_offset: 0 },
                },
            ],
        };
        let w = trace_app_weights(&db, &churny);
        let weight_of = |name: &str| {
            db.apps.iter().zip(&w).find(|(e, _)| e.spec.name == name).map(|(_, &x)| x).unwrap()
        };
        assert!((weight_of("mcf") - 0.5).abs() < 1e-12);
        assert!((weight_of("gcc") - 0.3).abs() < 1e-12);
        assert!((weight_of("povray") - 0.2).abs() < 1e-12);
        assert_eq!(weight_of("libquantum"), 0.0);
    }

    #[test]
    fn trace_weighted_evaluation_follows_the_workload() {
        let db = db();
        let sys = SystemConfig::table1(2);
        let em = EnergyModel::default_model();
        let uniform = evaluate_model_with(&db, ModelKind::Model2, &sys, &em);
        // A trace occupied solely by povray must reproduce the povray-only
        // evaluation — and generally differ from the uniform average.
        let povray_only = WorkloadTrace::steady(&["povray", "povray"]);
        let traced = evaluate_model_on_trace(&db, &povray_only, ModelKind::Model2, &sys, &em);
        let solo_db =
            PhaseDb { apps: db.apps.iter().filter(|e| e.spec.name == "povray").cloned().collect() };
        let solo = evaluate_model_with(&solo_db, ModelKind::Model2, &sys, &em);
        assert_eq!(traced.probability, solo.probability);
        assert_eq!(traced.expected_violation, solo.expected_violation);
        assert_ne!(traced.probability, uniform.probability);
    }

    #[test]
    fn violations_exist_but_are_minority() {
        let db = db();
        let sys = SystemConfig::table1(4);
        for (k, e) in evaluate_models(&db, &sys) {
            assert!(e.probability > 0.0, "{k}: some modeling error must exist");
            assert!(e.probability < 0.5, "{k}: violations must be the minority");
        }
    }
}
