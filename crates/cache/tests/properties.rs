//! Property-based tests for the cache substrate.

use proptest::prelude::*;
use triad_cache::{atd::COLD, Atd, MlpMonitor, SetAssocCache};
use triad_arch::CoreSize;

proptest! {
    /// The load-bearing ATD property: for every address stream and every
    /// allocation w, the ATD's stack-distance prediction must agree with a
    /// real w-way LRU cache of the same set count (LRU inclusion).
    #[test]
    fn atd_predicts_every_lru_cache(
        addrs in prop::collection::vec(0u64..512, 1..400),
        ways in 1usize..8,
    ) {
        let sets = 8;
        let mut atd = Atd::new(sets, 8);
        let mut cache = SetAssocCache::new(sets, ways);
        let mut direct_misses = 0u64;
        for &a in &addrs {
            let addr = a * 64;
            let d = atd.access(addr);
            let hit = cache.access(addr);
            prop_assert_eq!(hit, d != COLD && (d as usize) < ways);
            if !hit {
                direct_misses += 1;
            }
        }
        prop_assert_eq!(atd.miss_count(ways), direct_misses);
    }

    /// Miss curves are monotone non-increasing in the allocation.
    #[test]
    fn miss_curve_monotone(addrs in prop::collection::vec(0u64..4096, 1..600)) {
        let mut atd = Atd::new(16, 16);
        for &a in &addrs {
            atd.access(a * 64);
        }
        let curve = atd.miss_curve();
        for w in curve.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        // And the hit+miss total is conserved.
        prop_assert_eq!(atd.accesses(), addrs.len() as u64);
    }

    /// The MLP monitor never counts more leading misses than misses, and a
    /// larger core never sees more leading misses on in-order feeds.
    #[test]
    fn monitor_lm_bounds(
        steps in prop::collection::vec(1u64..400, 1..200),
        dists in prop::collection::vec(0u8..18, 1..200),
    ) {
        let mut mon = MlpMonitor::table1();
        let mut idx = 0u64;
        for (s, d) in steps.iter().zip(&dists) {
            idx += s;
            let dist = if *d >= 16 { COLD } else { *d };
            mon.on_llc_load(idx, dist);
        }
        for w in 2..=16 {
            let misses = mon.miss_count(CoreSize::M, w);
            for c in CoreSize::ALL {
                prop_assert!(mon.lm_count(c, w) <= misses);
                prop_assert!(mon.lm_count(c, w) + mon.ov_count(c, w) == misses);
                prop_assert!(mon.mlp(c, w) >= 1.0);
            }
            // In-order arrivals: monotone in core size.
            prop_assert!(mon.lm_count(CoreSize::S, w) >= mon.lm_count(CoreSize::M, w));
            prop_assert!(mon.lm_count(CoreSize::M, w) >= mon.lm_count(CoreSize::L, w));
        }
    }

    /// Cache behavior is purely functional in the access stream.
    #[test]
    fn cache_is_deterministic(addrs in prop::collection::vec(0u64..1024, 1..300)) {
        let run = || {
            let mut c = SetAssocCache::new(16, 4);
            addrs.iter().map(|&a| c.access(a * 64)).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
