//! The serializable workload-generator DSL: [`WorkloadSpec`].
//!
//! A spec is a pure description; [`WorkloadSpec::materialize`] expands it
//! into a [`WorkloadTrace`] deterministically from the spec's own seed (the
//! same spec always yields byte-identical trace JSON, on any thread). All
//! randomness goes through the deterministic `triad-util` xoshiro PRNG;
//! arrival processes use inverse-CDF exponential sampling.
//!
//! | kind     | program |
//! |----------|---------|
//! | `static` | an explicit app list frozen at `t = 0` |
//! | `steady` | one sampled §IV-C mix frozen at `t = 0` |
//! | `phased` | piecewise-constant category schedule: a fresh mix per stage |
//! | `bursty` | Poisson / two-state MMPP arrivals onto vacant cores with exponential service times |
//! | `churn`  | per-core app replacement mid-run (cold phase restart) |
//! | `scaled` | N× the 27-app Table II census with jittered phase positions, streamed across the cores |

use crate::scenario::{sample_mix, Scenario};
use crate::trace::{EventKind, TraceEvent, WorkloadTrace};
use triad_trace::{by_category, suite};
use triad_util::failpoint::FailPoint;
use triad_util::json::Json;
use triad_util::rand::rngs::StdRng;
use triad_util::rand::{RngExt, SeedableRng};

/// Injected-fault site at the top of [`WorkloadSpec::materialize`] —
/// exercises the campaign's workload-quarantine path without crafting an
/// actually-invalid spec.
pub static MATERIALIZE_FP: FailPoint = FailPoint::new("workload.materialize");

/// One stage of a phased workload: a §IV-C mix held for a fixed window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// Scenario the stage's mix is sampled for (`None` = census-weighted).
    pub scenario: Option<Scenario>,
    /// Stage length in global intervals.
    pub intervals: u64,
}

/// An arrival process on the global interval clock.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals: exponential inter-arrival gaps with the given mean
    /// (global intervals).
    Poisson {
        /// Mean inter-arrival gap, global intervals.
        mean_gap: f64,
    },
    /// Two-state Markov-modulated Poisson process: state 0 (calm) and
    /// state 1 (burst) each have their own mean gap; the process dwells in
    /// a state for an exponential time before flipping.
    Mmpp {
        /// Mean inter-arrival gap per state, global intervals.
        mean_gap: [f64; 2],
        /// Mean dwell time per state, global intervals.
        mean_dwell: [f64; 2],
    },
}

/// Exponential sample with the given mean via inverse CDF.
fn exp_sample(mean: f64, rng: &mut StdRng) -> f64 {
    let u: f64 = rng.random();
    -mean * (1.0 - u).ln()
}

/// A serializable description of a (possibly time-varying) workload.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// An explicit application list frozen at `t = 0` (the pre-subsystem
    /// `ExperimentSpec` form).
    Static {
        /// One application name per core.
        apps: Vec<String>,
    },
    /// One §IV-C mix sampled at `t = 0` and held for the whole run.
    Steady {
        /// System width (must be even, per §IV-C's two-half recipe).
        n_cores: usize,
        /// Scenario to sample for (`None` = census-weighted: empirical
        /// scenario frequencies converge on the 47/22.1/22.1/8.8 weights).
        scenario: Option<Scenario>,
        /// Generation seed.
        seed: u64,
    },
    /// Piecewise-constant category schedule: every stage churns all cores
    /// to a freshly sampled mix.
    Phased {
        /// System width (even).
        n_cores: usize,
        /// Generation seed.
        seed: u64,
        /// The stages, in order; the horizon is their total length.
        stages: Vec<Stage>,
    },
    /// Bursty arrivals onto vacant cores. Arrivals finding every core busy
    /// are lost (a loss system); service times are exponential.
    Bursty {
        /// System width.
        n_cores: usize,
        /// Generation seed.
        seed: u64,
        /// The arrival process.
        arrival: ArrivalProcess,
        /// Mean service length, core intervals (exponential, minimum 1).
        mean_service: u64,
        /// Run length, global intervals.
        horizon: u64,
        /// Category pool arrivals draw from (`None` = census-weighted).
        scenario: Option<Scenario>,
    },
    /// Per-core multiprogramming: each core independently replaces its
    /// application roughly every `period` global intervals (uniform jitter
    /// in `[period/2, 3·period/2]`), cold-restarting the phase position.
    Churn {
        /// System width.
        n_cores: usize,
        /// Generation seed.
        seed: u64,
        /// Mean replacement period, global intervals (≥ 2).
        period: u64,
        /// Run length, global intervals.
        horizon: u64,
        /// Category constraint for sampled apps (`None` = census).
        scenario: Option<Scenario>,
        /// Explicit app pool to draw from (overrides `scenario`; empty =
        /// the full 27-app census).
        pool: Vec<String>,
    },
    /// A scaled synthetic suite: `copies` × the 27-app Table II census,
    /// each instance with a jittered starting phase position, shuffled and
    /// streamed across the cores in fixed-length segments.
    Scaled {
        /// System width.
        n_cores: usize,
        /// Generation seed.
        seed: u64,
        /// Census multiplier `N` (the virtual suite has `27·N` instances).
        copies: usize,
        /// Per-instance segment length, global intervals.
        segment: u64,
    },
}

impl WorkloadSpec {
    /// Short kind label used in reports (`static`, `steady`, `phased`,
    /// `bursty`, `churn`, `scaled`).
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadSpec::Static { .. } => "static",
            WorkloadSpec::Steady { .. } => "steady",
            WorkloadSpec::Phased { .. } => "phased",
            WorkloadSpec::Bursty { .. } => "bursty",
            WorkloadSpec::Churn { .. } => "churn",
            WorkloadSpec::Scaled { .. } => "scaled",
        }
    }

    /// System width the spec schedules onto.
    pub fn n_cores(&self) -> usize {
        match self {
            WorkloadSpec::Static { apps } => apps.len(),
            WorkloadSpec::Steady { n_cores, .. }
            | WorkloadSpec::Phased { n_cores, .. }
            | WorkloadSpec::Bursty { n_cores, .. }
            | WorkloadSpec::Churn { n_cores, .. }
            | WorkloadSpec::Scaled { n_cores, .. } => *n_cores,
        }
    }

    /// Expand the spec into its trace. Deterministic: the same spec always
    /// produces the same (validated) trace.
    pub fn materialize(&self) -> Result<WorkloadTrace, String> {
        MATERIALIZE_FP.check()?;
        let trace = match self {
            WorkloadSpec::Static { apps } => WorkloadTrace::steady(apps),
            WorkloadSpec::Steady { n_cores, scenario, seed } => {
                check_even(*n_cores)?;
                let mut rng = StdRng::seed_from_u64(*seed);
                let (apps, _) = sample_mix(*n_cores, *scenario, &mut rng);
                WorkloadTrace::steady(&apps)
            }
            WorkloadSpec::Phased { n_cores, seed, stages } => {
                check_even(*n_cores)?;
                if stages.is_empty() {
                    return Err("phased workload needs at least one stage".into());
                }
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut events = Vec::new();
                let mut t = 0u64;
                for stage in stages {
                    if stage.intervals == 0 {
                        return Err("phased stage length must be at least 1 interval".into());
                    }
                    let (apps, _) = sample_mix(*n_cores, stage.scenario, &mut rng);
                    for (core, app) in apps.iter().enumerate() {
                        events.push(TraceEvent {
                            at: t,
                            core,
                            kind: EventKind::Arrive { app: app.to_string(), phase_offset: 0 },
                        });
                    }
                    t += stage.intervals;
                }
                WorkloadTrace { n_cores: *n_cores, horizon: Some(t), events }
            }
            WorkloadSpec::Bursty { n_cores, seed, arrival, mean_service, horizon, scenario } => {
                materialize_bursty(*n_cores, *seed, arrival, *mean_service, *horizon, *scenario)?
            }
            WorkloadSpec::Churn { n_cores, seed, period, horizon, scenario, pool } => {
                materialize_churn(*n_cores, *seed, *period, *horizon, *scenario, pool)?
            }
            WorkloadSpec::Scaled { n_cores, seed, copies, segment } => {
                materialize_scaled(*n_cores, *seed, *copies, *segment)?
            }
        };
        trace
            .validate()
            .map_err(|e| format!("{} spec materialized an invalid trace: {e}", self.label()))?;
        Ok(trace)
    }

    /// Canonical JSON form (the `--workload <spec.json>` file format).
    pub fn to_json(&self) -> Json {
        let scenario_json = |s: &Option<Scenario>| match s {
            Some(s) => Json::from(s.short()),
            None => Json::Null,
        };
        match self {
            WorkloadSpec::Static { apps } => {
                Json::obj().set("kind", "static").set("apps", apps.clone())
            }
            WorkloadSpec::Steady { n_cores, scenario, seed } => Json::obj()
                .set("kind", "steady")
                .set("n_cores", *n_cores)
                .set("scenario", scenario_json(scenario))
                .set("seed", *seed),
            WorkloadSpec::Phased { n_cores, seed, stages } => {
                Json::obj().set("kind", "phased").set("n_cores", *n_cores).set("seed", *seed).set(
                    "stages",
                    Json::Arr(
                        stages
                            .iter()
                            .map(|st| {
                                Json::obj()
                                    .set("scenario", scenario_json(&st.scenario))
                                    .set("intervals", st.intervals)
                            })
                            .collect(),
                    ),
                )
            }
            WorkloadSpec::Bursty { n_cores, seed, arrival, mean_service, horizon, scenario } => {
                let arrival_json = match arrival {
                    ArrivalProcess::Poisson { mean_gap } => {
                        Json::obj().set("kind", "poisson").set("mean_gap", *mean_gap)
                    }
                    ArrivalProcess::Mmpp { mean_gap, mean_dwell } => Json::obj()
                        .set("kind", "mmpp")
                        .set("mean_gap", mean_gap.to_vec())
                        .set("mean_dwell", mean_dwell.to_vec()),
                };
                Json::obj()
                    .set("kind", "bursty")
                    .set("n_cores", *n_cores)
                    .set("seed", *seed)
                    .set("arrival", arrival_json)
                    .set("mean_service", *mean_service)
                    .set("horizon", *horizon)
                    .set("scenario", scenario_json(scenario))
            }
            WorkloadSpec::Churn { n_cores, seed, period, horizon, scenario, pool } => Json::obj()
                .set("kind", "churn")
                .set("n_cores", *n_cores)
                .set("seed", *seed)
                .set("period", *period)
                .set("horizon", *horizon)
                .set("scenario", scenario_json(scenario))
                .set("pool", pool.clone()),
            WorkloadSpec::Scaled { n_cores, seed, copies, segment } => Json::obj()
                .set("kind", "scaled")
                .set("n_cores", *n_cores)
                .set("seed", *seed)
                .set("copies", *copies)
                .set("segment", *segment),
        }
    }

    /// Inverse of [`WorkloadSpec::to_json`].
    pub fn from_json(j: &Json) -> Result<WorkloadSpec, String> {
        let kind = match j.get("kind") {
            Some(Json::Str(s)) => s.as_str(),
            other => {
                return Err(format!("workload spec: missing string field \"kind\" ({other:?})"))
            }
        };
        let scenario_field = |j: &Json| -> Result<Option<Scenario>, String> {
            match j.get("scenario") {
                None | Some(Json::Null) => Ok(None),
                Some(Json::Str(s)) => Scenario::from_short(s)
                    .map(Some)
                    .ok_or_else(|| format!("workload spec: unknown scenario {s:?}")),
                other => Err(format!("workload spec: bad scenario field {other:?}")),
            }
        };
        match kind {
            "static" => Ok(WorkloadSpec::Static { apps: str_list(j, "apps")? }),
            "steady" => Ok(WorkloadSpec::Steady {
                n_cores: uint(j, "n_cores")? as usize,
                scenario: scenario_field(j)?,
                seed: uint(j, "seed")?,
            }),
            "phased" => {
                let Some(Json::Arr(items)) = j.get("stages") else {
                    return Err("phased spec: missing array field \"stages\"".into());
                };
                let mut stages = Vec::with_capacity(items.len());
                for item in items {
                    stages.push(Stage {
                        scenario: scenario_field(item)?,
                        intervals: uint(item, "intervals")?,
                    });
                }
                Ok(WorkloadSpec::Phased {
                    n_cores: uint(j, "n_cores")? as usize,
                    seed: uint(j, "seed")?,
                    stages,
                })
            }
            "bursty" => {
                let Some(arrival_j) = j.get("arrival") else {
                    return Err("bursty spec: missing field \"arrival\"".into());
                };
                let arrival = match arrival_j.get("kind") {
                    Some(Json::Str(s)) if s == "poisson" => {
                        ArrivalProcess::Poisson { mean_gap: float(arrival_j, "mean_gap")? }
                    }
                    Some(Json::Str(s)) if s == "mmpp" => ArrivalProcess::Mmpp {
                        mean_gap: float_pair(arrival_j, "mean_gap")?,
                        mean_dwell: float_pair(arrival_j, "mean_dwell")?,
                    },
                    other => return Err(format!("bursty spec: bad arrival kind {other:?}")),
                };
                Ok(WorkloadSpec::Bursty {
                    n_cores: uint(j, "n_cores")? as usize,
                    seed: uint(j, "seed")?,
                    arrival,
                    mean_service: uint(j, "mean_service")?,
                    horizon: uint(j, "horizon")?,
                    scenario: scenario_field(j)?,
                })
            }
            "churn" => Ok(WorkloadSpec::Churn {
                n_cores: uint(j, "n_cores")? as usize,
                seed: uint(j, "seed")?,
                period: uint(j, "period")?,
                horizon: uint(j, "horizon")?,
                scenario: scenario_field(j)?,
                pool: match j.get("pool") {
                    None | Some(Json::Null) => Vec::new(),
                    _ => str_list(j, "pool")?,
                },
            }),
            "scaled" => Ok(WorkloadSpec::Scaled {
                n_cores: uint(j, "n_cores")? as usize,
                seed: uint(j, "seed")?,
                copies: uint(j, "copies")? as usize,
                segment: uint(j, "segment")?,
            }),
            other => Err(format!("workload spec: unknown kind {other:?}")),
        }
    }
}

fn check_even(n_cores: usize) -> Result<(), String> {
    if n_cores >= 2 && n_cores.is_multiple_of(2) {
        Ok(())
    } else {
        Err(format!("§IV-C mixes need an even core count ≥ 2, got {n_cores}"))
    }
}

/// Sample one application: from the scenario's admissible categories (a
/// uniformly chosen half of a uniformly chosen generator pair) or, with no
/// scenario, census-uniform over the 27 applications.
fn sample_app(scenario: Option<Scenario>, rng: &mut StdRng) -> &'static str {
    match scenario {
        None => {
            let census = suite();
            census[rng.random_range(0..census.len())].name
        }
        Some(s) => {
            let pairs = s.generator_pairs();
            let (a, b) = pairs[rng.random_range(0..pairs.len())];
            let cat = if rng.random_bool(0.5) { a } else { b };
            let pool = by_category(cat);
            pool[rng.random_range(0..pool.len())].name
        }
    }
}

/// Jittered starting position within an application's phase sequence.
fn jitter_offset(app: &str, rng: &mut StdRng) -> usize {
    let n = triad_trace::by_name(app).map(|a| a.n_intervals()).unwrap_or(1);
    rng.random_range(0..n)
}

/// Sort events by `(at, core)` and drop departures that coincide with an
/// arrival on the same slot (the arrival already churn-replaces).
fn finish_events(mut events: Vec<TraceEvent>) -> Vec<TraceEvent> {
    events.sort_by_key(|e| (e.at, e.core, matches!(e.kind, EventKind::Arrive { .. }) as u8));
    let mut out: Vec<TraceEvent> = Vec::with_capacity(events.len());
    for e in events {
        if let Some(last) = out.last() {
            if last.at == e.at && last.core == e.core {
                // Depart sorts before Arrive on the same slot: replace it.
                out.pop();
            }
        }
        out.push(e);
    }
    out
}

fn materialize_bursty(
    n_cores: usize,
    seed: u64,
    arrival: &ArrivalProcess,
    mean_service: u64,
    horizon: u64,
    scenario: Option<Scenario>,
) -> Result<WorkloadTrace, String> {
    if horizon == 0 {
        return Err("bursty workload needs a nonzero horizon".into());
    }
    if mean_service == 0 {
        return Err("bursty workload needs a nonzero mean service length".into());
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::new();
    let mut free_at = vec![0u64; n_cores];
    let mut t = 0.0f64;
    // MMPP state (state 0 until the first dwell expires); Poisson ignores it.
    let mut state = 0usize;
    let mut state_until = match arrival {
        ArrivalProcess::Mmpp { mean_dwell, .. } => exp_sample(mean_dwell[0], &mut rng),
        ArrivalProcess::Poisson { .. } => f64::INFINITY,
    };
    loop {
        let gap = match arrival {
            ArrivalProcess::Poisson { mean_gap } => exp_sample(*mean_gap, &mut rng),
            ArrivalProcess::Mmpp { mean_gap, mean_dwell } => {
                while t >= state_until {
                    state ^= 1;
                    state_until += exp_sample(mean_dwell[state], &mut rng);
                }
                exp_sample(mean_gap[state], &mut rng)
            }
        };
        if !gap.is_finite() {
            return Err("arrival process produced a non-finite gap".into());
        }
        t += gap.max(0.0);
        let at = t as u64;
        if at >= horizon {
            break;
        }
        // Lowest-index vacant core takes the arrival; none = the arrival
        // is lost (loss system, like a full admission queue).
        let Some(core) = (0..n_cores).find(|&c| free_at[c] <= at) else {
            continue;
        };
        let app = sample_app(scenario, &mut rng);
        let phase_offset = jitter_offset(app, &mut rng);
        let service = 1 + exp_sample(mean_service as f64, &mut rng).max(0.0) as u64;
        events.push(TraceEvent {
            at,
            core,
            kind: EventKind::Arrive { app: app.to_string(), phase_offset },
        });
        let depart = at + service;
        if depart < horizon {
            events.push(TraceEvent { at: depart, core, kind: EventKind::Depart });
        }
        free_at[core] = depart;
    }
    if events.is_empty() {
        return Err(format!(
            "bursty workload scheduled no arrivals within horizon {horizon} \
             (mean gap too long?)"
        ));
    }
    Ok(WorkloadTrace { n_cores, horizon: Some(horizon), events: finish_events(events) })
}

fn materialize_churn(
    n_cores: usize,
    seed: u64,
    period: u64,
    horizon: u64,
    scenario: Option<Scenario>,
    pool: &[String],
) -> Result<WorkloadTrace, String> {
    if period < 2 {
        return Err("churn period must be at least 2 intervals".into());
    }
    if horizon == 0 {
        return Err("churn workload needs a nonzero horizon".into());
    }
    for app in pool {
        if triad_trace::by_name(app).is_none() {
            return Err(format!("churn pool: unknown application {app:?}"));
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // With an explicit pool every core samples from it; with a scenario the
    // §IV-C halves keep their category pools across replacements; otherwise
    // the full census.
    let half_cats = match (pool.is_empty(), scenario) {
        (true, Some(s)) => {
            check_even(n_cores)?;
            let pairs = s.generator_pairs();
            Some(pairs[rng.random_range(0..pairs.len())])
        }
        _ => None,
    };
    let draw = |core: usize, rng: &mut StdRng| -> String {
        if !pool.is_empty() {
            pool[rng.random_range(0..pool.len())].clone()
        } else if let Some((ca, cb)) = half_cats {
            let cat = if core < n_cores / 2 { ca } else { cb };
            let p = by_category(cat);
            p[rng.random_range(0..p.len())].name.to_string()
        } else {
            let census = suite();
            census[rng.random_range(0..census.len())].name.to_string()
        }
    };
    let mut events = Vec::new();
    for core in 0..n_cores {
        // Initial assignment, then replacements every period ± period/2
        // (cold phase restart, per the churn semantics).
        let app = draw(core, &mut rng);
        events.push(TraceEvent { at: 0, core, kind: EventKind::Arrive { app, phase_offset: 0 } });
        let mut t = period / 2 + rng.random_range(0..=period);
        while t < horizon {
            let app = draw(core, &mut rng);
            events.push(TraceEvent {
                at: t,
                core,
                kind: EventKind::Arrive { app, phase_offset: 0 },
            });
            t += period / 2 + rng.random_range(0..=period);
        }
    }
    Ok(WorkloadTrace { n_cores, horizon: Some(horizon), events: finish_events(events) })
}

fn materialize_scaled(
    n_cores: usize,
    seed: u64,
    copies: usize,
    segment: u64,
) -> Result<WorkloadTrace, String> {
    if copies == 0 {
        return Err("scaled workload needs at least one census copy".into());
    }
    if segment == 0 {
        return Err("scaled workload needs a nonzero segment length".into());
    }
    if n_cores == 0 {
        return Err("scaled workload needs at least one core".into());
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // The virtual suite: copies × the census, each instance with its own
    // jittered starting phase position.
    let census = suite();
    let mut virt: Vec<(&'static str, usize)> = Vec::with_capacity(copies * census.len());
    for _ in 0..copies {
        for app in &census {
            virt.push((app.name, rng.random_range(0..app.n_intervals())));
        }
    }
    // Fisher–Yates shuffle, then round-robin across the cores.
    for i in (1..virt.len()).rev() {
        let j = rng.random_range(0..=i);
        virt.swap(i, j);
    }
    let mut events = Vec::new();
    let mut rounds = 0u64;
    for (i, (app, phase_offset)) in virt.iter().enumerate() {
        let core = i % n_cores;
        let round = (i / n_cores) as u64;
        rounds = rounds.max(round + 1);
        events.push(TraceEvent {
            at: round * segment,
            core,
            kind: EventKind::Arrive { app: app.to_string(), phase_offset: *phase_offset },
        });
    }
    Ok(WorkloadTrace { n_cores, horizon: Some(rounds * segment), events: finish_events(events) })
}

fn uint(j: &Json, key: &str) -> Result<u64, String> {
    match j.get(key) {
        Some(Json::Int(i)) if *i >= 0 => Ok(*i as u64),
        Some(Json::Num(x)) if *x >= 0.0 && x.fract() == 0.0 => Ok(*x as u64),
        other => Err(format!(
            "workload spec: field {key:?} must be a nonnegative integer, got {other:?}"
        )),
    }
}

fn float(j: &Json, key: &str) -> Result<f64, String> {
    match j.get(key) {
        Some(Json::Num(x)) if x.is_finite() && *x > 0.0 => Ok(*x),
        Some(Json::Int(i)) if *i > 0 => Ok(*i as f64),
        other => {
            Err(format!("workload spec: field {key:?} must be a positive number, got {other:?}"))
        }
    }
}

fn float_pair(j: &Json, key: &str) -> Result<[f64; 2], String> {
    match j.get(key) {
        Some(Json::Arr(items)) if items.len() == 2 => {
            let mut out = [0.0; 2];
            for (slot, item) in out.iter_mut().zip(items) {
                *slot = match item {
                    Json::Num(x) if x.is_finite() && *x > 0.0 => *x,
                    Json::Int(i) if *i > 0 => *i as f64,
                    other => {
                        return Err(format!(
                            "workload spec: {key:?} entries must be positive numbers, \
                             got {other:?}"
                        ))
                    }
                };
            }
            Ok(out)
        }
        other => {
            Err(format!("workload spec: field {key:?} must be a 2-element array, got {other:?}"))
        }
    }
}

fn str_list(j: &Json, key: &str) -> Result<Vec<String>, String> {
    match j.get(key) {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|i| match i {
                Json::Str(s) => Ok(s.clone()),
                other => Err(format!("workload spec: {key:?} entries must be strings ({other:?})")),
            })
            .collect(),
        other => Err(format!("workload spec: field {key:?} must be an array, got {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::Static { apps: vec!["mcf".into(), "povray".into()] },
            WorkloadSpec::Steady { n_cores: 4, scenario: Some(Scenario::S1), seed: 11 },
            WorkloadSpec::Steady { n_cores: 4, scenario: None, seed: 11 },
            WorkloadSpec::Phased {
                n_cores: 2,
                seed: 5,
                stages: vec![
                    Stage { scenario: Some(Scenario::S1), intervals: 8 },
                    Stage { scenario: Some(Scenario::S4), intervals: 8 },
                ],
            },
            WorkloadSpec::Bursty {
                n_cores: 2,
                seed: 7,
                arrival: ArrivalProcess::Poisson { mean_gap: 3.0 },
                mean_service: 6,
                horizon: 64,
                scenario: None,
            },
            WorkloadSpec::Bursty {
                n_cores: 2,
                seed: 7,
                arrival: ArrivalProcess::Mmpp { mean_gap: [8.0, 1.5], mean_dwell: [16.0, 6.0] },
                mean_service: 6,
                horizon: 64,
                scenario: Some(Scenario::S2),
            },
            WorkloadSpec::Churn {
                n_cores: 2,
                seed: 9,
                period: 8,
                horizon: 48,
                scenario: None,
                pool: vec!["mcf".into(), "povray".into()],
            },
            WorkloadSpec::Churn {
                n_cores: 4,
                seed: 9,
                period: 8,
                horizon: 48,
                scenario: Some(Scenario::S3),
                pool: Vec::new(),
            },
            WorkloadSpec::Scaled { n_cores: 8, seed: 13, copies: 2, segment: 6 },
        ]
    }

    #[test]
    fn every_kind_materializes_a_valid_trace() {
        for spec in kinds() {
            let trace = spec.materialize().unwrap_or_else(|e| panic!("{spec:?}: {e}"));
            assert!(trace.validate().is_ok(), "{spec:?}");
            assert!(trace.n_arrivals() > 0, "{spec:?}");
            assert_eq!(trace.n_cores, spec.n_cores(), "{spec:?}");
        }
    }

    #[test]
    fn json_round_trips_every_kind() {
        for spec in kinds() {
            let s = spec.to_json().to_string_pretty();
            let parsed = triad_util::json::parse(&s).unwrap();
            assert_eq!(WorkloadSpec::from_json(&parsed).unwrap(), spec, "{s}");
        }
    }

    #[test]
    fn static_and_steady_materialize_static_traces() {
        let t =
            WorkloadSpec::Static { apps: vec!["mcf".into(), "gcc".into()] }.materialize().unwrap();
        assert_eq!(t.static_names(), Some(vec!["mcf", "gcc"]));
        let t = WorkloadSpec::Steady { n_cores: 4, scenario: Some(Scenario::S2), seed: 1 }
            .materialize()
            .unwrap();
        assert!(t.static_names().is_some());
    }

    #[test]
    fn bursty_creates_vacancy_windows() {
        let t = WorkloadSpec::Bursty {
            n_cores: 2,
            seed: 3,
            arrival: ArrivalProcess::Poisson { mean_gap: 10.0 },
            mean_service: 4,
            horizon: 200,
            scenario: None,
        }
        .materialize()
        .unwrap();
        assert!(
            t.events.iter().any(|e| matches!(e.kind, EventKind::Depart)),
            "sparse arrivals with short services must produce departures"
        );
    }

    #[test]
    fn churn_replaces_mid_run_and_respects_the_pool() {
        let pool = vec!["mcf".to_string(), "povray".to_string()];
        let t = WorkloadSpec::Churn {
            n_cores: 2,
            seed: 4,
            period: 6,
            horizon: 60,
            scenario: None,
            pool: pool.clone(),
        }
        .materialize()
        .unwrap();
        assert!(t.n_arrivals() > 2, "must churn beyond the initial assignment");
        for e in &t.events {
            if let EventKind::Arrive { app, .. } = &e.kind {
                assert!(pool.contains(app), "{app} outside the pool");
            }
        }
    }

    #[test]
    fn scaled_covers_the_census_copies_times() {
        let t = WorkloadSpec::Scaled { n_cores: 4, seed: 2, copies: 3, segment: 5 }
            .materialize()
            .unwrap();
        assert_eq!(t.n_arrivals(), 3 * 27);
        // Jittered phase profiles: at least one instance starts mid-sequence.
        assert!(t.events.iter().any(
            |e| matches!(&e.kind, EventKind::Arrive { phase_offset, .. } if *phase_offset > 0)
        ));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(WorkloadSpec::Steady { n_cores: 3, scenario: None, seed: 0 }
            .materialize()
            .is_err());
        assert!(WorkloadSpec::Phased { n_cores: 2, seed: 0, stages: vec![] }
            .materialize()
            .is_err());
        assert!(WorkloadSpec::Churn {
            n_cores: 2,
            seed: 0,
            period: 1,
            horizon: 10,
            scenario: None,
            pool: vec![]
        }
        .materialize()
        .is_err());
        assert!(WorkloadSpec::Churn {
            n_cores: 2,
            seed: 0,
            period: 8,
            horizon: 10,
            scenario: None,
            pool: vec!["nope".into()]
        }
        .materialize()
        .is_err());
        assert!(WorkloadSpec::Scaled { n_cores: 2, seed: 0, copies: 0, segment: 4 }
            .materialize()
            .is_err());
    }
}
