//! # triad — coordinated core-configuration + DVFS + cache-partitioning RM
//!
//! A from-scratch Rust reproduction of **Nejat, Manivannan, Pericàs,
//! Stenström, "Coordinated Management of Processor Configuration and Cache
//! Partitioning to Optimize Energy under QoS Constraints" (IPDPS 2020)**:
//! an online resource manager that jointly tunes, per core, the
//! micro-architecture size (S/M/L), the voltage/frequency point and the
//! share of a way-partitioned shared LLC, minimizing system energy while
//! keeping every application at least as fast as a fixed baseline.
//!
//! This crate re-exports the subsystem crates:
//!
//! * [`arch`] — Table I architecture description;
//! * [`trace`] — the 27 synthetic SPEC CPU2006 stand-ins;
//! * [`simpoint`] — BBV k-means phase analysis;
//! * [`cache`] — LRU caches, the ATD, and the leading-miss MLP monitor
//!   (the paper's hardware contribution, Fig. 4);
//! * [`mem`] — the DRAM latency/bandwidth/contention model;
//! * [`uarch`] — the mechanistic out-of-order timing model;
//! * [`energy`] — McPAT-style power models;
//! * [`phasedb`] — the detailed-simulation database over all
//!   configurations;
//! * [`rm`] — the RM itself (package `triad-rm`): Models 1/2/3, QoS,
//!   local + global optimizers, controllers RM1/RM2/RM3;
//! * [`workload`] — workloads as time-varying programs: the §IV-C mix
//!   generator plus phased/bursty/churn/scaled [`workload::WorkloadSpec`]s
//!   materialized into replayable [`workload::WorkloadTrace`]s;
//! * [`sim`] — the interval-event RM simulator, the parallel
//!   [`sim::campaign`] orchestration layer, and every experiment of §V.
//!
//! ## Quickstart
//!
//! ```no_run
//! use triad::phasedb::{DbConfig, DbStore};
//! use triad::rm::RmKind;
//! use triad::sim::{Campaign, ExperimentSpec};
//!
//! // Detailed simulation of two applications over every configuration,
//! // resolved through the content-addressed store: built and persisted
//! // once, loaded in milliseconds on every later run.
//! let apps: Vec<_> = triad::trace::suite()
//!     .into_iter()
//!     .filter(|a| ["mcf", "povray"].contains(&a.name))
//!     .collect();
//! let db = DbStore::default_cache().resolve(&apps, &DbConfig::default()).db;
//!
//! // Replay them on a 2-core system under each controller; the campaign
//! // runs the specs in parallel against one shared idle baseline.
//! let specs = [RmKind::Rm1, RmKind::Rm2, RmKind::Rm3]
//!     .map(|rm| ExperimentSpec::new(rm.label(), &["mcf", "povray"]).rm(Some(rm)).perfect());
//! for row in Campaign::new(specs.to_vec()).run(&db) {
//!     println!("{}: energy savings {:.1}%", row.spec.name, 100.0 * row.savings);
//! }
//! ```
//!
//! The `triad-bench` binary drives the same machinery from the command
//! line (`triad-bench --experiment fig6 --cores 8 --json out.json`).

pub use triad_arch as arch;
pub use triad_cache as cache;
pub use triad_energy as energy;
pub use triad_mem as mem;
pub use triad_phasedb as phasedb;
pub use triad_rm as rm;
pub use triad_sim as sim;
pub use triad_simpoint as simpoint;
pub use triad_trace as trace;
pub use triad_uarch as uarch;
pub use triad_workload as workload;
