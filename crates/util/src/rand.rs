//! Deterministic pseudo-random numbers (std-only `rand` stand-in).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, well
//! distributed, and identical on every platform, which is what the
//! synthetic trace generators and workload samplers need. The API mirrors
//! the subset of the `rand` crate the workspace uses so call sites read
//! idiomatically: `StdRng::seed_from_u64(s)`, `rng.random::<f64>()`,
//! `rng.random_bool(p)`, `rng.random_range(lo..hi)`.

pub mod rngs {
    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        pub(crate) fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

use rngs::StdRng;

/// Construction from a 64-bit seed (the only seeding mode the workspace
/// uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full 256-bit state, as
        // recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

/// Types [`RngExt::random`] can produce.
pub trait RandomValue {
    fn from_rng(rng: &mut StdRng) -> Self;
}

impl RandomValue for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn from_rng(rng: &mut StdRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RandomValue for u64 {
    #[inline]
    fn from_rng(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl RandomValue for bool {
    #[inline]
    fn from_rng(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types [`RngExt::random_range`] can sample.
pub trait UniformInt: Copy {
    fn to_u64(self) -> u64;
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// Range forms accepted by [`RngExt::random_range`], normalized to
/// inclusive `[lo, hi]` bounds.
pub trait UniformRange<T> {
    fn bounds(self) -> (T, T);
}

impl<T: UniformInt> UniformRange<T> for std::ops::Range<T> {
    #[inline]
    fn bounds(self) -> (T, T) {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "empty range");
        (T::from_u64(lo), T::from_u64(hi - 1))
    }
}

impl<T: UniformInt> UniformRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn bounds(self) -> (T, T) {
        let (lo, hi) = self.into_inner();
        assert!(lo.to_u64() <= hi.to_u64(), "empty range");
        (lo, hi)
    }
}

/// Sampling methods, mirroring the `rand` crate's method names.
pub trait RngExt {
    /// A uniformly random value of `T`.
    fn random<T: RandomValue>(&mut self) -> T;

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool;

    /// Uniform integer in the given range.
    fn random_range<T: UniformInt, R: UniformRange<T>>(&mut self, range: R) -> T;

    /// The raw 53-bit integer behind `random::<f64>()`: the float that
    /// call would return is exactly `draw53() as f64 * 2^-53`, from the
    /// same single generator step. Tabled samplers ([`Cutoff`],
    /// [`UniformTable`]) compare this integer against precomputed
    /// thresholds instead of converting to floating point per draw.
    fn draw53(&mut self) -> u64;
}

impl RngExt for StdRng {
    #[inline]
    fn random<T: RandomValue>(&mut self) -> T {
        T::from_rng(self)
    }

    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.random::<f64>() < p
    }

    #[inline]
    fn random_range<T: UniformInt, R: UniformRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.bounds();
        let (lo, hi) = (lo.to_u64(), hi.to_u64());
        let span = hi.wrapping_sub(lo).wrapping_add(1); // 0 means the full u64 domain
        if span == 0 {
            return T::from_u64(self.next_u64());
        }
        // Debiased multiply-shift rejection (Lemire): exact uniformity and
        // fast for the small spans the workspace samples. The rejection
        // threshold `(2^64 - span) % span` is itself `< span`, so any draw
        // with `low >= span` is accepted without evaluating the modulo —
        // same accept/reject decisions, but the 64-bit division (the single
        // most expensive operation in trace generation) runs only with
        // probability `span / 2^64`.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            let low = m as u64;
            if low >= span || low >= span.wrapping_neg() % span {
                return T::from_u64(lo + (m >> 64) as u64);
            }
        }
    }

    #[inline]
    fn draw53(&mut self) -> u64 {
        self.next_u64() >> 11
    }
}

/// Scale factor between the 53-bit draw domain and the unit interval.
const TWO53: f64 = (1u64 << 53) as f64;

/// A precomputed integer threshold that replays a floating-point
/// comparison against the unit-interval draw, bit-identically.
///
/// `random::<f64>()` returns `x * 2^-53` for a 53-bit draw `x`, so for
/// any probability `p`: `x·2^-53 < p  ⟺  x < p·2^53`. Multiplying by
/// `2^53` is a pure exponent shift — exact in f64 — so the right-hand
/// side is the *real* product and `⌈p·2^53⌉` is an exact integer
/// threshold: the tabled compare makes the same decision as the chained
/// `random_bool` for every possible draw. Likewise `x·2^-53 ≤ c  ⟺
/// x ≤ ⌊c·2^53⌋`. Build once per spec; the per-draw cost drops to one
/// integer compare with no int→float conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cutoff {
    /// Exclusive upper bound on the 53-bit draw.
    t: u64,
}

impl Cutoff {
    /// Replays `rng.random::<f64>() < p` (the [`RngExt::random_bool`]
    /// decision).
    pub fn lt(p: f64) -> Cutoff {
        debug_assert!(p.is_finite() && (0.0..=1.0).contains(&p));
        Cutoff { t: (p * TWO53).ceil() as u64 }
    }

    /// Replays `rng.random::<f64>() <= c` (cumulative-weight scans).
    pub fn le(c: f64) -> Cutoff {
        debug_assert!(c.is_finite() && c >= 0.0);
        Cutoff { t: (c * TWO53).floor() as u64 + 1 }
    }

    /// The decision for an already-taken 53-bit draw (one draw can be
    /// tested against several cutoffs, e.g. cumulative kind fractions).
    #[inline]
    pub fn admits(self, draw53: u64) -> bool {
        draw53 < self.t
    }

    /// Draw once and decide — the tabled `random_bool`.
    #[inline]
    pub fn sample(self, rng: &mut StdRng) -> bool {
        rng.draw53() < self.t
    }
}

/// A precomputed uniform integer sampler that replays
/// [`RngExt::random_range`] draw-for-draw.
///
/// `random_range` accepts a multiply-shift draw iff
/// `low >= span || low >= (2^64 - span) % span`; the modulo is `< span`,
/// so the two tests collapse to `low >= threshold` once the threshold is
/// precomputed — identical accept/reject decisions (same number of
/// generator steps) with the division paid once per table instead of
/// (potentially) per draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformTable {
    lo: u64,
    /// `hi - lo + 1`; 0 encodes the full u64 domain.
    span: u64,
    /// Lemire rejection threshold `(2^64 - span) % span`.
    thresh: u64,
}

impl UniformTable {
    /// Sampler for the inclusive range `[lo, hi]`.
    pub fn new(lo: u64, hi: u64) -> UniformTable {
        assert!(lo <= hi, "empty range");
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        let thresh = if span == 0 { 0 } else { span.wrapping_neg() % span };
        UniformTable { lo, span, thresh }
    }

    #[inline]
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        if self.span == 0 {
            return rng.next_u64();
        }
        loop {
            let m = (rng.next_u64() as u128) * (self.span as u128);
            if (m as u64) >= self.thresh {
                return self.lo + (m >> 64) as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_is_unit_interval_and_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2_000 {
            let x = rng.random_range(3u32..=9);
            assert!((3..=9).contains(&x));
            seen_lo |= x == 3;
            seen_hi |= x == 9;
            let y = rng.random_range(0usize..5);
            assert!(y < 5);
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn cutoff_replays_random_bool_exactly() {
        // Paired generators: the tabled cutoff must make the identical
        // decision from the identical draw, including at p = 0 and p = 1
        // and at probabilities that are not exactly representable scaled.
        let mut probs = vec![0.0, 1.0, 0.5, 0.25, 1e-17, 1.0 - 1e-16, f64::MIN_POSITIVE];
        let mut prng = StdRng::seed_from_u64(99);
        probs.extend((0..50).map(|_| prng.random::<f64>()));
        for p in probs {
            let c = Cutoff::lt(p);
            let mut a = StdRng::seed_from_u64(p.to_bits());
            let mut b = a.clone();
            for _ in 0..4_000 {
                assert_eq!(a.random_bool(p), c.sample(&mut b), "p = {p}");
                assert_eq!(a.s, b.s, "generator state diverged at p = {p}");
            }
        }
    }

    #[test]
    fn cutoff_le_replays_inclusive_compare() {
        let mut prng = StdRng::seed_from_u64(123);
        let mut cs = vec![0.0, 1.0, 0.3, 0.999_999_999_999_999_9];
        cs.extend((0..50).map(|_| prng.random::<f64>()));
        for cv in cs {
            let c = Cutoff::le(cv);
            let mut a = StdRng::seed_from_u64(cv.to_bits() ^ 1);
            let mut b = a.clone();
            for _ in 0..4_000 {
                let u: f64 = a.random();
                assert_eq!(u <= cv, c.admits(b.draw53()), "c = {cv}, u = {u}");
            }
        }
        // Exhaustive boundary: a cutoff built from a draw's own float must
        // admit that draw (u <= u) but `lt` must reject it (u < u).
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let x = rng.draw53();
            let u = x as f64 * (1.0 / TWO53);
            assert!(Cutoff::le(u).admits(x));
            assert!(!Cutoff::lt(u).admits(x));
        }
    }

    #[test]
    fn uniform_table_replays_random_range_exactly() {
        let ranges: Vec<(u64, u64)> =
            vec![(0, 0), (0, 1), (3, 9), (0, 4095), (7, 1 << 40), (0, u64::MAX - 1), (0, u64::MAX)];
        for (lo, hi) in ranges {
            let t = UniformTable::new(lo, hi);
            let mut a = StdRng::seed_from_u64(lo ^ hi.rotate_left(17));
            let mut b = a.clone();
            for _ in 0..4_000 {
                let want = a.random_range(lo..=hi);
                assert_eq!(want, t.sample(&mut b), "range [{lo}, {hi}]");
                assert_eq!(a.s, b.s, "generator state diverged on [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn draw53_matches_float_draw() {
        let mut a = StdRng::seed_from_u64(21);
        let mut b = StdRng::seed_from_u64(21);
        for _ in 0..1_000 {
            let u: f64 = a.random();
            assert_eq!(u, b.draw53() as f64 * (1.0 / TWO53));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        let mut rng = StdRng::seed_from_u64(12);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        let mut rng = StdRng::seed_from_u64(13);
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
