//! One-pass private-hierarchy filter: L1D → L2 → LLC classification.
//!
//! The detailed simulator needs, for every memory instruction, the level
//! that services it. Levels L1D and L2 are fixed (Table I), while the LLC
//! outcome depends on the way allocation `w` — so instead of a boolean, LLC
//! accesses are annotated with their ATD **stack distance**: the access hits
//! a `w`-way allocation iff `dist < w`. One classification pass therefore
//! serves timing simulations at *all* allocations.
//!
//! Instruction fetches are assumed to hit the L1I (the synthetic traces
//! model data behavior; SPEC CPU2006 I-side MPKI is negligible for the
//! applications of Table II).

use crate::atd::{Atd, COLD};
use crate::lru::SetAssocCache;
use triad_arch::CacheGeometry;
use triad_trace::{Inst, InstKind, PhaseSpec, Trace};

/// Classification of one memory access (compact `u8` encoding inside
/// [`ClassifiedTrace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// Not a memory instruction.
    NotMem,
    /// Serviced by the private L1D.
    L1Hit,
    /// Serviced by the private L2.
    L2Hit,
    /// Reached the LLC with the given stack distance; hits iff `dist < w`.
    Llc { dist: u8 },
    /// Reached the LLC and missed every tracked position (cold/evicted):
    /// a DRAM access for any allocation.
    LlcCold,
}

/// Compact per-instruction access classification for one phase trace.
#[derive(Debug, Clone)]
pub struct ClassifiedTrace {
    /// One code per instruction (`CODE_*` encoding; non-memory = NOT_MEM).
    codes: Vec<u8>,
    /// LLC **loads** histogrammed by stack distance; the last slot
    /// (`max_ways`) collects cold/beyond-directory loads. Filled during
    /// classification so load-only miss curves need no second trace sweep.
    load_hist: Vec<u64>,
    /// ATD state after the pass (hit histogram + miss count = miss curves).
    pub atd: Atd,
    /// L1D hits.
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// Accesses that reached the LLC (ATD accesses).
    pub llc_accesses: u64,
    /// Fraction of LLC accesses that were stores (used to estimate
    /// writeback traffic: dirty lines evicted back to DRAM).
    pub store_frac_at_llc: f64,
}

const NOT_MEM: u8 = 250;
const CODE_L1: u8 = 251;
const CODE_L2: u8 = 252;
const CODE_COLD: u8 = 253;
// 0..=15: LLC stack distance.

/// Service-level latency class of a raw classification code under
/// allocation `w`: 0 = not mem, 1 = L1, 2 = L2, 3 = LLC hit, 4 = DRAM.
///
/// Batch-friendly form of [`ClassifiedTrace::service_level`]: the lockstep
/// timing engine fetches one code per instruction from
/// [`ClassifiedTrace::codes`] and decodes it for every way allocation
/// without re-touching the classification array.
#[inline]
pub fn service_level_of(code: u8, w: usize) -> u8 {
    match code {
        NOT_MEM => 0,
        CODE_L1 => 1,
        CODE_L2 => 2,
        CODE_COLD => 4,
        d if (d as usize) < w => 3,
        _ => 4,
    }
}

/// Does a raw classification code denote an LLC access (hit or miss at any
/// allocation)? Batch-friendly form of [`ClassifiedTrace::is_llc_access`].
#[inline]
pub fn is_llc_code(code: u8) -> bool {
    code <= 15 || code == CODE_COLD
}

/// ATD stack distance a raw LLC-access code carries for the MLP monitor:
/// the distance itself for tracked positions, [`COLD`] otherwise.
#[inline]
pub fn llc_stack_dist_of(code: u8) -> u8 {
    if code <= 15 {
        code
    } else {
        COLD
    }
}

impl ClassifiedTrace {
    /// Decode the classification of instruction `i`.
    pub fn class(&self, i: usize) -> AccessClass {
        match self.codes[i] {
            NOT_MEM => AccessClass::NotMem,
            CODE_L1 => AccessClass::L1Hit,
            CODE_L2 => AccessClass::L2Hit,
            CODE_COLD => AccessClass::LlcCold,
            d => AccessClass::Llc { dist: d },
        }
    }

    /// Raw code for instruction `i` (hot path for the timing model).
    #[inline]
    pub fn code(&self, i: usize) -> u8 {
        self.codes[i]
    }

    /// Raw per-instruction codes (`CODE_*` encoding). The batched timing
    /// engine reads this slice once per trace pass instead of calling
    /// [`ClassifiedTrace::code`] per (instruction, way) pair.
    #[inline]
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Does instruction `i` reach DRAM under allocation `w`?
    #[inline]
    pub fn is_dram(&self, i: usize, w: usize) -> bool {
        let c = self.codes[i];
        c == CODE_COLD || (c <= 15 && c as usize >= w)
    }

    /// Does instruction `i` access the LLC (hit or miss)?
    #[inline]
    pub fn is_llc_access(&self, i: usize) -> bool {
        is_llc_code(self.codes[i])
    }

    /// Service-level latency class under allocation `w`:
    /// 0 = not mem, 1 = L1, 2 = L2, 3 = LLC hit, 4 = DRAM.
    #[inline]
    pub fn service_level(&self, i: usize, w: usize) -> u8 {
        service_level_of(self.codes[i], w)
    }

    /// LLC miss count for allocation `w` (from the ATD histogram).
    pub fn llc_misses(&self, w: usize) -> u64 {
        self.atd.miss_count(w)
    }

    /// Estimated DRAM writeback count at allocation `w`: dirty-line
    /// evictions approximated as the store share of LLC misses.
    pub fn writebacks(&self, w: usize) -> u64 {
        (self.llc_misses(w) as f64 * self.store_frac_at_llc).round() as u64
    }

    /// LLC **load** misses for allocation `w`: loads whose stack distance is
    /// `≥ w` (including cold/beyond-directory loads). Computed from the
    /// histogram filled during classification.
    pub fn llc_load_misses(&self, w: usize) -> u64 {
        assert!(w >= 1 && w < self.load_hist.len());
        self.load_hist[w..].iter().sum()
    }

    /// Raw load-miss histogram by stack distance (last slot = cold/beyond).
    pub fn load_hist(&self) -> &[u64] {
        &self.load_hist
    }

    /// Number of instructions in the classified trace.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the trace was empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }
}

/// Run the one-pass hierarchy filter over a phase trace.
pub fn classify(trace: &Trace, geom: &CacheGeometry) -> ClassifiedTrace {
    classify_warm(trace, geom, 0)
}

/// Incremental hierarchy-filter state shared by the materialized
/// ([`classify_warm`]) and streaming ([`generate_classify`]) entry points:
/// both walk warmup accesses state-only, then emit one code per detailed
/// instruction while accumulating counters and the load-miss histogram.
/// The 64-byte block index is computed once per access and shared across
/// the L1D, L2 and ATD probes.
struct Classifier {
    l1: SetAssocCache,
    l2: SetAssocCache,
    atd: Atd,
    codes: Vec<u8>,
    load_hist: Vec<u64>,
    l1_hits: u64,
    l2_hits: u64,
    llc_accesses: u64,
    llc_stores: u64,
}

impl Classifier {
    fn new(geom: &CacheGeometry, detail_capacity: usize) -> Self {
        let atd = Atd::new(geom.llc.sets(), geom.max_ways_per_core);
        Classifier {
            l1: SetAssocCache::with_capacity(geom.l1d.capacity_bytes, geom.l1d.ways),
            l2: SetAssocCache::with_capacity(geom.l2.capacity_bytes, geom.l2.ways),
            load_hist: vec![0; atd.max_ways() + 1],
            atd,
            codes: Vec::with_capacity(detail_capacity),
            l1_hits: 0,
            l2_hits: 0,
            llc_accesses: 0,
            llc_stores: 0,
        }
    }

    /// Warm-up access: update cache/directory state, no codes or counters.
    #[inline]
    fn warm(&mut self, inst: &Inst) {
        if inst.kind.is_mem() {
            let block = inst.addr >> 6;
            if !self.l1.access_block(block) && !self.l2.access_block(block) {
                self.atd.access_block(block);
            }
        }
    }

    /// Detailed access: classify, count, histogram.
    #[inline]
    fn detail(&mut self, inst: &Inst) {
        let code = if !inst.kind.is_mem() {
            NOT_MEM
        } else {
            let block = inst.addr >> 6;
            if self.l1.access_block(block) {
                self.l1_hits += 1;
                CODE_L1
            } else if self.l2.access_block(block) {
                self.l2_hits += 1;
                CODE_L2
            } else {
                let d = self.atd.access_block(block);
                self.llc_accesses += 1;
                if inst.kind == InstKind::Store {
                    self.llc_stores += 1;
                }
                if inst.kind == InstKind::Load {
                    let slot = if d == COLD { self.atd.max_ways() } else { d as usize };
                    self.load_hist[slot] += 1;
                }
                if d == COLD {
                    CODE_COLD
                } else {
                    d
                }
            }
        };
        self.codes.push(code);
    }

    fn finish(self) -> ClassifiedTrace {
        let store_frac_at_llc = if self.llc_accesses > 0 {
            self.llc_stores as f64 / self.llc_accesses as f64
        } else {
            0.0
        };
        ClassifiedTrace {
            codes: self.codes,
            load_hist: self.load_hist,
            atd: self.atd,
            l1_hits: self.l1_hits,
            l2_hits: self.l2_hits,
            llc_accesses: self.llc_accesses,
            store_frac_at_llc,
        }
    }
}

/// [`classify`] with a warm-up prefix, mirroring the paper's 100M-warmup +
/// 100M-detailed simulation windows (§IV-A): the first `warmup`
/// instructions update cache and directory state but produce no codes or
/// counters. The returned [`ClassifiedTrace`] covers only
/// `trace.insts[warmup..]`, indexed from 0.
pub fn classify_warm(trace: &Trace, geom: &CacheGeometry, warmup: usize) -> ClassifiedTrace {
    assert!(warmup <= trace.len(), "warmup longer than trace");
    let mut cl = Classifier::new(geom, trace.len() - warmup);
    for inst in &trace.insts[..warmup] {
        cl.warm(inst);
    }
    cl.atd.reset_counters();
    for inst in &trace.insts[warmup..] {
        cl.detail(inst);
    }
    cl.finish()
}

/// Fused generate-and-classify: stream `warmup + detail` instructions out
/// of `spec` (see [`PhaseSpec::generate_stream`]) straight into the
/// hierarchy filter. Warm-up instructions update cache state **without ever
/// being materialized**; detailed instructions land in `detailed` (cleared
/// and reused — the per-worker scratch of the phase-database build) and are
/// classified on the fly.
///
/// Equivalent to `spec.generate(warmup + detail, seed)` +
/// [`classify_warm`] + keeping only the detailed suffix — bit-identical
/// codes, counters, histogram and `detailed` instructions (property-tested)
/// — without the warmup `Inst` records or the second pass over the trace.
pub fn generate_classify(
    spec: &PhaseSpec,
    geom: &CacheGeometry,
    warmup: usize,
    detail: usize,
    seed: u64,
    detailed: &mut Vec<Inst>,
) -> ClassifiedTrace {
    let mut cl = Classifier::new(geom, detail);
    detailed.clear();
    detailed.reserve(detail);
    spec.generate_stream(warmup + detail, seed, |i, inst| {
        if i < warmup {
            cl.warm(&inst);
            return;
        }
        if i == warmup {
            cl.atd.reset_counters();
        }
        cl.detail(&inst);
        detailed.push(inst);
    });
    if detail == 0 {
        cl.atd.reset_counters();
    }
    cl.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_trace::{AccessPattern, Inst, InstKind, MemRegion, PhaseSpec};

    fn geom() -> CacheGeometry {
        CacheGeometry::table1(4)
    }

    fn load(addr: u64) -> Inst {
        Inst { addr, kind: InstKind::Load, ..Inst::alu() }
    }

    #[test]
    fn tiny_working_set_hits_l1() {
        // 8 blocks reused heavily: everything after warmup hits L1.
        let mut insts = Vec::new();
        for r in 0..100 {
            for b in 0..8u64 {
                let _ = r;
                insts.push(load(b * 64));
            }
        }
        let ct = classify(&Trace { insts }, &geom());
        assert_eq!(ct.llc_accesses, 8); // cold only
        assert!(ct.l1_hits >= 8 * 99);
    }

    #[test]
    fn l2_sized_working_set_hits_l2() {
        // 128 KiB (2048 blocks) round-robin: too big for 32 KiB L1,
        // fits 256 KiB L2.
        let mut insts = Vec::new();
        for _ in 0..20 {
            for b in 0..2048u64 {
                insts.push(load(b * 64));
            }
        }
        let ct = classify(&Trace { insts }, &geom());
        // After the cold pass, all accesses hit L2 (sequential LRU over 2x
        // the L1 capacity always misses L1).
        assert_eq!(ct.llc_accesses, 2048);
        assert!(ct.l2_hits >= 2048 * 19);
        assert_eq!(ct.l1_hits, 0);
    }

    #[test]
    fn llc_distance_drives_dram_decision() {
        // Scaled setup (÷16), as used by the detailed simulator: the 3 MB
        // region becomes 192 KiB against 16 KiB ways, preserving the knee
        // between w=8 and w=16.
        let geom = CacheGeometry::table1_scaled(4, 16);
        let spec = PhaseSpec {
            tag: 5,
            load_frac: 1.0,
            store_frac: 0.0,
            branch_frac: 0.0,
            longop_frac: 0.0,
            mispredict_rate: 0.0,
            dep_mean: 8.0,
            dep2_prob: 0.0,
            chase_frac: 0.0,
            burst: 1.0,
            addr_dep: 0.0,
            // 3 MB uniform region: knee between w=8 (2MB) and w=16 (4MB).
            regions: vec![MemRegion::reuse_kib(3 * 1024, 1.0)],
        }
        .scaled(16);
        let t = spec.generate(120_000, 3);
        let ct = classify_warm(&t, &geom, 40_000);
        let m2 = ct.llc_misses(2);
        let m8 = ct.llc_misses(8);
        let m16 = ct.llc_misses(16);
        assert!(m2 > m8, "fewer ways must miss more: {m2} vs {m8}");
        assert!(m8 > m16 * 2, "3MB set should mostly fit at 16 ways: {m8} vs {m16}");
        // Per-instruction consistency with the curve.
        let mut count8 = 0u64;
        for i in 0..ct.len() {
            if ct.is_dram(i, 8) {
                count8 += 1;
            }
        }
        assert_eq!(count8, m8);
    }

    #[test]
    fn warmup_removes_cold_misses_for_resident_sets() {
        // A 64 KiB region fits 4 LLC ways at scale ÷16 (4 KiB each... it
        // fits at w≥4): after warmup, w=16 misses should be near zero while
        // an unwarmed pass pays the full cold-miss bill.
        let geom = CacheGeometry::table1_scaled(4, 16);
        let spec = PhaseSpec {
            tag: 7,
            load_frac: 1.0,
            store_frac: 0.0,
            branch_frac: 0.0,
            longop_frac: 0.0,
            mispredict_rate: 0.0,
            dep_mean: 8.0,
            dep2_prob: 0.0,
            chase_frac: 0.0,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![MemRegion::reuse_kib(64, 1.0)],
        };
        let t = spec.generate(60_000, 4);
        let cold = classify(&t, &geom);
        let warm = classify_warm(&t, &geom, 30_000);
        assert!(
            warm.llc_misses(16) * 10 < cold.llc_misses(16).max(1),
            "warmup should eliminate cold misses: {} vs {}",
            warm.llc_misses(16),
            cold.llc_misses(16)
        );
    }

    #[test]
    fn service_levels_are_consistent() {
        let spec = PhaseSpec {
            tag: 6,
            load_frac: 0.4,
            store_frac: 0.1,
            branch_frac: 0.1,
            longop_frac: 0.1,
            mispredict_rate: 0.01,
            dep_mean: 6.0,
            dep2_prob: 0.2,
            chase_frac: 0.1,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![MemRegion::reuse_kib(64, 0.6), MemRegion::reuse_kib(2048, 0.4)],
        };
        let t = spec.generate(50_000, 9);
        let ct = classify(&t, &geom());
        for i in 0..ct.len() {
            let lvl4 = ct.service_level(i, 4);
            let lvl16 = ct.service_level(i, 16);
            // More ways can only move DRAM accesses to LLC hits.
            if lvl4 == 3 {
                assert_eq!(lvl16, 3);
            }
            if lvl16 == 4 {
                assert_eq!(lvl4, 4);
            }
            // Non-mem stays non-mem; private levels are w-independent.
            if lvl4 <= 2 {
                assert_eq!(lvl4, lvl16);
            }
        }
    }

    #[test]
    fn store_frac_reflects_mix() {
        let mut insts = Vec::new();
        for b in 0..4096u64 {
            // Alternate loads and stores over a large one-shot region: all
            // reach the LLC (cold in L1/L2).
            let kind = if b % 2 == 0 { InstKind::Load } else { InstKind::Store };
            insts.push(Inst { addr: b * 64, kind, ..Inst::alu() });
        }
        let ct = classify(&Trace { insts }, &geom());
        assert!((ct.store_frac_at_llc - 0.5).abs() < 0.05);
        assert_eq!(ct.writebacks(8), ct.llc_misses(8) / 2);
    }

    #[test]
    fn non_mem_instructions_are_not_classified() {
        let t = Trace { insts: vec![Inst::alu(); 100] };
        let ct = classify(&t, &geom());
        assert_eq!(ct.llc_accesses, 0);
        for i in 0..100 {
            assert_eq!(ct.class(i), AccessClass::NotMem);
            assert_eq!(ct.service_level(i, 8), 0);
            assert!(!ct.is_dram(i, 2));
        }
    }

    /// Streaming generate-and-classify vs materialize-then-classify: every
    /// observable of the [`ClassifiedTrace`] — codes, miss curves,
    /// load-only miss curves, hit counters, store fraction — and the
    /// retained detailed instructions must be bit-identical, across
    /// randomized phase specs and warmup/detail splits (including the
    /// all-warmup and no-warmup edges).
    #[test]
    fn streaming_classifier_matches_materialized() {
        use triad_util::rand::rngs::StdRng;
        use triad_util::rand::{RngExt, SeedableRng};

        let g = CacheGeometry::table1_scaled(4, 16);
        let mut rng = StdRng::seed_from_u64(0x57_2EA);
        let r = |rng: &mut StdRng, lo: f64, hi: f64| lo + rng.random::<f64>() * (hi - lo);
        for trial in 0..8 {
            let spec = PhaseSpec {
                tag: trial,
                load_frac: r(&mut rng, 0.05, 0.35),
                store_frac: r(&mut rng, 0.0, 0.15),
                branch_frac: 0.1,
                longop_frac: 0.05,
                mispredict_rate: 0.02,
                dep_mean: r(&mut rng, 2.0, 12.0),
                dep2_prob: 0.3,
                chase_frac: r(&mut rng, 0.0, 0.8),
                burst: r(&mut rng, 1.0, 16.0),
                addr_dep: r(&mut rng, 0.0, 1.0),
                regions: vec![
                    MemRegion::reuse_kib(8, 0.4),
                    MemRegion::reuse_kib(rng.random_range(32u64..256), 0.4),
                    MemRegion {
                        blocks: rng.random_range(16u64..1 << 18),
                        weight: 0.2,
                        pattern: AccessPattern::Uniform,
                    },
                ],
            };
            let seed = rng.random::<u64>();
            for (warmup, detail) in [(4_000, 2_000), (0, 3_000), (3_000, 0)] {
                let trace = spec.generate(warmup + detail, seed);
                let two_pass = classify_warm(&trace, &g, warmup);

                let mut detailed = Vec::new();
                let fused = generate_classify(&spec, &g, warmup, detail, seed, &mut detailed);

                let ctx = format!("trial {trial} warmup={warmup} detail={detail}");
                assert_eq!(detailed, trace.insts[warmup..], "{ctx}: detailed insts");
                assert_eq!(fused.codes(), two_pass.codes(), "{ctx}: codes");
                assert_eq!(fused.l1_hits, two_pass.l1_hits, "{ctx}: l1_hits");
                assert_eq!(fused.l2_hits, two_pass.l2_hits, "{ctx}: l2_hits");
                assert_eq!(fused.llc_accesses, two_pass.llc_accesses, "{ctx}: llc_accesses");
                assert_eq!(
                    fused.store_frac_at_llc.to_bits(),
                    two_pass.store_frac_at_llc.to_bits(),
                    "{ctx}: store_frac_at_llc"
                );
                for w in 1..=g.max_ways_per_core {
                    assert_eq!(fused.llc_misses(w), two_pass.llc_misses(w), "{ctx}: misses(w={w})");
                    assert_eq!(
                        fused.llc_load_misses(w),
                        two_pass.llc_load_misses(w),
                        "{ctx}: load_misses(w={w})"
                    );
                }
            }
        }
    }
}
