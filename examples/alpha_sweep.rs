//! QoS-slack ablation: the paper fixes Eq. 3's alpha to 1 (no slack) and
//! notes it "can be used to relax the QoS constraint". This sweep shows how
//! energy savings grow as the constraint is relaxed.
//!
//! Run with: `cargo run --release --example alpha_sweep`

use triad::phasedb::{build_apps, DbConfig};
use triad::rm::RmKind;
use triad::sim::engine::{SimConfig, Simulator};

fn main() {
    let names = ["libquantum", "mcf"];
    let apps: Vec<_> = triad::trace::suite()
        .into_iter()
        .filter(|a| names.contains(&a.name))
        .collect();
    println!("building database for {:?}...", names);
    let db = build_apps(&apps, &DbConfig::default());
    let idle = Simulator::new(&db, 2, SimConfig::idle()).run(&names);

    println!("\n{:<8} {:>12} {:>12}", "alpha", "RM2 savings", "RM3 savings");
    for alpha in [1.0, 1.05, 1.1, 1.2] {
        let mut row = Vec::new();
        for rm in [RmKind::Rm2, RmKind::Rm3] {
            let mut cfg = SimConfig::perfect(rm);
            cfg.alpha = alpha;
            let r = Simulator::new(&db, 2, cfg).run(&names);
            row.push(100.0 * r.savings_vs(&idle));
        }
        println!("{:<8} {:>11.1}% {:>11.1}%", alpha, row[0], row[1]);
    }
    println!("\nalpha > 1 lets the RM trade bounded slowdown for extra savings;");
    println!("the paper fixes alpha = 1 throughout its evaluation.");
}
