//! Streaming parser for the canonical JSON dialect — the writer's inverse.
//!
//! [`Parser`] is a pull parser: each [`Parser::next_event`] call consumes
//! exactly one structural element from the input and returns it as a
//! [`ParseEvent`] — no intermediate token list is ever materialized, and
//! consumers that want to skip the tree (e.g. future sharded readers of
//! the persisted phase database) can fold the events directly.
//! [`parse`] folds the event stream into a [`Json`] tree.
//!
//! The grammar is strict RFC 8259 JSON with one deliberate restriction:
//! numbers without `.`/`e` must fit in `i64` (the canonical writer always
//! marks floats with a fraction or exponent, so this is lossless for
//! round-trips). Non-finite floats have no JSON representation; the
//! canonical writer emits `null` for them, so `write → parse` maps
//! `Num(inf)` to `Null` — callers that must preserve infinities (the phase
//! database's infeasible-entry sentinel) encode them at the schema layer.

use crate::json::Json;

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// One structural element of a JSON document, in document order.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseEvent {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent.
    Int(i64),
    /// A number with fraction or exponent.
    Num(f64),
    /// A string value (not an object key).
    Str(String),
    /// `[`.
    StartArr,
    /// `]`.
    EndArr,
    /// `{`.
    StartObj,
    /// An object key; the next event is its value.
    Key(String),
    /// `}`.
    EndObj,
}

/// What the parser expects next inside the current container.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// A value (top level, after `:`, or after `[`/`,` in an array).
    Value,
    /// The first array element or `]`.
    FirstElem,
    /// `,` or `]`.
    ElemSep,
    /// The first object key or `}`.
    FirstKey,
    /// `,` or `}`.
    KeySep,
    /// A key (after `,` in an object).
    NextKey,
    /// End of document (only trailing whitespace allowed).
    Done,
}

/// Container kind on the nesting stack.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Ctx {
    Arr,
    Obj,
}

/// Pull parser over a complete input string.
pub struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    stack: Vec<Ctx>,
    mode: Mode,
}

impl<'a> Parser<'a> {
    /// A parser positioned at the start of `src`.
    pub fn new(src: &'a str) -> Self {
        Parser { src: src.as_bytes(), pos: 0, stack: Vec::new(), mode: Mode::Value }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { offset: self.pos, msg: msg.into() })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.src.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    /// Pop one container and transition to the state after its value.
    fn close(&mut self) {
        self.stack.pop();
        self.mode = match self.stack.last() {
            None => Mode::Done,
            Some(Ctx::Arr) => Mode::ElemSep,
            Some(Ctx::Obj) => Mode::KeySep,
        };
    }

    /// Pull the next event, or `None` at the end of a complete document.
    ///
    /// Trailing non-whitespace input after the document is an error.
    pub fn next_event(&mut self) -> Result<Option<ParseEvent>, ParseError> {
        self.skip_ws();
        match self.mode {
            Mode::Done => match self.peek() {
                None => Ok(None),
                Some(_) => self.err("trailing characters after document"),
            },
            Mode::Value => self.value(),
            Mode::FirstElem => {
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    self.close();
                    return Ok(Some(ParseEvent::EndArr));
                }
                self.value()
            }
            Mode::ElemSep => match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.mode = Mode::Value;
                    self.skip_ws();
                    self.value()
                }
                Some(b']') => {
                    self.pos += 1;
                    self.close();
                    Ok(Some(ParseEvent::EndArr))
                }
                _ => self.err("expected ',' or ']'"),
            },
            Mode::FirstKey => {
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    self.close();
                    return Ok(Some(ParseEvent::EndObj));
                }
                self.key()
            }
            Mode::KeySep => match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.mode = Mode::NextKey;
                    self.skip_ws();
                    self.key()
                }
                Some(b'}') => {
                    self.pos += 1;
                    self.close();
                    Ok(Some(ParseEvent::EndObj))
                }
                _ => self.err("expected ',' or '}'"),
            },
            Mode::NextKey => self.key(),
        }
    }

    /// Parse an object key plus its `:`, leaving the parser before the value.
    fn key(&mut self) -> Result<Option<ParseEvent>, ParseError> {
        if self.peek() != Some(b'"') {
            return self.err("expected object key string");
        }
        let k = self.string()?;
        self.skip_ws();
        self.expect(b':')?;
        self.mode = Mode::Value;
        Ok(Some(ParseEvent::Key(k)))
    }

    /// Parse one value's leading token and set the follow-up mode.
    fn value(&mut self) -> Result<Option<ParseEvent>, ParseError> {
        let ev = match self.peek() {
            None => return self.err("unexpected end of input"),
            Some(b'[') => {
                self.pos += 1;
                self.stack.push(Ctx::Arr);
                self.mode = Mode::FirstElem;
                return Ok(Some(ParseEvent::StartArr));
            }
            Some(b'{') => {
                self.pos += 1;
                self.stack.push(Ctx::Obj);
                self.mode = Mode::FirstKey;
                return Ok(Some(ParseEvent::StartObj));
            }
            Some(b'"') => ParseEvent::Str(self.string()?),
            Some(b'n') => {
                self.literal("null")?;
                ParseEvent::Null
            }
            Some(b't') => {
                self.literal("true")?;
                ParseEvent::Bool(true)
            }
            Some(b'f') => {
                self.literal("false")?;
                ParseEvent::Bool(false)
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number()?,
            Some(c) => return self.err(format!("unexpected character '{}'", c as char)),
        };
        // Scalar complete: move to the post-value state of the container.
        self.mode = match self.stack.last() {
            None => Mode::Done,
            Some(Ctx::Arr) => Mode::ElemSep,
            Some(Ctx::Obj) => Mode::KeySep,
        };
        Ok(Some(ev))
    }

    fn literal(&mut self, lit: &str) -> Result<(), ParseError> {
        if self.src[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            self.err(format!("expected '{lit}'"))
        }
    }

    fn number(&mut self) -> Result<ParseEvent, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or a nonzero-led digit run (no leading zeros).
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return self.err("expected digit"),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return self.err("expected digit after '.'");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return self.err("expected exponent digit");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ASCII number");
        if is_float {
            let x: f64 = text.parse().map_err(|e| ParseError {
                offset: start,
                msg: format!("bad float '{text}': {e}"),
            })?;
            Ok(ParseEvent::Num(x))
        } else {
            let i: i64 = text.parse().map_err(|_| ParseError {
                offset: start,
                msg: format!("integer '{text}' out of i64 range"),
            })?;
            Ok(ParseEvent::Int(i))
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(ParseError {
                        offset: self.pos,
                        msg: "unterminated escape".into(),
                    })?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a low surrogate must follow.
                                self.literal("\\u")
                                    .map_err(|_| self.pair_err("expected low surrogate"))?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.pair_err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return self.err("invalid unicode escape"),
                            }
                        }
                        c => {
                            return self.err(format!("invalid escape '\\{}'", c as char));
                        }
                    }
                }
                Some(c) if c < 0x20 => {
                    return self.err("unescaped control character in string");
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is valid UTF-8 by &str).
                    let rest =
                        std::str::from_utf8(&self.src[self.pos..]).expect("&str input is UTF-8");
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn pair_err(&self, msg: &str) -> ParseError {
        ParseError { offset: self.pos, msg: msg.into() }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return self.err("expected 4 hex digits"),
            };
            self.pos += 1;
            v = v * 16 + d;
        }
        Ok(v)
    }
}

/// Parse a complete JSON document into a [`Json`] tree.
///
/// Round-trip guarantee: for any `Json` built from finite numbers,
/// `parse(&doc.to_string_compact()) == Ok(doc)` and likewise for the pretty
/// encoding (integers stay [`Json::Int`], floats stay [`Json::Num`] with
/// identical bit patterns, object key order is preserved).
pub fn parse(src: &str) -> Result<Json, ParseError> {
    let mut p = Parser::new(src);
    // Stack of containers under construction; objects carry pending keys.
    enum Slot {
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>, Option<String>),
    }
    let mut stack: Vec<Slot> = Vec::new();
    let mut root: Option<Json> = None;

    while let Some(ev) = p.next_event()? {
        let completed: Option<Json> = match ev {
            ParseEvent::Null => Some(Json::Null),
            ParseEvent::Bool(b) => Some(Json::Bool(b)),
            ParseEvent::Int(i) => Some(Json::Int(i)),
            ParseEvent::Num(x) => Some(Json::Num(x)),
            ParseEvent::Str(s) => Some(Json::Str(s)),
            ParseEvent::StartArr => {
                stack.push(Slot::Arr(Vec::new()));
                None
            }
            ParseEvent::StartObj => {
                stack.push(Slot::Obj(Vec::new(), None));
                None
            }
            ParseEvent::Key(k) => {
                match stack.last_mut() {
                    Some(Slot::Obj(_, pending)) => *pending = Some(k),
                    _ => unreachable!("parser emits keys only inside objects"),
                }
                None
            }
            ParseEvent::EndArr => match stack.pop() {
                Some(Slot::Arr(items)) => Some(Json::Arr(items)),
                _ => unreachable!("parser balances array events"),
            },
            ParseEvent::EndObj => match stack.pop() {
                Some(Slot::Obj(fields, None)) => Some(Json::Obj(fields)),
                _ => unreachable!("parser balances object events"),
            },
        };
        if let Some(value) = completed {
            match stack.last_mut() {
                None => root = Some(value),
                Some(Slot::Arr(items)) => items.push(value),
                Some(Slot::Obj(fields, pending)) => {
                    let key = pending.take().expect("parser emits Key before each value");
                    fields.push((key, value));
                }
            }
        }
    }
    root.ok_or(ParseError { offset: 0, msg: "empty document".into() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null"), Ok(Json::Null));
        assert_eq!(parse(" true "), Ok(Json::Bool(true)));
        assert_eq!(parse("false"), Ok(Json::Bool(false)));
        assert_eq!(parse("42"), Ok(Json::Int(42)));
        assert_eq!(parse("-7"), Ok(Json::Int(-7)));
        assert_eq!(parse("0.5"), Ok(Json::Num(0.5)));
        assert_eq!(parse("\"hi\""), Ok(Json::Str("hi".into())));
    }

    #[test]
    fn nested_documents_parse() {
        let doc = parse(r#"{"a":[1,2.5,{"b":null}],"c":"x"}"#).unwrap();
        let expected = Json::obj()
            .set(
                "a",
                Json::Arr(vec![Json::Int(1), Json::Num(2.5), Json::obj().set("b", Json::Null)]),
            )
            .set("c", "x");
        assert_eq!(doc, expected);
    }

    #[test]
    fn event_stream_is_pullable() {
        let mut p = Parser::new(r#"[1,{"k":true}]"#);
        let mut events = Vec::new();
        while let Some(ev) = p.next_event().unwrap() {
            events.push(ev);
        }
        assert_eq!(
            events,
            vec![
                ParseEvent::StartArr,
                ParseEvent::Int(1),
                ParseEvent::StartObj,
                ParseEvent::Key("k".into()),
                ParseEvent::Bool(true),
                ParseEvent::EndObj,
                ParseEvent::EndArr,
            ]
        );
    }

    #[test]
    fn escapes_and_unicode() {
        assert_eq!(parse(r#""a\"b\\c\nd\u0041""#), Ok(Json::Str("a\"b\\c\ndA".into())));
        // Surrogate pair for 𝄞 (U+1D11E).
        assert_eq!(parse(r#""\ud834\udd1e""#), Ok(Json::Str("\u{1D11E}".into())));
        assert_eq!(parse("\"caf\u{e9}\""), Ok(Json::Str("café".into())));
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "  ",
            "{",
            "[",
            "}",
            "]",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "{a:1}",
            "{\"a\":1,}",
            "[1,]",
            "tru",
            "nul",
            "01",
            "1.",
            ".5",
            "1e",
            "-",
            "\"",
            "\"\\q\"",
            "\"\\u12\"",
            "[1]]",
            "{}{}",
            "1 2",
            "+1",
            "NaN",
            "Infinity",
            r#""\ud800""#,
            r#""\ud834\u0041""#,
            "9223372036854775808", // last: i64::MAX + 1
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn i64_bounds_parse() {
        assert_eq!(parse("9223372036854775807"), Ok(Json::Int(i64::MAX)));
        assert_eq!(parse("-9223372036854775808"), Ok(Json::Int(i64::MIN)));
    }

    #[test]
    fn writer_nulls_nonfinite_and_parser_reads_null() {
        let doc = Json::obj().set("inf", f64::INFINITY);
        let text = doc.to_string_compact();
        assert_eq!(parse(&text).unwrap().get("inf"), Some(&Json::Null));
    }
}
