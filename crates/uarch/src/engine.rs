//! The reusable lockstep timing engine.
//!
//! [`TimingEngine`] executes the same out-of-order model as the original
//! `simulate` free function — and is proven byte-identical to it by
//! property tests and the campaign/phase-db goldens — but restructures the
//! inner loop around four observations:
//!
//! 1. **ROB-bounded ring buffers.** The original implementation kept five
//!    trace-length arrays (`dispatch`/`issue`/`complete`/`retire`/`class`)
//!    alive for the whole pass. Every backward read the model performs is
//!    bounded by the reorder buffer:
//!
//!    * `retire[i − rob]` and `class[i − rob]` — distance exactly `rob`;
//!    * `issue[i − rs]` — `rs < rob` for every core size;
//!    * `retire[i − 1]` / `retire[i − width]` — `width < rob`;
//!    * `complete[i − d]` for a dependence distance `d` and
//!      `complete[oldest]` for the LSQ head — *not* structurally bounded,
//!      but provably **non-binding** beyond the ROB:
//!
//!      For `j ≤ i − rob`: `complete[j] ≤ retire[j]` (retirement waits for
//!      completion, `retire[i] = max(complete[i], …)`) and `retire` is
//!      monotone in program order (`retire[i] ≥ retire[i−1]`), so
//!      `complete[j] ≤ retire[i − rob]`. The dispatch stage already forces
//!      `dispatch[i] ≥ retire[i − rob]` (the ROB-occupancy constraint, and
//!      `i ≥ rob` whenever such a `j` exists), hence
//!      `complete[j] ≤ retire[i − rob] ≤ dispatch[i] < dispatch[i] + 1 ≤
//!      start`. A dependence older than the ROB can therefore never move
//!      the issue cycle, and an LSQ head older than the ROB can never
//!      exceed the dispatch candidate that the ROB constraint already set —
//!      in both cases the model's strict `>` comparisons leave cycle *and*
//!      stall-attribution class untouched, so skipping the read is exact.
//!      (Debug builds assert `retire[i − rob] ≤ dispatch[i]` and retire
//!      monotonicity, the two legs of the proof.)
//!
//!    Each array therefore shrinks to a power-of-two ring (the `issue` ring
//!    to RS depth — it is only ever read at distance exactly `rs`; the rest
//!    to ROB depth). The scratch drops from five trace-length vectors —
//!    megabytes per call, reallocated every call — to a few KiB *per lane*
//!    that live inside the engine and are reused across calls.
//!
//! 2. **Lockstep lane batching.** Runs that share a trace and its
//!    classification differ only in per-lane cycle arithmetic: the LLC way
//!    allocation decides which LLC accesses go to DRAM, and the clock
//!    frequency only rescales the DRAM latency into core cycles (every
//!    on-chip latency of Table I is specified *in cycles*). [`LaneSpec`]
//!    captures exactly that degree of freedom — `(ways, freq_hz)` — and
//!    [`TimingEngine::simulate_lanes`] advances any number of such lanes
//!    through the trace in **one pass**: instruction/dependence/LSQ decode
//!    and the ascending-way hit/miss prefix split are shared, and only the
//!    cycle arithmetic runs per lane. The phase-database build that once
//!    walked the same trace 90× per phase (15 allocations × 2 fit
//!    frequencies × 3 core sizes) now touches it **3×** — one 30-lane pass
//!    per core size, both fit frequencies fused.
//!
//! 3. **Block decode, lane-major execution.** Decode results are staged
//!    into fixed-size blocks (`BLOCK` instructions of `Dec` records),
//!    and each lane then replays the whole block in a tight inner loop.
//!    This turns the hot loop inside-out relative to a
//!    lane-inside-instruction nesting: per-lane architectural state (group
//!    cycle, redirect target, retire horizon, stall counters) stays in
//!    registers for `BLOCK` iterations instead of round-tripping through
//!    memory per instruction, and the rings are **lane-major** — each
//!    lane's cells form one contiguous ~1 KiB region that stays
//!    L1-resident while it replays a block. Absent constraints (no
//!    dependence; LSQ/ROB/RS not yet filled) are encoded as reads of a
//!    per-lane **sentinel slot** pinned to zero — a value the model's
//!    strict `>` / `max` combining rules provably ignore — so the inner
//!    loop carries no constraint-presence branches.
//!
//! 4. **Narrow cycle cells.** Cycle values are provably bounded by a
//!    conservative per-instruction worst case (dispatch advances by at
//!    most one group cycle; completion by at most the largest fixed
//!    latency, the DRAM zero-load latency and the *total* queue backlog,
//!    which itself grows by one service slot per request; redirects add
//!    the mispredict penalty). When `(n + 1) × per_inst_bound` fits in
//!    `u32`, the rings store 32-bit cycles — halving ring traffic — while
//!    all arithmetic stays in `u64`, so results are bit-identical to the
//!    wide representation (asserted by property tests via
//!    [`TimingEngine::force_wide_cycles`]).
//!
//! 5. **Group-major fast path.** When a run has no monitors to feed, lanes
//!    are processed in groups of `GW` lanes with all per-lane state (cycles,
//!    stall counters, DRAM channel horizons via
//!    [`DramLaneState::parts`]) held in `[u64; GW]` parallel arrays and
//!    the ring cells **group-interleaved** (`row * GW + lane` within a
//!    group's chunk, versus the lane-major regions the scalar path uses)
//!    so every per-instruction ring access of the group is one contiguous
//!    `GW`-wide load/store. Each instruction's decode is unpacked once
//!    per group and the per-lane update — including the closed-form DRAM
//!    queue advance (`request_if` inlined elementwise with the public
//!    [`FP_SHIFT`]) — is written in branch-free select form, which LLVM
//!    autovectorizes (the workspace pins `-C target-cpu=native`; see
//!    `.cargo/config.toml`). The scalar path is retained as the frozen
//!    comparator: `SCALAR = true` instantiates the same generic body with
//!    the original per-lane `DramQueue` walk, and property tests plus the
//!    `db_build` bench gate assert bit-identical results and the ≥1.2×
//!    win on the memory-bound archetype.

use std::ops::RangeInclusive;

use crate::model::{TimingConfig, TimingResult};
use triad_arch::{CoreParams, CoreSize};
use triad_cache::{is_llc_code, llc_stack_dist_of, service_level_of, ClassifiedTrace, MlpMonitor};
use triad_mem::{DramLaneState, DramLanes, DramQueue, FP_SHIFT};
use triad_telemetry::Counter;
use triad_trace::{Inst, InstKind};

static LANES_TOTAL: Counter = Counter::new("uarch.lanes_total");
static LANE_REPS: Counter = Counter::new("uarch.lane_reps");
static FASTPATH_GROUPS: Counter = Counter::new("uarch.fastpath_groups");
static TAIL_LANES: Counter = Counter::new("uarch.tail_lanes");

/// Stall-attribution classes (the Eq. 1 decomposition) as ring codes.
const CLS_COMPUTE: u8 = 0;
const CLS_BRANCH: u8 = 1;
const CLS_CACHE: u8 = 2;
const CLS_DRAM: u8 = 3;

/// Completion-path kinds shared across lanes (see [`Dec`]). Lanes run in
/// ascending way order, so the allocations a given stack distance misses
/// are exactly a *prefix* of the lane list — the per-lane service-level
/// decision collapses to one shared `partition_point`.
const PATH_FIXED: u8 = 0;
/// LLC access with a tracked stack distance: lanes `< split` (ways ≤ dist)
/// go to DRAM, lanes `≥ split` hit the LLC.
const PATH_SPLIT: u8 = 1;
/// LLC access that misses every simulated allocation (cold/evicted).
const PATH_ALL_DRAM: u8 = 2;

/// [`Dec::flags`] bits.
const FLAG_MISPREDICT: u8 = 1;
/// The instruction is an LLC load and monitors are attached to this run.
const FLAG_COLLECT: u8 = 2;
/// The in-order retire-slot constraint `retire[i − width] + 1` is live
/// (`i ≥ width`). The `+ 1` must vanish with the constraint — a plain
/// sentinel read would yield `0 + 1` and could (correctly *not*) tie the
/// `max` — so the lane loop adds this flag bit instead of a constant.
const FLAG_RETW: u8 = 4;
/// Memory op is a load (a DRAM store retires early from the store buffer).
const FLAG_LOAD: u8 = 8;

/// Instructions decoded per block before the lanes replay it. Sized so the
/// block's [`Dec`] records (~32 B each) plus one lane's rings fit L1
/// comfortably.
const BLOCK: usize = 256;

/// One instruction's lane-independent decode: ring rows for every backward
/// constraint (the sentinel row when the constraint is absent), the shared
/// completion path and per-instruction flags. Filled once per instruction,
/// replayed by every lane.
#[derive(Clone, Copy, Default)]
struct Dec {
    /// Read rows into the rob-cap rings (`complete`/`retire`/`class`).
    rob_row: u32,
    lsq_row: u32,
    dep1_row: u32,
    dep2_row: u32,
    retw_row: u32,
    /// Read row into the rs-cap `issue` ring.
    rs_row: u32,
    /// Row this instruction writes in the rob-cap rings.
    slot_row: u32,
    /// Row this instruction writes in the issue ring.
    islot_row: u32,
    /// Fixed completion latency (the non-DRAM outcome of every path kind).
    lat: u32,
    /// Stall class of the non-DRAM outcome.
    cls: u8,
    /// `PATH_FIXED` / `PATH_SPLIT` / `PATH_ALL_DRAM`.
    path: u8,
    /// For `PATH_SPLIT`: lanes `< split` go to DRAM.
    split: u8,
    flags: u8,
    /// Raw classification code (for the monitor stream).
    code: u8,
}

/// One simulated configuration of a lockstep pass. Lanes share the trace,
/// its classification, the core size and every cycle-domain latency of the
/// [`TimingConfig`]; they differ only in
///
/// * `ways` — the LLC allocation (decides which LLC accesses go to DRAM),
/// * `freq_hz` — the core clock, which rescales the (wall-clock) DRAM
///   latency into core cycles and converts final cycle counts to seconds,
/// * `monitor` — whether the lane's arrival-ordered LLC load stream is
///   collected for an [`MlpMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneSpec {
    /// LLC way allocation of this lane.
    pub ways: usize,
    /// Core clock frequency of this lane, Hz.
    pub freq_hz: f64,
    /// Collect this lane's LLC load stream for a monitor.
    pub monitor: bool,
}

impl LaneSpec {
    /// A monitor-less lane at `(ways, freq_hz)`.
    pub fn new(ways: usize, freq_hz: f64) -> Self {
        LaneSpec { ways, freq_hz, monitor: false }
    }
}

/// Per-lane simulation state (the slow-changing part; the per-block hot
/// state is hoisted into locals by the lane loop).
struct Lane {
    dram: DramQueue,
    freq_hz: f64,
    collect: bool,
    cycle_of_group: u64,
    dispatched_in_group: u64,
    branch_resume: u64,
    dram_loads: u64,
    dram_stores: u64,
    true_lm: u64,
    lm_end: u64,
    c_branch: u64,
    c_cache: u64,
    c_dram: u64,
    last_retire: u64,
}

impl Lane {
    fn new(cfg: &TimingConfig, spec: &LaneSpec) -> Self {
        Lane {
            dram: DramQueue::new(cfg.dram, spec.freq_hz),
            freq_hz: spec.freq_hz,
            collect: spec.monitor,
            cycle_of_group: 0,
            dispatched_in_group: 0,
            branch_resume: 0,
            dram_loads: 0,
            dram_stores: 0,
            true_lm: 0,
            lm_end: 0,
            c_branch: 0,
            c_cache: 0,
            c_dram: 0,
            last_retire: 0,
        }
    }
}

/// Width of one fast-path lane group: the group-major lane loop replays a
/// decoded block through `GW` representatives at once, with all per-lane
/// state in `[u64; GW]` arrays and the ring cells of a group interleaved
/// as `row * GW + lane`. Per-instruction work that depends only on the
/// decode record (ring rows, path flags, latencies) is then computed once
/// per group instead of once per lane, and the elementwise lane arithmetic
/// is exactly the shape LLVM's SLP/loop vectorizers turn into SIMD: the
/// model's serial dependency chain runs across *instructions*, never
/// across lanes.
const GW: usize = 8;

/// Per-group state of the fast lane loop (see [`GW`]): the hot
/// architectural registers of up to `GW` representative lanes as parallel
/// arrays, living across all blocks of a run and written back to the
/// [`Lane`]s once at the end. Positions `len..GW` are *pads* — copies of
/// the group's first lane that keep the elementwise loops at fixed width;
/// their results are simply never written back.
struct GroupState {
    /// Lane index (into the engine's lane list) per position.
    kidx: [usize; GW],
    /// Lane index as `u64`, for the `PATH_SPLIT` prefix compare.
    kq: [u64; GW],
    /// Per-position LLC-load collection flag (`false` on pads).
    collect: [bool; GW],
    /// Live positions; the rest are pads.
    len: usize,
    cog: [u64; GW],
    dig: [u64; GW],
    br: [u64; GW],
    lr: [u64; GW],
    lm_end: [u64; GW],
    true_lm: [u64; GW],
    dram_loads: [u64; GW],
    dram_stores: [u64; GW],
    /// Stall cycles by class, `stall[class][lane]`.
    stall: [[u64; GW]; 4],
    /// [`DramLaneState`] fields as lane-parallel arrays (see
    /// [`DramLaneState::parts`]): the closed-form queue update runs
    /// elementwise over homogeneous `u64` lanes.
    dram_base: [u64; GW],
    dram_svc: [u64; GW],
    dram_nf: [u64; GW],
    dram_reqs: [u64; GW],
    dram_qcyc: [u64; GW],
}

/// A group's interleaved cells of ring `row`: one `GW`-wide contiguous
/// chunk per row, so every per-instruction ring access of the group-major
/// loop is a single unit-stride vector load or store. The fixed-size
/// array return lets the compiler drop per-lane bounds checks.
#[inline(always)]
fn grow<C>(buf: &[C], row: usize) -> &[C; GW] {
    buf[row * GW..row * GW + GW].try_into().unwrap()
}

/// Mutable flavor of [`grow`].
#[inline(always)]
fn grow_mut<C>(buf: &mut [C], row: usize) -> &mut [C; GW] {
    (&mut buf[row * GW..row * GW + GW]).try_into().unwrap()
}

/// Cycle-cell representation of the ring buffers: `u32` when the run's
/// conservative cycle bound fits (half the ring traffic), `u64` otherwise.
/// All arithmetic happens in `u64`; cells only narrow storage.
trait Cycle: Copy {
    const ZERO: Self;
    fn of(v: u64) -> Self;
    fn get(self) -> u64;
}

impl Cycle for u32 {
    const ZERO: Self = 0;
    #[inline(always)]
    fn of(v: u64) -> Self {
        debug_assert!(v <= u32::MAX as u64, "narrow cycle cell overflow");
        v as u32
    }
    #[inline(always)]
    fn get(self) -> u64 {
        self as u64
    }
}

impl Cycle for u64 {
    const ZERO: Self = 0;
    #[inline(always)]
    fn of(v: u64) -> Self {
        v
    }
    #[inline(always)]
    fn get(self) -> u64 {
        self
    }
}

/// Per-field ring buffers (SoA, **lane-major**): lane `k`'s cells occupy
/// one contiguous `rows`-sized region per field, so a lane's whole ring
/// working set stays L1-resident while it replays a block. Row `cap` of
/// each region is the zero **sentinel** slot — never written during a run;
/// reads of it encode "constraint absent" (see module docs, point 3).
#[derive(Default)]
struct Rings<C> {
    /// Completion cycles, `lanes × (rob-cap + 1)`.
    complete: Vec<C>,
    /// Retirement cycles, `lanes × (rob-cap + 1)`.
    retire: Vec<C>,
    /// Issue cycles, `lanes × (rs-cap + 1)` — only ever read at distance
    /// `rs`.
    issue: Vec<C>,
}

/// A reusable out-of-order timing engine: holds all scratch state across
/// calls and simulates one or many [`LaneSpec`] configurations per trace
/// pass.
///
/// The free functions [`crate::simulate`] / [`crate::simulate_with_monitor`]
/// are thin wrappers over a fresh single-lane engine and remain
/// byte-identical to the pre-engine implementation.
#[derive(Default)]
pub struct TimingEngine {
    rings32: Rings<u32>,
    rings64: Rings<u64>,
    /// Stall-attribution classes, `lanes × (rob-cap + 1)` (shared by both
    /// cycle representations).
    class: Vec<u8>,
    /// Block-decode staging buffer, [`BLOCK`] entries.
    dec: Vec<Dec>,
    /// Memory-op ordinal ring for the LSQ constraint (way-independent,
    /// shared across lanes): the youngest `lsq` memory-op indices.
    memops: Vec<u32>,
    /// Way-equivalence representative per lane (see `dedup_lanes`).
    rep: Vec<usize>,
    /// Per-lane LLC loads in (issue-cycle, program-index, stack-code) form;
    /// populated only for monitored lanes.
    llc_loads: Vec<Vec<(u64, u32, u8)>>,
    /// Lane states for the current call.
    lanes: Vec<Lane>,
    /// Lane-descriptor scratch for the range-based entry points.
    lane_buf: Vec<LaneSpec>,
    /// SoA DRAM channel block for the fast lane loop (one channel per
    /// lane, reset per run).
    dramv: DramLanes,
    /// Test hook: force the wide (`u64`) cell representation.
    force_wide: bool,
    /// Test/bench hook: simulate every lane even when way-equivalence
    /// proves some are clones.
    no_dedup: bool,
    /// Test/bench hook: run the scalar-DRAM compatibility lane loop.
    scalar_dram: bool,
}

impl TimingEngine {
    /// A fresh engine with no scratch allocated yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Force the wide (`u64`) ring representation regardless of the cycle
    /// bound. Only useful to property-test that the narrow (`u32`)
    /// representation is bit-identical; results never differ.
    #[doc(hidden)]
    pub fn force_wide_cycles(&mut self, wide: bool) {
        self.force_wide = wide;
    }

    /// Simulate every lane individually even when way-equivalence proves
    /// some are bit-identical clones. Only useful to property-test the
    /// deduplication (results never differ) and to benchmark the engine
    /// as it existed before it — never in production paths.
    #[doc(hidden)]
    pub fn disable_lane_dedup(&mut self, off: bool) {
        self.no_dedup = off;
    }

    /// Run the scalar-DRAM compatibility lane loop — per-lane
    /// [`DramQueue`]s and unpacked ring cells, the loop as it existed
    /// before the closed-form fast path. Only useful to property-test the
    /// fast path (results never differ) and as the `db_build` bench's
    /// comparator — never in production paths.
    #[doc(hidden)]
    pub fn disable_dram_fast_path(&mut self, off: bool) {
        self.scalar_dram = off;
    }

    /// Simulate `trace` (classified as `ct`) under `cfg` — the single-lane
    /// path, byte-identical to [`crate::simulate`].
    pub fn simulate(
        &mut self,
        trace: &[Inst],
        ct: &ClassifiedTrace,
        cfg: &TimingConfig,
    ) -> TimingResult {
        self.lane_buf.clear();
        self.lane_buf.push(LaneSpec::new(cfg.ways, cfg.freq_hz));
        self.run(trace, ct, cfg, None)[0]
    }

    /// [`TimingEngine::simulate`], feeding every LLC load (in LLC arrival
    /// order) into `monitor` — byte-identical to
    /// [`crate::simulate_with_monitor`].
    pub fn simulate_with_monitor(
        &mut self,
        trace: &[Inst],
        ct: &ClassifiedTrace,
        cfg: &TimingConfig,
        monitor: &mut MlpMonitor,
    ) -> TimingResult {
        self.lane_buf.clear();
        self.lane_buf.push(LaneSpec { ways: cfg.ways, freq_hz: cfg.freq_hz, monitor: true });
        self.run(trace, ct, cfg, Some(std::slice::from_mut(monitor)))[0]
    }

    /// Lockstep batched mode: simulate every allocation in `ways` at the
    /// Table I latencies for `(core, freq_hz)` in **one trace pass**,
    /// returning one [`TimingResult`] per allocation in range order. Each
    /// result is bit-identical to a standalone [`crate::simulate`] at that
    /// allocation.
    pub fn simulate_ways(
        &mut self,
        trace: &[Inst],
        ct: &ClassifiedTrace,
        core: CoreSize,
        freq_hz: f64,
        ways: RangeInclusive<usize>,
    ) -> Vec<TimingResult> {
        let cfg = TimingConfig::table1(core, freq_hz, *ways.start());
        self.simulate_ways_cfg(trace, ct, &cfg, ways)
    }

    /// [`TimingEngine::simulate_ways`] with explicit (non-Table I)
    /// latencies: `cfg.ways` is overridden per lane by `ways`.
    pub fn simulate_ways_cfg(
        &mut self,
        trace: &[Inst],
        ct: &ClassifiedTrace,
        cfg: &TimingConfig,
        ways: RangeInclusive<usize>,
    ) -> Vec<TimingResult> {
        self.lane_buf.clear();
        self.lane_buf.extend(ways.map(|w| LaneSpec::new(w, cfg.freq_hz)));
        self.run(trace, ct, cfg, None)
    }

    /// Batched mode with one [`MlpMonitor`] per way lane: lane `k` feeds
    /// `monitors[k]` with its own arrival-ordered LLC load stream, exactly
    /// as a standalone [`crate::simulate_with_monitor`] at that allocation
    /// would.
    pub fn simulate_ways_with_monitors(
        &mut self,
        trace: &[Inst],
        ct: &ClassifiedTrace,
        cfg: &TimingConfig,
        ways: RangeInclusive<usize>,
        monitors: &mut [MlpMonitor],
    ) -> Vec<TimingResult> {
        self.lane_buf.clear();
        self.lane_buf.extend(ways.map(|w| LaneSpec {
            ways: w,
            freq_hz: cfg.freq_hz,
            monitor: true,
        }));
        assert_eq!(monitors.len(), self.lane_buf.len(), "one monitor per way lane");
        self.run(trace, ct, cfg, Some(monitors))
    }

    /// The general lockstep entry point: one pass over `trace` advancing
    /// every lane in `specs` — arbitrary `(ways, freq_hz)` pairs, as long
    /// as `ways` is non-decreasing across the lane list (the prefix-split
    /// decode relies on it). `cfg` provides the core size and the shared
    /// cycle-domain latencies; its `ways`/`freq_hz` fields are overridden
    /// per lane. `monitors` receives one entry per `monitor == true` lane,
    /// in lane order.
    ///
    /// Each lane's [`TimingResult`] (and monitor state) is bit-identical to
    /// a standalone [`crate::simulate`] / [`crate::simulate_with_monitor`]
    /// at that lane's configuration — the property the phase-database
    /// build's byte-identical-artifact golden rests on.
    pub fn simulate_lanes(
        &mut self,
        trace: &[Inst],
        ct: &ClassifiedTrace,
        cfg: &TimingConfig,
        specs: &[LaneSpec],
        monitors: &mut [MlpMonitor],
    ) -> Vec<TimingResult> {
        self.lane_buf.clear();
        self.lane_buf.extend_from_slice(specs);
        let monitored = specs.iter().filter(|s| s.monitor).count();
        assert_eq!(monitors.len(), monitored, "one monitor per monitored lane");
        self.run(trace, ct, cfg, Some(monitors))
    }

    /// Conservative upper bound on any cycle value stored during a run:
    /// each instruction advances every lane clock by at most one group
    /// cycle plus a dispatch slot, the largest completion latency and a
    /// redirect penalty; DRAM queueing adds (amortized) one channel
    /// service slot per request plus the zero-load latency. Summed over
    /// `n + 1` instructions this dominates every stored `issue`, `complete`,
    /// `retire` and `branch_resume` value, so cells fit `u32` whenever the
    /// bound does.
    fn cycle_bound(&self, n: usize, cfg: &TimingConfig) -> u128 {
        let max_freq =
            self.lane_buf.iter().map(|s| s.freq_hz).fold(0.0f64, f64::max).max(cfg.freq_hz);
        let probe = DramQueue::new(cfg.dram, max_freq);
        let lat_max = cfg.lat_llc.max(cfg.lat_longop).max(cfg.lat_l2).max(cfg.lat_l1) as u64;
        let per_inst = 4
            + 2 * cfg.mispredict_penalty as u64
            + lat_max
            + probe.base_cycles()
            + probe.service_cycles_ceil();
        (n as u128 + 1) * per_inst as u128
    }

    /// Dispatch to the narrow/wide ring representation and the fast/
    /// scalar-DRAM lane loop.
    fn run(
        &mut self,
        trace: &[Inst],
        ct: &ClassifiedTrace,
        cfg: &TimingConfig,
        monitors: Option<&mut [MlpMonitor]>,
    ) -> Vec<TimingResult> {
        assert!(!self.lane_buf.is_empty(), "at least one lane required");
        let bound = self.cycle_bound(trace.len(), cfg);
        // The fast loop packs the stall class into the low 2 bits of the
        // `complete`/`retire` cells (stored values ×4) and runs the DRAM
        // update in u64 fixed point (arrivals < 2^54). Both hold whenever
        // the conservative bound does; a trace absurd enough to exceed it
        // falls back to the scalar loop, whose widened [`DramQueue`] is
        // exact over the full u64 cycle domain.
        let scalar = self.scalar_dram || bound >= (1u128 << 54);
        let stored = if scalar { bound } else { bound * 4 + 3 };
        let narrow = !self.force_wide && stored <= u32::MAX as u128;
        match (narrow, scalar) {
            (true, false) => {
                let mut rings = std::mem::take(&mut self.rings32);
                let out = self.run_cells::<u32, false>(&mut rings, trace, ct, cfg, monitors);
                self.rings32 = rings;
                out
            }
            (true, true) => {
                let mut rings = std::mem::take(&mut self.rings32);
                let out = self.run_cells::<u32, true>(&mut rings, trace, ct, cfg, monitors);
                self.rings32 = rings;
                out
            }
            (false, false) => {
                let mut rings = std::mem::take(&mut self.rings64);
                let out = self.run_cells::<u64, false>(&mut rings, trace, ct, cfg, monitors);
                self.rings64 = rings;
                out
            }
            (false, true) => {
                let mut rings = std::mem::take(&mut self.rings64);
                let out = self.run_cells::<u64, true>(&mut rings, trace, ct, cfg, monitors);
                self.rings64 = rings;
                out
            }
        }
    }

    /// The lockstep loop: decode a block of instructions once, then let
    /// every lane replay it against its own rings (module docs, points
    /// 2–3). With one lane this degenerates to the original scalar model.
    ///
    /// `SCALAR` selects the lane-loop flavor at compile time. The default
    /// fast loop (`false`) draws DRAM completions from the SoA
    /// [`DramLanes`] block in closed form and packs each ring cell as
    /// `cycle << 2 | class`, fusing the cycle+class reads at the ROB and
    /// LSQ rows into single loads and dropping the class-ring store. The
    /// scalar loop (`true`) is the pre-fast-path code — per-lane
    /// [`DramQueue`]s, separate class ring — kept as the bit-equality
    /// reference and bench comparator. Both produce identical results for
    /// every lane (property-tested across saturated / unsaturated / mixed
    /// DRAM regimes).
    fn run_cells<C: Cycle, const SCALAR: bool>(
        &mut self,
        rings: &mut Rings<C>,
        trace: &[Inst],
        ct: &ClassifiedTrace,
        cfg: &TimingConfig,
        monitors: Option<&mut [MlpMonitor]>,
    ) -> Vec<TimingResult> {
        let n = trace.len();
        assert_eq!(n, ct.len(), "trace and classification must align");
        let nl = self.lane_buf.len();
        assert!(nl < 256, "lane count must fit the split byte");
        if n == 0 {
            return vec![TimingResult::default(); nl];
        }
        let CoreParams { issue_width, rob, rs, lsq } = cfg.core.params();
        let width = issue_width as usize;
        let rob = rob as usize;
        let rs = rs as usize;
        let lsq = lsq as usize;
        // The ring bound (module docs) needs every structural read distance
        // within the ROB.
        assert!(width <= rob && rs <= rob && lsq <= rob, "ring bound: RS/LSQ/width within ROB");

        // Per-lane ring regions are sized to 2× the (power-of-two) ring
        // depth: rows `0..cap` hold data, row `cap` is the zero sentinel,
        // and the power-of-two region length lets every access be indexed
        // as `row & (region_len − 1)` — an index the compiler can prove
        // in-bounds (`x & m ≤ m`), so the hot loop carries no bounds
        // checks.
        let cap = rob.next_power_of_two();
        let mask = cap - 1;
        let rows = cap * 2;
        let icap = rs.next_power_of_two();
        let imask = icap - 1;
        let irows = icap * 2;
        let lcap = lsq.next_power_of_two();
        let lmask = lcap - 1;
        let sent = cap as u32; // sentinel row of the rob-cap rings
        let isent = icap as u32; // sentinel row of the issue ring

        // Ascending way order is what lets the per-instruction service-level
        // decision collapse to a prefix split (see [`Dec`]).
        assert!(
            self.lane_buf.windows(2).all(|p| p[0].ways <= p[1].ways),
            "lane ways must be non-decreasing"
        );
        self.memops.resize(lcap, 0);
        self.dec.resize(BLOCK, Dec::default());
        self.lanes.clear();
        for spec in &self.lane_buf {
            self.lanes.push(Lane::new(cfg, spec));
        }
        if !SCALAR {
            self.dramv.reset(cfg.dram, self.lane_buf.iter().map(|s| s.freq_hz));
        }
        // Lane-reuse audit: `PhaseScratch` drives one engine through every
        // grid cell of a phase-db build, so every channel horizon and
        // `requests`/`queue_cycles` counter must start this run at zero —
        // a leak here would silently skew the next cell's DRAM timing.
        // (The scalar loop rebuilds per-lane `DramQueue`s in `Lane::new`
        // above, which the same assertion pattern covers by construction.)
        debug_assert!(
            SCALAR || self.dramv.is_fresh(),
            "DRAM lane block must enter a run with no carried-over state"
        );
        // Per-distance DRAM/LLC prefix split, tabled once per run: lanes
        // run in ascending way order, so `split_of[d]` is the first lane
        // whose allocation exceeds stack distance `d` (decode previously
        // re-derived this per instruction via `partition_point`).
        let mut split_of = [0u8; 16];
        for (dist, s) in split_of.iter_mut().enumerate() {
            *s = self.lane_buf.partition_point(|l| l.ways <= dist) as u8;
        }
        let codes = ct.codes();

        // ---- way-equivalence dedup. A lane pair (w₁, f₁) / (w₂, f₂) with
        // w₁ ≤ w₂ has bit-identical cycle timelines when no LLC access in
        // the window separates them:
        //
        // * accesses with stack distance d < w₁ hit both, d ≥ w₂ (and cold
        //   misses) go to DRAM on both — only d ∈ [w₁, w₂) differs, so if
        //   no such distance occurs the DRAM decision agrees on every
        //   instruction;
        // * the frequency only scales DRAM latency into core cycles, so
        //   f₁ ≠ f₂ additionally requires the lanes to see *zero* DRAM
        //   traffic (no cold miss, no tracked d ≥ w₁).
        //
        // Equal ways (duplicate lanes) are the empty-range case of the
        // same rule. Every u64 cycle/stall counter of an equivalent pair
        // is then equal, so the clone lane skips the trace walk entirely
        // and copies its representative's end state — per-lane f64
        // conversion at its own frequency reproduces the standalone result
        // bit-for-bit. Streaming phases (all-cold misses) collapse the
        // whole way range to one lane per frequency; cache-resident phases
        // collapse everything past their largest occurring stack distance.
        let mut present = [false; 16];
        let mut cold_any = false;
        for &c in codes {
            if c <= 15 {
                present[c as usize] = true;
            } else {
                cold_any |= is_llc_code(c);
            }
        }
        self.rep.clear();
        for k in 0..nl {
            let mut r = k;
            for j in 0..k * (!self.no_dedup as usize) {
                let wj16 = self.lane_buf[j].ways.min(16);
                let wk16 = self.lane_buf[k].ways.min(16);
                if present[wj16..wk16].iter().any(|&p| p) {
                    continue;
                }
                let dram_free = !cold_any && !present[wj16..].iter().any(|&p| p);
                if self.lane_buf[j].freq_hz == self.lane_buf[k].freq_hz || dram_free {
                    r = self.rep[j];
                    break;
                }
            }
            self.rep.push(r);
        }

        let collect_any = monitors.is_some();
        while self.llc_loads.len() < nl {
            self.llc_loads.push(Vec::new());
        }
        // A representative collects the (shared) LLC load stream when any
        // lane of its class is monitored.
        for k in 0..nl {
            self.lanes[k].collect = false;
        }
        for k in 0..nl {
            if self.lane_buf[k].monitor {
                self.lanes[self.rep[k]].collect = true;
            }
        }
        if collect_any {
            // Upper bound: `ct.llc_accesses` counts LLC loads *and* stores,
            // while only loads are collected — no reallocation, slight
            // over-reservation.
            for (lv, lane) in self.llc_loads.iter_mut().zip(&self.lanes) {
                lv.clear();
                if lane.collect {
                    lv.reserve(ct.llc_accesses as usize);
                }
            }
        }
        let specs = &self.lane_buf;
        let min_ways = specs[0].ways;
        let lat_l1 = cfg.lat_l1;
        let lat_l2 = cfg.lat_l2;
        let lat_llc = cfg.lat_llc as u64;
        let lat_longop = cfg.lat_longop;
        let penalty = cfg.mispredict_penalty as u64;
        let mut m = 0usize; // memory ops decoded so far
        let rmask = rows - 1;
        let irmask = irows - 1;

        // Representative lanes (clones skip the walk entirely).
        let mut reps_list = [0usize; 256];
        let mut nreps = 0usize;
        for k in 0..nl {
            if self.rep[k] == k {
                reps_list[nreps] = k;
                nreps += 1;
            }
        }
        // Fast-path group partition (see [`GW`]): full groups of `GW`
        // representatives, one padded group for a remainder of two or
        // more, and a single leftover representative routed through the
        // single-lane tail loop (a padded group would cost ~`GW`× the
        // work of the one lane it simulates). The scalar loop runs every
        // representative through the tail loop — it is the pre-fast-path
        // reference and bench comparator.
        let (ngroups, ntail) = if SCALAR {
            (0, nreps)
        } else {
            let rem = nreps % GW;
            if rem == 1 {
                (nreps / GW, 1)
            } else {
                (nreps / GW + (rem > 1) as usize, 0)
            }
        };
        let tail_reps = &reps_list[nreps - ntail..nreps];
        // Telemetry (sidecar): how hard lane dedup collapses the grid and
        // how much of what's left the vectorized fast path covers.
        LANES_TOTAL.add(nl as u64);
        LANE_REPS.add(nreps as u64);
        FASTPATH_GROUPS.add(ngroups as u64);
        TAIL_LANES.add(ntail as u64);

        // (Re)size ring scratch and re-zero the sentinel rows (geometry or
        // the cell layout may have shifted stale cells under them). Stale
        // *non-sentinel* values are never read: every such read at
        // instruction `i` targets a row written earlier in this pass — the
        // read distances are bounded by the ring depths and gated on `i`
        // having advanced past them — so alternating the scalar
        // (lane-major) and fast (group-interleaved) layouts on one engine
        // is also safe. The scalar layout gives every lane `k` a
        // contiguous `rows`-sized region at `k * rows`; the fast layout
        // gives group `g` a `rows * GW` region at `g * rows * GW` with
        // cells interleaved as `row * GW + lane`, followed by one
        // lane-major region for the leftover tail representative.
        let tail_cbase = ngroups * rows * GW;
        let tail_ibase = ngroups * irows * GW;
        if SCALAR {
            rings.complete.resize(rows * nl, C::ZERO);
            rings.retire.resize(rows * nl, C::ZERO);
            rings.issue.resize(irows * nl, C::ZERO);
            self.class.resize(rows * nl, 0);
            for k in 0..nl {
                rings.complete[k * rows + cap] = C::ZERO;
                rings.retire[k * rows + cap] = C::ZERO;
                rings.issue[k * irows + icap] = C::ZERO;
                self.class[k * rows + cap] = CLS_COMPUTE;
            }
        } else {
            rings.complete.resize(tail_cbase + rows * ntail, C::ZERO);
            rings.retire.resize(tail_cbase + rows * ntail, C::ZERO);
            rings.issue.resize(tail_ibase + irows * ntail, C::ZERO);
            for g in 0..ngroups {
                for l in 0..GW {
                    rings.complete[g * rows * GW + cap * GW + l] = C::ZERO;
                    rings.retire[g * rows * GW + cap * GW + l] = C::ZERO;
                    rings.issue[g * irows * GW + icap * GW + l] = C::ZERO;
                }
            }
            if ntail == 1 {
                rings.complete[tail_cbase + cap] = C::ZERO;
                rings.retire[tail_cbase + cap] = C::ZERO;
                rings.issue[tail_ibase + icap] = C::ZERO;
            }
        }

        // Group state for the whole run: pads replicate the group's first
        // lane — the replayed work is valid (so every in-loop invariant
        // and debug assertion holds on pads too) but never written back.
        let mut groups: Vec<GroupState> = Vec::with_capacity(ngroups);
        for g in 0..ngroups {
            let chunk = &reps_list[g * GW..(g * GW + GW).min(nreps)];
            let mut kidx = [chunk[0]; GW];
            kidx[..chunk.len()].copy_from_slice(chunk);
            let mut kq = [0u64; GW];
            let mut collect = [false; GW];
            let mut dram_base = [0u64; GW];
            let mut dram_svc = [0u64; GW];
            let mut dram_nf = [0u64; GW];
            let mut dram_reqs = [0u64; GW];
            let mut dram_qcyc = [0u64; GW];
            for l in 0..GW {
                kq[l] = kidx[l] as u64;
                let (b, s, nf, rq, qc) = self.dramv.lane_state(kidx[l]).parts();
                dram_base[l] = b;
                dram_svc[l] = s;
                dram_nf[l] = nf;
                dram_reqs[l] = rq;
                dram_qcyc[l] = qc;
                collect[l] = l < chunk.len() && self.lanes[kidx[l]].collect;
            }
            groups.push(GroupState {
                kidx,
                kq,
                collect,
                len: chunk.len(),
                cog: [0; GW],
                dig: [0; GW],
                br: [0; GW],
                lr: [0; GW],
                lm_end: [0; GW],
                true_lm: [0; GW],
                dram_loads: [0; GW],
                dram_stores: [0; GW],
                stall: [[0; GW]; 4],
                dram_base,
                dram_svc,
                dram_nf,
                dram_reqs,
                dram_qcyc,
            });
        }

        for block_start in (0..n).step_by(BLOCK) {
            let block = &trace[block_start..(block_start + BLOCK).min(n)];

            // ---- decode phase: once per instruction, not per lane ----
            for (j, inst) in block.iter().enumerate() {
                let i = block_start + j;
                let code = codes[i];
                let kind = inst.kind;
                let is_mem = kind.is_mem();
                let d = &mut self.dec[j];
                d.slot_row = (i & mask) as u32;
                d.islot_row = (i & imask) as u32;
                d.rob_row = if i >= rob { ((i - rob) & mask) as u32 } else { sent };
                d.rs_row = if i >= rs { ((i - rs) & imask) as u32 } else { isent };
                // LSQ head: the lsq-th-youngest memory op, if it can still
                // bind (older than the ROB ⇒ provably non-binding, module
                // docs).
                d.lsq_row = if is_mem && m >= lsq {
                    let oldest = self.memops[(m - lsq) & lmask] as usize;
                    if i - oldest < rob {
                        (oldest & mask) as u32
                    } else {
                        sent
                    }
                } else {
                    sent
                };
                if is_mem {
                    self.memops[m & lmask] = i as u32;
                    m += 1;
                }
                // Producers before the detailed window (dep distance > i)
                // completed during warmup; producers older than the ROB are
                // non-binding (module docs). Both impose no constraint.
                let d1 = inst.dep1 as usize;
                let d2 = inst.dep2 as usize;
                d.dep1_row =
                    if d1 > 0 && d1 <= i && d1 < rob { ((i - d1) & mask) as u32 } else { sent };
                d.dep2_row =
                    if d2 > 0 && d2 <= i && d2 < rob { ((i - d2) & mask) as u32 } else { sent };
                d.retw_row = if i >= width { ((i - width) & mask) as u32 } else { sent };
                let is_load = kind == InstKind::Load;
                let mut flags = 0u8;
                if kind == InstKind::Branch && inst.mispredict {
                    flags |= FLAG_MISPREDICT;
                }
                if i >= width {
                    flags |= FLAG_RETW;
                }
                if is_load {
                    flags |= FLAG_LOAD;
                }
                if collect_any && is_load && is_llc_code(code) {
                    flags |= FLAG_COLLECT;
                }
                // Completion path, shared across lanes: the service level
                // at the *smallest* allocation decides the shape, and for
                // tracked stack distances the DRAM lanes are the prefix
                // with `ways ≤ dist`.
                let (path, split, lat, cls) = match kind {
                    InstKind::Alu | InstKind::Branch => (PATH_FIXED, 0, 1, CLS_COMPUTE),
                    InstKind::LongOp => (PATH_FIXED, 0, lat_longop, CLS_COMPUTE),
                    InstKind::Load | InstKind::Store => match service_level_of(code, min_ways) {
                        1 => (PATH_FIXED, 0, lat_l1, CLS_COMPUTE),
                        2 => (PATH_FIXED, 0, lat_l2, CLS_CACHE),
                        3 => (PATH_FIXED, 0, cfg.lat_llc, CLS_CACHE),
                        _ => {
                            if code <= 15 {
                                let split = split_of[code as usize];
                                if split as usize == nl {
                                    (PATH_ALL_DRAM, 0, 0, CLS_DRAM)
                                } else {
                                    (PATH_SPLIT, split, cfg.lat_llc, CLS_CACHE)
                                }
                            } else {
                                (PATH_ALL_DRAM, 0, 0, CLS_DRAM)
                            }
                        }
                    },
                };
                d.path = path;
                d.split = split;
                d.lat = lat;
                d.cls = cls;
                d.flags = flags;
                d.code = code;
            }

            // ---- lane phase: each lane replays the decoded block. The
            // loop body is written in guarded-assignment form (`x = if c
            // { a } else { x }`) so every constraint fold and the stall
            // counters compile to conditional moves — the binding pattern
            // of the five dispatch constraints is data-dependent and
            // would mispredict heavily as branches. Ring indices are
            // masked with the power-of-two region mask, which the
            // compiler proves in-bounds. ----
            let dec = &self.dec[..block.len()];

            // Group-major fast loop (see [`GW`]): the decoded record and
            // its ring rows are unpacked once per group, then up to `GW`
            // lanes advance in elementwise lockstep over `[u64; GW]`
            // arrays. Every fold is a guarded assignment / select over
            // fixed-width arrays, and each ring row is one contiguous
            // `GW`-chunk — the shape the vectorizer lowers to SIMD
            // compares, blends and unit-stride vector loads/stores. The
            // per-lane math is the `SCALAR = false` arm of the tail loop
            // below, verbatim (the equivalence suite and the `db_store`
            // golden pin both).
            for (g, gs) in groups.iter_mut().enumerate() {
                let gcomp = &mut rings.complete[g * rows * GW..(g + 1) * rows * GW];
                let gret = &mut rings.retire[g * rows * GW..(g + 1) * rows * GW];
                let giss = &mut rings.issue[g * irows * GW..(g + 1) * irows * GW];
                // Hot state as block-scoped locals: scalar-replaceable for
                // certain, so nothing round-trips through memory per
                // instruction.
                let kidx = gs.kidx;
                let kq = gs.kq;
                let collect = gs.collect;
                let mut cog = gs.cog;
                let mut dig = gs.dig;
                let mut br = gs.br;
                let mut lr = gs.lr;
                let mut lm_end = gs.lm_end;
                let mut true_lm = gs.true_lm;
                let mut dram_loads = gs.dram_loads;
                let mut dram_stores = gs.dram_stores;
                let mut stall = gs.stall;
                let dram_base = gs.dram_base;
                let dram_svc = gs.dram_svc;
                let mut dram_nf = gs.dram_nf;
                let mut dram_reqs = gs.dram_reqs;
                let mut dram_qcyc = gs.dram_qcyc;
                for (j, d) in dec.iter().enumerate() {
                    // Shared per-instruction unpack — once per group, not
                    // once per lane.
                    let rob_row = d.rob_row as usize & rmask;
                    let lsq_row = d.lsq_row as usize & rmask;
                    let rs_row = d.rs_row as usize & irmask;
                    let dep1_row = d.dep1_row as usize & rmask;
                    let dep2_row = d.dep2_row as usize & rmask;
                    let retw_row = d.retw_row as usize & rmask;
                    let slot_row = d.slot_row as usize & rmask;
                    let islot_row = d.islot_row as usize & irmask;
                    let is_load = d.flags & FLAG_LOAD != 0;
                    let mispred = d.flags & FLAG_MISPREDICT != 0;
                    let retw_live = (d.flags & FLAG_RETW != 0) as u64;
                    let all_dram = d.path == PATH_ALL_DRAM;
                    let is_split = d.path == PATH_SPLIT;
                    let split = d.split as u64;
                    let lat = d.lat as u64;
                    let dcls = d.cls as u64;

                    // Ring reads, widened to `u64` lanes (classes ride as
                    // `u64` too so every array is lane-homogeneous).
                    let mut rr = [0u64; GW];
                    let mut rcl = [0u64; GW];
                    let rp = grow(gret, rob_row);
                    for l in 0..GW {
                        let p = rp[l].get();
                        rr[l] = p >> 2;
                        rcl[l] = p & 3;
                    }
                    let mut oc = [0u64; GW];
                    let mut lcl = [0u64; GW];
                    let op = grow(gcomp, lsq_row);
                    for l in 0..GW {
                        let p = op[l].get();
                        oc[l] = p >> 2;
                        lcl[l] = p & 3;
                    }
                    let mut il = [0u64; GW];
                    let ip = grow(giss, rs_row);
                    for l in 0..GW {
                        il[l] = ip[l].get();
                    }
                    let mut d1c = [0u64; GW];
                    let d1p = grow(gcomp, dep1_row);
                    for l in 0..GW {
                        d1c[l] = d1p[l].get() >> 2;
                    }
                    let mut d2c = [0u64; GW];
                    let d2p = grow(gcomp, dep2_row);
                    for l in 0..GW {
                        d2c[l] = d2p[l].get() >> 2;
                    }
                    let mut rw = [0u64; GW];
                    let rwp = grow(gret, retw_row);
                    for l in 0..GW {
                        rw[l] = rwp[l].get() >> 2;
                    }

                    let mut start_a = [0u64; GW];
                    let mut fin_a = [0u64; GW];
                    let mut r_a = [0u64; GW];
                    let mut fc_a = [0u64; GW];
                    for l in 0..GW {
                        let mut cand = cog[l];
                        let mut reason = CLS_COMPUTE as u64;
                        if br[l] > cand {
                            cand = br[l];
                            reason = CLS_BRANCH as u64;
                        }
                        if rr[l] > cand {
                            cand = rr[l];
                            reason = rcl[l];
                        }
                        if il[l] > cand {
                            cand = il[l];
                            reason = CLS_COMPUTE as u64;
                        }
                        if oc[l] > cand {
                            cand = oc[l];
                            reason = lcl[l];
                        }
                        let adv = cand > cog[l];
                        let wrap = !adv & (dig[l] >= width as u64);
                        cog[l] = if adv { cand } else { cog[l] + wrap as u64 };
                        dig[l] = if adv | wrap { 1 } else { dig[l] + 1 };
                        let dispatch = cog[l];
                        debug_assert!(rr[l] <= dispatch, "ROB bound violated");
                        let start = (dispatch + 1).max(d1c[l]).max(d2c[l]);
                        let to_dram = all_dram | (is_split & (kq[l] < split));
                        let arrival = start + lat_llc;
                        // Closed-form DRAM update, inlined elementwise
                        // (bit-identical to [`DramLaneState::request_if`];
                        // the u64 fixed-point domain is guarded by the
                        // run's cycle bound at dispatch).
                        let arrival_fp = arrival << FP_SHIFT;
                        let qstart = arrival_fp.max(dram_nf[l]);
                        let delay = (qstart - arrival_fp) >> FP_SHIFT;
                        dram_nf[l] = if to_dram { qstart + dram_svc[l] } else { dram_nf[l] };
                        dram_reqs[l] += to_dram as u64;
                        dram_qcyc[l] += if to_dram { delay } else { 0 };
                        let done = arrival + delay + dram_base[l];
                        let dram_load = to_dram & is_load;
                        let lead = dram_load & (arrival >= lm_end[l]);
                        true_lm[l] += lead as u64;
                        lm_end[l] = if lead { done } else { lm_end[l] };
                        dram_loads[l] += dram_load as u64;
                        dram_stores[l] += (to_dram & !is_load) as u64;
                        let dram_fin = if is_load { done } else { start + 1 };
                        let fin = if to_dram { dram_fin } else { start + lat };
                        let dram_cls = if is_load { CLS_DRAM } else { CLS_COMPUTE } as u64;
                        let cls = if to_dram { dram_cls } else { dcls };
                        let final_class =
                            if cls == CLS_COMPUTE as u64 && reason == CLS_BRANCH as u64 {
                                CLS_BRANCH as u64
                            } else {
                                cls
                            };
                        br[l] = if mispred { fin + penalty } else { br[l] };
                        let base = lr[l].max(rw[l] + retw_live);
                        let r = fin.max(base);
                        debug_assert!(r >= lr[l], "retire must be monotone");
                        lr[l] = r;
                        let diff = r - base;
                        stall[0][l] += if final_class == 0 { diff } else { 0 };
                        stall[1][l] += if final_class == 1 { diff } else { 0 };
                        stall[2][l] += if final_class == 2 { diff } else { 0 };
                        stall[3][l] += if final_class == 3 { diff } else { 0 };
                        start_a[l] = start;
                        fin_a[l] = fin;
                        r_a[l] = r;
                        fc_a[l] = final_class;
                    }

                    let sp = grow_mut(giss, islot_row);
                    for l in 0..GW {
                        sp[l] = C::of(start_a[l]);
                    }
                    let cw = grow_mut(gcomp, slot_row);
                    for l in 0..GW {
                        cw[l] = C::of(fin_a[l] << 2 | fc_a[l]);
                    }
                    let rwr = grow_mut(gret, slot_row);
                    for l in 0..GW {
                        rwr[l] = C::of(r_a[l] << 2 | fc_a[l]);
                    }

                    if d.flags & FLAG_COLLECT != 0 {
                        for l in 0..GW {
                            if collect[l] {
                                self.llc_loads[kidx[l]].push((
                                    start_a[l],
                                    (block_start + j) as u32,
                                    d.code,
                                ));
                            }
                        }
                    }
                }
                gs.cog = cog;
                gs.dig = dig;
                gs.br = br;
                gs.lr = lr;
                gs.lm_end = lm_end;
                gs.true_lm = true_lm;
                gs.dram_loads = dram_loads;
                gs.dram_stores = dram_stores;
                gs.stall = stall;
                gs.dram_nf = dram_nf;
                gs.dram_reqs = dram_reqs;
                gs.dram_qcyc = dram_qcyc;
            }

            // Single-lane tail: every representative in the scalar loop,
            // the single leftover representative in the fast loop.
            for &k in tail_reps {
                let lane = &mut self.lanes[k];
                let cbase = if SCALAR { k * rows } else { tail_cbase };
                let ibase = if SCALAR { k * irows } else { tail_ibase };
                let complete = &mut rings.complete[cbase..cbase + rows];
                let retire = &mut rings.retire[cbase..cbase + rows];
                let issue = &mut rings.issue[ibase..ibase + irows];
                let class: &mut [u8] =
                    if SCALAR { &mut self.class[cbase..cbase + rows] } else { &mut [] };
                let lv = &mut self.llc_loads[k];
                let lane_collect = lane.collect;
                let ku8 = k as u8;
                // Hot lane state lives in locals for the whole block; the
                // stall counters live in a class-indexed array so
                // attribution is an unconditional indexed add (class 0,
                // compute, is the discarded dummy slot). The fast loop
                // additionally detaches the lane's DRAM channel state from
                // the SoA block so the closed-form update runs on
                // registers.
                let mut dq = if SCALAR { DramLaneState::idle() } else { self.dramv.lane_state(k) };
                let mut cog = lane.cycle_of_group;
                let mut dig = lane.dispatched_in_group;
                let mut br = lane.branch_resume;
                let mut lr = lane.last_retire;
                let mut stall = [0u64; 4];

                for (j, d) in dec.iter().enumerate() {
                    // ---- dispatch: fold the five constraints in priority
                    // order; each strictly-greater candidate takes both the
                    // cycle and the blame. In the fast loop the ROB/LSQ
                    // rows carry `cycle << 2 | class` in one cell, so the
                    // cycle and its blame class arrive in a single load.
                    let rob_idx = d.rob_row as usize & rmask;
                    let lsq_idx = d.lsq_row as usize & rmask;
                    let (rr, rob_cls) = if SCALAR {
                        (retire[rob_idx].get(), 0u8)
                    } else {
                        let p = retire[rob_idx].get();
                        (p >> 2, (p & 3) as u8)
                    };
                    let (oc, lsq_cls) = if SCALAR {
                        (complete[lsq_idx].get(), 0u8)
                    } else {
                        let p = complete[lsq_idx].get();
                        (p >> 2, (p & 3) as u8)
                    };
                    let il = issue[d.rs_row as usize & irmask].get();
                    let mut cand = cog;
                    let mut reason = CLS_COMPUTE;
                    if br > cand {
                        cand = br;
                        reason = CLS_BRANCH;
                    }
                    if rr > cand {
                        cand = rr;
                        // ROB head's class
                        reason = if SCALAR { class[rob_idx] } else { rob_cls };
                    }
                    if il > cand {
                        cand = il;
                        reason = CLS_COMPUTE; // scheduler pressure is core-sized
                    }
                    if oc > cand {
                        cand = oc;
                        reason = if SCALAR { class[lsq_idx] } else { lsq_cls };
                    }
                    // Group advance: an external stall opens a new group at
                    // `cand`; a full group opens the next cycle's group.
                    if cand > cog {
                        cog = cand;
                        dig = 0;
                    } else if dig >= width as u64 {
                        cog += 1;
                        dig = 0;
                    }
                    dig += 1;
                    let dispatch = cog;
                    // Record what stalled this instruction's *dispatch* so
                    // pure front-end (branch) starvation is attributable at
                    // retire.
                    let dispatch_reason = reason;
                    // First leg of the ring-bound proof: the ROB constraint
                    // pins dispatch at or after the ROB head's retirement
                    // (trivially true on the zero sentinel).
                    debug_assert!(rr <= dispatch, "ROB bound violated");

                    // ---- issue (operand readiness) ----
                    let dep1c = complete[d.dep1_row as usize & rmask].get();
                    let dep2c = complete[d.dep2_row as usize & rmask].get();
                    let (dep1c, dep2c) =
                        if SCALAR { (dep1c, dep2c) } else { (dep1c >> 2, dep2c >> 2) };
                    let start = (dispatch + 1).max(dep1c).max(dep2c);

                    // ---- complete ----
                    let to_dram =
                        d.path == PATH_ALL_DRAM || (d.path == PATH_SPLIT && ku8 < d.split);
                    let (fin, cls) = if to_dram {
                        let arrival = start + lat_llc;
                        let done =
                            if SCALAR { lane.dram.request(arrival) } else { dq.request(arrival) };
                        if d.flags & FLAG_LOAD != 0 {
                            lane.dram_loads += 1;
                            if arrival >= lane.lm_end {
                                lane.true_lm += 1;
                                lane.lm_end = done;
                            }
                            (done, CLS_DRAM)
                        } else {
                            // Stores retire from the store buffer; the fill
                            // only consumes DRAM bandwidth.
                            lane.dram_stores += 1;
                            (start + 1, CLS_COMPUTE)
                        }
                    } else {
                        (start + d.lat as u64, d.cls)
                    };
                    // Loads that reach the LLC (hit or miss) probe the ATD.
                    if d.flags & FLAG_COLLECT != 0 && lane_collect {
                        lv.push((start, (block_start + j) as u32, d.code));
                    }
                    let final_class = if cls == CLS_COMPUTE && dispatch_reason == CLS_BRANCH {
                        CLS_BRANCH
                    } else {
                        cls
                    };

                    // ---- branch redirect ----
                    br = if d.flags & FLAG_MISPREDICT != 0 { fin + penalty } else { br };

                    // ---- retire (in order, `width` per cycle) + fused
                    // stall attribution: the retire delay beyond the
                    // structural in-order slot `base` is charged to the
                    // delaying class. `retire[i − 1]` is the lane's own
                    // `last_retire`; the `retire[i − width] + 1` term drops
                    // out exactly via the sentinel + FLAG_RETW when
                    // `i < width`.
                    let retw_live = (d.flags & FLAG_RETW != 0) as u64;
                    let retw = retire[d.retw_row as usize & rmask].get();
                    let retw = if SCALAR { retw } else { retw >> 2 };
                    let base = lr.max(retw + retw_live);
                    let r = fin.max(base);
                    // Second leg of the ring-bound proof: retire is
                    // monotone.
                    debug_assert!(r >= lr, "retire must be monotone");
                    lr = r;
                    issue[d.islot_row as usize & irmask] = C::of(start);
                    if SCALAR {
                        complete[d.slot_row as usize & rmask] = C::of(fin);
                        retire[d.slot_row as usize & rmask] = C::of(r);
                        class[d.slot_row as usize & rmask] = final_class;
                    } else {
                        let cls_bits = final_class as u64;
                        complete[d.slot_row as usize & rmask] = C::of(fin << 2 | cls_bits);
                        retire[d.slot_row as usize & rmask] = C::of(r << 2 | cls_bits);
                    }
                    stall[(final_class & 3) as usize] += r - base;
                }

                if !SCALAR {
                    self.dramv.commit_lane(k, dq);
                }
                lane.cycle_of_group = cog;
                lane.dispatched_in_group = dig;
                lane.branch_resume = br;
                lane.last_retire = lr;
                lane.c_branch += stall[CLS_BRANCH as usize];
                lane.c_cache += stall[CLS_CACHE as usize];
                lane.c_dram += stall[CLS_DRAM as usize];
            }
        }

        // Write each group's end state back to its representative lanes
        // and commit the DRAM horizons (pads — positions past `len` — die
        // here, unobserved).
        for gs in &groups {
            for l in 0..gs.len {
                let k = gs.kidx[l];
                self.dramv.commit_lane(
                    k,
                    DramLaneState::from_parts(
                        gs.dram_base[l],
                        gs.dram_svc[l],
                        gs.dram_nf[l],
                        gs.dram_reqs[l],
                        gs.dram_qcyc[l],
                    ),
                );
                let lane = &mut self.lanes[k];
                lane.cycle_of_group = gs.cog[l];
                lane.dispatched_in_group = gs.dig[l];
                lane.branch_resume = gs.br[l];
                lane.last_retire = gs.lr[l];
                lane.lm_end = gs.lm_end[l];
                lane.true_lm = gs.true_lm[l];
                lane.dram_loads = gs.dram_loads[l];
                lane.dram_stores = gs.dram_stores[l];
                lane.c_branch += gs.stall[CLS_BRANCH as usize][l];
                lane.c_cache += gs.stall[CLS_CACHE as usize][l];
                lane.c_dram += gs.stall[CLS_DRAM as usize][l];
            }
        }

        // Clone lanes copy their representative's end state: every u64
        // counter is provably equal (see the dedup comment), and the
        // result conversion below divides by each lane's *own* frequency.
        for k in 0..nl {
            let r = self.rep[k];
            if r != k {
                let (head, tail) = self.lanes.split_at_mut(k);
                let (src, dst) = (&head[r], &mut tail[0]);
                dst.cycle_of_group = src.cycle_of_group;
                dst.dispatched_in_group = src.dispatched_in_group;
                dst.branch_resume = src.branch_resume;
                dst.last_retire = src.last_retire;
                dst.c_branch = src.c_branch;
                dst.c_cache = src.c_cache;
                dst.c_dram = src.c_dram;
                dst.dram_loads = src.dram_loads;
                dst.dram_stores = src.dram_stores;
                dst.true_lm = src.true_lm;
                dst.lm_end = src.lm_end;
            }
        }

        // Feed the MLP monitors in LLC arrival order, one per monitored
        // lane, in lane order. A clone lane's stream is its
        // representative's (they are identical by construction).
        if let Some(mons) = monitors {
            let mut mi = 0usize;
            for (k, spec) in specs.iter().enumerate() {
                if !spec.monitor {
                    continue;
                }
                let mon = &mut mons[mi];
                mi += 1;
                let lv = &mut self.llc_loads[self.rep[k]];
                lv.sort_by_key(|&(t, idx, _)| (t, idx));
                for &(_, idx, code) in lv.iter() {
                    mon.on_llc_load(idx as u64, llc_stack_dist_of(code));
                }
            }
            assert_eq!(mi, mons.len(), "one monitor per monitored lane");
        }

        self.lanes
            .iter()
            .map(|lane| {
                let cycles = lane.last_retire.max(1);
                let to_s = |c: u64| c as f64 / lane.freq_hz;
                let time_s = to_s(cycles);
                let t_branch_s = to_s(lane.c_branch);
                let t_cache_s = to_s(lane.c_cache);
                let tmem_s = to_s(lane.c_dram);
                let t0_s = (time_s - t_branch_s - t_cache_s - tmem_s).max(0.0);
                let ipc = n as f64 / cycles as f64;
                TimingResult {
                    insts: n as u64,
                    cycles,
                    time_s,
                    t0_s,
                    t_branch_s,
                    t_cache_s,
                    tmem_s,
                    dram_loads: lane.dram_loads,
                    dram_stores: lane.dram_stores,
                    true_leading_misses: lane.true_lm,
                    mlp: if lane.true_lm > 0 {
                        lane.dram_loads as f64 / lane.true_lm as f64
                    } else {
                        1.0
                    },
                    ipc,
                    util: ipc / width as f64,
                }
            })
            .collect()
    }
}
