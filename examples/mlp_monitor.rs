//! The paper's hardware contribution in isolation: the ATD extension that
//! estimates leading misses for every (core size, LLC allocation) pair
//! (Fig. 4), validated against the ground-truth out-of-order timing model.
//!
//! Run with: `cargo run --release --example mlp_monitor`

use triad::arch::{CacheGeometry, CoreSize};
use triad::cache::{atd::COLD, classify_warm, MlpMonitor};
use triad::trace::{MemRegion, PhaseSpec};
use triad::uarch::{simulate_with_monitor, TimingConfig};

fn main() {
    // Fig. 4's worked example: four loads, all missing allocation w.
    let mut mon = MlpMonitor::table1();
    for idx in [5u64, 33, 20, 90] {
        mon.on_llc_load(idx, COLD);
    }
    println!("Fig. 4 worked example (LD1@5, LD3@33, LD2@20, LD4@90):");
    for c in CoreSize::ALL {
        println!(
            "  {c} core (ROB {:>3}): {} leading misses, {} overlapping",
            c.rob(),
            mon.lm_count(c, 8),
            mon.ov_count(c, 8)
        );
    }
    println!("  (paper: S counts 3 LMs; M counts 2)");

    // A streaming phase: estimates vs ground truth across core sizes.
    let spec = PhaseSpec {
        tag: 42,
        load_frac: 0.20,
        store_frac: 0.04,
        branch_frac: 0.10,
        longop_frac: 0.20,
        mispredict_rate: 0.01,
        dep_mean: 10.0,
        dep2_prob: 0.3,
        chase_frac: 0.0,
        burst: 1.0,
        addr_dep: 0.05,
        regions: vec![MemRegion::reuse_kib(8, 0.85), MemRegion::stream_mib(12, 0.15)],
    };
    let geom = CacheGeometry::table1_scaled(4, 16);
    let trace = spec.generate(200_000, 7);
    let ct = classify_warm(&trace, &geom, 100_000);
    println!("\nstreaming phase — estimated vs true MLP at 8 ways:");
    for c in CoreSize::ALL {
        let mut mon = MlpMonitor::table1();
        let r = simulate_with_monitor(
            &trace.insts[100_000..],
            &ct,
            &TimingConfig::table1(c, 2.0e9, 8),
            &mut mon,
        );
        println!("  {c}: monitor estimate {:.2}, ground truth {:.2}", mon.mlp(c, 8), r.mlp);
    }
    println!(
        "\nstorage cost: {} bits per core (paper: < 300 bytes)",
        MlpMonitor::table1().storage_bits()
    );
}
