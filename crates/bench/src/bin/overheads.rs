//! §III-E: RM algorithm overheads — operation counts per invocation versus
//! core count, plus the fixed hardware-transition costs.
use triad_bench::db;
use triad_cache::MlpMonitor;
use triad_rm::RmKind;
use triad_sim::engine::{SimConfig, SimModel, Simulator};
use triad_sim::workload::generate_workloads;
use triad_arch::{DVFS_TRANSITION_ENERGY_J, DVFS_TRANSITION_TIME_S};

fn main() {
    let db = db();
    println!("SEC. III-E: RM algorithm overheads");
    println!("==================================");
    println!("{:<8} {:>10} {:>10} {:>14}", "cores", "RM", "ops/invoc", "~instructions");
    for n in [2usize, 4, 8] {
        let wl = &generate_workloads(n, 1, 7)[0];
        for rm in [RmKind::Rm2, RmKind::Rm3] {
            let cfg = SimConfig::evaluation(rm, SimModel::Perfect);
            let instr_per_op = cfg.rm_instr_per_op;
            let sim = Simulator::new(db, n, cfg);
            let names: Vec<&str> = wl.apps.to_vec();
            let r = sim.run(&names);
            let ops = r.rm_ops as f64 / r.rm_invocations.max(1) as f64;
            println!(
                "{:<8} {:>10} {:>10.0} {:>13.0}K",
                n,
                rm.label(),
                ops,
                ops * instr_per_op / 1000.0
            );
        }
    }
    println!("\npaper: RM3 = 51K/73K/100K and RM2 = 18K/40K/67K instructions for 2/4/8 cores");
    println!("DVFS transition: {} us, {} uJ (Samsung Exynos 4210 measurements)",
        DVFS_TRANSITION_TIME_S * 1e6, DVFS_TRANSITION_ENERGY_J * 1e6);
    let mon = MlpMonitor::table1();
    println!("ATD extension storage: {} bits (~{} bytes/core; paper: <300 bytes)",
        mon.storage_bits(), mon.storage_bits() / 8);
}
