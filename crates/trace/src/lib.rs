//! # triad-trace — synthetic workload substrate (SPEC CPU2006 stand-in)
//!
//! The paper evaluates on the 27 usable SPEC CPU2006 benchmarks (calculix and
//! milc excluded), each reduced by SimPoint to a set of program *phases* that
//! are simulated in detail over every resource configuration. SPEC binaries
//! and traces are proprietary, so this crate provides **deterministic
//! synthetic application models**: each of the 27 named applications is a set
//! of parameterized phase generators ([`PhaseSpec`]) plus a per-interval
//! phase sequence, producing instruction traces ([`Trace`]) with controlled
//!
//! * instruction mix (loads/stores/branches/long-latency ops),
//! * instruction-level parallelism (dependency-distance distribution),
//! * memory-level parallelism (pointer-chase fraction, miss spacing),
//! * cache sensitivity (working-set mixture spanning the 0.5–4 MB range the
//!   2–16-way LLC allocations cover), and
//! * branch behavior (misprediction rate).
//!
//! The application library ([`apps::suite`]) is calibrated so that the
//! paper's own classification criteria (§IV-C) reproduce Table II's category
//! census: 5 CS-PS, 7 CS-PI, 7 CI-PS and 8 CI-PI applications.
//!
//! Everything is seeded; identical seeds produce identical traces.

pub mod apps;
pub mod bbv;
pub mod inst;
pub mod phase;

pub use apps::{by_category, by_name, suite, AppSpec, Category};
pub use inst::{Inst, InstKind, Trace};
pub use phase::{AccessPattern, MemRegion, PhaseId, PhaseSpec};
