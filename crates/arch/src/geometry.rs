//! Cache-hierarchy geometry (Table I).
//!
//! * L1-I / L1-D: 32 KB, 4-way, private;
//! * L2: 256 KB, 8-way, private;
//! * L3 (LLC): shared, 2 MB × cores capacity, 8 × cores associativity,
//!   way-partitioned with a per-core allowed range of 2–16 ways
//!   (256 KB–4 MB);
//! * 64-byte blocks, LRU replacement everywhere.

/// Cache block (line) size in bytes. Table I: 64 B.
pub const BLOCK_BYTES: usize = 64;

/// Geometry of a single cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevelGeometry {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheLevelGeometry {
    /// Number of sets (`capacity / (ways × block)`), always a power of two
    /// for Table I configurations.
    #[inline]
    pub const fn sets(&self) -> usize {
        self.capacity_bytes / (self.ways * BLOCK_BYTES)
    }

    /// Capacity of a single way in bytes.
    #[inline]
    pub const fn way_bytes(&self) -> usize {
        self.capacity_bytes / self.ways
    }
}

/// The full private + shared cache geometry for an `n`-core system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Private L1 instruction cache (32 KB, 4-way). Modeled only in energy
    /// and hit-latency aggregates; the trace generators operate at the
    /// data-access level.
    pub l1i: CacheLevelGeometry,
    /// Private L1 data cache (32 KB, 4-way).
    pub l1d: CacheLevelGeometry,
    /// Private unified L2 (256 KB, 8-way).
    pub l2: CacheLevelGeometry,
    /// Shared LLC (2 MB and 8 ways per core).
    pub llc: CacheLevelGeometry,
    /// Minimum LLC ways a single core may be allocated (Table I: 2).
    pub min_ways_per_core: usize,
    /// Maximum LLC ways a single core may be allocated (Table I: 16).
    pub max_ways_per_core: usize,
    /// Baseline (even) LLC allocation per core (8 ways = 2 MB).
    pub baseline_ways_per_core: usize,
}

impl CacheGeometry {
    /// Table I geometry for an `n_cores`-core system.
    pub const fn table1(n_cores: usize) -> Self {
        CacheGeometry {
            l1i: CacheLevelGeometry { capacity_bytes: 32 * 1024, ways: 4 },
            l1d: CacheLevelGeometry { capacity_bytes: 32 * 1024, ways: 4 },
            l2: CacheLevelGeometry { capacity_bytes: 256 * 1024, ways: 8 },
            llc: CacheLevelGeometry {
                capacity_bytes: 2 * 1024 * 1024 * n_cores,
                ways: 8 * n_cores,
            },
            min_ways_per_core: 2,
            max_ways_per_core: 16,
            baseline_ways_per_core: 8,
        }
    }

    /// A capacity-scaled variant of [`CacheGeometry::table1`] used by the
    /// detailed simulator: every capacity is divided by `factor` while the
    /// way counts (and therefore the whole partitioning problem) stay
    /// identical. Miss-curve *shape* versus way count is preserved because
    /// it depends on working-set-to-way-capacity ratios, which the trace
    /// generator scales by the same factor. This lets short synthetic
    /// traces reach steady state the way the paper's 100M-instruction
    /// windows do on full-size caches.
    pub const fn table1_scaled(n_cores: usize, factor: usize) -> Self {
        CacheGeometry {
            l1i: CacheLevelGeometry { capacity_bytes: 32 * 1024 / factor, ways: 4 },
            l1d: CacheLevelGeometry { capacity_bytes: 32 * 1024 / factor, ways: 4 },
            l2: CacheLevelGeometry { capacity_bytes: 256 * 1024 / factor, ways: 8 },
            llc: CacheLevelGeometry {
                capacity_bytes: 2 * 1024 * 1024 * n_cores / factor,
                ways: 8 * n_cores,
            },
            min_ways_per_core: 2,
            max_ways_per_core: 16,
            baseline_ways_per_core: 8,
        }
    }

    /// Total LLC associativity `A` — the global resource constraint of the
    /// partitioning problem (`Σ_j w_j = A`).
    #[inline]
    pub const fn total_llc_ways(&self) -> usize {
        self.llc.ways
    }

    /// Clamped per-core allocation domain, accounting for the fact that on a
    /// 2-core system a core can receive at most `A − min` ways (the other
    /// core must keep its minimum).
    pub fn per_core_way_range(&self, n_cores: usize) -> std::ops::RangeInclusive<usize> {
        let hi = self
            .max_ways_per_core
            .min(self.total_llc_ways() - (n_cores - 1) * self.min_ways_per_core);
        self.min_ways_per_core..=hi
    }

    /// Number of distinct per-core allocations (the paper's "16 possible LLC
    /// allocations per core" counts 2..=16 on large systems, fewer when the
    /// total associativity constrains it).
    pub fn allocations_per_core(&self, n_cores: usize) -> usize {
        let r = self.per_core_way_range(n_cores);
        r.end() - r.start() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_private_levels() {
        let g = CacheGeometry::table1(4);
        assert_eq!(g.l1d.capacity_bytes, 32 * 1024);
        assert_eq!(g.l1d.ways, 4);
        assert_eq!(g.l1d.sets(), 128);
        assert_eq!(g.l2.capacity_bytes, 256 * 1024);
        assert_eq!(g.l2.ways, 8);
        assert_eq!(g.l2.sets(), 512);
    }

    #[test]
    fn llc_scales_with_cores() {
        for n in [2usize, 4, 8] {
            let g = CacheGeometry::table1(n);
            assert_eq!(g.llc.capacity_bytes, 2 * 1024 * 1024 * n);
            assert_eq!(g.llc.ways, 8 * n);
            // One way is always 256 KB regardless of core count.
            assert_eq!(g.llc.way_bytes(), 256 * 1024);
        }
    }

    #[test]
    fn way_range_two_cores_is_2_to_14() {
        // 2 cores: A = 16; a core may take at most 16 − 2 = 14 ways.
        let g = CacheGeometry::table1(2);
        assert_eq!(g.per_core_way_range(2), 2..=14);
        assert_eq!(g.allocations_per_core(2), 13);
    }

    #[test]
    fn way_range_four_and_eight_cores_is_2_to_16() {
        let g4 = CacheGeometry::table1(4);
        assert_eq!(g4.per_core_way_range(4), 2..=16);
        assert_eq!(g4.allocations_per_core(4), 15);
        let g8 = CacheGeometry::table1(8);
        assert_eq!(g8.per_core_way_range(8), 2..=16);
    }

    #[test]
    fn baseline_allocation_is_8_ways_2mb() {
        let g = CacheGeometry::table1(4);
        assert_eq!(g.baseline_ways_per_core, 8);
        assert_eq!(g.baseline_ways_per_core * g.llc.way_bytes(), 2 * 1024 * 1024);
    }

    #[test]
    fn sets_are_powers_of_two() {
        for n in [2usize, 4, 8] {
            let g = CacheGeometry::table1(n);
            for lvl in [g.l1i, g.l1d, g.l2, g.llc] {
                assert!(lvl.sets().is_power_of_two(), "{lvl:?}");
            }
        }
    }
}
