//! The one-pass out-of-order timing model.

use triad_arch::{CoreParams, CoreSize};
use triad_cache::{ClassifiedTrace, MlpMonitor};
use triad_mem::{DramParams, DramQueue};
use triad_trace::InstKind;

/// Configuration of one timing run.
#[derive(Debug, Clone, Copy)]
pub struct TimingConfig {
    /// Core size under simulation.
    pub core: CoreSize,
    /// Core clock frequency in Hz.
    pub freq_hz: f64,
    /// LLC way allocation (decides which LLC accesses go to DRAM).
    pub ways: usize,
    /// L1D hit latency, cycles.
    pub lat_l1: u32,
    /// L2 hit latency, cycles.
    pub lat_l2: u32,
    /// LLC hit latency, cycles.
    pub lat_llc: u32,
    /// Long-latency arithmetic latency, cycles.
    pub lat_longop: u32,
    /// Front-end refill penalty after a mispredicted branch, cycles.
    pub mispredict_penalty: u32,
    /// DRAM parameters.
    pub dram: DramParams,
}

impl TimingConfig {
    /// Table I-flavored latencies for a core/frequency/allocation triple.
    pub fn table1(core: CoreSize, freq_hz: f64, ways: usize) -> Self {
        TimingConfig {
            core,
            freq_hz,
            ways,
            lat_l1: 3,
            lat_l2: 12,
            lat_llc: 30,
            lat_longop: 4,
            mispredict_penalty: 12,
            dram: DramParams::table1(),
        }
    }
}

/// Observables produced by one timing run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimingResult {
    /// Instructions simulated.
    pub insts: u64,
    /// Total cycles until the last instruction retires.
    pub cycles: u64,
    /// Wall-clock time, seconds (`cycles / freq`).
    pub time_s: f64,
    /// Width-scalable compute time (Eq. 1's `T0`), seconds.
    pub t0_s: f64,
    /// Branch-misprediction stall time, seconds (part of `T1`).
    pub t_branch_s: f64,
    /// L2/LLC-hit stall time, seconds (part of `T1`).
    pub t_cache_s: f64,
    /// DRAM stall time (Eq. 1's `Tmem`), seconds.
    pub tmem_s: f64,
    /// Loads serviced by DRAM.
    pub dram_loads: u64,
    /// Stores whose fill reached DRAM.
    pub dram_stores: u64,
    /// Ground-truth leading misses (loads whose DRAM access began with no
    /// other load miss outstanding).
    pub true_leading_misses: u64,
    /// Average MLP: DRAM loads per leading miss (1.0 when no misses).
    pub mlp: f64,
    /// Retired instructions per cycle.
    pub ipc: f64,
    /// Pipeline utilization: `ipc / D(c)` — drives the dynamic-power model.
    pub util: f64,
}

impl TimingResult {
    /// `T1 = T_BP + T_Cache` from Eq. 1.
    pub fn t1_s(&self) -> f64 {
        self.t_branch_s + self.t_cache_s
    }

    /// Total DRAM line transfers (loads + store fills).
    pub fn dram_accesses(&self) -> u64 {
        self.dram_loads + self.dram_stores
    }
}

/// Reason the completion of an instruction was late (for stall attribution).
#[derive(Clone, Copy, PartialEq)]
enum Class {
    Compute,
    Branch,
    CacheHit,
    Dram,
}

/// Simulate `trace` (classified as `ct`) under `cfg`.
///
/// `trace` must be the *detailed* portion matching `ct` (i.e. generated with
/// the same warmup split passed to `classify_warm`).
pub fn simulate(
    trace: &[triad_trace::Inst],
    ct: &ClassifiedTrace,
    cfg: &TimingConfig,
) -> TimingResult {
    simulate_inner(trace, ct, cfg, None)
}

/// [`simulate`], additionally feeding every LLC **load** (in LLC arrival
/// order, with its program-order instruction index and ATD stack distance)
/// into the proposed MLP monitor — emulating the Fig. 4 hardware attached
/// to a core running at this configuration.
pub fn simulate_with_monitor(
    trace: &[triad_trace::Inst],
    ct: &ClassifiedTrace,
    cfg: &TimingConfig,
    monitor: &mut MlpMonitor,
) -> TimingResult {
    simulate_inner(trace, ct, cfg, Some(monitor))
}

fn simulate_inner(
    trace: &[triad_trace::Inst],
    ct: &ClassifiedTrace,
    cfg: &TimingConfig,
    monitor: Option<&mut MlpMonitor>,
) -> TimingResult {
    let n = trace.len();
    assert_eq!(n, ct.len(), "trace and classification must align");
    if n == 0 {
        return TimingResult::default();
    }
    let CoreParams { issue_width, rob, rs, lsq } = cfg.core.params();
    let width = issue_width as usize;
    let rob = rob as usize;
    let rs = rs as usize;
    let lsq = lsq as usize;

    let mut dispatch = vec![0u64; n];
    let mut issue = vec![0u64; n];
    let mut complete = vec![0u64; n];
    let mut retire = vec![0u64; n];
    let mut class = vec![Class::Compute; n];
    // Memory-op ordinal ring for the LSQ constraint.
    let mut memops: Vec<usize> = Vec::with_capacity(n / 2);
    // LLC loads in (issue-cycle, program-index, stack-code) form.
    let mut llc_loads: Vec<(u64, u32, u8)> = Vec::new();

    let mut dram = DramQueue::new(cfg.dram, cfg.freq_hz);
    let mut branch_resume = 0u64; // dispatch blocked until here after mispredicts
    let mut cycle_of_group = 0u64; // current dispatch cycle
    let mut dispatched_in_group = 0usize;

    let (mut dram_loads, mut dram_stores, mut true_lm) = (0u64, 0u64, 0u64);
    let mut lm_end = 0u64; // completion of the last counted leading miss

    for i in 0..n {
        let inst = &trace[i];
        // ---- dispatch ----
        let mut cand = cycle_of_group;
        let mut reason = Class::Compute;
        if branch_resume > cand {
            cand = branch_resume;
            reason = Class::Branch;
        }
        if i >= rob {
            let lim = retire[i - rob];
            if lim > cand {
                cand = lim;
                reason = class[i - rob]; // blocked on the ROB head's class
            }
        }
        if i >= rs {
            let lim = issue[i - rs];
            if lim > cand {
                cand = lim;
                reason = Class::Compute; // scheduler pressure is core-sized
            }
        }
        if inst.kind.is_mem() {
            if memops.len() >= lsq {
                let oldest = memops[memops.len() - lsq];
                let lim = complete[oldest];
                if lim > cand {
                    cand = lim;
                    reason = class[oldest];
                }
            }
            memops.push(i);
        }
        if cand > cycle_of_group {
            cycle_of_group = cand;
            dispatched_in_group = 0;
        } else if dispatched_in_group >= width {
            cycle_of_group += 1;
            dispatched_in_group = 0;
        }
        dispatch[i] = cycle_of_group;
        dispatched_in_group += 1;
        // Record what stalled this instruction's *dispatch* so that pure
        // front-end (branch) starvation is attributable at retire time.
        let dispatch_reason = reason;

        // ---- issue (operand readiness) ----
        // Producers before the detailed window (dep distance > i) completed
        // during warmup and impose no constraint.
        let mut start = dispatch[i] + 1;
        if inst.dep1 > 0 && (inst.dep1 as usize) <= i {
            start = start.max(complete[i - inst.dep1 as usize]);
        }
        if inst.dep2 > 0 && (inst.dep2 as usize) <= i {
            start = start.max(complete[i - inst.dep2 as usize]);
        }
        issue[i] = start;

        // ---- complete ----
        let (fin, cls) = match inst.kind {
            InstKind::Alu => (start + 1, Class::Compute),
            InstKind::LongOp => (start + cfg.lat_longop as u64, Class::Compute),
            InstKind::Branch => (start + 1, Class::Compute),
            InstKind::Load | InstKind::Store => match ct.service_level(i, cfg.ways) {
                1 => (start + cfg.lat_l1 as u64, Class::Compute),
                2 => (start + cfg.lat_l2 as u64, Class::CacheHit),
                3 => (start + cfg.lat_llc as u64, Class::CacheHit),
                _ => {
                    // DRAM access: LLC lookup first, then the memory channel.
                    let arrival = start + cfg.lat_llc as u64;
                    let done = dram.request(arrival);
                    if inst.kind == InstKind::Load {
                        dram_loads += 1;
                        if arrival >= lm_end {
                            true_lm += 1;
                            lm_end = done;
                        }
                        (done, Class::Dram)
                    } else {
                        // Stores retire from the store buffer; the fill only
                        // consumes DRAM bandwidth.
                        dram_stores += 1;
                        (start + 1, Class::Compute)
                    }
                }
            },
        };
        // Loads that reach the LLC (hit or miss) probe the ATD.
        if inst.kind == InstKind::Load && ct.is_llc_access(i) {
            llc_loads.push((start, i as u32, ct.code(i)));
        }
        complete[i] = fin;
        class[i] = if cls == Class::Compute && dispatch_reason == Class::Branch {
            Class::Branch
        } else {
            cls
        };

        // ---- branch redirect ----
        if inst.kind == InstKind::Branch && inst.mispredict {
            branch_resume = fin + cfg.mispredict_penalty as u64;
        }

        // ---- retire (in order, `width` per cycle) ----
        let mut r = complete[i];
        if i >= 1 {
            r = r.max(retire[i - 1]);
        }
        if i >= width {
            r = r.max(retire[i - width] + 1);
        }
        retire[i] = r;
    }

    // ---- stall attribution over retire slots ----
    // Each instruction's retire delay beyond its structural in-order slot is
    // charged to the class of the instruction that caused the delay.
    let (mut c_branch, mut c_cache, mut c_dram) = (0u64, 0u64, 0u64);
    for i in 0..n {
        let mut base = 0u64;
        if i >= 1 {
            base = base.max(retire[i - 1]);
        }
        if i >= width {
            base = base.max(retire[i - width] + 1);
        }
        let gap = retire[i].saturating_sub(base);
        if gap == 0 {
            continue;
        }
        match class[i] {
            Class::Dram => c_dram += gap,
            Class::CacheHit => c_cache += gap,
            Class::Branch => c_branch += gap,
            Class::Compute => {}
        }
    }

    let cycles = retire[n - 1].max(1);
    let to_s = |c: u64| c as f64 / cfg.freq_hz;
    let time_s = to_s(cycles);
    let t_branch_s = to_s(c_branch);
    let t_cache_s = to_s(c_cache);
    let tmem_s = to_s(c_dram);
    let t0_s = (time_s - t_branch_s - t_cache_s - tmem_s).max(0.0);
    let ipc = n as f64 / cycles as f64;

    // Feed the MLP monitor in LLC arrival order.
    if let Some(mon) = monitor {
        llc_loads.sort_by_key(|&(t, idx, _)| (t, idx));
        for &(_, idx, code) in &llc_loads {
            // `code` ≤ 15 is a stack distance; 253 (cold) maps to COLD.
            let dist = if code <= 15 { code } else { triad_cache::atd::COLD };
            mon.on_llc_load(idx as u64, dist);
        }
    }

    TimingResult {
        insts: n as u64,
        cycles,
        time_s,
        t0_s,
        t_branch_s,
        t_cache_s,
        tmem_s,
        dram_loads,
        dram_stores,
        true_leading_misses: true_lm,
        mlp: if true_lm > 0 { dram_loads as f64 / true_lm as f64 } else { 1.0 },
        ipc,
        util: ipc / width as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_arch::CacheGeometry;
    use triad_cache::classify;
    use triad_trace::{AccessPattern, Inst, MemRegion, PhaseSpec, Trace};

    fn geom() -> CacheGeometry {
        CacheGeometry::table1_scaled(4, 16)
    }

    fn run(trace: &Trace, core: CoreSize, freq: f64, ways: usize) -> TimingResult {
        let ct = classify(trace, &geom());
        simulate(&trace.insts, &ct, &TimingConfig::table1(core, freq, ways))
    }

    fn compute_spec(dep_mean: f64) -> PhaseSpec {
        PhaseSpec {
            tag: 77,
            load_frac: 0.0,
            store_frac: 0.0,
            branch_frac: 0.0,
            longop_frac: 0.0,
            mispredict_rate: 0.0,
            dep_mean,
            dep2_prob: 0.0,
            chase_frac: 0.0,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![],
        }
    }

    #[test]
    fn independent_alu_stream_reaches_full_width() {
        // dep distances far beyond the window → IPC ≈ D(c).
        let t = compute_spec(512.0).generate(40_000, 1);
        for c in CoreSize::ALL {
            let r = run(&t, c, 2.0e9, 8);
            let d = c.dispatch_width() as f64;
            assert!(r.ipc > 0.9 * d, "{c}: ipc {} vs width {d}", r.ipc);
            assert!(r.ipc <= d + 1e-9);
        }
    }

    #[test]
    fn serial_chain_is_width_independent() {
        // Every instruction depends on the previous one: IPC ≈ 1 (latency 1)
        // regardless of core size.
        let mut insts = vec![Inst::alu()];
        for _ in 1..20_000 {
            insts.push(Inst { dep1: 1, ..Inst::alu() });
        }
        let t = Trace { insts };
        let s = run(&t, CoreSize::S, 2.0e9, 8);
        let l = run(&t, CoreSize::L, 2.0e9, 8);
        assert!((s.ipc - 1.0).abs() < 0.05, "S ipc {}", s.ipc);
        assert!((l.ipc - 1.0).abs() < 0.05, "L ipc {}", l.ipc);
    }

    #[test]
    fn time_scales_inversely_with_frequency_for_compute() {
        let t = compute_spec(16.0).generate(30_000, 2);
        let t1 = run(&t, CoreSize::M, 1.0e9, 8);
        let t2 = run(&t, CoreSize::M, 2.0e9, 8);
        assert_eq!(t1.cycles, t2.cycles, "compute cycles are f-independent");
        assert!((t1.time_s / t2.time_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn memory_time_does_not_scale_with_frequency() {
        // DRAM-bound: doubling f must not halve time.
        let spec = PhaseSpec {
            tag: 9,
            load_frac: 0.35,
            store_frac: 0.0,
            branch_frac: 0.0,
            longop_frac: 0.0,
            mispredict_rate: 0.0,
            dep_mean: 8.0,
            dep2_prob: 0.0,
            chase_frac: 0.9,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![MemRegion {
                blocks: 1 << 22,
                weight: 1.0,
                pattern: AccessPattern::Uniform,
            }],
        };
        let t = spec.generate(30_000, 3);
        let lo = run(&t, CoreSize::M, 1.0e9, 2);
        let hi = run(&t, CoreSize::M, 3.25e9, 2);
        let speedup = lo.time_s / hi.time_s;
        assert!(speedup < 1.6, "memory-bound speedup should be far below 3.25x: {speedup}");
        assert!(hi.tmem_s > 0.5 * hi.time_s, "run must be memory-dominated");
    }

    #[test]
    fn chase_loads_serialize_misses() {
        let mk = |chase: f64, tag: u64| PhaseSpec {
            tag,
            load_frac: 0.35,
            store_frac: 0.0,
            branch_frac: 0.0,
            longop_frac: 0.0,
            mispredict_rate: 0.0,
            dep_mean: 8.0,
            dep2_prob: 0.0,
            chase_frac: chase,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![MemRegion {
                blocks: 1 << 22,
                weight: 1.0,
                pattern: AccessPattern::Uniform,
            }],
        };
        let chasing = mk(0.95, 1).generate(30_000, 4);
        let indep = mk(0.0, 1).generate(30_000, 4);
        let rc = run(&chasing, CoreSize::L, 2.0e9, 2);
        let ri = run(&indep, CoreSize::L, 2.0e9, 2);
        assert!(rc.mlp < 1.6, "chase MLP should be near 1: {}", rc.mlp);
        assert!(ri.mlp > 3.0 * rc.mlp, "independent MLP {} vs chase {}", ri.mlp, rc.mlp);
        assert!(ri.time_s < rc.time_s, "overlap must speed execution up");
    }

    #[test]
    fn mlp_grows_with_core_size_for_independent_misses() {
        let spec = PhaseSpec {
            tag: 10,
            load_frac: 0.30,
            store_frac: 0.10,
            branch_frac: 0.0,
            longop_frac: 0.0,
            mispredict_rate: 0.0,
            dep_mean: 12.0,
            dep2_prob: 0.0,
            chase_frac: 0.0,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![
                MemRegion { blocks: 128, weight: 0.75, pattern: AccessPattern::Uniform },
                MemRegion { blocks: 1 << 22, weight: 0.25, pattern: AccessPattern::Uniform },
            ],
        };
        let t = spec.generate(40_000, 5);
        let s = run(&t, CoreSize::S, 2.0e9, 8);
        let m = run(&t, CoreSize::M, 2.0e9, 8);
        let l = run(&t, CoreSize::L, 2.0e9, 8);
        assert!(s.mlp < m.mlp && m.mlp < l.mlp, "S={} M={} L={}", s.mlp, m.mlp, l.mlp);
        assert!(l.mlp >= 2.0, "L must reach MLP ≥ 2: {}", l.mlp);
        assert!(l.time_s < s.time_s, "more MLP must shorten execution");
    }

    #[test]
    fn more_ways_never_slow_execution() {
        let spec = PhaseSpec {
            tag: 11,
            load_frac: 0.3,
            store_frac: 0.1,
            branch_frac: 0.1,
            longop_frac: 0.05,
            mispredict_rate: 0.02,
            dep_mean: 7.0,
            dep2_prob: 0.2,
            chase_frac: 0.3,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![
                MemRegion::reuse_kib(8, 0.6),
                MemRegion::reuse_kib(192, 0.4), // knee inside the range (scaled)
            ],
        };
        let t = spec.generate(40_000, 6);
        let ct = classify(&t, &geom());
        let mut prev = f64::INFINITY;
        for w in [2usize, 4, 8, 12, 16] {
            let r = simulate(&t.insts, &ct, &TimingConfig::table1(CoreSize::M, 2.0e9, w));
            assert!(r.time_s <= prev * 1.001, "w={w}: {} vs {}", r.time_s, prev);
            prev = r.time_s;
        }
    }

    #[test]
    fn mispredicts_cost_time_and_are_attributed_to_branches() {
        let mk = |mr: f64| PhaseSpec {
            tag: 12,
            load_frac: 0.0,
            store_frac: 0.0,
            branch_frac: 0.25,
            longop_frac: 0.0,
            mispredict_rate: mr,
            dep_mean: 12.0,
            dep2_prob: 0.0,
            chase_frac: 0.0,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![],
        };
        let clean = mk(0.0).generate(30_000, 7);
        let dirty = mk(0.10).generate(30_000, 7);
        let rc = run(&clean, CoreSize::M, 2.0e9, 8);
        let rd = run(&dirty, CoreSize::M, 2.0e9, 8);
        assert!(rd.time_s > rc.time_s * 1.2, "{} vs {}", rd.time_s, rc.time_s);
        assert!(rd.t_branch_s > 0.0);
        assert!(rc.t_branch_s <= rc.time_s * 0.01);
    }

    #[test]
    fn decomposition_sums_to_total() {
        let spec = PhaseSpec {
            tag: 13,
            load_frac: 0.3,
            store_frac: 0.1,
            branch_frac: 0.15,
            longop_frac: 0.1,
            mispredict_rate: 0.03,
            dep_mean: 6.0,
            dep2_prob: 0.3,
            chase_frac: 0.2,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![MemRegion::reuse_kib(8, 0.5), MemRegion::reuse_kib(256, 0.5)],
        };
        let t = spec.generate(30_000, 8);
        let r = run(&t, CoreSize::M, 2.0e9, 8);
        let sum = r.t0_s + r.t_branch_s + r.t_cache_s + r.tmem_s;
        assert!((sum - r.time_s).abs() < 1e-12, "{sum} vs {}", r.time_s);
        assert!(r.t0_s > 0.0);
    }

    #[test]
    fn lsq_bounds_inflight_memory_ops() {
        // All loads, all independent DRAM misses: the S core's 10-entry LSQ
        // caps MLP near 10 even though its 64-entry ROB could hold more.
        let spec = PhaseSpec {
            tag: 14,
            load_frac: 1.0,
            store_frac: 0.0,
            branch_frac: 0.0,
            longop_frac: 0.0,
            mispredict_rate: 0.0,
            dep_mean: 512.0,
            dep2_prob: 0.0,
            chase_frac: 0.0,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![MemRegion {
                blocks: 1 << 22,
                weight: 1.0,
                pattern: AccessPattern::Uniform,
            }],
        };
        let t = spec.generate(20_000, 9);
        let r = run(&t, CoreSize::S, 2.0e9, 8);
        assert!(r.mlp <= 10.5, "S LSQ is 10 entries: MLP {}", r.mlp);
    }

    #[test]
    fn monitor_receives_llc_loads() {
        let spec = PhaseSpec {
            tag: 15,
            load_frac: 0.4,
            store_frac: 0.0,
            branch_frac: 0.0,
            longop_frac: 0.0,
            mispredict_rate: 0.0,
            dep_mean: 10.0,
            dep2_prob: 0.0,
            chase_frac: 0.0,
            burst: 1.0,
            addr_dep: 0.5,
            regions: vec![MemRegion {
                blocks: 1 << 22,
                weight: 1.0,
                pattern: AccessPattern::Uniform,
            }],
        };
        let t = spec.generate(10_000, 10);
        let ct = classify(&t, &geom());
        let mut mon = MlpMonitor::table1();
        let r = simulate_with_monitor(
            &t.insts,
            &ct,
            &TimingConfig::table1(CoreSize::M, 2.0e9, 8),
            &mut mon,
        );
        // Every DRAM load is also an ATD-predicted miss at w=8 here (the
        // region never hits), so the monitor's miss count matches.
        assert_eq!(mon.miss_count(CoreSize::M, 8), r.dram_loads);
        assert!(mon.lm_count(CoreSize::M, 8) > 0);
        // The heuristic should land in the right ballpark of true MLP.
        let est = mon.mlp(CoreSize::M, 8);
        assert!(est / r.mlp < 3.0 && r.mlp / est < 3.0, "est {est} vs true {}", r.mlp);
    }

    #[test]
    fn empty_trace_is_a_noop() {
        let t = Trace::default();
        let ct = classify(&t, &geom());
        let r = simulate(&t.insts, &ct, &TimingConfig::table1(CoreSize::M, 2.0e9, 8));
        assert_eq!(r.insts, 0);
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn deterministic_runs() {
        let t = compute_spec(8.0).generate(5000, 11);
        let a = run(&t, CoreSize::M, 2.0e9, 8);
        let b = run(&t, CoreSize::M, 2.0e9, 8);
        assert_eq!(a, b);
    }
}
