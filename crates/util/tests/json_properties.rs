//! Property tests for the JSON parser: `write → parse` identity on
//! randomly generated documents (both encodings), bit-exact float
//! round-trips on edge cases, and rejection of malformed input. The
//! generator is brute-force random over a seeded deterministic PRNG, the
//! workspace's stand-in for proptest.

use triad_util::json::{parse, Json};
use triad_util::rand::rngs::StdRng;
use triad_util::rand::{RngExt, SeedableRng};

/// A random document of bounded depth. Only finite `Num`s are generated:
/// the canonical writer encodes non-finite floats as `null`, which is
/// deliberately not identity (covered by `infinity_sentinel_is_lossy`).
fn random_json(rng: &mut StdRng, depth: usize) -> Json {
    let scalar_only = depth == 0;
    match rng.random_range(0..if scalar_only { 6u32 } else { 8 }) {
        0 => Json::Null,
        1 => Json::Bool(rng.random_bool(0.5)),
        2 => Json::Int(rng.random_range(0u64..=u64::MAX) as i64),
        3 => {
            // Finite floats spanning many binades, including negatives,
            // subnormal-ish magnitudes and exact integers.
            let mantissa: f64 = rng.random::<f64>() * 2.0 - 1.0;
            let exp = rng.random_range(0u32..640) as i32 - 320;
            let x = mantissa * 2f64.powi(exp);
            Json::Num(if x.is_finite() { x } else { 0.0 })
        }
        4 => Json::Num(rng.random_range(0u32..100) as f64), // integral floats
        5 => Json::Str(random_string(rng)),
        6 => {
            let n = rng.random_range(0usize..5);
            Json::Arr((0..n).map(|_| random_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.random_range(0usize..5);
            Json::Obj(
                (0..n)
                    .map(|i| (format!("k{i}_{}", random_string(rng)), random_json(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

fn random_string(rng: &mut StdRng) -> String {
    let n = rng.random_range(0usize..12);
    (0..n)
        .map(|_| {
            // Bias toward characters the escaper must handle.
            match rng.random_range(0..10u32) {
                0 => '"',
                1 => '\\',
                2 => '\n',
                3 => '\t',
                4 => '\u{1}',
                5 => 'é',
                6 => '\u{1D11E}',
                _ => (b'a' + rng.random_range(0u8..26)) as char,
            }
        })
        .collect()
}

#[test]
fn write_parse_roundtrip_identity() {
    let mut rng = StdRng::seed_from_u64(2020);
    for case in 0..500 {
        let doc = random_json(&mut rng, 4);
        let compact = doc.to_string_compact();
        let pretty = doc.to_string_pretty();
        assert_eq!(parse(&compact).as_ref(), Ok(&doc), "compact case {case}: {compact}");
        assert_eq!(parse(&pretty).as_ref(), Ok(&doc), "pretty case {case}: {pretty}");
    }
}

#[test]
fn float_edge_cases_roundtrip_bit_exactly() {
    let cases = [
        0.0,
        -0.0,
        1.0,
        -1.0,
        0.1,
        1.0 / 3.0,
        f64::MIN_POSITIVE,
        f64::MIN_POSITIVE / 8.0, // subnormal
        f64::MAX,
        f64::EPSILON,
        1e15,
        -1e15,
        1.5e16,
        2.5e-7,
        -9.999999999999999e-5,
        std::f64::consts::PI,
        6.02214076e23,
    ];
    for &x in &cases {
        let text = Json::Num(x).to_string_compact();
        match parse(&text) {
            Ok(Json::Num(y)) => assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "float {x:e} must round-trip bit-exactly through {text:?}"
            ),
            other => panic!("float {x:e} encoded as {text:?} parsed to {other:?}"),
        }
    }
}

#[test]
fn negative_zero_keeps_its_sign() {
    let text = Json::Num(-0.0).to_string_compact();
    assert_eq!(text, "-0.0");
    match parse(&text) {
        Ok(Json::Num(y)) => assert!(y == 0.0 && y.is_sign_negative()),
        other => panic!("-0.0 parsed to {other:?}"),
    }
}

#[test]
fn infinity_sentinel_is_lossy_by_design() {
    // JSON has no infinity literal: the canonical writer emits `null` for
    // non-finite floats, so infeasible-entry sentinels (`f64::INFINITY` in
    // RM energy curves) must be encoded at the schema layer — the phase
    // database uses the strings "inf"/"-inf". The writer/parser pair's
    // contract is only that nothing panics and nulls stay nulls.
    for x in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
        let text = Json::Arr(vec![Json::Num(x)]).to_string_compact();
        assert_eq!(text, "[null]");
        assert_eq!(parse(&text), Ok(Json::Arr(vec![Json::Null])));
    }
}

#[test]
fn malformed_inputs_are_rejected_not_panicked() {
    let bad = [
        "",
        "   \n\t ",
        "{\"unclosed\": [1, 2",
        "[[[[",
        "{\"a\": 1 \"b\": 2}",
        "[1, , 2]",
        "\"ends with backslash\\",
        "12.",
        "12e+",
        "--1",
        "0x10",
        "'single'",
        "[\"\\uD834\"]", // lone high surrogate
        "{\"dup\" 1}",
        "[1] [2]",
        "truefalse",
    ];
    for src in bad {
        let err = parse(src).expect_err(&format!("should reject {src:?}"));
        // Errors must be reportable and carry an in-range offset.
        assert!(err.offset <= src.len());
        assert!(!err.to_string().is_empty());
    }
}

#[test]
fn deeply_nested_but_balanced_input_parses() {
    let depth = 200;
    let mut src = String::new();
    src.push_str(&"[".repeat(depth));
    src.push('1');
    src.push_str(&"]".repeat(depth));
    let mut doc = parse(&src).unwrap();
    for _ in 0..depth {
        match doc {
            Json::Arr(mut items) => {
                assert_eq!(items.len(), 1);
                doc = items.pop().unwrap();
            }
            other => panic!("expected array, got {other:?}"),
        }
    }
    assert_eq!(doc, Json::Int(1));
}
