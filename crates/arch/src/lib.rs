//! # triad-arch — architecture description (Table I of the paper)
//!
//! This crate is the single source of truth for the hardware platform that
//! every other `triad` crate simulates or manages:
//!
//! * the three adaptive core sizes **S / M / L** (issue width, ROB,
//!   reservation stations, load/store queue) — [`CoreSize`];
//! * the per-core **DVFS** operating-point grid (1.0–3.25 GHz, 0.8–1.25 V)
//!   — [`DvfsGrid`] / [`VfPoint`];
//! * the **cache geometry** (private L1I/L1D and L2, shared way-partitioned
//!   LLC) — [`CacheGeometry`];
//! * the per-core **resource setting** tuple `(c, f, w)` managed by the
//!   resource manager — [`Setting`];
//! * the **system configuration** (core count, baseline setting, QoS slack
//!   `α`, interval length) — [`SystemConfig`].
//!
//! All values default to Table I of Nejat et al. (IPDPS 2020). The paper's
//! baseline is a mid-range setting: M-sized cores at 2 GHz / 1 V with an even
//! LLC distribution of 8 ways (2 MB) per core.

pub mod core_size;
pub mod dvfs;
pub mod geometry;
pub mod setting;
pub mod system;

pub use core_size::{CoreParams, CoreSize};
pub use dvfs::{DvfsGrid, VfIndex, VfPoint, DVFS_TRANSITION_ENERGY_J, DVFS_TRANSITION_TIME_S};
pub use geometry::{CacheGeometry, CacheLevelGeometry, BLOCK_BYTES};
pub use setting::Setting;
pub use system::{CoreId, SystemConfig, QOS_ALPHA};
