//! The `triad-bench` driver: every experiment behind one CLI.
//! See `triad_bench::cli` for flags.
fn main() -> std::process::ExitCode {
    triad_bench::cli::main_with(None)
}
