//! Thin wrapper: `triad-bench --experiment fig6` (Fig. 6 — RM1/RM2/RM3 savings on 4-/8-core workloads).
fn main() -> std::process::ExitCode {
    triad_bench::cli::main_with(Some("fig6"))
}
