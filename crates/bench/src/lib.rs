//! # triad-bench — the campaign-driven experiment harness
//!
//! One CLI driver regenerates every table and figure of the paper:
//!
//! ```text
//! cargo run --release --bin triad-bench -- --experiment fig6 --cores 8 --json out.json
//! ```
//!
//! | experiment  | reproduces |
//! |-------------|------------|
//! | `table1`    | Table I — baseline configuration |
//! | `table2`    | Table II — application categories via the §IV-C criteria |
//! | `fig1`      | Fig. 1 — category-mix probabilities and scenarios |
//! | `fig2`      | Fig. 2 — two-core scenario savings (perfect models) |
//! | `fig6`      | Fig. 6 — RM1/RM2/RM3 savings on 4-/8-core workloads |
//! | `fig7`      | Fig. 7 — QoS-violation probability / expected value / σ |
//! | `fig8`      | Fig. 8 — violation-magnitude distribution |
//! | `fig9`      | Fig. 9 — RM3 savings under Model1/2/3 vs perfect |
//! | `overheads` | §III-E — RM algorithm operation counts and runtime |
//! | `custom`    | any ad-hoc workload/controller/model campaign spec |
//!
//! Simulation-backed experiments expand into [`triad_sim::Campaign`] specs
//! and run in parallel with shared memoized idle baselines; `--json`
//! writes the canonical campaign report next to the figure summary. The
//! historical per-figure binaries (`fig6_energy`, …) remain as thin
//! wrappers that pre-select `--experiment`.
//!
//! Plain-timing benches (`cargo bench -p triad-bench`): the RM-invocation
//! cost versus core count (the §III-E instruction-count measurement) and
//! the substrate throughputs (cache classification, timing simulation,
//! ATD+MLP monitor, global optimizer).

pub mod cli;
pub mod reports;

use std::sync::OnceLock;
use triad_phasedb::{build_suite, DbConfig, PhaseDb};

/// Build (once per process) the full-suite phase database.
pub fn db() -> &'static PhaseDb {
    static DB: OnceLock<PhaseDb> = OnceLock::new();
    DB.get_or_init(|| build_db(&DbConfig::default()))
}

/// Build a full-suite database with an explicit configuration, reporting
/// progress on stderr.
pub fn build_db(cfg: &DbConfig) -> PhaseDb {
    eprintln!("building the detailed-simulation database (all 27 apps)...");
    let t = std::time::Instant::now();
    let db = build_suite(cfg);
    eprintln!("database ready in {:.1}s", t.elapsed().as_secs_f64());
    db
}

/// Format a savings fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", 100.0 * x)
}
