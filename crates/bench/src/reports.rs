//! Presenters: run one experiment, print the human-readable figure, and
//! return the machine-readable JSON document.
//!
//! Every simulation-backed experiment expands into campaign specs, runs
//! them through [`run_campaign`] (parallel, shared idle baselines) and
//! keeps the raw [`CampaignRow`]s in its JSON output alongside the
//! figure-shaped summary.
//!
//! The JSON documents are deterministic — identical bytes for the same
//! spec/seed at any thread count, and whether the phase database was
//! freshly built or loaded from the content-addressed store. Wall-clock
//! measurements therefore go to stderr; only `--compare-serial`, an
//! explicit benchmarking mode, embeds its measured `timing` numbers in
//! the JSON.

use crate::pct;
use std::time::Instant;
use triad_arch::{
    CacheGeometry, CoreSize, DvfsGrid, SystemConfig, DVFS_TRANSITION_ENERGY_J,
    DVFS_TRANSITION_TIME_S,
};
use triad_cache::MlpMonitor;
use triad_energy::{EnergyBackendConfig, EnergyModel, TableBackend};
use triad_mem::DramParams;
use triad_phasedb::{characterize_app, PhaseDb};
use triad_rm::RmKind;
use triad_sim::campaign::{model_label, Campaign, CampaignRow, ExperimentSpec, QuarantinedRow};
use triad_sim::experiments::{
    averages, comparison_specs, default_model_for, fig2_workloads, fig9_specs, fold_comparisons,
    fold_model_comparisons, scenario_means, RmComparison,
};
use triad_sim::{evaluate_models_with, SimConfig, SimModel, Simulator};
use triad_trace::Category;
use triad_util::json::Json;
use triad_workload::{
    cell_probability, generate_workloads, scenario_of_pair, scenario_probability, ArrivalProcess,
    Scenario, Stage, Workload, WorkloadSpec,
};

/// Execution knobs shared by the campaign-backed experiments.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Also execute the campaign serially and report the speedup.
    pub compare_serial: bool,
    /// Override the per-spec simulated horizon (RM intervals).
    pub intervals: Option<usize>,
    /// Override every spec's energy-accounting backend (`None` leaves the
    /// specs' own selection — the parametric default — in place).
    pub energy: Option<EnergyBackendConfig>,
    /// Print per-row campaign completion lines to stderr (never stdout).
    pub progress: bool,
    /// Append every completed row to this durable journal and resume
    /// (skip re-simulating) any row whose record is already present. The
    /// CLI truncates the file up front unless `--resume` was given, so
    /// the campaigns themselves always open in resume mode — an
    /// experiment that runs several campaigns (fig6 per core count)
    /// shares one journal, disambiguated by the per-row resume keys.
    pub journal: Option<String>,
}

/// The backend an experiment effectively runs under, for JSON echoes.
fn effective_backend(opts: &RunOptions) -> EnergyBackendConfig {
    opts.energy.clone().unwrap_or_default()
}

/// What [`run_campaign`] hands back to a presenter: the completed rows,
/// the quarantined error rows, and a per-input-spec alignment so
/// presenters that pair rows with their spec/workload lists positionally
/// stay correct when a spec was quarantined.
pub struct CampaignRun {
    /// Completed rows, in spec order (quarantined specs omitted).
    pub rows: Vec<CampaignRow>,
    /// One slot per input spec, in order: `None` where quarantined.
    pub aligned: Vec<Option<CampaignRow>>,
    /// Structured error rows for specs that did not complete.
    pub quarantined: Vec<QuarantinedRow>,
    /// Timing JSON fragment (spec count; wall-clock only under
    /// `--compare-serial`, keeping reports deterministic).
    pub timing: Json,
}

impl CampaignRun {
    /// True when every spec completed (no quarantined rows).
    pub fn complete(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// The canonical campaign report: rows plus (only when present) the
    /// quarantined error rows — byte-identical to the historical
    /// `Campaign::report` on a fully successful run.
    pub fn campaign_json(&self) -> Json {
        Campaign::report_full(&self.rows, &self.quarantined)
    }
}

/// Print the quarantine notice and return true when the run lost specs;
/// presenters whose figure summaries assume one row per spec call this
/// and skip the summary (the campaign JSON still carries everything).
fn quarantine_note(run: &CampaignRun) -> bool {
    if run.complete() {
        return false;
    }
    println!(
        "{} spec(s) quarantined; figure summary skipped (error rows are in the campaign JSON):",
        run.quarantined.len()
    );
    for q in &run.quarantined {
        println!("  {}", q.error);
    }
    true
}

/// Run specs as one campaign, honoring [`RunOptions`].
pub fn run_campaign(
    db: &PhaseDb,
    mut specs: Vec<ExperimentSpec>,
    opts: &RunOptions,
) -> CampaignRun {
    if let Some(n) = opts.intervals {
        specs = specs.into_iter().map(|s| s.target_intervals(n)).collect();
    }
    if let Some(energy) = &opts.energy {
        specs = specs.into_iter().map(|s| s.energy_backend(energy.clone())).collect();
    }
    let campaign = Campaign::new(specs).threads(opts.threads).progress(opts.progress);
    let t0 = Instant::now();
    let outcome = match &opts.journal {
        None => campaign.try_run(db),
        // The CLI created/validated the journal up front, so an open/load
        // failure here is a mid-run environment loss (disk gone); treat it
        // like any other fatal environment error.
        Some(path) => campaign
            .run_journaled(db, std::path::Path::new(path), true)
            .unwrap_or_else(|e| panic!("{e}")),
    };
    let parallel_s = t0.elapsed().as_secs_f64();
    eprintln!(
        "campaign: {} specs in {parallel_s:.2}s ({} simulated, {} resumed, {} quarantined)",
        campaign.specs.len(),
        outcome.simulated,
        outcome.resumed,
        outcome.quarantined.len()
    );
    for q in &outcome.quarantined {
        eprintln!("campaign: quarantined {}", q.error);
    }
    // Re-align completed rows with the input specs positionally: the
    // outcome names the spec index of every quarantined entry, so the
    // alignment survives duplicate specs (spec-equality matching would
    // misassign the surviving duplicate's row).
    let mut aligned = Vec::with_capacity(campaign.specs.len());
    let mut row_it = outcome.rows.iter();
    let mut quar_it = outcome.quarantined_indices.iter().peekable();
    for i in 0..campaign.specs.len() {
        if quar_it.next_if_eq(&&i).is_some() {
            aligned.push(None);
        } else {
            aligned.push(row_it.next().cloned());
        }
    }
    let mut timing = Json::obj().set("specs", campaign.specs.len());
    if opts.compare_serial {
        if outcome.quarantined.is_empty() {
            let t1 = Instant::now();
            let serial_rows = campaign.clone().threads(1).run(db);
            let serial_s = t1.elapsed().as_secs_f64();
            assert_eq!(
                Campaign::report(&serial_rows).to_string_compact(),
                Campaign::report(&outcome.rows).to_string_compact(),
                "parallel and serial campaign results must be identical"
            );
            println!(
                "\ncampaign timing: {} specs, parallel {:.2}s vs serial {:.2}s ({:.2}x speedup)",
                campaign.specs.len(),
                parallel_s,
                serial_s,
                serial_s / parallel_s
            );
            timing = timing
                .set("parallel_s", parallel_s)
                .set("serial_s", serial_s)
                .set("speedup", serial_s / parallel_s);
        } else {
            eprintln!(
                "campaign: skipping the serial comparison ({} spec(s) quarantined)",
                outcome.quarantined.len()
            );
        }
    }
    CampaignRun { rows: outcome.rows, aligned, quarantined: outcome.quarantined, timing }
}

fn comparison_table(title: &str, rows: &[RmComparison]) {
    println!("{title}");
    println!("{}", "=".repeat(title.len()));
    println!("{:<12} {:<12} {:>7} {:>7} {:>7}  apps", "workload", "scenario", "RM1", "RM2", "RM3");
    for r in rows {
        println!(
            "{:<12} {:<12} {:>7} {:>7} {:>7}  {}",
            r.workload.name,
            r.workload.scenario.label(),
            pct(r.savings[0]),
            pct(r.savings[1]),
            pct(r.savings[2]),
            r.workload.apps.join(",")
        );
    }
}

fn comparison_json(rows: &[RmComparison]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj()
                    .set("workload", r.workload.name.clone())
                    .set("scenario", r.workload.scenario.label())
                    .set("apps", r.workload.apps.iter().map(|s| s.to_string()).collect::<Vec<_>>())
                    .set("savings", r.savings.to_vec())
                    .set("violation_rate", r.violation_rate.to_vec())
            })
            .collect(),
    )
}

/// Table I: the baseline system configuration.
pub fn table1() -> Json {
    println!("TABLE I: Baseline configuration");
    println!("================================");
    println!("Core: out-of-order");
    println!("{:<14} {:>6} {:>6} {:>6}", "", "L", "M", "S");
    let p = |f: fn(CoreSize) -> u32| (f(CoreSize::L), f(CoreSize::M), f(CoreSize::S));
    let mut core_json = Json::obj();
    for (label, f) in [
        ("issue width", (|c: CoreSize| c.params().issue_width) as fn(CoreSize) -> u32),
        ("ROB", |c| c.params().rob),
        ("RS", |c| c.params().rs),
        ("LSQ", |c| c.params().lsq),
    ] {
        let (l, m, s) = p(f);
        println!("{:<14} {l:>6} {m:>6} {s:>6}", label);
        core_json = core_json.set(label, vec![l as i64, m as i64, s as i64]);
    }
    println!();
    let mut llc_json = Json::obj();
    for n in [2usize, 4, 8] {
        let g = CacheGeometry::table1(n);
        let range = g.per_core_way_range(n);
        println!(
            "{n}-core LLC: {} MB, {}-way, per-core allocation {:?} ways",
            g.llc.capacity_bytes / (1024 * 1024),
            g.llc.ways,
            range
        );
        llc_json = llc_json.set(
            &format!("{n}_core"),
            Json::obj()
                .set("capacity_mb", g.llc.capacity_bytes / (1024 * 1024))
                .set("ways", g.llc.ways)
                .set("way_min", *range.start())
                .set("way_max", *range.end()),
        );
    }
    let g = CacheGeometry::table1(4);
    println!(
        "L1-I/L1-D: {} KB {}-way | L2: {} KB {}-way | 64 B blocks, LRU",
        g.l1i.capacity_bytes / 1024,
        g.l1i.ways,
        g.l2.capacity_bytes / 1024,
        g.l2.ways
    );
    let d = DramParams::table1();
    println!(
        "DRAM: {} ns base latency, contention queue, {} GB/s per core",
        d.base_latency_s * 1e9,
        d.bandwidth_bps / 1e9
    );
    let grid = DvfsGrid::table1();
    println!(
        "DVFS: per-core {:.2}-{:.2} GHz / {:.2}-{:.2} V ({} points), baseline {:.1} GHz / {:.1} V",
        grid.point(0).freq_ghz(),
        grid.point(grid.len() - 1).freq_ghz(),
        grid.point(0).volt,
        grid.point(grid.len() - 1).volt,
        grid.len(),
        grid.baseline_point().freq_ghz(),
        grid.baseline_point().volt
    );
    let sys = SystemConfig::table1(4);
    println!(
        "RM interval: {}M instructions, QoS alpha = {}",
        sys.interval_insts / 1_000_000,
        sys.alpha
    );
    Json::obj()
        .set("experiment", "table1")
        .set("core", core_json)
        .set("llc", llc_json)
        .set("dram_latency_ns", d.base_latency_s * 1e9)
        .set("dvfs_points", grid.len())
        .set("interval_insts", sys.interval_insts)
        .set("alpha", sys.alpha)
}

/// Table II: categories derived via the §IV-C criteria.
pub fn table2(db: &PhaseDb) -> Json {
    println!("TABLE II: Application categories (derived via the paper's criteria)");
    println!("====================================================================");
    for cat in Category::ALL {
        let names: Vec<&str> = db
            .apps
            .iter()
            .map(characterize_app)
            .filter(|c| c.derived == cat)
            .map(|c| c.name)
            .collect();
        println!("{:<6} ({}): {}", cat.label(), names.len(), names.join(", "));
    }
    println!();
    println!(
        "{:<12} {:>7} {:>7} {:>7} {:>6} {:>6} {:>6}  {:<6}",
        "app", "MPKI@4", "MPKI@8", "MPKI@12", "MLP-S", "MLP-M", "MLP-L", "class"
    );
    let mut matches = 0;
    let mut rows = Vec::new();
    for e in &db.apps {
        let c = characterize_app(e);
        if c.derived == c.expected {
            matches += 1;
        }
        println!(
            "{:<12} {:>7.2} {:>7.2} {:>7.2} {:>6.2} {:>6.2} {:>6.2}  {}",
            c.name,
            c.mpki[0],
            c.mpki[1],
            c.mpki[2],
            c.mlp[0],
            c.mlp[1],
            c.mlp[2],
            c.derived.label()
        );
        rows.push(
            Json::obj()
                .set("app", c.name)
                .set("expected", c.expected.label())
                .set("derived", c.derived.label())
                .set("mpki", c.mpki.to_vec())
                .set("mlp", c.mlp.to_vec()),
        );
    }
    println!("\n{matches}/{} match the paper's Table II", db.apps.len());
    Json::obj()
        .set("experiment", "table2")
        .set("matches", matches as i64)
        .set("apps", db.apps.len())
        .set("rows", Json::Arr(rows))
}

/// Fig. 1: category-mix probabilities and the four workload scenarios.
pub fn fig1() -> Json {
    println!("FIG. 1: category-mix cells (probability %, scenario)");
    println!("====================================================");
    print!("{:<8}", "");
    for b in Category::ALL {
        print!("{:>16}", b.label());
    }
    println!();
    let mut cells = Vec::new();
    for (i, a) in Category::ALL.iter().enumerate() {
        print!("{:<8}", a.label());
        for (j, b) in Category::ALL.iter().enumerate() {
            let p = cell_probability(*a, *b);
            let s = scenario_of_pair(*a, *b);
            if j < i {
                print!("{:>16}", "-"); // symmetric lower triangle omitted
            } else {
                print!(
                    "{:>11.1}% S{:<3}",
                    p * 100.0,
                    match s {
                        Scenario::S1 => 1,
                        Scenario::S2 => 2,
                        Scenario::S3 => 3,
                        Scenario::S4 => 4,
                    }
                );
            }
            cells.push(
                Json::obj()
                    .set("a", a.label())
                    .set("b", b.label())
                    .set("probability", p)
                    .set("scenario", s.label()),
            );
        }
        println!();
    }
    println!("\nScenario weights (paper: 47 / 22.1 / 22.1 / 8.8 %):");
    let mut weights = Json::obj();
    for s in Scenario::ALL {
        let p = scenario_probability(s);
        println!("  {}: {:.1}%", s.label(), p * 100.0);
        weights = weights.set(s.label(), p);
    }
    Json::obj()
        .set("experiment", "fig1")
        .set("cells", Json::Arr(cells))
        .set("scenario_weights", weights)
}

/// Fig. 2: two-core workloads, one per scenario, perfect models, no
/// overheads.
pub fn fig2(db: &PhaseDb, opts: &RunOptions) -> Json {
    let workloads = fig2_workloads();
    let specs: Vec<ExperimentSpec> =
        workloads.iter().flat_map(|wl| comparison_specs(wl, true, false, 0)).collect();
    let run = run_campaign(db, specs, opts);
    let comparisons_json = if quarantine_note(&run) {
        Json::Arr(Vec::new())
    } else {
        let comparisons = fold_comparisons(&workloads, &run.rows);
        comparison_table(
            "FIG. 2: two-core scenario savings (perfect models, no overheads)",
            &comparisons,
        );
        println!("\npaper shape: S1 both effective with RM3 well ahead (~70% higher);");
        println!("S2 comparable; S3 only RM3; S4 all ineffective");
        comparison_json(&comparisons)
    };
    Json::obj()
        .set("experiment", "fig2")
        .set("comparisons", comparisons_json)
        .set("campaign", run.campaign_json())
        .set("timing", run.timing)
}

/// Fig. 6: six workloads per scenario at each core count, realistic models
/// and overheads.
pub fn fig6(db: &PhaseDb, core_counts: &[usize], seed: u64, opts: &RunOptions) -> Json {
    let mut out = Json::obj().set("experiment", "fig6").set("seed", seed);
    for &n_cores in core_counts {
        let workloads = generate_workloads(n_cores, 6, seed);
        let specs: Vec<ExperimentSpec> =
            workloads.iter().flat_map(|wl| comparison_specs(wl, false, true, seed)).collect();
        let run = run_campaign(db, specs, opts);
        let core_json = if quarantine_note(&run) {
            Json::obj().set("comparisons", Json::Arr(Vec::new()))
        } else {
            let comparisons = fold_comparisons(&workloads, &run.rows);
            comparison_table(
                &format!("FIG. 6 ({n_cores}-core): energy savings per workload"),
                &comparisons,
            );
            println!("\nper-scenario means:");
            for (s, m) in scenario_means(&comparisons) {
                println!(
                    "  {:<11} RM1={} RM2={} RM3={}",
                    s.label(),
                    pct(m[0]),
                    pct(m[1]),
                    pct(m[2])
                );
            }
            let (w, p) = averages(&comparisons);
            println!(
                "weighted avg (47/22.1/22.1/8.8): RM1={} RM2={} RM3={}",
                pct(w[0]),
                pct(w[1]),
                pct(w[2])
            );
            println!(
                "plain avg:                       RM1={} RM2={} RM3={}",
                pct(p[0]),
                pct(p[1]),
                pct(p[2])
            );
            let best = comparisons.iter().map(|r| r.savings[2]).fold(f64::NEG_INFINITY, f64::max);
            println!("max RM3 savings: {} (paper: up to 17.6% on 4-core)\n", pct(best));
            Json::obj()
                .set("comparisons", comparison_json(&comparisons))
                .set("weighted_avg", w)
                .set("plain_avg", p)
        };
        out = out.set(
            &format!("{n_cores}_core"),
            core_json.set("campaign", run.campaign_json()).set("timing", run.timing),
        );
    }
    out
}

fn qos_eval_json(evals: &[(triad_rm::ModelKind, triad_sim::QosEvaluation)]) -> Json {
    Json::Arr(
        evals
            .iter()
            .map(|(k, e)| {
                Json::obj()
                    .set("model", k.label())
                    .set("probability", e.probability)
                    .set("expected_violation", e.expected_violation)
                    .set("std_violation", e.std_violation)
                    .set("bin_width", e.bin_width)
                    .set("histogram", e.histogram.clone())
            })
            .collect(),
    )
}

/// Fig. 7: QoS-violation probability, expected violation and standard
/// deviation for Model1 / Model2 / Model3.
pub fn fig7(db: &PhaseDb, n_cores: usize, opts: &RunOptions) -> Json {
    let sys = SystemConfig::table1(n_cores);
    let energy = effective_backend(opts);
    let em = energy.build().expect("energy backend validated by the CLI");
    let evals = evaluate_models_with(db, &sys, em.as_ref());
    println!("FIG. 7: QoS violations over all phases x current x target settings");
    println!("==================================================================");
    println!("{:<8} {:>12} {:>12} {:>12}", "model", "P(violation)", "E[violation]", "std");
    for (k, e) in &evals {
        println!(
            "{:<8} {:>11.2}% {:>11.2}% {:>11.2}%",
            k.label(),
            e.probability * 100.0,
            e.expected_violation * 100.0,
            e.std_violation * 100.0
        );
    }
    let p: Vec<f64> = evals.iter().map(|(_, e)| e.probability).collect();
    let ev: Vec<f64> = evals.iter().map(|(_, e)| e.expected_violation).collect();
    let sd: Vec<f64> = evals.iter().map(|(_, e)| e.std_violation).collect();
    println!("\nModel3 vs Model1: probability {:+.0}% (paper: -46%)", (p[2] / p[0] - 1.0) * 100.0);
    println!("Model3 vs Model2: probability {:+.0}% (paper: -32%)", (p[2] / p[1] - 1.0) * 100.0);
    println!("Model3 vs Model2: expected    {:+.0}% (paper: -49%)", (ev[2] / ev[1] - 1.0) * 100.0);
    println!("Model3 vs Model2: std         {:+.0}% (paper: -26%)", (sd[2] / sd[1] - 1.0) * 100.0);
    Json::obj()
        .set("experiment", "fig7")
        .set("cores", n_cores)
        .set("energy_backend", energy.label())
        .set("models", qos_eval_json(&evals))
}

/// Fig. 8: distribution of QoS-violation magnitudes per model, normalized
/// to the maximum bin across models.
pub fn fig8(db: &PhaseDb, n_cores: usize, opts: &RunOptions) -> Json {
    let sys = SystemConfig::table1(n_cores);
    let energy = effective_backend(opts);
    let em = energy.build().expect("energy backend validated by the CLI");
    let evals = evaluate_models_with(db, &sys, em.as_ref());
    let max = evals.iter().map(|(_, e)| e.histogram_max()).fold(0.0f64, f64::max);
    println!("FIG. 8: violation-magnitude distribution (normalized to max bin)");
    println!("=================================================================");
    print!("{:<12}", "violation");
    for (k, _) in &evals {
        print!("{:>10}", k.label());
    }
    println!();
    let bins = evals[0].1.histogram.len();
    for b in 0..bins {
        let lo = b as f64 * evals[0].1.bin_width * 100.0;
        let hi = lo + evals[0].1.bin_width * 100.0;
        let row: Vec<f64> = evals.iter().map(|(_, e)| e.histogram[b] / max).collect();
        if row.iter().all(|&x| x < 1e-6) {
            continue;
        }
        print!("{:>4.1}-{:<5.1}% ", lo, hi);
        for x in row {
            print!("{:>10.3}", x);
        }
        println!();
    }
    println!("\npaper shape: Model3 may show slightly more small (~5%) violations but");
    println!("substantially fewer in total, with the large-violation tail cut hardest");
    Json::obj()
        .set("experiment", "fig8")
        .set("cores", n_cores)
        .set("energy_backend", energy.label())
        .set("models", qos_eval_json(&evals))
}

/// Fig. 9: RM3 savings under Model1/Model2/Model3 versus the perfect-model
/// bound.
pub fn fig9(db: &PhaseDb, core_counts: &[usize], seed: u64, opts: &RunOptions) -> Json {
    let mut out = Json::obj().set("experiment", "fig9").set("seed", seed);
    for &n_cores in core_counts {
        let workloads = generate_workloads(n_cores, 6, seed);
        let run = run_campaign(db, fig9_specs(&workloads, seed), opts);
        let core_json = if quarantine_note(&run) {
            Json::obj().set("comparisons", Json::Arr(Vec::new()))
        } else {
            let comparisons = fold_model_comparisons(&workloads, &run.rows);
            println!("FIG. 9 ({n_cores}-core): RM3 savings by performance model");
            println!("==========================================================");
            println!(
                "{:<12} {:<12} {:>8} {:>8} {:>8} {:>8}",
                "workload", "scenario", "Model1", "Model2", "Model3", "perfect"
            );
            let mut avg = [0.0f64; 4];
            for r in &comparisons {
                println!(
                    "{:<12} {:<12} {:>8} {:>8} {:>8} {:>8}",
                    r.workload.name,
                    r.workload.scenario.label(),
                    pct(r.savings[0]),
                    pct(r.savings[1]),
                    pct(r.savings[2]),
                    pct(r.savings[3])
                );
                for (slot, s) in avg.iter_mut().zip(&r.savings) {
                    *slot += s / comparisons.len() as f64;
                }
            }
            println!(
                "{:<25} {:>8} {:>8} {:>8} {:>8}",
                "average",
                pct(avg[0]),
                pct(avg[1]),
                pct(avg[2]),
                pct(avg[3])
            );
            println!("paper shape: Model3 lands closest to the perfect bound\n");
            let rows_json = Json::Arr(
                comparisons
                    .iter()
                    .map(|r| {
                        Json::obj()
                            .set("workload", r.workload.name.clone())
                            .set("scenario", r.workload.scenario.label())
                            .set("savings", r.savings.to_vec())
                    })
                    .collect(),
            );
            Json::obj().set("comparisons", rows_json).set("average", avg.to_vec())
        };
        out = out.set(
            &format!("{n_cores}_core"),
            core_json.set("campaign", run.campaign_json()).set("timing", run.timing),
        );
    }
    out
}

/// §III-E: RM algorithm overheads — operation counts per invocation versus
/// core count, plus the fixed hardware-transition costs.
pub fn overheads(db: &PhaseDb, seed: u64, opts: &RunOptions) -> Json {
    let intervals = opts.intervals;
    let energy = effective_backend(opts);
    println!("SEC. III-E: RM algorithm overheads");
    println!("==================================");
    println!("{:<8} {:>10} {:>10} {:>14}", "cores", "RM", "ops/invoc", "~instructions");
    let mut rows = Vec::new();
    for n in [2usize, 4, 8] {
        let wl = &generate_workloads(n, 1, seed)[0];
        for rm in [RmKind::Rm2, RmKind::Rm3] {
            let mut cfg = SimConfig::evaluation(rm, SimModel::Perfect);
            if let Some(n) = intervals {
                cfg.target_intervals = n;
            }
            let instr_per_op = cfg.rm_instr_per_op;
            let sim = Simulator::with_energy_config(db, n, cfg, &energy);
            let names: Vec<&str> = wl.apps.to_vec();
            let r = sim.run(&names);
            let ops = r.rm_ops as f64 / r.rm_invocations.max(1) as f64;
            println!(
                "{:<8} {:>10} {:>10.0} {:>13.0}K",
                n,
                rm.label(),
                ops,
                ops * instr_per_op / 1000.0
            );
            rows.push(
                Json::obj()
                    .set("cores", n)
                    .set("rm", rm.label())
                    .set("ops_per_invocation", ops)
                    .set("instructions", ops * instr_per_op),
            );
        }
    }
    println!("\npaper: RM3 = 51K/73K/100K and RM2 = 18K/40K/67K instructions for 2/4/8 cores");
    println!(
        "DVFS transition: {} us, {} uJ (Samsung Exynos 4210 measurements)",
        DVFS_TRANSITION_TIME_S * 1e6,
        DVFS_TRANSITION_ENERGY_J * 1e6
    );
    let mon = MlpMonitor::table1();
    println!(
        "ATD extension storage: {} bits (~{} bytes/core; paper: <300 bytes)",
        mon.storage_bits(),
        mon.storage_bits() / 8
    );
    Json::obj()
        .set("experiment", "overheads")
        .set("energy_backend", energy.label())
        .set("rows", Json::Arr(rows))
        .set("dvfs_transition_s", DVFS_TRANSITION_TIME_S)
        .set("dvfs_transition_j", DVFS_TRANSITION_ENERGY_J)
        .set("monitor_storage_bits", mon.storage_bits())
}

/// An ad-hoc campaign over one user-described spec.
pub fn custom(db: &PhaseDb, spec: ExperimentSpec, opts: &RunOptions) -> Json {
    let run = run_campaign(db, vec![spec], opts);
    if let Some(row) = run.rows.first() {
        println!("CUSTOM EXPERIMENT: {}", row.spec.name);
        println!("==================================");
        println!("apps:            {}", row.spec.apps.join(","));
        println!("controller:      {}", row.spec.rm.map(|r| r.label()).unwrap_or("idle"));
        println!("model:           {}", model_label(row.spec.model));
        println!("energy backend:  {}", row.spec.energy.label());
        println!("alpha:           {}", row.spec.alpha);
        println!("overheads:       {}", row.spec.overheads);
        println!(
            "energy:          {:.2} J (idle reference {:.2} J)",
            row.result.total_energy_j, row.idle_energy_j
        );
        println!("savings:         {}", pct(row.savings));
        println!(
            "QoS violations:  {}/{} ({})",
            row.result.qos_violations,
            row.result.intervals_checked,
            pct(row.violation_rate)
        );
        println!("RM invocations:  {}", row.result.rm_invocations);
    } else {
        quarantine_note(&run);
    }
    Json::obj()
        .set("experiment", "custom")
        .set("campaign", run.campaign_json())
        .set("timing", run.timing)
}

/// Relative path the sweep writes its sampled reference table to when no
/// measured table is supplied (stable, so reports stay reproducible).
pub const SAMPLED_TABLE_PATH: &str = "target/triad-energy-table-mcpat-sampled.json";

/// `energy-sweep`: rerun one workload's RM3-vs-idle campaign under every
/// energy backend and report the per-backend savings deltas — the
/// energy-model sensitivity study the backend seam exists for.
///
/// The measured-table leg uses `table` when given; otherwise a table
/// sampled from the parametric model at the Table I operating points is
/// written to [`SAMPLED_TABLE_PATH`] and swept (exercising the exact file
/// path a real measurement campaign would take).
pub fn energy_sweep(
    db: &PhaseDb,
    apps: &[&str],
    seed: u64,
    table: Option<&str>,
    opts: &RunOptions,
) -> Json {
    let table_path: String = match table {
        Some(p) => p.to_string(),
        None => {
            let grid = DvfsGrid::table1();
            let sampled = TableBackend::sampled_from(
                &EnergyModel::default_model(),
                grid.points(),
                SAMPLED_TABLE_PATH,
            );
            // The path is cwd-relative; fs::write does not create parents.
            if let Some(parent) = std::path::Path::new(SAMPLED_TABLE_PATH).parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            sampled.save(SAMPLED_TABLE_PATH).expect("writing the sampled energy table");
            eprintln!("sampled reference table written to {SAMPLED_TABLE_PATH}");
            SAMPLED_TABLE_PATH.to_string()
        }
    };
    let backends: Vec<EnergyBackendConfig> = vec![
        EnergyBackendConfig::Parametric,
        EnergyBackendConfig::Table { path: table_path },
        EnergyBackendConfig::Scaled { node: "22nm".into() },
        EnergyBackendConfig::Scaled { node: "14nm".into() },
        EnergyBackendConfig::Scaled { node: "7nm".into() },
    ];
    let specs: Vec<ExperimentSpec> = backends
        .iter()
        .map(|b| {
            ExperimentSpec::new(format!("sweep/{}", b.label()), apps)
                .seed(seed)
                .energy_backend(b.clone())
        })
        .collect();
    let run = run_campaign(db, specs, opts);

    // The parametric leg anchors the deltas; if it was quarantined the
    // deltas degrade to null (NaN) while the absolute numbers survive.
    let base_savings =
        run.aligned.first().and_then(|s| s.as_ref()).map_or(f64::NAN, |row| row.savings);
    println!("ENERGY SWEEP: RM3 savings per energy backend ({} cores)", apps.len());
    println!("=============================================================");
    println!(
        "{:<44} {:>10} {:>10} {:>8} {:>8}",
        "backend", "energy J", "idle J", "savings", "Δ vs mcpat"
    );
    let mut summary = Vec::new();
    for (b, slot) in backends.iter().zip(&run.aligned) {
        let Some(row) = slot else {
            println!("{:<44} {:>10}", b.label(), "quarantined");
            continue;
        };
        let delta = row.savings - base_savings;
        println!(
            "{:<44} {:>10.3} {:>10.3} {:>8} {:>+7.2}pp",
            b.label(),
            row.result.total_energy_j,
            row.idle_energy_j,
            pct(row.savings),
            delta * 100.0
        );
        summary.push(
            Json::obj()
                .set("backend", b.label())
                .set("total_energy_j", row.result.total_energy_j)
                .set("idle_energy_j", row.idle_energy_j)
                .set("savings", row.savings)
                .set("delta_savings_vs_parametric", delta)
                .set("violation_rate", row.violation_rate),
        );
    }
    println!("\nabsolute joules shift with the backend; the savings *ratio* is the");
    println!("sensitivity headline (leakier nodes reward down-volting less)");
    quarantine_note(&run);
    Json::obj()
        .set("experiment", "energy-sweep")
        .set("apps", apps.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        .set("seed", seed)
        .set("backends", Json::Arr(summary))
        .set("campaign", run.campaign_json())
        .set("timing", run.timing)
}

/// One dynamic-workload campaign row rendered for the workload reports.
fn workload_row_json(kind: &str, scenario: Option<Scenario>, row: &CampaignRow) -> Json {
    Json::obj()
        .set("kind", kind)
        .set(
            "scenario",
            match scenario {
                Some(s) => Json::from(s.label()),
                None => Json::from("census"),
            },
        )
        .set("name", row.spec.name.clone())
        .set("workload_fingerprint", row.spec.workload_fingerprint())
        .set("apps", row.spec.apps.clone())
        .set("savings", row.savings)
        .set("violation_rate", row.violation_rate)
        .set("total_energy_j", row.result.total_energy_j)
        .set("idle_energy_j", row.idle_energy_j)
        .set("vacancy_energy_j", row.result.vacancy_energy_j)
        .set("arrivals", row.result.arrivals)
        .set("departures", row.result.departures)
}

/// Assert a workload campaign produced sane numbers: every reported rate
/// and joule is finite (no NaN rows reach a report or the CI smoke step).
fn assert_workload_rows_finite(rows: &[CampaignRow]) {
    for row in rows {
        for (label, x) in [
            ("savings", row.savings),
            ("violation_rate", row.violation_rate),
            ("total_energy_j", row.result.total_energy_j),
            ("idle_energy_j", row.idle_energy_j),
            ("vacancy_energy_j", row.result.vacancy_energy_j),
            ("sim_time_s", row.result.sim_time_s),
        ] {
            assert!(x.is_finite(), "{}: non-finite {label} ({x})", row.spec.name);
        }
    }
}

/// An ad-hoc campaign over one dynamic workload spec (`--workload`):
/// RM-vs-idle on the same materialized trace.
pub fn workload_report(
    db: &PhaseDb,
    spec: ExperimentSpec,
    workload: &WorkloadSpec,
    opts: &RunOptions,
) -> Json {
    let run = run_campaign(db, vec![spec], opts);
    assert_workload_rows_finite(&run.rows);
    let Some(row) = run.rows.first() else {
        quarantine_note(&run);
        return Json::obj()
            .set("experiment", "workload")
            .set("workload", workload.to_json())
            .set("row", Json::Null)
            .set("trace_qos", Json::Null)
            .set("campaign", run.campaign_json())
            .set("timing", run.timing);
    };
    println!("WORKLOAD EXPERIMENT: {}", row.spec.name);
    println!("==================================");
    println!("workload:        {} ({})", workload.label(), row.spec.workload_fingerprint());
    println!("apps (union):    {}", row.spec.apps.join(","));
    println!("controller:      {}", row.spec.rm.map(|r| r.label()).unwrap_or("idle"));
    println!("model:           {}", model_label(row.spec.model));
    println!(
        "energy:          {:.2} J (idle reference {:.2} J, vacancy {:.3} J)",
        row.result.total_energy_j, row.idle_energy_j, row.result.vacancy_energy_j
    );
    println!("savings:         {}", pct(row.savings));
    println!(
        "QoS violations:  {}/{} ({})",
        row.result.qos_violations,
        row.result.intervals_checked,
        pct(row.violation_rate)
    );
    println!(
        "arrivals:        {} ({} departures, {} RM invocations)",
        row.result.arrivals, row.result.departures, row.result.rm_invocations
    );
    // Trace-weighted Fig. 7 statistics: the model's violation probability
    // under *this* workload's phase occupancy (qos_eval stepping through
    // the trace) rather than the uniform whole-suite average.
    let trace_qos = match row.spec.model {
        SimModel::Online(mk) => {
            let sys = SystemConfig::table1(row.spec.n_cores());
            let em = row.spec.energy.build().expect("energy backend validated by the CLI");
            let e = triad_sim::evaluate_model_on_trace(
                db,
                &row.spec.workload_trace(),
                mk,
                &sys,
                em.as_ref(),
            );
            println!(
                "trace-weighted QoS ({}): P(violation) {:.2}%, E[violation] {:.2}%",
                mk.label(),
                e.probability * 100.0,
                e.expected_violation * 100.0
            );
            Json::obj()
                .set("model", mk.label())
                .set("probability", e.probability)
                .set("expected_violation", e.expected_violation)
        }
        SimModel::Perfect => Json::Null,
    };
    Json::obj()
        .set("experiment", "workload")
        .set("workload", workload.to_json())
        .set("row", workload_row_json(workload.label(), row.spec.scenario, row))
        .set("trace_qos", trace_qos)
        .set("campaign", run.campaign_json())
        .set("timing", run.timing)
}

/// The dynamic-workload specs the `workload-sweep` preset evaluates: every
/// generator kind per scenario, plus the census-wide bursty-MMPP and
/// scaled-suite programs.
fn sweep_workloads(
    n_cores: usize,
    seed: u64,
    per_core: u64,
) -> Vec<(Option<Scenario>, WorkloadSpec)> {
    let horizon = per_core * n_cores as u64;
    let stage = (horizon / 3).max(1);
    let period = (per_core / 2).max(2);
    let mut out = Vec::new();
    for (i, s) in Scenario::ALL.into_iter().enumerate() {
        let scen_seed = seed.wrapping_add(i as u64);
        out.push((Some(s), WorkloadSpec::Steady { n_cores, scenario: Some(s), seed: scen_seed }));
        out.push((
            Some(s),
            WorkloadSpec::Phased {
                n_cores,
                seed: scen_seed,
                stages: vec![
                    Stage { scenario: Some(s), intervals: stage },
                    Stage { scenario: Some(s), intervals: stage },
                    Stage { scenario: Some(s), intervals: stage },
                ],
            },
        ));
        out.push((
            Some(s),
            WorkloadSpec::Bursty {
                n_cores,
                seed: scen_seed,
                arrival: ArrivalProcess::Poisson { mean_gap: (per_core as f64 / 8.0).max(1.0) },
                mean_service: (horizon / 4).max(2),
                horizon,
                scenario: Some(s),
            },
        ));
        out.push((
            Some(s),
            WorkloadSpec::Churn {
                n_cores,
                seed: scen_seed,
                period,
                horizon,
                scenario: Some(s),
                pool: Vec::new(),
            },
        ));
    }
    out.push((
        None,
        WorkloadSpec::Bursty {
            n_cores,
            seed,
            arrival: ArrivalProcess::Mmpp {
                mean_gap: [per_core as f64, (per_core as f64 / 8.0).max(1.0)],
                mean_dwell: [horizon as f64 / 4.0, horizon as f64 / 4.0],
            },
            mean_service: (horizon / 4).max(2),
            horizon,
            scenario: None,
        },
    ));
    out.push((None, WorkloadSpec::Scaled { n_cores, seed, copies: 1, segment: per_core.max(2) }));
    out
}

/// `workload-sweep`: run RM3 against the idle reference on one dynamic
/// workload of every generator kind per scenario, reporting per-scenario
/// energy savings and QoS-violation rates with the workload fingerprint on
/// every row.
pub fn workload_sweep(db: &PhaseDb, n_cores: usize, seed: u64, opts: &RunOptions) -> Json {
    let per_core = opts.intervals.unwrap_or(48) as u64;
    let workloads = sweep_workloads(n_cores, seed, per_core);
    let specs: Vec<ExperimentSpec> = workloads
        .iter()
        .map(|(scenario, wl)| {
            let label = match scenario {
                Some(s) => format!("sweep/{}/{}", wl.label(), s.short()),
                None => format!("sweep/{}/census", wl.label()),
            };
            ExperimentSpec::for_workload_spec(label, wl.clone())
                .expect("sweep workloads materialize")
                .scenario(*scenario)
                .seed(seed)
                .target_intervals(per_core as usize)
        })
        .collect();
    let run = run_campaign(db, specs, opts);
    assert_workload_rows_finite(&run.rows);

    println!("WORKLOAD SWEEP ({n_cores}-core): RM3 savings per dynamic workload");
    println!("=================================================================");
    println!(
        "{:<10} {:<12} {:>8} {:>9} {:>9} {:>9}  fingerprint",
        "kind", "scenario", "savings", "viol.rate", "arrivals", "vacancy J"
    );
    let mut row_json = Vec::new();
    for ((scenario, wl), slot) in workloads.iter().zip(&run.aligned) {
        let Some(row) = slot else {
            println!(
                "{:<10} {:<12} {:>8}",
                wl.label(),
                scenario.map(|s| s.label()).unwrap_or("census"),
                "quarantined"
            );
            continue;
        };
        println!(
            "{:<10} {:<12} {:>8} {:>9} {:>9} {:>9.3}  {}",
            wl.label(),
            scenario.map(|s| s.label()).unwrap_or("census"),
            pct(row.savings),
            pct(row.violation_rate),
            row.result.arrivals,
            row.result.vacancy_energy_j,
            &row.spec.workload_fingerprint()[..12],
        );
        row_json.push(workload_row_json(wl.label(), *scenario, row));
    }
    println!("\nper-scenario means across the workload kinds (steady + dynamic):");
    let mut scenario_json = Vec::new();
    for s in Scenario::ALL {
        let in_s: Vec<&CampaignRow> = workloads
            .iter()
            .zip(&run.aligned)
            .filter(|((sc, _), _)| *sc == Some(s))
            .filter_map(|(_, slot)| slot.as_ref())
            .collect();
        if in_s.is_empty() {
            continue;
        }
        let mean_savings = in_s.iter().map(|r| r.savings).sum::<f64>() / in_s.len() as f64;
        let mean_viol = in_s.iter().map(|r| r.violation_rate).sum::<f64>() / in_s.len() as f64;
        println!(
            "  {:<12} savings {} violation rate {}",
            s.label(),
            pct(mean_savings),
            pct(mean_viol)
        );
        scenario_json.push(
            Json::obj()
                .set("scenario", s.label())
                .set("mean_savings", mean_savings)
                .set("mean_violation_rate", mean_viol),
        );
    }
    quarantine_note(&run);
    Json::obj()
        .set("experiment", "workload-sweep")
        .set("cores", n_cores)
        .set("seed", seed)
        .set("rows", Json::Arr(row_json))
        .set("scenario_means", Json::Arr(scenario_json))
        .set("campaign", run.campaign_json())
        .set("timing", run.timing)
}

/// `churn`: per-core multiprogramming with mid-run app replacement. With
/// an explicit `pool` (the CI smoke path) one census-free workload runs;
/// otherwise one churn workload per scenario. Asserts nonzero arrivals and
/// finite (no-NaN) rows before reporting.
pub fn churn(db: &PhaseDb, n_cores: usize, seed: u64, pool: &[String], opts: &RunOptions) -> Json {
    let per_core = opts.intervals.unwrap_or(48) as u64;
    let horizon = per_core * n_cores as u64;
    let period = (per_core / 2).max(2);
    let workloads: Vec<(Option<Scenario>, WorkloadSpec)> = if pool.is_empty() {
        Scenario::ALL
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                (
                    Some(s),
                    WorkloadSpec::Churn {
                        n_cores,
                        seed: seed.wrapping_add(i as u64),
                        period,
                        horizon,
                        scenario: Some(s),
                        pool: Vec::new(),
                    },
                )
            })
            .collect()
    } else {
        vec![(
            None,
            WorkloadSpec::Churn {
                n_cores,
                seed,
                period,
                horizon,
                scenario: None,
                pool: pool.to_vec(),
            },
        )]
    };
    let specs: Vec<ExperimentSpec> = workloads
        .iter()
        .map(|(scenario, wl)| {
            let label = match scenario {
                Some(s) => format!("churn/{}", s.short()),
                None => format!("churn/pool:{}", pool.join("+")),
            };
            ExperimentSpec::for_workload_spec(label, wl.clone())
                .expect("churn workloads materialize")
                .scenario(*scenario)
                .seed(seed)
                .target_intervals(per_core as usize)
        })
        .collect();
    let run = run_campaign(db, specs, opts);
    assert_workload_rows_finite(&run.rows);
    let total_arrivals: u64 = run.rows.iter().map(|r| r.result.arrivals).sum();
    let replacements: u64 =
        run.rows.iter().map(|r| r.result.arrivals.saturating_sub(n_cores as u64)).sum();
    // The churn sanity floor only holds for complete runs; under fault
    // injection a quarantined row legitimately removes its arrivals.
    if run.complete() {
        assert!(total_arrivals > 0, "churn campaign observed no arrivals");
        assert!(replacements > 0, "churn campaign replaced no application mid-run");
    }

    println!("CHURN ({n_cores}-core, period ~{period} intervals, horizon {horizon})");
    println!("==============================================================");
    println!(
        "{:<22} {:>8} {:>9} {:>9} {:>6}  fingerprint",
        "workload", "savings", "viol.rate", "arrivals", "RMs"
    );
    let mut row_json = Vec::new();
    for ((scenario, wl), slot) in workloads.iter().zip(&run.aligned) {
        let Some(row) = slot else {
            println!("{:<22} {:>8}", wl.label(), "quarantined");
            continue;
        };
        println!(
            "{:<22} {:>8} {:>9} {:>9} {:>6}  {}",
            row.spec.name,
            pct(row.savings),
            pct(row.violation_rate),
            row.result.arrivals,
            row.result.rm_invocations,
            &row.spec.workload_fingerprint()[..12],
        );
        row_json.push(workload_row_json(wl.label(), *scenario, row));
    }
    println!("\n{total_arrivals} arrivals ({replacements} mid-run replacements); every RM");
    println!("re-plan on a churn event cold-restarts the core's phase position");
    quarantine_note(&run);
    Json::obj()
        .set("experiment", "churn")
        .set("cores", n_cores)
        .set("seed", seed)
        .set("arrivals", total_arrivals)
        .set("replacements", replacements)
        .set("rows", Json::Arr(row_json))
        .set("campaign", run.campaign_json())
        .set("timing", run.timing)
}

/// Cross-check helper used by the wrappers: workloads for a comparison
/// experiment at a given core count.
pub fn comparison_workloads(n_cores: usize, seed: u64) -> Vec<Workload> {
    generate_workloads(n_cores, 6, seed)
}

/// Re-export for wrappers that want the realistic model mapping.
pub fn realistic_model(rm: RmKind) -> SimModel {
    default_model_for(rm)
}
