//! The reusable lockstep timing engine.
//!
//! [`TimingEngine`] executes the same out-of-order model as the original
//! `simulate` free function — and is proven byte-identical to it by
//! property tests and the campaign/phase-db goldens — but restructures the
//! inner loop around four observations:
//!
//! 1. **ROB-bounded ring buffers.** The original implementation kept five
//!    trace-length arrays (`dispatch`/`issue`/`complete`/`retire`/`class`)
//!    alive for the whole pass. Every backward read the model performs is
//!    bounded by the reorder buffer:
//!
//!    * `retire[i − rob]` and `class[i − rob]` — distance exactly `rob`;
//!    * `issue[i − rs]` — `rs < rob` for every core size;
//!    * `retire[i − 1]` / `retire[i − width]` — `width < rob`;
//!    * `complete[i − d]` for a dependence distance `d` and
//!      `complete[oldest]` for the LSQ head — *not* structurally bounded,
//!      but provably **non-binding** beyond the ROB:
//!
//!      For `j ≤ i − rob`: `complete[j] ≤ retire[j]` (retirement waits for
//!      completion, `retire[i] = max(complete[i], …)`) and `retire` is
//!      monotone in program order (`retire[i] ≥ retire[i−1]`), so
//!      `complete[j] ≤ retire[i − rob]`. The dispatch stage already forces
//!      `dispatch[i] ≥ retire[i − rob]` (the ROB-occupancy constraint, and
//!      `i ≥ rob` whenever such a `j` exists), hence
//!      `complete[j] ≤ retire[i − rob] ≤ dispatch[i] < dispatch[i] + 1 ≤
//!      start`. A dependence older than the ROB can therefore never move
//!      the issue cycle, and an LSQ head older than the ROB can never
//!      exceed the dispatch candidate that the ROB constraint already set —
//!      in both cases the model's strict `>` comparisons leave cycle *and*
//!      stall-attribution class untouched, so skipping the read is exact.
//!      (Debug builds assert `retire[i − rob] ≤ dispatch[i]` and retire
//!      monotonicity, the two legs of the proof.)
//!
//!    Each array therefore shrinks to a power-of-two ring (the `issue` ring
//!    to RS depth — it is only ever read at distance exactly `rs`; the rest
//!    to ROB depth). The scratch drops from five trace-length vectors —
//!    megabytes per call, reallocated every call — to a few KiB *per lane*
//!    that live inside the engine and are reused across calls.
//!
//! 2. **Lockstep lane batching.** Runs that share a trace and its
//!    classification differ only in per-lane cycle arithmetic: the LLC way
//!    allocation decides which LLC accesses go to DRAM, and the clock
//!    frequency only rescales the DRAM latency into core cycles (every
//!    on-chip latency of Table I is specified *in cycles*). [`LaneSpec`]
//!    captures exactly that degree of freedom — `(ways, freq_hz)` — and
//!    [`TimingEngine::simulate_lanes`] advances any number of such lanes
//!    through the trace in **one pass**: instruction/dependence/LSQ decode
//!    and the ascending-way hit/miss prefix split are shared, and only the
//!    cycle arithmetic runs per lane. The phase-database build that once
//!    walked the same trace 90× per phase (15 allocations × 2 fit
//!    frequencies × 3 core sizes) now touches it **3×** — one 30-lane pass
//!    per core size, both fit frequencies fused.
//!
//! 3. **Block decode, lane-major execution.** Decode results are staged
//!    into fixed-size blocks (`BLOCK` instructions of `Dec` records),
//!    and each lane then replays the whole block in a tight inner loop.
//!    This turns the hot loop inside-out relative to a
//!    lane-inside-instruction nesting: per-lane architectural state (group
//!    cycle, redirect target, retire horizon, stall counters) stays in
//!    registers for `BLOCK` iterations instead of round-tripping through
//!    memory per instruction, and the rings are **lane-major** — each
//!    lane's cells form one contiguous ~1 KiB region that stays
//!    L1-resident while it replays a block. Absent constraints (no
//!    dependence; LSQ/ROB/RS not yet filled) are encoded as reads of a
//!    per-lane **sentinel slot** pinned to zero — a value the model's
//!    strict `>` / `max` combining rules provably ignore — so the inner
//!    loop carries no constraint-presence branches.
//!
//! 4. **Narrow cycle cells.** Cycle values are provably bounded by a
//!    conservative per-instruction worst case (dispatch advances by at
//!    most one group cycle; completion by at most the largest fixed
//!    latency, the DRAM zero-load latency and the *total* queue backlog,
//!    which itself grows by one service slot per request; redirects add
//!    the mispredict penalty). When `(n + 1) × per_inst_bound` fits in
//!    `u32`, the rings store 32-bit cycles — halving ring traffic — while
//!    all arithmetic stays in `u64`, so results are bit-identical to the
//!    wide representation (asserted by property tests via
//!    [`TimingEngine::force_wide_cycles`]).

use std::ops::RangeInclusive;

use crate::model::{TimingConfig, TimingResult};
use triad_arch::{CoreParams, CoreSize};
use triad_cache::{is_llc_code, llc_stack_dist_of, service_level_of, ClassifiedTrace, MlpMonitor};
use triad_mem::DramQueue;
use triad_trace::{Inst, InstKind};

/// Stall-attribution classes (the Eq. 1 decomposition) as ring codes.
const CLS_COMPUTE: u8 = 0;
const CLS_BRANCH: u8 = 1;
const CLS_CACHE: u8 = 2;
const CLS_DRAM: u8 = 3;

/// Completion-path kinds shared across lanes (see [`Dec`]). Lanes run in
/// ascending way order, so the allocations a given stack distance misses
/// are exactly a *prefix* of the lane list — the per-lane service-level
/// decision collapses to one shared `partition_point`.
const PATH_FIXED: u8 = 0;
/// LLC access with a tracked stack distance: lanes `< split` (ways ≤ dist)
/// go to DRAM, lanes `≥ split` hit the LLC.
const PATH_SPLIT: u8 = 1;
/// LLC access that misses every simulated allocation (cold/evicted).
const PATH_ALL_DRAM: u8 = 2;

/// [`Dec::flags`] bits.
const FLAG_MISPREDICT: u8 = 1;
/// The instruction is an LLC load and monitors are attached to this run.
const FLAG_COLLECT: u8 = 2;
/// The in-order retire-slot constraint `retire[i − width] + 1` is live
/// (`i ≥ width`). The `+ 1` must vanish with the constraint — a plain
/// sentinel read would yield `0 + 1` and could (correctly *not*) tie the
/// `max` — so the lane loop adds this flag bit instead of a constant.
const FLAG_RETW: u8 = 4;
/// Memory op is a load (a DRAM store retires early from the store buffer).
const FLAG_LOAD: u8 = 8;

/// Instructions decoded per block before the lanes replay it. Sized so the
/// block's [`Dec`] records (~32 B each) plus one lane's rings fit L1
/// comfortably.
const BLOCK: usize = 256;

/// One instruction's lane-independent decode: ring rows for every backward
/// constraint (the sentinel row when the constraint is absent), the shared
/// completion path and per-instruction flags. Filled once per instruction,
/// replayed by every lane.
#[derive(Clone, Copy, Default)]
struct Dec {
    /// Read rows into the rob-cap rings (`complete`/`retire`/`class`).
    rob_row: u32,
    lsq_row: u32,
    dep1_row: u32,
    dep2_row: u32,
    retw_row: u32,
    /// Read row into the rs-cap `issue` ring.
    rs_row: u32,
    /// Row this instruction writes in the rob-cap rings.
    slot_row: u32,
    /// Row this instruction writes in the issue ring.
    islot_row: u32,
    /// Fixed completion latency (the non-DRAM outcome of every path kind).
    lat: u32,
    /// Stall class of the non-DRAM outcome.
    cls: u8,
    /// `PATH_FIXED` / `PATH_SPLIT` / `PATH_ALL_DRAM`.
    path: u8,
    /// For `PATH_SPLIT`: lanes `< split` go to DRAM.
    split: u8,
    flags: u8,
    /// Raw classification code (for the monitor stream).
    code: u8,
}

/// One simulated configuration of a lockstep pass. Lanes share the trace,
/// its classification, the core size and every cycle-domain latency of the
/// [`TimingConfig`]; they differ only in
///
/// * `ways` — the LLC allocation (decides which LLC accesses go to DRAM),
/// * `freq_hz` — the core clock, which rescales the (wall-clock) DRAM
///   latency into core cycles and converts final cycle counts to seconds,
/// * `monitor` — whether the lane's arrival-ordered LLC load stream is
///   collected for an [`MlpMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneSpec {
    /// LLC way allocation of this lane.
    pub ways: usize,
    /// Core clock frequency of this lane, Hz.
    pub freq_hz: f64,
    /// Collect this lane's LLC load stream for a monitor.
    pub monitor: bool,
}

impl LaneSpec {
    /// A monitor-less lane at `(ways, freq_hz)`.
    pub fn new(ways: usize, freq_hz: f64) -> Self {
        LaneSpec { ways, freq_hz, monitor: false }
    }
}

/// Per-lane simulation state (the slow-changing part; the per-block hot
/// state is hoisted into locals by the lane loop).
struct Lane {
    dram: DramQueue,
    freq_hz: f64,
    collect: bool,
    cycle_of_group: u64,
    dispatched_in_group: u64,
    branch_resume: u64,
    dram_loads: u64,
    dram_stores: u64,
    true_lm: u64,
    lm_end: u64,
    c_branch: u64,
    c_cache: u64,
    c_dram: u64,
    last_retire: u64,
}

impl Lane {
    fn new(cfg: &TimingConfig, spec: &LaneSpec) -> Self {
        Lane {
            dram: DramQueue::new(cfg.dram, spec.freq_hz),
            freq_hz: spec.freq_hz,
            collect: spec.monitor,
            cycle_of_group: 0,
            dispatched_in_group: 0,
            branch_resume: 0,
            dram_loads: 0,
            dram_stores: 0,
            true_lm: 0,
            lm_end: 0,
            c_branch: 0,
            c_cache: 0,
            c_dram: 0,
            last_retire: 0,
        }
    }
}

/// Cycle-cell representation of the ring buffers: `u32` when the run's
/// conservative cycle bound fits (half the ring traffic), `u64` otherwise.
/// All arithmetic happens in `u64`; cells only narrow storage.
trait Cycle: Copy {
    const ZERO: Self;
    fn of(v: u64) -> Self;
    fn get(self) -> u64;
}

impl Cycle for u32 {
    const ZERO: Self = 0;
    #[inline(always)]
    fn of(v: u64) -> Self {
        debug_assert!(v <= u32::MAX as u64, "narrow cycle cell overflow");
        v as u32
    }
    #[inline(always)]
    fn get(self) -> u64 {
        self as u64
    }
}

impl Cycle for u64 {
    const ZERO: Self = 0;
    #[inline(always)]
    fn of(v: u64) -> Self {
        v
    }
    #[inline(always)]
    fn get(self) -> u64 {
        self
    }
}

/// Per-field ring buffers (SoA, **lane-major**): lane `k`'s cells occupy
/// one contiguous `rows`-sized region per field, so a lane's whole ring
/// working set stays L1-resident while it replays a block. Row `cap` of
/// each region is the zero **sentinel** slot — never written during a run;
/// reads of it encode "constraint absent" (see module docs, point 3).
#[derive(Default)]
struct Rings<C> {
    /// Completion cycles, `lanes × (rob-cap + 1)`.
    complete: Vec<C>,
    /// Retirement cycles, `lanes × (rob-cap + 1)`.
    retire: Vec<C>,
    /// Issue cycles, `lanes × (rs-cap + 1)` — only ever read at distance
    /// `rs`.
    issue: Vec<C>,
}

/// A reusable out-of-order timing engine: holds all scratch state across
/// calls and simulates one or many [`LaneSpec`] configurations per trace
/// pass.
///
/// The free functions [`crate::simulate`] / [`crate::simulate_with_monitor`]
/// are thin wrappers over a fresh single-lane engine and remain
/// byte-identical to the pre-engine implementation.
#[derive(Default)]
pub struct TimingEngine {
    rings32: Rings<u32>,
    rings64: Rings<u64>,
    /// Stall-attribution classes, `lanes × (rob-cap + 1)` (shared by both
    /// cycle representations).
    class: Vec<u8>,
    /// Block-decode staging buffer, [`BLOCK`] entries.
    dec: Vec<Dec>,
    /// Memory-op ordinal ring for the LSQ constraint (way-independent,
    /// shared across lanes): the youngest `lsq` memory-op indices.
    memops: Vec<u32>,
    /// Way-equivalence representative per lane (see `dedup_lanes`).
    rep: Vec<usize>,
    /// Per-lane LLC loads in (issue-cycle, program-index, stack-code) form;
    /// populated only for monitored lanes.
    llc_loads: Vec<Vec<(u64, u32, u8)>>,
    /// Lane states for the current call.
    lanes: Vec<Lane>,
    /// Lane-descriptor scratch for the range-based entry points.
    lane_buf: Vec<LaneSpec>,
    /// Test hook: force the wide (`u64`) cell representation.
    force_wide: bool,
    /// Test/bench hook: simulate every lane even when way-equivalence
    /// proves some are clones.
    no_dedup: bool,
}

impl TimingEngine {
    /// A fresh engine with no scratch allocated yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Force the wide (`u64`) ring representation regardless of the cycle
    /// bound. Only useful to property-test that the narrow (`u32`)
    /// representation is bit-identical; results never differ.
    #[doc(hidden)]
    pub fn force_wide_cycles(&mut self, wide: bool) {
        self.force_wide = wide;
    }

    /// Simulate every lane individually even when way-equivalence proves
    /// some are bit-identical clones. Only useful to property-test the
    /// deduplication (results never differ) and to benchmark the engine
    /// as it existed before it — never in production paths.
    #[doc(hidden)]
    pub fn disable_lane_dedup(&mut self, off: bool) {
        self.no_dedup = off;
    }

    /// Simulate `trace` (classified as `ct`) under `cfg` — the single-lane
    /// path, byte-identical to [`crate::simulate`].
    pub fn simulate(
        &mut self,
        trace: &[Inst],
        ct: &ClassifiedTrace,
        cfg: &TimingConfig,
    ) -> TimingResult {
        self.lane_buf.clear();
        self.lane_buf.push(LaneSpec::new(cfg.ways, cfg.freq_hz));
        self.run(trace, ct, cfg, None)[0]
    }

    /// [`TimingEngine::simulate`], feeding every LLC load (in LLC arrival
    /// order) into `monitor` — byte-identical to
    /// [`crate::simulate_with_monitor`].
    pub fn simulate_with_monitor(
        &mut self,
        trace: &[Inst],
        ct: &ClassifiedTrace,
        cfg: &TimingConfig,
        monitor: &mut MlpMonitor,
    ) -> TimingResult {
        self.lane_buf.clear();
        self.lane_buf.push(LaneSpec { ways: cfg.ways, freq_hz: cfg.freq_hz, monitor: true });
        self.run(trace, ct, cfg, Some(std::slice::from_mut(monitor)))[0]
    }

    /// Lockstep batched mode: simulate every allocation in `ways` at the
    /// Table I latencies for `(core, freq_hz)` in **one trace pass**,
    /// returning one [`TimingResult`] per allocation in range order. Each
    /// result is bit-identical to a standalone [`crate::simulate`] at that
    /// allocation.
    pub fn simulate_ways(
        &mut self,
        trace: &[Inst],
        ct: &ClassifiedTrace,
        core: CoreSize,
        freq_hz: f64,
        ways: RangeInclusive<usize>,
    ) -> Vec<TimingResult> {
        let cfg = TimingConfig::table1(core, freq_hz, *ways.start());
        self.simulate_ways_cfg(trace, ct, &cfg, ways)
    }

    /// [`TimingEngine::simulate_ways`] with explicit (non-Table I)
    /// latencies: `cfg.ways` is overridden per lane by `ways`.
    pub fn simulate_ways_cfg(
        &mut self,
        trace: &[Inst],
        ct: &ClassifiedTrace,
        cfg: &TimingConfig,
        ways: RangeInclusive<usize>,
    ) -> Vec<TimingResult> {
        self.lane_buf.clear();
        self.lane_buf.extend(ways.map(|w| LaneSpec::new(w, cfg.freq_hz)));
        self.run(trace, ct, cfg, None)
    }

    /// Batched mode with one [`MlpMonitor`] per way lane: lane `k` feeds
    /// `monitors[k]` with its own arrival-ordered LLC load stream, exactly
    /// as a standalone [`crate::simulate_with_monitor`] at that allocation
    /// would.
    pub fn simulate_ways_with_monitors(
        &mut self,
        trace: &[Inst],
        ct: &ClassifiedTrace,
        cfg: &TimingConfig,
        ways: RangeInclusive<usize>,
        monitors: &mut [MlpMonitor],
    ) -> Vec<TimingResult> {
        self.lane_buf.clear();
        self.lane_buf.extend(ways.map(|w| LaneSpec {
            ways: w,
            freq_hz: cfg.freq_hz,
            monitor: true,
        }));
        assert_eq!(monitors.len(), self.lane_buf.len(), "one monitor per way lane");
        self.run(trace, ct, cfg, Some(monitors))
    }

    /// The general lockstep entry point: one pass over `trace` advancing
    /// every lane in `specs` — arbitrary `(ways, freq_hz)` pairs, as long
    /// as `ways` is non-decreasing across the lane list (the prefix-split
    /// decode relies on it). `cfg` provides the core size and the shared
    /// cycle-domain latencies; its `ways`/`freq_hz` fields are overridden
    /// per lane. `monitors` receives one entry per `monitor == true` lane,
    /// in lane order.
    ///
    /// Each lane's [`TimingResult`] (and monitor state) is bit-identical to
    /// a standalone [`crate::simulate`] / [`crate::simulate_with_monitor`]
    /// at that lane's configuration — the property the phase-database
    /// build's byte-identical-artifact golden rests on.
    pub fn simulate_lanes(
        &mut self,
        trace: &[Inst],
        ct: &ClassifiedTrace,
        cfg: &TimingConfig,
        specs: &[LaneSpec],
        monitors: &mut [MlpMonitor],
    ) -> Vec<TimingResult> {
        self.lane_buf.clear();
        self.lane_buf.extend_from_slice(specs);
        let monitored = specs.iter().filter(|s| s.monitor).count();
        assert_eq!(monitors.len(), monitored, "one monitor per monitored lane");
        self.run(trace, ct, cfg, Some(monitors))
    }

    /// Conservative upper bound on any cycle value stored during a run:
    /// each instruction advances every lane clock by at most one group
    /// cycle plus a dispatch slot, the largest completion latency and a
    /// redirect penalty; DRAM queueing adds (amortized) one channel
    /// service slot per request plus the zero-load latency. Summed over
    /// `n + 1` instructions this dominates every stored `issue`, `complete`,
    /// `retire` and `branch_resume` value, so cells fit `u32` whenever the
    /// bound does.
    fn cycle_bound(&self, n: usize, cfg: &TimingConfig) -> u128 {
        let max_freq =
            self.lane_buf.iter().map(|s| s.freq_hz).fold(0.0f64, f64::max).max(cfg.freq_hz);
        let probe = DramQueue::new(cfg.dram, max_freq);
        let lat_max = cfg.lat_llc.max(cfg.lat_longop).max(cfg.lat_l2).max(cfg.lat_l1) as u64;
        let per_inst = 4
            + 2 * cfg.mispredict_penalty as u64
            + lat_max
            + probe.base_cycles()
            + probe.service_cycles_ceil();
        (n as u128 + 1) * per_inst as u128
    }

    /// Dispatch to the narrow or wide ring representation.
    fn run(
        &mut self,
        trace: &[Inst],
        ct: &ClassifiedTrace,
        cfg: &TimingConfig,
        monitors: Option<&mut [MlpMonitor]>,
    ) -> Vec<TimingResult> {
        assert!(!self.lane_buf.is_empty(), "at least one lane required");
        if self.force_wide || self.cycle_bound(trace.len(), cfg) > u32::MAX as u128 {
            let mut rings = std::mem::take(&mut self.rings64);
            let out = self.run_cells(&mut rings, trace, ct, cfg, monitors);
            self.rings64 = rings;
            out
        } else {
            let mut rings = std::mem::take(&mut self.rings32);
            let out = self.run_cells(&mut rings, trace, ct, cfg, monitors);
            self.rings32 = rings;
            out
        }
    }

    /// The lockstep loop: decode a block of instructions once, then let
    /// every lane replay it against its own rings (module docs, points
    /// 2–3). With one lane this degenerates to the original scalar model.
    fn run_cells<C: Cycle>(
        &mut self,
        rings: &mut Rings<C>,
        trace: &[Inst],
        ct: &ClassifiedTrace,
        cfg: &TimingConfig,
        monitors: Option<&mut [MlpMonitor]>,
    ) -> Vec<TimingResult> {
        let n = trace.len();
        assert_eq!(n, ct.len(), "trace and classification must align");
        let nl = self.lane_buf.len();
        assert!(nl < 256, "lane count must fit the split byte");
        if n == 0 {
            return vec![TimingResult::default(); nl];
        }
        let CoreParams { issue_width, rob, rs, lsq } = cfg.core.params();
        let width = issue_width as usize;
        let rob = rob as usize;
        let rs = rs as usize;
        let lsq = lsq as usize;
        // The ring bound (module docs) needs every structural read distance
        // within the ROB.
        assert!(width <= rob && rs <= rob && lsq <= rob, "ring bound: RS/LSQ/width within ROB");

        // Per-lane ring regions are sized to 2× the (power-of-two) ring
        // depth: rows `0..cap` hold data, row `cap` is the zero sentinel,
        // and the power-of-two region length lets every access be indexed
        // as `row & (region_len − 1)` — an index the compiler can prove
        // in-bounds (`x & m ≤ m`), so the hot loop carries no bounds
        // checks.
        let cap = rob.next_power_of_two();
        let mask = cap - 1;
        let rows = cap * 2;
        let icap = rs.next_power_of_two();
        let imask = icap - 1;
        let irows = icap * 2;
        let lcap = lsq.next_power_of_two();
        let lmask = lcap - 1;
        let sent = cap as u32; // sentinel row of the rob-cap rings
        let isent = icap as u32; // sentinel row of the issue ring

        // (Re)size scratch and re-zero the sentinel rows (geometry may have
        // shifted stale cells under them). Stale *non-sentinel* values are
        // never read: every such read at instruction `i` targets a row
        // written earlier in this pass — the read distances are bounded by
        // the ring depths and gated on `i` having advanced past them.
        rings.complete.resize(rows * nl, C::ZERO);
        rings.retire.resize(rows * nl, C::ZERO);
        rings.issue.resize(irows * nl, C::ZERO);
        self.class.resize(rows * nl, 0);
        self.memops.resize(lcap, 0);
        self.dec.resize(BLOCK, Dec::default());
        for k in 0..nl {
            rings.complete[k * rows + cap] = C::ZERO;
            rings.retire[k * rows + cap] = C::ZERO;
            rings.issue[k * irows + icap] = C::ZERO;
            self.class[k * rows + cap] = CLS_COMPUTE;
        }
        // Ascending way order is what lets the per-instruction service-level
        // decision collapse to a prefix split (see [`Dec`]).
        assert!(
            self.lane_buf.windows(2).all(|p| p[0].ways <= p[1].ways),
            "lane ways must be non-decreasing"
        );
        self.lanes.clear();
        for spec in &self.lane_buf {
            self.lanes.push(Lane::new(cfg, spec));
        }
        let codes = ct.codes();

        // ---- way-equivalence dedup. A lane pair (w₁, f₁) / (w₂, f₂) with
        // w₁ ≤ w₂ has bit-identical cycle timelines when no LLC access in
        // the window separates them:
        //
        // * accesses with stack distance d < w₁ hit both, d ≥ w₂ (and cold
        //   misses) go to DRAM on both — only d ∈ [w₁, w₂) differs, so if
        //   no such distance occurs the DRAM decision agrees on every
        //   instruction;
        // * the frequency only scales DRAM latency into core cycles, so
        //   f₁ ≠ f₂ additionally requires the lanes to see *zero* DRAM
        //   traffic (no cold miss, no tracked d ≥ w₁).
        //
        // Equal ways (duplicate lanes) are the empty-range case of the
        // same rule. Every u64 cycle/stall counter of an equivalent pair
        // is then equal, so the clone lane skips the trace walk entirely
        // and copies its representative's end state — per-lane f64
        // conversion at its own frequency reproduces the standalone result
        // bit-for-bit. Streaming phases (all-cold misses) collapse the
        // whole way range to one lane per frequency; cache-resident phases
        // collapse everything past their largest occurring stack distance.
        let mut present = [false; 16];
        let mut cold_any = false;
        for &c in codes {
            if c <= 15 {
                present[c as usize] = true;
            } else {
                cold_any |= is_llc_code(c);
            }
        }
        self.rep.clear();
        for k in 0..nl {
            let mut r = k;
            for j in 0..k * (!self.no_dedup as usize) {
                let wj16 = self.lane_buf[j].ways.min(16);
                let wk16 = self.lane_buf[k].ways.min(16);
                if present[wj16..wk16].iter().any(|&p| p) {
                    continue;
                }
                let dram_free = !cold_any && !present[wj16..].iter().any(|&p| p);
                if self.lane_buf[j].freq_hz == self.lane_buf[k].freq_hz || dram_free {
                    r = self.rep[j];
                    break;
                }
            }
            self.rep.push(r);
        }

        let collect_any = monitors.is_some();
        while self.llc_loads.len() < nl {
            self.llc_loads.push(Vec::new());
        }
        // A representative collects the (shared) LLC load stream when any
        // lane of its class is monitored.
        for k in 0..nl {
            self.lanes[k].collect = false;
        }
        for k in 0..nl {
            if self.lane_buf[k].monitor {
                self.lanes[self.rep[k]].collect = true;
            }
        }
        if collect_any {
            // Upper bound: `ct.llc_accesses` counts LLC loads *and* stores,
            // while only loads are collected — no reallocation, slight
            // over-reservation.
            for (lv, lane) in self.llc_loads.iter_mut().zip(&self.lanes) {
                lv.clear();
                if lane.collect {
                    lv.reserve(ct.llc_accesses as usize);
                }
            }
        }
        let specs = &self.lane_buf;
        let min_ways = specs[0].ways;
        let lat_l1 = cfg.lat_l1;
        let lat_l2 = cfg.lat_l2;
        let lat_llc = cfg.lat_llc as u64;
        let lat_longop = cfg.lat_longop;
        let penalty = cfg.mispredict_penalty as u64;
        let mut m = 0usize; // memory ops decoded so far

        for block_start in (0..n).step_by(BLOCK) {
            let block = &trace[block_start..(block_start + BLOCK).min(n)];

            // ---- decode phase: once per instruction, not per lane ----
            for (j, inst) in block.iter().enumerate() {
                let i = block_start + j;
                let code = codes[i];
                let kind = inst.kind;
                let is_mem = kind.is_mem();
                let d = &mut self.dec[j];
                d.slot_row = (i & mask) as u32;
                d.islot_row = (i & imask) as u32;
                d.rob_row = if i >= rob { ((i - rob) & mask) as u32 } else { sent };
                d.rs_row = if i >= rs { ((i - rs) & imask) as u32 } else { isent };
                // LSQ head: the lsq-th-youngest memory op, if it can still
                // bind (older than the ROB ⇒ provably non-binding, module
                // docs).
                d.lsq_row = if is_mem && m >= lsq {
                    let oldest = self.memops[(m - lsq) & lmask] as usize;
                    if i - oldest < rob {
                        (oldest & mask) as u32
                    } else {
                        sent
                    }
                } else {
                    sent
                };
                if is_mem {
                    self.memops[m & lmask] = i as u32;
                    m += 1;
                }
                // Producers before the detailed window (dep distance > i)
                // completed during warmup; producers older than the ROB are
                // non-binding (module docs). Both impose no constraint.
                let d1 = inst.dep1 as usize;
                let d2 = inst.dep2 as usize;
                d.dep1_row =
                    if d1 > 0 && d1 <= i && d1 < rob { ((i - d1) & mask) as u32 } else { sent };
                d.dep2_row =
                    if d2 > 0 && d2 <= i && d2 < rob { ((i - d2) & mask) as u32 } else { sent };
                d.retw_row = if i >= width { ((i - width) & mask) as u32 } else { sent };
                let is_load = kind == InstKind::Load;
                let mut flags = 0u8;
                if kind == InstKind::Branch && inst.mispredict {
                    flags |= FLAG_MISPREDICT;
                }
                if i >= width {
                    flags |= FLAG_RETW;
                }
                if is_load {
                    flags |= FLAG_LOAD;
                }
                if collect_any && is_load && is_llc_code(code) {
                    flags |= FLAG_COLLECT;
                }
                // Completion path, shared across lanes: the service level
                // at the *smallest* allocation decides the shape, and for
                // tracked stack distances the DRAM lanes are the prefix
                // with `ways ≤ dist`.
                let (path, split, lat, cls) = match kind {
                    InstKind::Alu | InstKind::Branch => (PATH_FIXED, 0, 1, CLS_COMPUTE),
                    InstKind::LongOp => (PATH_FIXED, 0, lat_longop, CLS_COMPUTE),
                    InstKind::Load | InstKind::Store => match service_level_of(code, min_ways) {
                        1 => (PATH_FIXED, 0, lat_l1, CLS_COMPUTE),
                        2 => (PATH_FIXED, 0, lat_l2, CLS_CACHE),
                        3 => (PATH_FIXED, 0, cfg.lat_llc, CLS_CACHE),
                        _ => {
                            if code <= 15 {
                                let split = specs.partition_point(|s| s.ways <= code as usize);
                                if split == nl {
                                    (PATH_ALL_DRAM, 0, 0, CLS_DRAM)
                                } else {
                                    (PATH_SPLIT, split as u8, cfg.lat_llc, CLS_CACHE)
                                }
                            } else {
                                (PATH_ALL_DRAM, 0, 0, CLS_DRAM)
                            }
                        }
                    },
                };
                d.path = path;
                d.split = split;
                d.lat = lat;
                d.cls = cls;
                d.flags = flags;
                d.code = code;
            }

            // ---- lane phase: each lane replays the decoded block. The
            // loop body is written in guarded-assignment form (`x = if c
            // { a } else { x }`) so every constraint fold and the stall
            // counters compile to conditional moves — the binding pattern
            // of the five dispatch constraints is data-dependent and
            // would mispredict heavily as branches. Ring indices are
            // masked with the power-of-two region mask, which the
            // compiler proves in-bounds. ----
            let dec = &self.dec[..block.len()];
            for (k, lane) in self.lanes.iter_mut().enumerate() {
                if self.rep[k] != k {
                    continue; // clone: copies its representative's state
                }
                let cbase = k * rows;
                let ibase = k * irows;
                let complete = &mut rings.complete[cbase..cbase + rows];
                let retire = &mut rings.retire[cbase..cbase + rows];
                let issue = &mut rings.issue[ibase..ibase + irows];
                let class = &mut self.class[cbase..cbase + rows];
                let rmask = rows - 1;
                let irmask = irows - 1;
                let lv = &mut self.llc_loads[k];
                let lane_collect = lane.collect;
                let ku8 = k as u8;
                // Hot lane state lives in locals for the whole block; the
                // stall counters live in a class-indexed array so
                // attribution is an unconditional indexed add (class 0,
                // compute, is the discarded dummy slot).
                let mut cog = lane.cycle_of_group;
                let mut dig = lane.dispatched_in_group;
                let mut br = lane.branch_resume;
                let mut lr = lane.last_retire;
                let mut stall = [0u64; 4];

                for (j, d) in dec.iter().enumerate() {
                    // ---- dispatch: fold the five constraints in priority
                    // order; each strictly-greater candidate takes both the
                    // cycle and the blame.
                    let rr = retire[d.rob_row as usize & rmask].get();
                    let il = issue[d.rs_row as usize & irmask].get();
                    let oc = complete[d.lsq_row as usize & rmask].get();
                    let mut cand = cog;
                    let mut reason = CLS_COMPUTE;
                    if br > cand {
                        cand = br;
                        reason = CLS_BRANCH;
                    }
                    if rr > cand {
                        cand = rr;
                        reason = class[d.rob_row as usize & rmask]; // ROB head's class
                    }
                    if il > cand {
                        cand = il;
                        reason = CLS_COMPUTE; // scheduler pressure is core-sized
                    }
                    if oc > cand {
                        cand = oc;
                        reason = class[d.lsq_row as usize & rmask];
                    }
                    // Group advance: an external stall opens a new group at
                    // `cand`; a full group opens the next cycle's group.
                    if cand > cog {
                        cog = cand;
                        dig = 0;
                    } else if dig >= width as u64 {
                        cog += 1;
                        dig = 0;
                    }
                    dig += 1;
                    let dispatch = cog;
                    // Record what stalled this instruction's *dispatch* so
                    // pure front-end (branch) starvation is attributable at
                    // retire.
                    let dispatch_reason = reason;
                    // First leg of the ring-bound proof: the ROB constraint
                    // pins dispatch at or after the ROB head's retirement
                    // (trivially true on the zero sentinel).
                    debug_assert!(rr <= dispatch, "ROB bound violated");

                    // ---- issue (operand readiness) ----
                    let start = (dispatch + 1)
                        .max(complete[d.dep1_row as usize & rmask].get())
                        .max(complete[d.dep2_row as usize & rmask].get());

                    // ---- complete ----
                    let to_dram =
                        d.path == PATH_ALL_DRAM || (d.path == PATH_SPLIT && ku8 < d.split);
                    let (fin, cls) = if to_dram {
                        let arrival = start + lat_llc;
                        let done = lane.dram.request(arrival);
                        if d.flags & FLAG_LOAD != 0 {
                            lane.dram_loads += 1;
                            if arrival >= lane.lm_end {
                                lane.true_lm += 1;
                                lane.lm_end = done;
                            }
                            (done, CLS_DRAM)
                        } else {
                            // Stores retire from the store buffer; the fill
                            // only consumes DRAM bandwidth.
                            lane.dram_stores += 1;
                            (start + 1, CLS_COMPUTE)
                        }
                    } else {
                        (start + d.lat as u64, d.cls)
                    };
                    // Loads that reach the LLC (hit or miss) probe the ATD.
                    if d.flags & FLAG_COLLECT != 0 && lane_collect {
                        lv.push((start, (block_start + j) as u32, d.code));
                    }
                    let final_class = if cls == CLS_COMPUTE && dispatch_reason == CLS_BRANCH {
                        CLS_BRANCH
                    } else {
                        cls
                    };

                    // ---- branch redirect ----
                    br = if d.flags & FLAG_MISPREDICT != 0 { fin + penalty } else { br };

                    // ---- retire (in order, `width` per cycle) + fused
                    // stall attribution: the retire delay beyond the
                    // structural in-order slot `base` is charged to the
                    // delaying class. `retire[i − 1]` is the lane's own
                    // `last_retire`; the `retire[i − width] + 1` term drops
                    // out exactly via the sentinel + FLAG_RETW when
                    // `i < width`.
                    let retw_live = (d.flags & FLAG_RETW != 0) as u64;
                    let base = lr.max(retire[d.retw_row as usize & rmask].get() + retw_live);
                    let r = fin.max(base);
                    // Second leg of the ring-bound proof: retire is
                    // monotone.
                    debug_assert!(r >= lr, "retire must be monotone");
                    lr = r;
                    issue[d.islot_row as usize & irmask] = C::of(start);
                    complete[d.slot_row as usize & rmask] = C::of(fin);
                    retire[d.slot_row as usize & rmask] = C::of(r);
                    class[d.slot_row as usize & rmask] = final_class;
                    stall[(final_class & 3) as usize] += r - base;
                }

                lane.cycle_of_group = cog;
                lane.dispatched_in_group = dig;
                lane.branch_resume = br;
                lane.last_retire = lr;
                lane.c_branch += stall[CLS_BRANCH as usize];
                lane.c_cache += stall[CLS_CACHE as usize];
                lane.c_dram += stall[CLS_DRAM as usize];
            }
        }

        // Clone lanes copy their representative's end state: every u64
        // counter is provably equal (see the dedup comment), and the
        // result conversion below divides by each lane's *own* frequency.
        for k in 0..nl {
            let r = self.rep[k];
            if r != k {
                let (head, tail) = self.lanes.split_at_mut(k);
                let (src, dst) = (&head[r], &mut tail[0]);
                dst.cycle_of_group = src.cycle_of_group;
                dst.dispatched_in_group = src.dispatched_in_group;
                dst.branch_resume = src.branch_resume;
                dst.last_retire = src.last_retire;
                dst.c_branch = src.c_branch;
                dst.c_cache = src.c_cache;
                dst.c_dram = src.c_dram;
                dst.dram_loads = src.dram_loads;
                dst.dram_stores = src.dram_stores;
                dst.true_lm = src.true_lm;
                dst.lm_end = src.lm_end;
            }
        }

        // Feed the MLP monitors in LLC arrival order, one per monitored
        // lane, in lane order. A clone lane's stream is its
        // representative's (they are identical by construction).
        if let Some(mons) = monitors {
            let mut mi = 0usize;
            for (k, spec) in specs.iter().enumerate() {
                if !spec.monitor {
                    continue;
                }
                let mon = &mut mons[mi];
                mi += 1;
                let lv = &mut self.llc_loads[self.rep[k]];
                lv.sort_by_key(|&(t, idx, _)| (t, idx));
                for &(_, idx, code) in lv.iter() {
                    mon.on_llc_load(idx as u64, llc_stack_dist_of(code));
                }
            }
            assert_eq!(mi, mons.len(), "one monitor per monitored lane");
        }

        self.lanes
            .iter()
            .map(|lane| {
                let cycles = lane.last_retire.max(1);
                let to_s = |c: u64| c as f64 / lane.freq_hz;
                let time_s = to_s(cycles);
                let t_branch_s = to_s(lane.c_branch);
                let t_cache_s = to_s(lane.c_cache);
                let tmem_s = to_s(lane.c_dram);
                let t0_s = (time_s - t_branch_s - t_cache_s - tmem_s).max(0.0);
                let ipc = n as f64 / cycles as f64;
                TimingResult {
                    insts: n as u64,
                    cycles,
                    time_s,
                    t0_s,
                    t_branch_s,
                    t_cache_s,
                    tmem_s,
                    dram_loads: lane.dram_loads,
                    dram_stores: lane.dram_stores,
                    true_leading_misses: lane.true_lm,
                    mlp: if lane.true_lm > 0 {
                        lane.dram_loads as f64 / lane.true_lm as f64
                    } else {
                        1.0
                    },
                    ipc,
                    util: ipc / width as f64,
                }
            })
            .collect()
    }
}
