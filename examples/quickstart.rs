//! Quickstart: resolve a small phase database through the content-addressed
//! store, run the proposed RM3 against the idle baseline on a 2-core
//! system, and report energy savings.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! The first run builds the database and persists it under
//! `target/phasedb/`; every later run loads it in milliseconds.

use triad::phasedb::{DbConfig, DbStore};
use triad::rm::ModelKind;
use triad::rm::RmKind;
use triad::sim::engine::{SimConfig, SimModel, Simulator};
use triad::workload::WorkloadSpec;

fn main() {
    // A cache-hungry application (mcf) next to a compute-bound one
    // (povray): the canonical Scenario-1 trade.
    let names = ["mcf", "povray"];
    let apps: Vec<_> =
        triad::trace::suite().into_iter().filter(|a| names.contains(&a.name)).collect();
    println!("resolving the phase database for {:?}...", names);
    let resolved = DbStore::default_cache().resolve(&apps, &DbConfig::default());
    println!(
        "  {} ({})",
        if resolved.outcome.is_hit() { "cache hit" } else { "built and cached" },
        resolved.path.display()
    );
    let db = resolved.db;

    let idle = Simulator::new(&db, 2, SimConfig::idle()).run(&names);
    println!(
        "idle RM (baseline pinned): {:.2} J over {:.2} s",
        idle.total_energy_j, idle.sim_time_s
    );

    for rm in [RmKind::Rm1, RmKind::Rm2, RmKind::Rm3] {
        let cfg = SimConfig::evaluation(rm, SimModel::Online(ModelKind::Model3));
        let r = Simulator::new(&db, 2, cfg).run(&names);
        println!(
            "{}: {:.2} J -> {:.1}% savings ({} RM invocations, QoS violations {}/{})",
            rm.label(),
            r.total_energy_j,
            100.0 * r.savings_vs(&idle),
            r.rm_invocations,
            r.qos_violations,
            r.intervals_checked
        );
    }

    // Dynamic-workload variant: churn the same two-app pool mid-run (a new
    // app replaces the old one roughly every 12 intervals, cold-restarting
    // that core's phase position) and replay the materialized trace.
    let churn = WorkloadSpec::Churn {
        n_cores: 2,
        seed: 7,
        period: 12,
        horizon: 96,
        scenario: None,
        pool: names.iter().map(|s| s.to_string()).collect(),
    };
    let trace = churn.materialize().expect("churn spec materializes");
    let cfg = SimConfig::evaluation(RmKind::Rm3, SimModel::Online(ModelKind::Model3));
    let r = Simulator::new(&db, 2, cfg).run_trace(&trace);
    println!(
        "RM3 under churn ({} arrivals, fingerprint {}…): {:.2} J, QoS violations {}/{}",
        r.arrivals,
        &trace.fingerprint()[..12],
        r.total_energy_j,
        r.qos_violations,
        r.intervals_checked
    );
}
