//! Crash-recovery tests for the journaled campaign path: resume-skip,
//! panic quarantine, typed error rows, and torn-tail repair. These live
//! in their own test binary (own process) because the failpoint registry
//! and telemetry totals are process-global.

use std::path::PathBuf;
use std::sync::Mutex;
use triad_energy::EnergyBackendConfig;
use triad_phasedb::{DbConfig, DbStore, PhaseDb};
use triad_sim::{Campaign, CampaignError, ExperimentSpec};
use triad_util::failpoint::{self, FaultKind, Trigger};

/// Failpoints and telemetry are process-global; every test serializes on
/// this and starts from a disarmed registry.
static GUARD: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    let g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::clear_all();
    g
}

/// The shared-workspace-store subset the campaign unit tests use.
fn small_db() -> PhaseDb {
    let names = ["mcf", "libquantum", "povray", "gcc"];
    let apps: Vec<_> =
        triad_trace::suite().into_iter().filter(|a| names.contains(&a.name)).collect();
    DbStore::default_cache().resolve(&apps, &DbConfig::fast()).db
}

fn quick_specs() -> Vec<ExperimentSpec> {
    vec![
        ExperimentSpec::new("a/rm3", &["mcf", "povray"]).perfect().target_intervals(6),
        ExperimentSpec::new("b/rm3", &["libquantum", "gcc"]).perfect().target_intervals(6),
        ExperimentSpec::new("c/rm3", &["mcf", "gcc"]).perfect().target_intervals(6),
    ]
}

fn temp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("triad-journal-test-{tag}-{}.jsonl", std::process::id()))
}

#[test]
fn resume_skips_simulation_and_reproduces_rows_byte_identically() {
    let _g = locked();
    let db = small_db();
    let path = temp_journal("resume");
    let _ = std::fs::remove_file(&path);
    let campaign = Campaign::new(quick_specs()).threads(1);

    let fresh = campaign.run_journaled(&db, &path, false).unwrap();
    assert_eq!((fresh.simulated, fresh.resumed), (3, 0));
    assert_eq!(fresh.rows.len(), 3);

    triad_telemetry::enable(triad_telemetry::METRICS);
    triad_telemetry::reset();
    let resumed = campaign.run_journaled(&db, &path, true).unwrap();
    assert_eq!((resumed.simulated, resumed.resumed), (0, 3));
    assert_eq!(
        Campaign::report_full(&fresh.rows, &fresh.quarantined).to_string_compact(),
        Campaign::report_full(&resumed.rows, &resumed.quarantined).to_string_compact(),
        "resumed rows must be byte-identical to the uninterrupted run"
    );
    let snap = triad_telemetry::snapshot();
    assert_eq!(snap.counter("campaign.rows_resumed"), 3);
    assert_eq!(snap.counter("journal.records_loaded"), 3);
    assert_eq!(snap.counter("campaign.rows_simulated"), 0);
    triad_telemetry::disable_all();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn a_panicking_spec_is_quarantined_and_the_rest_complete() {
    let _g = locked();
    let db = small_db();
    let campaign = Campaign::new(quick_specs()).threads(1);
    let baseline = campaign.try_run(&db);
    assert!(baseline.quarantined.is_empty());

    // One injected panic: exactly one spec quarantines as a structured
    // error row; the other rows complete and match the clean run.
    failpoint::configure("campaign.row", Trigger::Once, FaultKind::Panic);
    let faulted = campaign.try_run(&db);
    failpoint::clear_all();
    assert_eq!(faulted.rows.len(), 2);
    assert_eq!(faulted.quarantined.len(), 1);
    let q = &faulted.quarantined[0];
    assert!(matches!(q.error, CampaignError::RowPanic { .. }), "got {:?}", q.error.kind_label());
    assert!(q.error.to_string().contains("injected panic"));
    for row in &faulted.rows {
        let clean = baseline.rows.iter().find(|r| r.spec == row.spec).unwrap();
        assert_eq!(
            row.to_json().to_string_compact(),
            clean.to_json().to_string_compact(),
            "surviving rows must be unaffected by the quarantine"
        );
    }

    // The full report carries the error rows; the plain report shape is
    // unchanged when nothing quarantined.
    let report = Campaign::report_full(&faulted.rows, &faulted.quarantined).to_string_compact();
    assert!(report.contains("\"quarantined\""));
    assert!(report.contains("row_panic"));
    assert_eq!(
        Campaign::report_full(&baseline.rows, &baseline.quarantined).to_string_compact(),
        Campaign::report(&baseline.rows).to_string_compact()
    );
}

#[test]
fn a_quarantined_journal_run_reconverges_on_resume() {
    let _g = locked();
    let db = small_db();
    let path = temp_journal("reconverge");
    let _ = std::fs::remove_file(&path);
    let campaign = Campaign::new(quick_specs()).threads(1);
    let baseline = campaign.try_run(&db);

    failpoint::configure("campaign.row", Trigger::Once, FaultKind::Panic);
    let faulted = campaign.run_journaled(&db, &path, false).unwrap();
    failpoint::clear_all();
    assert_eq!((faulted.rows.len(), faulted.quarantined.len()), (2, 1));

    // Resume without faults: the journal replays the two completed rows
    // and only the quarantined spec is simulated.
    let resumed = campaign.run_journaled(&db, &path, true).unwrap();
    assert_eq!((resumed.simulated, resumed.resumed), (1, 2));
    assert_eq!(
        Campaign::report(&resumed.rows).to_string_compact(),
        Campaign::report(&baseline.rows).to_string_compact(),
        "recovered campaign must match the uninterrupted run byte for byte"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn workload_and_backend_failures_become_typed_error_rows() {
    let _g = locked();
    let db = small_db();

    // A backend that cannot build (missing table file) quarantines with
    // the energy_backend kind instead of panicking the campaign.
    let bad_backend = ExperimentSpec::new("bad-backend", &["mcf", "povray"])
        .perfect()
        .target_intervals(6)
        .energy_backend(EnergyBackendConfig::Table { path: "/nonexistent/table.json".into() });
    // A dynamic workload whose (re-)materialization faults mid-campaign
    // quarantines with the workload kind. Static app-list specs never
    // hit `workload.materialize`; only a WorkloadSpec-backed one does.
    let dynamic = ExperimentSpec::for_workload_spec(
        "bad-workload",
        triad_workload::WorkloadSpec::Steady { n_cores: 2, scenario: None, seed: 7 },
    )
    .unwrap()
    .perfect()
    .target_intervals(6);
    failpoint::configure("workload.materialize", Trigger::Once, FaultKind::Error);
    let good =
        ExperimentSpec::new("good/rm3", &["libquantum", "gcc"]).perfect().target_intervals(6);
    let outcome = Campaign::new(vec![dynamic, bad_backend, good]).threads(1).try_run(&db);
    failpoint::clear_all();

    assert_eq!(outcome.rows.len(), 1, "the healthy spec must still complete");
    assert_eq!(outcome.rows[0].spec.name, "good/rm3");
    let kinds: Vec<&str> = outcome.quarantined.iter().map(|q| q.error.kind_label()).collect();
    assert_eq!(kinds, ["workload", "energy_backend"]);
    for q in &outcome.quarantined {
        let json = q.to_json().to_string_compact();
        assert!(json.contains("\"kind\"") && json.contains("\"message\""), "{json}");
    }
}

#[test]
fn a_torn_tail_resimulates_only_the_torn_row() {
    let _g = locked();
    let db = small_db();
    let path = temp_journal("torn");
    let _ = std::fs::remove_file(&path);
    let campaign = Campaign::new(quick_specs()).threads(1);
    let fresh = campaign.run_journaled(&db, &path, false).unwrap();
    assert_eq!(fresh.rows.len(), 3);

    // Tear the final record mid-write, as a crash would.
    let text = std::fs::read_to_string(&path).unwrap();
    let torn = &text[..text.len() - 17];
    std::fs::write(&path, torn).unwrap();

    let resumed = campaign.run_journaled(&db, &path, true).unwrap();
    assert_eq!((resumed.simulated, resumed.resumed), (1, 2));
    assert_eq!(
        Campaign::report(&resumed.rows).to_string_compact(),
        Campaign::report(&fresh.rows).to_string_compact()
    );

    // The repaired journal now holds all three rows again: a second
    // resume simulates nothing.
    let again = campaign.run_journaled(&db, &path, true).unwrap();
    assert_eq!((again.simulated, again.resumed), (0, 3));
    let _ = std::fs::remove_file(&path);
}

/// The journal record carries the `SimResult` fields the report row JSON
/// omits (`arrivals`, `departures`, `vacancy_energy_j`): the churn and
/// workload presenters consume them, so a resumed row must restore them
/// exactly rather than zeroing them.
#[test]
fn resumed_rows_restore_the_journal_only_simresult_fields() {
    let _g = locked();
    let db = small_db();
    let path = temp_journal("churn-resume");
    let _ = std::fs::remove_file(&path);
    let churn = triad_workload::WorkloadSpec::Churn {
        n_cores: 2,
        seed: 7,
        period: 3,
        horizon: 12,
        scenario: None,
        pool: vec!["mcf".into(), "povray".into()],
    };
    let spec = ExperimentSpec::for_workload_spec("churn/rm3", churn)
        .unwrap()
        .perfect()
        .target_intervals(6);
    let campaign = Campaign::new(vec![spec]).threads(1);
    let fresh = campaign.run_journaled(&db, &path, false).unwrap();
    assert_eq!(fresh.rows.len(), 1);
    assert!(fresh.rows[0].result.arrivals > 2, "churn must replace apps mid-run");

    let resumed = campaign.run_journaled(&db, &path, true).unwrap();
    assert_eq!((resumed.simulated, resumed.resumed), (0, 1));
    let (a, b) = (&fresh.rows[0].result, &resumed.rows[0].result);
    assert_eq!((a.arrivals, a.departures), (b.arrivals, b.departures));
    assert_eq!(a.vacancy_energy_j.to_bits(), b.vacancy_energy_j.to_bits());
    let _ = std::fs::remove_file(&path);
}

/// A transient write fault mid-append may leave a partial, unterminated
/// prefix in the journal; the retry (and any later append after an
/// exhausted retry budget) must lead with a newline so the next record
/// never glues onto the fragment and gets dropped with it.
#[test]
fn append_faults_never_corrupt_the_following_record() {
    let _g = locked();
    let path = temp_journal("retry");
    let _ = std::fs::remove_file(&path);
    let row = |i: i64| triad_util::json::Json::obj().set("i", i);
    let j = triad_sim::journal::RowJournal::open(&path, true).unwrap();
    j.append("k1", &row(1));

    // One transient fault: the retry lands the record intact.
    failpoint::configure("journal.append", Trigger::Once, FaultKind::Error);
    j.append("k2", &row(2));

    // A fault outlasting the whole retry budget loses its record; the
    // *next* append must still start on a fresh line.
    failpoint::configure("journal.append", Trigger::Always, FaultKind::Error);
    j.append("k3", &row(3));
    failpoint::clear_all();
    j.append("k4", &row(4));
    drop(j);

    let loaded = triad_sim::journal::load(&path).unwrap();
    assert_eq!(loaded.corrupt_dropped, 0, "no record may merge with a failed write");
    assert_eq!(loaded.rows.len(), 3);
    for k in ["k1", "k2", "k4"] {
        assert!(loaded.rows.contains_key(k), "{k} must survive");
    }
    assert!(!loaded.rows.contains_key("k3"), "the exhausted-budget append stays lost");
    let _ = std::fs::remove_file(&path);
}

/// A stale record under a matching key cannot be replayed into the wrong
/// campaign: the resume key covers the spec's canonical JSON, so editing
/// the spec invalidates the journal naturally (different key, full
/// re-simulation) rather than producing mixed rows.
#[test]
fn editing_a_spec_invalidates_its_journal_record() {
    let _g = locked();
    let db = small_db();
    let path = temp_journal("rekey");
    let _ = std::fs::remove_file(&path);
    let campaign = Campaign::new(quick_specs()).threads(1);
    let fresh = campaign.run_journaled(&db, &path, false).unwrap();
    assert_eq!(fresh.simulated, 3);

    let mut edited = quick_specs();
    edited[0] = edited[0].clone().alpha(1.25);
    let resumed = Campaign::new(edited).threads(1).run_journaled(&db, &path, true).unwrap();
    assert_eq!((resumed.simulated, resumed.resumed), (1, 2));
    assert_ne!(
        resumed.rows[0].to_json().to_string_compact(),
        fresh.rows[0].to_json().to_string_compact()
    );
    let _ = std::fs::remove_file(&path);
}
