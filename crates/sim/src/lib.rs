//! # triad-sim — the multi-core RM simulator and experiment drivers
//!
//! The paper evaluates its resource managers with an in-house interval
//! simulator (Fig. 5): per-application phase traces are replayed against the
//! detailed-simulation database, a global event queue advances whichever
//! core finishes its 100M-instruction interval first, and the RM is invoked
//! at every such event to re-optimize the whole system. This crate is that
//! simulator, plus everything §IV needs around it:
//!
//! * [`engine`] — the event loop with overhead accounting (DVFS transition,
//!   core-resize drain, RM software execution) and the paper's energy
//!   bookkeeping (§IV-D1: per-app core+memory energy until the app reaches
//!   the suite-maximum instruction count, plus uncore energy to the end);
//! * [`finish`] — the keyed min-index structure (tournament tree) behind
//!   the engine's earliest-finisher selection;
//! * [`perfect`] — the ground-truth interval model (database lookups of the
//!   *next* interval), used for Fig. 2 and the "perfect" bars of Fig. 9;
//! * the `triad-workload` crate (its core types re-exported here) —
//!   Fig. 1's scenario taxonomy, the §IV-C generator, and the dynamic
//!   [`WorkloadSpec`]/[`WorkloadTrace`] machinery the simulator replays
//!   via [`Simulator::run_trace`] (arrivals, churn, vacancy);
//! * [`qos_eval`] — the Fig. 7/8 evaluation: violation probability,
//!   expected magnitude and distribution over all phases × current ×
//!   target settings, weighted by SimPoint phase weights;
//! * [`campaign`] — declarative experiment specs executed in parallel with
//!   shared, memoized idle baselines, canonical JSON reports, per-row
//!   panic isolation and typed [`CampaignError`]s;
//! * [`journal`] — the durable append-only row journal behind
//!   [`Campaign::run_journaled`]: crash-safe resume re-keys completed
//!   rows instead of re-simulating them;
//! * [`experiments`] — campaign-based drivers that regenerate Fig. 2,
//!   Fig. 6 and Fig. 9.

pub mod campaign;
pub mod engine;
pub mod experiments;
pub mod finish;
pub mod journal;
pub mod perfect;
pub mod qos_eval;

pub use campaign::{Campaign, CampaignError, CampaignOutcome, CampaignRow, ExperimentSpec};
pub use engine::{SimConfig, SimModel, SimResult, Simulator};
pub use perfect::PerfectModel;
pub use qos_eval::{
    evaluate_model_on_trace, evaluate_models, evaluate_models_with, trace_app_weights,
    QosEvaluation,
};
pub use triad_workload::{
    generate_workloads, scenario_of_pair, Scenario, Workload, WorkloadSpec, WorkloadTrace,
};
