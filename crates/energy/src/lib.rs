//! # triad-energy — McPAT-style power and energy models
//!
//! The paper derives power numbers from McPAT (§IV-A) and models energy as
//! core energy (static + dynamic) plus DRAM access energy, treating other
//! components as constant (§III-D). McPAT itself is unavailable, so this
//! crate provides a parametric model with the same *structure* and
//! published-magnitude constants:
//!
//! * **dynamic core power** scales with `V²·f`, the core size (wider
//!   pipelines toggle superlinearly more capacitance) and the achieved
//!   utilization (a memory-stalled core clock-gates most of its logic);
//! * **static core power** scales with core size (leakage area) and supply
//!   voltage;
//! * **DRAM energy** is a fixed energy per line transfer;
//! * **uncore power** (LLC + NoC, the paper's "global" 2 GHz / 1 V domain)
//!   is a constant per-core-slice power, integrated until the end of the
//!   simulation (§IV-D).
//!
//! Only *relative* energies across `(c, f, w)` matter for the RM's decisions
//! and for the savings ratios the paper reports; the constants below put
//! cores in the 1–6 W range of McPAT results for this class of OoO designs.
//!
//! ## Pluggable backends
//!
//! The parametric model is one of several interchangeable accounting
//! models behind the [`EnergyBackend`] trait — the seam every consumer
//! (the RM's Eq. 4–5, the simulator's bookkeeping, the reports) goes
//! through:
//!
//! * [`EnergyModel`] — this crate's McPAT-parametric model (the default;
//!   bit-compatible with the pre-trait accounting);
//! * [`TableBackend`] — measured per-(core size, V/f) power tables with
//!   linear interpolation, loadable from canonical JSON;
//! * [`ScaledBackend`] — per-[`TechNode`] dynamic/leakage factors over the
//!   parametric base for technology-sensitivity sweeps.
//!
//! Experiment specs select one via the serializable
//! [`EnergyBackendConfig`]; see the trait docs for the contract every
//! implementation must uphold.

pub mod backend;
pub mod scaled;
pub mod table;

pub use backend::{EnergyBackend, EnergyBackendConfig};
pub use scaled::{ScaledBackend, TechNode};
pub use table::{TableBackend, TablePoint, TABLE_SCHEMA};

use triad_arch::{CoreSize, VfPoint};

/// Reference (baseline) operating point used to normalize the model:
/// 2 GHz / 1 V — Table I's baseline DVFS setting.
pub const REF_FREQ_HZ: f64 = 2.0e9;
/// Reference voltage, volts.
pub const REF_VOLT: f64 = 1.0;

/// Per-core-size power constants at the reference point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorePowerParams {
    /// Dynamic power at 2 GHz / 1 V and full utilization, watts.
    pub dyn_ref_w: f64,
    /// Static (leakage) power at 1 V, watts.
    pub static_ref_w: f64,
}

/// The full energy model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Power constants for S, M, L (indexed by [`CoreSize::index`]).
    pub core: [CorePowerParams; 3],
    /// Fraction of dynamic power that is utilization-independent (clocks,
    /// fetch): `P_dyn = dyn_ref · (floor + (1 − floor)·util) · V²f-scale`.
    pub dyn_floor: f64,
    /// Energy per DRAM line transfer (read or writeback), joules.
    pub dram_energy_per_access_j: f64,
    /// Uncore (LLC slice + NoC) power per core, watts — constant, on the
    /// global 2 GHz / 1 V domain.
    pub uncore_w_per_core: f64,
}

impl EnergyModel {
    /// Default constants (McPAT-magnitude, 32 nm-class OoO cores):
    /// S ≈ 1.4 W, M ≈ 2.8 W, L ≈ 5.5 W dynamic at the reference point (linear
    /// in width — the premise of §I's core-adaptation argument); leakage
    /// grows sublinearly with width (shared uncore-side structures), and
    /// clock gating leaves an 11 % floor of peak dynamic power when stalled
    /// (`dyn_floor = 0.11` — the value every published number in this
    /// repository was calibrated with; an earlier comment claimed 8 %, but
    /// the constant, not the prose, has always driven the results).
    pub const fn default_model() -> Self {
        EnergyModel {
            core: [
                CorePowerParams { dyn_ref_w: 1.40, static_ref_w: 0.42 },
                CorePowerParams { dyn_ref_w: 2.80, static_ref_w: 0.60 },
                CorePowerParams { dyn_ref_w: 5.50, static_ref_w: 0.82 },
            ],
            dyn_floor: 0.11,
            dram_energy_per_access_j: 20e-9,
            uncore_w_per_core: 0.30,
        }
    }

    /// Dynamic core power at operating point `vf` with utilization
    /// `util ∈ [0, 1]` (retired IPC over dispatch width).
    pub fn core_dynamic_power(&self, c: CoreSize, vf: VfPoint, util: f64) -> f64 {
        let p = self.core[c.index()];
        let activity = self.dyn_floor + (1.0 - self.dyn_floor) * util.clamp(0.0, 1.0);
        p.dyn_ref_w * activity * (vf.volt / REF_VOLT).powi(2) * (vf.freq_hz / REF_FREQ_HZ)
    }

    /// Static core power at operating point `vf` (leakage ∝ V over the
    /// 0.8–1.25 V range).
    pub fn core_static_power(&self, c: CoreSize, vf: VfPoint) -> f64 {
        self.core[c.index()].static_ref_w * (vf.volt / REF_VOLT)
    }

    /// Total core power.
    pub fn core_power(&self, c: CoreSize, vf: VfPoint, util: f64) -> f64 {
        self.core_dynamic_power(c, vf, util) + self.core_static_power(c, vf)
    }

    /// Core energy over a duration.
    pub fn core_energy(&self, c: CoreSize, vf: VfPoint, util: f64, time_s: f64) -> f64 {
        self.core_power(c, vf, util) * time_s
    }

    /// DRAM energy for `accesses` line transfers (reads + writebacks).
    pub fn dram_energy(&self, accesses: u64) -> f64 {
        accesses as f64 * self.dram_energy_per_access_j
    }

    /// Uncore energy for an `n_cores` system over a duration.
    pub fn uncore_energy(&self, n_cores: usize, time_s: f64) -> f64 {
        self.uncore_w_per_core * n_cores as f64 * time_s
    }

    /// Full-utilization dynamic-power (capacitance) ratio between core
    /// sizes at the reference point — the Eq. 4 extrapolation factor.
    pub fn dyn_ratio(&self, target: CoreSize, current: CoreSize) -> f64 {
        self.core[target.index()].dyn_ref_w / self.core[current.index()].dyn_ref_w
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::default_model()
    }
}

impl EnergyBackend for EnergyModel {
    fn label(&self) -> String {
        "mcpat".into()
    }

    fn core_dynamic_power(&self, c: CoreSize, vf: VfPoint, util: f64) -> f64 {
        EnergyModel::core_dynamic_power(self, c, vf, util)
    }

    fn core_static_power(&self, c: CoreSize, vf: VfPoint) -> f64 {
        EnergyModel::core_static_power(self, c, vf)
    }

    fn dram_energy_per_access_j(&self) -> f64 {
        self.dram_energy_per_access_j
    }

    fn uncore_w_per_core(&self) -> f64 {
        self.uncore_w_per_core
    }

    fn dyn_ratio(&self, target: CoreSize, current: CoreSize) -> f64 {
        EnergyModel::dyn_ratio(self, target, current)
    }
}

/// Time to drain the pipeline for a core resize (§III-E): the instruction
/// window must empty before ports/banks are gated, taking roughly
/// `ROB / IPC` cycles at the current frequency.
pub fn resize_drain_time_s(c: CoreSize, ipc: f64, freq_hz: f64) -> f64 {
    (c.rob() as f64 / ipc.max(0.1)) / freq_hz
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_arch::DvfsGrid;

    fn vf(f_ghz: f64) -> VfPoint {
        VfPoint { freq_hz: f_ghz * 1e9, volt: DvfsGrid::voltage_for(f_ghz * 1e9) }
    }

    #[test]
    fn reference_point_reproduces_constants() {
        let m = EnergyModel::default_model();
        let p = m.core_dynamic_power(CoreSize::M, vf(2.0), 1.0);
        assert!((p - m.core[1].dyn_ref_w).abs() < 1e-9);
        let s = m.core_static_power(CoreSize::M, vf(2.0));
        assert!((s - 0.60).abs() < 1e-9);
    }

    #[test]
    fn dynamic_power_scales_quadratically_with_voltage() {
        let m = EnergyModel::default_model();
        // Same frequency ratio cancels: compare explicit points.
        let lo = m.core_dynamic_power(CoreSize::M, vf(1.0), 1.0);
        let hi = m.core_dynamic_power(CoreSize::M, vf(3.25), 1.0);
        // (0.8² × 0.5) vs (1.25² × 1.625): ratio ≈ 7.93.
        let expected = (1.25f64.powi(2) * 1.625) / (0.8f64.powi(2) * 0.5);
        assert!((hi / lo - expected).abs() < 1e-9, "{}", hi / lo);
    }

    #[test]
    fn bigger_cores_burn_more_power() {
        let m = EnergyModel::default_model();
        let p: Vec<f64> = CoreSize::ALL.iter().map(|&c| m.core_power(c, vf(2.0), 0.8)).collect();
        assert!(p[0] < p[1] && p[1] < p[2], "{p:?}");
    }

    #[test]
    fn stalled_core_burns_less_dynamic_power() {
        let m = EnergyModel::default_model();
        let busy = m.core_dynamic_power(CoreSize::L, vf(2.0), 1.0);
        let stalled = m.core_dynamic_power(CoreSize::L, vf(2.0), 0.0);
        assert!((stalled / busy - m.dyn_floor).abs() < 1e-12);
    }

    #[test]
    fn quadratic_dvfs_cost_exceeds_linear_core_cost() {
        // The paper's motivating asymmetry (§I): compensating performance
        // with frequency costs quadratically; compensating with core size
        // costs roughly linearly. Energy per instruction at iso-throughput:
        // M at 3 GHz must beat... rather, L at 2 GHz should cost less power
        // than M pushed to the frequency giving the same dispatch slots.
        let m = EnergyModel::default_model();
        // M at 4 slots × 3.25 GHz ≈ 13 Gslot/s vs L at 8 slots × 1.75 GHz = 14.
        let m_pushed = m.core_power(CoreSize::M, vf(3.25), 0.9);
        let l_relaxed = m.core_power(CoreSize::L, vf(1.75), 0.45);
        assert!(
            l_relaxed < m_pushed,
            "wide-and-slow should beat narrow-and-fast: L={l_relaxed} M={m_pushed}"
        );
    }

    #[test]
    fn dram_and_uncore_energy_accounting() {
        let m = EnergyModel::default_model();
        assert!((m.dram_energy(1_000_000) - 0.02).abs() < 1e-12);
        assert!((m.uncore_energy(4, 2.0) - m.uncore_w_per_core * 4.0 * 2.0).abs() < 1e-12);
    }

    #[test]
    fn energy_is_power_times_time() {
        let m = EnergyModel::default_model();
        let p = m.core_power(CoreSize::S, vf(1.5), 0.5);
        assert!((m.core_energy(CoreSize::S, vf(1.5), 0.5, 3.0) - 3.0 * p).abs() < 1e-12);
    }

    #[test]
    fn resize_drain_is_submicrosecond() {
        // §III-E: "a few hundred cycles" — negligible vs 100M-instruction
        // intervals.
        let t = resize_drain_time_s(CoreSize::L, 2.0, 2.0e9);
        assert!(t < 1e-6, "{t}");
        assert!(t > 0.0);
    }

    #[test]
    fn utilization_is_clamped() {
        let m = EnergyModel::default_model();
        let a = m.core_dynamic_power(CoreSize::M, vf(2.0), 1.5);
        let b = m.core_dynamic_power(CoreSize::M, vf(2.0), 1.0);
        assert_eq!(a, b);
    }
}
