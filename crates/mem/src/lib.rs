//! # triad-mem — DRAM timing model
//!
//! Table I memory system: 100 ns base latency, a contention-queue model and
//! 5 GB/s of bandwidth per core. The model is deliberately simple — a FIFO
//! service queue in front of a fixed-latency device — because that is
//! exactly what the paper simulates:
//!
//! * each request occupies the channel for `line / bandwidth`
//!   (64 B / 5 GB/s = 12.8 ns);
//! * a request arriving while the channel is busy queues behind the
//!   outstanding ones;
//! * completion is `queue delay + 100 ns` after arrival.
//!
//! The queue operates in *core cycles* so the out-of-order timing model can
//! use it directly at any DVFS point: construct it per run with
//! [`DramQueue::new`] giving the core frequency.

/// Table I DRAM parameters (per core).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramParams {
    /// Zero-load latency in seconds (100 ns).
    pub base_latency_s: f64,
    /// Peak bandwidth per core in bytes/second (5 GB/s).
    pub bandwidth_bps: f64,
    /// Transfer granularity in bytes (64 B line).
    pub line_bytes: f64,
}

impl DramParams {
    /// The paper's configuration.
    pub const fn table1() -> Self {
        DramParams { base_latency_s: 100e-9, bandwidth_bps: 5.0e9, line_bytes: 64.0 }
    }

    /// Channel occupancy per request, in seconds (12.8 ns).
    pub fn service_time_s(&self) -> f64 {
        self.line_bytes / self.bandwidth_bps
    }
}

impl Default for DramParams {
    fn default() -> Self {
        Self::table1()
    }
}

/// A FIFO contention queue in core-cycle units.
#[derive(Debug, Clone)]
pub struct DramQueue {
    /// Base (zero-load) latency in cycles at the configured core frequency.
    base_cycles: u64,
    /// Channel occupancy per request in 1/1024ths of a cycle (fixed point,
    /// keeping sub-cycle service times exact at high frequencies).
    service_fp: u64,
    /// Fixed-point cycle at which the channel becomes free.
    next_free_fp: u64,
    /// Requests observed.
    pub requests: u64,
    /// Total queueing delay in cycles (diagnostic; excludes base latency).
    pub queue_cycles: u64,
}

const FP: u64 = 1024;

impl DramQueue {
    /// Create a queue for a core running at `freq_hz`.
    pub fn new(params: DramParams, freq_hz: f64) -> Self {
        DramQueue {
            base_cycles: (params.base_latency_s * freq_hz).round() as u64,
            service_fp: (params.service_time_s() * freq_hz * FP as f64).round() as u64,
            next_free_fp: 0,
            requests: 0,
            queue_cycles: 0,
        }
    }

    /// Issue a request at `arrival_cycle`; returns its completion cycle.
    #[inline]
    pub fn request(&mut self, arrival_cycle: u64) -> u64 {
        let arrival_fp = arrival_cycle * FP;
        let start = arrival_fp.max(self.next_free_fp);
        self.next_free_fp = start + self.service_fp;
        self.requests += 1;
        let delay = (start - arrival_fp) / FP;
        self.queue_cycles += delay;
        arrival_cycle + delay + self.base_cycles
    }

    /// Zero-load latency in cycles.
    pub fn base_cycles(&self) -> u64 {
        self.base_cycles
    }

    /// Channel occupancy per request, rounded up to whole cycles. The
    /// amortized queueing delay any single request can add beyond the
    /// requests before it — used by cycle-bound proofs, not by the model.
    pub fn service_cycles_ceil(&self) -> u64 {
        self.service_fp.div_ceil(FP)
    }

    /// Reset channel state and counters.
    pub fn reset(&mut self) {
        self.next_free_fp = 0;
        self.requests = 0;
        self.queue_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants() {
        let p = DramParams::table1();
        assert!((p.base_latency_s - 100e-9).abs() < 1e-15);
        assert!((p.service_time_s() - 12.8e-9).abs() < 1e-15);
    }

    #[test]
    fn zero_load_latency_is_base() {
        // 2 GHz: 100 ns = 200 cycles.
        let mut q = DramQueue::new(DramParams::table1(), 2.0e9);
        assert_eq!(q.base_cycles(), 200);
        assert_eq!(q.request(1000), 1200);
        // A request long after: still zero-load.
        assert_eq!(q.request(100_000), 100_200);
        assert_eq!(q.queue_cycles, 0);
    }

    #[test]
    fn back_to_back_requests_queue_at_service_rate() {
        // 2 GHz: service = 12.8 ns = 25.6 cycles.
        let mut q = DramQueue::new(DramParams::table1(), 2.0e9);
        let c0 = q.request(0);
        let c1 = q.request(0);
        let c2 = q.request(0);
        assert_eq!(c0, 200);
        // Second starts 25.6 cycles later → 25 whole cycles of delay.
        assert_eq!(c1, 225);
        assert_eq!(c2, 251);
        assert!(q.queue_cycles > 0);
    }

    #[test]
    fn saturated_stream_throughput_matches_bandwidth() {
        let mut q = DramQueue::new(DramParams::table1(), 2.0e9);
        let n = 10_000u64;
        let mut last = 0;
        for _ in 0..n {
            last = q.request(0);
        }
        // n lines at 12.8 ns each = 128 µs = 256_000 cycles (+base).
        let expected = (n as f64 * 25.6) as u64 + 200;
        assert!((last as i64 - expected as i64).abs() < 32, "{last} vs {expected}");
    }

    #[test]
    fn spaced_requests_do_not_queue() {
        let mut q = DramQueue::new(DramParams::table1(), 2.0e9);
        for i in 0..100u64 {
            let arrival = i * 1000; // far beyond the 25.6-cycle service time
            assert_eq!(q.request(arrival), arrival + 200);
        }
        assert_eq!(q.queue_cycles, 0);
    }

    #[test]
    fn completion_is_monotone_for_fifo_arrivals() {
        let mut q = DramQueue::new(DramParams::table1(), 3.25e9);
        let mut prev = 0;
        for i in 0..1000u64 {
            let c = q.request(i * 3);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn frequency_scales_cycle_counts() {
        let q1 = DramQueue::new(DramParams::table1(), 1.0e9);
        let q3 = DramQueue::new(DramParams::table1(), 3.0e9);
        assert_eq!(q1.base_cycles(), 100);
        assert_eq!(q3.base_cycles(), 300);
    }

    #[test]
    fn reset_clears_channel() {
        let mut q = DramQueue::new(DramParams::table1(), 2.0e9);
        for _ in 0..100 {
            q.request(0);
        }
        q.reset();
        assert_eq!(q.request(0), 200);
        assert_eq!(q.requests, 1);
    }
}
