//! Fig. 7: QoS-violation probability, expected violation and standard
//! deviation for Model1 / Model2 / Model3.
use triad_arch::SystemConfig;
use triad_bench::db;
use triad_sim::evaluate_models;

fn main() {
    let sys = SystemConfig::table1(4);
    let evals = evaluate_models(db(), &sys);
    println!("FIG. 7: QoS violations over all phases x current x target settings");
    println!("==================================================================");
    println!("{:<8} {:>12} {:>12} {:>12}", "model", "P(violation)", "E[violation]", "std");
    for (k, e) in &evals {
        println!(
            "{:<8} {:>11.2}% {:>11.2}% {:>11.2}%",
            k.label(),
            e.probability * 100.0,
            e.expected_violation * 100.0,
            e.std_violation * 100.0
        );
    }
    let p: Vec<f64> = evals.iter().map(|(_, e)| e.probability).collect();
    let ev: Vec<f64> = evals.iter().map(|(_, e)| e.expected_violation).collect();
    let sd: Vec<f64> = evals.iter().map(|(_, e)| e.std_violation).collect();
    println!("\nModel3 vs Model1: probability {:+.0}% (paper: -46%)", (p[2] / p[0] - 1.0) * 100.0);
    println!("Model3 vs Model2: probability {:+.0}% (paper: -32%)", (p[2] / p[1] - 1.0) * 100.0);
    println!("Model3 vs Model2: expected    {:+.0}% (paper: -49%)", (ev[2] / ev[1] - 1.0) * 100.0);
    println!("Model3 vs Model2: std         {:+.0}% (paper: -26%)", (sd[2] / sd[1] - 1.0) * 100.0);
}
