//! Fig. 8: distribution of QoS-violation magnitudes per model, normalized
//! to the maximum bin across models.
use triad_arch::SystemConfig;
use triad_bench::db;
use triad_sim::evaluate_models;

fn main() {
    let sys = SystemConfig::table1(4);
    let evals = evaluate_models(db(), &sys);
    let max = evals
        .iter()
        .map(|(_, e)| e.histogram_max())
        .fold(0.0f64, f64::max);
    println!("FIG. 8: violation-magnitude distribution (normalized to max bin)");
    println!("=================================================================");
    print!("{:<12}", "violation");
    for (k, _) in &evals {
        print!("{:>10}", k.label());
    }
    println!();
    let bins = evals[0].1.histogram.len();
    for b in 0..bins {
        let lo = b as f64 * evals[0].1.bin_width * 100.0;
        let hi = lo + evals[0].1.bin_width * 100.0;
        let row: Vec<f64> = evals.iter().map(|(_, e)| e.histogram[b] / max).collect();
        if row.iter().all(|&x| x < 1e-6) {
            continue;
        }
        print!("{:>4.1}-{:<5.1}% ", lo, hi);
        for x in row {
            print!("{:>10.3}", x);
        }
        println!();
    }
    println!("\npaper shape: Model3 may show slightly more small (~5%) violations but");
    println!("substantially fewer in total, with the large-violation tail cut hardest");
}
