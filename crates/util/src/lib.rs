//! # triad-util — self-contained infrastructure shared by every crate
//!
//! The workspace builds in fully offline environments, so the usual
//! ecosystem crates are replaced by small, deterministic, std-only
//! implementations with compatible call-site APIs:
//!
//! * [`rand`] — a seedable xoshiro256++ PRNG behind the familiar
//!   `StdRng::seed_from_u64` / `random` / `random_bool` / `random_range`
//!   surface. Determinism across platforms and thread counts is a hard
//!   requirement for the phase-trace generators and the campaign layer.
//! * [`par`] — an order-preserving parallel map over scoped threads, the
//!   substrate for both the phase-database build and campaign execution.
//! * [`json`] — a minimal JSON document model with a canonical writer and
//!   a streaming parser (the writer's inverse), so campaign results are
//!   byte-identical across runs and thread counts and persisted artifacts
//!   round-trip losslessly.
//! * [`hash`] — std-only SHA-256 plus a canonical [`hash::Fingerprint`]
//!   builder, the basis of the content-addressed phase-database store.
//! * [`mod@bench`] — a tiny wall-clock measurement harness for the
//!   `harness = false` benches.
//! * [`failpoint`] — deterministic fault injection at named sites
//!   (`TRIAD_FAILPOINTS` or programmatic), inert at one relaxed load +
//!   branch per site, the substrate of the crash-safety tests.

pub mod bench;
pub mod failpoint;
pub mod hash;
pub mod json;
mod json_parse;
pub mod par;
pub mod rand;
