//! Table I: the baseline system configuration.
use triad_arch::{CacheGeometry, CoreSize, DvfsGrid, SystemConfig};
use triad_mem::DramParams;

fn main() {
    println!("TABLE I: Baseline configuration");
    println!("================================");
    println!("Core: out-of-order");
    println!("{:<14} {:>6} {:>6} {:>6}", "", "L", "M", "S");
    let p = |f: fn(CoreSize) -> u32| {
        (f(CoreSize::L), f(CoreSize::M), f(CoreSize::S))
    };
    let (l, m, s) = p(|c| c.params().issue_width);
    println!("{:<14} {l:>6} {m:>6} {s:>6}", "issue width");
    let (l, m, s) = p(|c| c.params().rob);
    println!("{:<14} {l:>6} {m:>6} {s:>6}", "ROB");
    let (l, m, s) = p(|c| c.params().rs);
    println!("{:<14} {l:>6} {m:>6} {s:>6}", "RS");
    let (l, m, s) = p(|c| c.params().lsq);
    println!("{:<14} {l:>6} {m:>6} {s:>6}", "LSQ");
    println!();
    for n in [2usize, 4, 8] {
        let g = CacheGeometry::table1(n);
        println!(
            "{n}-core LLC: {} MB, {}-way, per-core allocation {:?} ways",
            g.llc.capacity_bytes / (1024 * 1024),
            g.llc.ways,
            g.per_core_way_range(n)
        );
    }
    let g = CacheGeometry::table1(4);
    println!("L1-I/L1-D: {} KB {}-way | L2: {} KB {}-way | 64 B blocks, LRU",
        g.l1i.capacity_bytes / 1024, g.l1i.ways, g.l2.capacity_bytes / 1024, g.l2.ways);
    let d = DramParams::table1();
    println!("DRAM: {} ns base latency, contention queue, {} GB/s per core",
        d.base_latency_s * 1e9, d.bandwidth_bps / 1e9);
    let grid = DvfsGrid::table1();
    println!("DVFS: per-core {:.2}-{:.2} GHz / {:.2}-{:.2} V ({} points), baseline {:.1} GHz / {:.1} V",
        grid.point(0).freq_ghz(), grid.point(grid.len() - 1).freq_ghz(),
        grid.point(0).volt, grid.point(grid.len() - 1).volt, grid.len(),
        grid.baseline_point().freq_ghz(), grid.baseline_point().volt);
    let sys = SystemConfig::table1(4);
    println!("RM interval: {}M instructions, QoS alpha = {}",
        sys.interval_insts / 1_000_000, sys.alpha);
}
