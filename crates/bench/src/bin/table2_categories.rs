//! Table II: application categories, derived by running the paper's §IV-C
//! classification criteria on the detailed-simulation database.
use triad_bench::db;
use triad_phasedb::characterize_app;
use triad_trace::Category;

fn main() {
    let db = db();
    println!("TABLE II: Application categories (derived via the paper's criteria)");
    println!("====================================================================");
    for cat in Category::ALL {
        let names: Vec<&str> = db
            .apps
            .iter()
            .map(characterize_app)
            .filter(|c| c.derived == cat)
            .map(|c| c.name)
            .collect();
        println!("{:<6} ({}): {}", cat.label(), names.len(), names.join(", "));
    }
    println!();
    println!("{:<12} {:>7} {:>7} {:>7} {:>6} {:>6} {:>6}  {:<6}",
        "app", "MPKI@4", "MPKI@8", "MPKI@12", "MLP-S", "MLP-M", "MLP-L", "class");
    let mut matches = 0;
    for e in &db.apps {
        let c = characterize_app(e);
        if c.derived == c.expected {
            matches += 1;
        }
        println!("{:<12} {:>7.2} {:>7.2} {:>7.2} {:>6.2} {:>6.2} {:>6.2}  {}",
            c.name, c.mpki[0], c.mpki[1], c.mpki[2], c.mlp[0], c.mlp[1], c.mlp[2],
            c.derived.label());
    }
    println!("\n{matches}/27 match the paper's Table II");
}
