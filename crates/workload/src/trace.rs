//! The materialized workload program: [`WorkloadTrace`].
//!
//! A trace is a sorted list of arrive/depart events on the **global
//! interval clock** — the count of RM intervals completed across all
//! cores. That clock is deterministic (it does not depend on wall-clock
//! time, settings or thread scheduling), advances even while individual
//! cores sit vacant, and is exactly the event stream the simulator already
//! processes, so replay is bit-reproducible by construction.
//!
//! Semantics:
//!
//! * an **arrival** on a vacant core starts the named application at
//!   `phase_offset` within its phase sequence;
//! * an arrival on an **occupied** core is a churn replacement: the old
//!   application departs and the new one cold-starts at its offset;
//! * a **departure** vacates the core; vacant cores complete no intervals
//!   and burn idle power until the next arrival;
//! * a trace with `horizon: Some(h)` runs until `h` global intervals have
//!   completed; `horizon: None` is reserved for purely static traces (one
//!   arrival per core at `t = 0`), which run to the per-application
//!   instruction target exactly like the pre-subsystem simulator.
//!
//! The canonical JSON form (`triad-workload/v1`) is byte-stable, and
//! [`WorkloadTrace::fingerprint`] hashes it through `triad_util::hash` so
//! campaign rows can record which workload produced them.

use triad_util::hash::Fingerprint;
use triad_util::json::Json;

/// Schema identifier of the canonical JSON form.
pub const TRACE_SCHEMA: &str = "triad-workload/v1";

/// What happens at a trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// Start (or churn-replace with) an application on the core.
    Arrive {
        /// Suite application name.
        app: String,
        /// Starting position within the application's phase sequence
        /// (jittered phase profile; `0` = a cold start from the beginning).
        phase_offset: usize,
    },
    /// Vacate the core.
    Depart,
}

/// One scheduled workload event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global interval count at which the event fires (`0` = before the
    /// first simulated interval).
    pub at: u64,
    /// Target core.
    pub core: usize,
    /// Arrival or departure.
    pub kind: EventKind,
}

/// A materialized, replayable workload program.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadTrace {
    /// System width the trace schedules onto.
    pub n_cores: usize,
    /// Run length in global completed intervals; `None` = static trace
    /// running to the per-application instruction target.
    pub horizon: Option<u64>,
    /// Events sorted by `(at, core)`.
    pub events: Vec<TraceEvent>,
}

impl WorkloadTrace {
    /// The static trace equivalent to a plain app list: one arrival per
    /// core at `t = 0`, offset 0, no horizon.
    pub fn steady<S: AsRef<str>>(apps: &[S]) -> WorkloadTrace {
        WorkloadTrace {
            n_cores: apps.len(),
            horizon: None,
            events: apps
                .iter()
                .enumerate()
                .map(|(core, app)| TraceEvent {
                    at: 0,
                    core,
                    kind: EventKind::Arrive { app: app.as_ref().to_string(), phase_offset: 0 },
                })
                .collect(),
        }
    }

    /// If the trace is purely static (one offset-0 arrival per core at
    /// `t = 0`, no horizon), the per-core application names — the form the
    /// pre-subsystem simulator path accepts verbatim.
    pub fn static_names(&self) -> Option<Vec<&str>> {
        if self.horizon.is_some() || self.events.len() != self.n_cores {
            return None;
        }
        let mut names = vec![None; self.n_cores];
        for e in &self.events {
            match &e.kind {
                EventKind::Arrive { app, phase_offset: 0 } if e.at == 0 => {
                    names[e.core] = Some(app.as_str());
                }
                _ => return None,
            }
        }
        names.into_iter().collect()
    }

    /// Distinct applications the trace references, in suite order (the
    /// exact database a campaign over this trace needs).
    pub fn apps(&self) -> Vec<String> {
        triad_trace::suite()
            .into_iter()
            .filter(|a| {
                self.events.iter().any(
                    |e| matches!(&e.kind, EventKind::Arrive { app, .. } if app.as_str() == a.name),
                )
            })
            .map(|a| a.name.to_string())
            .collect()
    }

    /// Number of arrival events (initial assignments included).
    pub fn n_arrivals(&self) -> usize {
        self.events.iter().filter(|e| matches!(e.kind, EventKind::Arrive { .. })).count()
    }

    /// Scheduled occupancy per application: for every arrival, the global
    /// intervals until the next event on that core (or the horizon). For
    /// static traces each assignment counts 1. Used to weight QoS
    /// evaluations by how much of the trace each application occupies.
    pub fn app_durations(&self) -> Vec<(String, u64)> {
        let mut totals: Vec<(String, u64)> = Vec::new();
        let mut add = |app: &str, d: u64| match totals.iter_mut().find(|(a, _)| a == app) {
            Some((_, t)) => *t += d,
            None => totals.push((app.to_string(), d)),
        };
        for (i, e) in self.events.iter().enumerate() {
            let EventKind::Arrive { app, .. } = &e.kind else { continue };
            let duration = match self.horizon {
                None => 1,
                Some(h) => {
                    let end = self.events[i + 1..]
                        .iter()
                        .find(|n| n.core == e.core)
                        .map(|n| n.at)
                        .unwrap_or(h)
                        .min(h);
                    end.saturating_sub(e.at).max(1)
                }
            };
            add(app, duration);
        }
        totals
    }

    /// Structural validation: sorted events, known applications, coherent
    /// occupancy (no departures from vacant cores), and a horizon covering
    /// every event — or, for `horizon: None`, the static shape.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_cores == 0 {
            return Err("trace needs at least one core".into());
        }
        if self.n_arrivals() == 0 {
            return Err("trace schedules no arrivals".into());
        }
        let mut occupied = vec![false; self.n_cores];
        let mut prev: Option<(u64, usize)> = None;
        for e in &self.events {
            if e.core >= self.n_cores {
                return Err(format!(
                    "event at {} targets core {} of {}",
                    e.at, e.core, self.n_cores
                ));
            }
            if let Some(p) = prev {
                if (e.at, e.core) < p {
                    return Err(format!("events not sorted by (at, core) at t={}", e.at));
                }
                if (e.at, e.core) == p {
                    return Err(format!("duplicate event slot (t={}, core {})", e.at, e.core));
                }
            }
            prev = Some((e.at, e.core));
            if let Some(h) = self.horizon {
                if e.at >= h {
                    return Err(format!("event at {} is beyond the horizon {h}", e.at));
                }
            }
            match &e.kind {
                EventKind::Arrive { app, phase_offset } => {
                    let Some(spec) = triad_trace::by_name(app) else {
                        return Err(format!("unknown application {app:?}"));
                    };
                    if *phase_offset >= spec.n_intervals() {
                        return Err(format!(
                            "phase offset {phase_offset} out of range for {app} \
                             ({} intervals)",
                            spec.n_intervals()
                        ));
                    }
                    occupied[e.core] = true;
                }
                EventKind::Depart => {
                    if !occupied[e.core] {
                        return Err(format!("departure from vacant core {} at {}", e.core, e.at));
                    }
                    occupied[e.core] = false;
                }
            }
        }
        if self.horizon.is_none() && self.static_names().is_none() {
            return Err(
                "dynamic traces (departures, churn, offsets or late arrivals) need a horizon"
                    .into(),
            );
        }
        Ok(())
    }

    /// Canonical JSON form (`triad-workload/v1`).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("schema", TRACE_SCHEMA)
            .set("n_cores", self.n_cores)
            .set(
                "horizon",
                match self.horizon {
                    Some(h) => Json::from(h),
                    None => Json::Null,
                },
            )
            .set(
                "events",
                Json::Arr(
                    self.events
                        .iter()
                        .map(|e| {
                            let j = Json::obj().set("at", e.at).set("core", e.core);
                            match &e.kind {
                                EventKind::Arrive { app, phase_offset } => j
                                    .set("kind", "arrive")
                                    .set("app", app.clone())
                                    .set("phase_offset", *phase_offset),
                                EventKind::Depart => j.set("kind", "depart"),
                            }
                        })
                        .collect(),
                ),
            )
    }

    /// Inverse of [`WorkloadTrace::to_json`] (also validates).
    pub fn from_json(j: &Json) -> Result<WorkloadTrace, String> {
        match j.get("schema") {
            Some(Json::Str(s)) if s == TRACE_SCHEMA => {}
            other => return Err(format!("expected schema {TRACE_SCHEMA:?}, got {other:?}")),
        }
        let n_cores = uint_field(j, "n_cores")? as usize;
        let horizon = match j.get("horizon") {
            Some(Json::Null) | None => None,
            _ => Some(uint_field(j, "horizon")?),
        };
        let Some(Json::Arr(items)) = j.get("events") else {
            return Err("trace: missing array field \"events\"".into());
        };
        let mut events = Vec::with_capacity(items.len());
        for item in items {
            let at = uint_field(item, "at")?;
            let core = uint_field(item, "core")? as usize;
            let kind = match item.get("kind") {
                Some(Json::Str(k)) if k == "arrive" => {
                    let app = match item.get("app") {
                        Some(Json::Str(s)) => s.clone(),
                        _ => return Err("arrive event: missing string field \"app\"".into()),
                    };
                    EventKind::Arrive {
                        app,
                        phase_offset: uint_field(item, "phase_offset")? as usize,
                    }
                }
                Some(Json::Str(k)) if k == "depart" => EventKind::Depart,
                other => return Err(format!("event: bad kind {other:?}")),
            };
            events.push(TraceEvent { at, core, kind });
        }
        let trace = WorkloadTrace { n_cores, horizon, events };
        trace.validate()?;
        Ok(trace)
    }

    /// Content fingerprint of the canonical JSON bytes — the identity
    /// campaign rows record so archived results stay attributable to the
    /// exact workload program that produced them.
    pub fn fingerprint(&self) -> String {
        let mut f = Fingerprint::new(TRACE_SCHEMA);
        f.str(&self.to_json().to_string_compact());
        f.hex()
    }
}

/// Read a nonnegative integer field from either of the canonical writer's
/// number encodings.
fn uint_field(j: &Json, key: &str) -> Result<u64, String> {
    match j.get(key) {
        Some(Json::Int(i)) if *i >= 0 => Ok(*i as u64),
        Some(Json::Num(x)) if *x >= 0.0 && x.fract() == 0.0 => Ok(*x as u64),
        other => Err(format!("trace: field {key:?} must be a nonnegative integer, got {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn churny() -> WorkloadTrace {
        WorkloadTrace {
            n_cores: 2,
            horizon: Some(20),
            events: vec![
                TraceEvent {
                    at: 0,
                    core: 0,
                    kind: EventKind::Arrive { app: "mcf".into(), phase_offset: 0 },
                },
                TraceEvent {
                    at: 0,
                    core: 1,
                    kind: EventKind::Arrive { app: "povray".into(), phase_offset: 0 },
                },
                TraceEvent { at: 6, core: 1, kind: EventKind::Depart },
                TraceEvent {
                    at: 10,
                    core: 1,
                    kind: EventKind::Arrive { app: "gcc".into(), phase_offset: 3 },
                },
            ],
        }
    }

    #[test]
    fn steady_round_trips_to_static_names() {
        let t = WorkloadTrace::steady(&["mcf", "povray"]);
        assert_eq!(t.static_names(), Some(vec!["mcf", "povray"]));
        assert!(t.validate().is_ok());
        assert_eq!(t.apps(), vec!["mcf".to_string(), "povray".to_string()]);
    }

    #[test]
    fn dynamic_traces_are_not_static() {
        let t = churny();
        assert!(t.validate().is_ok());
        assert_eq!(t.static_names(), None);
        assert_eq!(t.n_arrivals(), 3);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        for t in [WorkloadTrace::steady(&["mcf", "gcc"]), churny()] {
            let s = t.to_json().to_string_pretty();
            let parsed = triad_util::json::parse(&s).unwrap();
            assert_eq!(WorkloadTrace::from_json(&parsed).unwrap(), t);
        }
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = churny();
        let mut b = churny();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.events[3].kind = EventKind::Arrive { app: "gcc".into(), phase_offset: 4 };
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn validation_rejects_incoherent_traces() {
        let mut t = churny();
        t.horizon = None;
        assert!(t.validate().is_err(), "dynamic traces need a horizon");

        let mut t = churny();
        t.events.remove(1);
        t.events[1] = TraceEvent { at: 6, core: 1, kind: EventKind::Depart };
        assert!(t.validate().is_err(), "departure from a vacant core");

        let mut t = churny();
        t.events[3].kind = EventKind::Arrive { app: "nope".into(), phase_offset: 0 };
        assert!(t.validate().is_err(), "unknown application");

        let mut t = churny();
        t.horizon = Some(5);
        assert!(t.validate().is_err(), "event beyond horizon");

        let mut t = churny();
        t.events.swap(2, 3);
        assert!(t.validate().is_err(), "unsorted events");
    }

    #[test]
    fn app_durations_reflect_occupancy() {
        let d = churny().app_durations();
        // mcf occupies core 0 for the whole 20-interval horizon; povray
        // 0..6 on core 1; gcc 10..20.
        assert_eq!(
            d,
            vec![("mcf".to_string(), 20), ("povray".to_string(), 6), ("gcc".to_string(), 10)]
        );
    }
}
