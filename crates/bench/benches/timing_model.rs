//! Out-of-order timing-model inner-loop cost per simulated RM interval.
//!
//! The ROADMAP's hot-path item: database builds are dominated by
//! `triad_uarch::simulate` — every phase runs it over the whole
//! (core size × frequency × ways) grid, and each call replays one
//! detailed interval (the scaled 100M-instruction window). This bench
//! measures exactly that unit — one `simulate` call over a default-quality
//! detailed window — for a memory-bound and a compute-bound phase, and
//! reports ns/instruction so later SoA/SIMD work has a recorded baseline.
//! Run with `cargo bench -p triad-bench --bench timing_model`.

use std::hint::black_box;
use std::time::Duration;
use triad_arch::{CacheGeometry, CoreSize};
use triad_cache::classify_warm;
use triad_phasedb::DbConfig;
use triad_uarch::{simulate, TimingConfig};
use triad_util::bench::bench;

/// Baseline recorded on the reference dev box (2026-07-28, release build):
/// the out-of-order inner loop retires roughly this many ns/instruction.
/// Not asserted tightly — hardware varies — but a >50× regression fails.
const BASELINE_NS_PER_INST: f64 = 35.0;

fn main() {
    let cfg = DbConfig::default_config();
    let geom = CacheGeometry::table1_scaled(4, cfg.scale);
    let budget = Duration::from_secs(2);

    let mut worst_ns = 0.0f64;
    for name in ["mcf", "povray"] {
        let app = triad_trace::suite().into_iter().find(|a| a.name == name).unwrap();
        let phase = app.phases[0].scaled(cfg.scale as u64);
        let trace = phase.generate(cfg.warmup + cfg.detail, cfg.seed);
        let ct = classify_warm(&trace, &geom, cfg.warmup);
        let detailed = &trace.insts[cfg.warmup..];

        // The paper's baseline operating point: medium core, 2 GHz, 8 ways.
        let tc = TimingConfig::table1(CoreSize::M, 2.0e9, 8);
        let m = bench(
            &format!("timing_model/interval_{name}"),
            Some(detailed.len() as u64),
            budget,
            || {
                black_box(simulate(detailed, &ct, &tc));
            },
        );
        let ns_per_inst = m.secs_per_iter * 1e9 / detailed.len() as f64;
        println!(
            "timing_model/interval_{name:<24} {:>8.1} ns/inst  ({} insts/interval)",
            ns_per_inst,
            detailed.len()
        );
        worst_ns = worst_ns.max(ns_per_inst);
    }
    println!(
        "timing_model/baseline                    {BASELINE_NS_PER_INST:>8.1} ns/inst \
         (recorded 2026-07-28)"
    );
    assert!(
        worst_ns < BASELINE_NS_PER_INST * 50.0,
        "out-of-order inner loop regressed catastrophically: {worst_ns:.1} ns/inst \
         vs recorded baseline {BASELINE_NS_PER_INST:.1}"
    );
}
