//! # triad-rm — the coordinated resource manager (the paper's contribution)
//!
//! This crate implements the online RM of Nejat et al. (IPDPS 2020): every
//! time a core finishes an execution interval, the RM picks, for **every**
//! core, a core size `c`, a VF point `f` and an LLC way allocation `w` that
//! minimize predicted system energy subject to each application's QoS
//! constraint (execution time no worse than the fixed baseline setting,
//! Eq. 3). It does so in two stages, exactly as Fig. 3 describes:
//!
//! 1. **Local optimization** ([`local`]): per core, for every candidate
//!    allocation `w`, find the minimal frequency `f*(w)` — and, for the
//!    proposed RM3, the best core size `c*(w)` — that meets QoS, and record
//!    the resulting energy. The output is an *energy curve* `E(w)`.
//! 2. **Global optimization** ([`global`]): recursively reduce pairs of
//!    energy curves (`E_ab(s) = min_{wa+wb=s} E_a(wa) + E_b(wb)`) to find
//!    the allocation `{w*_j}` minimizing `Σ_j E_j(w_j)` under the LLC
//!    associativity constraint `Σ_j w_j = A`, then back-track the argmins.
//!
//! Three controllers share this machinery ([`RmKind`]):
//! * **RM1** — LLC partitioning only (fixed baseline `c`, `f`);
//! * **RM2** — LLC partitioning + per-core DVFS (Nejat et al., IPDPS 2019);
//! * **RM3** — LLC + DVFS + core adaptation (**the proposed scheme**).
//!
//! Predictions come from an [`IntervalModel`]; [`model::OnlineModel`]
//! implements the paper's analytical models over the hardware-monitor
//! statistics (Eq. 1–5) in three accuracy flavors ([`ModelKind`]):
//! Model1 (total misses), Model2 (constant measured MLP — the prior-art
//! model) and Model3 (the proposed per-configuration leading-miss
//! estimates from the ATD extension).
//!
//! Power and energy enter the models exclusively through the
//! `triad_energy::EnergyBackend` trait: the RM never hard-codes a power
//! parameterization, so experiment specs can swap the McPAT-parametric
//! default for measured tables or technology-scaled variants without
//! touching any optimizer code.

pub mod global;
pub mod local;
pub mod model;
pub mod planner;
pub mod qos;

pub use global::{
    optimize_partition, reduce_curves, reduce_curves_at, reduce_curves_into, EnergyCurve,
};
pub use local::{local_optimize, local_optimize_into, IntervalModel, LocalPlan, RmKind};
pub use model::{ModelKind, Observation, OnlineModel};
pub use planner::{plan_system, DecisionMemo, PlanView, PlannerState, RmDecision};
pub use qos::{qos_ok, violation_magnitude};
