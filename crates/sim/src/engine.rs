//! The interval-event RM simulator (Fig. 5).
//!
//! Each core replays its application's per-interval phase trace against the
//! detailed-simulation database. The global event is always "the core that
//! finishes its current 100M-instruction interval first"; at that instant
//! the finishing core's monitor statistics are refreshed, its energy curve
//! regenerated, the global optimization re-run over the (cached) curves of
//! all cores, and the new system setting applied — with DVFS-transition,
//! core-resize and RM-software overheads charged when enabled (§III-E).
//!
//! Energy bookkeeping follows §IV-D1: each application's core and memory
//! energy counts until it has executed the suite-maximum instruction count
//! (the paper's 4146B; applications restart when they finish early), and
//! the uncore (LLC + NoC) energy accrues until the end of the simulation.
//!
//! Planning is incremental: each run holds a persistent
//! [`triad_rm::PlannerState`] (the reduction forest) plus a decision memo
//! keyed by the joint occupant signature, wrapped in the private
//! `RunPlanner`. An RM invocation updates exactly one leaf in place and
//! re-reduces only its O(log n) ancestors — or skips the reduction
//! entirely when the joint state was seen before — producing decisions
//! (settings, predicted energy *and* reported `ops`) byte-identical to
//! the from-scratch `plan_system` formulation.

use crate::finish::FinishQueue;
use crate::perfect::PerfectModel;
use std::sync::Arc;
use triad_arch::{
    CoreId, CoreSize, Setting, SystemConfig, DVFS_TRANSITION_ENERGY_J, DVFS_TRANSITION_TIME_S,
};
use triad_energy::{resize_drain_time_s, EnergyBackend, EnergyBackendConfig, EnergyModel};
use triad_mem::DramParams;
use triad_phasedb::{AppDbEntry, PhaseDb, PhaseRecord};
use triad_rm::{
    local_optimize_into, DecisionMemo, LocalPlan, ModelKind, Observation, OnlineModel, PlanView,
    PlannerState, RmKind,
};
use triad_telemetry::{Counter, Histogram, SpanName};
use triad_workload::{EventKind, WorkloadTrace};

static RUN_SPAN: SpanName = SpanName::new("sim.run");
static RUN_TRACE_SPAN: SpanName = SpanName::new("sim.run_trace");
static RM_INVOCATIONS: Counter = Counter::new("sim.rm_invocations");
static MEMO_HITS: Counter = Counter::new("sim.memo_hits");
static MEMO_MISSES: Counter = Counter::new("sim.memo_misses");
static REPLAN_DIRTY_NODES: Histogram = Histogram::new("sim.replan_dirty_nodes");
static FINISH_UPDATES: Counter = Counter::new("sim.finish_updates");
static ARRIVALS: Counter = Counter::new("sim.arrivals");
static DEPARTURES: Counter = Counter::new("sim.departures");
static VACANCY_FFWD: Counter = Counter::new("sim.vacancy_fastforwards");

/// Which predictor the RM uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimModel {
    /// One of the paper's online analytical models.
    Online(ModelKind),
    /// Ground-truth lookups of the next interval (Fig. 2 / Fig. 9 bound).
    Perfect,
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The controller; `None` = idle RM (baseline pinned — the reference
    /// for energy savings).
    pub rm: Option<RmKind>,
    /// Predictor flavor.
    pub model: SimModel,
    /// Charge DVFS/resize/RM-execution overheads (§III-E).
    pub overheads: bool,
    /// QoS slack `α` (Eq. 3).
    pub alpha: f64,
    /// Instructions per RM interval (Table I: 100M).
    pub interval_insts: f64,
    /// Target instruction count per application, in intervals of the
    /// sequence; the paper uses the suite maximum (4146B instructions).
    pub target_intervals: usize,
    /// RM software instructions charged per model evaluation / reduction
    /// iteration (calibrated so an 8-core RM3 invocation costs ≈100K
    /// instructions, §III-E).
    pub rm_instr_per_op: f64,
}

impl SimConfig {
    /// Configuration used by the paper's headline results: the given RM and
    /// model, overheads on.
    pub fn evaluation(rm: RmKind, model: SimModel) -> Self {
        SimConfig {
            rm: Some(rm),
            model,
            overheads: true,
            alpha: triad_arch::QOS_ALPHA,
            interval_insts: 100e6,
            target_intervals: max_suite_intervals(),
            rm_instr_per_op: 25.0,
        }
    }

    /// The idle-RM reference (baseline setting until the end).
    pub fn idle() -> Self {
        SimConfig { rm: None, ..Self::evaluation(RmKind::Rm3, SimModel::Perfect) }
    }

    /// Perfect-model configuration without overheads (Fig. 2's
    /// "perfect assumptions regarding modeling accuracy and overheads").
    pub fn perfect(rm: RmKind) -> Self {
        SimConfig { overheads: false, ..Self::evaluation(rm, SimModel::Perfect) }
    }
}

/// The suite-maximum application length in intervals (the paper's "4146B
/// instructions as the longest application").
pub fn max_suite_intervals() -> usize {
    triad_trace::suite().iter().map(|a| a.n_intervals()).max().unwrap()
}

/// Outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Total counted energy (per-app core+memory until target, plus uncore
    /// until the end), joules.
    pub total_energy_j: f64,
    /// Core + memory part.
    pub core_mem_energy_j: f64,
    /// Uncore part.
    pub uncore_energy_j: f64,
    /// Wall-clock end of simulation, seconds.
    pub sim_time_s: f64,
    /// RM invocations performed.
    pub rm_invocations: u64,
    /// Total RM algorithm operations (model evaluations + reduction
    /// iterations).
    pub rm_ops: u64,
    /// Completed intervals whose actual time exceeded the actual baseline
    /// time for the same phase (QoS violations observed online).
    pub qos_violations: u64,
    /// Completed intervals checked.
    pub intervals_checked: u64,
    /// Mean relative violation magnitude over violating intervals (Eq. 6).
    pub mean_violation: f64,
    /// Application arrivals processed (initial assignments included).
    pub arrivals: u64,
    /// Application departures (explicit departs plus churn replacements).
    pub departures: u64,
    /// Idle-core energy charged while cores sat vacant between arrivals,
    /// joules (already included in `total_energy_j`; 0 for static runs).
    pub vacancy_energy_j: f64,
}

impl SimResult {
    /// Energy savings of `self` relative to a reference (idle-RM) run.
    pub fn savings_vs(&self, idle: &SimResult) -> f64 {
        1.0 - self.total_energy_j / idle.total_energy_j
    }
}

/// Per-core live state. The core's cached local plan lives in the
/// run's [`RunPlanner`] leaf, not here — the planner owns all curves.
struct Core<'a> {
    entry: &'a AppDbEntry,
    /// Stable database index of `entry` (plan-identity for the memo).
    app_id: u32,
    setting: Setting,
    /// Interval index within the (restarting) sequence.
    seq_pos: usize,
    /// Instructions completed in the current interval.
    insts_done: f64,
    /// Total instructions executed (across restarts).
    total_insts: f64,
    /// Stall time still to burn before instructions progress (overheads).
    stall_s: f64,
    /// Counted core+memory energy.
    energy_j: f64,
    /// Whether this app's energy is still being counted (until target).
    counting: bool,
    /// Setting at the start of the current interval (for QoS checks).
    interval_setting: Setting,
    /// Violation bookkeeping.
    violations: u64,
    checked: u64,
    violation_sum: f64,
}

impl<'a> Core<'a> {
    fn record(&self) -> &'a PhaseRecord {
        let phase = self.entry.spec.sequence[self.seq_pos % self.entry.spec.sequence.len()];
        &self.entry.records[phase]
    }

    /// Ground-truth seconds/instruction at the current setting.
    fn tpi(&self, sys: &SystemConfig) -> f64 {
        let vf = sys.dvfs.point(self.setting.vf);
        self.record().tpi(self.setting.core, vf.freq_hz, self.setting.ways)
    }

    /// Ground-truth joules/instruction at the current setting.
    fn epi(&self, sys: &SystemConfig, em: &dyn EnergyBackend) -> f64 {
        let vf = sys.dvfs.point(self.setting.vf);
        self.record().energy_pi(self.setting.core, vf, self.setting.ways, em)
    }

    /// Time until this core completes its current interval.
    fn time_to_finish(&self, sys: &SystemConfig, interval: f64) -> f64 {
        self.stall_s + (interval - self.insts_done) * self.tpi(sys)
    }
}

/// What one planner leaf currently holds — the memo-key component for one
/// core slot. Together with the run-fixed configuration (`RmKind`, model,
/// α, grids, backend) a signature vector fully determines every leaf
/// curve, hence the whole decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SlotSig {
    /// Vacant, or occupied with no completed interval: the baseline-pinned
    /// plan.
    Pinned,
    /// Planned from the identified phase record. For online models
    /// `setting` is the interval setting whose monitor statistics fed the
    /// model; for the perfect model the plan is setting-independent and
    /// `setting` is the baseline.
    Planned { app: u32, phase: u32, setting: Setting },
}

/// Per-run planning state: the persistent reduction forest, the decision
/// memo over joint occupant signatures, and a scratch [`LocalPlan`] the
/// model refresh writes into (one allocation per run, reused per
/// invocation). Run-local, so campaign-level parallelism is untouched.
struct RunPlanner {
    state: PlannerState,
    memo: DecisionMemo<Vec<SlotSig>>,
    /// Current signature per core slot (the memo key).
    sig: Vec<SlotSig>,
    /// Buffer for the finishing core's freshly computed local plan.
    scratch: LocalPlan,
}

impl RunPlanner {
    fn new(sys: &SystemConfig) -> Self {
        let baseline = sys.baseline_setting();
        RunPlanner {
            state: PlannerState::new(sys.n_cores, sys.way_range(), sys.total_ways(), baseline),
            memo: DecisionMemo::new(),
            sig: vec![SlotSig::Pinned; sys.n_cores],
            scratch: LocalPlan::pinned(sys.way_range(), baseline),
        }
    }

    /// Install the scratch plan as core `j`'s leaf under signature `sig`.
    fn set_planned(&mut self, j: CoreId, sig: SlotSig) {
        self.state.set_leaf(j, &self.scratch);
        self.sig[j] = sig;
    }

    /// Reset core `j` to the shared pinned-baseline plan (vacated slot or
    /// fresh arrival). No-op when the leaf is already pinned.
    fn set_pinned(&mut self, j: CoreId) {
        if self.sig[j] != SlotSig::Pinned {
            self.state.set_leaf_pinned(j);
            self.sig[j] = SlotSig::Pinned;
        }
    }

    /// The decision for the current joint state: a memo hit skips the
    /// reduction outright (allocation-free); a miss re-reduces the dirty
    /// O(log n) path and stores the result.
    fn decide(&mut self) -> PlanView<'_> {
        if self.memo.get(self.sig.as_slice()).is_none() {
            MEMO_MISSES.incr();
            let view = self.state.replan();
            self.memo.insert(self.sig.clone(), view);
            REPLAN_DIRTY_NODES.observe(self.state.last_reduced_nodes());
        } else {
            MEMO_HITS.incr();
        }
        self.memo.get(self.sig.as_slice()).expect("decision just inserted")
    }
}

/// The RM simulator.
pub struct Simulator<'a> {
    /// System description (core count, grids, geometry).
    pub sys: SystemConfig,
    /// Detailed-simulation database.
    pub db: &'a PhaseDb,
    /// Power/energy accounting backend (both the ground-truth bookkeeping
    /// and the online RM's predictions go through it). Shared so campaigns
    /// build each distinct backend — and read any table file — once.
    pub em: Arc<dyn EnergyBackend>,
    /// Run configuration.
    pub cfg: SimConfig,
    /// Memory latency for the online models (Eq. 2), seconds.
    pub lmem_s: f64,
}

impl<'a> Simulator<'a> {
    /// Create a simulator for an `n_cores` Table I system with the default
    /// (McPAT-parametric) energy backend.
    pub fn new(db: &'a PhaseDb, n_cores: usize, cfg: SimConfig) -> Self {
        Simulator {
            sys: SystemConfig::table1(n_cores),
            db,
            em: Arc::new(EnergyModel::default_model()),
            cfg,
            lmem_s: DramParams::table1().base_latency_s,
        }
    }

    /// Create a simulator with an explicit energy backend.
    ///
    /// Panics when `energy` describes a backend that cannot be built (a
    /// missing table file, an unknown node) — callers that need graceful
    /// handling should [`EnergyBackendConfig::build`] first and use
    /// [`Simulator::with_backend`].
    pub fn with_energy_config(
        db: &'a PhaseDb,
        n_cores: usize,
        cfg: SimConfig,
        energy: &EnergyBackendConfig,
    ) -> Self {
        let em =
            energy.build().unwrap_or_else(|e| panic!("energy backend {}: {e}", energy.label()));
        Self::with_backend(db, n_cores, cfg, Arc::from(em))
    }

    /// Create a simulator around an already-constructed backend.
    pub fn with_backend(
        db: &'a PhaseDb,
        n_cores: usize,
        cfg: SimConfig,
        em: Arc<dyn EnergyBackend>,
    ) -> Self {
        Simulator { em, ..Self::new(db, n_cores, cfg) }
    }

    /// Run a workload (one application name per core) to completion.
    pub fn run(&self, app_names: &[&str]) -> SimResult {
        let _span = RUN_SPAN.enter();
        assert_eq!(app_names.len(), self.sys.n_cores, "one application per core");
        let baseline = self.sys.baseline_setting();
        let mut cores: Vec<Core<'a>> =
            app_names.iter().map(|name| self.fresh_core(name, 0, baseline)).collect();

        let interval = self.cfg.interval_insts;
        let target_insts = self.cfg.target_intervals as f64 * interval;
        let mut planner = RunPlanner::new(&self.sys);
        let mut finish = FinishQueue::new(cores.len());
        let mut now = 0.0f64;
        let mut rm_invocations = 0u64;
        let mut rm_ops = 0u64;
        let mut finish_updates = 0u64;

        while cores.iter().any(|c| c.total_insts < target_insts) {
            // Next event: the earliest interval completion.
            for (i, c) in cores.iter().enumerate() {
                finish.set(i, c.time_to_finish(&self.sys, interval));
            }
            finish_updates += cores.len() as u64;
            let (j, dt) = finish.min().expect("every core has a finite time to finish");

            // Advance every core by dt, accruing energy.
            for c in cores.iter_mut() {
                self.advance_core(c, dt, target_insts);
            }
            now += dt;

            // The finishing core completes its interval.
            self.complete_interval(&mut cores[j], baseline);

            // Invoke the RM on the finishing core (Fig. 5).
            if let Some(kind) = self.cfg.rm {
                rm_invocations += 1;
                let ops = self.invoke_rm(&mut cores, &mut planner, j, kind, baseline);
                rm_ops += ops;
            } else {
                cores[j].interval_setting = cores[j].setting;
            }
        }

        RM_INVOCATIONS.add(rm_invocations);
        FINISH_UPDATES.add(finish_updates);
        ARRIVALS.add(app_names.len() as u64);
        let core_mem: f64 = cores.iter().map(|c| c.energy_j).sum();
        let uncore = self.em.uncore_energy(self.sys.n_cores, now);
        let violations: u64 = cores.iter().map(|c| c.violations).sum();
        let checked: u64 = cores.iter().map(|c| c.checked).sum();
        let vsum: f64 = cores.iter().map(|c| c.violation_sum).sum();
        SimResult {
            total_energy_j: core_mem + uncore,
            core_mem_energy_j: core_mem,
            uncore_energy_j: uncore,
            sim_time_s: now,
            rm_invocations,
            rm_ops,
            qos_violations: violations,
            intervals_checked: checked,
            mean_violation: if violations > 0 { vsum / violations as f64 } else { 0.0 },
            arrivals: app_names.len() as u64,
            departures: 0,
            vacancy_energy_j: 0.0,
        }
    }

    /// Refresh core `j`'s energy curve (one leaf update), re-run the
    /// incremental global optimization and apply the new system setting
    /// (charging overheads). Cores that have not yet completed an interval
    /// keep their pinned-baseline leaves.
    fn invoke_rm(
        &self,
        cores: &mut [Core<'a>],
        planner: &mut RunPlanner,
        j: CoreId,
        kind: RmKind,
        baseline: Setting,
    ) -> u64 {
        let sig = self.local_plan_into(&cores[j], kind, baseline, &mut planner.scratch);
        planner.set_planned(j, sig);

        let view = planner.decide();
        let ops = view.ops;
        // Apply, charging transition overheads.
        for (c, &new_setting) in cores.iter_mut().zip(view.settings) {
            self.apply_setting(c, new_setting);
        }
        // RM software runs on the invoking core: its time and energy are
        // charged to that core; `ops` already counts the algorithm work.
        self.charge_rm_software(&mut cores[j], ops);
        // The new interval of the finishing core starts at the new setting.
        cores[j].interval_setting = cores[j].setting;
        ops
    }

    /// The model refresh of one RM invocation: read the just-completed
    /// interval's monitor statistics (or, under perfect assumptions, the
    /// next phase's ground truth) and run the local optimization into the
    /// caller's buffer. Returns the slot signature identifying the plan —
    /// everything it depends on beyond the run-fixed configuration.
    fn local_plan_into(
        &self,
        core: &Core<'a>,
        kind: RmKind,
        baseline: Setting,
        out: &mut LocalPlan,
    ) -> SlotSig {
        // The interval just completed ran (mostly) at `interval_setting`;
        // its monitor statistics are what the RM reads. The phase that just
        // executed is at seq_pos − 1.
        let just = core.seq_pos - 1;
        let phase = core.entry.spec.sequence[just % core.entry.spec.sequence.len()];
        let rec: &PhaseRecord = &core.entry.records[phase];

        match self.cfg.model {
            SimModel::Online(mk) => {
                let cur = core.interval_setting;
                let vf = self.sys.dvfs.point(cur.vf);
                let util = rec.util(cur.core, vf.freq_hz, cur.ways);
                let sampled_dyn = self.em.core_dynamic_power(cur.core, vf, util);
                let model = OnlineModel {
                    obs: Observation {
                        stats: rec.monitor_at(cur.core, cur.ways),
                        miss_curve_pi: &rec.miss_curve_pi,
                        load_miss_curve_pi: &rec.load_miss_curve_pi,
                        current: cur,
                        sampled_dyn_w: sampled_dyn,
                    },
                    kind: mk,
                    grid: &self.sys.dvfs,
                    energy: self.em.as_ref(),
                    lmem_s: self.lmem_s,
                };
                local_optimize_into(
                    &model,
                    kind,
                    baseline,
                    &self.sys.dvfs,
                    self.sys.way_range(),
                    self.cfg.alpha,
                    out,
                );
                SlotSig::Planned { app: core.app_id, phase: phase as u32, setting: cur }
            }
            SimModel::Perfect => {
                // Perfect assumptions: the *next* interval's phase is known.
                // The plan does not read the current setting, so the
                // signature pins it to the baseline.
                let next_phase =
                    core.entry.spec.sequence[core.seq_pos % core.entry.spec.sequence.len()];
                let model = PerfectModel {
                    next: &core.entry.records[next_phase],
                    grid: &self.sys.dvfs,
                    energy: self.em.as_ref(),
                };
                local_optimize_into(
                    &model,
                    kind,
                    baseline,
                    &self.sys.dvfs,
                    self.sys.way_range(),
                    self.cfg.alpha,
                    out,
                );
                SlotSig::Planned { app: core.app_id, phase: next_phase as u32, setting: baseline }
            }
        }
    }

    /// Move a core to a new setting, charging DVFS-transition and resize
    /// overheads when enabled.
    fn apply_setting(&self, c: &mut Core<'a>, new_setting: Setting) {
        let old = c.setting;
        if self.cfg.overheads {
            if new_setting.vf != old.vf {
                c.stall_s += DVFS_TRANSITION_TIME_S;
                if c.counting {
                    c.energy_j += DVFS_TRANSITION_ENERGY_J;
                }
            }
            if new_setting.core != old.core {
                let rec = c.record();
                let f = self.sys.dvfs.point(old.vf).freq_hz;
                let ipc = rec.ipc(old.core, f, old.ways);
                c.stall_s += resize_drain_time_s(old.core, ipc, f);
            }
        }
        c.setting = new_setting;
    }

    /// Charge the RM software execution (time and energy) to the invoking
    /// core when overheads are enabled.
    fn charge_rm_software(&self, c: &mut Core<'a>, ops: u64) {
        if self.cfg.overheads {
            let rm_insts = ops as f64 * self.cfg.rm_instr_per_op;
            let tpi = c.tpi(&self.sys);
            let t = rm_insts * tpi;
            c.stall_s += t;
            if c.counting {
                c.energy_j += rm_insts * c.epi(&self.sys, self.em.as_ref());
            }
        }
    }
}

/// Run-level counters folded out of cores as their occupants depart.
#[derive(Default)]
struct Folded {
    energy_j: f64,
    violations: u64,
    checked: u64,
    violation_sum: f64,
}

impl Folded {
    fn absorb(&mut self, c: &Core<'_>) {
        self.energy_j += c.energy_j;
        self.violations += c.violations;
        self.checked += c.checked;
        self.violation_sum += c.violation_sum;
    }
}

/// The dynamic-workload extension: trace-driven runs with arrivals,
/// departures, churn and vacancy.
impl<'a> Simulator<'a> {
    /// Advance one core by `dt` seconds, burning stall time first and
    /// accruing counted energy up to the target instruction count.
    fn advance_core(&self, c: &mut Core<'a>, dt: f64, target_insts: f64) {
        let mut t = dt;
        if c.stall_s > 0.0 {
            let burn = c.stall_s.min(t);
            c.stall_s -= burn;
            t -= burn;
        }
        if t <= 0.0 {
            return;
        }
        let tpi = c.tpi(&self.sys);
        let insts = t / tpi;
        if c.counting {
            // Prorate the crossing interval so energy is counted
            // exactly up to the target instruction count.
            let countable = (target_insts - c.total_insts).clamp(0.0, insts);
            c.energy_j += countable * c.epi(&self.sys, self.em.as_ref());
            if c.total_insts + insts >= target_insts {
                c.counting = false;
            }
        }
        c.insts_done += insts;
        c.total_insts += insts;
    }

    /// Complete the finishing core's interval: online QoS check (actual
    /// time at the chosen setting vs the actual baseline time for this
    /// phase), then step the phase sequence.
    fn complete_interval(&self, c: &mut Core<'a>, baseline: Setting) {
        let finished_setting = c.interval_setting;
        let rec = c.record();
        let vf = self.sys.dvfs.point(finished_setting.vf);
        let t_act = rec.tpi(finished_setting.core, vf.freq_hz, finished_setting.ways);
        let bvf = self.sys.dvfs.point(baseline.vf);
        let t_base = rec.tpi(baseline.core, bvf.freq_hz, baseline.ways);
        c.checked += 1;
        if t_act > t_base * self.cfg.alpha * (1.0 + 1e-9) {
            c.violations += 1;
            c.violation_sum += (t_act - t_base) / t_base;
        }
        c.seq_pos += 1;
        c.insts_done = 0.0;
    }

    /// A freshly arrived occupant: baseline setting, phase position
    /// cold-started at `phase_offset`, no cached plan (its planner leaf
    /// stays pinned until it completes an interval).
    fn fresh_core(&self, app: &str, phase_offset: usize, baseline: Setting) -> Core<'a> {
        let (app_id, entry) = self
            .db
            .app_entry(app)
            .unwrap_or_else(|| panic!("application {app} missing from the database"));
        Core {
            entry,
            app_id: app_id as u32,
            setting: baseline,
            seq_pos: phase_offset,
            insts_done: 0.0,
            total_insts: 0.0,
            stall_s: 0.0,
            energy_j: 0.0,
            counting: true,
            interval_setting: baseline,
            violations: 0,
            checked: 0,
            violation_sum: 0.0,
        }
    }

    /// Power a vacant core burns: the smallest size parked at the lowest
    /// V/f point with zero utilization (leakage plus negligible switching).
    pub fn idle_core_power_w(&self) -> f64 {
        self.em.core_power(CoreSize::S, self.sys.dvfs.point(0), 0.0)
    }

    /// RM invocation after a completed interval in a trace-driven run:
    /// like the static-path invocation, but vacant cores contribute
    /// baseline-pinned plans and receive no setting.
    fn invoke_rm_dyn(
        &self,
        cores: &mut [Option<Core<'a>>],
        planner: &mut RunPlanner,
        j: CoreId,
        kind: RmKind,
        baseline: Setting,
    ) -> u64 {
        let finishing = cores[j].as_ref().expect("finishing core is occupied");
        let sig = self.local_plan_into(finishing, kind, baseline, &mut planner.scratch);
        planner.set_planned(j, sig);
        let ops = self.replan(cores, planner, Some(j));
        let c = cores[j].as_mut().expect("finishing core is occupied");
        c.interval_setting = c.setting;
        ops
    }

    /// Global re-plan over the cached planner leaves (no model refresh):
    /// invoked for every arrival/churn/departure event, and as the second
    /// half of [`Simulator::invoke_rm_dyn`]. The RM software overhead is
    /// charged to `charge_to` when that core is occupied.
    fn replan(
        &self,
        cores: &mut [Option<Core<'a>>],
        planner: &mut RunPlanner,
        charge_to: Option<CoreId>,
    ) -> u64 {
        let view = planner.decide();
        let ops = view.ops;
        for (slot, &new_setting) in cores.iter_mut().zip(view.settings) {
            if let Some(c) = slot {
                self.apply_setting(c, new_setting);
            }
        }
        if let Some(j) = charge_to {
            if let Some(c) = cores[j].as_mut() {
                self.charge_rm_software(c, ops);
            }
        }
        ops
    }

    /// Replay a [`WorkloadTrace`] to completion.
    ///
    /// Static traces (one offset-0 arrival per core at `t = 0`, no
    /// horizon) delegate to [`Simulator::run`] and are bit-identical to
    /// the pre-subsystem path. Dynamic traces run on the global interval
    /// clock: each loop turn completes the earliest-finishing occupied
    /// core's interval, the RM re-plans on every completion *and* on every
    /// arrival/churn/departure event, vacant cores burn
    /// [`Simulator::idle_core_power_w`] (reported as
    /// [`SimResult::vacancy_energy_j`]), and the run ends after
    /// `trace.horizon` global intervals. If every core is vacant the clock
    /// fast-forwards to the next arrival without consuming simulated time.
    pub fn run_trace(&self, trace: &WorkloadTrace) -> SimResult {
        trace.validate().unwrap_or_else(|e| panic!("invalid workload trace: {e}"));
        assert_eq!(trace.n_cores, self.sys.n_cores, "trace width must match the system");
        if let Some(names) = trace.static_names() {
            return self.run(&names);
        }
        let _span = RUN_TRACE_SPAN.enter();
        let horizon = trace.horizon.expect("validate: dynamic traces carry a horizon");

        let baseline = self.sys.baseline_setting();
        let interval = self.cfg.interval_insts;
        let target_insts = self.cfg.target_intervals as f64 * interval;
        let idle_w = self.idle_core_power_w();

        let mut cores: Vec<Option<Core<'a>>> = (0..self.sys.n_cores).map(|_| None).collect();
        let mut planner = RunPlanner::new(&self.sys);
        let mut finish = FinishQueue::new(self.sys.n_cores);
        let mut fold = Folded::default();
        let mut now = 0.0f64;
        let mut completed = 0u64;
        let mut rm_invocations = 0u64;
        let mut rm_ops = 0u64;
        let mut arrivals = 0u64;
        let mut departures = 0u64;
        let mut vacancy_j = 0.0f64;
        let mut ev = 0usize;
        let mut finish_updates = 0u64;
        let mut vacancy_ffwds = 0u64;

        loop {
            // Fire every event due at the current clock; a batch of events
            // is one churn instant and triggers one global re-plan. Both
            // vacated slots and fresh arrivals reset their planner leaf to
            // the pinned baseline.
            let mut fired = false;
            let mut trigger: Option<CoreId> = None;
            while ev < trace.events.len() && trace.events[ev].at <= completed {
                let e = &trace.events[ev];
                ev += 1;
                fired = true;
                match &e.kind {
                    EventKind::Depart => {
                        if let Some(c) = cores[e.core].take() {
                            fold.absorb(&c);
                            departures += 1;
                        }
                        planner.set_pinned(e.core);
                    }
                    EventKind::Arrive { app, phase_offset } => {
                        if let Some(c) = cores[e.core].take() {
                            // Churn replacement: the incumbent departs.
                            fold.absorb(&c);
                            departures += 1;
                        }
                        cores[e.core] = Some(self.fresh_core(app, *phase_offset, baseline));
                        planner.set_pinned(e.core);
                        arrivals += 1;
                        trigger = Some(e.core);
                    }
                }
            }
            if fired && self.cfg.rm.is_some() {
                rm_invocations += 1;
                rm_ops += self.replan(&mut cores, &mut planner, trigger);
            }
            if completed >= horizon {
                break;
            }

            // All cores vacant: fast-forward the clock to the next arrival
            // (no simulated time passes, so no idle energy accrues).
            if cores.iter().all(Option::is_none) {
                match trace.events.get(ev) {
                    Some(e) if e.at < horizon => {
                        vacancy_ffwds += 1;
                        completed = completed.max(e.at);
                        continue;
                    }
                    _ => break,
                }
            }

            // Next event: the earliest interval completion among occupants
            // (vacant slots sit at INFINITY and never win).
            for (i, slot) in cores.iter().enumerate() {
                match slot {
                    Some(c) => finish.set(i, c.time_to_finish(&self.sys, interval)),
                    None => finish.clear(i),
                }
            }
            finish_updates += cores.len() as u64;
            let (j, dt) = finish.min().expect("at least one occupied core");
            debug_assert!(cores[j].is_some(), "the winner must be occupied");

            for slot in cores.iter_mut() {
                match slot {
                    Some(c) => self.advance_core(c, dt, target_insts),
                    None => vacancy_j += idle_w * dt,
                }
            }
            now += dt;

            self.complete_interval(cores[j].as_mut().expect("finishing core"), baseline);
            completed += 1;

            if let Some(kind) = self.cfg.rm {
                rm_invocations += 1;
                rm_ops += self.invoke_rm_dyn(&mut cores, &mut planner, j, kind, baseline);
            } else {
                let c = cores[j].as_mut().expect("finishing core");
                c.interval_setting = c.setting;
            }
        }

        RM_INVOCATIONS.add(rm_invocations);
        FINISH_UPDATES.add(finish_updates);
        ARRIVALS.add(arrivals);
        DEPARTURES.add(departures);
        VACANCY_FFWD.add(vacancy_ffwds);
        for c in cores.into_iter().flatten() {
            fold.absorb(&c);
        }
        let uncore = self.em.uncore_energy(self.sys.n_cores, now);
        SimResult {
            total_energy_j: fold.energy_j + vacancy_j + uncore,
            core_mem_energy_j: fold.energy_j,
            uncore_energy_j: uncore,
            sim_time_s: now,
            rm_invocations,
            rm_ops,
            qos_violations: fold.violations,
            intervals_checked: fold.checked,
            mean_violation: if fold.violations > 0 {
                fold.violation_sum / fold.violations as f64
            } else {
                0.0
            },
            arrivals,
            departures,
            vacancy_energy_j: vacancy_j,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_phasedb::{build_apps, DbConfig};

    fn small_db() -> PhaseDb {
        let names = ["mcf", "libquantum", "povray", "gcc", "lbm"];
        let apps: Vec<_> =
            triad_trace::suite().into_iter().filter(|a| names.contains(&a.name)).collect();
        build_apps(&apps, &DbConfig::fast())
    }

    fn quick(cfg: SimConfig) -> SimConfig {
        SimConfig { target_intervals: 8, ..cfg }
    }

    #[test]
    fn idle_rm_keeps_baseline_and_counts_energy() {
        let db = small_db();
        let sim = Simulator::new(&db, 2, quick(SimConfig::idle()));
        let r = sim.run(&["mcf", "povray"]);
        assert!(r.total_energy_j > 0.0);
        assert_eq!(r.rm_invocations, 0);
        assert_eq!(r.qos_violations, 0, "the baseline cannot violate itself");
        assert!(r.sim_time_s > 0.0);
        assert!(r.uncore_energy_j > 0.0);
    }

    #[test]
    fn idle_energy_matches_closed_form_for_single_phase_apps() {
        // libquantum and lbm are single-phase apps: idle-RM energy until
        // the target is exactly target_insts × energy_pi(baseline), plus
        // uncore over the simulated span.
        let db = small_db();
        let cfg = quick(SimConfig::idle());
        let sim = Simulator::new(&db, 2, cfg.clone());
        let r = sim.run(&["libquantum", "lbm"]);
        let b = sim.sys.baseline_setting();
        let vf = sim.sys.dvfs.point(b.vf);
        let target = cfg.target_intervals as f64 * cfg.interval_insts;
        let expected: f64 = ["libquantum", "lbm"]
            .iter()
            .map(|n| {
                let rec = &db.app(n).unwrap().records[0];
                target * rec.energy_pi(b.core, vf, b.ways, sim.em.as_ref())
            })
            .sum();
        assert!(
            (r.core_mem_energy_j - expected).abs() / expected < 1e-9,
            "{} vs {expected}",
            r.core_mem_energy_j
        );
        // Sim time = slowest app's time to target.
        let expected_t: f64 = ["libquantum", "lbm"]
            .iter()
            .map(|n| {
                let rec = &db.app(n).unwrap().records[0];
                target * rec.tpi(b.core, vf.freq_hz, b.ways)
            })
            .fold(0.0, f64::max);
        assert!((r.sim_time_s - expected_t).abs() / expected_t < 1e-9);
    }

    #[test]
    fn rm3_perfect_saves_energy_and_respects_qos() {
        let db = small_db();
        let idle = Simulator::new(&db, 2, quick(SimConfig::idle())).run(&["mcf", "povray"]);
        let rm3 =
            Simulator::new(&db, 2, quick(SimConfig::perfect(RmKind::Rm3))).run(&["mcf", "povray"]);
        let s = rm3.savings_vs(&idle);
        assert!(s > 0.0, "RM3 with a perfect model must save energy: {s}");
        assert_eq!(rm3.qos_violations, 0, "perfect model cannot violate QoS");
        assert!(rm3.rm_invocations > 0);
    }

    #[test]
    fn savings_ordering_rm3_geq_rm2_geq_rm1_under_perfect_model() {
        let db = small_db();
        let idle = Simulator::new(&db, 2, quick(SimConfig::idle())).run(&["mcf", "gcc"]);
        let mut prev = -1.0;
        for kind in [RmKind::Rm1, RmKind::Rm2, RmKind::Rm3] {
            let r = Simulator::new(&db, 2, quick(SimConfig::perfect(kind))).run(&["mcf", "gcc"]);
            let s = r.savings_vs(&idle);
            assert!(
                s >= prev - 0.005,
                "{kind} savings {s} must not fall below the smaller controller's {prev}"
            );
            prev = s;
        }
    }

    #[test]
    fn ways_always_sum_to_total_associativity() {
        // Indirectly validated: a run that completes implies every
        // plan_system call produced a feasible partition (the planner
        // asserts Σw = A in its own tests); here we check the run finishes
        // and the RM was exercised.
        let db = small_db();
        let r =
            Simulator::new(&db, 4, quick(SimConfig::evaluation(RmKind::Rm3, SimModel::Perfect)))
                .run(&["mcf", "libquantum", "povray", "gcc"]);
        assert!(r.rm_invocations >= 4 * 7);
    }

    #[test]
    fn overheads_cost_energy_or_time() {
        // On multi-phase workloads overhead charging perturbs interval
        // alignment and the RM legitimately makes *different* decisions, so
        // totals are not comparable. Single-phase applications pin the
        // decision sequence (every invocation sees the same statistics),
        // leaving only the overheads themselves — which strictly cost time
        // and never save energy.
        let db = small_db();
        let names = ["libquantum", "lbm"];
        let without = Simulator::new(&db, 2, quick(SimConfig::perfect(RmKind::Rm3))).run(&names);
        let mut cfg = quick(SimConfig::perfect(RmKind::Rm3));
        cfg.overheads = true;
        let with = Simulator::new(&db, 2, cfg).run(&names);
        assert!(with.rm_invocations > 0);
        assert!(
            with.sim_time_s > without.sim_time_s,
            "overhead stalls must lengthen the run: {} vs {}",
            with.sim_time_s,
            without.sim_time_s
        );
        assert!(
            with.total_energy_j >= without.total_energy_j * 0.999,
            "overheads must not reduce energy: {} vs {}",
            with.total_energy_j,
            without.total_energy_j
        );
    }

    #[test]
    fn online_model3_runs_and_saves() {
        let db = small_db();
        let names = ["mcf", "povray"];
        let idle = Simulator::new(&db, 2, quick(SimConfig::idle())).run(&names);
        let r = Simulator::new(
            &db,
            2,
            quick(SimConfig::evaluation(RmKind::Rm3, SimModel::Online(ModelKind::Model3))),
        )
        .run(&names);
        let s = r.savings_vs(&idle);
        assert!(s > -0.05, "online RM3 should not waste energy: {s}");
        assert!(r.intervals_checked > 0);
    }

    #[test]
    fn determinism() {
        let db = small_db();
        let cfg = quick(SimConfig::evaluation(RmKind::Rm3, SimModel::Online(ModelKind::Model2)));
        let a = Simulator::new(&db, 2, cfg.clone()).run(&["gcc", "libquantum"]);
        let b = Simulator::new(&db, 2, cfg).run(&["gcc", "libquantum"]);
        assert_eq!(a.total_energy_j, b.total_energy_j);
        assert_eq!(a.rm_ops, b.rm_ops);
        assert_eq!(a.qos_violations, b.qos_violations);
    }

    use triad_workload::{TraceEvent, WorkloadSpec};

    #[test]
    fn static_traces_replay_bit_identically_to_run() {
        let db = small_db();
        let sim = Simulator::new(&db, 2, quick(SimConfig::perfect(RmKind::Rm3)));
        let direct = sim.run(&["mcf", "povray"]);
        let traced = sim.run_trace(&WorkloadTrace::steady(&["mcf", "povray"]));
        assert_eq!(direct.total_energy_j, traced.total_energy_j);
        assert_eq!(direct.sim_time_s, traced.sim_time_s);
        assert_eq!(direct.rm_ops, traced.rm_ops);
        assert_eq!(direct.arrivals, traced.arrivals);
        assert_eq!(traced.vacancy_energy_j, 0.0);
    }

    fn churn_trace() -> WorkloadTrace {
        WorkloadSpec::Churn {
            n_cores: 2,
            seed: 5,
            period: 4,
            horizon: 24,
            scenario: None,
            pool: vec!["mcf".into(), "povray".into(), "gcc".into()],
        }
        .materialize()
        .unwrap()
    }

    #[test]
    fn churn_runs_deterministically_and_replans_on_events() {
        let db = small_db();
        let trace = churn_trace();
        let cfg = quick(SimConfig::evaluation(RmKind::Rm3, SimModel::Online(ModelKind::Model3)));
        let sim = Simulator::new(&db, 2, cfg);
        let a = sim.run_trace(&trace);
        let b = sim.run_trace(&trace);
        assert_eq!(a.total_energy_j, b.total_energy_j);
        assert_eq!(a.rm_ops, b.rm_ops);
        assert!(a.arrivals as usize == trace.n_arrivals(), "every scheduled arrival fires");
        assert!(a.departures > 0, "churn replaces applications mid-run");
        // The RM re-plans on every completed interval *and* on every churn
        // batch, so invocations exceed the horizon's interval count... and
        // the idle RM never plans at all.
        assert!(a.rm_invocations > 24);
        let mut idle_cfg = quick(SimConfig::idle());
        idle_cfg.target_intervals = 12;
        let idle = Simulator::new(&db, 2, idle_cfg).run_trace(&trace);
        assert_eq!(idle.rm_invocations, 0);
        assert!(idle.total_energy_j > 0.0);
    }

    #[test]
    fn vacancy_burns_idle_core_power() {
        let db = small_db();
        // mcf occupies core 0 throughout; core 1 is vacant for intervals
        // 0..8 of the 16-interval horizon, then povray arrives.
        let trace = WorkloadTrace {
            n_cores: 2,
            horizon: Some(16),
            events: vec![
                TraceEvent {
                    at: 0,
                    core: 0,
                    kind: EventKind::Arrive { app: "mcf".into(), phase_offset: 0 },
                },
                TraceEvent {
                    at: 8,
                    core: 1,
                    kind: EventKind::Arrive { app: "povray".into(), phase_offset: 0 },
                },
            ],
        };
        let sim = Simulator::new(&db, 2, quick(SimConfig::idle()));
        let r = sim.run_trace(&trace);
        assert!(r.vacancy_energy_j > 0.0, "vacant core must burn idle power");
        assert!(
            r.vacancy_energy_j < r.total_energy_j,
            "idle power is a small fraction of the total"
        );
        // Idle power is charged at the parked operating point, which is
        // strictly cheaper than any active setting.
        let active_w = sim.em.core_power(
            sim.sys.baseline_setting().core,
            sim.sys.dvfs.point(sim.sys.baseline_setting().vf),
            1.0,
        );
        assert!(sim.idle_core_power_w() < active_w);
        // total = core+mem + vacancy + uncore, exactly.
        let sum = r.core_mem_energy_j + r.vacancy_energy_j + r.uncore_energy_j;
        assert!((r.total_energy_j - sum).abs() < 1e-12 * r.total_energy_j.max(1.0));
    }

    #[test]
    fn all_vacant_windows_fast_forward_without_time() {
        let db = small_db();
        // Nothing runs until interval 6 — impossible on the interval clock
        // unless the simulator fast-forwards; then one app runs to the
        // horizon.
        let trace = WorkloadTrace {
            n_cores: 2,
            horizon: Some(12),
            events: vec![TraceEvent {
                at: 6,
                core: 0,
                kind: EventKind::Arrive { app: "libquantum".into(), phase_offset: 0 },
            }],
        };
        let r = Simulator::new(&db, 2, quick(SimConfig::idle())).run_trace(&trace);
        assert_eq!(r.arrivals, 1);
        assert!(r.sim_time_s > 0.0);
        assert!(r.intervals_checked > 0);
    }

    #[test]
    fn phase_offsets_cold_start_mid_sequence() {
        let db = small_db();
        // gcc is multi-phase: starting at offset k must replay the phase
        // sequence from k, so two different offsets give different energy.
        let gcc_intervals = db.app("gcc").unwrap().spec.n_intervals();
        assert!(gcc_intervals > 2);
        let mk = |offset: usize| WorkloadTrace {
            n_cores: 2,
            horizon: Some(8),
            events: vec![
                TraceEvent {
                    at: 0,
                    core: 0,
                    kind: EventKind::Arrive { app: "gcc".into(), phase_offset: offset },
                },
                TraceEvent {
                    at: 0,
                    core: 1,
                    kind: EventKind::Arrive { app: "libquantum".into(), phase_offset: 0 },
                },
            ],
        };
        let sim = Simulator::new(&db, 2, quick(SimConfig::idle()));
        let a = sim.run_trace(&mk(0));
        let b = sim.run_trace(&mk(gcc_intervals / 2));
        assert_ne!(
            a.total_energy_j, b.total_energy_j,
            "different phase offsets must replay different intervals"
        );
    }
}
