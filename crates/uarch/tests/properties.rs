//! Randomized property tests for the out-of-order timing model, driven by
//! the deterministic workspace PRNG.

use triad_arch::{CacheGeometry, CoreSize};
use triad_cache::classify;
use triad_trace::{MemRegion, PhaseSpec};
use triad_uarch::{simulate, TimingConfig};
use triad_util::rand::rngs::StdRng;
use triad_util::rand::{RngExt, SeedableRng};

/// Sample a random-but-plausible phase spec, mirroring the former proptest
/// strategy's ranges.
fn random_spec(rng: &mut StdRng) -> (PhaseSpec, u64) {
    let r = |rng: &mut StdRng, lo: f64, hi: f64| lo + rng.random::<f64>() * (hi - lo);
    let spec = PhaseSpec {
        tag: 3,
        load_frac: r(rng, 0.05, 0.35),
        store_frac: r(rng, 0.0, 0.12),
        branch_frac: r(rng, 0.0, 0.2),
        longop_frac: r(rng, 0.0, 0.25),
        mispredict_rate: r(rng, 0.0, 0.08),
        dep_mean: r(rng, 2.0, 14.0),
        dep2_prob: 0.3,
        chase_frac: r(rng, 0.0, 0.9),
        burst: r(rng, 1.0, 24.0),
        addr_dep: r(rng, 0.0, 1.0),
        regions: vec![
            MemRegion::reuse_kib(8, 0.6),
            MemRegion {
                blocks: rng.random_range(16u64..4096),
                weight: 0.4,
                pattern: triad_trace::AccessPattern::Uniform,
            },
        ],
    };
    (spec, rng.random::<u64>())
}

/// Structural invariants that must hold for any workload: IPC within
/// the dispatch width, decomposition sums to total, more ways never
/// slower, larger cores never slower, lower frequency never faster.
#[test]
fn timing_model_invariants() {
    let mut rng = StdRng::seed_from_u64(0x7171);
    for trial in 0..24 {
        let (spec, seed) = random_spec(&mut rng);
        let geom = CacheGeometry::table1_scaled(4, 16);
        let t = spec.generate(8_000, seed);
        let ct = classify(&t, &geom);

        let mut prev_core_time = f64::INFINITY;
        for c in CoreSize::ALL {
            let r = simulate(&t.insts, &ct, &TimingConfig::table1(c, 2.0e9, 8));
            assert!(r.ipc <= c.dispatch_width() as f64 + 1e-9, "trial {trial} {c}");
            let sum = r.t0_s + r.t_branch_s + r.t_cache_s + r.tmem_s;
            assert!((sum - r.time_s).abs() < 1e-12, "trial {trial} {c}");
            assert!(r.true_leading_misses <= r.dram_loads, "trial {trial} {c}");
            assert!(r.mlp >= 1.0 - 1e-12, "trial {trial} {c}");
            // Bigger cores never slower (small tolerance for queueing noise).
            assert!(r.time_s <= prev_core_time * 1.02, "trial {trial} {c}");
            prev_core_time = r.time_s;
        }

        let mut prev_way_time = f64::INFINITY;
        for w in [2usize, 6, 10, 16] {
            let r = simulate(&t.insts, &ct, &TimingConfig::table1(CoreSize::M, 2.0e9, w));
            assert!(r.time_s <= prev_way_time * 1.001, "trial {trial} w={w}");
            prev_way_time = r.time_s;
        }

        let lo = simulate(&t.insts, &ct, &TimingConfig::table1(CoreSize::M, 1.0e9, 8));
        let hi = simulate(&t.insts, &ct, &TimingConfig::table1(CoreSize::M, 3.25e9, 8));
        assert!(hi.time_s <= lo.time_s, "trial {trial}");
        // And frequency cannot speed memory up more than 3.25x overall.
        assert!(lo.time_s / hi.time_s <= 3.25 + 1e-9, "trial {trial}");
    }
}
