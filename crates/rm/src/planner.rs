//! System-level planning: local plans → global partition → new settings.
//!
//! The planner is energy-backend agnostic: joules enter through the
//! [`LocalPlan`] energy curves (produced by an [`crate::IntervalModel`]
//! holding a `&dyn triad_energy::EnergyBackend`), and this layer only
//! minimizes their sum — so swapping the backend re-shapes the curves
//! without touching any code below this point.
//!
//! Two entry points share the same mathematics:
//!
//! * [`plan_system`] — the one-shot formulation: clone the curves, build
//!   the reduction tree from scratch, back-track. Simple, allocating,
//!   used by tests and as the equivalence oracle.
//! * [`PlannerState`] — the persistent formulation a simulator holds for
//!   a whole run: the reduction tree is a flattened arena whose shape is
//!   fixed by the core count, every curve/argmin/scratch buffer is
//!   preallocated, and when one core's plan changes only its O(log n)
//!   ancestor pair-nodes are re-reduced. Unchanged subtrees keep their
//!   stored curves, which are bit-identical to what a from-scratch build
//!   would recompute — so decisions (and the §III-E `ops` proxy, cached
//!   per pair-node) are byte-for-byte the same as [`plan_system`]'s.

use crate::global::{optimize_partition, reduce_curves_at, reduce_curves_into, EnergyCurve};
use crate::local::LocalPlan;
use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;
use triad_arch::Setting;

/// The RM's decision for the whole system after one invocation.
#[derive(Debug, Clone)]
pub struct RmDecision {
    /// New setting per core.
    pub settings: Vec<Setting>,
    /// Predicted system energy per instruction (sum over cores).
    pub predicted_energy: f64,
    /// Model evaluations + reduction iterations (§III-E overhead proxy).
    pub ops: u64,
}

/// Combine per-core local plans into the optimal system setting.
///
/// Falls back to `baseline` on every core when the global problem is
/// infeasible — which cannot happen when each local plan kept its baseline
/// allocation feasible, but is handled defensively.
pub fn plan_system(plans: &[LocalPlan], total_ways: usize, baseline: Setting) -> RmDecision {
    let curves: Vec<EnergyCurve> =
        plans.iter().map(|p| EnergyCurve { min_w: p.min_w, energy: p.energy.clone() }).collect();
    let local_ops: u64 = plans.iter().map(|p| p.ops).sum();
    match optimize_partition(&curves, total_ways) {
        Some((ways, energy, global_ops)) => {
            let settings: Vec<Setting> = plans
                .iter()
                .zip(&ways)
                .map(|(p, &w)| p.setting_at(w).unwrap_or(baseline))
                .collect();
            RmDecision { settings, predicted_energy: energy, ops: local_ops + global_ops }
        }
        None => RmDecision {
            settings: vec![baseline; plans.len()],
            predicted_energy: f64::INFINITY,
            ops: local_ops,
        },
    }
}

/// A borrowed view of the planner's latest decision. Same contents as
/// [`RmDecision`], but the settings live in the planner's (or memo's)
/// preallocated buffer, so reading a decision never allocates.
#[derive(Debug, Clone, Copy)]
pub struct PlanView<'a> {
    /// New setting per core.
    pub settings: &'a [Setting],
    /// Predicted system energy per instruction (sum over cores).
    pub predicted_energy: f64,
    /// Model evaluations + reduction iterations (§III-E overhead proxy).
    pub ops: u64,
}

impl PlanView<'_> {
    /// Copy the view into an owned [`RmDecision`].
    pub fn to_decision(&self) -> RmDecision {
        RmDecision {
            settings: self.settings.to_vec(),
            predicted_energy: self.predicted_energy,
            ops: self.ops,
        }
    }
}

/// A reduction child: one core's curve slot or another pair-node.
#[derive(Debug, Clone, Copy)]
enum Child {
    Leaf(usize),
    Node(usize),
}

/// One per-core curve slot: a copy of that core's latest [`LocalPlan`]
/// (or the pinned fallback), in buffers sized once at construction.
#[derive(Debug)]
struct LeafSlot {
    energy: Vec<f64>,
    setting: Vec<Option<Setting>>,
    ops: u64,
}

/// One interior reduction node: the combined curve and argmin table over
/// a fixed domain, plus the cached iteration count of its last reduction.
#[derive(Debug)]
struct PairNode {
    left: Child,
    right: Child,
    /// Smallest joint allocation in this subtree's domain.
    min_w: usize,
    energy: Vec<f64>,
    choice: Vec<usize>,
    /// The §III-E iteration count of a full sweep over this node's joint
    /// domain. A pure function of the two child domain shapes (every
    /// `(wa, wb)` pair is visited exactly once, so it equals
    /// `len_a × len_b`), fixed at construction — summing it per node is
    /// byte-identical to counting a from-scratch reduction, whether or
    /// not this re-plan actually re-reduced the node.
    ops: u64,
    /// The curve is stale: a leaf below changed since the last re-reduce.
    dirty: bool,
}

/// The persistent global planner: a reduction *forest kept warm between
/// RM invocations* instead of a tree rebuilt per invocation.
///
/// The arena's shape — the recursive midpoint pairing [`plan_system`]
/// uses — is fixed by the core count, so every curve, argmin table and
/// scratch buffer is allocated exactly once. [`PlannerState::set_leaf`]
/// installs a core's new local plan and marks its O(log n) ancestors
/// dirty; [`PlannerState::replan`] re-reduces only dirty nodes (children
/// first — the arena is stored in post-order) and back-tracks the argmins
/// into a reused buffer. A steady-state re-plan therefore touches
/// ⌈log₂ n⌉ pair-nodes and allocates nothing.
///
/// **Decision identity.** An unchanged subtree's stored curve is
/// bit-identical to what a from-scratch build would recompute (same
/// inputs through the same [`reduce_curves_into`] loop), so every curve,
/// argmin table, back-tracked allocation and predicted energy — and,
/// because each pair-node's iteration count is cached and summed, the
/// reported `ops` — matches [`plan_system`] byte for byte. The
/// randomized event-sequence test in `crates/rm/tests/properties.rs`
/// asserts this bit-equality against the from-scratch oracle.
#[derive(Debug)]
pub struct PlannerState {
    total_ways: usize,
    baseline: Setting,
    leaf_min_w: usize,
    leaves: Vec<LeafSlot>,
    /// Interior nodes in post-order: children precede parents; the last
    /// node (when `n ≥ 2`) is the root.
    nodes: Vec<PairNode>,
    /// Parent interior node of each leaf (empty when `n = 1`).
    leaf_parent: Vec<usize>,
    /// Parent of each interior node (`None` for the root).
    node_parent: Vec<Option<usize>>,
    /// Back-tracked per-core allocation (reused scratch).
    ways: Vec<usize>,
    /// Latest decision's settings (reused output buffer).
    settings: Vec<Setting>,
    predicted_energy: f64,
    ops: u64,
    /// Pair-nodes re-reduced by the latest [`PlannerState::replan`] — the
    /// dirty-path length (0 on a clean re-plan, O(log n) after one leaf
    /// change, n−1 from scratch). Observability only; never feeds results.
    last_reduced: u64,
}

impl PlannerState {
    /// A planner for `n_cores` cores whose local plans all span
    /// `way_range`, under the global constraint `Σ w_j = total_ways`.
    /// Every leaf starts as the pinned baseline plan (the state of a core
    /// that has not completed an interval yet — see
    /// [`LocalPlan::pinned`]).
    pub fn new(
        n_cores: usize,
        way_range: std::ops::RangeInclusive<usize>,
        total_ways: usize,
        baseline: Setting,
    ) -> Self {
        assert!(n_cores >= 1, "the planner needs at least one core");
        let leaf_min_w = *way_range.start();
        let leaf_len = way_range.end() - leaf_min_w + 1;
        assert!(way_range.contains(&baseline.ways), "baseline allocation must be in the domain");

        let leaves: Vec<LeafSlot> = (0..n_cores)
            .map(|_| {
                let mut slot = LeafSlot {
                    energy: vec![f64::INFINITY; leaf_len],
                    setting: vec![None; leaf_len],
                    ops: 0,
                };
                slot.energy[baseline.ways - leaf_min_w] = 0.0;
                slot.setting[baseline.ways - leaf_min_w] = Some(baseline);
                slot
            })
            .collect();

        // Mirror `plan_system`'s recursive midpoint pairing, flattened in
        // post-order so children always precede their parent.
        let mut nodes: Vec<PairNode> = Vec::new();
        fn build(
            lo: usize,
            hi: usize,
            leaf_min: usize,
            leaf_len: usize,
            nodes: &mut Vec<PairNode>,
        ) -> (Child, usize, usize) {
            if hi - lo == 1 {
                return (Child::Leaf(lo), leaf_min, leaf_len);
            }
            let mid = lo + (hi - lo) / 2;
            let (left, l_min, l_len) = build(lo, mid, leaf_min, leaf_len, nodes);
            let (right, r_min, r_len) = build(mid, hi, leaf_min, leaf_len, nodes);
            let min_w = l_min + r_min;
            let len = l_len + r_len - 1;
            nodes.push(PairNode {
                left,
                right,
                min_w,
                energy: vec![f64::INFINITY; len],
                choice: vec![l_min; len],
                ops: (l_len * r_len) as u64,
                dirty: true,
            });
            (Child::Node(nodes.len() - 1), min_w, len)
        }
        build(0, n_cores, leaf_min_w, leaf_len, &mut nodes);

        let mut leaf_parent = vec![usize::MAX; n_cores];
        let mut node_parent = vec![None; nodes.len()];
        for (i, node) in nodes.iter().enumerate() {
            for child in [node.left, node.right] {
                match child {
                    Child::Leaf(j) => leaf_parent[j] = i,
                    Child::Node(k) => node_parent[k] = Some(i),
                }
            }
        }

        PlannerState {
            total_ways,
            baseline,
            leaf_min_w,
            leaves,
            nodes,
            leaf_parent,
            node_parent,
            ways: vec![0; n_cores],
            settings: vec![baseline; n_cores],
            predicted_energy: f64::INFINITY,
            ops: 0,
            last_reduced: 0,
        }
    }

    /// Number of cores (leaves) in the forest.
    pub fn n_cores(&self) -> usize {
        self.leaves.len()
    }

    /// Install core `j`'s new local plan, copying into the leaf's
    /// preallocated buffers (never allocates). Returns `false` — and
    /// leaves the whole forest clean — when the plan is bit-identical to
    /// the slot's current contents, which re-planning would provably
    /// reproduce anyway.
    pub fn set_leaf(&mut self, j: usize, plan: &LocalPlan) -> bool {
        assert_eq!(plan.min_w, self.leaf_min_w, "plan domain must match the planner's");
        let leaf = &mut self.leaves[j];
        assert_eq!(plan.energy.len(), leaf.energy.len(), "plan domain must match the planner's");
        let same = leaf.ops == plan.ops
            && leaf.setting == plan.setting
            && leaf.energy.iter().zip(&plan.energy).all(|(a, b)| a.to_bits() == b.to_bits());
        if same {
            return false;
        }
        leaf.energy.copy_from_slice(&plan.energy);
        leaf.setting.copy_from_slice(&plan.setting);
        leaf.ops = plan.ops;
        self.mark_dirty_above_leaf(j);
        true
    }

    /// Reset core `j` to the pinned baseline plan (vacant core, or one
    /// with no completed interval). Returns `false` when already pinned.
    pub fn set_leaf_pinned(&mut self, j: usize) -> bool {
        let b = self.baseline;
        let bi = b.ways - self.leaf_min_w;
        let leaf = &mut self.leaves[j];
        let same = leaf.ops == 0
            && leaf.energy.iter().enumerate().all(|(i, e)| {
                if i == bi {
                    *e == 0.0
                } else {
                    e.is_infinite() && *e > 0.0
                }
            })
            && leaf.setting.iter().enumerate().all(|(i, s)| {
                if i == bi {
                    *s == Some(b)
                } else {
                    s.is_none()
                }
            });
        if same {
            return false;
        }
        leaf.energy.fill(f64::INFINITY);
        leaf.setting.fill(None);
        leaf.energy[bi] = 0.0;
        leaf.setting[bi] = Some(b);
        leaf.ops = 0;
        self.mark_dirty_above_leaf(j);
        true
    }

    /// Mark leaf `j`'s ancestor chain dirty. Invariant: a dirty node's
    /// ancestors are all dirty, so the walk stops at the first dirty node.
    fn mark_dirty_above_leaf(&mut self, j: usize) {
        if self.nodes.is_empty() {
            return;
        }
        let mut i = self.leaf_parent[j];
        loop {
            if self.nodes[i].dirty {
                break;
            }
            self.nodes[i].dirty = true;
            match self.node_parent[i] {
                Some(p) => i = p,
                None => break,
            }
        }
    }

    /// Re-reduce every dirty pair-node (children first), back-track the
    /// argmins and return the decision. Allocation-free: all work happens
    /// in the preallocated arena. O(log n) pair reductions after a single
    /// leaf change; zero after none. The root is cheaper still: its curve
    /// is only ever read at the `total_ways` budget, so only that single
    /// entry is evaluated ([`reduce_curves_at`]) instead of sweeping the
    /// widest domain in the tree — the reported `ops` still count the
    /// full sweep, exactly as the one-shot formulation performs it.
    pub fn replan(&mut self) -> PlanView<'_> {
        let n_nodes = self.nodes.len();
        self.last_reduced = 0;
        for i in 0..n_nodes {
            if !self.nodes[i].dirty {
                continue;
            }
            self.last_reduced += 1;
            // Post-order: both children live strictly below index `i`.
            let (done, rest) = self.nodes.split_at_mut(i);
            let node = &mut rest[0];
            let (l_min, l_curve): (usize, &[f64]) = match node.left {
                Child::Leaf(j) => (self.leaf_min_w, &self.leaves[j].energy),
                Child::Node(k) => (done[k].min_w, &done[k].energy),
            };
            let (r_min, r_curve): (usize, &[f64]) = match node.right {
                Child::Leaf(j) => (self.leaf_min_w, &self.leaves[j].energy),
                Child::Node(k) => (done[k].min_w, &done[k].energy),
            };
            if i + 1 == n_nodes {
                // Root: evaluate the budget entry only.
                if let Some((e, wa)) =
                    reduce_curves_at(l_min, l_curve, r_min, r_curve, self.total_ways)
                {
                    node.energy[self.total_ways - node.min_w] = e;
                    node.choice[self.total_ways - node.min_w] = wa;
                }
            } else {
                let swept = reduce_curves_into(
                    l_min,
                    l_curve,
                    r_min,
                    r_curve,
                    &mut node.energy,
                    &mut node.choice,
                );
                debug_assert_eq!(
                    swept, node.ops,
                    "the sweep count is a pure function of the domain shapes"
                );
            }
            node.dirty = false;
        }

        let leaf_ops: u64 = self.leaves.iter().map(|l| l.ops).sum();
        let (root, root_min, root_len) = match self.nodes.last() {
            Some(n) => (Child::Node(self.nodes.len() - 1), n.min_w, n.energy.len()),
            None => (Child::Leaf(0), self.leaf_min_w, self.leaves[0].energy.len()),
        };
        let in_domain = self.total_ways >= root_min && self.total_ways < root_min + root_len;
        let energy = if in_domain {
            match root {
                Child::Node(k) => self.nodes[k].energy[self.total_ways - self.nodes[k].min_w],
                Child::Leaf(j) => self.leaves[j].energy[self.total_ways - self.leaf_min_w],
            }
        } else {
            f64::INFINITY
        };

        if !energy.is_finite() {
            // Infeasible: fall back to the baseline everywhere, counting
            // only the local-plan evaluations — exactly `plan_system`.
            self.settings.fill(self.baseline);
            self.predicted_energy = f64::INFINITY;
            self.ops = leaf_ops;
            return self.view();
        }

        let node_ops: u64 = self.nodes.iter().map(|n| n.ops).sum();
        let mut ways = std::mem::take(&mut self.ways);
        self.assign(root, self.total_ways, &mut ways);
        for (j, &w) in ways.iter().enumerate() {
            self.settings[j] = self.leaves[j].setting[w - self.leaf_min_w].unwrap_or(self.baseline);
        }
        self.ways = ways;
        self.predicted_energy = energy;
        self.ops = leaf_ops + node_ops;
        self.view()
    }

    /// Walk down assigning `s` ways to a subtree (the argmin back-track).
    fn assign(&self, child: Child, s: usize, out: &mut [usize]) {
        match child {
            Child::Leaf(j) => out[j] = s,
            Child::Node(k) => {
                let n = &self.nodes[k];
                let wa = n.choice[s - n.min_w];
                self.assign(n.left, wa, out);
                self.assign(n.right, s - wa, out);
            }
        }
    }

    /// Pair-nodes the latest [`PlannerState::replan`] re-reduced — its
    /// dirty-path length. Telemetry accessor; does not affect planning.
    pub fn last_reduced_nodes(&self) -> u64 {
        self.last_reduced
    }

    /// The latest decision computed by [`PlannerState::replan`].
    pub fn view(&self) -> PlanView<'_> {
        PlanView {
            settings: &self.settings,
            predicted_energy: self.predicted_energy,
            ops: self.ops,
        }
    }
}

/// A memo of whole-system decisions keyed by the caller's *occupant
/// signature* — whatever identifies the exact joint planner state (for
/// the simulator: each core's phase-record identity and observed setting,
/// plus the vacancy pattern; `RmKind`, model and α are fixed per run).
///
/// Re-planning is a pure function of the leaf plans, so when a churny
/// trace revisits a joint state the stored decision is bit-identical to
/// what the reduction would recompute — the lookup skips it outright.
/// Hits are allocation-free (keys can be borrowed, e.g. `&[Sig]` against
/// `Vec<Sig>` keys); a miss pays one key + settings clone at insert.
#[derive(Debug)]
pub struct DecisionMemo<K> {
    map: HashMap<K, CachedDecision>,
}

#[derive(Debug)]
struct CachedDecision {
    settings: Vec<Setting>,
    predicted_energy: f64,
    ops: u64,
}

impl<K: Eq + Hash> DecisionMemo<K> {
    /// An empty memo.
    pub fn new() -> Self {
        DecisionMemo { map: HashMap::new() }
    }

    /// The stored decision for `key`, if this joint state was seen before.
    pub fn get<Q>(&self, key: &Q) -> Option<PlanView<'_>>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.map.get(key).map(|d| PlanView {
            settings: &d.settings,
            predicted_energy: d.predicted_energy,
            ops: d.ops,
        })
    }

    /// Store a decision under `key` (clones the settings once).
    pub fn insert(&mut self, key: K, view: PlanView<'_>) {
        self.map.insert(
            key,
            CachedDecision {
                settings: view.settings.to_vec(),
                predicted_energy: view.predicted_energy,
                ops: view.ops,
            },
        );
    }

    /// Number of distinct joint states stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl<K: Eq + Hash> Default for DecisionMemo<K> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::{local_optimize, IntervalModel, RmKind};
    use triad_arch::{CoreSize, DvfsGrid, SystemConfig};

    /// Core 0 is cache-hungry; core 1 is cache-flat and memory-light.
    struct Pair {
        grid: DvfsGrid,
        hungry: bool,
    }

    impl IntervalModel for Pair {
        fn predict(&self, s: Setting) -> (f64, f64) {
            let f = self.grid.point(s.vf).freq_hz;
            let v = self.grid.point(s.vf).volt;
            let mem = if self.hungry {
                // Sharp knee at 12 ways.
                if s.ways >= 12 {
                    0.05e-9
                } else {
                    2.0e-9
                }
            } else {
                0.05e-9
            };
            let t = 2.0 / (f / 1e9) * 1e-9 / s.core.dispatch_width() as f64 * 4.0 + mem;
            let p = [1.1, 2.2, 4.3][s.core.index()] * v * v * (f / 2.0e9)
                + [0.3, 0.6, 1.25][s.core.index()] * v;
            (t, p * t)
        }
    }

    #[test]
    fn planner_shifts_ways_to_the_hungry_core() {
        let sys = SystemConfig::table1(2);
        let b = sys.baseline_setting();
        let grid = sys.dvfs.clone();
        let hungry = Pair { grid: grid.clone(), hungry: true };
        let flat = Pair { grid: grid.clone(), hungry: false };
        let p0 = local_optimize(&hungry, RmKind::Rm2, b, &grid, sys.way_range(), 1.0);
        let p1 = local_optimize(&flat, RmKind::Rm2, b, &grid, sys.way_range(), 1.0);
        let d = plan_system(&[p0, p1], sys.total_ways(), b);
        assert_eq!(d.settings.len(), 2);
        assert_eq!(d.settings[0].ways + d.settings[1].ways, 16);
        assert!(d.settings[0].ways >= 12, "hungry core should receive the knee: {:?}", d.settings);
        assert!(d.predicted_energy.is_finite());
    }

    #[test]
    fn infeasible_plans_fall_back_to_baseline() {
        let sys = SystemConfig::table1(2);
        let b = sys.baseline_setting();
        let plans: Vec<_> = (0..2)
            .map(|_| crate::local::LocalPlan {
                min_w: 2,
                energy: vec![f64::INFINITY; 13],
                setting: vec![None; 13],
                ops: 1,
            })
            .collect();
        let d = plan_system(&plans, sys.total_ways(), b);
        assert_eq!(d.settings, vec![b, b]);
        assert!(d.predicted_energy.is_infinite());
    }

    #[test]
    fn ops_accumulate_local_and_global() {
        let sys = SystemConfig::table1(4);
        let b = sys.baseline_setting();
        let grid = sys.dvfs.clone();
        let flat = Pair { grid: grid.clone(), hungry: false };
        let plans: Vec<_> = (0..4)
            .map(|_| local_optimize(&flat, RmKind::Rm3, b, &grid, sys.way_range(), 1.0))
            .collect();
        let local: u64 = plans.iter().map(|p| p.ops).sum();
        let d = plan_system(&plans, sys.total_ways(), b);
        assert!(d.ops > local, "global reduction must add iterations");
        assert_eq!(d.settings.iter().map(|s| s.ways).sum::<usize>(), 32);
        let _ = CoreSize::ALL;
    }
}
