//! Auxiliary Tag Directory (ATD) — online miss curves for every allocation.
//!
//! The ATD [Qureshi & Patt, MICRO'06] shadows the LLC tag arrays with
//! per-set true-LRU stacks sized for the *largest* possible per-core
//! allocation. Each access records the LRU **stack distance** (recency
//! position) at which its tag was found:
//!
//! * distance `d < w`  ⇒ the access would **hit** a `w`-way allocation;
//! * distance `d ≥ w` (or not present) ⇒ it would **miss**.
//!
//! Accumulating a histogram of hits per recency position plus a miss count
//! yields the miss count for *every* `w` simultaneously (§III-C):
//! `misses(w) = Σ_{p ≥ w} hits[p] + atd_misses`.

/// Stack distance reported for an access that missed the whole directory.
pub const COLD: u8 = u8::MAX;

/// The Auxiliary Tag Directory for one core.
#[derive(Debug, Clone)]
pub struct Atd {
    sets: usize,
    max_ways: usize,
    /// Per-set LRU stacks (MRU first), `u64::MAX` = empty slot.
    tags: Vec<u64>,
    set_mask: u64,
    /// Hits observed at each recency position `0..max_ways`.
    pub hits: Vec<u64>,
    /// Accesses that missed all `max_ways` positions (cold or evicted).
    pub misses: u64,
}

impl Atd {
    /// An ATD with `sets` sets tracking up to `max_ways` recency positions
    /// (Table I: 4096 sets, 16 ways).
    pub fn new(sets: usize, max_ways: usize) -> Self {
        assert!(sets.is_power_of_two());
        assert!(max_ways >= 1 && max_ways < COLD as usize);
        Atd {
            sets,
            max_ways,
            tags: vec![u64::MAX; sets * max_ways],
            set_mask: (sets - 1) as u64,
            hits: vec![0; max_ways],
            misses: 0,
        }
    }

    /// The Table I LLC monitor: 4096 sets × 16 ways.
    pub fn table1() -> Self {
        Self::new(4096, 16)
    }

    /// Record an access and return its stack distance (recency position),
    /// or [`COLD`] if the tag was not present in any tracked position.
    pub fn access(&mut self, addr: u64) -> u8 {
        self.access_block(addr >> 6)
    }

    /// [`Atd::access`] by 64-byte block index (`addr >> 6`). Lets a caller
    /// probing L1/L2/ATD in sequence compute the shift once.
    #[inline]
    pub fn access_block(&mut self, block: u64) -> u8 {
        let set = (block & self.set_mask) as usize;
        let tag = block;
        let base = set * self.max_ways;
        let slice = &mut self.tags[base..base + self.max_ways];
        let dist = match slice.iter().position(|&t| t == tag) {
            Some(pos) => {
                slice[..=pos].rotate_right(1);
                self.hits[pos] += 1;
                pos as u8
            }
            None => {
                slice.rotate_right(1);
                self.misses += 1;
                COLD
            }
        };
        slice[0] = tag;
        dist
    }

    /// Predicted miss count for a `w`-way allocation:
    /// `Σ_{p ≥ w} hits[p] + misses` (§III-C).
    pub fn miss_count(&self, w: usize) -> u64 {
        assert!(w >= 1 && w <= self.max_ways);
        self.hits[w..].iter().sum::<u64>() + self.misses
    }

    /// The full miss curve over `1..=max_ways` (index 0 ↦ w = 1).
    pub fn miss_curve(&self) -> Vec<u64> {
        (1..=self.max_ways).map(|w| self.miss_count(w)).collect()
    }

    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits.iter().sum::<u64>() + self.misses
    }

    /// Reset counters (keeps tag state — the paper's RM reads counters per
    /// interval without flushing the directory).
    pub fn reset_counters(&mut self) {
        self.hits.fill(0);
        self.misses = 0;
    }

    /// Maximum tracked allocation.
    pub fn max_ways(&self) -> usize {
        self.max_ways
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::SetAssocCache;
    use triad_util::rand::rngs::StdRng;
    use triad_util::rand::{RngExt, SeedableRng};

    #[test]
    fn stack_distance_reflects_reuse() {
        let mut atd = Atd::new(1, 4);
        assert_eq!(atd.access(0), COLD);
        assert_eq!(atd.access(64), COLD);
        assert_eq!(atd.access(128), COLD);
        // 0 is now at recency position 2.
        assert_eq!(atd.access(0), 2);
        // 0 moved to MRU; immediate reuse has distance 0.
        assert_eq!(atd.access(0), 0);
    }

    #[test]
    fn miss_count_formula_matches_histogram() {
        let mut atd = Atd::new(1, 4);
        for addr in [0u64, 64, 0, 128, 64, 0, 192, 256] {
            atd.access(addr);
        }
        for w in 1..=4 {
            let expected: u64 = atd.hits[w..].iter().sum::<u64>() + atd.misses;
            assert_eq!(atd.miss_count(w), expected);
        }
    }

    #[test]
    fn miss_curve_is_monotone_nonincreasing() {
        let mut atd = Atd::new(16, 8);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20_000 {
            atd.access(rng.random_range(0..2048u64) * 64);
        }
        let curve = atd.miss_curve();
        for w in curve.windows(2) {
            assert!(w[0] >= w[1], "more ways can never add misses: {curve:?}");
        }
    }

    /// The load-bearing property: the ATD's per-`w` prediction must exactly
    /// match a real `w`-way LRU cache with the same set count, for every `w`.
    #[test]
    fn atd_matches_direct_simulation_for_every_w() {
        let sets = 64;
        let max_ways = 16;
        let mut rng = StdRng::seed_from_u64(11);
        let addrs: Vec<u64> = (0..50_000)
            .map(|_| {
                // A mixture of a hot region, a big region and a stream.
                let u: f64 = rng.random();
                if u < 0.5 {
                    rng.random_range(0..256u64) * 64
                } else if u < 0.9 {
                    rng.random_range(0..4096u64) * 64
                } else {
                    rng.random_range(100_000..200_000u64) * 64
                }
            })
            .collect();

        let mut atd = Atd::new(sets, max_ways);
        let mut caches: Vec<SetAssocCache> =
            (1..=max_ways).map(|w| SetAssocCache::new(sets, w)).collect();
        let mut direct_misses = vec![0u64; max_ways];
        for &a in &addrs {
            let d = atd.access(a);
            for (wi, c) in caches.iter_mut().enumerate() {
                let hit = c.access(a);
                // Inclusion property of LRU: hit in (w+1)-way iff d <= w.
                let predicted_hit = (d as usize) < wi + 1;
                assert_eq!(hit, predicted_hit, "addr {a}, w={}", wi + 1);
                if !hit {
                    direct_misses[wi] += 1;
                }
            }
        }
        for w in 1..=max_ways {
            assert_eq!(atd.miss_count(w), direct_misses[w - 1], "w={w}");
        }
    }

    #[test]
    fn reset_counters_keeps_tag_state() {
        let mut atd = Atd::new(1, 2);
        atd.access(0);
        atd.reset_counters();
        assert_eq!(atd.accesses(), 0);
        // Tag 0 is still resident: next access is a position-0 hit.
        assert_eq!(atd.access(0), 0);
        assert_eq!(atd.hits[0], 1);
    }

    #[test]
    fn table1_dimensions() {
        let atd = Atd::table1();
        assert_eq!(atd.sets(), 4096);
        assert_eq!(atd.max_ways(), 16);
    }

    #[test]
    fn accesses_counts_everything() {
        let mut atd = Atd::new(2, 2);
        for a in [0u64, 64, 0, 128, 192] {
            atd.access(a);
        }
        assert_eq!(atd.accesses(), 5);
    }
}
