//! QoS-slack ablation: the paper fixes Eq. 3's alpha to 1 (no slack) and
//! notes it "can be used to relax the QoS constraint". This sweep shows how
//! energy savings grow as the constraint is relaxed — expressed as one
//! declarative campaign whose specs all share a single memoized idle
//! baseline and run in parallel.
//!
//! Run with: `cargo run --release --example alpha_sweep`

use triad::phasedb::{build_apps, DbConfig};
use triad::rm::RmKind;
use triad::sim::{Campaign, ExperimentSpec};

fn main() {
    let names = ["libquantum", "mcf"];
    let apps: Vec<_> =
        triad::trace::suite().into_iter().filter(|a| names.contains(&a.name)).collect();
    println!("building database for {:?}...", names);
    let db = build_apps(&apps, &DbConfig::default());

    let alphas = [1.0, 1.05, 1.1, 1.2];
    let specs: Vec<ExperimentSpec> = alphas
        .iter()
        .flat_map(|&alpha| {
            [RmKind::Rm2, RmKind::Rm3].map(|rm| {
                ExperimentSpec::new(format!("alpha{alpha}/{}", rm.label()), &names)
                    .rm(Some(rm))
                    .perfect()
                    .alpha(alpha)
            })
        })
        .collect();
    let rows = Campaign::new(specs).run(&db);

    println!("\n{:<8} {:>12} {:>12}", "alpha", "RM2 savings", "RM3 savings");
    for (i, &alpha) in alphas.iter().enumerate() {
        let rm2 = &rows[2 * i];
        let rm3 = &rows[2 * i + 1];
        println!("{:<8} {:>11.1}% {:>11.1}%", alpha, 100.0 * rm2.savings, 100.0 * rm3.savings);
    }
    println!("\nalpha > 1 lets the RM trade bounded slowdown for extra savings;");
    println!("the paper fixes alpha = 1 throughout its evaluation.");
}
