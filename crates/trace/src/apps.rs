//! The 27-application benchmark library (SPEC CPU2006 stand-ins, Table II).
//!
//! Each application is a set of [`PhaseSpec`]s plus a per-interval phase
//! sequence. Parameters are calibrated so that the paper's §IV-C
//! classification criteria — run on *our* detailed simulator — reproduce
//! Table II:
//!
//! * **Cache Sensitive (CS)**: MPKI varies by > 20 % when the LLC allocation
//!   changes by ±50 % around the 8-way baseline, and baseline MPKI ≥ 0.2;
//! * **Parallelism Sensitive (PS)**: MLP(L) − MLP(S) > 30 % of MLP(M) at the
//!   baseline allocation, and MLP(L) ≥ 2.
//!
//! The knobs map onto the criteria directly:
//!
//! * cyclic **sweep** regions put a sharp LRU miss-curve knee at an exact
//!   way count — a knee above 8 ways rewards bigger allocations (mcf,
//!   xalancbmk), a knee just below 8 makes reductions catastrophic while
//!   increases are useless (gcc, hmmer — the paper's Scenario 2
//!   observation);
//! * **streaming** regions miss at every allocation (CI but memory-bound);
//! * long **bursts** of independent misses overlap up to the ROB/LSQ window
//!   and expose core-size-dependent MLP (PS); short bursts or
//!   **pointer-chased** misses do not (PI).

use crate::phase::{MemRegion, PhaseId, PhaseSpec};

/// Application category from Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Cache sensitive, parallelism sensitive.
    CsPs,
    /// Cache sensitive, parallelism insensitive.
    CsPi,
    /// Cache insensitive, parallelism sensitive.
    CiPs,
    /// Cache insensitive, parallelism insensitive.
    CiPi,
}

impl Category {
    /// All categories, in the paper's ordering.
    pub const ALL: [Category; 4] = [Category::CsPs, Category::CsPi, Category::CiPs, Category::CiPi];

    /// Whether applications in this category are cache sensitive.
    pub fn cache_sensitive(self) -> bool {
        matches!(self, Category::CsPs | Category::CsPi)
    }

    /// Whether applications in this category are parallelism sensitive.
    pub fn parallelism_sensitive(self) -> bool {
        matches!(self, Category::CsPs | Category::CiPs)
    }

    /// Short label used in figures ("CS-PS" etc.).
    pub fn label(self) -> &'static str {
        match self {
            Category::CsPs => "CS-PS",
            Category::CsPi => "CS-PI",
            Category::CiPs => "CI-PS",
            Category::CiPi => "CI-PI",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A complete synthetic application.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Benchmark name (SPEC CPU2006 stand-in).
    pub name: &'static str,
    /// Table II category this application is calibrated to.
    pub category: Category,
    /// Distinct program phases.
    pub phases: Vec<PhaseSpec>,
    /// Phase id of each consecutive execution interval; its length defines
    /// the application's total instruction count (in intervals).
    pub sequence: Vec<PhaseId>,
}

impl AppSpec {
    /// Number of execution intervals in one full run of the application.
    pub fn n_intervals(&self) -> usize {
        self.sequence.len()
    }

    /// SimPoint-style phase weights: the fraction of intervals spent in each
    /// phase. Sums to 1.
    pub fn phase_weights(&self) -> Vec<f64> {
        let mut w = vec![0.0; self.phases.len()];
        for &p in &self.sequence {
            w[p] += 1.0;
        }
        let n = self.sequence.len() as f64;
        for x in &mut w {
            *x /= n;
        }
        w
    }
}

/// Raw per-application calibration row.
struct Row {
    name: &'static str,
    cat: Category,
    /// loads, stores, branches, long ops (fractions of the mix)
    mix: [f64; 4],
    mispredict: f64,
    dep_mean: f64,
    chase: f64,
    burst: f64,
    addr_dep: f64,
    /// hot (private-cache-resident) region: (KiB, weight)
    hot: (u64, f64),
    /// LLC-level regions (sweeps, streams, large uniform sets)
    regions: Vec<MemRegion>,
    /// number of 100M-instruction intervals in one run
    intervals: usize,
    /// phase-structure style: 0 = single phase, 1 = main+light, 2 = main+light+compute
    style: u8,
}

impl Row {
    fn main_phase(&self, tag: u64) -> PhaseSpec {
        let mut regions = vec![MemRegion::reuse_kib(self.hot.0, self.hot.1)];
        regions.extend(self.regions.iter().copied());
        PhaseSpec {
            tag,
            load_frac: self.mix[0],
            store_frac: self.mix[1],
            branch_frac: self.mix[2],
            longop_frac: self.mix[3],
            mispredict_rate: self.mispredict,
            dep_mean: self.dep_mean,
            dep2_prob: 0.3,
            chase_frac: self.chase,
            burst: self.burst,
            addr_dep: self.addr_dep,
            regions,
        }
    }

    /// A lower-memory-intensity variant of the main phase.
    fn light_phase(&self, tag: u64) -> PhaseSpec {
        let mut p = self.main_phase(tag);
        for r in p.regions.iter_mut().skip(1) {
            r.weight *= 0.45;
        }
        p.dep_mean = (p.dep_mean * 1.1).min(24.0);
        p.mispredict_rate *= 0.7;
        p
    }

    /// A compute-dominated variant (memory traffic mostly cache-resident).
    fn compute_phase(&self, tag: u64) -> PhaseSpec {
        let mut p = self.main_phase(tag);
        for r in p.regions.iter_mut().skip(1) {
            r.weight *= 0.1;
        }
        p.longop_frac = (p.longop_frac + 0.10).min(0.4);
        p.dep_mean = (p.dep_mean * 1.2).min(24.0);
        p
    }

    fn build(&self, idx: usize) -> AppSpec {
        // A stable tag per (app, phase): app index in the suite.
        let base_tag = (idx as u64 + 1) * 1000;
        let phases: Vec<PhaseSpec> = match self.style {
            0 => vec![self.main_phase(base_tag)],
            1 => vec![self.main_phase(base_tag), self.light_phase(base_tag + 1)],
            _ => vec![
                self.main_phase(base_tag),
                self.light_phase(base_tag + 1),
                self.compute_phase(base_tag + 2),
            ],
        };
        let pattern: &[PhaseId] = match self.style {
            0 => &[0],
            1 => &[0, 0, 0, 1],
            _ => &[0, 0, 1, 0, 0, 2],
        };
        let sequence: Vec<PhaseId> =
            (0..self.intervals).map(|i| pattern[i % pattern.len()]).collect();
        AppSpec { name: self.name, category: self.cat, phases, sequence }
    }
}

/// The full 27-application suite, in Table II order (CS-PS, CS-PI, CI-PS,
/// CI-PI). Census: 5 + 7 + 7 + 8.
pub fn suite() -> Vec<AppSpec> {
    use Category::*;
    use MemRegion as R;
    #[rustfmt::skip]
    let rows: Vec<Row> = vec![
        // ------------------------------------------------ CS-PS (5)
        // Sweep knees above the 8-way baseline (more ways pay off) and long
        // bursts of independent misses (bigger cores extract MLP).
        Row { name: "tonto",      cat: CsPs, mix: [0.24, 0.06, 0.10, 0.20], mispredict: 0.020, dep_mean: 9.0,  chase: 0.06, burst: 1.0, addr_dep: 0.2, hot: (144, 0.72), regions: vec![R::reuse_kib(3072, 0.0650), R::stream_mib(48, 0.0106)], intervals: 34, style: 2 },
        Row { name: "mcf",        cat: CsPs, mix: [0.24, 0.06, 0.14, 0.04], mispredict: 0.045, dep_mean: 9.0,  chase: 0.10, burst: 1.0, addr_dep: 0.2, hot: (128, 0.70), regions: vec![R::reuse_kib(3456, 0.0850), R::stream_mib(48, 0.0160)], intervals: 42, style: 1 },
        Row { name: "omnetpp",    cat: CsPs, mix: [0.24, 0.06, 0.16, 0.04], mispredict: 0.040, dep_mean: 9.0,  chase: 0.10, burst: 1.0, addr_dep: 0.2, hot: (160, 0.72), regions: vec![R::reuse_kib(3328, 0.0599), R::stream_mib(64, 0.0160)], intervals: 38, style: 1 },
        Row { name: "soplex",     cat: CsPs, mix: [0.24, 0.06, 0.12, 0.16], mispredict: 0.025, dep_mean: 10.0, chase: 0.06, burst: 1.0, addr_dep: 0.2, hot: (128, 0.70), regions: vec![R::reuse_kib(2880, 0.0500), R::stream_mib(48, 0.0106)], intervals: 30, style: 2 },
        Row { name: "sphinx3",    cat: CsPs, mix: [0.24, 0.06, 0.10, 0.18], mispredict: 0.018, dep_mean: 10.0, chase: 0.05, burst: 1.0, addr_dep: 0.2, hot: (160, 0.72), regions: vec![R::reuse_kib(3200, 0.0320), R::stream_mib(48, 0.0106)], intervals: 48, style: 1 },
        // ------------------------------------------------ CS-PI (7)
        // Knees mostly just below the baseline (reduction hurts badly,
        // increase helps little — the paper's Scenario 2 remark) and
        // chase-dominated short-burst misses: MLP stays near 1.
        Row { name: "bzip2",      cat: CsPi, mix: [0.28, 0.10, 0.15, 0.02], mispredict: 0.050, dep_mean: 5.0,  chase: 0.82, burst: 3.0, addr_dep: 0.9, hot: (144, 0.74), regions: vec![R::sweep_ways(5.2, 0.010), R::stream_mib(32, 0.003)],  intervals: 28, style: 1 },
        Row { name: "gcc",        cat: CsPi, mix: [0.27, 0.11, 0.18, 0.02], mispredict: 0.042, dep_mean: 5.0,  chase: 0.80, burst: 3.0, addr_dep: 0.9, hot: (160, 0.72), regions: vec![R::sweep_ways(5.4, 0.011), R::stream_mib(32, 0.003)],  intervals: 26, style: 2 },
        Row { name: "gobmk",      cat: CsPi, mix: [0.26, 0.10, 0.20, 0.02], mispredict: 0.062, dep_mean: 5.0,  chase: 0.78, burst: 3.0, addr_dep: 0.9, hot: (160, 0.75), regions: vec![R::sweep_ways(5.0, 0.008), R::stream_mib(32, 0.003)],  intervals: 24, style: 1 },
        Row { name: "gromacs",    cat: CsPi, mix: [0.26, 0.08, 0.10, 0.20], mispredict: 0.020, dep_mean: 5.0,  chase: 0.76, burst: 3.0, addr_dep: 0.9, hot: (144, 0.76), regions: vec![R::sweep_ways(5.2, 0.008), R::stream_mib(32, 0.003)],  intervals: 30, style: 1 },
        Row { name: "h264ref",    cat: CsPi, mix: [0.28, 0.10, 0.12, 0.10], mispredict: 0.030, dep_mean: 5.0,  chase: 0.78, burst: 3.0, addr_dep: 0.9, hot: (160, 0.72), regions: vec![R::reuse_kib(2560, 0.012), R::stream_mib(32, 0.004)], intervals: 36, style: 1 },
        Row { name: "hmmer",      cat: CsPi, mix: [0.30, 0.12, 0.08, 0.06], mispredict: 0.012, dep_mean: 5.0,  chase: 0.80, burst: 3.0, addr_dep: 0.9, hot: (176, 0.74), regions: vec![R::sweep_ways(4.8, 0.007), R::stream_mib(32, 0.003)],  intervals: 32, style: 0 },
        Row { name: "xalancbmk",  cat: CsPi, mix: [0.30, 0.10, 0.18, 0.02], mispredict: 0.038, dep_mean: 5.0,  chase: 0.85, burst: 3.0, addr_dep: 0.9, hot: (144, 0.70), regions: vec![R::reuse_kib(2880, 0.013), R::stream_mib(32, 0.004)], intervals: 40, style: 1 },
        // ------------------------------------------------ CI-PS (7)
        // Streaming-dominated misses (allocation-independent) arriving in
        // long independent bursts: MLP grows with the ROB/LSQ window.
        Row { name: "namd",       cat: CiPs, mix: [0.20, 0.04, 0.08, 0.30], mispredict: 0.012, dep_mean: 11.0, chase: 0.02, burst: 1.0, addr_dep: 0.05, hot: (176, 0.87), regions: vec![R::stream_mib(48, 0.0360)],                          intervals: 36, style: 1 },
        Row { name: "zeusmp",     cat: CiPs, mix: [0.20, 0.04, 0.08, 0.26], mispredict: 0.012, dep_mean: 10.0, chase: 0.02, burst: 1.0, addr_dep: 0.05, hot: (160, 0.80), regions: vec![R::stream_mib(64, 0.0961)],   intervals: 30, style: 1 },
        Row { name: "GemsFDTD",   cat: CiPs, mix: [0.20, 0.04, 0.06, 0.28], mispredict: 0.008, dep_mean: 10.0, chase: 0.01, burst: 1.0, addr_dep: 0.05, hot: (160, 0.78), regions: vec![R::stream_mib(96, 0.1008)],                          intervals: 44, style: 1 },
        Row { name: "bwaves",     cat: CiPs, mix: [0.20, 0.04, 0.06, 0.30], mispredict: 0.006, dep_mean: 11.0, chase: 0.01, burst: 1.0, addr_dep: 0.05, hot: (144, 0.78), regions: vec![R::stream_mib(128, 0.0930)],                          intervals: 52, style: 0 },
        Row { name: "leslie3d",   cat: CiPs, mix: [0.20, 0.04, 0.07, 0.28], mispredict: 0.008, dep_mean: 10.0, chase: 0.01, burst: 1.0, addr_dep: 0.05, hot: (160, 0.78), regions: vec![R::stream_mib(96, 0.0853)],                          intervals: 40, style: 1 },
        Row { name: "libquantum", cat: CiPs, mix: [0.20, 0.04, 0.14, 0.06], mispredict: 0.010, dep_mean: 11.0, chase: 0.00, burst: 1.0, addr_dep: 0.05, hot: (128, 0.76), regions: vec![R::stream_mib(192, 0.1240)],                          intervals: 60, style: 0 },
        Row { name: "wrf",        cat: CiPs, mix: [0.20, 0.04, 0.09, 0.26], mispredict: 0.014, dep_mean: 10.0, chase: 0.02, burst: 1.0, addr_dep: 0.05, hot: (160, 0.82), regions: vec![R::stream_mib(64, 0.0806)],  intervals: 34, style: 2 },
        // ------------------------------------------------ CI-PI (8)
        // Either compute-bound (MPKI below the 0.2 guard) or memory-bound
        // with serialized (chased / short-burst) misses.
        Row { name: "cactusADM",  cat: CiPi, mix: [0.28, 0.10, 0.06, 0.24], mispredict: 0.008, dep_mean: 5.0,  chase: 0.75, burst: 1.0, addr_dep: 0.2, hot: (160, 0.80), regions: vec![R::stream_mib(64, 0.034)],                          intervals: 38, style: 1 },
        Row { name: "dealII",     cat: CiPi, mix: [0.26, 0.08, 0.12, 0.20], mispredict: 0.018, dep_mean: 10.0,  chase: 0.30, burst: 4.0, addr_dep: 1.0, hot: (48, 0.90), regions: vec![R::reuse_kib(384, 0.05)],                           intervals: 28, style: 1 },
        Row { name: "gamess",     cat: CiPi, mix: [0.24, 0.08, 0.09, 0.30], mispredict: 0.010, dep_mean: 10.0,  chase: 0.10, burst: 2.0, addr_dep: 1.0, hot: (48, 0.97), regions: vec![],                                                  intervals: 32, style: 2 },
        Row { name: "perlbench",  cat: CiPi, mix: [0.27, 0.11, 0.21, 0.02], mispredict: 0.045, dep_mean: 10.0,  chase: 0.55, burst: 3.0, addr_dep: 1.0, hot: (48, 0.92), regions: vec![R::reuse_kib(448, 0.04)],                           intervals: 26, style: 1 },
        Row { name: "povray",     cat: CiPi, mix: [0.24, 0.08, 0.12, 0.28], mispredict: 0.022, dep_mean: 10.0,  chase: 0.15, burst: 2.0, addr_dep: 1.0, hot: (48, 0.98), regions: vec![],                                                  intervals: 30, style: 1 },
        Row { name: "sjeng",      cat: CiPi, mix: [0.24, 0.09, 0.22, 0.02], mispredict: 0.070, dep_mean: 10.0,  chase: 0.40, burst: 3.0, addr_dep: 1.0, hot: (48, 0.94), regions: vec![R::reuse_kib(384, 0.03)],                           intervals: 28, style: 0 },
        Row { name: "astar",      cat: CiPi, mix: [0.28, 0.09, 0.18, 0.02], mispredict: 0.055, dep_mean: 5.0,  chase: 0.80, burst: 4.0, addr_dep: 0.8, hot: (160, 0.76), regions: vec![R::reuse_kib(512, 0.16), R::stream_mib(32, 0.006)],                           intervals: 30, style: 1 },
        Row { name: "lbm",        cat: CiPi, mix: [0.26, 0.16, 0.04, 0.16], mispredict: 0.004, dep_mean: 5.0,  chase: 0.75, burst: 1.0, addr_dep: 0.1, hot: (144, 0.70), regions: vec![R::stream_mib(160, 0.05)],                          intervals: 46, style: 0 },
    ];
    rows.iter().enumerate().map(|(i, r)| r.build(i)).collect()
}

/// Look up an application by name.
pub fn by_name(name: &str) -> Option<AppSpec> {
    suite().into_iter().find(|a| a.name == name)
}

/// Applications of a given category, in suite order.
pub fn by_category(cat: Category) -> Vec<AppSpec> {
    suite().into_iter().filter(|a| a.category == cat).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_matches_table2() {
        let s = suite();
        assert_eq!(s.len(), 27);
        let count = |c| s.iter().filter(|a| a.category == c).count();
        assert_eq!(count(Category::CsPs), 5);
        assert_eq!(count(Category::CsPi), 7);
        assert_eq!(count(Category::CiPs), 7);
        assert_eq!(count(Category::CiPi), 8);
    }

    #[test]
    fn table2_membership() {
        for (name, cat) in [
            ("mcf", Category::CsPs),
            ("sphinx3", Category::CsPs),
            ("xalancbmk", Category::CsPi),
            ("hmmer", Category::CsPi),
            ("libquantum", Category::CiPs),
            ("bwaves", Category::CiPs),
            ("lbm", Category::CiPi),
            ("povray", Category::CiPi),
        ] {
            assert_eq!(by_name(name).unwrap().category, cat, "{name}");
        }
    }

    #[test]
    fn names_are_unique() {
        let s = suite();
        let mut names: Vec<_> = s.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 27);
    }

    #[test]
    fn all_specs_validate() {
        for app in suite() {
            for (i, p) in app.phases.iter().enumerate() {
                p.validate().unwrap_or_else(|e| panic!("{} phase {i}: {e}", app.name));
            }
            assert!(!app.sequence.is_empty(), "{}", app.name);
            for &p in &app.sequence {
                assert!(p < app.phases.len(), "{} references missing phase", app.name);
            }
        }
    }

    #[test]
    fn phase_weights_sum_to_one() {
        for app in suite() {
            let w = app.phase_weights();
            let s: f64 = w.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "{}", app.name);
            assert!(w.iter().all(|&x| x > 0.0), "{} has an unused phase", app.name);
        }
    }

    #[test]
    fn phase_tags_are_globally_unique() {
        let mut tags = Vec::new();
        for app in suite() {
            for p in &app.phases {
                tags.push(p.tag);
            }
        }
        let n = tags.len();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), n);
    }

    #[test]
    fn category_predicates() {
        assert!(Category::CsPs.cache_sensitive());
        assert!(Category::CsPs.parallelism_sensitive());
        assert!(Category::CsPi.cache_sensitive());
        assert!(!Category::CsPi.parallelism_sensitive());
        assert!(!Category::CiPs.cache_sensitive());
        assert!(Category::CiPs.parallelism_sensitive());
        assert!(!Category::CiPi.cache_sensitive());
        assert!(!Category::CiPi.parallelism_sensitive());
    }

    #[test]
    fn interval_counts_vary() {
        let s = suite();
        let min = s.iter().map(|a| a.n_intervals()).min().unwrap();
        let max = s.iter().map(|a| a.n_intervals()).max().unwrap();
        assert!(min >= 20, "apps must run at least 20 intervals, got {min}");
        assert!(max > min, "suite should have heterogeneous lengths");
    }

    #[test]
    fn by_category_returns_only_that_category() {
        for c in Category::ALL {
            for app in by_category(c) {
                assert_eq!(app.category, c);
            }
        }
    }

    #[test]
    fn ps_apps_expose_independent_misses() {
        // Structural sanity of the calibration: PS rows rely on independent,
        // address-ready misses whose overlap is bounded by the instruction
        // window; PI rows either serialize their misses through pointer
        // chases or have (almost) no LLC traffic to overlap.
        for app in suite() {
            let main = &app.phases[0];
            // Regions large enough to miss at the baseline allocation
            // (2 MB = 32768 blocks) are the ones whose overlap matters.
            let llc_weight: f64 =
                main.regions.iter().filter(|r| r.blocks > 32_768).map(|r| r.weight).sum();
            if app.category.parallelism_sensitive() {
                assert!(main.chase_frac <= 0.2, "{} chase {}", app.name, main.chase_frac);
                assert!(main.addr_dep <= 0.25, "{} addr_dep {}", app.name, main.addr_dep);
                assert!(llc_weight > 0.01, "{} needs LLC traffic", app.name);
            } else {
                assert!(
                    main.chase_frac >= 0.35 || llc_weight < 0.012,
                    "{} would expose size-dependent MLP",
                    app.name
                );
            }
        }
    }
}
