//! Fig. 1: category-mix probabilities and the four workload scenarios.
use triad_sim::workload::{cell_probability, scenario_of_pair, scenario_probability, Scenario};
use triad_trace::Category;

fn main() {
    println!("FIG. 1: category-mix cells (probability %, scenario)");
    println!("====================================================");
    print!("{:<8}", "");
    for b in Category::ALL {
        print!("{:>16}", b.label());
    }
    println!();
    for (i, a) in Category::ALL.iter().enumerate() {
        print!("{:<8}", a.label());
        for (j, b) in Category::ALL.iter().enumerate() {
            if j < i {
                print!("{:>16}", "-"); // symmetric lower triangle omitted
            } else {
                let p = cell_probability(*a, *b) * 100.0;
                let s = scenario_of_pair(*a, *b);
                print!("{:>11.1}% S{:<3}", p, match s {
                    Scenario::S1 => 1,
                    Scenario::S2 => 2,
                    Scenario::S3 => 3,
                    Scenario::S4 => 4,
                });
            }
        }
        println!();
    }
    println!("\nScenario weights (paper: 47 / 22.1 / 22.1 / 8.8 %):");
    for s in Scenario::ALL {
        println!("  {}: {:.1}%", s.label(), scenario_probability(s) * 100.0);
    }
}
