//! # triad-telemetry — zero-cost-when-disabled observability
//!
//! A static registry of named [`Counter`]s, [`Histogram`]s and
//! [`SpanName`]s with thread-sharded recording, plus two exporters: a
//! canonical-JSON metrics report (schema `triad-telemetry/v1`, written
//! with [`triad_util::json`]) and a Chrome-trace-event JSON that loads
//! directly in Perfetto or `chrome://tracing`.
//!
//! ## Design constraints
//!
//! * **Disabled is the default and costs one relaxed atomic load plus a
//!   predictable branch per call site.** Nothing is registered, no TLS is
//!   touched, no time is read. The `db_build` and `rm_overhead` benches
//!   gate the residual overhead at ≤1% of their hot loops.
//! * **Telemetry is a sidecar.** No recorded value ever feeds back into
//!   simulation results; campaign rows and persisted phase-database
//!   artifacts are byte-identical with telemetry on or off.
//! * **Counter and event *totals* are deterministic across thread
//!   counts.** Each thread records into its own shard; shards flush into
//!   one global aggregate when the thread exits (the campaign and
//!   phase-db workers are scoped threads, so they have flushed by the
//!   time their `par_map` returns) or when the owning thread calls
//!   [`snapshot`]/[`take_chrome_trace`]. Totals are sums of `u64`s, so
//!   the merge order does not matter. Wall-clock durations are exempt —
//!   they are honest measurements, not replayable state.
//!
//! ## Usage
//!
//! ```
//! use triad_telemetry as telemetry;
//!
//! static CACHE_HITS: telemetry::Counter = telemetry::Counter::new("demo.cache_hits");
//! static RESOLVE: telemetry::SpanName = telemetry::SpanName::new("demo.resolve");
//!
//! telemetry::enable(telemetry::METRICS | telemetry::TRACE);
//! {
//!     let _span = RESOLVE.enter();
//!     CACHE_HITS.add(3);
//! }
//! let snap = telemetry::snapshot();
//! assert_eq!(snap.counter("demo.cache_hits"), 3);
//! let trace = telemetry::take_chrome_trace();
//! assert!(trace.to_string_compact().contains("\"ph\":\"X\""));
//! telemetry::disable_all();
//! telemetry::reset();
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use triad_util::json::Json;

/// Flag bit: record counters, histograms and span aggregates.
pub const METRICS: u8 = 1;
/// Flag bit: capture per-span Chrome trace events (heavier: one event
/// per span entry, timestamped against a process-wide epoch).
pub const TRACE: u8 = 1 << 1;

static FLAGS: AtomicU8 = AtomicU8::new(0);

/// True if counter/histogram/span-aggregate recording is enabled.
#[inline]
pub fn metrics_on() -> bool {
    FLAGS.load(Ordering::Relaxed) & METRICS != 0
}

/// True if Chrome-trace event capture is enabled.
#[inline]
pub fn trace_on() -> bool {
    FLAGS.load(Ordering::Relaxed) & TRACE != 0
}

/// Turn on the given flag bits ([`METRICS`], [`TRACE`]). Idempotent;
/// the trace epoch is pinned on first enable.
pub fn enable(flags: u8) {
    epoch();
    FLAGS.fetch_or(flags & (METRICS | TRACE), Ordering::Relaxed);
}

/// Turn all recording off. Already-recorded data stays until [`reset`].
pub fn disable_all() {
    FLAGS.store(0, Ordering::Relaxed);
}

/// Process-wide epoch all trace timestamps are relative to.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

// ---------------------------------------------------------------------------
// Name registry: stable small ids for statically-declared instruments.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Names {
    counters: Vec<&'static str>,
    hists: Vec<&'static str>,
    spans: Vec<&'static str>,
}

static NAMES: Mutex<Names> =
    Mutex::new(Names { counters: Vec::new(), hists: Vec::new(), spans: Vec::new() });

fn lock_names() -> std::sync::MutexGuard<'static, Names> {
    NAMES.lock().unwrap_or_else(|e| e.into_inner())
}

/// Register `name` in `list`, deduplicating: two statics with the same
/// name share one slot, so their recordings merge.
fn register(list: fn(&mut Names) -> &mut Vec<&'static str>, name: &'static str) -> u32 {
    let mut names = lock_names();
    let list = list(&mut names);
    if let Some(i) = list.iter().position(|&n| n == name) {
        return i as u32;
    }
    list.push(name);
    (list.len() - 1) as u32
}

/// Cached-id helper shared by the three instrument kinds: `cache` holds
/// `id + 1` so the zero-initialized static means "not yet registered".
fn resolve_id(
    cache: &AtomicU32,
    list: fn(&mut Names) -> &mut Vec<&'static str>,
    name: &'static str,
) -> usize {
    let c = cache.load(Ordering::Relaxed);
    if c != 0 {
        return (c - 1) as usize;
    }
    let id = register(list, name);
    cache.store(id + 1, Ordering::Relaxed);
    id as usize
}

// ---------------------------------------------------------------------------
// Instruments.
// ---------------------------------------------------------------------------

/// A named monotonic counter. Declare as a `static`; recording is
/// thread-sharded and the exported value is the sum over all shards.
pub struct Counter {
    name: &'static str,
    id: AtomicU32,
}

impl Counter {
    /// Declare a counter. `name` should be `subsystem.metric` style.
    pub const fn new(name: &'static str) -> Counter {
        Counter { name, id: AtomicU32::new(0) }
    }

    /// Add `n`. A no-op (one load + branch) unless [`METRICS`] is on.
    #[inline]
    pub fn add(&self, n: u64) {
        if !metrics_on() {
            return;
        }
        self.add_enabled(n);
    }

    /// Add 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    #[cold]
    fn add_enabled(&self, n: u64) {
        let id = resolve_id(&self.id, |n| &mut n.counters, self.name);
        with_shard(|s| {
            if s.counts.len() <= id {
                s.counts.resize(id + 1, 0);
            }
            s.counts[id] += n;
            s.ops += 1;
        });
    }
}

/// Number of log2 buckets a [`Histogram`] keeps: bucket 0 counts the
/// value 0, bucket `i` counts values with `i` significant bits (i.e.
/// `[2^(i-1), 2^i)`); everything ≥ 2^31 lands in the last bucket.
pub const HIST_BUCKETS: usize = 33;

/// A named log2-bucketed histogram of `u64` samples (count, sum,
/// min/max and 33 power-of-two buckets). Totals are deterministic
/// across thread counts for a deterministic sample set.
pub struct Histogram {
    name: &'static str,
    id: AtomicU32,
}

impl Histogram {
    /// Declare a histogram.
    pub const fn new(name: &'static str) -> Histogram {
        Histogram { name, id: AtomicU32::new(0) }
    }

    /// Record one sample. A no-op unless [`METRICS`] is on.
    #[inline]
    pub fn observe(&self, v: u64) {
        if !metrics_on() {
            return;
        }
        self.observe_enabled(v);
    }

    #[cold]
    fn observe_enabled(&self, v: u64) {
        let id = resolve_id(&self.id, |n| &mut n.hists, self.name);
        let bucket = (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        with_shard(|s| {
            if s.hists.len() <= id {
                s.hists.resize(id + 1, HistAgg::new());
            }
            s.hists[id].record(v, bucket);
            s.ops += 1;
        });
    }
}

#[derive(Clone)]
struct HistAgg {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl HistAgg {
    fn new() -> HistAgg {
        HistAgg { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; HIST_BUCKETS] }
    }

    fn record(&mut self, v: u64, bucket: usize) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket] += 1;
    }

    fn merge(&mut self, o: &HistAgg) {
        self.count += o.count;
        self.sum += o.sum;
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
        for (a, b) in self.buckets.iter_mut().zip(o.buckets.iter()) {
            *a += b;
        }
    }
}

/// A named span. [`SpanName::enter`] returns a guard that records the
/// elapsed wall time on drop (into the metrics aggregate) and, when
/// [`TRACE`] is on, emits one Chrome complete (`"ph":"X"`) event.
pub struct SpanName {
    name: &'static str,
    id: AtomicU32,
}

impl SpanName {
    /// Declare a span name.
    pub const fn new(name: &'static str) -> SpanName {
        SpanName { name, id: AtomicU32::new(0) }
    }

    /// Start timing. Costs one load + branch when everything is off.
    #[inline]
    pub fn enter(&self) -> SpanGuard {
        if FLAGS.load(Ordering::Relaxed) == 0 {
            return SpanGuard { active: None };
        }
        SpanGuard {
            active: Some(ActiveSpan {
                id: resolve_id(&self.id, |n| &mut n.spans, self.name) as u32,
                name: self.name,
                start: Instant::now(),
            }),
        }
    }
}

struct ActiveSpan {
    id: u32,
    name: &'static str,
    start: Instant,
}

/// Guard returned by [`SpanName::enter`]; records on drop.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else { return };
        let dur = span.start.elapsed();
        let flags = FLAGS.load(Ordering::Relaxed);
        if flags == 0 {
            return;
        }
        with_shard(|s| {
            if flags & METRICS != 0 {
                let id = span.id as usize;
                if s.spans.len() <= id {
                    s.spans.resize(id + 1, SpanAgg { count: 0, total_ns: 0 });
                }
                s.spans[id].count += 1;
                s.spans[id].total_ns += dur.as_nanos() as u64;
                s.ops += 1;
            }
            if flags & TRACE != 0 {
                s.events.push(Event {
                    name: span.name,
                    ts_ns: span.start.duration_since(epoch()).as_nanos() as u64,
                    dur_ns: dur.as_nanos() as u64,
                });
            }
        });
    }
}

#[derive(Clone, Copy)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
}

struct Event {
    name: &'static str,
    ts_ns: u64,
    dur_ns: u64,
}

// ---------------------------------------------------------------------------
// Thread shards and the global aggregate.
// ---------------------------------------------------------------------------

struct Shard {
    tid: u32,
    counts: Vec<u64>,
    hists: Vec<HistAgg>,
    spans: Vec<SpanAgg>,
    events: Vec<Event>,
    ops: u64,
}

impl Shard {
    fn new() -> Shard {
        static NEXT_TID: AtomicU32 = AtomicU32::new(0);
        Shard {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            counts: Vec::new(),
            hists: Vec::new(),
            spans: Vec::new(),
            events: Vec::new(),
            ops: 0,
        }
    }

    fn clear(&mut self) {
        self.counts.clear();
        self.hists.clear();
        self.spans.clear();
        self.events.clear();
        self.ops = 0;
    }
}

/// TLS cell whose `Drop` flushes the shard into the global aggregate —
/// worker threads spawned by `triad_util::par` flush automatically when
/// their scope ends.
struct ShardCell(RefCell<Shard>);

impl Drop for ShardCell {
    fn drop(&mut self) {
        flush_shard(&mut self.0.borrow_mut());
    }
}

thread_local! {
    static SHARD: ShardCell = ShardCell(RefCell::new(Shard::new()));
}

fn with_shard(f: impl FnOnce(&mut Shard)) {
    // Ignore recording attempts during thread teardown after the shard
    // itself has been destroyed.
    let _ = SHARD.try_with(|c| f(&mut c.0.borrow_mut()));
}

struct FlushedEvent {
    name: &'static str,
    tid: u32,
    ts_ns: u64,
    dur_ns: u64,
}

struct Aggregate {
    counts: Vec<u64>,
    hists: Vec<HistAgg>,
    spans: Vec<SpanAgg>,
    events: Vec<FlushedEvent>,
    ops: u64,
}

static AGG: Mutex<Aggregate> = Mutex::new(Aggregate {
    counts: Vec::new(),
    hists: Vec::new(),
    spans: Vec::new(),
    events: Vec::new(),
    ops: 0,
});

fn lock_agg() -> std::sync::MutexGuard<'static, Aggregate> {
    AGG.lock().unwrap_or_else(|e| e.into_inner())
}

fn flush_shard(shard: &mut Shard) {
    if shard.counts.is_empty()
        && shard.hists.is_empty()
        && shard.spans.is_empty()
        && shard.events.is_empty()
        && shard.ops == 0
    {
        return;
    }
    let mut agg = lock_agg();
    if agg.counts.len() < shard.counts.len() {
        agg.counts.resize(shard.counts.len(), 0);
    }
    for (a, c) in agg.counts.iter_mut().zip(shard.counts.iter()) {
        *a += c;
    }
    if agg.hists.len() < shard.hists.len() {
        agg.hists.resize(shard.hists.len(), HistAgg::new());
    }
    for (a, h) in agg.hists.iter_mut().zip(shard.hists.iter()) {
        a.merge(h);
    }
    if agg.spans.len() < shard.spans.len() {
        agg.spans.resize(shard.spans.len(), SpanAgg { count: 0, total_ns: 0 });
    }
    for (a, s) in agg.spans.iter_mut().zip(shard.spans.iter()) {
        a.count += s.count;
        a.total_ns += s.total_ns;
    }
    let tid = shard.tid;
    agg.events.extend(shard.events.drain(..).map(|e| FlushedEvent {
        name: e.name,
        tid,
        ts_ns: e.ts_ns,
        dur_ns: e.dur_ns,
    }));
    agg.ops += shard.ops;
    shard.clear();
}

/// Flush the calling thread's shard into the global aggregate. Called
/// implicitly by [`snapshot`] and [`take_chrome_trace`]; other threads
/// flush when they exit.
pub fn flush_thread() {
    with_shard(flush_shard);
}

/// Discard everything recorded so far (global aggregate plus the
/// calling thread's shard). Registered names keep their ids.
pub fn reset() {
    with_shard(Shard::clear);
    let mut agg = lock_agg();
    agg.counts.clear();
    agg.hists.clear();
    agg.spans.clear();
    agg.events.clear();
    agg.ops = 0;
}

// ---------------------------------------------------------------------------
// Snapshot + exporters.
// ---------------------------------------------------------------------------

/// Exported histogram statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistStats {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// `(bucket index, count)` pairs for the non-empty log2 buckets.
    pub buckets: Vec<(u32, u64)>,
}

/// Exported span statistics. `count` is deterministic across thread
/// counts; `total_ns` is wall clock and is not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStats {
    /// Times the span was entered.
    pub count: u64,
    /// Total wall-clock nanoseconds across entries (informational).
    pub total_ns: u64,
}

/// A point-in-time copy of every aggregate, sorted by name.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// `(name, total)` for every registered counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, stats)` for every registered histogram, sorted by name.
    pub histograms: Vec<(String, HistStats)>,
    /// `(name, stats)` for every registered span, sorted by name.
    pub spans: Vec<(String, SpanStats)>,
    /// Total record operations performed while metrics were enabled —
    /// the `O` in the benches' `O × cost_per_disabled_call ≤ 1%` gate.
    pub record_ops: u64,
}

impl Snapshot {
    /// Total for a counter by name (0 if never recorded).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0)
    }

    /// Span stats by name.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Histogram stats by name.
    pub fn histogram(&self, name: &str) -> Option<&HistStats> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Canonical `triad-telemetry/v1` metrics report. Counter totals,
    /// histogram statistics and span counts are deterministic across
    /// thread counts; `total_ms` fields are wall clock.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (name, v) in &self.counters {
            counters = counters.set(name, *v);
        }
        let mut hists = Json::obj();
        for (name, h) in &self.histograms {
            let buckets = Json::Arr(
                h.buckets
                    .iter()
                    .map(|&(i, c)| Json::Arr(vec![Json::from(u64::from(i)), Json::from(c)]))
                    .collect(),
            );
            hists = hists.set(
                name,
                Json::obj()
                    .set("count", h.count)
                    .set("sum", h.sum)
                    .set("min", h.min)
                    .set("max", h.max)
                    .set("buckets", buckets),
            );
        }
        let mut spans = Json::obj();
        for (name, s) in &self.spans {
            spans = spans.set(
                name,
                Json::obj().set("count", s.count).set("total_ms", s.total_ns as f64 / 1e6),
            );
        }
        Json::obj()
            .set("schema", "triad-telemetry/v1")
            .set("counters", counters)
            .set("histograms", hists)
            .set("spans", spans)
            .set("record_ops", self.record_ops)
    }
}

/// Snapshot every aggregate (flushing the calling thread's shard first).
/// Does not consume anything; call [`reset`] to start over.
pub fn snapshot() -> Snapshot {
    flush_thread();
    let names = lock_names();
    let agg = lock_agg();
    let mut counters: Vec<(String, u64)> = names
        .counters
        .iter()
        .enumerate()
        .map(|(i, &n)| (n.to_string(), agg.counts.get(i).copied().unwrap_or(0)))
        .collect();
    counters.sort();
    let mut histograms: Vec<(String, HistStats)> = names
        .hists
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let h = agg.hists.get(i).cloned().unwrap_or_else(HistAgg::new);
            let buckets = h
                .buckets
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(b, &c)| (b as u32, c))
                .collect();
            (
                n.to_string(),
                HistStats {
                    count: h.count,
                    sum: h.sum,
                    min: if h.count == 0 { 0 } else { h.min },
                    max: h.max,
                    buckets,
                },
            )
        })
        .collect();
    histograms.sort_by(|a, b| a.0.cmp(&b.0));
    let mut spans: Vec<(String, SpanStats)> = names
        .spans
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let s = agg.spans.get(i).copied().unwrap_or(SpanAgg { count: 0, total_ns: 0 });
            (n.to_string(), SpanStats { count: s.count, total_ns: s.total_ns })
        })
        .collect();
    spans.sort_by(|a, b| a.0.cmp(&b.0));
    Snapshot { counters, histograms, spans, record_ops: agg.ops }
}

/// Drain all captured span events into a Chrome-trace-event JSON
/// document (`{"traceEvents": [...]}` with complete `"X"` events),
/// loadable in Perfetto or `chrome://tracing`. Timestamps are
/// microseconds since the telemetry epoch; `tid` is the recording
/// thread's shard id.
pub fn take_chrome_trace() -> Json {
    flush_thread();
    let mut agg = lock_agg();
    let mut events = std::mem::take(&mut agg.events);
    drop(agg);
    events.sort_by(|a, b| (a.ts_ns, a.tid, a.name).cmp(&(b.ts_ns, b.tid, b.name)));
    let items = events
        .iter()
        .map(|e| {
            Json::obj()
                .set("name", e.name)
                .set("cat", "triad")
                .set("ph", "X")
                .set("ts", e.ts_ns as f64 / 1e3)
                .set("dur", e.dur_ns as f64 / 1e3)
                .set("pid", 0u64)
                .set("tid", u64::from(e.tid))
        })
        .collect();
    Json::obj().set("traceEvents", Json::Arr(items)).set("displayTimeUnit", "ms")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Telemetry state is process-global; serialize the tests.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn fresh() {
        disable_all();
        reset();
    }

    static C1: Counter = Counter::new("test.c1");
    static C2: Counter = Counter::new("test.c2");
    static H1: Histogram = Histogram::new("test.h1");
    static S1: SpanName = SpanName::new("test.s1");

    #[test]
    fn disabled_records_nothing() {
        let _g = serial();
        fresh();
        C1.add(5);
        H1.observe(9);
        drop(S1.enter());
        let snap = snapshot();
        assert_eq!(snap.counter("test.c1"), 0);
        assert_eq!(snap.record_ops, 0);
        assert!(snap.histogram("test.h1").map(|h| h.count).unwrap_or(0) == 0);
    }

    #[test]
    fn counters_and_histograms_aggregate() {
        let _g = serial();
        fresh();
        enable(METRICS);
        C1.add(2);
        C1.incr();
        C2.add(7);
        H1.observe(0);
        H1.observe(1);
        H1.observe(1024);
        let snap = snapshot();
        fresh();
        assert_eq!(snap.counter("test.c1"), 3);
        assert_eq!(snap.counter("test.c2"), 7);
        let h = snap.histogram("test.h1").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 1025);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        // 0 → bucket 0, 1 → bucket 1, 1024 = 2^10 → bucket 11.
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (11, 1)]);
        assert_eq!(snap.record_ops, 6);
        // Counters come back sorted by name.
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn totals_are_thread_count_invariant() {
        let _g = serial();
        let work = |threads: usize| {
            fresh();
            enable(METRICS);
            let items: Vec<u64> = (0..64).collect();
            triad_util::par::par_map(&items, threads, |&i| {
                let _s = S1.enter();
                C1.add(i);
                H1.observe(i);
            });
            let snap = snapshot();
            fresh();
            (
                snap.counter("test.c1"),
                snap.histogram("test.h1").unwrap().clone(),
                snap.span("test.s1").unwrap().count,
                snap.record_ops,
            )
        };
        let one = work(1);
        let four = work(4);
        assert_eq!(one.0, four.0);
        assert_eq!(one.1, four.1);
        assert_eq!(one.2, four.2);
        assert_eq!(one.3, four.3);
        assert_eq!(one.0, (0..64).sum::<u64>());
        assert_eq!(one.2, 64);
    }

    #[test]
    fn chrome_trace_is_parseable_complete_events() {
        let _g = serial();
        fresh();
        enable(METRICS | TRACE);
        for _ in 0..3 {
            let _s = S1.enter();
        }
        let doc = take_chrome_trace();
        let snap = snapshot();
        fresh();
        assert_eq!(snap.span("test.s1").unwrap().count, 3);
        let text = doc.to_string_pretty();
        let parsed = triad_util::json::parse(&text).expect("chrome trace must parse");
        let Some(Json::Arr(events)) = parsed.get("traceEvents") else {
            panic!("traceEvents array missing");
        };
        assert_eq!(events.len(), 3);
        for e in events {
            assert_eq!(e.get("ph"), Some(&Json::Str("X".into())));
            assert!(e.get("ts").is_some() && e.get("dur").is_some());
            assert_eq!(e.get("pid"), Some(&Json::Int(0)));
        }
        // Drained: a second take is empty.
        let doc2 = take_chrome_trace();
        assert_eq!(doc2.get("traceEvents"), Some(&Json::Arr(Vec::new())));
    }

    #[test]
    fn metrics_json_round_trips() {
        let _g = serial();
        fresh();
        enable(METRICS);
        C1.add(11);
        H1.observe(5);
        {
            let _s = S1.enter();
        }
        let snap = snapshot();
        fresh();
        let text = snap.to_json().to_string_pretty();
        let parsed = triad_util::json::parse(&text).expect("metrics report must parse");
        assert_eq!(parsed.get("schema"), Some(&Json::Str("triad-telemetry/v1".into())));
        let counters = parsed.get("counters").unwrap();
        assert_eq!(counters.get("test.c1"), Some(&Json::Int(11)));
    }
}
