//! Front-end cost of a phase build: trace generation and classification.
//!
//! PR 6 made these the cold path's second pillar (the lockstep grid being
//! the first): `build_phase` streams generation into classification
//! (state-only warmup, one pass) instead of materializing the warmup
//! `Inst` records and walking them twice. This bench tracks
//!
//! * `generate` — the deterministic RNG generator alone (streamed into a
//!   no-op sink);
//! * `gen_classify_split` — the pre-PR 6 shape: materialize the full
//!   trace, then `classify_warm` over it;
//! * `gen_classify_fused` — the streaming `generate_classify` pipeline
//!   `build_phase` actually runs;
//!
//! and asserts the fused pass is no slower than the split shape (it does
//! strictly less work). Run with
//! `cargo bench -p triad-bench --bench trace_front`; set
//! `TRIAD_BENCH_BUDGET_MS` to shrink the window (CI smoke).

use std::hint::black_box;
use std::time::Duration;
use triad_arch::CacheGeometry;
use triad_cache::{classify_warm, generate_classify};
use triad_phasedb::DbConfig;
use triad_util::bench::{bench, budget_from_env};

/// Recorded on the reference dev box (2026-08-07, release build): the
/// fused generate+classify pass costs ~34 ns per generated instruction
/// for the fast configuration (the pre-PR 6 split pipeline paid ~47 ns:
/// division-heavy RNG sampling plus a second classification pass over a
/// materialized trace). Only a >50× regression fails.
const FRONT_BASELINE_NS_PER_INST: f64 = 34.0;

fn main() {
    let cfg = DbConfig::fast();
    let geom = CacheGeometry::table1_scaled(4, cfg.scale);
    let budget = budget_from_env(Duration::from_secs(2));
    let len = cfg.warmup + cfg.detail;

    let mut worst_fused = 0.0f64;
    for name in ["mcf", "povray"] {
        let app = triad_trace::suite().into_iter().find(|a| a.name == name).unwrap();
        let spec = app.phases[0].scaled(cfg.scale as u64);

        let g = bench(&format!("trace_front/generate_{name}"), Some(len as u64), budget, || {
            let mut sum = 0u64;
            spec.generate_stream(len, cfg.seed, |_, inst| sum ^= inst.addr);
            black_box(sum);
        });

        // PR 8 reference shape: the per-instruction chain of independent
        // `random_range` draws the tabled generator replaced. Both emit
        // identical streams (asserted by trace-crate tests); the table
        // must also never be slower.
        let chained = bench(
            &format!("trace_front/generate_chained_{name}"),
            Some(len as u64),
            budget,
            || {
                let mut sum = 0u64;
                spec.generate_stream_chained(len, cfg.seed, |_, inst| sum ^= inst.addr);
                black_box(sum);
            },
        );

        let split = bench(
            &format!("trace_front/gen_classify_split_{name}"),
            Some(len as u64),
            budget,
            || {
                let trace = spec.generate(len, cfg.seed);
                black_box(classify_warm(&trace, &geom, cfg.warmup));
            },
        );

        let mut detailed = Vec::new();
        let fused = bench(
            &format!("trace_front/gen_classify_fused_{name}"),
            Some(len as u64),
            budget,
            || {
                black_box(generate_classify(
                    &spec,
                    &geom,
                    cfg.warmup,
                    cfg.detail,
                    cfg.seed,
                    &mut detailed,
                ));
            },
        );

        let ns = |m: &triad_util::bench::Measurement| m.secs_per_iter * 1e9 / len as f64;
        println!(
            "trace_front/{name:<10} generate {:>5.1} ns/inst (chained {:>5.1})   \
             split {:>5.1} ns/inst   fused {:>5.1} ns/inst",
            ns(&g),
            ns(&chained),
            ns(&split),
            ns(&fused)
        );
        worst_fused = worst_fused.max(ns(&fused));

        // The tabled draw schedule replaces every per-instruction f64
        // comparison chain and Lemire rejection loop with table lookups;
        // it must not lose to the chain it replaced. Same 1.25 drift
        // allowance as the fused/split gate below.
        assert!(
            g.secs_per_iter <= chained.secs_per_iter * 1.25,
            "tabled generator slower than chained draws: {:.2} ms vs {:.2} ms",
            g.secs_per_iter * 1e3,
            chained.secs_per_iter * 1e3
        );

        // The fused pass does strictly less work than the split shape
        // (no warmup materialization, no second traversal); 1.25 absorbs
        // timer drift on busy single-core runners, where back-to-back
        // identical measurements differ by >10%.
        assert!(
            fused.secs_per_iter <= split.secs_per_iter * 1.25,
            "fused generate+classify slower than materialize-then-classify: \
             {:.2} ms vs {:.2} ms",
            fused.secs_per_iter * 1e3,
            split.secs_per_iter * 1e3
        );
    }

    println!(
        "trace_front/baseline                     {FRONT_BASELINE_NS_PER_INST:>8.1} \
         ns/inst fused (recorded 2026-08-07)"
    );
    assert!(
        worst_fused < FRONT_BASELINE_NS_PER_INST * 50.0,
        "front end regressed catastrophically: {worst_fused:.1} ns/inst \
         vs recorded {FRONT_BASELINE_NS_PER_INST:.1}"
    );
}
