//! Workload consolidation: a QoS-bound, cache-hungry service sharing a
//! 4-core socket with batch jobs — the multiprogrammed setting the paper's
//! introduction motivates. Every application keeps its baseline
//! performance; the RM mines the leftover resource slack for energy.
//!
//! Run with: `cargo run --release --example consolidation`

use triad::phasedb::{build_suite, DbConfig};
use triad::rm::RmKind;
use triad::sim::engine::{SimConfig, Simulator};
use triad::trace::by_name;
use triad::workload::scenario_of_pair;

fn main() {
    println!("building the full-suite database (27 applications)...");
    let db = build_suite(&DbConfig::default());

    // One cache-sensitive, parallelism-sensitive service (mcf), one
    // streaming scientific job (libquantum) and two compute-bound batch
    // jobs (povray, gamess).
    let names = ["mcf", "libquantum", "povray", "gamess"];
    let cats: Vec<_> = names.iter().map(|n| by_name(n).unwrap().category).collect();
    println!("mix: {:?} ({:?})", names, cats);
    println!("Fig. 1 scenario of the (mcf, povray) pair: {}", scenario_of_pair(cats[0], cats[2]));

    let idle = Simulator::new(&db, 4, SimConfig::idle()).run(&names);
    println!("\nidle RM energy: {:.2} J", idle.total_energy_j);
    for rm in [RmKind::Rm1, RmKind::Rm2, RmKind::Rm3] {
        let r = Simulator::new(&db, 4, SimConfig::perfect(rm)).run(&names);
        println!(
            "{}: savings {:5.1}%  (violating intervals: {}/{})",
            rm.label(),
            100.0 * r.savings_vs(&idle),
            r.qos_violations,
            r.intervals_checked
        );
    }
    println!("\nRM3 trades LLC ways toward mcf, upsizes the streaming core for");
    println!("MLP and lowers every core's VF to ride the QoS boundary.");
}
