//! Thin wrapper: `triad-bench --experiment fig9` (Fig. 9 — RM3 savings by performance model).
fn main() -> std::process::ExitCode {
    triad_bench::cli::main_with(Some("fig9"))
}
