//! # triad-bench — the campaign-driven experiment harness
//!
//! One CLI driver regenerates every table and figure of the paper:
//!
//! ```text
//! cargo run --release --bin triad-bench -- --experiment fig6 --cores 8 --json out.json
//! ```
//!
//! | experiment  | reproduces |
//! |-------------|------------|
//! | `table1`    | Table I — baseline configuration |
//! | `table2`    | Table II — application categories via the §IV-C criteria |
//! | `fig1`      | Fig. 1 — category-mix probabilities and scenarios |
//! | `fig2`      | Fig. 2 — two-core scenario savings (perfect models) |
//! | `fig6`      | Fig. 6 — RM1/RM2/RM3 savings on 4-/8-core workloads |
//! | `fig7`      | Fig. 7 — QoS-violation probability / expected value / σ |
//! | `fig8`      | Fig. 8 — violation-magnitude distribution |
//! | `fig9`      | Fig. 9 — RM3 savings under Model1/2/3 vs perfect |
//! | `overheads` | §III-E — RM algorithm operation counts and runtime |
//! | `custom`    | any ad-hoc workload/controller/model campaign spec |
//!
//! Simulation-backed experiments expand into [`triad_sim::Campaign`] specs
//! and run in parallel with shared memoized idle baselines; `--json`
//! writes the canonical campaign report next to the figure summary. The
//! historical per-figure binaries (`fig6_energy`, …) remain as thin
//! wrappers that pre-select `--experiment`.
//!
//! Plain-timing benches (`cargo bench -p triad-bench`): the RM-invocation
//! cost versus core count (the §III-E instruction-count measurement) and
//! the substrate throughputs (cache classification, timing simulation,
//! ATD+MLP monitor, global optimizer).

pub mod cli;
pub mod reports;

use std::sync::OnceLock;
use triad_phasedb::{DbConfig, DbStore, PhaseDb, StoreOutcome};

/// Resolve (once per process) the full-suite phase database through the
/// default content-addressed store — a millisecond-scale load on a warm
/// cache, a build + persist on a cold one.
pub fn db() -> &'static PhaseDb {
    static DB: OnceLock<PhaseDb> = OnceLock::new();
    DB.get_or_init(|| resolve_db(&DbConfig::default(), &DbStore::default_cache()))
}

/// Resolve a full-suite database through `store` with an explicit
/// configuration, reporting provenance and timing on stderr.
pub fn resolve_db(cfg: &DbConfig, store: &DbStore) -> PhaseDb {
    eprintln!("resolving the detailed-simulation database (all 27 apps)...");
    let t = std::time::Instant::now();
    let resolved = store.resolve_suite(cfg);
    let how = match resolved.outcome {
        StoreOutcome::Hit => "loaded from cache",
        StoreOutcome::Miss => "built and cached",
        StoreOutcome::CorruptRebuilt => "rebuilt (corrupt cache entry replaced)",
        StoreOutcome::ForcedRebuild => "rebuilt (--db-rebuild)",
    };
    eprintln!(
        "database ready in {:.3}s ({how}: {})",
        t.elapsed().as_secs_f64(),
        resolved.path.display()
    );
    resolved.db
}

/// Format a savings fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", 100.0 * x)
}
