//! Fig. 2: two-core workloads, one per scenario, perfect models, no
//! overheads.
use triad_bench::{db, pct};
use triad_sim::experiments::fig2;

fn main() {
    let rows = fig2(db());
    println!("FIG. 2: two-core scenario savings (perfect models, no overheads)");
    println!("================================================================");
    println!("{:<12} {:<28} {:>7} {:>7} {:>7}", "scenario", "workload", "RM1", "RM2", "RM3");
    for r in &rows {
        println!(
            "{:<12} {:<28} {:>7} {:>7} {:>7}",
            r.workload.scenario.label(),
            r.workload.apps.join("+"),
            pct(r.savings[0]),
            pct(r.savings[1]),
            pct(r.savings[2])
        );
    }
    println!("\npaper shape: S1 both effective with RM3 well ahead (~70% higher);");
    println!("S2 comparable; S3 only RM3; S4 all ineffective");
}
