//! # triad-phasedb — the detailed-simulation database
//!
//! The paper's methodology (§IV-A) performs Sniper + McPAT simulations of
//! every benchmark phase over **all** core configurations, VF settings and
//! LLC allocations, and collects the results in a database that the RM
//! simulator replays. This crate is that step:
//!
//! 1. each application phase generates its deterministic trace
//!    (`triad-trace`), working-set-scaled to match the scaled cache
//!    geometry;
//! 2. one [`triad_cache::classify_warm`] pass produces the per-access LLC
//!    stack distances and the ATD miss curves (warm-up mirrors the paper's
//!    100M-warmup/100M-detailed windows);
//! 3. for every `(core size, way allocation)` the out-of-order timing model
//!    runs at two frequencies, fitting the ground truth
//!    `T(f) = A/f + B` per configuration — which preserves the
//!    frequency-dependent overlap effects the online model's rigid `f_i/f`
//!    scaling cannot see;
//! 4. the low-frequency run also emulates the proposed hardware: it feeds
//!    the arrival-ordered LLC load stream into the [`triad_cache::MlpMonitor`]
//!    and records the performance-counter decomposition — i.e. exactly the
//!    *monitor statistics* the online RM is allowed to use.
//!
//! The resulting [`PhaseDb`] answers, for any `(phase, c, f, w)`:
//! ground-truth time and energy per instruction, and the monitor statistics
//! as observed at that setting.

//! Building is expensive (minutes of detailed simulation), so the database
//! is persisted behind a content-addressed [`DbStore`]: artifacts are keyed
//! by [`db_fingerprint`] (a canonical digest of the [`DbConfig`], the suite
//! definition and the shape constants), loaded on hit, and built + written
//! atomically on miss. Every consumer — campaigns, the `triad-bench` CLI,
//! the calibration tool — resolves its database through the store instead
//! of calling [`build_suite`] directly.

pub mod build;
pub mod characterize;
pub mod fingerprint;
pub mod record;
pub mod serde;
pub mod store;

pub use build::{build_apps, build_apps_unshared, build_phase, build_suite, DbConfig};
pub use characterize::{characterize_app, AppCharacterization};
pub use fingerprint::{db_fingerprint, FINGERPRINT_DOMAIN};
pub use record::{cw, AppDbEntry, MonitorStats, PhaseDb, PhaseRecord, NC, NW, W_MAX, W_MIN};
pub use serde::{db_from_json, db_to_json, DB_SCHEMA};
pub use store::{DbStore, Resolved, StoreOutcome};
