//! Declarative, parallel experiment campaigns.
//!
//! Every §V experiment is some set of *(workload, controller, model,
//! α, overheads)* points evaluated against the shared idle-RM reference.
//! Instead of hand-rolling that loop per figure, a [`Campaign`] takes a
//! list of [`ExperimentSpec`]s — pure descriptions of single simulator
//! runs — and executes them in parallel over scoped threads with two
//! sharing optimizations:
//!
//! 1. the detailed-simulation [`PhaseDb`] is borrowed by every worker
//!    (it is immutable during a campaign), and
//! 2. idle-RM baselines are **memoized**: specs that share a workload
//!    (and horizon) share one idle reference run instead of each
//!    re-simulating it.
//!
//! Execution is deterministic: the simulator itself is a pure function of
//! its spec, workers write into order-preserving slots, and the JSON
//! serialization is canonical — so the same campaign produces
//! byte-identical output at any thread count. The engine's incremental
//! planning state (the persistent reduction forest and its decision memo)
//! is created inside each run, never shared across workers, so it adds no
//! cross-run coupling — and its decisions, including the reported
//! `rm_ops`, are byte-identical to the from-scratch formulation, keeping
//! every campaign row stable across this optimization. The experiment drivers in
//! [`crate::experiments`] and the `triad-bench` CLI are thin layers over
//! this module.
//!
//! Databases are resolved through the content-addressed
//! [`triad_phasedb::DbStore`] ([`Campaign::run_cached`]): a campaign knows
//! exactly which applications its specs reference, so the store can load —
//! or build and persist — precisely that artifact, and warm runs skip the
//! minutes-scale detailed simulation entirely.

use crate::engine::{max_suite_intervals, SimConfig, SimModel, SimResult, Simulator};
use crate::journal::{self, LoadedJournal, RowJournal};
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::sync::Arc;
use triad_energy::{EnergyBackend, EnergyBackendConfig};
use triad_phasedb::{DbConfig, DbStore, PhaseDb};
use triad_rm::{ModelKind, RmKind};
use triad_telemetry::{Counter, SpanName};
use triad_trace::AppSpec;
use triad_util::failpoint::FailPoint;
use triad_util::hash::Fingerprint;
use triad_util::json::Json;
use triad_util::par;
use triad_workload::{Scenario, Workload, WorkloadSpec, WorkloadTrace};

static TRACE_MATERIALIZE_SPAN: SpanName = SpanName::new("campaign.trace_materialize");
static IDLE_BASELINE_SPAN: SpanName = SpanName::new("campaign.idle_baseline");
static SIMULATE_SPAN: SpanName = SpanName::new("campaign.simulate");
static QOS_EVAL_SPAN: SpanName = SpanName::new("campaign.qos_eval");
static DB_RESOLVE_SPAN: SpanName = SpanName::new("campaign.db_resolve");
static ROWS: Counter = Counter::new("campaign.rows");
static ROWS_SIMULATED: Counter = Counter::new("campaign.rows_simulated");
static ROWS_RESUMED: Counter = Counter::new("campaign.rows_resumed");
static ROWS_QUARANTINED: Counter = Counter::new("campaign.rows_quarantined");
static RESUME_REJECTED: Counter = Counter::new("campaign.resume_rejected");

/// Injected-fault site evaluated at the top of every per-row simulation
/// (inside the row's `catch_unwind` quarantine), e.g.
/// `TRIAD_FAILPOINTS="campaign.row=once:panic"`.
pub static ROW_FP: FailPoint = FailPoint::new("campaign.row");

/// A pure description of one simulator run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Row label, e.g. `"4Core-W7/RM3"`.
    pub name: String,
    /// One application name per core.
    pub apps: Vec<String>,
    /// The Fig. 1 scenario this workload was generated for, if known.
    pub scenario: Option<Scenario>,
    /// Controller; `None` = the idle RM (baseline pinned).
    pub rm: Option<RmKind>,
    /// Predictor flavor.
    pub model: SimModel,
    /// QoS slack `α` (Eq. 3).
    pub alpha: f64,
    /// Charge DVFS/resize/RM-software overheads (§III-E).
    pub overheads: bool,
    /// Simulated horizon per application, in RM intervals.
    pub target_intervals: usize,
    /// Workload-generation seed, recorded for provenance.
    pub seed: u64,
    /// Energy-accounting backend the run is evaluated under; recorded in
    /// every report row so archived results stay attributable.
    pub energy: EnergyBackendConfig,
    /// Time-varying workload program, when the run is not a static app
    /// list. `None` replays `apps` frozen at `t = 0` (the pre-subsystem
    /// behavior); either way the materialized trace's fingerprint is
    /// recorded in the row.
    pub workload: Option<WorkloadSpec>,
}

impl ExperimentSpec {
    /// A spec with the paper's headline defaults: RM3 with the proposed
    /// Model3, overheads on, `α = 1`, suite-maximum horizon.
    pub fn new(name: impl Into<String>, apps: &[&str]) -> Self {
        ExperimentSpec {
            name: name.into(),
            apps: apps.iter().map(|s| s.to_string()).collect(),
            scenario: None,
            rm: Some(RmKind::Rm3),
            model: SimModel::Online(ModelKind::Model3),
            alpha: triad_arch::QOS_ALPHA,
            overheads: true,
            target_intervals: max_suite_intervals(),
            seed: 0,
            energy: EnergyBackendConfig::Parametric,
            workload: None,
        }
    }

    /// A spec over a dynamic [`WorkloadSpec`] with the headline defaults.
    /// `apps` is filled with the union of applications the materialized
    /// trace references (so campaigns resolve the right database), and the
    /// simulator replays the trace instead of a static list.
    ///
    /// Fails when the workload spec cannot be materialized.
    pub fn for_workload_spec(
        name: impl Into<String>,
        workload: WorkloadSpec,
    ) -> Result<Self, String> {
        let trace = workload.materialize()?;
        let apps = trace.apps();
        let refs: Vec<&str> = apps.iter().map(String::as_str).collect();
        let mut spec = Self::new(name, &refs);
        spec.workload = Some(workload);
        Ok(spec)
    }

    /// Spec for a generated [`Workload`].
    pub fn for_workload(wl: &Workload, rm: Option<RmKind>) -> Self {
        let rm_label = rm.map(|r| r.label()).unwrap_or("idle");
        ExperimentSpec {
            scenario: Some(wl.scenario),
            rm,
            ..Self::new(format!("{}/{rm_label}", wl.name), &wl.apps)
        }
    }

    /// Select the controller (`None` = idle reference).
    pub fn rm(mut self, rm: Option<RmKind>) -> Self {
        self.rm = rm;
        self
    }

    /// Select the predictor.
    pub fn model(mut self, model: SimModel) -> Self {
        self.model = model;
        self
    }

    /// Perfect predictor without overheads (the Fig. 2 idealization).
    pub fn perfect(mut self) -> Self {
        self.model = SimModel::Perfect;
        self.overheads = false;
        self
    }

    /// Set the QoS slack.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Enable/disable overhead charging.
    pub fn overheads(mut self, on: bool) -> Self {
        self.overheads = on;
        self
    }

    /// Shorten the simulated horizon (tests and smoke runs).
    pub fn target_intervals(mut self, n: usize) -> Self {
        self.target_intervals = n;
        self
    }

    /// Record the generation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Select the energy-accounting backend.
    pub fn energy_backend(mut self, energy: EnergyBackendConfig) -> Self {
        self.energy = energy;
        self
    }

    /// Set the Fig. 1 scenario label recorded with the row.
    pub fn scenario(mut self, scenario: Option<Scenario>) -> Self {
        self.scenario = scenario;
        self
    }

    /// Number of cores: the workload's system width, or (for static specs)
    /// one application per core.
    pub fn n_cores(&self) -> usize {
        match &self.workload {
            Some(w) => w.n_cores(),
            None => self.apps.len(),
        }
    }

    /// The trace this spec replays: the materialized workload program, or
    /// the static trace implied by `apps`. Fails (instead of panicking)
    /// on an unmaterializable workload — campaigns quarantine such specs
    /// as [`CampaignError::Workload`] rows.
    pub fn try_workload_trace(&self) -> Result<WorkloadTrace, String> {
        match &self.workload {
            Some(w) => w.materialize(),
            None => Ok(WorkloadTrace::steady(&self.apps)),
        }
    }

    /// [`ExperimentSpec::try_workload_trace`], panicking on failure — for
    /// call sites that validated the spec up front.
    pub fn workload_trace(&self) -> WorkloadTrace {
        self.try_workload_trace()
            .unwrap_or_else(|e| panic!("spec {}: workload does not materialize: {e}", self.name))
    }

    /// Fingerprint of the materialized trace — the workload identity
    /// recorded in every campaign row. An unmaterializable workload gets
    /// the sentinel `"unmaterializable"` so quarantined error rows still
    /// serialize.
    pub fn workload_fingerprint(&self) -> String {
        match self.try_workload_trace() {
            Ok(t) => t.fingerprint(),
            Err(_) => "unmaterializable".into(),
        }
    }

    fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::evaluation(self.rm.unwrap_or(RmKind::Rm3), self.model);
        cfg.rm = self.rm;
        cfg.alpha = self.alpha;
        cfg.overheads = self.overheads;
        cfg.target_intervals = self.target_intervals;
        cfg
    }

    /// Canonical JSON form.
    pub fn to_json(&self) -> Json {
        self.to_json_with_fingerprint(&self.workload_fingerprint())
    }

    /// [`ExperimentSpec::to_json`] against an already-materialized trace
    /// fingerprint, so key computation and report serialization do not
    /// re-materialize the workload.
    fn to_json_with_fingerprint(&self, workload_fp: &str) -> Json {
        Json::obj()
            .set("name", self.name.clone())
            .set("apps", self.apps.clone())
            .set(
                "scenario",
                match self.scenario {
                    Some(s) => Json::from(s.label()),
                    None => Json::Null,
                },
            )
            .set("cores", self.n_cores())
            .set("rm", self.rm.map(|r| r.label()).unwrap_or("idle"))
            .set("model", model_label(self.model))
            .set("energy_backend", self.energy.label())
            .set("workload_fingerprint", workload_fp)
            .set("alpha", self.alpha)
            .set("overheads", self.overheads)
            .set("target_intervals", self.target_intervals)
            .set("seed", self.seed)
    }
}

/// The row's **resume key**: a fingerprint over the spec's canonical JSON
/// (which itself covers the controller, model, α, overheads, horizon,
/// seed and energy backend), the materialized workload-trace fingerprint
/// and the energy-backend label. Any change to the spec or its workload
/// re-keys the row, so a resumed campaign can never serve a stale result.
pub fn resume_key(spec: &ExperimentSpec, trace_fingerprint: &str) -> String {
    let mut f = Fingerprint::new("triad-journal-key/v1");
    f.str(&spec.to_json_with_fingerprint(trace_fingerprint).to_string_compact())
        .str(trace_fingerprint)
        .str(&spec.energy.label());
    f.hex()
}

/// Why a spec's row was quarantined (or a journaled run could not start).
///
/// The campaign layer never panics on bad input: energy-backend and
/// workload errors, injected faults and per-row panics all land here,
/// either as [`QuarantinedRow`]s (the campaign completes every other row)
/// or as this function-level error (journal IO).
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// An energy backend could not be built (missing table file, unknown
    /// technology node).
    EnergyBackend {
        /// The backend's configuration label.
        label: String,
        /// Builder error text.
        reason: String,
    },
    /// A spec's workload program does not materialize.
    Workload {
        /// Spec name.
        spec: String,
        /// Materialization error text.
        reason: String,
    },
    /// The spec's simulation (or its shared idle baseline) panicked; the
    /// panic was caught and quarantined.
    RowPanic {
        /// Spec name.
        spec: String,
        /// Panic payload text.
        message: String,
    },
    /// The spec's simulation reported a typed fault (today: an injected
    /// failpoint error at `campaign.row`).
    RowFault {
        /// Spec name.
        spec: String,
        /// Fault text.
        reason: String,
    },
    /// The row journal could not be opened or loaded.
    Journal {
        /// Journal path.
        path: String,
        /// IO error text.
        reason: String,
    },
}

impl CampaignError {
    /// Stable machine-readable discriminant, used in error-row JSON.
    pub fn kind_label(&self) -> &'static str {
        match self {
            CampaignError::EnergyBackend { .. } => "energy_backend",
            CampaignError::Workload { .. } => "workload",
            CampaignError::RowPanic { .. } => "row_panic",
            CampaignError::RowFault { .. } => "row_fault",
            CampaignError::Journal { .. } => "journal",
        }
    }

    /// Canonical JSON form: `{"kind": ..., "message": ...}`.
    pub fn to_json(&self) -> Json {
        Json::obj().set("kind", self.kind_label()).set("message", self.to_string())
    }
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::EnergyBackend { label, reason } => {
                write!(f, "energy backend {label}: {reason}")
            }
            CampaignError::Workload { spec, reason } => {
                write!(f, "spec {spec}: workload does not materialize: {reason}")
            }
            CampaignError::RowPanic { spec, message } => {
                write!(f, "spec {spec}: simulation panicked: {message}")
            }
            CampaignError::RowFault { spec, reason } => {
                write!(f, "spec {spec}: simulation fault: {reason}")
            }
            CampaignError::Journal { path, reason } => {
                write!(f, "journal {path}: {reason}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// A spec whose row could not be produced: the campaign completed every
/// other row and reports this one as a structured error row.
#[derive(Debug, Clone)]
pub struct QuarantinedRow {
    /// The failing spec.
    pub spec: ExperimentSpec,
    /// What went wrong.
    pub error: CampaignError,
}

impl QuarantinedRow {
    /// Canonical JSON form: the spec plus `{"kind","message"}`.
    pub fn to_json(&self) -> Json {
        Json::obj().set("spec", self.spec.to_json()).set("error", self.error.to_json())
    }
}

/// Everything a fault-tolerant campaign run produces.
#[derive(Debug, Clone, Default)]
pub struct CampaignOutcome {
    /// Completed rows, in spec order (quarantined specs omitted).
    pub rows: Vec<CampaignRow>,
    /// Specs that failed, in spec order.
    pub quarantined: Vec<QuarantinedRow>,
    /// Spec-list index of each `quarantined` entry (parallel to it) — the
    /// positional alignment presenters need to pair `rows` back with
    /// their input specs; matching by spec equality instead would
    /// misalign when a spec list contains duplicates and only one copy
    /// quarantines (exactly what a `once`-trigger failpoint produces).
    pub quarantined_indices: Vec<usize>,
    /// Rows re-keyed from the journal (not re-simulated).
    pub resumed: usize,
    /// Rows actually simulated this run.
    pub simulated: usize,
}

/// Memoization key of an idle-RM reference run: the workload-trace
/// fingerprint, the horizon, and the energy backend.
type BaselineKey = (String, usize, EnergyBackendConfig);

/// Display label for a predictor flavor.
pub fn model_label(model: SimModel) -> &'static str {
    match model {
        SimModel::Perfect => "perfect",
        SimModel::Online(k) => k.label(),
    }
}

/// Parse a controller name (`idle`, `rm1`, `rm2`, `rm3`, `rm3full`).
pub fn parse_rm(s: &str) -> Option<Option<RmKind>> {
    match s.to_ascii_lowercase().as_str() {
        "idle" | "none" => Some(None),
        "rm1" => Some(Some(RmKind::Rm1)),
        "rm2" => Some(Some(RmKind::Rm2)),
        "rm3" => Some(Some(RmKind::Rm3)),
        "rm3full" | "rm3-full" => Some(Some(RmKind::Rm3Full)),
        _ => None,
    }
}

/// Parse a predictor name (`perfect`, `model1`, `model2`, `model3`).
pub fn parse_model(s: &str) -> Option<SimModel> {
    match s.to_ascii_lowercase().as_str() {
        "perfect" => Some(SimModel::Perfect),
        "model1" | "m1" => Some(SimModel::Online(ModelKind::Model1)),
        "model2" | "m2" => Some(SimModel::Online(ModelKind::Model2)),
        "model3" | "m3" => Some(SimModel::Online(ModelKind::Model3)),
        _ => None,
    }
}

/// One executed spec: the simulation outcome plus its idle reference.
#[derive(Debug, Clone)]
pub struct CampaignRow {
    /// The spec that produced this row.
    pub spec: ExperimentSpec,
    /// Simulation outcome.
    pub result: SimResult,
    /// Total energy of the shared idle-RM reference run.
    pub idle_energy_j: f64,
    /// Energy savings versus the idle reference (0 for idle specs).
    pub savings: f64,
    /// Observed QoS-violation rate (violating intervals / checked).
    pub violation_rate: f64,
}

impl CampaignRow {
    /// Canonical JSON form.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("spec", self.spec.to_json())
            .set("total_energy_j", self.result.total_energy_j)
            .set("core_mem_energy_j", self.result.core_mem_energy_j)
            .set("uncore_energy_j", self.result.uncore_energy_j)
            .set("sim_time_s", self.result.sim_time_s)
            .set("rm_invocations", self.result.rm_invocations)
            .set("rm_ops", self.result.rm_ops)
            .set("qos_violations", self.result.qos_violations)
            .set("intervals_checked", self.result.intervals_checked)
            .set("mean_violation", self.result.mean_violation)
            .set("idle_energy_j", self.idle_energy_j)
            .set("savings", self.savings)
            .set("violation_rate", self.violation_rate)
    }

    /// The journaled form: [`CampaignRow::to_json`] plus the `SimResult`
    /// fields the report row omits (`arrivals`, `departures`,
    /// `vacancy_energy_j`), which the churn/workload presenters consume.
    /// Journal records carry this superset so a resumed row restores the
    /// *complete* simulation outcome, while report serialization keeps
    /// its exact historical bytes.
    pub fn to_journal_json(&self) -> Json {
        self.to_json()
            .set("arrivals", self.result.arrivals)
            .set("departures", self.result.departures)
            .set("vacancy_energy_j", self.result.vacancy_energy_j)
    }

    /// Rebuild a row from its journaled [`CampaignRow::to_journal_json`]
    /// form and the (key-verified) spec that produced it. Returns `None`
    /// on schema drift (including pre-superset records missing the
    /// journal-only fields) — the caller re-simulates instead of trusting
    /// the record.
    ///
    /// Round-trip fidelity: every `SimResult` field is restored exactly
    /// (the canonical writer/parser pair round-trips floats
    /// bit-identically; `null` restores the non-finite values the writer
    /// serialized as `null`), so a resumed row re-serializes — through
    /// `to_json` *and* the presenters' workload row JSON — to the same
    /// bytes as the uninterrupted run.
    pub fn from_json(spec: ExperimentSpec, v: &Json) -> Option<CampaignRow> {
        let f = |name: &str| -> Option<f64> {
            match v.get(name)? {
                Json::Num(x) => Some(*x),
                Json::Int(i) => Some(*i as f64),
                Json::Null => Some(f64::NAN),
                _ => None,
            }
        };
        let u = |name: &str| -> Option<u64> {
            match v.get(name)? {
                Json::Int(i) if *i >= 0 => Some(*i as u64),
                _ => None,
            }
        };
        Some(CampaignRow {
            spec,
            result: SimResult {
                total_energy_j: f("total_energy_j")?,
                core_mem_energy_j: f("core_mem_energy_j")?,
                uncore_energy_j: f("uncore_energy_j")?,
                sim_time_s: f("sim_time_s")?,
                rm_invocations: u("rm_invocations")?,
                rm_ops: u("rm_ops")?,
                qos_violations: u("qos_violations")?,
                intervals_checked: u("intervals_checked")?,
                mean_violation: f("mean_violation")?,
                arrivals: u("arrivals")?,
                departures: u("departures")?,
                vacancy_energy_j: f("vacancy_energy_j")?,
            },
            idle_energy_j: f("idle_energy_j")?,
            savings: f("savings")?,
            violation_rate: f("violation_rate")?,
        })
    }
}

/// A batch of experiment specs executed in parallel against one database.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The specs, in output order.
    pub specs: Vec<ExperimentSpec>,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Print per-row completion lines to stderr (row index, spec label,
    /// elapsed seconds). Stdout — and every row — is unaffected.
    pub progress: bool,
}

impl Campaign {
    /// A campaign over the given specs using all available cores.
    pub fn new(specs: Vec<ExperimentSpec>) -> Self {
        Campaign { specs, threads: 0, progress: false }
    }

    /// Override the worker-thread count (1 = serial execution).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enable per-row completion lines on stderr.
    pub fn progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// Execute every spec and return rows in spec order.
    ///
    /// Phase 1 runs the deduplicated idle references in parallel; phase 2
    /// runs the specs in parallel against the memoized baselines. Both the
    /// row order and every number in it are independent of the thread
    /// count.
    ///
    /// Panics on the first quarantined spec (bad energy backend, bad
    /// workload, row panic) — the pre-fault-tolerance contract. Use
    /// [`Campaign::try_run`] or [`Campaign::run_journaled`] for the
    /// quarantining paths.
    pub fn run(&self, db: &PhaseDb) -> Vec<CampaignRow> {
        let outcome = self.try_run(db);
        if let Some(q) = outcome.quarantined.first() {
            panic!("campaign: {}", q.error);
        }
        outcome.rows
    }

    /// Execute every spec, quarantining failures instead of panicking:
    /// bad specs (unmaterializable workload, unbuildable energy backend)
    /// and rows whose simulation panics or faults become structured
    /// [`QuarantinedRow`]s while every other row completes normally.
    pub fn try_run(&self, db: &PhaseDb) -> CampaignOutcome {
        self.execute(db, None)
    }

    /// [`Campaign::try_run`] with a durable row journal at `path`: every
    /// completed row is appended (one `O_APPEND` line) as it finishes, and
    /// with `resume` the journal's surviving records are validated, re-keyed
    /// against this campaign's specs, and served without re-simulation —
    /// producing rows byte-identical to an uninterrupted run.
    ///
    /// `resume = false` truncates any existing journal first. A missing
    /// journal under `resume = true` simply starts fresh (nothing to
    /// resume is not an error — it is the first run of the schedule).
    pub fn run_journaled(
        &self,
        db: &PhaseDb,
        path: &Path,
        resume: bool,
    ) -> Result<CampaignOutcome, CampaignError> {
        let journal_err = |e: std::io::Error| CampaignError::Journal {
            path: path.display().to_string(),
            reason: e.to_string(),
        };
        let loaded = if resume && path.exists() {
            journal::load(path).map_err(journal_err)?
        } else {
            LoadedJournal::default()
        };
        let journal = RowJournal::open(path, !resume).map_err(journal_err)?;
        Ok(self.execute(db, Some((&journal, &loaded.rows))))
    }

    /// The shared execution core behind [`Campaign::try_run`] and
    /// [`Campaign::run_journaled`].
    fn execute(
        &self,
        db: &PhaseDb,
        journal: Option<(&RowJournal, &HashMap<String, Json>)>,
    ) -> CampaignOutcome {
        // Build each distinct energy backend exactly once, up front: workers
        // share it via `Arc`, so a table file is read and parsed once per
        // campaign (and a file vanishing mid-campaign cannot fail a worker).
        // Build failures quarantine the specs that reference the backend.
        type BuiltBackend = (EnergyBackendConfig, Result<Arc<dyn EnergyBackend>, String>);
        let mut backends: Vec<BuiltBackend> = Vec::new();
        for spec in &self.specs {
            if !backends.iter().any(|(c, _)| c == &spec.energy) {
                let built = spec.energy.build().map(Arc::from);
                backends.push((spec.energy.clone(), built));
            }
        }
        let backend_for = |energy: &EnergyBackendConfig| -> Arc<dyn EnergyBackend> {
            let (_, built) = backends.iter().find(|(c, _)| c == energy).expect("pre-built above");
            built.clone().expect("quarantined before simulation")
        };

        // Materialize every spec's trace exactly once and decide each
        // spec's fate: run it, serve it from the journal, or quarantine it.
        let mut traces: Vec<Option<WorkloadTrace>> = Vec::with_capacity(self.specs.len());
        let mut preps: Vec<Prep> = Vec::with_capacity(self.specs.len());
        for spec in &self.specs {
            let trace = {
                let _span = TRACE_MATERIALIZE_SPAN.enter();
                spec.try_workload_trace()
            };
            let trace = match trace {
                Ok(t) => t,
                Err(reason) => {
                    traces.push(None);
                    preps.push(Prep::Quarantined(CampaignError::Workload {
                        spec: spec.name.clone(),
                        reason,
                    }));
                    continue;
                }
            };
            let backend =
                &backends.iter().find(|(c, _)| c == &spec.energy).expect("pre-built above").1;
            if let Err(reason) = backend {
                traces.push(Some(trace));
                preps.push(Prep::Quarantined(CampaignError::EnergyBackend {
                    label: spec.energy.label(),
                    reason: reason.clone(),
                }));
                continue;
            }
            let key = resume_key(spec, &trace.fingerprint());
            let prep = match journal.and_then(|(_, rows)| rows.get(&key)) {
                Some(row_json) => match CampaignRow::from_json(spec.clone(), row_json) {
                    Some(row) => Prep::Resumed(Box::new(row)),
                    None => {
                        // Schema drift in a digest-valid record: distrust
                        // it and re-simulate.
                        RESUME_REJECTED.incr();
                        Prep::Run { key }
                    }
                },
                None => Prep::Run { key },
            };
            traces.push(Some(trace));
            preps.push(prep);
        }

        // Deduplicate idle-baseline keys (with their traces) in first-seen
        // order, over the specs that will actually simulate. The idle-RM
        // reference is independent of controller, model, α and overheads
        // (the RM is never invoked), so its memoization key is only the
        // workload trace, the horizon and the energy backend the joules
        // are counted under.
        let mut keyed: Vec<(BaselineKey, &WorkloadTrace)> = Vec::new();
        for (i, prep) in preps.iter().enumerate() {
            if let Prep::Run { .. } = prep {
                let trace = traces[i].as_ref().expect("run specs keep their trace");
                let spec = &self.specs[i];
                let key = (trace.fingerprint(), spec.target_intervals, spec.energy.clone());
                if !keyed.iter().any(|(k, _)| *k == key) {
                    keyed.push((key, trace));
                }
            }
        }

        // A panicking baseline quarantines every spec that depends on it,
        // not the whole campaign.
        let idle_results: Vec<Result<SimResult, String>> =
            par::par_map(&keyed, self.threads, |(key, trace)| {
                let _span = IDLE_BASELINE_SPAN.enter();
                let (_, target, energy) = key;
                let backend = backend_for(energy);
                std::panic::catch_unwind(AssertUnwindSafe(|| {
                    let mut cfg = SimConfig::idle();
                    cfg.target_intervals = *target;
                    Simulator::with_backend(db, trace.n_cores, cfg, backend).run_trace(trace)
                }))
                .map_err(panic_message)
            });
        let baselines: HashMap<&BaselineKey, &Result<SimResult, String>> =
            keyed.iter().map(|(k, _)| k).zip(&idle_results).collect();

        ROWS.add(self.specs.len() as u64);
        let started = std::time::Instant::now();
        let outcomes = par::par_map_indexed(&self.specs, self.threads, |i, spec| {
            let outcome = match &preps[i] {
                Prep::Quarantined(error) => RowOutcome::Quarantined(QuarantinedRow {
                    spec: spec.clone(),
                    error: error.clone(),
                }),
                Prep::Resumed(row) => {
                    ROWS_RESUMED.incr();
                    RowOutcome::Row((**row).clone())
                }
                Prep::Run { key } => {
                    let trace = traces[i].as_ref().expect("run specs keep their trace");
                    self.run_row(db, spec, trace, &baselines, &backend_for, key, journal)
                }
            };
            if self.progress {
                eprintln!(
                    "campaign: [{}/{}] {} done ({:.1}s elapsed)",
                    i + 1,
                    self.specs.len(),
                    spec.name,
                    started.elapsed().as_secs_f64()
                );
            }
            outcome
        });

        let mut result = CampaignOutcome::default();
        for (i, (outcome, prep)) in outcomes.into_iter().zip(&preps).enumerate() {
            match outcome {
                RowOutcome::Row(row) => {
                    match prep {
                        Prep::Resumed(_) => result.resumed += 1,
                        _ => result.simulated += 1,
                    }
                    result.rows.push(row);
                }
                RowOutcome::Quarantined(q) => {
                    ROWS_QUARANTINED.incr();
                    result.quarantined.push(q);
                    result.quarantined_indices.push(i);
                }
            }
        }
        result
    }

    /// Simulate one spec inside its panic quarantine, journaling the
    /// completed row.
    #[allow(clippy::too_many_arguments)]
    fn run_row(
        &self,
        db: &PhaseDb,
        spec: &ExperimentSpec,
        trace: &WorkloadTrace,
        baselines: &HashMap<&BaselineKey, &Result<SimResult, String>>,
        backend_for: &(dyn Fn(&EnergyBackendConfig) -> Arc<dyn EnergyBackend> + Sync),
        key: &str,
        journal: Option<(&RowJournal, &HashMap<String, Json>)>,
    ) -> RowOutcome {
        let bkey = (trace.fingerprint(), spec.target_intervals, spec.energy.clone());
        let idle = match baselines[&bkey] {
            Ok(idle) => idle,
            Err(message) => {
                return RowOutcome::Quarantined(QuarantinedRow {
                    spec: spec.clone(),
                    error: CampaignError::RowPanic {
                        spec: spec.name.clone(),
                        message: format!("idle baseline: {message}"),
                    },
                })
            }
        };
        let simulated =
            std::panic::catch_unwind(AssertUnwindSafe(|| -> Result<SimResult, String> {
                ROW_FP.check()?;
                if spec.rm.is_none() {
                    // The spec *is* its own baseline; reuse the memoized run.
                    Ok(idle.clone())
                } else {
                    let _span = SIMULATE_SPAN.enter();
                    Ok(Simulator::with_backend(
                        db,
                        trace.n_cores,
                        spec.sim_config(),
                        backend_for(&spec.energy),
                    )
                    .run_trace(trace))
                }
            }));
        let result = match simulated {
            Err(payload) => {
                return RowOutcome::Quarantined(QuarantinedRow {
                    spec: spec.clone(),
                    error: CampaignError::RowPanic {
                        spec: spec.name.clone(),
                        message: panic_message(payload),
                    },
                })
            }
            Ok(Err(reason)) => {
                return RowOutcome::Quarantined(QuarantinedRow {
                    spec: spec.clone(),
                    error: CampaignError::RowFault { spec: spec.name.clone(), reason },
                })
            }
            Ok(Ok(result)) => result,
        };
        let _qos = QOS_EVAL_SPAN.enter();
        let savings = if spec.rm.is_none() { 0.0 } else { result.savings_vs(idle) };
        let violation_rate = if result.intervals_checked > 0 {
            result.qos_violations as f64 / result.intervals_checked as f64
        } else {
            0.0
        };
        let row = CampaignRow {
            spec: spec.clone(),
            idle_energy_j: idle.total_energy_j,
            savings,
            violation_rate,
            result,
        };
        ROWS_SIMULATED.incr();
        if let Some((j, _)) = journal {
            j.append(key, &row.to_journal_json());
        }
        RowOutcome::Row(row)
    }

    /// The suite applications this campaign's specs reference, in suite
    /// order — the exact database the campaign needs.
    pub fn required_apps(&self) -> Vec<AppSpec> {
        triad_trace::suite()
            .into_iter()
            .filter(|a| self.specs.iter().any(|s| s.apps.iter().any(|n| n == a.name)))
            .collect()
    }

    /// Resolve a database covering [`Campaign::required_apps`] through the
    /// content-addressed `store` (millisecond load on a warm cache, build +
    /// persist on a cold one) and execute the campaign against it.
    ///
    /// Rows are bit-identical to [`Campaign::run`] on a directly built
    /// database: the store round-trip is lossless by construction.
    pub fn run_cached(&self, store: &DbStore, cfg: &DbConfig) -> Vec<CampaignRow> {
        let resolved = {
            let _span = DB_RESOLVE_SPAN.enter();
            store.resolve(&self.required_apps(), cfg)
        };
        self.run(&resolved.db)
    }

    /// The fault-tolerant [`Campaign::run_cached`]: resolve the database
    /// through the store, then [`Campaign::try_run`] (no journal) or
    /// [`Campaign::run_journaled`] (journal path + resume flag).
    pub fn run_cached_outcome(
        &self,
        store: &DbStore,
        cfg: &DbConfig,
        journal: Option<(&Path, bool)>,
    ) -> Result<CampaignOutcome, CampaignError> {
        let resolved = {
            let _span = DB_RESOLVE_SPAN.enter();
            store.resolve(&self.required_apps(), cfg)
        };
        match journal {
            None => Ok(self.try_run(&resolved.db)),
            Some((path, resume)) => self.run_journaled(&resolved.db, path, resume),
        }
    }

    /// Canonical JSON document for a finished campaign.
    pub fn report(rows: &[CampaignRow]) -> Json {
        Json::obj()
            .set("schema", "triad-campaign/v1")
            .set("rows", Json::Arr(rows.iter().map(CampaignRow::to_json).collect()))
    }

    /// [`Campaign::report`] plus the quarantined error rows (key present
    /// only when non-empty, so fully-successful reports keep their exact
    /// pre-fault-tolerance bytes).
    pub fn report_full(rows: &[CampaignRow], quarantined: &[QuarantinedRow]) -> Json {
        let doc = Self::report(rows);
        if quarantined.is_empty() {
            doc
        } else {
            doc.set(
                "quarantined",
                Json::Arr(quarantined.iter().map(QuarantinedRow::to_json).collect()),
            )
        }
    }
}

/// A spec's fate, decided in the prep phase.
enum Prep {
    /// Simulate, journaling the row under this resume key.
    Run {
        /// The row's resume key.
        key: String,
    },
    /// Served from the journal without re-simulation.
    Resumed(Box<CampaignRow>),
    /// Known-bad before simulation (workload/backend errors).
    Quarantined(CampaignError),
}

/// One spec's executed outcome.
enum RowOutcome {
    Row(CampaignRow),
    Quarantined(QuarantinedRow),
}

/// Render a caught panic payload (`&str` or `String` from `panic!`) as
/// text for the quarantine record.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_phasedb::build_apps;

    /// The test database resolves through the shared workspace store: the
    /// first test run of the day builds and persists it, every later run —
    /// and every other test binary needing the same subset — loads it.
    fn small_db() -> PhaseDb {
        let names = ["mcf", "libquantum", "povray", "gcc"];
        let apps: Vec<_> =
            triad_trace::suite().into_iter().filter(|a| names.contains(&a.name)).collect();
        DbStore::default_cache().resolve(&apps, &DbConfig::fast()).db
    }

    fn quick(spec: ExperimentSpec) -> ExperimentSpec {
        spec.target_intervals(6)
    }

    #[test]
    fn campaign_matches_direct_simulation() {
        let db = small_db();
        let spec = quick(ExperimentSpec::new("direct", &["mcf", "povray"]).perfect());
        let rows = Campaign::new(vec![spec.clone()]).run(&db);
        assert_eq!(rows.len(), 1);

        let names = ["mcf", "povray"];
        let mut cfg = SimConfig::perfect(RmKind::Rm3);
        cfg.target_intervals = 6;
        let direct = Simulator::new(&db, 2, cfg).run(&names);
        let mut idle_cfg = SimConfig::idle();
        idle_cfg.target_intervals = 6;
        let idle = Simulator::new(&db, 2, idle_cfg).run(&names);

        assert_eq!(rows[0].result.total_energy_j, direct.total_energy_j);
        assert_eq!(rows[0].idle_energy_j, idle.total_energy_j);
        assert_eq!(rows[0].savings, direct.savings_vs(&idle));
    }

    #[test]
    fn idle_baselines_are_shared_and_idle_specs_reuse_them() {
        let db = small_db();
        let mk =
            |name: &str, rm| quick(ExperimentSpec::new(name, &["mcf", "gcc"]).rm(rm).perfect());
        let rows = Campaign::new(vec![
            mk("idle", None),
            mk("rm1", Some(RmKind::Rm1)),
            mk("rm3", Some(RmKind::Rm3)),
        ])
        .run(&db);
        // All three rows reference the same baseline energy.
        assert_eq!(rows[0].idle_energy_j, rows[1].idle_energy_j);
        assert_eq!(rows[1].idle_energy_j, rows[2].idle_energy_j);
        // The idle spec IS the baseline run.
        assert_eq!(rows[0].result.total_energy_j, rows[0].idle_energy_j);
        assert_eq!(rows[0].savings, 0.0);
        assert_eq!(rows[0].result.rm_invocations, 0);
        // RM3 should do no worse than RM1 under the perfect model.
        assert!(rows[2].savings >= rows[1].savings - 0.005);
    }

    #[test]
    fn rows_are_thread_count_invariant() {
        let db = small_db();
        let specs: Vec<ExperimentSpec> = [RmKind::Rm1, RmKind::Rm2, RmKind::Rm3]
            .iter()
            .map(|&rm| {
                quick(ExperimentSpec::new(rm.label(), &["mcf", "libquantum"]))
                    .rm(Some(rm))
                    .perfect()
            })
            .collect();
        let serial = Campaign::new(specs.clone()).threads(1).run(&db);
        let parallel = Campaign::new(specs).threads(4).run(&db);
        let a = Campaign::report(&serial).to_string_pretty();
        let b = Campaign::report(&parallel).to_string_pretty();
        assert_eq!(a, b, "campaign output must be thread-count invariant");
    }

    #[test]
    fn json_report_has_schema_and_rows() {
        let db = small_db();
        let rows =
            Campaign::new(vec![quick(ExperimentSpec::new("x", &["povray", "gcc"]).perfect())])
                .run(&db);
        let doc = Campaign::report(&rows);
        assert_eq!(doc.get("schema"), Some(&Json::from("triad-campaign/v1")));
        let s = doc.to_string_pretty();
        assert!(s.contains("\"savings\""));
        assert!(s.contains("\"rm\": \"RM3\""));
    }

    #[test]
    fn four_spec_campaign_speeds_up_on_multicore_hosts() {
        // The acceptance bar for the campaign layer: on a multi-core host,
        // running a 4-spec campaign in parallel beats serial execution in
        // wall-clock time while producing the same bytes. On single-core
        // hosts only the equivalence half is checkable.
        let db = small_db();
        let specs: Vec<ExperimentSpec> = [
            ("a", ["mcf", "povray"]),
            ("b", ["mcf", "gcc"]),
            ("c", ["libquantum", "gcc"]),
            ("d", ["povray", "libquantum"]),
        ]
        .iter()
        .map(|(name, apps)| ExperimentSpec::new(*name, apps).perfect().target_intervals(24))
        .collect();

        let t0 = std::time::Instant::now();
        let serial = Campaign::new(specs.clone()).threads(1).run(&db);
        let serial_s = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        let parallel = Campaign::new(specs).threads(0).run(&db);
        let parallel_s = t1.elapsed().as_secs_f64();

        assert_eq!(
            Campaign::report(&serial).to_string_pretty(),
            Campaign::report(&parallel).to_string_pretty()
        );
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        eprintln!(
            "4-spec campaign on {cores} cores: serial {serial_s:.3}s, parallel {parallel_s:.3}s"
        );
        if cores >= 4 {
            assert!(
                parallel_s < serial_s,
                "parallel {parallel_s}s must beat serial {serial_s}s on a {cores}-core host"
            );
        }
    }

    #[test]
    fn required_apps_are_the_union_of_spec_apps_in_suite_order() {
        let campaign = Campaign::new(vec![
            ExperimentSpec::new("a", &["povray", "mcf"]),
            ExperimentSpec::new("b", &["mcf", "libquantum"]),
        ]);
        let names: Vec<&str> = campaign.required_apps().iter().map(|a| a.name).collect();
        let suite_order: Vec<&str> = triad_trace::suite()
            .iter()
            .map(|a| a.name)
            .filter(|n| ["mcf", "libquantum", "povray"].contains(n))
            .collect();
        assert_eq!(names, suite_order);
    }

    #[test]
    fn run_cached_is_byte_identical_to_run_on_a_fresh_build() {
        let dir =
            std::env::temp_dir().join(format!("triad-campaign-cached-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DbStore::new(&dir);
        let cfg = DbConfig::fast();
        let campaign =
            Campaign::new(vec![quick(ExperimentSpec::new("cached", &["mcf", "povray"]).perfect())]);

        let direct = campaign.run(&build_apps(&campaign.required_apps(), &cfg));
        // Cold (build + persist), then warm (load): all three byte-equal.
        let cold = campaign.run_cached(&store, &cfg);
        let warm = campaign.run_cached(&store, &cfg);
        let report = |rows: &[CampaignRow]| Campaign::report(rows).to_string_pretty();
        assert_eq!(report(&direct), report(&cold));
        assert_eq!(report(&direct), report(&warm));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parsers_accept_cli_spellings() {
        assert_eq!(parse_rm("idle"), Some(None));
        assert_eq!(parse_rm("RM3"), Some(Some(RmKind::Rm3)));
        assert_eq!(parse_rm("rm3full"), Some(Some(RmKind::Rm3Full)));
        assert_eq!(parse_rm("bogus"), None);
        assert_eq!(parse_model("perfect"), Some(SimModel::Perfect));
        assert_eq!(parse_model("model2"), Some(SimModel::Online(ModelKind::Model2)));
        assert_eq!(parse_model("bogus"), None);
    }
}
